#include "matching/matching_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>

#include "core/simd.hpp"
#include "obs/obs.hpp"

namespace reco {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

/// Sum of every buffer capacity in the scratch.  Vector capacities only
/// grow, so an unchanged total across a solve proves the solve performed
/// zero heap allocations — that is the scratch_reuses acceptance counter.
std::size_t total_capacity(const MatchingScratch& s) {
  return s.csr_off.capacity() + s.csr_col.capacity() + s.csr_val.capacity() +
         s.match_left.capacity() + s.match_right.capacity() + s.final_left.capacity() +
         s.final_right.capacity() + s.dist.capacity() + s.queue.capacity() +
         s.stack_u.capacity() + s.stack_e.capacity() + s.values.capacity() +
         s.row_mark.capacity() + s.col_mark.capacity() + s.gate_stamp.capacity() +
         s.col_gate.capacity() + s.gate_heap.capacity() + s.adj_bits.capacity() +
         s.visited_bits.capacity() + s.layer_bits.capacity() + s.free_col_bits.capacity();
}

/// Resize to `n`, filling fresh slots only when the logical size grows.
template <class T>
void ensure_size(std::vector<T>& v, std::size_t n, T fill) {
  if (v.size() < n) {
    v.assign(n, fill);
  } else if (v.size() > n) {
    v.resize(n);
  }
}

/// Layered BFS from all free left vertices (seed-identical: rows enqueue
/// ascending, edges scan ascending).  Returns true iff an augmenting path
/// exists; `dist` receives the layers for the DFS phase.
bool bfs_layers_csr(const MatchingScratch& s, const std::vector<int>& ml,
                    const std::vector<int>& mr, std::vector<int>& dist, std::vector<int>& queue,
                    double threshold, bool check_value) {
  const double cut = threshold - kTimeEps;
  int head = 0;
  int tail = 0;
  for (int u = 0; u < s.n_left; ++u) {
    if (ml[u] == -1) {
      dist[u] = 0;
      queue[tail++] = u;
    } else {
      dist[u] = kInf;
    }
  }
  bool found = false;
  while (head < tail) {
    const int u = queue[head++];
    const int end = s.csr_off[u + 1];
    for (int e = s.csr_off[u]; e < end; ++e) {
      if (check_value && s.csr_val[e] < cut) continue;
      const int w = mr[s.csr_col[e]];
      if (w == -1) {
        found = true;
      } else if (dist[w] == kInf) {
        dist[w] = dist[u] + 1;
        queue[tail++] = w;
      }
    }
  }
  return found;
}

/// Bake the value-filtered adjacency into per-row bitmasks: bit j of row
/// u's mask is set iff edge (u, j) survives the threshold cut.  One build
/// per hk_augment_csr call (O(E + N^2/64)); every subsequent BFS phase
/// then expands layers word-parallel without touching csr_val.
void build_adj_bits(MatchingScratch& s, double threshold, bool check_value) {
  const double cut = threshold - kTimeEps;
  const int words = (s.n_right + 63) >> 6;
  const std::size_t total = static_cast<std::size_t>(s.n_left) * words;
  ensure_size(s.adj_bits, total, std::uint64_t{0});
  std::fill(s.adj_bits.begin(), s.adj_bits.begin() + static_cast<std::ptrdiff_t>(total), 0);
  ensure_size(s.visited_bits, static_cast<std::size_t>(words), std::uint64_t{0});
  ensure_size(s.layer_bits, static_cast<std::size_t>(words), std::uint64_t{0});
  ensure_size(s.free_col_bits, static_cast<std::size_t>(words), std::uint64_t{0});
  for (int u = 0; u < s.n_left; ++u) {
    std::uint64_t* row = s.adj_bits.data() + static_cast<std::size_t>(u) * words;
    const int end = s.csr_off[u + 1];
    for (int e = s.csr_off[u]; e < end; ++e) {
      if (check_value && s.csr_val[e] < cut) continue;
      const int j = s.csr_col[e];
      row[j >> 6] |= std::uint64_t{1} << (j & 63);
    }
  }
  ++s.stats.bitset_builds;
}

/// Word-parallel twin of bfs_layers_csr.  Layer-synchronous: OR the
/// adjacency masks of the current frontier, strip already-visited
/// columns, then enqueue the matched partner of every newly reached
/// column.  BFS layer depths are canonical (independent of intra-layer
/// visit order), so `dist` comes out identical to the CSR walk — which is
/// all the DFS phase consumes — and the final matching is bit-identical.
bool bfs_layers_bitset(MatchingScratch& s, const std::vector<int>& ml,
                       const std::vector<int>& mr, std::vector<int>& dist,
                       std::vector<int>& queue) {
  const int n = s.n_left;
  const int words = (s.n_right + 63) >> 6;
  std::uint64_t* visited = s.visited_bits.data();
  std::uint64_t* layer = s.layer_bits.data();
  std::uint64_t* free_cols = s.free_col_bits.data();
  std::fill(visited, visited + words, 0);
  std::fill(free_cols, free_cols + words, 0);
  for (int j = 0; j < s.n_right; ++j) {
    if (mr[j] == -1) free_cols[j >> 6] |= std::uint64_t{1} << (j & 63);
  }
  int tail = 0;
  for (int u = 0; u < n; ++u) {
    if (ml[u] == -1) {
      dist[u] = 0;
      queue[tail++] = u;
    } else {
      dist[u] = kInf;
    }
  }
  bool found = false;
  int begin = 0;
  int depth = 0;
  while (begin < tail) {
    std::fill(layer, layer + words, 0);
    for (int k = begin; k < tail; ++k) {
      const std::uint64_t* row =
          s.adj_bits.data() + static_cast<std::size_t>(queue[k]) * words;
      for (int w = 0; w < words; ++w) layer[w] |= row[w];
    }
    begin = tail;
    ++depth;
    for (int w = 0; w < words; ++w) {
      std::uint64_t fresh = layer[w] & ~visited[w];
      if (fresh == 0) continue;
      visited[w] |= fresh;
      if (fresh & free_cols[w]) found = true;
      std::uint64_t matched = fresh & ~free_cols[w];
      while (matched != 0) {
        const int j = (w << 6) + __builtin_ctzll(matched);
        matched &= matched - 1;
        const int r = mr[j];  // never a free row: mr[j] != -1 implies ml[r] == j
        dist[r] = depth;
        queue[tail++] = r;
      }
    }
  }
  return found;
}

/// Iterative layered DFS from `u0`, the exact transformation of the
/// reference recursion: probe edges ascending; descend into the matched
/// partner one BFS layer down; on a dead end set dist[u] = kInf so the
/// phase never re-enters the vertex; on success match every frame through
/// the edge it descended by.  Frame k's cursor (stack_e[k]) stays parked
/// on the descending edge so failure resumes right after it.
bool dfs_augment_csr(const MatchingScratch& s, int u0, std::vector<int>& ml, std::vector<int>& mr,
                     std::vector<int>& dist, std::vector<int>& stack_u, std::vector<int>& stack_e,
                     double threshold, bool check_value) {
  const double cut = threshold - kTimeEps;
  int sp = 0;
  stack_u[0] = u0;
  stack_e[0] = s.csr_off[u0];
  sp = 1;
  while (sp > 0) {
    const int u = stack_u[sp - 1];
    int e = stack_e[sp - 1];
    const int end = s.csr_off[u + 1];
    int found_v = -1;
    bool descended = false;
    for (; e < end; ++e) {
      if (check_value && s.csr_val[e] < cut) continue;
      const int v = s.csr_col[e];
      const int w = mr[v];
      if (w == -1) {
        found_v = v;
        break;
      }
      if (dist[w] == dist[u] + 1) {
        stack_e[sp - 1] = e;  // remember the edge we descend through
        stack_u[sp] = w;
        stack_e[sp] = s.csr_off[w];
        ++sp;
        descended = true;
        break;
      }
    }
    if (descended) continue;
    if (found_v != -1) {
      // Success: match each frame with the edge it is parked on.
      int v = found_v;
      int k = sp - 1;
      while (true) {
        ml[stack_u[k]] = v;
        mr[v] = stack_u[k];
        if (k == 0) break;
        --k;
        v = s.csr_col[stack_e[k]];
      }
      return true;
    }
    // Dead end: prune the vertex for this phase and resume the parent
    // just past the edge it descended through.
    dist[u] = kInf;
    --sp;
    if (sp > 0) ++stack_e[sp - 1];
  }
  return false;
}

}  // namespace

namespace {

/// Pick the BFS expansion strategy for this call.  The CSR is already
/// built, so the edge count is exact; with check_value the count includes
/// sub-threshold edges, which only ever overestimates density — an
/// overestimate can cost a suboptimal mode pick, never a wrong result.
bool use_bitset_bfs(const MatchingScratch& s) {
  if (s.hk_mode == HkMode::kCsr) return false;
  if (s.hk_mode == HkMode::kBitset) return true;
  if (s.n_left < kBitsetMinPorts) return false;
  const double cells = static_cast<double>(s.n_left) * static_cast<double>(s.n_right);
  return static_cast<double>(s.csr_col.size()) >= kBitsetMinDensity * cells;
}

}  // namespace

int hk_augment_csr(MatchingScratch& s, std::vector<int>& ml, std::vector<int>& mr,
                   double threshold, bool check_value) {
  const std::size_t nl = static_cast<std::size_t>(s.n_left);
  ensure_size(s.dist, nl, 0);
  ensure_size(s.queue, nl, 0);
  ensure_size(s.stack_u, nl + 1, 0);
  ensure_size(s.stack_e, nl + 1, 0);
  int size = 0;
  for (int u = 0; u < s.n_left; ++u) {
    if (ml[u] != -1) ++size;
  }
  const bool bitset_bfs = size < s.n_left && use_bitset_bfs(s);
  if (bitset_bfs) build_adj_bits(s, threshold, check_value);
  while (size < s.n_left &&
         (bitset_bfs ? bfs_layers_bitset(s, ml, mr, s.dist, s.queue)
                     : bfs_layers_csr(s, ml, mr, s.dist, s.queue, threshold, check_value))) {
    ++s.stats.phases;
    if (bitset_bfs) ++s.stats.bitset_phases;
    for (int u = 0; u < s.n_left; ++u) {
      if (ml[u] == -1 &&
          dfs_augment_csr(s, u, ml, mr, s.dist, s.stack_u, s.stack_e, threshold, check_value)) {
        ++size;
        ++s.stats.augmentations;
      }
    }
  }
  return size;
}

void build_csr(const Matrix& m, double keep_threshold, bool with_values, MatchingScratch& s) {
  const int n = m.n();
  const double cut = keep_threshold - kTimeEps;
  s.n_left = n;
  s.n_right = n;
  ensure_size(s.csr_off, static_cast<std::size_t>(n) + 1, 0);
  s.csr_col.clear();
  s.csr_val.clear();
  s.csr_off[0] = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double x = m.at(i, j);
      if (x >= cut) {
        s.csr_col.push_back(j);
        if (with_values) s.csr_val.push_back(x);
      }
    }
    s.csr_off[i + 1] = static_cast<int>(s.csr_col.size());
  }
}

void build_csr(const SupportIndex& idx, double keep_threshold, bool with_values,
               MatchingScratch& s) {
  const int n = idx.n();
  const double cut = keep_threshold - kTimeEps;
  s.n_left = n;
  s.n_right = n;
  ensure_size(s.csr_off, static_cast<std::size_t>(n) + 1, 0);
  s.csr_col.clear();
  s.csr_val.clear();
  s.csr_off[0] = 0;
  for (int i = 0; i < n; ++i) {
    // Stream the SoA arenas side by side — no dense-row gather.
    const auto cols = idx.row_support(i);
    const auto vals = idx.row_values(i);
    for (int k = 0; k < cols.size(); ++k) {
      const double x = vals[k];
      if (x >= cut) {
        s.csr_col.push_back(cols[k]);
        if (with_values) s.csr_val.push_back(x);
      }
    }
    s.csr_off[i + 1] = static_cast<int>(s.csr_col.size());
  }
}

namespace {

void collect_values(const Matrix& m, std::vector<double>& values) {
  values.clear();
  for (int i = 0; i < m.n(); ++i) {
    for (int j = 0; j < m.n(); ++j) {
      const double x = m.at(i, j);
      if (!approx_zero(x)) values.push_back(x);
    }
  }
}

void collect_values(const SupportIndex& idx, std::vector<double>& values) {
  values.clear();
  for (int i = 0; i < idx.n(); ++i) {
    const auto vals = idx.row_values(i);
    values.insert(values.end(), vals.begin(), vals.end());
  }
}

double value_at(const Matrix& m, int i, int j) { return m.at(i, j); }
double value_at(const SupportIndex& idx, int i, int j) { return idx.at(i, j); }

/// A failed probe at `t` left a *maximum* matching of size n - d in
/// ml/mr.  The rows reachable from free rows by alternating paths form a
/// Hall violator S with |N(S)| = |S| - d; feasibility at any t' requires
/// d currently-absent columns to gain an edge from S, so t' cannot exceed
/// (d-th largest entering edge value) + eps.  Returns that bound (or
/// +inf when no certificate binds) — every candidate above it is provably
/// infeasible, so discarding them cannot change the selected bottleneck.
double hall_prune(MatchingScratch& s, double t) {
  const int n = s.n_left;
  const double cut = t - kTimeEps;
  const std::size_t nn = static_cast<std::size_t>(n);
  ensure_size(s.row_mark, nn, 0);
  ensure_size(s.col_mark, nn, 0);
  ensure_size(s.gate_stamp, nn, 0);
  ensure_size(s.col_gate, nn, 0.0);
  // Reserve to the worst case up front: a later prune with more gate
  // columns than the first must not allocate in steady state.
  if (s.gate_heap.capacity() < nn) s.gate_heap.reserve(nn);
  const double no_bound = std::numeric_limits<double>::infinity();
  const int stamp = ++s.mark_stamp;
  int head = 0;
  int tail = 0;
  int d = 0;
  for (int i = 0; i < n; ++i) {
    if (s.match_left[i] == -1) {
      s.row_mark[i] = stamp;
      s.queue[tail++] = i;
      ++d;
    }
  }
  if (d == 0) return no_bound;
  while (head < tail) {
    const int u = s.queue[head++];
    const int end = s.csr_off[u + 1];
    for (int e = s.csr_off[u]; e < end; ++e) {
      if (s.csr_val[e] < cut) continue;
      const int j = s.csr_col[e];
      if (s.col_mark[j] == stamp) continue;
      s.col_mark[j] = stamp;
      const int w = s.match_right[j];
      if (w != -1 && s.row_mark[w] != stamp) {
        s.row_mark[w] = stamp;
        s.queue[tail++] = w;
      }
    }
  }
  // Best entering value per column outside N(S), over edges from S that
  // are below the probe threshold.
  s.gate_heap.clear();
  for (int k = 0; k < tail; ++k) {
    const int u = s.queue[k];
    const int end = s.csr_off[u + 1];
    for (int e = s.csr_off[u]; e < end; ++e) {
      if (s.csr_val[e] >= cut) continue;
      const int j = s.csr_col[e];
      if (s.col_mark[j] == stamp) continue;
      if (s.gate_stamp[j] != stamp) {
        s.gate_stamp[j] = stamp;
        s.col_gate[j] = s.csr_val[e];
      } else if (s.csr_val[e] > s.col_gate[j]) {
        s.col_gate[j] = s.csr_val[e];
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    if (s.gate_stamp[j] == stamp) s.gate_heap.push_back(s.col_gate[j]);
  }
  if (static_cast<int>(s.gate_heap.size()) < d) return no_bound;  // cannot certify
  std::nth_element(s.gate_heap.begin(), s.gate_heap.begin() + (d - 1), s.gate_heap.end(),
                   std::greater<double>());
  return s.gate_heap[d - 1] + kTimeEps;
}

template <class Src>
bool bottleneck_solve_impl(const Src& src, MatchingScratch& s) {
  const std::size_t cap_before = total_capacity(s);
  const MatchingScratch::Stats before = s.stats;
  ++s.stats.solves;

  collect_values(src, s.values);
  bool ok = false;
  if (!s.values.empty()) {
    const int n = src.n();
    const std::size_t nn = static_cast<std::size_t>(n);
    // Pool scans below run through the SIMD kernel layer (min/max
    // reductions and order-preserving compactions are exact, so every
    // tier is bit-identical to the scalar loops they replace).
    const simd::Kernels& kn = simd::kernels();
    const double vmin =
        kn.min_value(s.values.data(), static_cast<int>(s.values.size()), s.values[0]);
    build_csr(src, vmin, /*with_values=*/true, s);
    // A warm seed only carries over at the same dimension; a resize could
    // leave match_right referencing truncated rows.
    if (s.match_left.size() != nn || s.match_right.size() != nn) {
      s.match_left.assign(nn, -1);
      s.match_right.assign(nn, -1);
      s.has_hint = false;
    }

    bool first_probe = true;
    const auto probe = [&](double t) {
      ++s.stats.probes;
      const double cut = t - kTimeEps;
      int kept = 0;
      for (int i = 0; i < n; ++i) {
        const int j = s.match_left[i];
        if (j == -1) continue;
        if (value_at(src, i, j) < cut) {
          s.match_left[i] = -1;
          s.match_right[j] = -1;
        } else {
          ++kept;
        }
      }
      if (first_probe) {
        first_probe = false;
        if (kept > 0) {
          ++s.stats.warm_start_hits;
          s.stats.warm_edges_kept += static_cast<std::uint64_t>(kept);
        }
      }
      return hk_augment_csr(s, s.match_left, s.match_right, t, /*check_value=*/true) == n;
    };

    if (probe(vmin)) {
      // Search for the largest value with a feasible probe.  Feasibility
      // is exactly monotone in the threshold (a lower cut keeps a
      // superset of edges), so ANY probe order converges to the same
      // answer; the pool never needs sorting.  Invariants: `lo_val` is a
      // support value with a (directly probed or monotonicity-implied)
      // feasible probe; values[0..m) holds every still-plausible
      // candidate, each strictly above lo_val.
      double lo_val = vmin;
      std::size_t m = static_cast<std::size_t>(
          kn.partition_greater(s.values.data(), static_cast<int>(s.values.size()), vmin));
      // Discard after a failed probe at `t` with Hall bound `b`:
      // candidates >= t fail by monotonicity (not counted as pruned);
      // candidates in (b, t) fail by the certificate alone.
      const auto discard_infeasible = [&](double t, double b) {
        std::int64_t certified = 0;
        m = static_cast<std::size_t>(kn.partition_keep_below(
            s.values.data(), static_cast<int>(m), t, b, &certified));
        if (certified > 0) {
          ++s.stats.hall_prunes;
          s.stats.probes_pruned += static_cast<std::uint64_t>(certified);
        }
      };

      // First pivot: the previous solve's bottleneck.  On a slowly
      // mutating matrix it is exact or one ladder rung high, so the hint
      // probe plus one successor probe finish the search.  A feasible
      // probe at non-support `h` implies the largest support value <= h
      // is feasible too — no extra probe needed.
      if (m > 0 && s.has_hint && s.hint > lo_val) {
        const double h = s.hint;
        if (probe(h)) {
          // Largest discarded candidate becomes the proven-feasible floor;
          // the compaction keeps everything strictly above the hint.
          lo_val = kn.max_value_leq(s.values.data(), static_cast<int>(m), h, lo_val);
          m = static_cast<std::size_t>(
              kn.partition_greater(s.values.data(), static_cast<int>(m), h));
          if (m > 0) {
            // Confirm optimality by probing the successor value: if the
            // smallest remaining candidate fails, every candidate fails.
            const double succ =
                kn.min_value(s.values.data(), static_cast<int>(m), s.values[0]);
            if (probe(succ)) {
              lo_val = succ;
              m = static_cast<std::size_t>(
                  kn.partition_greater(s.values.data(), static_cast<int>(m), succ));
            } else {
              m = 0;
            }
          }
        } else {
          discard_infeasible(h, hall_prune(s, h));
        }
      }

      // Quickselect descent over whatever remains: probe the median of
      // the pool, halve around it.  Total partition work is O(nnz); the
      // seed paid an O(nnz log nnz) sort before its first probe.
      while (m > 0) {
        std::nth_element(s.values.begin(), s.values.begin() + static_cast<std::ptrdiff_t>(m / 2),
                         s.values.begin() + static_cast<std::ptrdiff_t>(m));
        const double pivot = s.values[m / 2];
        if (probe(pivot)) {
          lo_val = pivot;
          m = static_cast<std::size_t>(
              kn.partition_greater(s.values.data(), static_cast<int>(m), pivot));
        } else {
          discard_infeasible(pivot, hall_prune(s, pivot));
        }
      }

      // Canonical result: one cold-start Hopcroft-Karp at the winning
      // threshold, bit-identical to the reference implementation.  The
      // warm working matching only ever accelerated feasibility answers.
      s.bottleneck = lo_val;
      ensure_size(s.final_left, nn, -1);
      ensure_size(s.final_right, nn, -1);
      std::fill(s.final_left.begin(), s.final_left.end(), -1);
      std::fill(s.final_right.begin(), s.final_right.end(), -1);
      s.matching_size =
          hk_augment_csr(s, s.final_left, s.final_right, s.bottleneck, /*check_value=*/true);
      // Adopt the canonical matching as the next solve's warm seed.
      std::copy(s.final_left.begin(), s.final_left.end(), s.match_left.begin());
      std::copy(s.final_right.begin(), s.final_right.end(), s.match_right.begin());
      ok = s.matching_size == n;
    }
  }
  s.has_hint = ok;
  if (ok) s.hint = s.bottleneck;

  if (total_capacity(s) == cap_before) {
    ++s.stats.scratch_reuses;
  } else {
    ++s.stats.alloc_events;
  }

  if (obs::enabled()) {
    static obs::Counter& solves = obs::metrics().counter("matching.engine.solves");
    static obs::Counter& probes = obs::metrics().counter("matching.engine.probes");
    static obs::Counter& pruned = obs::metrics().counter("matching.engine.probes_pruned");
    static obs::Counter& augments = obs::metrics().counter("matching.engine.augmentations");
    static obs::Counter& warm_hits = obs::metrics().counter("matching.engine.warm_start_hits");
    static obs::Counter& warm_edges = obs::metrics().counter("matching.engine.warm_edges_kept");
    static obs::Counter& reuses = obs::metrics().counter("matching.engine.scratch_reuses");
    static obs::Counter& allocs = obs::metrics().counter("matching.engine.scratch_allocs");
    static obs::Counter& bit_phases = obs::metrics().counter("matching.engine.bitset_phases");
    static obs::Counter& bit_builds = obs::metrics().counter("matching.engine.bitset_builds");
    const MatchingScratch::Stats& a = s.stats;
    bit_phases.inc(static_cast<double>(a.bitset_phases - before.bitset_phases));
    bit_builds.inc(static_cast<double>(a.bitset_builds - before.bitset_builds));
    solves.inc(static_cast<double>(a.solves - before.solves));
    probes.inc(static_cast<double>(a.probes - before.probes));
    pruned.inc(static_cast<double>(a.probes_pruned - before.probes_pruned));
    augments.inc(static_cast<double>(a.augmentations - before.augmentations));
    warm_hits.inc(static_cast<double>(a.warm_start_hits - before.warm_start_hits));
    warm_edges.inc(static_cast<double>(a.warm_edges_kept - before.warm_edges_kept));
    reuses.inc(static_cast<double>(a.scratch_reuses - before.scratch_reuses));
    allocs.inc(static_cast<double>(a.alloc_events - before.alloc_events));
  }
  return ok;
}

}  // namespace

bool bottleneck_solve(const Matrix& m, MatchingScratch& s) {
  return bottleneck_solve_impl(m, s);
}

bool bottleneck_solve(const SupportIndex& idx, MatchingScratch& s) {
  return bottleneck_solve_impl(idx, s);
}

}  // namespace reco
