// Exact bottleneck (max-min) perfect matching — thin wrappers over the
// amortized engine in matching_engine.cpp.  These no-scratch overloads
// serve one-shot callers and tests through a thread-local arena; hot
// loops (BvN peel rounds, the simulator controller) own a MatchingScratch
// and call bottleneck_solve directly to keep warm-start state and zero
// steady-state allocation under their control.
#include "matching/bottleneck.hpp"

#include "matching/matching_engine.hpp"

namespace reco {

namespace {

MatchingScratch& tls_scratch() {
  static thread_local MatchingScratch s;
  return s;
}

std::optional<BottleneckMatching> from_scratch(bool ok, int n, const MatchingScratch& s) {
  if (!ok) return std::nullopt;
  BottleneckMatching out;
  out.bottleneck = s.bottleneck;
  out.pairs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.pairs.emplace_back(i, s.final_left[i]);
  return out;
}

}  // namespace

std::optional<BottleneckMatching> bottleneck_perfect_matching(const Matrix& m) {
  MatchingScratch& s = tls_scratch();
  return from_scratch(bottleneck_solve(m, s), m.n(), s);
}

std::optional<BottleneckMatching> bottleneck_perfect_matching(const SupportIndex& idx) {
  MatchingScratch& s = tls_scratch();
  return from_scratch(bottleneck_solve(idx, s), idx.n(), s);
}

}  // namespace reco
