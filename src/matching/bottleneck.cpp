#include "matching/bottleneck.hpp"

#include <algorithm>

#include "matching/hopcroft_karp.hpp"

namespace reco {

std::optional<BottleneckMatching> bottleneck_perfect_matching(const Matrix& m) {
  // Distinct nonzero values, ascending.
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(m.n()) * m.n());
  for (int i = 0; i < m.n(); ++i) {
    for (int j = 0; j < m.n(); ++j) {
      const double x = m.at(i, j);
      if (!approx_zero(x)) values.push_back(x);
    }
  }
  if (values.empty()) return std::nullopt;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end(),
                           [](double a, double b) { return approx_eq(a, b); }),
               values.end());

  // A perfect matching must exist at the smallest nonzero threshold.
  if (!has_perfect_matching_at(m, values.front())) return std::nullopt;

  // Binary search for the largest threshold still admitting a perfect
  // matching.  Invariant: feasible at values[lo], infeasible at values[hi].
  std::size_t lo = 0;
  std::size_t hi = values.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (has_perfect_matching_at(m, values[mid])) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  const double best = values[lo];
  const MatchingResult r = threshold_matching(m, best);
  BottleneckMatching out;
  out.bottleneck = best;
  out.pairs.reserve(m.n());
  for (int i = 0; i < m.n(); ++i) out.pairs.emplace_back(i, r.match_left[i]);
  return out;
}

std::optional<BottleneckMatching> bottleneck_perfect_matching(const SupportIndex& idx) {
  // Distinct nonzero values, ascending.  Walking the sorted support row by
  // row visits nonzeros in the same row-major order as the dense scan, so
  // the sorted/uniqued value ladder — and hence the binary search and the
  // returned matching — is identical to the dense overload's.
  std::vector<double> values;
  values.reserve(idx.nnz());
  for (int i = 0; i < idx.n(); ++i) {
    for (const int j : idx.row_support(i)) values.push_back(idx.at(i, j));
  }
  if (values.empty()) return std::nullopt;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end(),
                           [](double a, double b) { return approx_eq(a, b); }),
               values.end());

  if (!has_perfect_matching_at(idx, values.front())) return std::nullopt;

  std::size_t lo = 0;
  std::size_t hi = values.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (has_perfect_matching_at(idx, values[mid])) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  const double best = values[lo];
  const MatchingResult r = threshold_matching(idx, best);
  BottleneckMatching out;
  out.bottleneck = best;
  out.pairs.reserve(idx.n());
  for (int i = 0; i < idx.n(); ++i) out.pairs.emplace_back(i, r.match_left[i]);
  return out;
}

}  // namespace reco
