// Exact bottleneck (max-min) perfect matching: among all perfect matchings
// on the nonzero support of a doubly stochastic matrix, find one whose
// minimum matched entry is maximum.  This is the "max-min matching" used by
// Reco-Sin (Alg. 1, Line 6) to extract the permutation with the largest
// possible coefficient.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/matrix.hpp"
#include "core/support_index.hpp"

namespace reco {

struct BottleneckMatching {
  /// Matched pairs (row, col); a perfect matching on the nonzero support.
  std::vector<std::pair<int, int>> pairs;
  /// The maximized minimum entry along the matching.
  double bottleneck = 0.0;
};

/// Exact max-min perfect matching via binary search over the distinct
/// nonzero values of `m` with a Hopcroft-Karp feasibility probe per step.
/// Returns nullopt when no perfect matching exists on the nonzero support
/// (never happens for doubly stochastic matrices, by Birkhoff's theorem).
std::optional<BottleneckMatching> bottleneck_perfect_matching(const Matrix& m);

/// Sparse-path variant: value collection and every feasibility probe walk
/// the support index, so one call costs O(nnz * sqrt(N) * log(nnz)) instead
/// of O(N^2 * sqrt(N) * log(N^2)).  Used by the exact-bottleneck peel.
std::optional<BottleneckMatching> bottleneck_perfect_matching(const SupportIndex& idx);

}  // namespace reco
