#include "matching/incremental_matcher.hpp"

#include "obs/obs.hpp"

namespace reco {

IncrementalMatcher::IncrementalMatcher(const SupportIndex& index, double threshold)
    : index_(&index),
      threshold_(threshold),
      n_(index.n()),
      match_left_(index.n(), -1),
      match_right_(index.n(), -1),
      visited_(index.n(), 0) {}

void IncrementalMatcher::set_threshold(double threshold) {
  const bool raised = threshold > threshold_;
  threshold_ = threshold;
  if (!raised) return;
  for (int i = 0; i < n_; ++i) {
    const int j = match_left_[i];
    if (j != -1 && !edge_present(i, j)) {
      match_left_[i] = -1;
      match_right_[j] = -1;
      --size_;
    }
  }
}

bool IncrementalMatcher::try_augment(int row) {
  // Support lists are sorted ascending, so the candidate order is the same
  // as a dense j = 0..n-1 probe restricted to present edges — the matching
  // found is identical to the dense matcher's, just without touching zeros.
  const bool check_value = !support_only();
  for (const int j : index_->row_support(row)) {
    if (visited_[j] == stamp_) continue;
    if (check_value && !edge_present(row, j)) continue;
    visited_[j] = stamp_;
    const int other = match_right_[j];
    if (other == -1 || try_augment(other)) {
      match_left_[row] = j;
      match_right_[j] = row;
      ++path_edges_cur_;
      return true;
    }
  }
  return false;
}

int IncrementalMatcher::rematch() {
  const bool obs_on = obs::enabled();
  for (int i = 0; i < n_; ++i) {
    if (match_left_[i] != -1) continue;
    ++stamp_;
    path_edges_cur_ = 0;
    if (try_augment(i)) {
      ++size_;
      ++stats_.augmentations;
      stats_.path_edges += path_edges_cur_;
      if (obs_on) {
        static obs::Histogram& path_len =
            obs::metrics().histogram("matching.aug_path_edges", obs::pow2_buckets(256.0));
        path_len.observe(static_cast<double>(path_edges_cur_));
      }
    }
  }
  return size_;
}

std::vector<std::pair<int, int>> IncrementalMatcher::pairs() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(size_);
  for (int i = 0; i < n_; ++i) {
    if (match_left_[i] != -1) out.emplace_back(i, match_left_[i]);
  }
  return out;
}

}  // namespace reco
