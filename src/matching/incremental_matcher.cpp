#include "matching/incremental_matcher.hpp"

#include "obs/obs.hpp"

namespace reco {

IncrementalMatcher::IncrementalMatcher(const SupportIndex& index, double threshold)
    : index_(&index),
      threshold_(threshold),
      n_(index.n()),
      match_left_(index.n(), -1),
      match_right_(index.n(), -1),
      visited_(index.n(), 0) {
  scratch_.stack_u.assign(static_cast<std::size_t>(n_) + 1, 0);
  scratch_.stack_e.assign(static_cast<std::size_t>(n_) + 1, 0);
}

void IncrementalMatcher::set_threshold(double threshold) {
  const bool raised = threshold > threshold_;
  threshold_ = threshold;
  if (!raised) return;
  for (int i = 0; i < n_; ++i) {
    const int j = match_left_[i];
    if (j != -1 && !edge_present(i, j)) {
      match_left_[i] = -1;
      match_right_[j] = -1;
      --size_;
    }
  }
}

bool IncrementalMatcher::try_augment(int row) {
  // Support lists are sorted ascending, so the candidate order is the same
  // as a dense j = 0..n-1 probe restricted to present edges — the matching
  // found is identical to the dense matcher's, just without touching zeros.
  //
  // Iterative Kuhn DFS: each frame is (row, cursor into its support list).
  // A row enters the stack at most once per augmentation (it arrives as
  // the match of a freshly visited column), so the shared scratch stacks
  // of size n_ + 1 always suffice.
  const bool check_value = !support_only();
  std::vector<int>& su = scratch_.stack_u;
  std::vector<int>& se = scratch_.stack_e;
  su[0] = row;
  se[0] = 0;
  int sp = 1;
  while (sp > 0) {
    const int u = su[sp - 1];
    const auto& support = index_->row_support(u);
    const int degree = static_cast<int>(support.size());
    int e = se[sp - 1];
    int found_j = -1;
    bool descended = false;
    for (; e < degree; ++e) {
      const int j = support[e];
      if (visited_[j] == stamp_) continue;
      if (check_value && !edge_present(u, j)) continue;
      visited_[j] = stamp_;
      const int other = match_right_[j];
      if (other == -1) {
        found_j = j;
        break;
      }
      se[sp - 1] = e;  // remember the edge we descend through
      su[sp] = other;
      se[sp] = 0;
      ++sp;
      descended = true;
      break;
    }
    if (descended) continue;
    if (found_j != -1) {
      // Success: rewire each frame to the column it is parked on.
      int j = found_j;
      int k = sp - 1;
      while (true) {
        match_left_[su[k]] = j;
        match_right_[j] = su[k];
        ++path_edges_cur_;
        if (k == 0) break;
        --k;
        j = index_->row_support(su[k])[se[k]];
      }
      return true;
    }
    // Dead end: resume the parent just past the edge it descended through.
    --sp;
    if (sp > 0) ++se[sp - 1];
  }
  return false;
}

int IncrementalMatcher::rematch() {
  const bool obs_on = obs::enabled();
  for (int i = 0; i < n_; ++i) {
    if (match_left_[i] != -1) continue;
    ++stamp_;
    path_edges_cur_ = 0;
    if (try_augment(i)) {
      ++size_;
      ++stats_.augmentations;
      stats_.path_edges += path_edges_cur_;
      if (obs_on) {
        static obs::Histogram& path_len =
            obs::metrics().histogram("matching.aug_path_edges", obs::pow2_buckets(256.0));
        path_len.observe(static_cast<double>(path_edges_cur_));
      }
    }
  }
  return size_;
}

std::vector<std::pair<int, int>> IncrementalMatcher::pairs() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(size_);
  for (int i = 0; i < n_; ++i) {
    if (match_left_[i] != -1) out.emplace_back(i, match_left_[i]);
  }
  return out;
}

}  // namespace reco
