#include "matching/hungarian.hpp"

#include <limits>

namespace reco {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

AssignmentResult min_cost_assignment(const Matrix& cost) {
  // Classic potentials formulation with 1-based sentinel row/column 0.
  const int n = cost.n();
  std::vector<double> u(n + 1, 0.0);   // row potentials
  std::vector<double> v(n + 1, 0.0);   // column potentials
  std::vector<int> p(n + 1, 0);        // p[j] = row matched to column j
  std::vector<int> way(n + 1, 0);      // back-pointers along the alternating tree

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost.at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult r;
  r.col_of_row.assign(n, -1);
  for (int j = 1; j <= n; ++j) {
    if (p[j] != 0) r.col_of_row[p[j] - 1] = j - 1;
  }
  for (int i = 0; i < n; ++i) r.total += cost.at(i, r.col_of_row[i]);
  return r;
}

AssignmentResult max_weight_assignment(const Matrix& weight) {
  const int n = weight.n();
  Matrix neg(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) neg.at(i, j) = -weight.at(i, j);
  }
  AssignmentResult r = min_cost_assignment(neg);
  r.total = -r.total;
  return r;
}

}  // namespace reco
