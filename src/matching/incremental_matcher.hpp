// Incrementally maintained bipartite matching over the support of a demand
// matrix at a given threshold.
//
// BvN-style peeling runs up to nnz(D) matching rounds on one matrix, but
// between rounds only the few entries that hit zero leave the support.
// Recomputing a matching from scratch each round would cost O(E sqrt(V))
// per round; this class instead repairs the previous matching with one
// Kuhn augmentation per broken edge, which is what makes dense 150x150
// coflows tractable on a laptop.
#pragma once

#include <vector>

#include "core/matrix.hpp"
#include "matching/hopcroft_karp.hpp"

namespace reco {

/// Maintains a maximum matching on the graph
///   { (i, j) : matrix(i, j) >= threshold }
/// where the matrix is owned by the caller and mutated between calls.
/// The caller reports support changes via `remove_edge` / threshold changes
/// via `set_threshold`, then calls `rematch()` to restore maximality.
class IncrementalMatcher {
 public:
  /// Binds to `matrix` (must outlive the matcher) with an initial threshold.
  IncrementalMatcher(const Matrix& matrix, double threshold);

  double threshold() const { return threshold_; }

  /// Lowering the threshold only adds edges: the current matching stays
  /// valid and rematch() can only grow it.  Raising it drops edges; any
  /// matched pair now below threshold is unmatched first.
  void set_threshold(double threshold);

  /// Notify that matrix(i, j) changed; if the matched edge (i, j) fell
  /// below the threshold it is unmatched (support shrank at (i,j)).
  void on_entry_changed(int i, int j);

  /// Restore maximality via augmenting paths from free rows.
  /// Returns the matching size.
  int rematch();

  int size() const { return size_; }
  bool is_perfect() const { return size_ == n_; }

  /// Matched column of row i, or -1.
  int matched_col(int i) const { return match_left_[i]; }

  /// Snapshot as (row -> col) pairs.
  std::vector<std::pair<int, int>> pairs() const;

 private:
  bool edge_present(int i, int j) const {
    return matrix_->at(i, j) >= threshold_ - kTimeEps;
  }
  bool try_augment(int row);

  const Matrix* matrix_;
  double threshold_;
  int n_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> visited_;  // per-augmentation stamps (column-indexed)
  int stamp_ = 0;
  int size_ = 0;
};

}  // namespace reco
