// Incrementally maintained bipartite matching over the support of a demand
// matrix at a given threshold.
//
// BvN-style peeling runs up to nnz(D) matching rounds on one matrix, but
// between rounds only the few entries that hit zero leave the support.
// Recomputing a matching from scratch each round would cost O(E sqrt(V))
// per round; this class instead repairs the previous matching with one
// Kuhn augmentation per broken edge.  Augmentation walks the SupportIndex
// adjacency lists, so each probe costs O(row degree) instead of O(N) —
// on the paper's sparse coflows (Table I: 86% sparse) that is what makes
// peeling cost proportional to nnz rather than N^2.
#pragma once

#include <cstdint>
#include <vector>

#include "core/support_index.hpp"
#include "matching/matching_engine.hpp"

namespace reco {

/// Maintains a maximum matching on the graph
///   { (i, j) : index.at(i, j) >= threshold }
/// where the index is owned by the caller and mutated between calls.
/// The caller reports support changes via `on_entry_changed` / threshold
/// changes via `set_threshold`, then calls `rematch()` to restore
/// maximality.
///
/// Assumes a nonnegative matrix (demand semantics).  Then the index's
/// support invariant (every stored nonzero is >= kTimeEps) means that at
/// thresholds <= 2*kTimeEps the edge set is exactly the support, and the
/// per-edge value probe is skipped entirely in the augmentation loop.
class IncrementalMatcher {
 public:
  /// Binds to `index` (must outlive the matcher) with an initial threshold.
  IncrementalMatcher(const SupportIndex& index, double threshold);

  double threshold() const { return threshold_; }

  /// Lowering the threshold only adds edges: the current matching stays
  /// valid and rematch() can only grow it.  Raising it drops edges; any
  /// matched pair now below threshold is unmatched first.
  void set_threshold(double threshold);

  /// Notify that entry (i, j) changed; if the matched edge (i, j) fell
  /// below the threshold it is unmatched (support shrank at (i,j)).
  /// Inline: called for every matched entry of every peeling round.
  void on_entry_changed(int i, int j) {
    if (match_left_[i] == j && !edge_present(i, j)) {
      match_left_[i] = -1;
      match_right_[j] = -1;
      --size_;
    }
  }

  /// Restore maximality via augmenting paths from free rows.
  /// Returns the matching size.
  int rematch();

  int size() const { return size_; }
  bool is_perfect() const { return size_ == n_; }

  /// Matched column of row i, or -1.
  int matched_col(int i) const { return match_left_[i]; }

  /// Snapshot as (row -> col) pairs.
  std::vector<std::pair<int, int>> pairs() const;

  /// Cumulative repair-work accounting since construction: number of
  /// successful augmentations and total edges on their augmenting paths
  /// (the quantity BvN-peel telemetry reports as "repair cost per round").
  /// Plain counters bumped only on the success unwind — too cheap to gate.
  struct AugmentStats {
    std::uint64_t augmentations = 0;
    std::uint64_t path_edges = 0;
  };
  const AugmentStats& augment_stats() const { return stats_; }

 private:
  bool edge_present(int i, int j) const {
    return index_->at(i, j) >= threshold_ - kTimeEps;
  }
  /// True when the threshold is low enough that every support entry is an
  /// edge (see the class comment): the augmentation loop can then skip the
  /// dense value probe for each support neighbour.
  bool support_only() const { return threshold_ <= 2 * kTimeEps; }
  bool try_augment(int row);

  const SupportIndex* index_;
  double threshold_;
  int n_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> visited_;  // per-augmentation stamps (column-indexed)
  // Shared scratch type with the bottleneck engine; augmentation uses its
  // explicit DFS frame stacks (stack_u / stack_e), so repair paths of any
  // depth run in constant C++ stack space.
  MatchingScratch scratch_;
  int stamp_ = 0;
  int size_ = 0;
  AugmentStats stats_;
  std::uint64_t path_edges_cur_ = 0;  // edges on the in-flight augmenting path
};

}  // namespace reco
