// Hungarian algorithm (Kuhn-Munkres, O(n^3) potentials formulation) for
// dense assignment.  Used by the Helios/Edmonds-style "max total weight
// circuit selection" ablation and as an oracle in tests.
#pragma once

#include <utility>
#include <vector>

#include "core/matrix.hpp"

namespace reco {

struct AssignmentResult {
  /// col_of_row[i] = column assigned to row i (always a full assignment).
  std::vector<int> col_of_row;
  /// Total weight of the selected entries.
  double total = 0.0;
};

/// Minimum-cost full assignment on the dense cost matrix.
AssignmentResult min_cost_assignment(const Matrix& cost);

/// Maximum-weight full assignment (negated min-cost).
AssignmentResult max_weight_assignment(const Matrix& weight);

}  // namespace reco
