// Hopcroft-Karp entry points, backed by the flat-CSR iterative engine in
// matching_engine.cpp.  The per-call adjacency-list / MatchingResult API
// is kept for existing callers and tests; internally every variant runs
// on a thread-local MatchingScratch, so repeated calls reuse buffers and
// deep layered DFS cannot overflow the stack (the seed recursion could at
// path-shaped N=512 graphs; see tests/matching/test_matching_engine.cpp).
#include "matching/hopcroft_karp.hpp"

#include <algorithm>

#include "matching/matching_engine.hpp"

namespace reco {

namespace {

/// Thread-local arena for the legacy no-scratch API.  Hot paths (BvN
/// peeling, the simulator controller) hold their own scratch instead.
MatchingScratch& tls_scratch() {
  static thread_local MatchingScratch s;
  return s;
}

MatchingResult run_on_scratch(MatchingScratch& s) {
  MatchingResult r;
  r.match_left.assign(static_cast<std::size_t>(s.n_left), -1);
  r.match_right.assign(static_cast<std::size_t>(s.n_right), -1);
  r.size = hk_augment_csr(s, r.match_left, r.match_right, 0.0, /*check_value=*/false);
  return r;
}

}  // namespace

MatchingResult hopcroft_karp(int n_left, int n_right, const std::vector<std::vector<int>>& adj) {
  MatchingScratch& s = tls_scratch();
  s.n_left = n_left;
  s.n_right = n_right;
  s.csr_off.resize(static_cast<std::size_t>(n_left) + 1);
  s.csr_col.clear();
  s.csr_val.clear();
  s.csr_off[0] = 0;
  for (int u = 0; u < n_left; ++u) {
    s.csr_col.insert(s.csr_col.end(), adj[u].begin(), adj[u].end());
    s.csr_off[u + 1] = static_cast<int>(s.csr_col.size());
  }
  return run_on_scratch(s);
}

std::vector<std::vector<int>> threshold_adjacency(const Matrix& m, double threshold) {
  std::vector<std::vector<int>> adj(m.n());
  for (int i = 0; i < m.n(); ++i) {
    for (int j = 0; j < m.n(); ++j) {
      if (m.at(i, j) >= threshold - kTimeEps) adj[i].push_back(j);
    }
  }
  return adj;
}

std::vector<std::vector<int>> threshold_adjacency(const SupportIndex& idx, double threshold) {
  std::vector<std::vector<int>> adj(idx.n());
  for (int i = 0; i < idx.n(); ++i) {
    const auto support = idx.row_support(i);
    const auto vals = idx.row_values(i);
    adj[i].reserve(support.size());
    for (int k = 0; k < support.size(); ++k) {
      if (vals[k] >= threshold - kTimeEps) adj[i].push_back(support[k]);
    }
  }
  return adj;
}

MatchingResult threshold_matching(const Matrix& m, double threshold) {
  MatchingScratch& s = tls_scratch();
  build_csr(m, threshold, /*with_values=*/false, s);
  return run_on_scratch(s);
}

MatchingResult threshold_matching(const SupportIndex& idx, double threshold) {
  MatchingScratch& s = tls_scratch();
  build_csr(idx, threshold, /*with_values=*/false, s);
  return run_on_scratch(s);
}

bool has_perfect_matching_at(const Matrix& m, double threshold) {
  return threshold_matching(m, threshold).size == m.n();
}

bool has_perfect_matching_at(const SupportIndex& idx, double threshold) {
  return threshold_matching(idx, threshold).size == idx.n();
}

}  // namespace reco
