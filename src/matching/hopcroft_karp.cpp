#include "matching/hopcroft_karp.hpp"

#include <limits>
#include <queue>

namespace reco {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();

/// Layered BFS from all free left vertices; returns true if an augmenting
/// path exists.  dist[] receives BFS layers for the DFS phase.
bool bfs_layers(const std::vector<std::vector<int>>& adj, const std::vector<int>& match_left,
                const std::vector<int>& match_right, std::vector<int>& dist) {
  std::queue<int> q;
  for (std::size_t u = 0; u < adj.size(); ++u) {
    if (match_left[u] == -1) {
      dist[u] = 0;
      q.push(static_cast<int>(u));
    } else {
      dist[u] = kInf;
    }
  }
  bool found = false;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v : adj[u]) {
      const int w = match_right[v];
      if (w == -1) {
        found = true;
      } else if (dist[w] == kInf) {
        dist[w] = dist[u] + 1;
        q.push(w);
      }
    }
  }
  return found;
}

bool dfs_augment(int u, const std::vector<std::vector<int>>& adj, std::vector<int>& match_left,
                 std::vector<int>& match_right, std::vector<int>& dist) {
  for (int v : adj[u]) {
    const int w = match_right[v];
    if (w == -1 || (dist[w] == dist[u] + 1 && dfs_augment(w, adj, match_left, match_right, dist))) {
      match_left[u] = v;
      match_right[v] = u;
      return true;
    }
  }
  dist[u] = kInf;  // dead end: prune for this phase
  return false;
}
}  // namespace

MatchingResult hopcroft_karp(int n_left, int n_right, const std::vector<std::vector<int>>& adj) {
  MatchingResult r;
  r.match_left.assign(n_left, -1);
  r.match_right.assign(n_right, -1);
  std::vector<int> dist(n_left);
  while (bfs_layers(adj, r.match_left, r.match_right, dist)) {
    for (int u = 0; u < n_left; ++u) {
      if (r.match_left[u] == -1) {
        if (dfs_augment(u, adj, r.match_left, r.match_right, dist)) ++r.size;
      }
    }
  }
  return r;
}

std::vector<std::vector<int>> threshold_adjacency(const Matrix& m, double threshold) {
  std::vector<std::vector<int>> adj(m.n());
  for (int i = 0; i < m.n(); ++i) {
    for (int j = 0; j < m.n(); ++j) {
      if (m.at(i, j) >= threshold - kTimeEps) adj[i].push_back(j);
    }
  }
  return adj;
}

std::vector<std::vector<int>> threshold_adjacency(const SupportIndex& idx, double threshold) {
  std::vector<std::vector<int>> adj(idx.n());
  for (int i = 0; i < idx.n(); ++i) {
    const auto& support = idx.row_support(i);
    adj[i].reserve(support.size());
    for (const int j : support) {
      if (idx.at(i, j) >= threshold - kTimeEps) adj[i].push_back(j);
    }
  }
  return adj;
}

MatchingResult threshold_matching(const Matrix& m, double threshold) {
  return hopcroft_karp(m.n(), m.n(), threshold_adjacency(m, threshold));
}

MatchingResult threshold_matching(const SupportIndex& idx, double threshold) {
  return hopcroft_karp(idx.n(), idx.n(), threshold_adjacency(idx, threshold));
}

bool has_perfect_matching_at(const Matrix& m, double threshold) {
  return threshold_matching(m, threshold).size == m.n();
}

bool has_perfect_matching_at(const SupportIndex& idx, double threshold) {
  return threshold_matching(idx, threshold).size == idx.n();
}

}  // namespace reco
