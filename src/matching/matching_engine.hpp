// Amortized bottleneck-matching engine.
//
// Every hot path of the reproduction reduces to repeated exact max-min
// (bottleneck) matchings over a slowly-mutating demand matrix: each
// kExactBottleneck BvN peel round subtracts one permutation and asks
// again, and the adaptive simulator controller re-plans against a residual
// that changed along one matching.  The seed implementation restarted a
// full Hopcroft-Karp from an empty matching for every threshold probe of
// every call; this engine amortizes that work at three layers:
//
//  1. *Matching reuse across the threshold ladder.*  Probing a lower
//     threshold only adds edges, so the engine keeps one persistent
//     working matching: before each probe it unmatches only the pairs
//     whose entry sits below the probe threshold, then augments from the
//     free rows.  Feasibility is exactly monotone in the threshold, so
//     the ladder is never materialized in sorted order: the engine
//     quickselect-partitions an unsorted candidate pool around probed
//     pivots (O(nnz) total partition work, vs the seed's O(nnz log nnz)
//     sort per call), seeded by the previous solve's bottleneck as a
//     first-pivot hint — on a slowly-mutating matrix the hint probe plus
//     one successor probe settle the search in O(1) probes.  A failed
//     probe additionally yields a Hall-violation certificate (a deficient
//     row set S with |N(S)| < |S|) that upper-bounds every feasible
//     threshold and prunes the candidate pool.
//  2. *Flat-CSR + scratch-arena Hopcroft-Karp.*  Adjacency is one CSR
//     (offsets / columns / values) built in a single O(nnz) pass per
//     solve; BFS runs on an index ring buffer and DFS on an explicit
//     frame stack.  Every buffer lives in a caller-owned MatchingScratch,
//     so steady-state solves allocate nothing.
//  3. *Warm-started peels.*  The working matching persists across solves:
//     a peel round that subtracted one permutation re-enters the next
//     round's ladder with at most the shrunk entries unmatched, repairing
//     only those vertices.  Warm seeds are re-validated against the
//     current matrix per probe, so warm starts are always safe, merely
//     faster when the caller mutated little.
//
// Determinism contract: results are bit-identical to the reference
// algorithm (dense_reference::bottleneck_perfect_matching_reference).
// Probes only answer feasibility — the maximum-matching *size* at a
// threshold is algorithm-independent — so warm starts cannot change which
// ladder value wins; the returned matching is then produced by one
// cold-start Hopcroft-Karp at the winning threshold, whose BFS/DFS visit
// order matches the reference exactly (rows ascending, columns ascending,
// layered DFS with dead-end pruning).  Pinned by
// tests/property/test_matching_engine_equivalence.cpp.
//
// Value-ladder semantics (the epsilon-dedup fix): candidate values are
// compared *exactly* — the selected bottleneck is the largest value v in
// the support with a feasible probe, where the tolerance lives only in
// the feasibility comparison (an edge is present at threshold t iff its
// entry is >= t - kTimeEps).  The seed's `std::unique` over `approx_eq`
// merged transitive near-equal chains a~b~c even when a and c differ by
// more than the tolerance, which could shift the selected bottleneck
// downward; exact value comparison makes the selection independent of
// chain shape (regression-pinned in
// tests/matching/test_matching_engine.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/matrix.hpp"
#include "core/support_index.hpp"

namespace reco {

/// BFS layer-expansion strategy for Hopcroft-Karp phases.
///
/// kCsr walks the flat-CSR edge list (O(E) per phase) — unbeatable when
/// the support is sparse.  kBitset expands each frontier by OR-ing
/// per-row adjacency bitmasks (word-parallel: 64 columns per operation,
/// O(frontier * N/64) per layer), which wins once the matrix is dense
/// enough that per-edge pointer chasing dominates.  kAuto picks per call
/// from the dimension and the built CSR's edge density; both paths
/// produce bit-identical matchings (BFS layer depths are canonical — they
/// do not depend on intra-layer visit order — and the DFS phase always
/// walks the CSR ascending), pinned by the scale property sweep.
enum class HkMode { kAuto, kCsr, kBitset };

/// kAuto thresholds: bitset expansion needs enough columns for the
/// word-parallelism to pay for building the masks (N/64 words per row)
/// and enough density that the CSR walk is the slower of the two.  Kept
/// at >= 192 ports so every N <= 128 microbenchmark row stays on the
/// proven CSR path.
inline constexpr int kBitsetMinPorts = 192;
inline constexpr double kBitsetMinDensity = 1.0 / 16.0;

/// Caller-owned scratch arena for the matching engine.  All buffers grow
/// to high-water capacity and are then reused; `stats.alloc_events`
/// counts capacity growths and `stats.scratch_reuses` counts solves that
/// completed without a single heap allocation (the steady state of a BvN
/// peel).  A scratch is cheap to construct but expensive to keep cold —
/// hot loops (peel rounds, controller decisions) hold one across calls.
///
/// Not thread-safe: one scratch per thread of execution.  The engine
/// never reads a scratch field it has not written in the same call except
/// the persistent warm matching (`match_left`/`match_right`), which is
/// re-validated entry by entry against the current matrix.
struct MatchingScratch {
  // ---- flat-CSR adjacency (rebuilt per solve, capacity reused) --------
  std::vector<int> csr_off;     ///< n_left + 1 offsets into csr_col/csr_val
  std::vector<int> csr_col;     ///< column per edge, ascending within a row
  std::vector<double> csr_val;  ///< entry value per edge (empty: unweighted)
  int n_left = 0;
  int n_right = 0;

  // ---- Hopcroft-Karp state -------------------------------------------
  std::vector<int> match_left;   ///< persistent working matching (warm seed)
  std::vector<int> match_right;
  std::vector<int> final_left;   ///< canonical cold-start result of a solve
  std::vector<int> final_right;
  std::vector<int> dist;         ///< BFS layer per left vertex
  std::vector<int> queue;        ///< BFS ring buffer (size n_left)
  std::vector<int> stack_u;      ///< iterative-DFS frame: vertex
  std::vector<int> stack_e;      ///< iterative-DFS frame: edge cursor

  // ---- bitset BFS layer expansion ------------------------------------
  HkMode hk_mode = HkMode::kAuto;       ///< force kCsr/kBitset (tests, benches)
  std::vector<std::uint64_t> adj_bits;  ///< n_left rows x ceil(n_right/64) words
  std::vector<std::uint64_t> visited_bits;   ///< columns reached this BFS
  std::vector<std::uint64_t> layer_bits;     ///< OR of frontier rows' adjacency
  std::vector<std::uint64_t> free_col_bits;  ///< columns with match_right == -1

  // ---- bottleneck candidate pool + Hall-certificate prune ------------
  std::vector<double> values;    ///< unsorted candidate pool, partitioned in place
  std::vector<int> row_mark;     ///< stamp marks: rows reachable from free rows
  std::vector<int> col_mark;     ///< stamp marks: N(S)
  std::vector<int> gate_stamp;   ///< stamp: col_gate[j] valid this prune
  std::vector<double> col_gate;  ///< best entering value per unreached column
  std::vector<double> gate_heap; ///< entering values for d-th-largest selection
  int mark_stamp = 0;

  // ---- results of the last successful bottleneck_solve ---------------
  double bottleneck = 0.0;       ///< selected max-min value
  int matching_size = 0;         ///< size of final matching (== n on success)
  bool has_hint = false;         ///< previous solve succeeded at this dimension
  double hint = 0.0;             ///< its bottleneck: first-pivot guess next solve

  /// Cumulative engine accounting (plain counters; mirrored into the obs
  /// registry once per solve when telemetry is on).
  struct Stats {
    std::uint64_t solves = 0;           ///< bottleneck_solve calls
    std::uint64_t probes = 0;           ///< feasibility probes run
    std::uint64_t probes_pruned = 0;    ///< ladder values skipped by Hall prune
    std::uint64_t hall_prunes = 0;      ///< failed probes whose certificate cut the ladder
    std::uint64_t phases = 0;           ///< Hopcroft-Karp BFS phases
    std::uint64_t bitset_phases = 0;    ///< phases whose BFS ran word-parallel
    std::uint64_t bitset_builds = 0;    ///< adjacency-bitmask builds (per hk call)
    std::uint64_t augmentations = 0;    ///< successful augmenting paths
    std::uint64_t warm_start_hits = 0;  ///< solves seeded with >0 surviving warm edges
    std::uint64_t warm_edges_kept = 0;  ///< warm edges surviving the first probe filter
    std::uint64_t scratch_reuses = 0;   ///< solves with zero heap allocations
    std::uint64_t alloc_events = 0;     ///< buffer capacity growths
  } stats;
};

/// Exact max-min perfect matching over the nonzero support of `m`.
/// On success: returns true, sets `s.bottleneck` and the canonical
/// matching in `s.final_left` / `s.final_right`, and leaves the matching
/// as the warm seed for the next solve.  Returns false when no perfect
/// matching exists on the support (then `s.final_*` are unspecified).
/// Allocation-free in steady state when `s` is reused across calls.
bool bottleneck_solve(const Matrix& m, MatchingScratch& s);

/// Sparse-path twin: ladder collection and CSR build walk the support
/// index (O(nnz) instead of O(N^2)).  Same results, same contract.
bool bottleneck_solve(const SupportIndex& idx, MatchingScratch& s);

/// Maximum matching on the scratch's CSR at `threshold`, continuing from
/// the current contents of `ml`/`mr` (pass arrays cleared to -1 for a
/// cold start).  `check_value` gates the per-edge `csr_val >= threshold -
/// kTimeEps` probe; pass false when the CSR was already built at the
/// target threshold.  Returns the total matching size.  Exposed for the
/// threshold-matching wrappers in hopcroft_karp.cpp; bottleneck callers
/// use bottleneck_solve.
int hk_augment_csr(MatchingScratch& s, std::vector<int>& ml, std::vector<int>& mr,
                   double threshold, bool check_value);

/// Build the scratch CSR from a dense matrix / support index, keeping
/// edges with value >= keep_threshold - kTimeEps.  Columns come out
/// ascending per row (the dense probe order restricted to present edges).
/// `with_values` controls whether csr_val is filled (bottleneck probes
/// need it; plain threshold matching does not).
void build_csr(const Matrix& m, double keep_threshold, bool with_values, MatchingScratch& s);
void build_csr(const SupportIndex& idx, double keep_threshold, bool with_values,
               MatchingScratch& s);

}  // namespace reco
