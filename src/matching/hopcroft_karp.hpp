// Hopcroft-Karp maximum bipartite matching, plus matrix-threshold helpers.
//
// Circuit establishments in an OCS are matchings between ingress and egress
// ports (Sec. II-A); every decomposition algorithm in this repo reduces to
// repeated bipartite matching over the support {(i,j) : d_ij >= threshold}.
#pragma once

#include <vector>

#include "core/matrix.hpp"
#include "core/support_index.hpp"

namespace reco {

/// Result of a maximum-matching computation on an n_left x n_right graph.
struct MatchingResult {
  /// match_left[i] = matched right vertex of i, or -1.
  std::vector<int> match_left;
  /// match_right[j] = matched left vertex of j, or -1.
  std::vector<int> match_right;
  int size = 0;

  bool is_perfect() const {
    return size == static_cast<int>(match_left.size()) &&
           size == static_cast<int>(match_right.size());
  }
};

/// Maximum matching of the bipartite graph given by adjacency lists
/// (adj[i] = right neighbours of left vertex i).  O(E * sqrt(V)).
MatchingResult hopcroft_karp(int n_left, int n_right, const std::vector<std::vector<int>>& adj);

/// Adjacency of the support {(i,j) : m(i,j) >= threshold - eps}.
std::vector<std::vector<int>> threshold_adjacency(const Matrix& m, double threshold);

/// Same adjacency built from the sparse support index in O(nnz) instead of
/// O(N^2); lists come out ascending (the index keeps its support sorted),
/// so the matching found downstream is identical to the dense build's.
std::vector<std::vector<int>> threshold_adjacency(const SupportIndex& idx, double threshold);

/// Maximum matching restricted to entries >= threshold.
MatchingResult threshold_matching(const Matrix& m, double threshold);
MatchingResult threshold_matching(const SupportIndex& idx, double threshold);

/// True iff a perfect matching exists using only entries >= threshold.
bool has_perfect_matching_at(const Matrix& m, double threshold);
bool has_perfect_matching_at(const SupportIndex& idx, double threshold);

}  // namespace reco
