// Not-all-stop OCS executor (Sec. VI discussion; Sunflow's switch model):
// during a reconfiguration only the *affected* ports halt — circuits that
// appear unchanged in consecutive assignments keep transmitting.
//
// Model: assignments are applied in order; each circuit (i, j) of
// assignment u becomes ready at max(free_in[i], free_out[j]), plus delta if
// either endpoint carried a *different* circuit before, and is then held
// until its own residual demand finishes (per-circuit early stop) or the
// planned duration expires.  This is a faithful flow-level rendering of
// Sunflow's port-pair semantics for schedules expressed as assignment
// sequences.
#pragma once

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"
#include "ocs/all_stop_executor.hpp"

namespace reco {

/// Replay `schedule` against `demand` in the not-all-stop model.
/// `reconfigurations` counts circuit set-ups that actually paid a delta
/// (a circuit kept from the previous assignment pays nothing).
ExecutionResult execute_not_all_stop(const CircuitSchedule& schedule, const Matrix& demand,
                                     Time delta);

}  // namespace reco
