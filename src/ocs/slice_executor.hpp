// Pseudo-time axis machinery for multi-coflow schedules (Alg. 2, Lines
// 10-12).  A pseudo-time slice schedule ignores reconfiguration delay; the
// all-stop OCS charges one delta per *start batch* (set of flows starting
// at the same pseudo instant), and every in-flight flow is halted by each
// batch that fires while it transmits.
#pragma once

#include <vector>

#include "core/slice.hpp"
#include "core/types.hpp"

namespace reco {

/// Map a pseudo-time schedule S-hat_o to real time S_o:
///   start' = t1 + delta * |{batches s <= t1}|   (waits for its own batch's
///                                                reconfiguration too)
///   end'   = t2 + delta * |{batches s <  t2}|   (halted by every batch that
///                                                fires before it finishes)
/// Both shifts count the flow's own batch, so port feasibility is preserved
/// (Lemma 2) and per-flow duration is stretched by exactly the number of
/// mid-flight batches times delta (the all-stop halts).
SliceSchedule inflate_pseudo_time(const SliceSchedule& pseudo, Time delta);

/// In-place twin: writes the inflated schedule into `real_out` (cleared
/// first) and uses `batch_scratch` for the start-batch buffer, reusing both
/// buffers' capacity.  The online replan core inflates once per epoch with
/// long-lived scratch, so steady state allocates nothing here.
void inflate_pseudo_time_into(const SliceSchedule& pseudo, Time delta,
                              std::vector<Time>& batch_scratch, SliceSchedule& real_out);

/// Reconfigurations an all-stop OCS needs to run this schedule: one per
/// distinct start batch (Alg. 2's eta over the full horizon).
int count_reconfigurations(const SliceSchedule& schedule);

/// Aggregate stats of a real-time multi-coflow schedule.
struct MultiExecutionStats {
  std::vector<Time> cct;  ///< per-coflow completion times (index = coflow id)
  int reconfigurations = 0;
  Time makespan = 0.0;
};

MultiExecutionStats analyze_schedule(const SliceSchedule& schedule, int num_coflows);

/// Not-all-stop realization of a pseudo-time schedule (Sec. VI): each
/// circuit pays its own per-port setup delta and nothing halts anybody
/// else.  Slices are realized in pseudo-start order:
///   real_start = max(pseudo_start, in_free, out_free) + delta
/// so the port constraint holds by construction and priority (pseudo
/// order) is preserved per port.  Start-time alignment buys nothing here —
/// which is exactly why Theorem 3's not-all-stop extension only needs the
/// transform's stretch bound, not its batching.
SliceSchedule realize_not_all_stop(const SliceSchedule& pseudo, Time delta);

}  // namespace reco
