#include "ocs/all_stop_executor.hpp"

#include <algorithm>

namespace reco {

ExecutionResult execute_all_stop(const CircuitSchedule& schedule, const Matrix& demand,
                                 Time delta, Time start_clock, CoflowId coflow_id,
                                 SliceSchedule* out_slices) {
  ExecutionResult r;
  r.residual = demand;
  Time clock = start_clock;

  for (const CircuitAssignment& a : schedule.assignments) {
    // Largest residual among this assignment's circuits decides whether the
    // establishment is useful at all and how long it is actually held.
    // Residuals under kMinServiceQuantum are already-served round-off
    // crumbs: never worth a reconfiguration.
    Time max_rem = 0.0;
    for (const Circuit& c : a.circuits) {
      const Time rem = r.residual.at(c.in, c.out);
      if (rem >= kMinServiceQuantum) max_rem = std::max(max_rem, rem);
    }
    if (max_rem == 0.0) continue;  // nothing useful left: skip, no reconfig

    clock += delta;
    ++r.reconfigurations;
    r.reconfiguration_time += delta;

    const Time hold = std::min(a.duration, max_rem);
    for (const Circuit& c : a.circuits) {
      const Time rem = r.residual.at(c.in, c.out);
      if (rem < kMinServiceQuantum) continue;  // crumb: not worth a circuit
      const Time sent = std::min(hold, rem);
      r.residual.at(c.in, c.out) = clamp_zero(rem - sent);
      if (out_slices != nullptr) {
        out_slices->push_back({clock, clock + sent, c.in, c.out, coflow_id});
      }
    }
    clock += hold;
    r.transmission_time += hold;
  }

  r.cct = clock - start_clock;
  r.satisfied = r.residual.max_entry() < kMinServiceQuantum;
  return r;
}

}  // namespace reco
