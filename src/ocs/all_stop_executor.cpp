#include "ocs/all_stop_executor.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"

namespace reco {

ExecutionResult execute_all_stop(const CircuitSchedule& schedule, const Matrix& demand,
                                 Time delta, Time start_clock, CoflowId coflow_id,
                                 SliceSchedule* out_slices) {
  obs::ScopedSpan span("ocs.execute_all_stop", "ocs");
  ExecutionResult r;
  r.residual = demand;
  Time clock = start_clock;
  int skipped = 0;

  for (const CircuitAssignment& a : schedule.assignments) {
    // Largest residual among this assignment's circuits decides whether the
    // establishment is useful at all and how long it is actually held.
    // Residuals under kMinServiceQuantum are already-served round-off
    // crumbs: never worth a reconfiguration.
    Time max_rem = 0.0;
    for (const Circuit& c : a.circuits) {
      const Time rem = r.residual.at(c.in, c.out);
      if (rem >= kMinServiceQuantum) max_rem = std::max(max_rem, rem);
    }
    if (max_rem == 0.0) {
      ++skipped;
      continue;  // nothing useful left: skip, no reconfig
    }

    clock += delta;
    ++r.reconfigurations;
    r.reconfiguration_time += delta;

    const Time hold = std::min(a.duration, max_rem);
    for (const Circuit& c : a.circuits) {
      const Time rem = r.residual.at(c.in, c.out);
      if (rem < kMinServiceQuantum) continue;  // crumb: not worth a circuit
      const Time sent = std::min(hold, rem);
      r.residual.at(c.in, c.out) = clamp_zero(rem - sent);
      if (out_slices != nullptr) {
        out_slices->push_back({clock, clock + sent, c.in, c.out, coflow_id});
      }
    }
    clock += hold;
    r.transmission_time += hold;
  }

  r.cct = clock - start_clock;
  r.satisfied = r.residual.max_entry() < kMinServiceQuantum;
  if (obs::enabled()) {
    obs::metrics().counter("ocs.all_stop.reconfigurations").inc(r.reconfigurations);
    obs::metrics().counter("ocs.all_stop.skipped_assignments").inc(skipped);
    obs::metrics().counter("ocs.all_stop.transmission_time").inc(r.transmission_time);
    // Per-coflow service window on the simulated-time axis.
    obs::tracer().sim_span("coflow " + std::to_string(coflow_id), "ocs.coflow", start_clock,
                           clock, coflow_id,
                           {{"reconfigurations", static_cast<double>(r.reconfigurations)},
                            {"transmit", r.transmission_time}});
    span.arg("reconfigurations", r.reconfigurations);
    span.arg("skipped", skipped);
  }
  return r;
}

}  // namespace reco
