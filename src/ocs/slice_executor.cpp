#include "ocs/slice_executor.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace reco {

namespace {
/// Number of batch times strictly below t (with tolerance).
std::size_t count_below(const std::vector<Time>& batches, Time t) {
  // upper_bound with tolerance: batches within eps of t count as == t.
  std::size_t lo = 0;
  std::size_t hi = batches.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (batches[mid] < t - kTimeEps) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Number of batch times <= t (with tolerance).
std::size_t count_at_or_below(const std::vector<Time>& batches, Time t) {
  std::size_t lo = 0;
  std::size_t hi = batches.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (batches[mid] <= t + kTimeEps) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}
}  // namespace

SliceSchedule inflate_pseudo_time(const SliceSchedule& pseudo, Time delta) {
  std::vector<Time> batches;
  SliceSchedule real;
  inflate_pseudo_time_into(pseudo, delta, batches, real);
  return real;
}

void inflate_pseudo_time_into(const SliceSchedule& pseudo, Time delta,
                              std::vector<Time>& batch_scratch, SliceSchedule& real_out) {
  start_batches_into(pseudo, batch_scratch);
  real_out.clear();
  real_out.reserve(pseudo.size());
  for (const FlowSlice& s : pseudo) {
    const Time start_shift = delta * static_cast<Time>(count_at_or_below(batch_scratch, s.start));
    const Time end_shift = delta * static_cast<Time>(count_below(batch_scratch, s.end));
    real_out.push_back({s.start + start_shift, s.end + end_shift, s.src, s.dst, s.coflow});
  }
}

int count_reconfigurations(const SliceSchedule& schedule) {
  return static_cast<int>(start_batches(schedule).size());
}

SliceSchedule realize_not_all_stop(const SliceSchedule& pseudo, Time delta) {
  std::vector<std::size_t> order(pseudo.size());
  for (std::size_t f = 0; f < order.size(); ++f) order[f] = f;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (pseudo[a].start != pseudo[b].start) return pseudo[a].start < pseudo[b].start;
    return a < b;
  });

  std::map<PortId, Time> free_in;
  std::map<PortId, Time> free_out;
  SliceSchedule real(pseudo.size());
  for (std::size_t f : order) {
    const FlowSlice& s = pseudo[f];
    const Time start = std::max({s.start, free_in[s.src], free_out[s.dst]}) + delta;
    const Time end = start + s.duration();
    real[f] = {start, end, s.src, s.dst, s.coflow};
    free_in[s.src] = end;
    free_out[s.dst] = end;
  }
  return real;
}

MultiExecutionStats analyze_schedule(const SliceSchedule& schedule, int num_coflows) {
  MultiExecutionStats stats;
  stats.cct = completion_times(schedule, num_coflows);
  stats.reconfigurations = count_reconfigurations(schedule);
  stats.makespan = makespan(schedule);
  return stats;
}

}  // namespace reco
