#include "ocs/not_all_stop_executor.hpp"

#include <algorithm>
#include <vector>

#include "obs/obs.hpp"

namespace reco {

ExecutionResult execute_not_all_stop(const CircuitSchedule& schedule, const Matrix& demand,
                                     Time delta) {
  obs::ScopedSpan span("ocs.execute_not_all_stop", "ocs");
  ExecutionResult r;
  r.residual = demand;
  const int n = demand.n();

  std::vector<Time> free_in(n, 0.0);
  std::vector<Time> free_out(n, 0.0);
  // Current circuit endpoint on each port (-1 = none yet).
  std::vector<int> peer_of_in(n, -1);
  std::vector<int> peer_of_out(n, -1);
  Time cct = 0.0;

  for (const CircuitAssignment& a : schedule.assignments) {
    for (const Circuit& c : a.circuits) {
      const Time rem = r.residual.at(c.in, c.out);
      if (rem < kMinServiceQuantum) continue;  // round-off crumb: not worth a circuit

      Time ready = std::max(free_in[c.in], free_out[c.out]);
      const bool changed = peer_of_in[c.in] != c.out || peer_of_out[c.out] != c.in;
      if (changed) {
        ready += delta;
        ++r.reconfigurations;
        r.reconfiguration_time += delta;
      }
      const Time hold = std::min(a.duration, rem);
      const Time end = ready + hold;

      r.residual.at(c.in, c.out) = clamp_zero(rem - hold);
      r.transmission_time += hold;
      free_in[c.in] = end;
      free_out[c.out] = end;
      peer_of_in[c.in] = c.out;
      peer_of_out[c.out] = c.in;
      cct = std::max(cct, end);
    }
  }

  r.cct = cct;
  r.satisfied = r.residual.max_entry() < kMinServiceQuantum;
  if (obs::enabled()) {
    obs::metrics().counter("ocs.not_all_stop.reconfigurations").inc(r.reconfigurations);
    obs::metrics().counter("ocs.not_all_stop.transmission_time").inc(r.transmission_time);
    span.arg("reconfigurations", r.reconfigurations);
  }
  return r;
}

}  // namespace reco
