// All-stop OCS executor (the switch model of Sec. II-A): replaying a
// circuit scheduling against the *original* demand matrix.
//
// Two behaviours matter for fidelity with the paper:
//  * Early stop — "when one circuit finishes transmitting its demand, the
//    OCS will automatically reconfigure" (Sec. III-B): an assignment is
//    held for min(planned duration, largest residual demand among its
//    circuits), which is exactly how Fig. 2's regularized matrix finishes
//    in 618 rather than 900+300.
//  * Useless assignments are skipped — if every circuit of an assignment
//    has zero residual demand, no reconfiguration happens and no time
//    passes (this is what lets a regularized schedule beat its nominal
//    coefficients).
#pragma once

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/slice.hpp"
#include "core/types.hpp"

namespace reco {

struct ExecutionResult {
  Time cct = 0.0;                    ///< transmission + reconfiguration time
  Time transmission_time = 0.0;      ///< total time circuits were held
  Time reconfiguration_time = 0.0;   ///< reconfigurations * delta
  int reconfigurations = 0;          ///< number of circuit establishments used
  bool satisfied = false;            ///< all demand transmitted
  Matrix residual;                   ///< demand left unserved (zero if satisfied)
};

/// Replay `schedule` against `demand` in the all-stop model with
/// reconfiguration delay `delta`.
///
/// If `out_slices` is non-null, a FlowSlice per (circuit, assignment) with
/// nonzero service is appended, tagged with `coflow_id`, on a real-time
/// axis starting at `start_clock` — this is how the multi-coflow baselines
/// compose sequential per-coflow schedules into one fabric-wide timeline.
ExecutionResult execute_all_stop(const CircuitSchedule& schedule, const Matrix& demand,
                                 Time delta, Time start_clock = 0.0, CoflowId coflow_id = 0,
                                 SliceSchedule* out_slices = nullptr);

}  // namespace reco
