#include "sched/fluid.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace reco {

FluidScheduleResult fluid_packet_schedule(const std::vector<Coflow>& coflows,
                                          const std::vector<int>& order) {
  FluidScheduleResult result;
  const int num_coflows = static_cast<int>(coflows.size());
  result.cct.assign(num_coflows, 0.0);
  if (coflows.empty()) return result;
  const int n = coflows.front().demand.n();

  // Remaining volume per (coflow, flow); port loads derived on the fly.
  std::vector<Matrix> remaining;
  remaining.reserve(coflows.size());
  for (const Coflow& c : coflows) remaining.push_back(c.demand);
  std::vector<char> done(num_coflows, 0);

  Time clock = 0.0;
  int active = 0;
  for (int k = 0; k < num_coflows; ++k) {
    if (remaining[k].nnz() == 0) {
      done[k] = 1;
    } else {
      ++active;
    }
  }

  while (active > 0) {
    // Allocation pass: priority order, MADD within each coflow.
    std::vector<double> cap_in(n, 1.0);
    std::vector<double> cap_out(n, 1.0);
    // gamma[k]: time to completion at current rates (inf if starved).
    std::vector<Time> gamma(num_coflows, std::numeric_limits<Time>::infinity());

    for (int idx : order) {
      if (done[idx]) continue;
      const Matrix& rem = remaining[idx];
      // Coflow bottleneck under the capacity left for it.
      Time bottleneck = 0.0;
      bool starved = false;
      for (int p = 0; p < n && !starved; ++p) {
        const Time in_load = rem.row_sum(p);
        if (in_load > kTimeEps) {
          if (cap_in[p] < 1e-12) {
            starved = true;
          } else {
            bottleneck = std::max(bottleneck, in_load / cap_in[p]);
          }
        }
        const Time out_load = rem.col_sum(p);
        if (out_load > kTimeEps) {
          if (cap_out[p] < 1e-12) {
            starved = true;
          } else {
            bottleneck = std::max(bottleneck, out_load / cap_out[p]);
          }
        }
      }
      if (starved || bottleneck <= kTimeEps) continue;  // waits for capacity
      gamma[idx] = bottleneck;
      // MADD: flow (i,j) flows at rem_ij / bottleneck; charge the ports.
      for (int p = 0; p < n; ++p) {
        cap_in[p] = std::max(0.0, cap_in[p] - rem.row_sum(p) / bottleneck);
        cap_out[p] = std::max(0.0, cap_out[p] - rem.col_sum(p) / bottleneck);
      }
    }

    // Advance to the earliest completion among coflows receiving rate.
    Time step = std::numeric_limits<Time>::infinity();
    for (int k = 0; k < num_coflows; ++k) step = std::min(step, gamma[k]);
    if (!std::isfinite(step)) break;  // defensive: nobody can progress

    for (int k = 0; k < num_coflows; ++k) {
      if (done[k] || !std::isfinite(gamma[k])) continue;
      const double fraction = step / gamma[k];
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          remaining[k].at(i, j) = clamp_zero(remaining[k].at(i, j) * (1.0 - fraction));
        }
      }
      if (remaining[k].max_entry() < kMinServiceQuantum) {
        done[k] = 1;
        --active;
        result.cct[coflows[k].id] = clock + step;
      }
    }
    clock += step;
  }

  result.makespan = clock;
  for (const Coflow& c : coflows) {
    result.total_weighted_cct += c.weight * result.cct[c.id];
  }
  return result;
}

}  // namespace reco
