#include "sched/sunflow.hpp"

#include <algorithm>
#include <vector>

namespace reco {

namespace {

/// Busy intervals of one port (sorted, non-overlapping) for backfilling.
class PortTimeline {
 public:
  Time earliest_fit(Time t, Time d) const {
    for (const auto& [busy_start, busy_end] : busy_) {
      if (busy_start - t >= d - kTimeEps) break;
      t = std::max(t, busy_end);
    }
    return t;
  }

  void insert(Time start, Time end) {
    const auto pos = std::lower_bound(
        busy_.begin(), busy_.end(), start,
        [](const std::pair<Time, Time>& iv, Time s) { return iv.first < s; });
    busy_.insert(pos, {start, end});
  }

 private:
  std::vector<std::pair<Time, Time>> busy_;
};

}  // namespace

SunflowResult sunflow(const Matrix& demand, Time delta, SunflowOrder order) {
  SunflowResult result;
  const int n = demand.n();

  struct Flow {
    int src;
    int dst;
    Time size;
  };
  std::vector<Flow> flows;
  flows.reserve(demand.nnz());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (!approx_zero(demand.at(i, j))) flows.push_back({i, j, demand.at(i, j)});
    }
  }
  std::sort(flows.begin(), flows.end(), [order](const Flow& a, const Flow& b) {
    return order == SunflowOrder::kLongestFirst ? a.size > b.size : a.size < b.size;
  });

  std::vector<PortTimeline> ingress(n);
  std::vector<PortTimeline> egress(n);
  for (const Flow& f : flows) {
    // The circuit occupies both ports for (setup delta + transmission);
    // only the affected ports halt, everything else keeps running.
    const Time occupancy = delta + f.size;
    Time t = 0.0;
    while (true) {
      const Time t_in = ingress[f.src].earliest_fit(t, occupancy);
      const Time t_both = egress[f.dst].earliest_fit(t_in, occupancy);
      if (t_both <= t_in + kTimeEps &&
          ingress[f.src].earliest_fit(t_both, occupancy) <= t_both + kTimeEps) {
        t = t_both;
        break;
      }
      t = t_both;
    }
    const Time end = t + occupancy;
    ingress[f.src].insert(t, end);
    egress[f.dst].insert(t, end);
    result.schedule.push_back({t + delta, end, f.src, f.dst, 0});
    result.cct = std::max(result.cct, end);
    ++result.reconfigurations;
  }
  return result;
}

}  // namespace reco
