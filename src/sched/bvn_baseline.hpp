// Plain stuffing + BvN single-coflow scheduling: optimal when delta == 0
// (Qiu-Stein-Zhong) but Omega(N)-approximate with real reconfiguration
// delays (Theorem 1).  Used as LP-II-GB's intra-coflow method and as the
// strawman in the Theorem-1 bench.
#pragma once

#include "core/circuit.hpp"
#include "core/matrix.hpp"

namespace reco {

/// Stuff `demand` to doubly stochastic and peel classic Birkhoff
/// permutations (any perfect matching, coefficient = its minimum entry).
CircuitSchedule bvn_baseline(const Matrix& demand);

}  // namespace reco
