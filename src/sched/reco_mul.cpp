#include "sched/reco_mul.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "ocs/slice_executor.hpp"

namespace reco {

RecoMulSchedule reco_mul_transform(const SliceSchedule& packet, Time delta, double c) {
  RecoMulScratch scratch;
  RecoMulSchedule out;
  reco_mul_transform_into(packet, delta, c, scratch, out);
  return out;
}

void reco_mul_transform_into(const SliceSchedule& packet, Time delta, double c,
                             RecoMulScratch& scratch, RecoMulSchedule& out) {
  obs::ScopedSpan span("sched.reco_mul_transform", "sched");
  span.arg("slices", static_cast<double>(packet.size()));
  if (c < 1.0) {
    throw std::invalid_argument("reco_mul_transform: requires c >= 1 (floor(sqrt(c)) >= 1)");
  }
  if (delta <= 0.0) {
    throw std::invalid_argument("reco_mul_transform: delta must be positive");
  }
  const double root_floor = std::floor(std::sqrt(c));
  const double stretch = (root_floor + 1.0) / root_floor;  // Alg. 2 Line 6
  const Time quantum = std::sqrt(c) * delta;               // Alg. 2 Line 7

  out.pseudo.clear();
  out.real.clear();
  out.pseudo.reserve(packet.size());
  for (const FlowSlice& s : packet) {
    const double stretched = s.start * stretch;
    // floor with tolerance: a start already sitting on a grid point must
    // map to itself, not one quantum lower.
    const Time snapped = std::floor(stretched / quantum + kTimeEps) * quantum;
    out.pseudo.push_back({snapped, snapped + s.duration(), s.src, s.dst, s.coflow});
  }

  // Legalization: when every demand satisfies d >= c*delta, Lemma 2 proves
  // the snapped schedule is already port-feasible and this pass changes
  // nothing.  When the caller stretches the assumption (e.g. sweeping delta
  // over a fixed trace, Fig. 9(a)), snapping can make conflicting flows
  // overlap; we then push offenders later, off the alignment grid.  That
  // costs extra start batches — exactly the graceful degradation the paper
  // observes at millisecond-scale delta.
  {
    std::vector<std::size_t>& by_start = scratch.by_start;
    by_start.resize(out.pseudo.size());
    for (std::size_t f = 0; f < by_start.size(); ++f) by_start[f] = f;
    std::sort(by_start.begin(), by_start.end(), [&](std::size_t a, std::size_t b) {
      if (out.pseudo[a].start != out.pseudo[b].start) {
        return out.pseudo[a].start < out.pseudo[b].start;
      }
      return packet[a].start < packet[b].start;  // original priority as tiebreak
    });
    PortId max_port = -1;
    for (const FlowSlice& s : out.pseudo) max_port = std::max({max_port, s.src, s.dst});
    scratch.free_in.assign(static_cast<std::size_t>(max_port + 1), 0.0);
    scratch.free_out.assign(static_cast<std::size_t>(max_port + 1), 0.0);
    std::uint64_t pushed = 0;  // slices legalization moved off the snap grid
    for (std::size_t f : by_start) {
      FlowSlice& s = out.pseudo[f];
      const Time start = std::max({s.start, scratch.free_in[s.src], scratch.free_out[s.dst]});
      if (start > s.start + kTimeEps) ++pushed;
      s.end = start + s.duration();
      s.start = start;
      scratch.free_in[s.src] = s.end;
      scratch.free_out[s.dst] = s.end;
    }
    if (obs::enabled()) {
      obs::metrics().counter("reco_mul.calls").inc();
      obs::metrics().counter("reco_mul.slices").inc(static_cast<double>(packet.size()));
      obs::metrics().counter("reco_mul.legalization_pushes").inc(static_cast<double>(pushed));
      span.arg("legalization_pushes", static_cast<double>(pushed));
    }
  }

  inflate_pseudo_time_into(out.pseudo, delta, scratch.batch_scratch, out.real);
}

}  // namespace reco
