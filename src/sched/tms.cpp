#include "sched/tms.hpp"

#include <algorithm>
#include <stdexcept>

#include "matching/hungarian.hpp"

namespace reco {

CircuitSchedule tms_schedule(const Matrix& demand, Time delta, const TmsOptions& options) {
  if (options.day_over_delta <= 0.0) {
    throw std::invalid_argument("tms_schedule: day length must be positive");
  }
  CircuitSchedule schedule;
  if (demand.nnz() == 0) return schedule;

  const Time day = options.day_over_delta * delta;
  Matrix residual = demand;
  for (int round = 0; round < options.max_assignments && residual.nnz() > 0; ++round) {
    const AssignmentResult match = max_weight_assignment(residual);
    CircuitAssignment a;
    Time largest = 0.0;
    for (int i = 0; i < residual.n(); ++i) {
      const int j = match.col_of_row[i];
      const Time rem = residual.at(i, j);
      if (approx_zero(rem)) continue;
      a.circuits.push_back({i, j});
      largest = std::max(largest, rem);
    }
    if (a.circuits.empty()) break;  // matching picked only zero entries: done

    // Hold for one "day" — or shorter when every matched circuit drains
    // first (the executor would cut the establishment there anyway).
    // Entries smaller than the hold are simply over-served, exactly like a
    // real day/night duty cycle.
    a.duration = std::min(day, largest);
    for (const Circuit& c : a.circuits) {
      residual.at(c.in, c.out) =
          clamp_zero(std::max(0.0, residual.at(c.in, c.out) - a.duration));
    }
    schedule.assignments.push_back(std::move(a));
  }
  return schedule;
}

}  // namespace reco
