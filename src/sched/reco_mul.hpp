// Reco-Mul (Algorithm 2): transform any non-preemptive packet-switch
// multi-coflow schedule S_p into a feasible all-stop OCS schedule S_o.
//
//   1. Stretch every start time by (floor(sqrt(c))+1)/floor(sqrt(c)) and
//      snap it *down* to a multiple of sqrt(c)*delta on the pseudo-time
//      axis (reconfiguration delay shrunk to zero).  With every demand
//      >= c*delta, stretching opens enough room that snapping never makes
//      conflicting flows overlap (Lemma 2).
//   2. Re-inflate the axis: each distinct start batch costs one delta, and
//      every in-flight flow is halted by each batch firing under it.
//
// The alignment means many flows share each reconfiguration, giving the
// Delta*(1 + 1/floor(sqrt(c)))^2 bound of Theorem 3.
#pragma once

#include <cstddef>
#include <vector>

#include "core/slice.hpp"
#include "core/types.hpp"

namespace reco {

struct RecoMulSchedule {
  SliceSchedule pseudo;  ///< S-hat_o: regularized starts, pseudo-time axis
  SliceSchedule real;    ///< S_o: real time, reconfiguration delays injected
};

/// Reusable buffers for the transform's legalization + inflation passes.
/// Port "free" times are flat vectors indexed by PortId (a value-initialized
/// entry is 0.0, exactly what the previous std::map lookup defaulted to), so
/// a long-lived scratch makes repeated transforms allocation-free once every
/// buffer has hit its high-water capacity.
struct RecoMulScratch {
  std::vector<std::size_t> by_start;
  std::vector<Time> free_in;
  std::vector<Time> free_out;
  std::vector<Time> batch_scratch;  ///< start batches for pseudo-time inflation

  /// Total heap capacity currently held, in elements — the online core's
  /// alloc-event accounting samples this to prove steady state is flat.
  std::size_t capacity_footprint() const {
    return by_start.capacity() + free_in.capacity() + free_out.capacity() +
           batch_scratch.capacity();
  }
};

/// Apply Algorithm 2 to a packet-switch schedule.  Requires c >= 1 (the
/// optical transmission threshold assumption of Sec. II); throws otherwise.
///
/// A legalization pass (a provable no-op while d >= c*delta holds, Lemma 2)
/// pushes any snap-induced port conflicts later, so the returned schedules
/// are feasible even when callers sweep delta over a fixed trace and the
/// threshold assumption frays (the Fig. 9(a) regime).
RecoMulSchedule reco_mul_transform(const SliceSchedule& packet, Time delta, double c);

/// In-place twin: same transform, writing into `out` (both schedules cleared
/// first) and reusing `scratch`.  Produces bit-identical schedules to the
/// returning variant — the flat port arrays replace map lookups whose
/// defaults were the same 0.0.
void reco_mul_transform_into(const SliceSchedule& packet, Time delta, double c,
                             RecoMulScratch& scratch, RecoMulSchedule& out);

}  // namespace reco
