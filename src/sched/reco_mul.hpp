// Reco-Mul (Algorithm 2): transform any non-preemptive packet-switch
// multi-coflow schedule S_p into a feasible all-stop OCS schedule S_o.
//
//   1. Stretch every start time by (floor(sqrt(c))+1)/floor(sqrt(c)) and
//      snap it *down* to a multiple of sqrt(c)*delta on the pseudo-time
//      axis (reconfiguration delay shrunk to zero).  With every demand
//      >= c*delta, stretching opens enough room that snapping never makes
//      conflicting flows overlap (Lemma 2).
//   2. Re-inflate the axis: each distinct start batch costs one delta, and
//      every in-flight flow is halted by each batch firing under it.
//
// The alignment means many flows share each reconfiguration, giving the
// Delta*(1 + 1/floor(sqrt(c)))^2 bound of Theorem 3.
#pragma once

#include "core/slice.hpp"
#include "core/types.hpp"

namespace reco {

struct RecoMulSchedule {
  SliceSchedule pseudo;  ///< S-hat_o: regularized starts, pseudo-time axis
  SliceSchedule real;    ///< S_o: real time, reconfiguration delays injected
};

/// Apply Algorithm 2 to a packet-switch schedule.  Requires c >= 1 (the
/// optical transmission threshold assumption of Sec. II); throws otherwise.
///
/// A legalization pass (a provable no-op while d >= c*delta holds, Lemma 2)
/// pushes any snap-induced port conflicts later, so the returned schedules
/// are feasible even when callers sweep delta over a fixed trace and the
/// threshold assumption frays (the Fig. 9(a) regime).
RecoMulSchedule reco_mul_transform(const SliceSchedule& packet, Time delta, double c);

}  // namespace reco
