#include "sched/bvn_baseline.hpp"

#include <utility>

#include "bvn/bvn.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"

namespace reco {

CircuitSchedule bvn_baseline(const Matrix& demand) {
  SupportIndex indexed(demand);
  if (indexed.nnz() == 0) return {};
  return bvn_decompose(stuff(std::move(indexed)), BvnPolicy::kFirstMatching);
}

}  // namespace reco
