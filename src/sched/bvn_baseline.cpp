#include "sched/bvn_baseline.hpp"

#include "bvn/bvn.hpp"
#include "bvn/stuffing.hpp"

namespace reco {

CircuitSchedule bvn_baseline(const Matrix& demand) {
  if (demand.nnz() == 0) return {};
  return bvn_decompose(stuff(demand), BvnPolicy::kFirstMatching);
}

}  // namespace reco
