// Fluid (preemptive, rate-divisible) packet-switch scheduling — the Varys
// reference model.  Coflows hold strict priority by the given order; each
// scheduled coflow receives its MADD allocation (Chowdhury et al.,
// SIGCOMM'14): every flow is paced to finish exactly at the coflow's
// current bottleneck, so no port is wasted on an already-balanced coflow.
//
// This is NOT realizable on an OCS (circuits are not divisible) — it is
// the idealized packet-switch benchmark that quantifies what Reco-Mul's
// non-preemptive ALG_p gives up before the OCS transform even starts.
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "core/types.hpp"

namespace reco {

struct FluidScheduleResult {
  std::vector<Time> cct;  ///< per coflow id
  Time makespan = 0.0;
  Time total_weighted_cct = 0.0;
};

/// Simulate priority fluid sharing: at every completion event, iterate
/// coflows in `order`, give each its MADD rates out of the remaining port
/// capacity, advance to the next completion.
FluidScheduleResult fluid_packet_schedule(const std::vector<Coflow>& coflows,
                                          const std::vector<int>& order);

}  // namespace reco
