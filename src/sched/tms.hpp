// Traffic Matrix Scheduling in the Helios / c-Through style (Farrington et
// al. SIGCOMM'10; Porter et al. SIGCOMM'13): repeatedly establish the
// maximum-weight matching over the residual demand and hold it for a fixed
// "day length".  The classic OCS control loop and a natural third
// single-coflow baseline next to Solstice and plain BvN: reconfiguration-
// count-friendly when the day is long, but blind to stranded residuals.
#pragma once

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

struct TmsOptions {
  /// Circuit hold time per establishment, as a multiple of delta ("night
  /// length").  Helios-style systems use day >> night.
  double day_over_delta = 10.0;
  /// Safety valve: give up extending the schedule after this many
  /// establishments (the executor would skip useless ones anyway).
  int max_assignments = 1 << 20;
};

/// Build a circuit scheduling for one coflow by repeated max-weight
/// matchings (Hungarian) over the residual demand.  The schedule always
/// satisfies the demand: the final matching rounds run as long as their
/// largest residual.
CircuitSchedule tms_schedule(const Matrix& demand, Time delta, const TmsOptions& options = {});

}  // namespace reco
