// Pluggable online scheduling policies: the seam between the event-driven
// replan core (OnlineCore / the sim OnlineDaemon) and the paper's coflow
// machinery.  A policy answers three questions the daemon asks on every
// event:
//
//   * does an arrival preempt the running epoch (cut + replan) or wait for
//     the fabric to go idle?
//   * is the batch served as one Reco-Mul instance, or serialized through
//     the single-coflow Reco-Sin pipeline in arrival order?
//   * in what priority order does the residual set run?
//
// The three stock policies reproduce the historical `schedule_online`
// modes; new admission/ordering strategies (ROADMAP item 3's
// fault-aware replanning, K-core comparisons) plug in here without
// touching the replan core.
#pragma once

#include <memory>
#include <vector>

#include "core/support_index.hpp"
#include "sched/ordering.hpp"

namespace reco {

/// Stock policy selector (the historical `OnlinePolicy` enum; renamed so
/// the interface below can take the natural name).
enum class OnlinePolicyKind {
  kEpochRecoMul,
  kFifoRecoSin,
  kDrainReplanRecoMul,
};

const char* to_string(OnlinePolicyKind kind);

/// Strategy interface consulted by the online replan core.  Implementations
/// must be stateless across decisions (the core owns all mutable state), so
/// one policy instance can serve many runs and replays stay deterministic.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  virtual const char* name() const = 0;

  /// True: an arrival cuts the running epoch (started slices finish,
  /// everything else is cancelled and folded back) and triggers an
  /// immediate replan.  False: arrivals wait for the fabric to go idle.
  virtual bool preempt_on_arrival() const = 0;

  /// True: coflows are served one at a time through the single-coflow
  /// pipeline in arrival order instead of batch replanning.
  virtual bool serialize_batch() const = 0;

  /// Order the live residual set: write a permutation of indices into
  /// `residuals` to `out` (highest priority first).  Must be a pure
  /// function of the arguments — determinism of the whole replay depends
  /// on it.
  virtual void order_batch(const std::vector<const SupportIndex*>& residuals,
                           const std::vector<double>& weights, OrderingScratch& scratch,
                           std::vector<int>& out) const = 0;
};

/// Stock policy factory.  `ordering` selects the intra-batch priority rule
/// for the batch policies; the FIFO policy ignores it (arrival order is the
/// whole point).
std::unique_ptr<OnlinePolicy> make_online_policy(OnlinePolicyKind kind,
                                                 OrderingPolicy ordering = OrderingPolicy::kBssi);

}  // namespace reco
