// Hybrid circuit/packet fabric (the Sec. VI "mice flows" discussion, after
// Helios / c-Through / Solstice's deployment model): demands below the
// optical threshold c*delta ride a conventional packet network; elephants
// go through the OCS via Reco-Sin.  Quantifies why the paper may assume
// d_ij >= c*delta inside the OCS.
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

struct HybridOptions {
  Time delta = 100e-6;
  double c_threshold = 4.0;
  /// Packet-network bandwidth per port, as a fraction of an OCS circuit
  /// (hybrid designs pair fast optics with a slim electrical fabric).
  double packet_bandwidth_fraction = 0.1;
};

struct HybridResult {
  Time cct = 0.0;             ///< max(ocs_cct, packet_cct): both run in parallel
  Time ocs_cct = 0.0;         ///< elephants through Reco-Sin on the OCS
  Time packet_cct = 0.0;      ///< mice through the packet fabric
  int reconfigurations = 0;   ///< OCS establishments used
  Time elephant_volume = 0.0;
  Time mice_volume = 0.0;
};

/// Split one coflow at the optical threshold and schedule both halves.
HybridResult hybrid_single_coflow(const Matrix& demand, const HybridOptions& options = {});

/// Split a demand matrix at the threshold: entries >= c*delta stay in
/// `elephants`, the rest go to `mice`.
void split_at_threshold(const Matrix& demand, Time threshold, Matrix& elephants, Matrix& mice);

struct HybridMultiResult {
  /// Per-coflow CCT: max of the coflow's OCS part (Reco-Mul over elephant
  /// sub-coflows) and its packet part (mice drained fluidly at the slim
  /// bandwidth, shared fair across coflows per port).
  std::vector<Time> cct;
  Time total_weighted_cct = 0.0;
  int reconfigurations = 0;     ///< OCS establishments (elephants only)
  Time mice_volume = 0.0;
  Time elephant_volume = 0.0;
};

/// Multi-coflow hybrid: every coflow is split at c*delta; the elephant
/// sub-coflows run through the full Reco-Mul pipeline on the OCS, the mice
/// ride the packet fabric concurrently (modeled as fair fluid sharing, so
/// a port's mice backlog drains in  total_mice_load / packet_bandwidth).
HybridMultiResult hybrid_multi_coflow(const std::vector<Coflow>& coflows,
                                      const HybridOptions& options = {});

}  // namespace reco
