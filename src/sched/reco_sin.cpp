#include "sched/reco_sin.hpp"

#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"

namespace reco {

CircuitSchedule reco_sin(const Matrix& demand, Time delta, BvnPolicy policy) {
  if (demand.nnz() == 0) return {};
  const Matrix regularized = regularize(demand, delta);
  const Matrix stuffed = stuff_granular(regularized, delta);
  return bvn_decompose(stuffed, policy);
}

}  // namespace reco
