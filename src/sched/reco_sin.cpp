#include "sched/reco_sin.hpp"

#include <utility>

#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"
#include "obs/obs.hpp"

namespace reco {

CircuitSchedule reco_sin(const Matrix& demand, Time delta, BvnPolicy policy,
                         MatchingScratch* scratch) {
  // One O(N^2) ingest of the dense input; from here on every stage —
  // regularize, stuff, BvN peel — works the support index, so the
  // pipeline's cost tracks nnz(D) rather than N^2 per peeling round.
  obs::ScopedSpan span("sched.reco_sin", "sched");
  const SupportIndex indexed(demand);
  if (indexed.nnz() == 0) return {};
  span.arg("n", static_cast<double>(indexed.n()));
  span.arg("nnz", static_cast<double>(indexed.nnz()));
  if (obs::enabled()) obs::metrics().counter("sched.reco_sin.calls").inc();
  SupportIndex stuffed = stuff_granular(regularize(indexed, delta), delta);
  if (scratch != nullptr) return bvn_decompose(std::move(stuffed), policy, *scratch);
  return bvn_decompose(std::move(stuffed), policy);
}

CircuitSchedule reco_sin_surviving(const Matrix& residual, const std::vector<char>& failed_in,
                                   const std::vector<char>& failed_out, Time delta,
                                   BvnPolicy policy) {
  obs::ScopedSpan span("sched.reco_sin_surviving", "sched");
  const auto down = [](const std::vector<char>& mask, int p) {
    return p >= 0 && p < static_cast<int>(mask.size()) && mask[p];
  };
  Matrix masked = residual;
  for (int i = 0; i < masked.n(); ++i) {
    for (int j = 0; j < masked.n(); ++j) {
      if (down(failed_in, i) || down(failed_out, j)) masked.at(i, j) = 0.0;
    }
  }
  if (obs::enabled()) {
    span.arg("masked_demand", residual.total() - masked.total());
  }
  CircuitSchedule plan = reco_sin(masked, delta, policy);
  // Stuffing may pad failed rows/columns up to the stochastic row sum;
  // those circuits carry no demand and cannot physically latch — drop
  // them, and drop assignments left empty.
  CircuitSchedule pruned;
  for (CircuitAssignment& a : plan.assignments) {
    CircuitAssignment kept;
    kept.duration = a.duration;
    for (const Circuit& c : a.circuits) {
      if (!down(failed_in, c.in) && !down(failed_out, c.out)) kept.circuits.push_back(c);
    }
    if (!kept.circuits.empty()) pruned.assignments.push_back(std::move(kept));
  }
  return pruned;
}

}  // namespace reco
