#include "sched/reco_sin.hpp"

#include <utility>

#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"
#include "obs/obs.hpp"

namespace reco {

CircuitSchedule reco_sin(const Matrix& demand, Time delta, BvnPolicy policy) {
  // One O(N^2) ingest of the dense input; from here on every stage —
  // regularize, stuff, BvN peel — works the support index, so the
  // pipeline's cost tracks nnz(D) rather than N^2 per peeling round.
  obs::ScopedSpan span("sched.reco_sin", "sched");
  const SupportIndex indexed(demand);
  if (indexed.nnz() == 0) return {};
  span.arg("n", static_cast<double>(indexed.n()));
  span.arg("nnz", static_cast<double>(indexed.nnz()));
  if (obs::enabled()) obs::metrics().counter("sched.reco_sin.calls").inc();
  SupportIndex stuffed = stuff_granular(regularize(indexed, delta), delta);
  return bvn_decompose(std::move(stuffed), policy);
}

}  // namespace reco
