#include "sched/online_policy.hpp"

#include <stdexcept>

namespace reco {

namespace {

/// Batch scheduling at idle: everything live runs as one Reco-Mul epoch,
/// newcomers wait for the next one.
class EpochBatchPolicy final : public OnlinePolicy {
 public:
  explicit EpochBatchPolicy(OrderingPolicy ordering) : ordering_(ordering) {}
  const char* name() const override { return "epoch-reco-mul"; }
  bool preempt_on_arrival() const override { return false; }
  bool serialize_batch() const override { return false; }
  void order_batch(const std::vector<const SupportIndex*>& residuals,
                   const std::vector<double>& weights, OrderingScratch& scratch,
                   std::vector<int>& out) const override {
    order_residuals_into(residuals, weights, ordering_, scratch, out);
  }

 private:
  OrderingPolicy ordering_;
};

/// Reactive batching: arrivals cut the running epoch and force a replan of
/// the residual set including the newcomer.
class DrainReplanPolicy final : public OnlinePolicy {
 public:
  explicit DrainReplanPolicy(OrderingPolicy ordering) : ordering_(ordering) {}
  const char* name() const override { return "drain-replan-reco-mul"; }
  bool preempt_on_arrival() const override { return true; }
  bool serialize_batch() const override { return false; }
  void order_batch(const std::vector<const SupportIndex*>& residuals,
                   const std::vector<double>& weights, OrderingScratch& scratch,
                   std::vector<int>& out) const override {
    order_residuals_into(residuals, weights, ordering_, scratch, out);
  }

 private:
  OrderingPolicy ordering_;
};

/// The natural online baseline: one coflow at a time, arrival order,
/// Reco-Sin per coflow.
class FifoSerialPolicy final : public OnlinePolicy {
 public:
  const char* name() const override { return "fifo-reco-sin"; }
  bool preempt_on_arrival() const override { return false; }
  bool serialize_batch() const override { return true; }
  void order_batch(const std::vector<const SupportIndex*>& residuals,
                   const std::vector<double>& /*weights*/, OrderingScratch& /*scratch*/,
                   std::vector<int>& out) const override {
    // Arrival order == admission order == index order.
    out.resize(residuals.size());
    for (std::size_t k = 0; k < residuals.size(); ++k) out[k] = static_cast<int>(k);
  }
};

}  // namespace

const char* to_string(OnlinePolicyKind kind) {
  switch (kind) {
    case OnlinePolicyKind::kEpochRecoMul: return "epoch-reco-mul";
    case OnlinePolicyKind::kFifoRecoSin: return "fifo-reco-sin";
    case OnlinePolicyKind::kDrainReplanRecoMul: return "drain-replan-reco-mul";
  }
  return "unknown";
}

std::unique_ptr<OnlinePolicy> make_online_policy(OnlinePolicyKind kind, OrderingPolicy ordering) {
  switch (kind) {
    case OnlinePolicyKind::kEpochRecoMul: return std::make_unique<EpochBatchPolicy>(ordering);
    case OnlinePolicyKind::kFifoRecoSin: return std::make_unique<FifoSerialPolicy>();
    case OnlinePolicyKind::kDrainReplanRecoMul:
      return std::make_unique<DrainReplanPolicy>(ordering);
  }
  throw std::invalid_argument("make_online_policy: unknown policy kind");
}

}  // namespace reco
