#include "sched/multi_baselines.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "ocs/all_stop_executor.hpp"
#include "runtime/parallel.hpp"
#include "ocs/slice_executor.hpp"
#include "sched/bvn_baseline.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_mul.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"

namespace reco {

namespace {
CircuitSchedule schedule_one(const Matrix& demand, Time delta, SingleCoflowAlgo algo) {
  switch (algo) {
    case SingleCoflowAlgo::kRecoSin: return reco_sin(demand, delta);
    case SingleCoflowAlgo::kSolstice: return solstice(demand, delta);
    case SingleCoflowAlgo::kBvn: return bvn_baseline(demand);
  }
  throw std::logic_error("schedule_one: unknown algorithm");
}

MultiScheduleResult finalize(SliceSchedule schedule, const std::vector<Coflow>& coflows,
                             int reconfigurations) {
  MultiScheduleResult r;
  r.schedule = std::move(schedule);
  r.cct = completion_times(r.schedule, static_cast<int>(coflows.size()));
  r.reconfigurations = reconfigurations;
  r.total_weighted_cct = total_weighted_cct(r.cct, coflows);
  return r;
}
}  // namespace

MultiScheduleResult sequential_multi_schedule(const std::vector<Coflow>& coflows,
                                              const std::vector<int>& order, Time delta,
                                              SingleCoflowAlgo algo) {
  // The per-coflow planners see only the coflow's own demand, never the
  // clock, so the expensive decompositions fan out across the runtime's
  // thread pool; only the (cheap) back-to-back execution below is ordered.
  obs::ScopedSpan span("sched.sequential_multi", "sched");
  span.arg("coflows", static_cast<double>(order.size()));
  const std::vector<CircuitSchedule> plans = [&] {
    obs::ScopedSpan plan_span("sched.plan_coflows", "sched");
    return runtime::parallel_map(
        order, [&](int idx) { return schedule_one(coflows[idx].demand, delta, algo); });
  }();

  obs::ScopedSpan exec_span("sched.execute_back_to_back", "sched");
  SliceSchedule slices;
  int reconfigs = 0;
  Time clock = 0.0;
  for (std::size_t p = 0; p < order.size(); ++p) {
    const Coflow& c = coflows[order[p]];
    const ExecutionResult exec = execute_all_stop(plans[p], c.demand, delta, clock, c.id, &slices);
    if (!exec.satisfied) {
      throw std::logic_error("sequential_multi_schedule: demand not satisfied");
    }
    clock += exec.cct;
    reconfigs += exec.reconfigurations;
  }
  return finalize(std::move(slices), coflows, reconfigs);
}

MultiScheduleResult sebf_solstice(const std::vector<Coflow>& coflows, Time delta) {
  return sequential_multi_schedule(coflows, sebf_order(coflows), delta,
                                   SingleCoflowAlgo::kSolstice);
}

MultiScheduleResult lp_ii_gb(const std::vector<Coflow>& coflows, Time delta,
                             const lp::IntervalLpOptions& lp_options) {
  return sequential_multi_schedule(coflows, lp_order(coflows, lp_options), delta,
                                   SingleCoflowAlgo::kBvn);
}

MultiScheduleResult reco_mul_pipeline(const std::vector<Coflow>& coflows, Time delta, double c,
                                      OrderingPolicy ordering) {
  obs::ScopedSpan span("sched.reco_mul_pipeline", "sched");
  span.arg("coflows", static_cast<double>(coflows.size()));
  const std::vector<int> order = [&] {
    obs::ScopedSpan s("sched.order_coflows", "sched");
    return order_coflows(coflows, ordering);
  }();
  const SliceSchedule packet = [&] {
    obs::ScopedSpan s("sched.packet_schedule", "sched");
    return packet_schedule(coflows, order);
  }();
  const RecoMulSchedule transformed = reco_mul_transform(packet, delta, c);
  // Count on the *emitted* real-time schedule, not the pseudo one: the
  // result's reconfiguration figure must agree with its `schedule` field
  // (inflation preserves batch count, but eps-close pseudo starts can
  // dedup differently — the real axis is what the fabric pays for).
  const int reconfigs = count_reconfigurations(transformed.real);
  if (obs::enabled()) {
    obs::metrics().counter("reco_mul.reconfigurations").inc(static_cast<double>(reconfigs));
  }
  return finalize(transformed.real, coflows, reconfigs);
}

MultiScheduleResult unregularized_pipeline(const std::vector<Coflow>& coflows, Time delta,
                                           OrderingPolicy ordering) {
  const std::vector<int> order = order_coflows(coflows, ordering);
  const SliceSchedule packet = packet_schedule(coflows, order);
  // No start-time regularization: inflate the raw packet schedule directly.
  const SliceSchedule real = inflate_pseudo_time(packet, delta);
  // As in reco_mul_pipeline: the count must describe the emitted schedule.
  const int reconfigs = count_reconfigurations(real);
  return finalize(real, coflows, reconfigs);
}

}  // namespace reco
