#include "sched/packet_scheduler.hpp"

#include <algorithm>
#include <vector>

namespace reco {

namespace {

/// Busy intervals of one port, kept sorted and non-overlapping.  Supports
/// "earliest gap of length d starting at or after t" queries and interval
/// insertion — the core of insertion-based (backfilling) list scheduling.
class PortTimeline {
 public:
  /// Earliest s >= t such that [s, s+d) is free on this port.
  Time earliest_fit(Time t, Time d) const {
    for (const auto& [busy_start, busy_end] : busy_) {
      if (busy_start - t >= d - kTimeEps) break;  // fits before this interval
      t = std::max(t, busy_end);
    }
    return t;
  }

  void insert(Time start, Time end) {
    const auto pos = std::lower_bound(
        busy_.begin(), busy_.end(), start,
        [](const std::pair<Time, Time>& iv, Time s) { return iv.first < s; });
    busy_.insert(pos, {start, end});
  }

 private:
  std::vector<std::pair<Time, Time>> busy_;
};

}  // namespace

SliceSchedule packet_schedule(const std::vector<Coflow>& coflows, const std::vector<int>& order) {
  SliceSchedule out;
  if (coflows.empty()) return out;
  const int n = coflows.front().demand.n();
  std::vector<PortTimeline> ingress(n);
  std::vector<PortTimeline> egress(n);

  struct Flow {
    int src;
    int dst;
    Time size;
  };

  for (int idx : order) {
    const Coflow& c = coflows[idx];
    std::vector<Flow> flows;
    flows.reserve(c.demand.nnz());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const Time d = c.demand.at(i, j);
        if (!approx_zero(d)) flows.push_back({i, j, d});
      }
    }
    // Longest flows first: within a coflow this is the LPT heuristic that
    // keeps the coflow's own port makespans balanced.
    std::sort(flows.begin(), flows.end(),
              [](const Flow& a, const Flow& b) { return a.size > b.size; });
    for (const Flow& f : flows) {
      // Earliest slot free on *both* ports: alternate fixed-point between
      // the two timelines (each step only moves the candidate forward, and
      // it converges as soon as both agree).
      Time t = 0.0;
      while (true) {
        const Time t_in = ingress[f.src].earliest_fit(t, f.size);
        const Time t_both = egress[f.dst].earliest_fit(t_in, f.size);
        if (t_both <= t_in + kTimeEps &&
            ingress[f.src].earliest_fit(t_both, f.size) <= t_both + kTimeEps) {
          t = t_both;
          break;
        }
        t = t_both;
      }
      const Time end = t + f.size;
      out.push_back({t, end, f.src, f.dst, c.id});
      ingress[f.src].insert(t, end);
      egress[f.dst].insert(t, end);
    }
  }
  return out;
}

}  // namespace reco
