#include "sched/packet_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace reco {

namespace {

/// Place every flow in scratch.flows (LPT order) for one coflow: each takes
/// the earliest slot simultaneously free on its ingress and egress port.
void place_coflow_flows(PacketScratch& scratch, CoflowId id, SliceSchedule& out) {
  // Longest flows first: within a coflow this is the LPT heuristic that
  // keeps the coflow's own port makespans balanced.
  std::sort(scratch.flows.begin(), scratch.flows.end(),
            [](const PacketFlow& a, const PacketFlow& b) { return a.size > b.size; });
  for (const PacketFlow& f : scratch.flows) {
    // Earliest slot free on *both* ports: alternate fixed-point between
    // the two timelines (each step only moves the candidate forward, and
    // it converges as soon as both agree).
    Time t = 0.0;
    while (true) {
      const Time t_in = scratch.ingress[f.src].earliest_fit(t, f.size);
      const Time t_both = scratch.egress[f.dst].earliest_fit(t_in, f.size);
      if (t_both <= t_in + kTimeEps &&
          scratch.ingress[f.src].earliest_fit(t_both, f.size) <= t_both + kTimeEps) {
        t = t_both;
        break;
      }
      t = t_both;
    }
    const Time end = t + f.size;
    out.push_back({t, end, f.src, f.dst, id});
    scratch.ingress[f.src].insert(t, end);
    scratch.egress[f.dst].insert(t, end);
  }
}

void reset_timelines(PacketScratch& scratch, int n) {
  scratch.ingress.resize(n);
  scratch.egress.resize(n);
  for (PortTimeline& t : scratch.ingress) t.clear();
  for (PortTimeline& t : scratch.egress) t.clear();
}

}  // namespace

SliceSchedule packet_schedule(const std::vector<Coflow>& coflows, const std::vector<int>& order) {
  PacketScratch scratch;
  SliceSchedule out;
  packet_schedule_into(coflows, order, scratch, out);
  return out;
}

void packet_schedule_into(const std::vector<Coflow>& coflows, const std::vector<int>& order,
                          PacketScratch& scratch, SliceSchedule& out) {
  out.clear();
  if (coflows.empty() || order.empty()) return;
  const int n = coflows.front().demand.n();
  reset_timelines(scratch, n);

  for (int idx : order) {
    const Coflow& c = coflows[idx];
    scratch.flows.clear();
    scratch.flows.reserve(c.demand.nnz());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const Time d = c.demand.at(i, j);
        if (!approx_zero(d)) scratch.flows.push_back({i, j, d});
      }
    }
    place_coflow_flows(scratch, c.id, out);
  }
}

void packet_schedule_into(const std::vector<const SupportIndex*>& residuals,
                          const std::vector<CoflowId>& ids, const std::vector<int>& order,
                          PacketScratch& scratch, SliceSchedule& out) {
  out.clear();
  if (residuals.empty() || order.empty()) return;
  if (residuals.size() != ids.size()) {
    throw std::invalid_argument("packet_schedule_into: residuals/ids size mismatch");
  }
  const int n = residuals.front()->n();
  reset_timelines(scratch, n);

  for (int idx : order) {
    const SupportIndex& r = *residuals[idx];
    scratch.flows.clear();
    scratch.flows.reserve(r.nnz());
    // Support lists are sorted ascending, so this visits the same flows in
    // the same order as the dense (i, j) scan of the coflow overload.
    for (int i = 0; i < n; ++i) {
      const auto cols = r.row_support(i);
      const auto vals = r.row_values(i);
      for (int k = 0; k < cols.size(); ++k) scratch.flows.push_back({i, cols[k], vals[k]});
    }
    place_coflow_flows(scratch, ids[idx], out);
  }
}

}  // namespace reco
