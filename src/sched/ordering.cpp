#include "sched/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "runtime/parallel.hpp"

namespace reco {

namespace {
/// Per-port loads over 2n ports (ingress 0..n-1, egress n..2n-1).
std::vector<double> port_loads(const Coflow& c) {
  const int n = c.demand.n();
  std::vector<double> load(2 * n, 0.0);
  for (int i = 0; i < n; ++i) load[i] = c.demand.row_sum(i);
  for (int j = 0; j < n; ++j) load[n + j] = c.demand.col_sum(j);
  return load;
}
}  // namespace

std::vector<int> sebf_order(const std::vector<Coflow>& coflows) {
  std::vector<int> order(coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return coflows[a].bottleneck() < coflows[b].bottleneck();
  });
  return order;
}

std::vector<int> bssi_order(const std::vector<Coflow>& coflows) {
  const int num_coflows = static_cast<int>(coflows.size());
  if (num_coflows == 0) return {};
  const int num_ports = 2 * coflows.front().demand.n();

  std::vector<std::vector<double>> load(num_coflows);
  runtime::parallel_for(num_coflows, [&](int k) { load[k] = port_loads(coflows[k]); });

  std::vector<double> w(num_coflows);
  for (int k = 0; k < num_coflows; ++k) w[k] = coflows[k].weight;

  std::vector<char> placed(num_coflows, 0);
  std::vector<double> port_total(num_ports, 0.0);
  for (int k = 0; k < num_coflows; ++k) {
    for (int p = 0; p < num_ports; ++p) port_total[p] += load[k][p];
  }

  std::vector<int> order(num_coflows, -1);
  for (int pos = num_coflows - 1; pos >= 0; --pos) {
    // Most bottlenecked port among unplaced coflows.
    int b = 0;
    for (int p = 1; p < num_ports; ++p) {
      if (port_total[p] > port_total[b]) b = p;
    }
    // Coflow that "pays least" for finishing last on b: min w'_k / load_b(k).
    int j_star = -1;
    double best = 0.0;
    for (int k = 0; k < num_coflows; ++k) {
      if (placed[k] || load[k][b] <= 0.0) continue;
      const double ratio = w[k] / load[k][b];
      if (j_star == -1 || ratio < best) {
        best = ratio;
        j_star = k;
      }
    }
    if (j_star == -1) {
      // No unplaced coflow touches the busiest port => all remaining loads
      // are zero (empty coflows); place any one of them.
      for (int k = 0; k < num_coflows && j_star == -1; ++k) {
        if (!placed[k]) j_star = k;
      }
    }
    order[pos] = j_star;
    placed[j_star] = 1;
    // Dual update: the chosen coflow's weight-per-load sets the price theta;
    // every remaining coflow is charged for its share of port b.
    const double theta = load[j_star][b] > 0.0 ? w[j_star] / load[j_star][b] : 0.0;
    for (int k = 0; k < num_coflows; ++k) {
      if (!placed[k]) w[k] = std::max(0.0, w[k] - theta * load[k][b]);
    }
    for (int p = 0; p < num_ports; ++p) port_total[p] -= load[j_star][p];
  }
  return order;
}

std::vector<int> lp_order(const std::vector<Coflow>& coflows,
                          const lp::IntervalLpOptions& options) {
  const lp::IntervalLpResult r = lp::solve_interval_indexed_lp(coflows, options);
  if (r.status != lp::SolveStatus::kOptimal) return bssi_order(coflows);
  std::vector<int> order(coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return r.est_completion[a] < r.est_completion[b];
  });
  return order;
}

std::vector<int> order_coflows(const std::vector<Coflow>& coflows, OrderingPolicy policy) {
  switch (policy) {
    case OrderingPolicy::kSebf: return sebf_order(coflows);
    case OrderingPolicy::kBssi: return bssi_order(coflows);
    case OrderingPolicy::kLp: return lp_order(coflows);
  }
  return sebf_order(coflows);
}

}  // namespace reco
