#include "sched/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "core/simd.hpp"
#include "runtime/parallel.hpp"

namespace reco {

namespace {

/// BSSI primal-dual core over pre-filled flat loads and weights: consumes
/// scratch.load / scratch.w (clobbering w and port_total) and writes the
/// permutation into `order`.  Shared by the offline Coflow path and the
/// online residual path so the two stay bit-identical by construction.
void bssi_from_loads(int num_coflows, int num_ports, OrderingScratch& scratch,
                     std::vector<int>& order) {
  const std::vector<double>& load = scratch.load;
  std::vector<double>& w = scratch.w;
  const auto load_at = [&](int k, int p) { return load[static_cast<std::size_t>(k) * num_ports + p]; };

  scratch.placed.assign(num_coflows, 0);
  scratch.port_total.assign(num_ports, 0.0);
  for (int k = 0; k < num_coflows; ++k) {
    for (int p = 0; p < num_ports; ++p) scratch.port_total[p] += load_at(k, p);
  }

  order.assign(num_coflows, -1);
  const simd::Kernels& kn = simd::kernels();
  for (int pos = num_coflows - 1; pos >= 0; --pos) {
    // Most bottlenecked port among unplaced coflows (first max wins, the
    // same tie-break as the scalar strict-greater scan).
    const int b = std::max(0, kn.argmax(scratch.port_total.data(), num_ports));
    // Coflow that "pays least" for finishing last on b: min w'_k / load_b(k).
    int j_star = -1;
    double best = 0.0;
    for (int k = 0; k < num_coflows; ++k) {
      if (scratch.placed[k] || load_at(k, b) <= 0.0) continue;
      const double ratio = w[k] / load_at(k, b);
      if (j_star == -1 || ratio < best) {
        best = ratio;
        j_star = k;
      }
    }
    if (j_star == -1) {
      // No unplaced coflow touches the busiest port => all remaining loads
      // are zero (empty coflows); place any one of them.
      for (int k = 0; k < num_coflows && j_star == -1; ++k) {
        if (!scratch.placed[k]) j_star = k;
      }
    }
    order[pos] = j_star;
    scratch.placed[j_star] = 1;
    // Dual update: the chosen coflow's weight-per-load sets the price theta;
    // every remaining coflow is charged for its share of port b.
    const double theta = load_at(j_star, b) > 0.0 ? w[j_star] / load_at(j_star, b) : 0.0;
    for (int k = 0; k < num_coflows; ++k) {
      if (!scratch.placed[k]) w[k] = std::max(0.0, w[k] - theta * load_at(k, b));
    }
    for (int p = 0; p < num_ports; ++p) scratch.port_total[p] -= load_at(j_star, p);
  }
}

}  // namespace

std::vector<int> sebf_order(const std::vector<Coflow>& coflows) {
  std::vector<int> order(coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return coflows[a].bottleneck() < coflows[b].bottleneck();
  });
  return order;
}

std::vector<int> bssi_order(const std::vector<Coflow>& coflows) {
  const int num_coflows = static_cast<int>(coflows.size());
  if (num_coflows == 0) return {};
  const int n = coflows.front().demand.n();
  const int num_ports = 2 * n;

  OrderingScratch scratch;
  scratch.load.assign(static_cast<std::size_t>(num_coflows) * num_ports, 0.0);
  // Per-port loads over 2n ports (ingress 0..n-1, egress n..2n-1); each
  // parallel worker writes only its own coflow's row.
  runtime::parallel_for(num_coflows, [&](int k) {
    double* row = scratch.load.data() + static_cast<std::size_t>(k) * num_ports;
    const Matrix& d = coflows[k].demand;
    for (int i = 0; i < n; ++i) row[i] = d.row_sum(i);
    for (int j = 0; j < n; ++j) row[n + j] = d.col_sum(j);
  });
  scratch.w.resize(num_coflows);
  for (int k = 0; k < num_coflows; ++k) scratch.w[k] = coflows[k].weight;

  std::vector<int> order;
  bssi_from_loads(num_coflows, num_ports, scratch, order);
  return order;
}

std::vector<int> lp_order(const std::vector<Coflow>& coflows,
                          const lp::IntervalLpOptions& options) {
  const lp::IntervalLpResult r = lp::solve_interval_indexed_lp(coflows, options);
  if (r.status != lp::SolveStatus::kOptimal) return bssi_order(coflows);
  std::vector<int> order(coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return r.est_completion[a] < r.est_completion[b];
  });
  return order;
}

std::vector<int> order_coflows(const std::vector<Coflow>& coflows, OrderingPolicy policy) {
  switch (policy) {
    case OrderingPolicy::kSebf: return sebf_order(coflows);
    case OrderingPolicy::kBssi: return bssi_order(coflows);
    case OrderingPolicy::kLp: return lp_order(coflows);
  }
  return sebf_order(coflows);
}

void order_residuals_into(const std::vector<const SupportIndex*>& residuals,
                          const std::vector<double>& weights, OrderingPolicy policy,
                          OrderingScratch& scratch, std::vector<int>& order) {
  const int num_coflows = static_cast<int>(residuals.size());
  if (num_coflows == 0) {
    order.clear();
    return;
  }
  if (policy == OrderingPolicy::kSebf) {
    // Exact-sum bottlenecks: bit-identical to Matrix::rho() because every
    // skipped entry is exactly 0.0 and contributes nothing to an IEEE sum.
    scratch.key.resize(num_coflows);
    for (int k = 0; k < num_coflows; ++k) {
      const SupportIndex& r = *residuals[k];
      Time rho = 0.0;
      for (int i = 0; i < r.n(); ++i) rho = std::max(rho, r.row_sum_exact(i));
      for (int j = 0; j < r.n(); ++j) rho = std::max(rho, r.col_sum_exact(j));
      scratch.key[k] = rho;
    }
    order.resize(num_coflows);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return scratch.key[a] < scratch.key[b]; });
    return;
  }

  // kBssi, and kLp's residual fallback.
  const int n = residuals.front()->n();
  const int num_ports = 2 * n;
  scratch.load.assign(static_cast<std::size_t>(num_coflows) * num_ports, 0.0);
  runtime::parallel_for(num_coflows, [&](int k) {
    double* row = scratch.load.data() + static_cast<std::size_t>(k) * num_ports;
    const SupportIndex& r = *residuals[k];
    for (int i = 0; i < n; ++i) row[i] = r.row_sum_exact(i);
    for (int j = 0; j < n; ++j) row[n + j] = r.col_sum_exact(j);
  });
  scratch.w.assign(weights.begin(), weights.end());
  bssi_from_loads(num_coflows, num_ports, scratch, order);
}

}  // namespace reco
