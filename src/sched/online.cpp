#include "sched/online.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "ocs/all_stop_executor.hpp"
#include "ocs/slice_executor.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_mul.hpp"
#include "sched/reco_sin.hpp"

namespace reco {

namespace {

OnlineScheduleResult epoch_reco_mul(const std::vector<Coflow>& coflows,
                                    const OnlineOptions& options) {
  OnlineScheduleResult result;
  result.cct.assign(coflows.size(), 0.0);

  std::vector<int> remaining(coflows.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  Time clock = 0.0;

  while (!remaining.empty()) {
    // Collect everything that has arrived; if nothing has, jump to the
    // next arrival (the fabric is idle anyway).
    Time next_arrival = std::numeric_limits<Time>::infinity();
    std::vector<int> batch;
    for (int idx : remaining) {
      if (coflows[idx].arrival <= clock + kTimeEps) {
        batch.push_back(idx);
      } else {
        next_arrival = std::min(next_arrival, coflows[idx].arrival);
      }
    }
    if (batch.empty()) {
      clock = next_arrival;
      continue;
    }

    // Schedule the batch as one offline Reco-Mul instance on a local time
    // axis, then shift onto the global clock.
    std::vector<Coflow> local;
    local.reserve(batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      Coflow c = coflows[batch[b]];
      c.id = static_cast<int>(b);
      c.arrival = 0.0;
      local.push_back(std::move(c));
    }
    const std::vector<int> order = order_coflows(local, options.ordering);
    const SliceSchedule packet = packet_schedule(local, order);
    const RecoMulSchedule transformed =
        reco_mul_transform(packet, options.delta, options.c_threshold);
    result.reconfigurations += count_reconfigurations(transformed.pseudo);

    const std::vector<Time> local_cct =
        completion_times(transformed.real, static_cast<int>(batch.size()));
    for (std::size_t b = 0; b < batch.size(); ++b) {
      result.cct[batch[b]] = clock + local_cct[b] - coflows[batch[b]].arrival;
    }
    for (const FlowSlice& s : transformed.real) {
      result.schedule.push_back(
          {s.start + clock, s.end + clock, s.src, s.dst, coflows[batch[s.coflow]].id});
    }
    clock += makespan(transformed.real);
    ++result.epochs;

    std::vector<int> still_waiting;
    still_waiting.reserve(remaining.size() - batch.size());
    for (int idx : remaining) {
      if (std::find(batch.begin(), batch.end(), idx) == batch.end()) {
        still_waiting.push_back(idx);
      }
    }
    remaining = std::move(still_waiting);
  }

  for (std::size_t k = 0; k < coflows.size(); ++k) {
    result.total_weighted_cct += coflows[k].weight * result.cct[k];
  }
  return result;
}

OnlineScheduleResult drain_replan_reco_mul(const std::vector<Coflow>& coflows,
                                           const OnlineOptions& options) {
  OnlineScheduleResult result;
  result.cct.assign(coflows.size(), 0.0);

  // Working copy of what each coflow still has to send.
  std::vector<Matrix> remaining;
  remaining.reserve(coflows.size());
  for (const Coflow& c : coflows) remaining.push_back(c.demand);
  std::vector<char> finished(coflows.size(), 0);

  // Sorted distinct arrival instants: the only replan triggers.
  std::vector<Time> arrivals;
  for (const Coflow& c : coflows) arrivals.push_back(c.arrival);
  std::sort(arrivals.begin(), arrivals.end());
  arrivals.erase(std::unique(arrivals.begin(), arrivals.end()), arrivals.end());

  Time clock = 0.0;
  while (true) {
    // Admit every arrived, unfinished coflow into this planning round.
    std::vector<int> batch;
    Time next_arrival = std::numeric_limits<Time>::infinity();
    for (std::size_t k = 0; k < coflows.size(); ++k) {
      if (finished[k]) continue;
      if (coflows[k].arrival <= clock + kTimeEps) {
        batch.push_back(static_cast<int>(k));
      } else {
        next_arrival = std::min(next_arrival, coflows[k].arrival);
      }
    }
    if (batch.empty()) {
      if (!std::isfinite(next_arrival)) break;  // everything served
      clock = next_arrival;
      continue;
    }

    std::vector<Coflow> local;
    local.reserve(batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      Coflow c = coflows[batch[b]];
      c.id = static_cast<int>(b);
      c.arrival = 0.0;
      c.demand = remaining[batch[b]];
      local.push_back(std::move(c));
    }
    const std::vector<int> order = order_coflows(local, options.ordering);
    const SliceSchedule packet = packet_schedule(local, order);
    const RecoMulSchedule transformed =
        reco_mul_transform(packet, options.delta, options.c_threshold);

    // Cut at the next arrival: keep only slices that have started by then
    // (on the local axis).  Their end times were computed assuming the
    // cancelled batches' halts too, so keeping a prefix stays feasible
    // (conservatively late).
    const Time cut = std::isfinite(next_arrival)
                         ? next_arrival - clock
                         : std::numeric_limits<Time>::infinity();
    Time epoch_end = 0.0;
    for (std::size_t f = 0; f < transformed.real.size(); ++f) {
      const FlowSlice& s = transformed.real[f];
      if (s.start > cut + kTimeEps) continue;  // not started by the cut: cancel
      result.schedule.push_back(
          {s.start + clock, s.end + clock, s.src, s.dst, coflows[batch[s.coflow]].id});
      // Transmitted volume is the *pseudo* duration (the real slice is
      // stretched by all-stop halts, which move no data).
      Matrix& rem = remaining[batch[s.coflow]];
      rem.at(s.src, s.dst) = clamp_zero(rem.at(s.src, s.dst) -
                                        transformed.pseudo[f].duration());
      epoch_end = std::max(epoch_end, s.end);
    }
    // Reconfigurations actually paid: batches that fired before the cut.
    for (Time t : start_batches(transformed.pseudo)) {
      if (t <= cut + kTimeEps) ++result.reconfigurations;
    }
    ++result.epochs;

    for (std::size_t b = 0; b < batch.size(); ++b) {
      if (remaining[batch[b]].max_entry() < kMinServiceQuantum && !finished[batch[b]]) {
        finished[batch[b]] = 1;
        // Completion = last slice of this coflow in global time.
        Time done_at = coflows[batch[b]].arrival;
        for (const FlowSlice& s : result.schedule) {
          if (s.coflow == coflows[batch[b]].id) done_at = std::max(done_at, s.end);
        }
        result.cct[batch[b]] = done_at - coflows[batch[b]].arrival;
      }
    }

    // Replan when the kept prefix drains — but never before the arrival
    // that triggered the cut (nothing new to plan until it lands).
    clock = std::isfinite(next_arrival) ? std::max(next_arrival, clock + epoch_end)
                                        : clock + epoch_end;
  }

  for (std::size_t k = 0; k < coflows.size(); ++k) {
    result.total_weighted_cct += coflows[k].weight * result.cct[k];
  }
  return result;
}

OnlineScheduleResult fifo_reco_sin(const std::vector<Coflow>& coflows,
                                   const OnlineOptions& options) {
  OnlineScheduleResult result;
  result.cct.assign(coflows.size(), 0.0);

  std::vector<int> order(coflows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return coflows[a].arrival < coflows[b].arrival;
  });

  Time clock = 0.0;
  for (int idx : order) {
    const Coflow& c = coflows[idx];
    const Time start = std::max(clock, c.arrival);
    const CircuitSchedule cs = reco_sin(c.demand, options.delta);
    const ExecutionResult exec =
        execute_all_stop(cs, c.demand, options.delta, start, c.id, &result.schedule);
    clock = start + exec.cct;
    result.cct[idx] = clock - c.arrival;
    result.reconfigurations += exec.reconfigurations;
  }

  for (std::size_t k = 0; k < coflows.size(); ++k) {
    result.total_weighted_cct += coflows[k].weight * result.cct[k];
  }
  return result;
}

}  // namespace

OnlineScheduleResult schedule_online(const std::vector<Coflow>& coflows, OnlinePolicy policy,
                                     const OnlineOptions& options) {
  switch (policy) {
    case OnlinePolicy::kEpochRecoMul: return epoch_reco_mul(coflows, options);
    case OnlinePolicy::kFifoRecoSin: return fifo_reco_sin(coflows, options);
    case OnlinePolicy::kDrainReplanRecoMul: return drain_replan_reco_mul(coflows, options);
  }
  return {};
}

}  // namespace reco
