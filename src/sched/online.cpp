#include "sched/online.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "sched/online_core.hpp"

namespace reco {

OnlineScheduleResult schedule_online(const std::vector<Coflow>& coflows, OnlinePolicyKind policy,
                                     const OnlineOptions& options) {
  OnlineScheduleResult result;
  result.cct.assign(coflows.size(), 0.0);
  if (coflows.empty()) return result;

  // Submission order: nondecreasing arrival, original index as tiebreak —
  // the admission sequence the event-driven daemon sees.
  std::vector<int> by_arrival(coflows.size());
  std::iota(by_arrival.begin(), by_arrival.end(), 0);
  std::stable_sort(by_arrival.begin(), by_arrival.end(), [&](int a, int b) {
    return coflows[a].arrival < coflows[b].arrival;
  });

  OnlineCoreOptions core_options;
  core_options.delta = options.delta;
  core_options.c_threshold = options.c_threshold;
  core_options.ordering = options.ordering;
  OnlineCore core(policy, core_options);
  core.reserve(coflows.size());

  const std::size_t n = coflows.size();
  std::size_t cursor = 0;

  if (core.policy().serialize_batch()) {
    // FIFO: serve strictly in submission order; each serve starts at
    // max(clock, arrival), so admission timing cannot reorder anything —
    // submit lazily and step.
    Time clock = 0.0;
    while (cursor < n || !core.idle()) {
      if (core.idle()) core.submit(coflows[by_arrival[cursor++]]);
      clock = core.step_fifo(clock);
    }
  } else {
    const bool preempt = core.policy().preempt_on_arrival();
    Time clock = 0.0;
    while (cursor < n || !core.idle()) {
      // Admit everything that has arrived (eps-tolerant boundary, matching
      // the daemon's ingest_until lookahead).
      while (cursor < n && coflows[by_arrival[cursor]].arrival <= clock + kTimeEps) {
        core.submit(coflows[by_arrival[cursor++]]);
      }
      if (core.idle()) {
        clock = coflows[by_arrival[cursor]].arrival;  // fabric idle: jump ahead
        continue;
      }
      const Time next_arrival =
          cursor < n ? coflows[by_arrival[cursor]].arrival : std::numeric_limits<Time>::infinity();
      core.plan(clock);
      // Drain-replan cuts the epoch at the next arrival; epoch batching
      // runs it to completion.
      const Time cut =
          preempt ? next_arrival - clock : std::numeric_limits<Time>::infinity();
      const Time epoch_end = core.commit(cut);
      if (preempt && std::isfinite(next_arrival)) {
        // Replan when the kept prefix drains — but never before the arrival
        // that triggered the cut (nothing new to plan until it lands).
        clock = std::max(next_arrival, clock + epoch_end);
      } else {
        clock += epoch_end;
      }
    }
  }

  // Map core results (keyed by admission sequence) back to input positions.
  const std::vector<Time>& by_seq = core.cct_by_seq();
  for (std::size_t s = 0; s < by_arrival.size(); ++s) {
    result.cct[by_arrival[s]] = by_seq[s];
  }
  result.schedule = core.schedule();
  result.reconfigurations = core.stats().reconfigurations;
  result.epochs = core.stats().epochs;
  result.total_weighted_cct = core.stats().total_weighted_cct;
  result.digest = core.digest();
  return result;
}

}  // namespace reco
