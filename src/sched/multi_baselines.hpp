// End-to-end multi-coflow pipelines (Sec. V-D contenders).
//
//  * Reco-Mul pipeline      — ordering -> non-preemptive packet schedule ->
//                             Algorithm 2 transform -> real-time OCS schedule.
//  * SEBF + Solstice        — SEBF priority order; coflows run through the
//                             OCS one at a time, each scheduled by Solstice
//                             (the paper's OCS adaptation of Varys).
//  * LP-II-GB               — interval-indexed-LP order; coflows run one at
//                             a time, each scheduled by plain stuffing+BvN
//                             (Qiu-Stein-Zhong's intra-coflow method).
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "core/slice.hpp"
#include "core/types.hpp"
#include "lp/model.hpp"
#include "sched/ordering.hpp"

namespace reco {

/// A fabric-wide multi-coflow schedule on the real-time axis plus the
/// metrics every experiment reports.
struct MultiScheduleResult {
  SliceSchedule schedule;    ///< real-time slices (reconfig delays included)
  std::vector<Time> cct;     ///< completion time per coflow id
  int reconfigurations = 0;  ///< circuit establishments paid
  Time total_weighted_cct = 0.0;
};

/// Which single-coflow scheduler a sequential pipeline uses per coflow.
enum class SingleCoflowAlgo { kRecoSin, kSolstice, kBvn };

/// Run coflows through the OCS strictly one at a time in the given order,
/// each scheduled by `algo`.  This is how packet-switch-native orderings
/// (SEBF, LP-II-GB) are adapted to a circuit switch.
MultiScheduleResult sequential_multi_schedule(const std::vector<Coflow>& coflows,
                                              const std::vector<int>& order, Time delta,
                                              SingleCoflowAlgo algo);

/// SEBF + Solstice baseline.
MultiScheduleResult sebf_solstice(const std::vector<Coflow>& coflows, Time delta);

/// LP-II-GB baseline (LP ordering + per-coflow BvN).
MultiScheduleResult lp_ii_gb(const std::vector<Coflow>& coflows, Time delta,
                             const lp::IntervalLpOptions& lp_options = {});

/// Full Reco-Mul pipeline with the chosen ALG_p ordering (default BSSI,
/// the combinatorial Delta = 4 choice).
MultiScheduleResult reco_mul_pipeline(const std::vector<Coflow>& coflows, Time delta, double c,
                                      OrderingPolicy ordering = OrderingPolicy::kBssi);

/// Raw-S_p strawman for the Reco-Mul ablation: run the packet-switch
/// schedule in the OCS *without* start-time regularization (every distinct
/// start still pays a reconfiguration, but nothing is aligned).
MultiScheduleResult unregularized_pipeline(const std::vector<Coflow>& coflows, Time delta,
                                           OrderingPolicy ordering = OrderingPolicy::kBssi);

}  // namespace reco
