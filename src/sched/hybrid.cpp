#include "sched/hybrid.hpp"

#include <algorithm>
#include <stdexcept>

#include "ocs/all_stop_executor.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/reco_sin.hpp"

namespace reco {

void split_at_threshold(const Matrix& demand, Time threshold, Matrix& elephants, Matrix& mice) {
  elephants = Matrix(demand.n());
  mice = Matrix(demand.n());
  for (int i = 0; i < demand.n(); ++i) {
    for (int j = 0; j < demand.n(); ++j) {
      const double d = demand.at(i, j);
      if (approx_zero(d)) continue;
      if (d >= threshold - kTimeEps) {
        elephants.at(i, j) = d;
      } else {
        mice.at(i, j) = d;
      }
    }
  }
}

HybridResult hybrid_single_coflow(const Matrix& demand, const HybridOptions& options) {
  if (options.packet_bandwidth_fraction <= 0.0) {
    throw std::invalid_argument("hybrid_single_coflow: packet bandwidth must be positive");
  }
  HybridResult r;
  Matrix elephants;
  Matrix mice;
  split_at_threshold(demand, options.c_threshold * options.delta, elephants, mice);
  r.elephant_volume = elephants.total();
  r.mice_volume = mice.total();

  if (elephants.nnz() > 0) {
    const ExecutionResult ocs =
        execute_all_stop(reco_sin(elephants, options.delta), elephants, options.delta);
    r.ocs_cct = ocs.cct;
    r.reconfigurations = ocs.reconfigurations;
  }
  if (mice.nnz() > 0) {
    // The packet fabric is reconfiguration-free and perfectly divisible, so
    // a bottleneck port drains its mice load at the slim bandwidth.
    r.packet_cct = mice.rho() / options.packet_bandwidth_fraction;
  }
  r.cct = std::max(r.ocs_cct, r.packet_cct);
  return r;
}

HybridMultiResult hybrid_multi_coflow(const std::vector<Coflow>& coflows,
                                      const HybridOptions& options) {
  if (options.packet_bandwidth_fraction <= 0.0) {
    throw std::invalid_argument("hybrid_multi_coflow: packet bandwidth must be positive");
  }
  HybridMultiResult result;
  result.cct.assign(coflows.size(), 0.0);
  if (coflows.empty()) return result;
  const int n = coflows.front().demand.n();
  const Time threshold = options.c_threshold * options.delta;

  // Split every coflow; elephants keep ids so the pipeline's CCTs line up.
  std::vector<Coflow> elephants;
  std::vector<Matrix> mice(coflows.size(), Matrix(n));
  bool any_elephants = false;
  for (std::size_t k = 0; k < coflows.size(); ++k) {
    Coflow big = coflows[k];
    split_at_threshold(coflows[k].demand, threshold, big.demand, mice[k]);
    result.elephant_volume += big.demand.total();
    result.mice_volume += mice[k].total();
    any_elephants = any_elephants || big.demand.nnz() > 0;
    elephants.push_back(std::move(big));
  }

  // OCS side: the full Reco-Mul pipeline over the elephant sub-coflows.
  std::vector<Time> ocs_cct(coflows.size(), 0.0);
  if (any_elephants) {
    const MultiScheduleResult ocs =
        reco_mul_pipeline(elephants, options.delta, options.c_threshold);
    ocs_cct = ocs.cct;
    result.reconfigurations = ocs.reconfigurations;
  }

  // Packet side: fair fluid sharing — a port's total mice backlog drains at
  // the slim bandwidth, and under fair sharing every mouse on that port
  // finishes together at the end of the backlog (conservative per coflow).
  std::vector<Time> port_backlog_in(n, 0.0);
  std::vector<Time> port_backlog_out(n, 0.0);
  for (std::size_t k = 0; k < coflows.size(); ++k) {
    for (int i = 0; i < n; ++i) port_backlog_in[i] += mice[k].row_sum(i);
    for (int j = 0; j < n; ++j) port_backlog_out[j] += mice[k].col_sum(j);
  }
  for (std::size_t k = 0; k < coflows.size(); ++k) {
    Time packet_cct = 0.0;
    for (int i = 0; i < n && mice[k].nnz() > 0; ++i) {
      if (!approx_zero(mice[k].row_sum(i))) {
        packet_cct = std::max(packet_cct,
                              port_backlog_in[i] / options.packet_bandwidth_fraction);
      }
      if (!approx_zero(mice[k].col_sum(i))) {
        packet_cct = std::max(packet_cct,
                              port_backlog_out[i] / options.packet_bandwidth_fraction);
      }
    }
    result.cct[coflows[k].id] = std::max(ocs_cct[coflows[k].id], packet_cct);
    result.total_weighted_cct += coflows[k].weight * result.cct[coflows[k].id];
  }
  return result;
}

}  // namespace reco
