// Coflow orderings: the sigma fed into non-preemptive scheduling.
//
//  * SEBF  — Smallest-Effective-Bottleneck-First (Varys, SIGCOMM'14):
//            ascending rho(D_k); weight-agnostic.
//  * BSSI  — bottleneck primal-dual for concurrent open shop
//            (Mastrolilli et al.; adopted by Sincronia, SIGCOMM'18): a
//            combinatorial 4-approximation for total weighted CCT — the
//            Delta = 4 non-preemptive ALG_p that Reco-Mul wraps
//            (substituting for Shafiee-Ghaderi's LP-based 4-approx; see
//            DESIGN.md §4).
//  * LP    — order by the fractional completion estimates of the
//            interval-indexed LP (Qiu-Stein-Zhong) — the ordering step of
//            LP-II-GB.  Falls back to BSSI if the LP solver fails.
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "lp/model.hpp"

namespace reco {

enum class OrderingPolicy { kSebf, kBssi, kLp };

std::vector<int> sebf_order(const std::vector<Coflow>& coflows);
std::vector<int> bssi_order(const std::vector<Coflow>& coflows);
std::vector<int> lp_order(const std::vector<Coflow>& coflows,
                          const lp::IntervalLpOptions& options = {});

std::vector<int> order_coflows(const std::vector<Coflow>& coflows, OrderingPolicy policy);

}  // namespace reco
