// Coflow orderings: the sigma fed into non-preemptive scheduling.
//
//  * SEBF  — Smallest-Effective-Bottleneck-First (Varys, SIGCOMM'14):
//            ascending rho(D_k); weight-agnostic.
//  * BSSI  — bottleneck primal-dual for concurrent open shop
//            (Mastrolilli et al.; adopted by Sincronia, SIGCOMM'18): a
//            combinatorial 4-approximation for total weighted CCT — the
//            Delta = 4 non-preemptive ALG_p that Reco-Mul wraps
//            (substituting for Shafiee-Ghaderi's LP-based 4-approx; see
//            DESIGN.md §4).
//  * LP    — order by the fractional completion estimates of the
//            interval-indexed LP (Qiu-Stein-Zhong) — the ordering step of
//            LP-II-GB.  Falls back to BSSI if the LP solver fails.
#pragma once

#include <cstddef>
#include <vector>

#include "core/coflow.hpp"
#include "core/support_index.hpp"
#include "lp/model.hpp"

namespace reco {

enum class OrderingPolicy { kSebf, kBssi, kLp };

std::vector<int> sebf_order(const std::vector<Coflow>& coflows);
std::vector<int> bssi_order(const std::vector<Coflow>& coflows);
std::vector<int> lp_order(const std::vector<Coflow>& coflows,
                          const lp::IntervalLpOptions& options = {});

std::vector<int> order_coflows(const std::vector<Coflow>& coflows, OrderingPolicy policy);

/// Reusable buffers for residual-set ordering.  Loads live in one flat
/// num_coflows x num_ports row-major array, so a long-lived scratch makes
/// per-epoch reordering allocation-free at steady state.
struct OrderingScratch {
  std::vector<double> load;        ///< flat loads, row k = coflow k's 2n ports
  std::vector<double> w;           ///< residual dual weights (BSSI)
  std::vector<char> placed;        ///< BSSI placement flags
  std::vector<double> port_total;  ///< per-port remaining load (BSSI)
  std::vector<double> key;         ///< SEBF bottleneck keys

  /// Total heap capacity currently held, in elements.
  std::size_t capacity_footprint() const {
    return load.capacity() + w.capacity() + placed.capacity() + port_total.capacity() +
           key.capacity();
  }
};

/// Order a residual set (one sparse index + weight per live coflow) into
/// `order`, a permutation of indices into `residuals`.  Loads come from
/// `row_sum_exact` / `col_sum_exact`, which match the dense Matrix scans
/// bit-for-bit, so on equal matrices this returns exactly what
/// `order_coflows` returns on the corresponding Coflow vector.  kLp falls
/// back to BSSI here (the interval LP wants whole Coflow objects; residual
/// replanning is the regime where its solve cost is least affordable).
void order_residuals_into(const std::vector<const SupportIndex*>& residuals,
                          const std::vector<double>& weights, OrderingPolicy policy,
                          OrderingScratch& scratch, std::vector<int>& order);

}  // namespace reco
