// Sunflow (Huang, Sun, Ng — CoNEXT'16): single-coflow scheduling for the
// *not-all-stop* OCS, the competitor row of Table III.
//
// Sunflow schedules circuits the way a packet switch schedules packets:
// every flow is transmitted in one non-preemptive shot on its (in, out)
// port pair, each port pair pays its own reconfiguration delay, and ports
// are work-conserving.  Huang et al. prove this is 2-approximate in the
// not-all-stop model.  We realize it as backfilling list scheduling over
// per-port timelines with a delta gap before every circuit setup.
#pragma once

#include "core/matrix.hpp"
#include "core/slice.hpp"
#include "core/types.hpp"

namespace reco {

/// How Sunflow orders the flows of the coflow before list scheduling.
enum class SunflowOrder {
  kLongestFirst,   ///< LPT — the default, balances port makespans
  kShortestFirst,  ///< SPT — ablation
};

struct SunflowResult {
  /// One slice per flow; starts already include the per-circuit setup
  /// delay, i.e. slice.start is when data begins to move.
  SliceSchedule schedule;
  /// CCT in the not-all-stop model (max slice end).
  Time cct = 0.0;
  /// Circuits established == number of flows (one shot per flow).
  int reconfigurations = 0;
};

/// Schedule one coflow on a not-all-stop OCS, Sunflow style.
SunflowResult sunflow(const Matrix& demand, Time delta,
                      SunflowOrder order = SunflowOrder::kLongestFirst);

}  // namespace reco
