// RotorNet-style demand-OBLIVIOUS circuit scheduling (Mellette et al.,
// SIGCOMM'17): the switch blindly cycles through N fixed round-robin
// permutations with a fixed slot length, touching every (i, j) pair once
// per cycle.  No demand estimation, no matching computation — the polar
// opposite of Reco-Sin's demand-driven plan, and a useful calibration
// point: obliviousness costs little on dense uniform demand and is
// catastrophic on sparse skewed demand.
#pragma once

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

struct RotorOptions {
  /// Slot length as a multiple of delta (RotorNet keeps slots >> the
  /// reconfiguration penalty for duty-cycle reasons).
  double slot_over_delta = 10.0;
  /// Safety valve on emitted assignments.
  int max_assignments = 1 << 22;
};

/// Build the oblivious rotor schedule that covers `demand`: cycle k uses
/// permutations j = (i + r) mod N for r = 0..N-1, each held one slot,
/// repeated until every entry is served.  Rotations with no remaining
/// demand are dropped (the executor would skip them anyway, but dropping
/// keeps the schedule finite and tight).
CircuitSchedule rotornet_schedule(const Matrix& demand, Time delta,
                                  const RotorOptions& options = {});

}  // namespace reco
