// Incremental online replan core: the engine under both `schedule_online`
// (the batch loop driver) and the event-driven `sim::OnlineDaemon`.
//
// The historical online path rebuilt all Reco-Mul state from dense Coflow
// copies on every epoch — O(batch * N^2) of allocation and copying per
// replan.  OnlineCore instead keeps one long-lived *slot* per live coflow
// holding its sparse residual (`SupportIndex`), recycles slots through a
// free list as coflows finish, and threads caller-owned scratch
// (PacketScratch / RecoMulScratch / OrderingScratch / MatchingScratch)
// through every pipeline stage.  After warm-up, a replan touches only
// pre-sized buffers: the `alloc_events` counter (same accounting idiom as
// `matching.engine`) stays flat across a 100k-coflow arrival stream.
//
// Determinism contract: every decision is a pure function of submitted
// coflows and options.  Wall-clock enters only the latency recorder and
// obs telemetry, which never feed back; `runtime::parallel_for` call sites
// write by index — so replays are byte-identical across `--threads`.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/coflow.hpp"
#include "core/slice.hpp"
#include "core/snapshot.hpp"
#include "core/support_index.hpp"
#include "core/types.hpp"
#include "matching/matching_engine.hpp"
#include "sched/online_policy.hpp"
#include "sched/ordering.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_mul.hpp"

namespace reco {

/// Fixed power-of-two-bucket latency sketch: allocation-free recording
/// (plain array increments).  Kept separate from the obs registry so
/// decision latency is first-class in the daemon report even when
/// telemetry is disabled; quantiles delegate to the shared
/// obs::quantile_from_buckets interpolation, so percentile math lives in
/// one place and agrees with the registry histograms.
class DecisionLatencyRecorder {
 public:
  static constexpr std::size_t kBuckets = 40;  ///< up to 2^39 us (~6.4 days)

  void record_us(double us);

  std::uint64_t count() const { return count_; }
  double mean_us() const { return count_ == 0 ? 0.0 : sum_us_ / static_cast<double>(count_); }
  double min_us() const { return count_ == 0 ? 0.0 : min_us_; }
  double max_us() const { return max_us_; }
  /// Linearly interpolated q-quantile (0 <= q <= 1) over the pow2 buckets,
  /// clamped to the observed [min, max].
  double quantile_us(double q) const;

  /// Checkpoint hooks: totals resume across a restart.  Latency is
  /// wall-clock and therefore *not* part of the byte-identity contract —
  /// post-resume recordings depend on the machine — but carrying the
  /// counters over keeps lifetime summaries meaningful.
  void save(SnapshotWriter& out) const;
  void load(SnapshotReader& in);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};  ///< bucket k: us <= 2^k
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double min_us_ = 0.0;
  double max_us_ = 0.0;
};

struct OnlineCoreOptions {
  Time delta = 100e-6;
  double c_threshold = 4.0;
  OrderingPolicy ordering = OrderingPolicy::kBssi;  ///< ALG_p inside an epoch
  /// Keep the emitted SliceSchedule.  The soak/daemon mode turns this off:
  /// an unbounded result vector is the one buffer that *must* grow with
  /// stream length (the digest still covers every emitted slice).
  bool record_schedule = true;
  /// Keep per-coflow CCTs (indexed by admission sequence).  `reserve()`
  /// pre-sizes the vector so recording stays allocation-free.
  bool record_cct = true;
};

struct OnlineCoreStats {
  std::uint64_t submitted = 0;
  std::uint64_t finished = 0;
  std::uint64_t plans = 0;
  std::uint64_t commits = 0;
  std::uint64_t emitted_slices = 0;
  std::uint64_t slot_reuses = 0;    ///< admissions that recycled a finished slot
  std::uint64_t alloc_events = 0;   ///< capacity-footprint high-water increases
  std::uint64_t peak_live = 0;      ///< max concurrently live coflows
  int reconfigurations = 0;         ///< distinct start batches among emitted slices
  int epochs = 0;                   ///< batch replan rounds committed
  Time demand_total = 0.0;          ///< sum of submitted demand volume
  Time delivered_total = 0.0;       ///< volume drained from residuals so far
  Time total_weighted_cct = 0.0;    ///< sum w_k * CCT_k over finished coflows
};

/// The replan engine.  Drivers own the clock and the arrival feed; the core
/// owns every per-coflow and per-epoch buffer.  Protocol:
///
///   batch policies:  submit(c)... -> plan(now) -> commit(cut) -> repeat
///   serial (FIFO):   submit(c)... -> step_fifo(now) -> repeat
///
/// `plan` builds a full Reco-Mul plan for the live set on a local time axis
/// based at `now`; `commit` materializes the prefix of slices that start by
/// `cut_local` (infinity = the whole plan), folds served volume out of the
/// residuals, finishes drained coflows, and recycles their slots.
class OnlineCore {
 public:
  explicit OnlineCore(OnlinePolicyKind kind, const OnlineCoreOptions& options = {});

  /// Pre-size result and bookkeeping vectors for an expected stream length
  /// (warm-up allocation, so the steady state stays flat).
  void reserve(std::size_t expected_coflows);

  /// Admit a coflow (it has arrived; the driver controls when).  Returns
  /// the admission sequence number (0-based, dense) used to key
  /// `cct_by_seq`.  All demands must share one fabric dimension.
  std::uint64_t submit(const Coflow& coflow);

  std::size_t live() const { return live_slots_.size(); }
  bool idle() const { return live_slots_.empty(); }
  bool has_plan() const { return has_plan_; }

  /// Build a plan for every live coflow on a local axis based at `now`.
  /// Returns the full plan's real-time makespan (local).  Batch policies
  /// only; requires no plan outstanding and a non-empty live set.
  Time plan(Time now);

  /// Emit the kept prefix (slices starting by `cut_local` + eps), update
  /// residuals/CCTs, recycle finished slots.  Returns the kept epoch end
  /// (local axis; 0 if nothing was kept).
  Time commit(Time cut_local);

  /// FIFO: serve the earliest-admitted live coflow to completion through
  /// Reco-Sin starting at max(now, arrival).  Returns the absolute finish
  /// time (`now` unchanged if nothing is live).
  Time step_fifo(Time now);

  OnlinePolicyKind kind() const { return kind_; }
  const OnlinePolicy& policy() const { return *policy_; }
  const OnlineCoreOptions& options() const { return options_; }

  const SliceSchedule& schedule() const { return schedule_; }
  /// Per-coflow CCT keyed by admission sequence (record_cct mode).
  const std::vector<Time>& cct_by_seq() const { return cct_; }
  /// Residual demand volume still live (exact sums; O(live * n)).  The
  /// conservation invariant — delivered_total + outstanding() ==
  /// demand_total up to accumulated clamp crumbs — is the drain-replan
  /// accounting property the tests pin down.
  Time outstanding() const;

  const OnlineCoreStats& stats() const { return stats_; }
  const DecisionLatencyRecorder& latency() const { return latency_; }

  /// Serialize the full scheduling state: slots (sparse residuals), live
  /// and free lists, stats, digest, CCTs, the recorded schedule, and —
  /// crucially — only a *flag* for an outstanding plan.  Plans are a pure
  /// function of the live residuals (residuals are untouched between
  /// plan() and commit()), so load() rebuilds an outstanding plan by
  /// re-running plan() on the restored slots instead of serializing
  /// RecoMulSchedule internals; the rebuilt plan is bit-identical, and the
  /// resumed run's digest, schedule, and stats match the uninterrupted
  /// run's exactly.  load() requires a core constructed with the same
  /// policy kind and options (verified; throws std::runtime_error on
  /// mismatch).
  void save(SnapshotWriter& out) const;
  void load(SnapshotReader& in);
  /// FNV-1a over every emitted slice (start/end bits, ports, coflow id) —
  /// the byte-identity witness for thread-count and daemon-vs-loop
  /// equivalence without storing a 100k-coflow schedule.
  std::uint64_t digest() const { return digest_; }
  /// Heap capacity currently held by all working state, in elements.
  std::size_t capacity_footprint() const;

 private:
  struct Slot {
    SupportIndex residual;
    CoflowId id = 0;        ///< external id stamped on emitted slices
    std::uint64_t seq = 0;  ///< admission sequence
    double weight = 1.0;
    Time arrival = 0.0;
    Time last_end = 0.0;    ///< latest emitted slice end (absolute axis)
  };

  void emit_slice(Time start, Time end, PortId src, PortId dst, CoflowId id);
  void finish_slot(int slot, Time done_at);
  /// Sample the capacity footprint; a new high-water mark is an alloc event.
  void note_footprint();

  OnlinePolicyKind kind_;
  std::unique_ptr<OnlinePolicy> policy_;
  OnlineCoreOptions options_;

  // Slot store: slots_ never shrinks; finished slots are recycled via the
  // free list and re-seated with SupportIndex::assign (capacity reuse).
  std::vector<Slot> slots_;
  std::vector<int> free_slots_;
  std::vector<int> live_slots_;  ///< live slot indices, admission order

  // Per-plan state (valid while has_plan_).
  bool has_plan_ = false;
  Time base_ = 0.0;
  std::vector<int> batch_slots_;                  ///< batch position -> slot
  std::vector<const SupportIndex*> batch_residuals_;
  std::vector<double> batch_weights_;
  std::vector<CoflowId> batch_ids_;               ///< iota: local id == position
  std::vector<int> order_;
  SliceSchedule packet_;
  RecoMulSchedule plan_;

  // Pipeline scratch, threaded through every stage.
  OrderingScratch ordering_scratch_;
  PacketScratch packet_scratch_;
  RecoMulScratch mul_scratch_;
  MatchingScratch matching_scratch_;  ///< FIFO path's warm-started BvN peel
  std::vector<Time> kept_starts_;     ///< batch counting among kept slices
  std::vector<char> finished_flags_;  ///< single-pass live-list compaction
  SliceSchedule step_slices_;         ///< FIFO per-step executor output

  // Results and accounting.
  SliceSchedule schedule_;
  std::vector<Time> cct_;
  OnlineCoreStats stats_;
  DecisionLatencyRecorder latency_;
  std::uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::size_t footprint_high_water_ = 0;
};

}  // namespace reco
