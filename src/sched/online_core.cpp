#include "sched/online_core.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"

namespace reco {

namespace {

/// online.* instruments, bound once per process (stable handles; every
/// record gated on obs::enabled() at the call site).
struct OnlineMetrics {
  obs::Counter& submitted = obs::metrics().counter("online.submitted");
  obs::Counter& finished = obs::metrics().counter("online.finished");
  obs::Counter& plans = obs::metrics().counter("online.plans");
  obs::Counter& commits = obs::metrics().counter("online.commits");
  obs::Counter& emitted_slices = obs::metrics().counter("online.emitted_slices");
  obs::Counter& reconfigurations = obs::metrics().counter("online.reconfigurations");
  obs::Counter& alloc_events = obs::metrics().counter("online.alloc_events");
  obs::Counter& slot_reuses = obs::metrics().counter("online.slot_reuses");
  obs::Histogram& decision_latency_us =
      obs::metrics().histogram("online.decision_latency_us", obs::pow2_buckets(1048576.0));
  obs::Histogram& batch_size =
      obs::metrics().histogram("online.batch_size", obs::pow2_buckets(65536.0));

  static OnlineMetrics& get() {
    static OnlineMetrics m;
    return m;
  }
};

using LatencyClock = std::chrono::steady_clock;

double elapsed_us(LatencyClock::time_point since) {
  return std::chrono::duration<double, std::micro>(LatencyClock::now() - since).count();
}

}  // namespace

void DecisionLatencyRecorder::record_us(double us) {
  if (us < 0.0) us = 0.0;
  std::size_t k = 0;
  double bound = 1.0;
  while (k + 1 < kBuckets && us > bound) {
    bound *= 2.0;
    ++k;
  }
  ++buckets_[k];
  min_us_ = count_ == 0 ? us : std::min(min_us_, us);
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

double DecisionLatencyRecorder::quantile_us(double q) const {
  if (count_ == 0) return 0.0;
  static const std::vector<double> bounds = [] {
    std::vector<double> b(kBuckets);
    double bound = 1.0;
    for (std::size_t k = 0; k < kBuckets; ++k, bound *= 2.0) b[k] = bound;
    return b;
  }();
  // quantile_from_buckets wants a trailing overflow slot; record_us clamps
  // into the last bucket, so overflow is always empty.
  std::array<std::uint64_t, kBuckets + 1> counts{};
  std::copy(buckets_.begin(), buckets_.end(), counts.begin());
  return obs::quantile_from_buckets(bounds, counts.data(), q, min_us_, max_us_);
}

OnlineCore::OnlineCore(OnlinePolicyKind kind, const OnlineCoreOptions& options)
    : kind_(kind), policy_(make_online_policy(kind, options.ordering)), options_(options) {}

void OnlineCore::reserve(std::size_t expected_coflows) {
  if (options_.record_cct) cct_.reserve(expected_coflows);
  // Slot count tracks peak concurrency, not stream length; a modest reserve
  // avoids the early doubling churn without guessing the peak.
  slots_.reserve(std::min<std::size_t>(expected_coflows, 256));
  free_slots_.reserve(slots_.capacity());
  live_slots_.reserve(slots_.capacity());
  note_footprint();
}

std::uint64_t OnlineCore::submit(const Coflow& coflow) {
  const std::uint64_t seq = stats_.submitted++;
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].residual.assign(coflow.demand);  // capacity-reusing re-seat
    ++stats_.slot_reuses;
    if (obs::enabled()) OnlineMetrics::get().slot_reuses.inc();
  } else {
    slot = static_cast<int>(slots_.size());
    slots_.emplace_back();
    slots_[slot].residual = SupportIndex(coflow.demand);
    // Dense-reserve the fresh index: its capacity is now independent of the
    // coflow shapes it will host, so re-seating this slot never allocates.
    slots_[slot].residual.reserve_dense();
  }
  Slot& s = slots_[slot];
  s.id = coflow.id;
  s.seq = seq;
  s.weight = coflow.weight;
  s.arrival = coflow.arrival;
  s.last_end = 0.0;
  live_slots_.push_back(slot);
  stats_.peak_live = std::max<std::uint64_t>(stats_.peak_live, live_slots_.size());
  stats_.demand_total += coflow.demand.total();
  if (options_.record_cct) cct_.push_back(0.0);
  if (obs::enabled()) {
    OnlineMetrics::get().submitted.inc();
    obs::flight_recorder().record("admission", coflow.arrival,
                                  static_cast<std::int64_t>(coflow.id), coflow.demand.total());
  }
  note_footprint();
  return seq;
}

Time OnlineCore::plan(Time now) {
  if (policy_->serialize_batch()) {
    throw std::logic_error("OnlineCore::plan: serialized policy plans via step_fifo");
  }
  if (has_plan_) throw std::logic_error("OnlineCore::plan: previous plan not committed");
  if (live_slots_.empty()) throw std::logic_error("OnlineCore::plan: nothing live to plan");
  obs::ScopedSpan span("online.plan", "online");
  span.arg("batch", static_cast<double>(live_slots_.size()));

  const auto t0 = LatencyClock::now();
  const std::size_t batch = live_slots_.size();
  batch_slots_.assign(live_slots_.begin(), live_slots_.end());
  batch_residuals_.resize(batch);
  batch_weights_.resize(batch);
  batch_ids_.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const Slot& s = slots_[batch_slots_[b]];
    batch_residuals_[b] = &s.residual;
    batch_weights_[b] = s.weight;
    batch_ids_[b] = static_cast<CoflowId>(b);  // local id == batch position
  }

  policy_->order_batch(batch_residuals_, batch_weights_, ordering_scratch_, order_);
  packet_schedule_into(batch_residuals_, batch_ids_, order_, packet_scratch_, packet_);
  reco_mul_transform_into(packet_, options_.delta, options_.c_threshold, mul_scratch_, plan_);

  const double us = elapsed_us(t0);
  latency_.record_us(us);
  ++stats_.plans;
  has_plan_ = true;
  base_ = now;
  if (obs::enabled()) {
    OnlineMetrics::get().plans.inc();
    OnlineMetrics::get().decision_latency_us.observe(us);
    OnlineMetrics::get().batch_size.observe(static_cast<double>(batch));
    obs::flight_recorder().record("plan", now, static_cast<std::int64_t>(batch), us);
  }
  span.arg("slices", static_cast<double>(plan_.real.size()));
  return makespan(plan_.real);
}

Time OnlineCore::commit(Time cut_local) {
  if (!has_plan_) throw std::logic_error("OnlineCore::commit: no plan outstanding");
  obs::ScopedSpan span("online.commit", "online");

  Time epoch_end = 0.0;
  kept_starts_.clear();
  std::uint64_t kept = 0;
  for (std::size_t f = 0; f < plan_.real.size(); ++f) {
    const FlowSlice& s = plan_.real[f];
    if (s.start > cut_local + kTimeEps) continue;  // not started by the cut: cancel
    Slot& slot = slots_[batch_slots_[s.coflow]];
    emit_slice(s.start + base_, s.end + base_, s.src, s.dst, slot.id);
    // Transmitted volume is the *pseudo* duration (the real slice is
    // stretched by all-stop halts, which move no data).  Accounting uses
    // the exact residual decrement, so delivered + outstanding == submitted
    // even when clamp_zero snaps the last crumbs (the conservation
    // invariant of the drain-replan bugfix sweep).
    const double before = slot.residual.at(s.src, s.dst);
    const double after = clamp_zero(before - plan_.pseudo[f].duration());
    slot.residual.set(s.src, s.dst, after);
    stats_.delivered_total += before - slot.residual.at(s.src, s.dst);
    slot.last_end = std::max(slot.last_end, base_ + s.end);
    epoch_end = std::max(epoch_end, s.end);
    kept_starts_.push_back(s.start + base_);
    ++kept;
  }

  // Reconfigurations implied by the slices actually emitted: distinct start
  // batches among the kept *real* slices.  (The historical path counted
  // pseudo-axis batches — against a real-axis cut in drain-replan mode —
  // which drifts from what the emitted SliceSchedule implies.)  Epoch bases
  // advance by at least one delta between commits, so per-commit batch
  // counts sum to exactly count_reconfigurations(schedule()).
  std::sort(kept_starts_.begin(), kept_starts_.end());
  int reconfs = 0;
  for (std::size_t k = 0; k < kept_starts_.size(); ++k) {
    if (k == 0 || !approx_eq(kept_starts_[k - 1], kept_starts_[k])) ++reconfs;
  }
  stats_.reconfigurations += reconfs;
  ++stats_.commits;
  ++stats_.epochs;

  // Finish pass: a batch coflow is done when its residual has drained to
  // below the service quantum.  Single-pass flag compaction keeps the live
  // list in admission order without the old O(B^2) find-and-erase.
  finished_flags_.assign(slots_.size(), 0);
  bool any_finished = false;
  for (const int slot_idx : batch_slots_) {
    Slot& slot = slots_[slot_idx];
    if (slot.residual.max_entry() < kMinServiceQuantum) {
      finished_flags_[slot_idx] = 1;
      any_finished = true;
      finish_slot(slot_idx, std::max(slot.last_end, slot.arrival));
    }
  }
  if (any_finished) {
    std::size_t out = 0;
    for (const int slot_idx : live_slots_) {
      if (!finished_flags_[slot_idx]) live_slots_[out++] = slot_idx;
    }
    live_slots_.resize(out);
  }

  has_plan_ = false;
  if (obs::enabled()) {
    OnlineMetrics::get().commits.inc();
    OnlineMetrics::get().emitted_slices.inc(static_cast<double>(kept));
    OnlineMetrics::get().reconfigurations.inc(static_cast<double>(reconfs));
    obs::flight_recorder().record("commit", base_, static_cast<std::int64_t>(kept),
                                  static_cast<double>(reconfs));
  }
  span.arg("kept_slices", static_cast<double>(kept));
  span.arg("reconfigurations", static_cast<double>(reconfs));
  note_footprint();
  return epoch_end;
}

Time OnlineCore::step_fifo(Time now) {
  if (!policy_->serialize_batch()) {
    throw std::logic_error("OnlineCore::step_fifo: batch policy steps via plan/commit");
  }
  if (live_slots_.empty()) return now;
  obs::ScopedSpan span("online.step_fifo", "online");

  const int slot_idx = live_slots_.front();
  Slot& slot = slots_[slot_idx];
  const Time start = std::max(now, slot.arrival);

  const auto t0 = LatencyClock::now();
  const Matrix& demand = slot.residual.matrix();
  const Time before_total = demand.total();
  const CircuitSchedule cs =
      reco_sin(demand, options_.delta, BvnPolicy::kMaxMinAmortized, &matching_scratch_);
  step_slices_.clear();
  const ExecutionResult exec =
      execute_all_stop(cs, demand, options_.delta, start, slot.id, &step_slices_);
  const double us = elapsed_us(t0);
  latency_.record_us(us);

  for (const FlowSlice& s : step_slices_) emit_slice(s.start, s.end, s.src, s.dst, s.coflow);
  // Distinct start batches among the emitted slices (the executor appends
  // in establishment order, so starts are non-decreasing).
  int reconfs = 0;
  for (std::size_t k = 0; k < step_slices_.size(); ++k) {
    if (k == 0 || !approx_eq(step_slices_[k - 1].start, step_slices_[k].start)) ++reconfs;
  }
  stats_.reconfigurations += reconfs;
  stats_.delivered_total += before_total - exec.residual.total();
  ++stats_.plans;

  const Time done_at = start + exec.cct;
  slot.last_end = done_at;
  finish_slot(slot_idx, done_at);
  live_slots_.erase(live_slots_.begin());

  if (obs::enabled()) {
    OnlineMetrics::get().plans.inc();
    OnlineMetrics::get().decision_latency_us.observe(us);
    OnlineMetrics::get().emitted_slices.inc(static_cast<double>(step_slices_.size()));
    OnlineMetrics::get().reconfigurations.inc(static_cast<double>(reconfs));
  }
  span.arg("slices", static_cast<double>(step_slices_.size()));
  note_footprint();
  return done_at;
}

Time OnlineCore::outstanding() const {
  Time total = 0.0;
  for (const int slot_idx : live_slots_) {
    const SupportIndex& r = slots_[slot_idx].residual;
    for (int i = 0; i < r.n(); ++i) total += r.row_sum_exact(i);
  }
  return total;
}

std::size_t OnlineCore::capacity_footprint() const {
  std::size_t total = slots_.capacity() + free_slots_.capacity() + live_slots_.capacity() +
                      batch_slots_.capacity() + batch_residuals_.capacity() +
                      batch_weights_.capacity() + batch_ids_.capacity() + order_.capacity() +
                      packet_.capacity() + plan_.pseudo.capacity() + plan_.real.capacity() +
                      kept_starts_.capacity() + finished_flags_.capacity() +
                      step_slices_.capacity() + schedule_.capacity() + cct_.capacity();
  total += ordering_scratch_.capacity_footprint();
  total += packet_scratch_.capacity_footprint();
  total += mul_scratch_.capacity_footprint();
  for (const Slot& s : slots_) total += s.residual.capacity_footprint();
  return total;
}

void OnlineCore::emit_slice(Time start, Time end, PortId src, PortId dst, CoflowId id) {
  const auto mix = [this](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      digest_ ^= (x >> (8 * b)) & 0xffULL;
      digest_ *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  mix(std::bit_cast<std::uint64_t>(start));
  mix(std::bit_cast<std::uint64_t>(end));
  mix(static_cast<std::uint64_t>(src));
  mix(static_cast<std::uint64_t>(dst));
  mix(static_cast<std::uint64_t>(id));
  ++stats_.emitted_slices;
  if (options_.record_schedule) schedule_.push_back({start, end, src, dst, id});
}

void OnlineCore::finish_slot(int slot, Time done_at) {
  Slot& s = slots_[slot];
  // CCT measured from arrival, clamped non-negative: boundary admissions
  // (arrival <= clock + eps) could historically report a CCT of -eps.
  const Time cct = std::max(0.0, done_at - s.arrival);
  if (options_.record_cct) cct_[s.seq] = cct;
  stats_.total_weighted_cct += s.weight * cct;
  ++stats_.finished;
  free_slots_.push_back(slot);
  if (obs::enabled()) OnlineMetrics::get().finished.inc();
}

void DecisionLatencyRecorder::save(SnapshotWriter& out) const {
  for (const std::uint64_t b : buckets_) out.put_u64(b);
  out.put_u64(count_);
  out.put_f64(sum_us_);
  out.put_f64(min_us_);
  out.put_f64(max_us_);
}

void DecisionLatencyRecorder::load(SnapshotReader& in) {
  for (std::uint64_t& b : buckets_) b = in.get_u64();
  count_ = in.get_u64();
  sum_us_ = in.get_f64();
  min_us_ = in.get_f64();
  max_us_ = in.get_f64();
}

void OnlineCore::save(SnapshotWriter& out) const {
  out.put_u8(static_cast<std::uint8_t>(kind_));
  out.put_f64(options_.delta);
  out.put_f64(options_.c_threshold);
  out.put_u8(static_cast<std::uint8_t>(options_.ordering));
  out.put_bool(options_.record_schedule);
  out.put_bool(options_.record_cct);

  out.put_u64(slots_.size());
  for (const Slot& s : slots_) {
    out.put_i32(s.id);
    out.put_u64(s.seq);
    out.put_f64(s.weight);
    out.put_f64(s.arrival);
    out.put_f64(s.last_end);
    save_support_index(out, s.residual);
  }
  out.put_u64(free_slots_.size());
  for (const int slot : free_slots_) out.put_i32(slot);
  out.put_u64(live_slots_.size());
  for (const int slot : live_slots_) out.put_i32(slot);

  out.put_bool(has_plan_);
  out.put_f64(base_);

  out.put_u64(stats_.submitted);
  out.put_u64(stats_.finished);
  out.put_u64(stats_.plans);
  out.put_u64(stats_.commits);
  out.put_u64(stats_.emitted_slices);
  out.put_u64(stats_.slot_reuses);
  out.put_u64(stats_.alloc_events);
  out.put_u64(stats_.peak_live);
  out.put_i32(stats_.reconfigurations);
  out.put_i32(stats_.epochs);
  out.put_f64(stats_.demand_total);
  out.put_f64(stats_.delivered_total);
  out.put_f64(stats_.total_weighted_cct);

  latency_.save(out);
  out.put_u64(digest_);

  out.put_u64(cct_.size());
  for (const Time t : cct_) out.put_f64(t);
  out.put_u64(schedule_.size());
  for (const FlowSlice& s : schedule_) {
    out.put_f64(s.start);
    out.put_f64(s.end);
    out.put_i32(s.src);
    out.put_i32(s.dst);
    out.put_i32(s.coflow);
  }
  out.put_u64(footprint_high_water_);
}

void OnlineCore::load(SnapshotReader& in) {
  const auto kind = in.get_u8();
  if (kind != static_cast<std::uint8_t>(kind_)) {
    throw std::runtime_error("OnlineCore::load: checkpoint was written with a different policy");
  }
  const double delta = in.get_f64();
  const double c_threshold = in.get_f64();
  const auto ordering = in.get_u8();
  const bool record_schedule = in.get_bool();
  const bool record_cct = in.get_bool();
  if (delta != options_.delta || c_threshold != options_.c_threshold ||
      ordering != static_cast<std::uint8_t>(options_.ordering) ||
      record_schedule != options_.record_schedule || record_cct != options_.record_cct) {
    throw std::runtime_error("OnlineCore::load: checkpoint was written with different options");
  }

  const std::uint64_t slot_count = in.get_u64();
  slots_.clear();
  slots_.reserve(slot_count);
  for (std::uint64_t k = 0; k < slot_count; ++k) {
    Slot s;
    s.id = in.get_i32();
    s.seq = in.get_u64();
    s.weight = in.get_f64();
    s.arrival = in.get_f64();
    s.last_end = in.get_f64();
    s.residual = load_support_index(in);
    // Same capacity discipline as submit()'s fresh-slot path: re-seats of a
    // restored slot never allocate.
    s.residual.reserve_dense();
    slots_.push_back(std::move(s));
  }
  const auto read_slot_list = [&](std::vector<int>& list) {
    const std::uint64_t count = in.get_u64();
    list.clear();
    list.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      const int slot = in.get_i32();
      if (slot < 0 || static_cast<std::uint64_t>(slot) >= slot_count) {
        throw std::runtime_error("OnlineCore::load: slot index out of range");
      }
      list.push_back(slot);
    }
  };
  read_slot_list(free_slots_);
  read_slot_list(live_slots_);

  const bool had_plan = in.get_bool();
  const Time base = in.get_f64();

  stats_.submitted = in.get_u64();
  stats_.finished = in.get_u64();
  stats_.plans = in.get_u64();
  stats_.commits = in.get_u64();
  stats_.emitted_slices = in.get_u64();
  stats_.slot_reuses = in.get_u64();
  stats_.alloc_events = in.get_u64();
  stats_.peak_live = in.get_u64();
  stats_.reconfigurations = in.get_i32();
  stats_.epochs = in.get_i32();
  stats_.demand_total = in.get_f64();
  stats_.delivered_total = in.get_f64();
  stats_.total_weighted_cct = in.get_f64();

  latency_.load(in);
  digest_ = in.get_u64();

  const std::uint64_t cct_count = in.get_u64();
  cct_.clear();
  cct_.reserve(cct_count);
  for (std::uint64_t k = 0; k < cct_count; ++k) cct_.push_back(in.get_f64());
  const std::uint64_t slice_count = in.get_u64();
  schedule_.clear();
  schedule_.reserve(slice_count);
  for (std::uint64_t k = 0; k < slice_count; ++k) {
    FlowSlice s;
    s.start = in.get_f64();
    s.end = in.get_f64();
    s.src = in.get_i32();
    s.dst = in.get_i32();
    s.coflow = in.get_i32();
    schedule_.push_back(s);
  }
  footprint_high_water_ = in.get_u64();

  has_plan_ = false;
  if (had_plan) {
    // Rebuild the outstanding plan by re-running the pipeline on the
    // restored residuals.  plan() is a pure function of the live set
    // (residuals only move in commit()), so plan_/packet_/order_ come back
    // bit-identical; its stats/latency side effects are then undone so the
    // restored totals stand.
    const OnlineCoreStats saved_stats = stats_;
    const DecisionLatencyRecorder saved_latency = latency_;
    plan(base);
    stats_ = saved_stats;
    latency_ = saved_latency;
  }
}

void OnlineCore::note_footprint() {
  const std::size_t footprint = capacity_footprint();
  if (footprint > footprint_high_water_) {
    footprint_high_water_ = footprint;
    ++stats_.alloc_events;
    if (obs::enabled()) OnlineMetrics::get().alloc_events.inc();
  }
}

}  // namespace reco
