// Online multi-coflow scheduling: the paper's stated future direction
// (Sec. VIII) — coflow demands become known only on arrival.
//
// Three non-clairvoyant policies (see sched/online_policy.hpp):
//
//  * kEpochRecoMul — batch scheduling: whenever the fabric goes idle, take
//    every coflow that has arrived and not finished, build a Reco-Mul
//    schedule for the batch, and run it to completion; coflows arriving
//    mid-epoch wait for the next epoch.  Inherits Reco-Mul's alignment
//    benefits inside each epoch.
//  * kFifoRecoSin — the natural online baseline: coflows run through the
//    OCS one at a time in arrival order, each scheduled by Reco-Sin.
//  * kDrainReplanRecoMul — reactive batching: a running epoch is *cut* at
//    the next arrival (flows that already started finish; everything not
//    yet started is cancelled), remaining demands are folded back in, and
//    the batch is re-planned including the newcomer.  Strictly more
//    responsive than epoch batching at the cost of extra reconfigurations.
//
// `schedule_online` is the batch loop driver over the incremental
// OnlineCore (sched/online_core.hpp); the event-driven daemon in
// sim/online_daemon.hpp drives the same core through the EventQueue and
// produces byte-identical schedules.  CCTs are measured from each coflow's
// arrival, which is what an online objective scores.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coflow.hpp"
#include "core/slice.hpp"
#include "core/types.hpp"
#include "sched/online_policy.hpp"
#include "sched/ordering.hpp"

namespace reco {

struct OnlineScheduleResult {
  SliceSchedule schedule;        ///< real-time slices across all epochs
  std::vector<Time> cct;         ///< per-coflow CCT measured from arrival
  int reconfigurations = 0;
  int epochs = 0;                ///< batch replan rounds (batch policies only)
  Time total_weighted_cct = 0.0;
  std::uint64_t digest = 0;      ///< FNV-1a over emitted slices (replay witness)
};

struct OnlineOptions {
  Time delta = 100e-6;
  double c_threshold = 4.0;
  OrderingPolicy ordering = OrderingPolicy::kBssi;  ///< ALG_p inside an epoch
};

/// Simulate the online arrival process for `coflows` (their `arrival`
/// fields are honoured; they need not be sorted).
OnlineScheduleResult schedule_online(const std::vector<Coflow>& coflows, OnlinePolicyKind policy,
                                     const OnlineOptions& options = {});

}  // namespace reco
