#include "sched/solstice.hpp"

#include <cmath>
#include <utility>

#include "bvn/bvn.hpp"
#include "bvn/stuffing.hpp"
#include "core/support_index.hpp"
#include "matching/incremental_matcher.hpp"
#include "obs/obs.hpp"

namespace reco {

namespace {
/// Below this slice size the remaining demand is noise relative to the
/// simulation tolerance; a final cover pass cleans it up.  Kept well under
/// kMinServiceQuantum so the leftover crumbs are invisible to executors.
constexpr double kSliceFloor = 8 * kTimeEps;
}  // namespace

CircuitSchedule solstice(const Matrix& demand, Time /*delta*/) {
  obs::ScopedSpan span("sched.solstice", "sched");
  SupportIndex indexed(demand);
  if (indexed.nnz() == 0) return {};
  span.arg("n", static_cast<double>(indexed.n()));
  span.arg("nnz", static_cast<double>(indexed.nnz()));
  if (obs::enabled()) obs::metrics().counter("sched.solstice.calls").inc();
  SupportIndex m = stuff(std::move(indexed));

  CircuitSchedule schedule;
  std::uint64_t halvings = 0;  // published once after the slicing loop
  double r = std::exp2(std::ceil(std::log2(m.max_entry())));
  IncrementalMatcher matcher(m, r);

  while (m.nnz() > 0 && r >= kSliceFloor) {
    matcher.rematch();
    if (!matcher.is_perfect()) {
      r /= 2.0;
      matcher.set_threshold(r);
      ++halvings;
      continue;
    }
    CircuitAssignment a;
    a.duration = r;
    a.circuits.reserve(m.n());
    for (int i = 0; i < m.n(); ++i) {
      const int j = matcher.matched_col(i);
      a.circuits.push_back({i, j});
      m.set(i, j, clamp_zero(m.at(i, j) - r));
      matcher.on_entry_changed(i, j);
    }
    schedule.assignments.push_back(std::move(a));
  }

  // Binary slicing converges geometrically but never terminates exactly on
  // arbitrary real demands; cover the (tolerance-scale) residue so the
  // schedule provably satisfies the demand matrix.  The residue is below
  // kMinServiceQuantum per entry, so executors skip it entirely.
  if (m.nnz() > 0) {
    const CircuitSchedule tail = cover_decompose(std::move(m));
    for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
  }
  if (obs::enabled()) {
    obs::metrics().counter("solstice.slices").inc(
        static_cast<double>(schedule.num_assignments()));
    obs::metrics().counter("solstice.threshold_halvings").inc(static_cast<double>(halvings));
    span.arg("slices", static_cast<double>(schedule.num_assignments()));
    span.arg("halvings", static_cast<double>(halvings));
  }
  return schedule;
}

}  // namespace reco
