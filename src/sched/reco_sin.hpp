// Reco-Sin (Algorithm 1): regularization-based single-coflow scheduling.
//
//   1. regularize D (round entries up to multiples of delta);
//   2. stuff to a delta-granular doubly stochastic matrix;
//   3. BvN-decompose with max-min matchings.
//
// Every coefficient is >= delta, so reconfiguration time never exceeds
// transmission time (Lemma 1) and the executed CCT is at most 2x optimal
// (Theorem 2) — and usually much closer, because the executor stops each
// establishment as soon as the *original* demands on it finish.
#pragma once

#include <vector>

#include "bvn/bvn.hpp"
#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

/// Build the Reco-Sin circuit scheduling for one coflow.  A non-null
/// `scratch` is threaded into the BvN peel (kExactBottleneck warm-starts
/// across calls); the other policies ignore it.
CircuitSchedule reco_sin(const Matrix& demand, Time delta,
                         BvnPolicy policy = BvnPolicy::kMaxMinAmortized,
                         MatchingScratch* scratch = nullptr);

/// Recovery planning: re-plan `residual` on the surviving ports only.
/// Demand on a failed ingress row / egress column is masked out (it is
/// stranded until the port is repaired), the remainder goes through the
/// normal Reco-Sin pipeline, and circuits the stuffing stage placed on
/// failed ports — padding, never demand — are pruned from the result, so
/// no assignment in the returned schedule asks the fabric to light a dark
/// port.  Empty masks (or masks shorter than the fabric) treat the
/// unnamed ports as up.
CircuitSchedule reco_sin_surviving(const Matrix& residual, const std::vector<char>& failed_in,
                                   const std::vector<char>& failed_out, Time delta,
                                   BvnPolicy policy = BvnPolicy::kMaxMinAmortized);

}  // namespace reco
