#include "sched/rotornet.hpp"

#include <algorithm>
#include <stdexcept>

namespace reco {

CircuitSchedule rotornet_schedule(const Matrix& demand, Time delta,
                                  const RotorOptions& options) {
  if (options.slot_over_delta <= 0.0) {
    throw std::invalid_argument("rotornet_schedule: slot length must be positive");
  }
  CircuitSchedule schedule;
  const int n = demand.n();
  if (demand.nnz() == 0) return schedule;

  const Time slot = options.slot_over_delta * delta;
  Matrix residual = demand;
  int emitted = 0;
  while (residual.nnz() > 0 && emitted < options.max_assignments) {
    bool progressed = false;
    for (int r = 0; r < n && residual.nnz() > 0; ++r) {
      CircuitAssignment a;
      a.duration = slot;
      Time served_max = 0.0;
      for (int i = 0; i < n; ++i) {
        const int j = (i + r) % n;
        const Time rem = residual.at(i, j);
        if (approx_zero(rem)) continue;
        a.circuits.push_back({i, j});
        served_max = std::max(served_max, std::min(slot, rem));
      }
      if (a.circuits.empty()) continue;  // rotation has nothing left: drop
      for (const Circuit& c : a.circuits) {
        residual.at(c.in, c.out) =
            clamp_zero(std::max(0.0, residual.at(c.in, c.out) - slot));
      }
      schedule.assignments.push_back(std::move(a));
      ++emitted;
      progressed = served_max > 0.0;
    }
    if (!progressed) break;  // defensive: nothing served in a full cycle
  }
  return schedule;
}

}  // namespace reco
