// Solstice (Liu et al., CoNEXT'15): the state-of-the-art single-coflow
// baseline of Sec. V-B.  Two steps:
//   * QuickStuff — pad the demand matrix to doubly stochastic;
//   * BigSlice  — repeatedly extract a perfect matching all of whose
//     entries are >= a power-of-two threshold r, schedule it for exactly r,
//     and halve r whenever no such matching remains.
//
// Unlike Reco-Sin, slice durations track the binary expansion of the
// demands, so a matrix with "ragged" entries needs many small slices —
// this is precisely the reconfiguration-frequency gap Fig. 4(a) measures.
#pragma once

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

/// Build the Solstice circuit scheduling for one coflow.  `delta` is
/// unused by the algorithm itself (Solstice is reconfiguration-agnostic,
/// which is its weakness) but kept in the signature for interface symmetry.
CircuitSchedule solstice(const Matrix& demand, Time delta = 0.0);

}  // namespace reco
