// Non-preemptive multi-coflow scheduling in a packet switch: the ALG_p of
// Sec. IV-A.  "Non-preemptive" per the paper: at most one flow transmits on
// each port at a time, and a started flow runs to completion.
//
// Given a coflow priority order sigma, flows are list-scheduled in
// coflow-major order with *backfilling*: each flow takes the earliest slot
// that is simultaneously free on its ingress and egress port, without
// moving anything already scheduled.  Backfilling matters: naive
// "max(port_free)" list scheduling couples every port's clock to the
// fabric-wide maximum through shared flows and leaves the switch mostly
// idle.  Combined with the BSSI ordering this realizes a Delta = 4
// approximation for total weighted CCT in packet switches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/coflow.hpp"
#include "core/slice.hpp"
#include "core/support_index.hpp"

namespace reco {

/// Busy intervals of one port, kept sorted and non-overlapping.  Supports
/// "earliest gap of length d starting at or after t" queries and interval
/// insertion — the core of insertion-based (backfilling) list scheduling.
class PortTimeline {
 public:
  /// Earliest s >= t such that [s, s+d) is free on this port.
  Time earliest_fit(Time t, Time d) const {
    for (const auto& [busy_start, busy_end] : busy_) {
      if (busy_start - t >= d - kTimeEps) break;  // fits before this interval
      t = std::max(t, busy_end);
    }
    return t;
  }

  void insert(Time start, Time end) {
    const auto pos = std::lower_bound(
        busy_.begin(), busy_.end(), start,
        [](const std::pair<Time, Time>& iv, Time s) { return iv.first < s; });
    busy_.insert(pos, {start, end});
  }

  void clear() { busy_.clear(); }
  std::size_t capacity() const { return busy_.capacity(); }

 private:
  std::vector<std::pair<Time, Time>> busy_;
};

/// One flow awaiting placement (the per-coflow extraction buffer's element).
struct PacketFlow {
  int src = 0;
  int dst = 0;
  Time size = 0.0;
};

/// Reusable buffers for list scheduling.  A long-lived scratch makes
/// repeated packet_schedule_into calls allocation-free once the port
/// timelines and the flow buffer have reached their high-water capacity —
/// which is what lets the online replan core run without steady-state
/// allocation.
struct PacketScratch {
  std::vector<PortTimeline> ingress;
  std::vector<PortTimeline> egress;
  std::vector<PacketFlow> flows;

  /// Total heap capacity currently held, in elements.
  std::size_t capacity_footprint() const {
    std::size_t total = ingress.capacity() + egress.capacity() + flows.capacity();
    for (const PortTimeline& t : ingress) total += t.capacity();
    for (const PortTimeline& t : egress) total += t.capacity();
    return total;
  }
};

/// Produce the non-preemptive packet-switch schedule S_p (one slice per
/// flow) following the given coflow order (a permutation of coflow
/// *indices* into `coflows`).
SliceSchedule packet_schedule(const std::vector<Coflow>& coflows, const std::vector<int>& order);

/// In-place twin with caller-owned scratch; bit-identical output.
void packet_schedule_into(const std::vector<Coflow>& coflows, const std::vector<int>& order,
                          PacketScratch& scratch, SliceSchedule& out);

/// Residual overload for the online replan core: each demand is a sparse
/// residual index (support iteration visits the same nonzero flows, in the
/// same (i asc, j asc) order, as a dense scan — so output is bit-identical
/// to the dense overload on equal matrices).  `ids[k]` is the coflow id
/// stamped on residuals[k]'s slices; `order` permutes indices into
/// `residuals`.
void packet_schedule_into(const std::vector<const SupportIndex*>& residuals,
                          const std::vector<CoflowId>& ids, const std::vector<int>& order,
                          PacketScratch& scratch, SliceSchedule& out);

}  // namespace reco
