// Non-preemptive multi-coflow scheduling in a packet switch: the ALG_p of
// Sec. IV-A.  "Non-preemptive" per the paper: at most one flow transmits on
// each port at a time, and a started flow runs to completion.
//
// Given a coflow priority order sigma, flows are list-scheduled in
// coflow-major order with *backfilling*: each flow takes the earliest slot
// that is simultaneously free on its ingress and egress port, without
// moving anything already scheduled.  Backfilling matters: naive
// "max(port_free)" list scheduling couples every port's clock to the
// fabric-wide maximum through shared flows and leaves the switch mostly
// idle.  Combined with the BSSI ordering this realizes a Delta = 4
// approximation for total weighted CCT in packet switches.
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "core/slice.hpp"

namespace reco {

/// Produce the non-preemptive packet-switch schedule S_p (one slice per
/// flow) following the given coflow order (a permutation of coflow
/// *indices* into `coflows`).
SliceSchedule packet_schedule(const std::vector<Coflow>& coflows, const std::vector<int>& order);

}  // namespace reco
