// Umbrella header: include everything the library exports.
//
//   #include "reco.hpp"
//
// For faster builds include the specific module headers instead; this
// exists for examples, quick experiments, and downstream prototyping.
#pragma once

#include "bvn/bvn.hpp"                  // IWYU pragma: export
#include "bvn/regularization.hpp"       // IWYU pragma: export
#include "bvn/stuffing.hpp"             // IWYU pragma: export
#include "core/circuit.hpp"             // IWYU pragma: export
#include "core/coflow.hpp"              // IWYU pragma: export
#include "core/lower_bound.hpp"         // IWYU pragma: export
#include "core/matrix.hpp"              // IWYU pragma: export
#include "core/slice.hpp"               // IWYU pragma: export
#include "core/types.hpp"               // IWYU pragma: export
#include "lp/model.hpp"                 // IWYU pragma: export
#include "lp/simplex.hpp"               // IWYU pragma: export
#include "matching/bottleneck.hpp"      // IWYU pragma: export
#include "matching/hopcroft_karp.hpp"   // IWYU pragma: export
#include "matching/hungarian.hpp"       // IWYU pragma: export
#include "obs/metrics.hpp"              // IWYU pragma: export
#include "obs/obs.hpp"                  // IWYU pragma: export
#include "obs/trace.hpp"                // IWYU pragma: export
#include "ocs/all_stop_executor.hpp"    // IWYU pragma: export
#include "ocs/not_all_stop_executor.hpp"  // IWYU pragma: export
#include "ocs/slice_executor.hpp"       // IWYU pragma: export
#include "sched/bvn_baseline.hpp"       // IWYU pragma: export
#include "sched/fluid.hpp"              // IWYU pragma: export
#include "sched/hybrid.hpp"             // IWYU pragma: export
#include "sched/multi_baselines.hpp"    // IWYU pragma: export
#include "sched/online.hpp"             // IWYU pragma: export
#include "sched/ordering.hpp"           // IWYU pragma: export
#include "sched/packet_scheduler.hpp"   // IWYU pragma: export
#include "sched/reco_mul.hpp"           // IWYU pragma: export
#include "sched/reco_sin.hpp"           // IWYU pragma: export
#include "sched/rotornet.hpp"           // IWYU pragma: export
#include "sched/solstice.hpp"           // IWYU pragma: export
#include "sched/sunflow.hpp"            // IWYU pragma: export
#include "sched/tms.hpp"                // IWYU pragma: export
#include "sim/fabric.hpp"               // IWYU pragma: export
#include "sim/faults.hpp"               // IWYU pragma: export
#include "sim/multi_fabric.hpp"         // IWYU pragma: export
#include "stats/analysis.hpp"           // IWYU pragma: export
#include "stats/csv.hpp"                // IWYU pragma: export
#include "stats/report.hpp"             // IWYU pragma: export
#include "stats/summary.hpp"            // IWYU pragma: export
#include "trace/fb_format.hpp"          // IWYU pragma: export
#include "trace/generator.hpp"          // IWYU pragma: export
#include "trace/serialization.hpp"      // IWYU pragma: export
#include "trace/trace_stats.hpp"        // IWYU pragma: export

namespace reco {

/// Library version, bumped with any observable behaviour change.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0";

}  // namespace reco
