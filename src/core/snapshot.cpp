#include "core/snapshot.hpp"

#include <bit>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace reco {

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t k = 0; k < size; ++k) {
    h ^= bytes[k];
    h *= kFnvPrime;
  }
  return h;
}

namespace {

void append_le(std::string& out, std::uint64_t v, int bytes) {
  for (int b = 0; b < bytes; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

std::uint64_t read_le(const char* data, int bytes) {
  std::uint64_t v = 0;
  for (int b = 0; b < bytes; ++b) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[b])) << (8 * b);
  }
  return v;
}

constexpr std::size_t kHeaderSize = 24;

}  // namespace

void SnapshotWriter::put_u32(std::uint32_t v) { append_le(payload_, v, 4); }
void SnapshotWriter::put_u64(std::uint64_t v) { append_le(payload_, v, 8); }
void SnapshotWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::put_string(const std::string& s) {
  put_u64(s.size());
  payload_.append(s);
}

void SnapshotWriter::finish(std::ostream& out, std::uint32_t magic,
                            std::uint32_t version) const {
  std::string header;
  header.reserve(kHeaderSize);
  append_le(header, magic, 4);
  append_le(header, version, 4);
  append_le(header, payload_.size(), 8);
  append_le(header, fnv1a64(payload_.data(), payload_.size()), 8);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload_.data(), static_cast<std::streamsize>(payload_.size()));
  if (!out) throw std::runtime_error("snapshot: write failed");
}

SnapshotReader::SnapshotReader(std::istream& in, std::uint32_t magic, std::uint32_t version,
                               std::string who)
    : who_(std::move(who)) {
  char header[kHeaderSize];
  in.read(header, kHeaderSize);
  if (in.gcount() != static_cast<std::streamsize>(kHeaderSize)) {
    fail("truncated header (not a checkpoint file?)");
  }
  const auto got_magic = static_cast<std::uint32_t>(read_le(header, 4));
  if (got_magic != magic) fail("bad magic (file is not a " + who_ + ")");
  const auto got_version = static_cast<std::uint32_t>(read_le(header + 4, 4));
  if (got_version != version) {
    fail("unsupported format version " + std::to_string(got_version) + " (expected " +
         std::to_string(version) + ")");
  }
  const std::uint64_t size = read_le(header + 8, 8);
  const std::uint64_t digest = read_le(header + 16, 8);
  payload_.resize(size);
  in.read(payload_.data(), static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    fail("truncated payload (got " + std::to_string(in.gcount()) + " of " +
         std::to_string(size) + " bytes)");
  }
  if (fnv1a64(payload_.data(), payload_.size()) != digest) {
    fail("payload digest mismatch (file is corrupted)");
  }
}

void SnapshotReader::fail(const std::string& what) const {
  throw std::runtime_error(who_ + ": " + what);
}

const char* SnapshotReader::need(std::size_t bytes) {
  if (payload_.size() - cursor_ < bytes) fail("read past end of payload");
  const char* p = payload_.data() + cursor_;
  cursor_ += bytes;
  return p;
}

std::uint8_t SnapshotReader::get_u8() {
  return static_cast<std::uint8_t>(*reinterpret_cast<const unsigned char*>(need(1)));
}

std::uint32_t SnapshotReader::get_u32() {
  return static_cast<std::uint32_t>(read_le(need(4), 4));
}

std::uint64_t SnapshotReader::get_u64() { return read_le(need(8), 8); }

double SnapshotReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string SnapshotReader::get_string() {
  const std::uint64_t size = get_u64();
  if (payload_.size() - cursor_ < size) fail("read past end of payload");
  return {need(size), size};
}

void SnapshotReader::expect_end() const {
  if (cursor_ != payload_.size()) {
    fail("trailing bytes in payload (" + std::to_string(payload_.size() - cursor_) +
         " unread)");
  }
}

void save_support_index(SnapshotWriter& out, const SupportIndex& index) {
  const int n = index.n();
  out.put_i32(n);
  out.put_i32(index.nnz());
  for (int i = 0; i < n; ++i) {
    const SupportSpan cols = index.row_support(i);
    const ValueSpan vals = index.row_values(i);
    for (int k = 0; k < cols.size(); ++k) {
      out.put_i32(i);
      out.put_i32(cols[k]);
      out.put_f64(vals[k]);
    }
  }
}

SupportIndex load_support_index(SnapshotReader& in) {
  const int n = in.get_i32();
  const int nnz = in.get_i32();
  if (n < 0 || nnz < 0 || (n == 0 && nnz > 0)) {
    throw std::runtime_error("snapshot: malformed SupportIndex dimensions");
  }
  SupportIndex index = SupportIndex::zeros(n);
  for (int k = 0; k < nnz; ++k) {
    const int i = in.get_i32();
    const int j = in.get_i32();
    const double v = in.get_f64();
    if (i < 0 || i >= n || j < 0 || j >= n) {
      throw std::runtime_error("snapshot: SupportIndex entry out of range");
    }
    index.set(i, j, v);
  }
  return index;
}

}  // namespace reco
