// Coflow abstraction: a weighted demand matrix plus the paper's
// density / transmission-mode taxonomy (Sec. V-A, Tables I and II).
#pragma once

#include <string_view>
#include <vector>

#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

/// Transmission-mode taxonomy of Table II, determined by how many distinct
/// ingress and egress ports a coflow touches.
enum class TransmissionMode {
  kS2S,  ///< single ingress  -> single egress   (one flow)
  kS2M,  ///< single ingress  -> multiple egress
  kM2S,  ///< multiple ingress -> single egress
  kM2M,  ///< multiple ingress -> multiple egress
};

/// Density taxonomy of Table I, over DS = nnz(D) / N^2.
enum class DensityClass {
  kSparse,  ///< DS <= 0.05
  kNormal,  ///< 0.05 < DS <= 0.5
  kDense,   ///< DS > 0.5
};

std::string_view to_string(TransmissionMode mode);
std::string_view to_string(DensityClass cls);

/// A coflow: all parallel flows of one application stage, abstracted as a
/// demand matrix over the fabric ports (Sec. II-A).  Weight expresses
/// latency sensitivity; arrival is kept for completeness (the paper's
/// evaluation assumes all coflows are buffered, i.e. arrival == 0).
struct Coflow {
  CoflowId id = 0;
  double weight = 1.0;
  Time arrival = 0.0;
  Matrix demand;

  /// Number of distinct ingress ports with any nonzero demand.
  int width_in() const;
  /// Number of distinct egress ports with any nonzero demand.
  int width_out() const;

  TransmissionMode mode() const;
  DensityClass density_class() const;

  /// Aggregate demand volume (sum of all entries).
  Time total_volume() const { return demand.total(); }
  /// Bottleneck load rho(D): the SEBF "effective bottleneck".
  Time bottleneck() const { return demand.rho(); }
};

/// Classify a density value per Table I thresholds.
DensityClass classify_density(double ds);

/// Convenience: ids of coflows in `coflows` belonging to class `cls`.
std::vector<int> indices_of_class(const std::vector<Coflow>& coflows, DensityClass cls);

}  // namespace reco
