// Dense square demand matrix: the N x N traffic matrix D of a coflow.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace reco {

/// Dense N x N matrix of non-negative demands (entry d_ij = data volume,
/// equivalently transmission time, from ingress i to egress j).
///
/// Kept deliberately small: only the operations the scheduling algorithms
/// need (row/column sums, nonzero structure, the paper's rho and tau).
class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of size n x n.
  explicit Matrix(int n) : n_(n), v_(static_cast<std::size_t>(n) * n, 0.0) {}

  /// Reset to the n x n zero matrix, reusing existing storage capacity
  /// (allocation-free once the buffer has grown to n*n).
  void zero(int n) {
    n_ = n;
    v_.assign(static_cast<std::size_t>(n) * n, 0.0);
  }

  /// Build from row-major initializer (size must be a perfect square).
  static Matrix from_rows(std::initializer_list<std::initializer_list<double>> rows);

  int n() const { return n_; }
  bool empty() const { return n_ == 0; }

  double& at(int i, int j) { return v_[idx(i, j)]; }
  double at(int i, int j) const { return v_[idx(i, j)]; }

  /// Contiguous dense row i (n doubles) — the gather-kernel source for the
  /// SupportIndex value-mirror refresh (see core/simd.hpp).
  const double* row_data(int i) const { return v_.data() + idx(i, 0); }

  /// Number of entries strictly above the simulation tolerance.
  int nnz() const;

  /// nnz / n^2 — the paper's density measure DS (Sec. V-A).
  double density() const;

  /// Sum of row i.
  Time row_sum(int i) const;
  /// Sum of column j.
  Time col_sum(int j) const;
  /// Sum of all entries (aggregate demand volume).
  Time total() const;
  /// Largest entry.
  double max_entry() const;
  /// Smallest nonzero entry (0 if the matrix is all-zero).
  double min_nonzero() const;

  /// rho(D): max over all rows and columns of their sum — the transmission
  /// lower bound of Theorem 2 / the "effective bottleneck" of SEBF.
  Time rho() const;

  /// tau(D): max number of nonzero entries in any row or column — the
  /// reconfiguration lower bound multiplier of Theorem 2.
  int tau() const;

  /// True iff every row and column sums to the same value (within eps):
  /// the "doubly stochastic" shape required by Birkhoff's theorem (the
  /// common value need not be 1; the paper scales by the row sum rho).
  bool is_doubly_stochastic(double eps = kTimeEps) const;

  /// True iff every entry is a non-negative integer multiple of quantum
  /// (within eps) — the post-regularization invariant of Reco-Sin.
  bool is_granular(double quantum, double eps = kTimeEps) const;

  /// True iff every entry of *this is >= the matching entry of other - eps.
  bool covers(const Matrix& other, double eps = kTimeEps) const;

  /// Entry-wise: this += other (sizes must match).
  Matrix& operator+=(const Matrix& other);
  /// Entry-wise: this -= other (sizes must match); snaps tiny residue to 0.
  Matrix& operator-=(const Matrix& other);

  bool operator==(const Matrix& other) const = default;

  /// Human-readable dump for diagnostics and examples.
  std::string to_string(int width = 8) const;

  /// Heap capacity of the dense storage, in elements — alloc-event
  /// accounting for long-lived buffers (see MatchingScratch::Stats).
  std::size_t capacity() const { return v_.capacity(); }

 private:
  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * n_ + j;
  }

  int n_ = 0;
  std::vector<double> v_;
};

}  // namespace reco
