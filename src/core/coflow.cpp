#include "core/coflow.hpp"

namespace reco {

std::string_view to_string(TransmissionMode mode) {
  switch (mode) {
    case TransmissionMode::kS2S: return "S2S";
    case TransmissionMode::kS2M: return "S2M";
    case TransmissionMode::kM2S: return "M2S";
    case TransmissionMode::kM2M: return "M2M";
  }
  return "?";
}

std::string_view to_string(DensityClass cls) {
  switch (cls) {
    case DensityClass::kSparse: return "sparse";
    case DensityClass::kNormal: return "normal";
    case DensityClass::kDense: return "dense";
  }
  return "?";
}

int Coflow::width_in() const {
  int w = 0;
  for (int i = 0; i < demand.n(); ++i) {
    if (!approx_zero(demand.row_sum(i))) ++w;
  }
  return w;
}

int Coflow::width_out() const {
  int w = 0;
  for (int j = 0; j < demand.n(); ++j) {
    if (!approx_zero(demand.col_sum(j))) ++w;
  }
  return w;
}

TransmissionMode Coflow::mode() const {
  const bool multi_in = width_in() > 1;
  const bool multi_out = width_out() > 1;
  if (multi_in && multi_out) return TransmissionMode::kM2M;
  if (multi_in) return TransmissionMode::kM2S;
  if (multi_out) return TransmissionMode::kS2M;
  return TransmissionMode::kS2S;
}

DensityClass classify_density(double ds) {
  if (ds <= 0.05) return DensityClass::kSparse;
  if (ds <= 0.5) return DensityClass::kNormal;
  return DensityClass::kDense;
}

DensityClass Coflow::density_class() const {
  return classify_density(demand.density());
}

std::vector<int> indices_of_class(const std::vector<Coflow>& coflows, DensityClass cls) {
  std::vector<int> out;
  for (int k = 0; k < static_cast<int>(coflows.size()); ++k) {
    if (coflows[k].density_class() == cls) out.push_back(k);
  }
  return out;
}

}  // namespace reco
