// Versioned binary snapshots: the serialization substrate of deterministic
// checkpoint/restart (docs/RELIABILITY.md).
//
// A snapshot file is a fixed header followed by an opaque payload:
//
//   offset  size  field
//   0       4     magic (little-endian u32, per snapshot kind)
//   4       4     format version (little-endian u32)
//   8       8     payload size in bytes (little-endian u64)
//   16      8     FNV-1a 64 digest of the payload (little-endian u64)
//   24      ...   payload
//
// Writers append typed fields to the payload; readers consume them in the
// same order.  Everything is explicit little-endian bytes — no struct
// dumps, so files are portable across compilers and ABIs.  Doubles are
// bit-cast through u64, which is what makes restored simulation state
// *bit-identical*: a resumed run replays the exact same IEEE values the
// uninterrupted run would have used.
//
// Readers validate magic, version, payload size, and digest up front and
// throw std::runtime_error with a message naming the failure (truncated /
// corrupted / wrong kind / unsupported version), so a campaign resumed
// from a damaged checkpoint fails loudly instead of computing garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/support_index.hpp"

namespace reco {

/// FNV-1a 64-bit over `size` bytes, chainable via `seed` (the offset basis
/// default starts a fresh digest).  Same constants as the online core's
/// slice digest, so every integrity witness in the tree agrees.
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = kFnvOffsetBasis);

/// Accumulates a payload field by field, then writes header + payload.
class SnapshotWriter {
 public:
  void put_u8(std::uint8_t v) { payload_.push_back(static_cast<char>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// Bit-exact double: the value round-trips through its u64 bit pattern.
  void put_f64(double v);
  /// Length-prefixed byte string.
  void put_string(const std::string& s);

  const std::string& payload() const { return payload_; }

  /// Write header (magic, version, size, FNV digest) + payload to `out`.
  /// Throws std::runtime_error on stream failure.
  void finish(std::ostream& out, std::uint32_t magic, std::uint32_t version) const;

 private:
  std::string payload_;
};

/// Reads and validates one snapshot, then hands out fields in write order.
/// Every getter bounds-checks; reading past the payload throws.
class SnapshotReader {
 public:
  /// Consumes the header and payload from `in`, validating magic, version,
  /// size, and digest.  `who` names the snapshot kind in error messages
  /// (e.g. "daemon checkpoint").  Throws std::runtime_error on any
  /// mismatch, truncation, or corruption.
  SnapshotReader(std::istream& in, std::uint32_t magic, std::uint32_t version,
                 std::string who);

  std::uint8_t get_u8();
  bool get_bool() { return get_u8() != 0; }
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::string get_string();

  std::size_t remaining() const { return payload_.size() - cursor_; }
  /// Throws if any payload bytes were left unread (format drift witness).
  void expect_end() const;

 private:
  [[noreturn]] void fail(const std::string& what) const;
  const char* need(std::size_t bytes);

  std::string who_;
  std::string payload_;
  std::size_t cursor_ = 0;
};

/// Serialize a SupportIndex as (n, nnz, sorted (i, j, value-bits) triples).
/// Restoring rebuilds the index through the public set() path, which is
/// bit-exact: stored values are never sub-tolerance (the index invariant),
/// so the snap-to-zero in set() never fires, and sorted support makes the
/// restored iteration order identical to the saved one.
void save_support_index(SnapshotWriter& out, const SupportIndex& index);
SupportIndex load_support_index(SnapshotReader& in);

}  // namespace reco
