#include "core/support_index.hpp"

#include <algorithm>
#include <utility>

namespace reco {

namespace {

/// Capacity policy for a freshly laid-out block: a small multiple-of-4
/// round-up leaves headroom for stuffing's fill-in without relocating,
/// while keeping the arena within ~1.5x of nnz.  Empty lines get no
/// reservation at all — zeros(n) must not pay O(N) arena space up front.
int cap_for(int len) { return len == 0 ? 0 : (len + 3) & ~3; }

}  // namespace

SupportIndex::SupportIndex(Matrix m) : m_(std::move(m)) { build_from_matrix(); }

void SupportIndex::assign(const Matrix& m) {
  m_ = m;  // dense storage: vector copy-assign reuses capacity
  build_from_matrix();
}

void SupportIndex::build_from_matrix() {
  const int n = m_.n();
  row_blk_.assign(n, Block{});
  col_blk_.assign(n, Block{});
  row_sum_.assign(n, 0.0);
  col_sum_.assign(n, 0.0);
  row_garbage_ = 0;
  col_garbage_ = 0;
  nnz_ = 0;
  // Pass 1: snap ingest crumbs and count per-line support so every block
  // can be laid out contiguously in line order in one shot.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double& cell = m_.at(i, j);
      if (approx_zero(cell)) {
        cell = 0.0;  // snap ingest crumbs so support == {exactly nonzero}
        continue;
      }
      ++row_blk_[i].len;
      ++col_blk_[j].len;
      row_sum_[i] += cell;
      col_sum_[j] += cell;
      ++nnz_;
    }
  }
  int row_total = 0;
  int col_total = 0;
  for (int i = 0; i < n; ++i) {
    Block& rb = row_blk_[i];
    rb.cap = dense_reserved_ ? n : cap_for(rb.len);
    rb.off = row_total;
    row_total += rb.cap;
    Block& cb = col_blk_[i];
    cb.cap = dense_reserved_ ? n : cap_for(cb.len);
    cb.off = col_total;
    col_total += cb.cap;
  }
  row_cols_.resize(row_total);
  row_vals_.resize(row_total);
  row_dirty_.assign(n, 0);
  col_rows_.resize(col_total);
  // Pass 2: fill the blocks (ascending by construction of the scan order).
  std::vector<int> fill(n, 0);
  for (int i = 0; i < n; ++i) {
    int k = row_blk_[i].off;
    for (int j = 0; j < n; ++j) {
      const double v = m_.at(i, j);
      if (v == 0.0) continue;
      row_cols_[k] = j;
      row_vals_[k] = v;
      ++k;
      col_rows_[col_blk_[j].off + fill[j]++] = i;
    }
    // Reset len to what pass 2 actually wrote (identical to pass 1's count).
    row_blk_[i].len = k - row_blk_[i].off;
  }
}

SupportIndex SupportIndex::zeros(int n) {
  SupportIndex idx;
  idx.m_ = Matrix(n);
  idx.row_blk_.assign(n, Block{});
  idx.col_blk_.assign(n, Block{});
  idx.row_dirty_.assign(n, 0);
  idx.row_sum_.assign(n, 0.0);
  idx.col_sum_.assign(n, 0.0);
  return idx;
}

Matrix SupportIndex::release() {
  Matrix out = std::move(m_);
  *this = SupportIndex();
  return out;
}

void SupportIndex::update_support(int i, int j, bool now) {
  // Row side: columns and values move in lockstep, so a clean row's value
  // mirror stays clean through structural changes (a dirty row's shifted
  // values are stale either way; the dirty mark already covers them).
  {
    Block& b = row_blk_[i];
    if (now) {
      if (b.len == b.cap) {
        // Relocate to the arena tail with doubled capacity; the abandoned
        // region becomes garbage until the next compaction.
        const int new_cap = std::max(4, b.cap * 2);
        const int new_off = static_cast<int>(row_cols_.size());
        row_cols_.resize(row_cols_.size() + new_cap);
        row_vals_.resize(row_vals_.size() + new_cap);
        std::copy_n(row_cols_.begin() + b.off, b.len, row_cols_.begin() + new_off);
        std::copy_n(row_vals_.begin() + b.off, b.len, row_vals_.begin() + new_off);
        row_garbage_ += b.cap;
        b.off = new_off;
        b.cap = new_cap;
      }
      int* cols = row_cols_.data() + b.off;
      const int pos = static_cast<int>(std::lower_bound(cols, cols + b.len, j) - cols);
      std::copy_backward(cols + pos, cols + b.len, cols + b.len + 1);
      double* vals = row_vals_.data() + b.off;
      std::copy_backward(vals + pos, vals + b.len, vals + b.len + 1);
      cols[pos] = j;
      vals[pos] = m_.at(i, j);
      ++b.len;
    } else {
      int* cols = row_cols_.data() + b.off;
      const int pos = static_cast<int>(std::lower_bound(cols, cols + b.len, j) - cols);
      std::copy(cols + pos + 1, cols + b.len, cols + pos);
      double* vals = row_vals_.data() + b.off;
      std::copy(vals + pos + 1, vals + b.len, vals + pos);
      --b.len;
    }
  }
  // Column side: structure only.
  {
    Block& b = col_blk_[j];
    if (now) {
      if (b.len == b.cap) {
        const int new_cap = std::max(4, b.cap * 2);
        const int new_off = static_cast<int>(col_rows_.size());
        col_rows_.resize(col_rows_.size() + new_cap);
        std::copy_n(col_rows_.begin() + b.off, b.len, col_rows_.begin() + new_off);
        col_garbage_ += b.cap;
        b.off = new_off;
        b.cap = new_cap;
      }
      int* rows = col_rows_.data() + b.off;
      const int pos = static_cast<int>(std::lower_bound(rows, rows + b.len, i) - rows);
      std::copy_backward(rows + pos, rows + b.len, rows + b.len + 1);
      rows[pos] = i;
      ++b.len;
    } else {
      int* rows = col_rows_.data() + b.off;
      const int pos = static_cast<int>(std::lower_bound(rows, rows + b.len, i) - rows);
      std::copy(rows + pos + 1, rows + b.len, rows + pos);
      --b.len;
    }
  }
  nnz_ += now ? 1 : -1;
  if (row_garbage_ * 2 > static_cast<int>(row_cols_.size())) compact_rows();
  if (col_garbage_ * 2 > static_cast<int>(col_rows_.size())) compact_cols();
}

void SupportIndex::compact_rows() {
  const int n = m_.n();
  std::vector<int> cols;
  std::vector<double> vals;
  cols.reserve(row_cols_.size() - row_garbage_);
  vals.reserve(row_vals_.size() - row_garbage_);
  for (int i = 0; i < n; ++i) {
    Block& b = row_blk_[i];
    const int new_off = static_cast<int>(cols.size());
    cols.resize(new_off + b.cap);
    vals.resize(new_off + b.cap);
    std::copy_n(row_cols_.begin() + b.off, b.len, cols.begin() + new_off);
    std::copy_n(row_vals_.begin() + b.off, b.len, vals.begin() + new_off);
    b.off = new_off;
  }
  row_cols_.swap(cols);
  row_vals_.swap(vals);
  row_garbage_ = 0;
}

void SupportIndex::compact_cols() {
  const int n = m_.n();
  std::vector<int> rows;
  rows.reserve(col_rows_.size() - col_garbage_);
  for (int j = 0; j < n; ++j) {
    Block& b = col_blk_[j];
    const int new_off = static_cast<int>(rows.size());
    rows.resize(new_off + b.cap);
    std::copy_n(col_rows_.begin() + b.off, b.len, rows.begin() + new_off);
    b.off = new_off;
  }
  col_rows_.swap(rows);
  col_garbage_ = 0;
}

Time SupportIndex::rho() const {
  Time r = 0.0;
  for (const Time s : row_sum_) r = std::max(r, s);
  for (const Time s : col_sum_) r = std::max(r, s);
  return r;
}

int SupportIndex::tau() const {
  int t = 0;
  for (const Block& b : row_blk_) t = std::max(t, b.len);
  for (const Block& b : col_blk_) t = std::max(t, b.len);
  return t;
}

// max_entry and row_sum_exact read the clean-row fast path from the value
// arena and fall back to a dense gather on dirty rows WITHOUT refreshing:
// they stay non-mutating, so const concurrent readers of distinct rows
// (the simulator's satisfaction probes) never race on the mirror.

double SupportIndex::max_entry() const {
  const simd::Kernels& kn = simd::kernels();
  double m = 0.0;
  const int n = m_.n();
  for (int i = 0; i < n; ++i) {
    const Block& b = row_blk_[i];
    if (row_dirty_[i]) {
      m = kn.max_gather(m_.row_data(i), row_cols_.data() + b.off, b.len, m);
    } else {
      m = kn.max_value(row_vals_.data() + b.off, b.len, m);
    }
  }
  return m;
}

Time SupportIndex::total() const {
  Time s = 0.0;
  for (const Time r : row_sum_) s += r;
  return s;
}

Time SupportIndex::row_sum_exact(int i) const {
  Time s = 0.0;
  const Block& b = row_blk_[i];
  if (row_dirty_[i]) {
    const int* cols = row_cols_.data() + b.off;
    for (int k = 0; k < b.len; ++k) s += m_.at(i, cols[k]);
  } else {
    const double* vals = row_vals_.data() + b.off;
    for (int k = 0; k < b.len; ++k) s += vals[k];
  }
  return s;
}

Time SupportIndex::col_sum_exact(int j) const {
  Time s = 0.0;
  for (const int i : col_support(j)) s += m_.at(i, j);
  return s;
}

void SupportIndex::reserve_dense() {
  dense_reserved_ = true;
  const int n = m_.n();
  // Relayout every block at full-density capacity so no future insert can
  // relocate: the arenas reach their high-water mark here, once.
  std::vector<int> cols(static_cast<std::size_t>(n) * n);
  std::vector<double> vals(static_cast<std::size_t>(n) * n);
  std::vector<int> rows(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    Block& rb = row_blk_[i];
    const int new_off = i * n;
    std::copy_n(row_cols_.begin() + rb.off, rb.len, cols.begin() + new_off);
    std::copy_n(row_vals_.begin() + rb.off, rb.len, vals.begin() + new_off);
    rb.off = new_off;
    rb.cap = n;
    Block& cb = col_blk_[i];
    std::copy_n(col_rows_.begin() + cb.off, cb.len, rows.begin() + new_off);
    cb.off = new_off;
    cb.cap = n;
  }
  row_cols_.swap(cols);
  row_vals_.swap(vals);
  col_rows_.swap(rows);
  row_garbage_ = 0;
  col_garbage_ = 0;
}

std::size_t SupportIndex::capacity_footprint() const {
  return m_.capacity() + row_cols_.capacity() + row_vals_.capacity() +
         row_dirty_.capacity() + col_rows_.capacity() + row_blk_.capacity() +
         col_blk_.capacity() + row_sum_.capacity() + col_sum_.capacity();
}

}  // namespace reco
