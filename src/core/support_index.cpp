#include "core/support_index.hpp"

#include <algorithm>
#include <utility>

namespace reco {

namespace {

void insert_sorted(std::vector<int>& v, int x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

void erase_sorted(std::vector<int>& v, int x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  // The caller only erases indices it previously inserted.
  v.erase(it);
}

}  // namespace

SupportIndex::SupportIndex(Matrix m) : m_(std::move(m)) {
  const int n = m_.n();
  row_adj_.assign(n, {});
  col_adj_.assign(n, {});
  row_sum_.assign(n, 0.0);
  col_sum_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double& cell = m_.at(i, j);
      if (approx_zero(cell)) {
        cell = 0.0;  // snap ingest crumbs so support == {exactly nonzero}
        continue;
      }
      row_adj_[i].push_back(j);
      col_adj_[j].push_back(i);
      row_sum_[i] += cell;
      col_sum_[j] += cell;
      ++nnz_;
    }
  }
}

void SupportIndex::assign(const Matrix& m) {
  const int n = m.n();
  m_ = m;  // dense storage: vector copy-assign reuses capacity
  row_adj_.resize(n);
  col_adj_.resize(n);
  for (auto& adj : row_adj_) adj.clear();
  for (auto& adj : col_adj_) adj.clear();
  row_sum_.assign(n, 0.0);
  col_sum_.assign(n, 0.0);
  nnz_ = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double& cell = m_.at(i, j);
      if (approx_zero(cell)) {
        cell = 0.0;
        continue;
      }
      row_adj_[i].push_back(j);
      col_adj_[j].push_back(i);
      row_sum_[i] += cell;
      col_sum_[j] += cell;
      ++nnz_;
    }
  }
}

SupportIndex SupportIndex::zeros(int n) {
  SupportIndex idx;
  idx.m_ = Matrix(n);
  idx.row_adj_.assign(n, {});
  idx.col_adj_.assign(n, {});
  idx.row_sum_.assign(n, 0.0);
  idx.col_sum_.assign(n, 0.0);
  return idx;
}

Matrix SupportIndex::release() {
  Matrix out = std::move(m_);
  *this = SupportIndex();
  return out;
}

void SupportIndex::update_support(int i, int j, bool now) {
  if (now) {
    insert_sorted(row_adj_[i], j);
    insert_sorted(col_adj_[j], i);
    ++nnz_;
  } else {
    erase_sorted(row_adj_[i], j);
    erase_sorted(col_adj_[j], i);
    --nnz_;
  }
}

Time SupportIndex::rho() const {
  Time r = 0.0;
  for (const Time s : row_sum_) r = std::max(r, s);
  for (const Time s : col_sum_) r = std::max(r, s);
  return r;
}

int SupportIndex::tau() const {
  std::size_t t = 0;
  for (const auto& adj : row_adj_) t = std::max(t, adj.size());
  for (const auto& adj : col_adj_) t = std::max(t, adj.size());
  return static_cast<int>(t);
}

double SupportIndex::max_entry() const {
  double m = 0.0;
  for (int i = 0; i < n(); ++i) {
    for (const int j : row_adj_[i]) m = std::max(m, m_.at(i, j));
  }
  return m;
}

Time SupportIndex::total() const {
  Time s = 0.0;
  for (const Time r : row_sum_) s += r;
  return s;
}

Time SupportIndex::row_sum_exact(int i) const {
  Time s = 0.0;
  for (const int j : row_adj_[i]) s += m_.at(i, j);
  return s;
}

void SupportIndex::reserve_dense() {
  const std::size_t n = static_cast<std::size_t>(m_.n());
  for (auto& adj : row_adj_) adj.reserve(n);
  for (auto& adj : col_adj_) adj.reserve(n);
}

std::size_t SupportIndex::capacity_footprint() const {
  std::size_t total = m_.capacity() + row_adj_.capacity() + col_adj_.capacity() +
                      row_sum_.capacity() + col_sum_.capacity();
  for (const auto& adj : row_adj_) total += adj.capacity();
  for (const auto& adj : col_adj_) total += adj.capacity();
  return total;
}

Time SupportIndex::col_sum_exact(int j) const {
  Time s = 0.0;
  for (const int i : col_adj_[j]) s += m_.at(i, j);
  return s;
}

}  // namespace reco
