#include "core/circuit.hpp"

#include <sstream>
#include <vector>

namespace reco {

bool CircuitAssignment::is_matching(int n_ports) const {
  std::vector<char> in_used(n_ports, 0);
  std::vector<char> out_used(n_ports, 0);
  for (const Circuit& c : circuits) {
    if (c.in < 0 || c.in >= n_ports || c.out < 0 || c.out >= n_ports) return false;
    if (in_used[c.in] || out_used[c.out]) return false;
    in_used[c.in] = 1;
    out_used[c.out] = 1;
  }
  return true;
}

Time CircuitSchedule::planned_transmission_time() const {
  Time t = 0.0;
  for (const auto& a : assignments) t += a.duration;
  return t;
}

bool CircuitSchedule::is_valid(int n_ports) const {
  for (const auto& a : assignments) {
    if (a.duration < -kTimeEps) return false;
    if (!a.is_matching(n_ports)) return false;
  }
  return true;
}

Matrix CircuitSchedule::service_matrix(int n_ports) const {
  Matrix service(n_ports);
  for (const auto& a : assignments) {
    for (const Circuit& c : a.circuits) {
      service.at(c.in, c.out) += a.duration;
    }
  }
  return service;
}

bool CircuitSchedule::satisfies(const Matrix& demand) const {
  // Tolerance scales with schedule length: each assignment contributes one
  // rounding step to the accumulated service.
  const double eps = kTimeEps * std::max<std::size_t>(1, assignments.size());
  return service_matrix(demand.n()).covers(demand, eps);
}

std::string CircuitSchedule::to_string() const {
  std::ostringstream out;
  int u = 0;
  for (const auto& a : assignments) {
    out << "C(" << u++ << ") dur=" << a.duration << " {";
    for (std::size_t k = 0; k < a.circuits.size(); ++k) {
      out << (k ? ", " : "") << a.circuits[k].in << "->" << a.circuits[k].out;
    }
    out << "}\n";
  }
  return out.str();
}

}  // namespace reco
