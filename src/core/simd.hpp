// Runtime-dispatched SIMD kernels for the decomposition hot loops.
//
// Every kernel here is a drop-in replacement for a short scalar loop that
// profiling showed on the peel/matching critical path: the row_values()
// mirror re-gather, max-entry scans, quickselect value-pool partitioning,
// regularization rounding, stuffing slack scans, and the phase-2 circuit
// writes.  The contract that makes them safe to substitute freely:
//
//   *Bit-identity.*  Each kernel produces output bit-identical to its
//   scalar reference loop at every dispatch level.  That restricts what
//   may be vectorized: IEEE additions cannot be reassociated, so ordered
//   sums (row_sum_exact and friends) deliberately have NO kernel here —
//   only gathers, max/min reductions (associative and exact), independent
//   element-wise arithmetic (div/ceil/mul/clamp, identical per lane), and
//   order-preserving compactions qualify.  The scalar/SSE2/AVX2 tiers of
//   every kernel are pinned against each other by
//   tests/property/test_simd_kernels.cpp.
//
//   *Preconditions.*  Inputs are finite, non-negative demand quantities
//   (no NaN, no -0.0) — the invariant every SupportIndex value already
//   satisfies (exact 0.0 or >= kTimeEps).  Max/min lane merges are exact
//   under this precondition.
//
// Dispatch is resolved once per process from CPUID plus the RECO_SIMD
// environment variable (off|scalar|sse2|avx2|auto; unsupported requests
// are clamped to what the CPU can run, so forcing avx2 on an SSE2-only
// machine degrades instead of faulting).  The chosen tier is observable
// as the `core.simd.dispatch.<level>` counter once telemetry is enabled.
// Call sites go through the `kernels()` table: one indirect call per
// O(degree) loop, noise next to the loop body it replaces.
#pragma once

#include <cstdint>
#include <vector>

namespace reco::simd {

/// Instruction tier of a kernel table, ordered by capability.
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Tier actually dispatched to (CPUID x RECO_SIMD, resolved once).
Level active_level();

/// "scalar" | "sse2" | "avx2".
const char* level_name(Level level);

/// Tiers this build + CPU can execute, ascending (always starts kScalar).
std::vector<Level> supported_levels();

/// One resolved kernel table.  All pointers are non-null at every level
/// (a tier without a profitable vector form reuses the scalar kernel, so
/// callers never branch).
struct Kernels {
  /// dst[k] = src[idx[k]] — the row_values() dense-row re-gather.
  void (*gather)(const double* src, const int* idx, int count, double* dst);
  /// max(init, v[0..count)) — exact, order-free reduction.
  double (*max_value)(const double* v, int count, double init);
  /// max(init, src[idx[0..count)]) — max over a dirty row without a
  /// materialized mirror.
  double (*max_gather)(const double* src, const int* idx, int count, double init);
  /// min(init, v[0..count)) — the quickselect pool minimum.
  double (*min_value)(const double* v, int count, double init);
  /// max(init, {x in v[0..count) : x <= cut}) — the "largest discarded
  /// value" scan of the quickselect hint filter.
  double (*max_value_leq)(const double* v, int count, double cut, double init);
  /// First index of the maximum (ties -> lowest index); -1 if count <= 0.
  int (*argmax)(const double* v, int count);
  /// out[k] = max(1.0, ceil(v[k]/quantum - kTimeEps)) * quantum — the
  /// regularization rounding map, element-wise.
  void (*round_up_quantum)(const double* v, int count, double quantum, double* out);
  /// out[k] = clamp_zero(minuend - v[k]) — the stuffing slack scan.
  void (*sub_clamp)(double minuend, const double* v, int count, double* out);
  /// Stable in-place compaction keeping v[k] > pivot; returns the kept
  /// count.  Elements beyond the returned count are unspecified.
  int (*partition_greater)(double* v, int count, double pivot);
  /// Stable in-place compaction keeping v[k] < upper && v[k] <= certify;
  /// adds the number of dropped elements with certify < v[k] < upper to
  /// *certified.  The feasible-value discard of the bottleneck descent.
  int (*partition_keep_below)(double* v, int count, double upper, double certify,
                              std::int64_t* certified);
  /// out[2k] = k, out[2k+1] = second[k] — the phase-2 circuit-pair write
  /// (Circuit is two contiguous int32 ports).
  void (*iota_interleave)(const int* second, int count, int* out);
};

/// Table for the active level (resolved once; hot-path entry point).
const Kernels& kernels();

/// Table for a specific tier — the bit-equivalence tests iterate
/// supported_levels() and pin every tier against kScalar.
const Kernels& kernels_for(Level level);

}  // namespace reco::simd
