// Circuit assignments and circuit schedules: the OCS-side output of the
// single-coflow algorithms (Sec. II-A definitions).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

/// One circuit: an (ingress, egress) port pair.
struct Circuit {
  PortId in = 0;
  PortId out = 0;
  bool operator==(const Circuit&) const = default;
};

/// A circuit establishment C(u) with its planned duration dur(u): a set of
/// concurrently established circuits (a matching, by the port constraint)
/// held for `duration` before the next reconfiguration.
struct CircuitAssignment {
  std::vector<Circuit> circuits;
  Time duration = 0.0;

  /// True iff no ingress and no egress port appears twice (port constraint).
  bool is_matching(int n_ports) const;
};

/// A circuit scheduling C = ((C(1),dur(1)), ..., (C(m),dur(m))).
struct CircuitSchedule {
  std::vector<CircuitAssignment> assignments;

  int num_assignments() const { return static_cast<int>(assignments.size()); }

  /// Sum of planned durations (the schedule's nominal transmission time).
  Time planned_transmission_time() const;

  /// True iff every assignment satisfies the port constraint.
  bool is_valid(int n_ports) const;

  /// Demand matrix the schedule can serve at full utilization: entry (i,j)
  /// accumulates the duration of every assignment containing circuit (i,j).
  Matrix service_matrix(int n_ports) const;

  /// True iff the schedule can fully serve `demand`, i.e. the service
  /// matrix covers it entry-wise.
  bool satisfies(const Matrix& demand) const;

  std::string to_string() const;
};

}  // namespace reco
