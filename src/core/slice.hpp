// Flow slices: the (t1, t2, i, j, k) tuples that Algorithm 2 manipulates.
// A slice schedule is the representation shared by the packet-switch
// scheduler (S_p), the pseudo-time regularized schedule (S-hat_o) and the
// final OCS schedule (S_o).
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

/// One non-preemptive transmission of (part of) a flow: coflow k sends on
/// circuit (src -> dst) during [start, end).
struct FlowSlice {
  Time start = 0.0;
  Time end = 0.0;
  PortId src = 0;
  PortId dst = 0;
  CoflowId coflow = 0;

  Time duration() const { return end - start; }
  bool operator==(const FlowSlice&) const = default;
};

using SliceSchedule = std::vector<FlowSlice>;

/// True iff no two slices that share an ingress or egress port overlap in
/// time — the port constraint of Sec. II-A (Lemma 2's feasibility notion).
bool is_port_feasible(const SliceSchedule& schedule);

/// True iff the schedule transmits exactly the demand of every coflow:
/// for each (i, j, k), the summed slice durations equal d^k_ij.
bool satisfies_demands(const SliceSchedule& schedule, const std::vector<Coflow>& coflows);

/// Completion time f_k = max end over the slices of each coflow (index ==
/// coflow id; coflows with no slices complete at 0).
std::vector<Time> completion_times(const SliceSchedule& schedule, int num_coflows);

/// Sum over k of weight_k * completion_k (arrival assumed 0, as in Sec. II).
Time total_weighted_cct(const std::vector<Time>& cct, const std::vector<Coflow>& coflows);

/// Distinct slice start times, sorted ascending.  In the all-stop OCS every
/// distinct start batch costs exactly one reconfiguration (Alg. 2's eta).
std::vector<Time> start_batches(const SliceSchedule& schedule);

/// In-place twin for hot loops: fills `out` (cleared first) with the same
/// batches, reusing its capacity.  The online replan core calls this once
/// per epoch, so the buffer reaches high-water size and stays there.
void start_batches_into(const SliceSchedule& schedule, std::vector<Time>& out);

/// Makespan: latest end time over all slices (0 for an empty schedule).
Time makespan(const SliceSchedule& schedule);

}  // namespace reco
