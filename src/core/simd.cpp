#include "core/simd.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/types.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define RECO_SIMD_X86 1
#include <immintrin.h>
#else
#define RECO_SIMD_X86 0
#endif

namespace reco::simd {

// ---------------------------------------------------------------------------
// Scalar tier: the reference semantics every other tier is pinned against.
// These are the exact loops the call sites used before the kernel layer.
// ---------------------------------------------------------------------------

namespace {

void scalar_gather(const double* src, const int* idx, int count, double* dst) {
  for (int k = 0; k < count; ++k) dst[k] = src[idx[k]];
}

double scalar_max_value(const double* v, int count, double init) {
  double m = init;
  for (int k = 0; k < count; ++k) {
    if (v[k] > m) m = v[k];
  }
  return m;
}

double scalar_max_gather(const double* src, const int* idx, int count, double init) {
  double m = init;
  for (int k = 0; k < count; ++k) {
    const double x = src[idx[k]];
    if (x > m) m = x;
  }
  return m;
}

double scalar_min_value(const double* v, int count, double init) {
  double m = init;
  for (int k = 0; k < count; ++k) {
    if (v[k] < m) m = v[k];
  }
  return m;
}

double scalar_max_value_leq(const double* v, int count, double cut, double init) {
  double m = init;
  for (int k = 0; k < count; ++k) {
    const double x = v[k];
    if (x <= cut && x > m) m = x;
  }
  return m;
}

int scalar_argmax(const double* v, int count) {
  if (count <= 0) return -1;
  int best = 0;
  for (int k = 1; k < count; ++k) {
    if (v[k] > v[best]) best = k;
  }
  return best;
}

void scalar_round_up_quantum(const double* v, int count, double quantum, double* out) {
  for (int k = 0; k < count; ++k) {
    const double q = std::ceil(v[k] / quantum - kTimeEps);
    out[k] = std::max(1.0, q) * quantum;
  }
}

void scalar_sub_clamp(double minuend, const double* v, int count, double* out) {
  for (int k = 0; k < count; ++k) out[k] = clamp_zero(minuend - v[k]);
}

int scalar_partition_greater(double* v, int count, double pivot) {
  int w = 0;
  for (int k = 0; k < count; ++k) {
    const double x = v[k];
    if (x > pivot) v[w++] = x;
  }
  return w;
}

int scalar_partition_keep_below(double* v, int count, double upper, double certify,
                                std::int64_t* certified) {
  int w = 0;
  std::int64_t c = 0;
  for (int k = 0; k < count; ++k) {
    const double x = v[k];
    if (x >= upper) continue;
    if (x > certify) {
      ++c;
      continue;
    }
    v[w++] = x;
  }
  *certified += c;
  return w;
}

void scalar_iota_interleave(const int* second, int count, int* out) {
  for (int k = 0; k < count; ++k) {
    out[2 * k] = k;
    out[2 * k + 1] = second[k];
  }
}

constexpr Kernels kScalarKernels = {
    scalar_gather,         scalar_max_value,        scalar_max_gather,
    scalar_min_value,      scalar_max_value_leq,    scalar_argmax,
    scalar_round_up_quantum, scalar_sub_clamp,      scalar_partition_greater,
    scalar_partition_keep_below, scalar_iota_interleave,
};

#if RECO_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 tier (x86-64 baseline — no target attribute needed).  Only kernels
// with a bit-identical 2-lane form are vectorized; the rest alias scalar.
// Lane merges with MAXPD/MINPD return the second operand on equal values,
// which matches the scalar `>`/`<` updates bit-for-bit because equal
// finite non-negative doubles share one representation (no -0.0 inputs —
// see the precondition in simd.hpp).
// ---------------------------------------------------------------------------

double sse2_max_value(const double* v, int count, double init) {
  int k = 0;
  double m = init;
  if (count >= 4) {
    __m128d acc0 = _mm_set1_pd(init);
    __m128d acc1 = acc0;
    for (; k + 4 <= count; k += 4) {
      acc0 = _mm_max_pd(acc0, _mm_loadu_pd(v + k));
      acc1 = _mm_max_pd(acc1, _mm_loadu_pd(v + k + 2));
    }
    const __m128d acc = _mm_max_pd(acc0, acc1);
    m = std::max(m, _mm_cvtsd_f64(acc));
    m = std::max(m, _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc)));
  }
  for (; k < count; ++k) {
    if (v[k] > m) m = v[k];
  }
  return m;
}

double sse2_min_value(const double* v, int count, double init) {
  int k = 0;
  double m = init;
  if (count >= 4) {
    __m128d acc0 = _mm_set1_pd(init);
    __m128d acc1 = acc0;
    for (; k + 4 <= count; k += 4) {
      acc0 = _mm_min_pd(acc0, _mm_loadu_pd(v + k));
      acc1 = _mm_min_pd(acc1, _mm_loadu_pd(v + k + 2));
    }
    const __m128d acc = _mm_min_pd(acc0, acc1);
    m = std::min(m, _mm_cvtsd_f64(acc));
    m = std::min(m, _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc)));
  }
  for (; k < count; ++k) {
    if (v[k] < m) m = v[k];
  }
  return m;
}

double sse2_max_value_leq(const double* v, int count, double cut, double init) {
  int k = 0;
  double m = init;
  if (count >= 2) {
    const __m128d vcut = _mm_set1_pd(cut);
    // Replace every lane above the cut with `init` so it cannot win.
    __m128d acc = _mm_set1_pd(init);
    const __m128d vinit = acc;
    for (; k + 2 <= count; k += 2) {
      const __m128d x = _mm_loadu_pd(v + k);
      const __m128d keep = _mm_cmple_pd(x, vcut);
      acc = _mm_max_pd(acc, _mm_or_pd(_mm_and_pd(keep, x), _mm_andnot_pd(keep, vinit)));
    }
    m = std::max(m, _mm_cvtsd_f64(acc));
    m = std::max(m, _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc)));
  }
  for (; k < count; ++k) {
    const double x = v[k];
    if (x <= cut && x > m) m = x;
  }
  return m;
}

int sse2_argmax(const double* v, int count) {
  if (count <= 0) return -1;
  const double mx = sse2_max_value(v, count, v[0]);
  const __m128d vmx = _mm_set1_pd(mx);
  int k = 0;
  for (; k + 2 <= count; k += 2) {
    const int mask = _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(v + k), vmx));
    if (mask != 0) return k + ((mask & 1) ? 0 : 1);
  }
  for (; k < count; ++k) {
    if (v[k] == mx) return k;
  }
  return 0;  // unreachable: mx is one of the elements
}

void sse2_sub_clamp(double minuend, const double* v, int count, double* out) {
  const __m128d vm = _mm_set1_pd(minuend);
  const __m128d eps = _mm_set1_pd(kTimeEps);
  const __m128d sign = _mm_set1_pd(-0.0);
  int k = 0;
  for (; k + 2 <= count; k += 2) {
    const __m128d d = _mm_sub_pd(vm, _mm_loadu_pd(v + k));
    // clamp_zero: |d| < kTimeEps -> exact 0.0.
    const __m128d keep = _mm_cmpge_pd(_mm_andnot_pd(sign, d), eps);
    _mm_storeu_pd(out + k, _mm_and_pd(keep, d));
  }
  for (; k < count; ++k) out[k] = clamp_zero(minuend - v[k]);
}

void sse2_iota_interleave(const int* second, int count, int* out) {
  __m128i idx = _mm_setr_epi32(0, 1, 2, 3);
  const __m128i step = _mm_set1_epi32(4);
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i sec = _mm_loadu_si128(reinterpret_cast<const __m128i*>(second + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * k), _mm_unpacklo_epi32(idx, sec));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * k + 4), _mm_unpackhi_epi32(idx, sec));
    idx = _mm_add_epi32(idx, step);
  }
  for (; k < count; ++k) {
    out[2 * k] = k;
    out[2 * k + 1] = second[k];
  }
}

constexpr Kernels kSse2Kernels = {
    scalar_gather,         sse2_max_value,          scalar_max_gather,
    sse2_min_value,        sse2_max_value_leq,      sse2_argmax,
    scalar_round_up_quantum, sse2_sub_clamp,        scalar_partition_greater,
    scalar_partition_keep_below, sse2_iota_interleave,
};

// ---------------------------------------------------------------------------
// AVX2 tier.  Compiled with per-function target attributes so the TU
// builds at the baseline -march; dispatch guarantees these only run when
// CPUID reports avx2.
// ---------------------------------------------------------------------------

__attribute__((target("avx2")))
void avx2_gather(const double* src, const int* idx, int count, double* dst) {
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    _mm256_storeu_pd(dst + k, _mm256_i32gather_pd(src, vi, 8));
  }
  for (; k < count; ++k) dst[k] = src[idx[k]];
}

__attribute__((target("avx2")))
double avx2_max_value(const double* v, int count, double init) {
  int k = 0;
  double m = init;
  if (count >= 8) {
    __m256d acc0 = _mm256_set1_pd(init);
    __m256d acc1 = acc0;
    for (; k + 8 <= count; k += 8) {
      acc0 = _mm256_max_pd(acc0, _mm256_loadu_pd(v + k));
      acc1 = _mm256_max_pd(acc1, _mm256_loadu_pd(v + k + 4));
    }
    const __m256d acc = _mm256_max_pd(acc0, acc1);
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d mx2 = _mm_max_pd(lo, hi);
    m = std::max(m, _mm_cvtsd_f64(mx2));
    m = std::max(m, _mm_cvtsd_f64(_mm_unpackhi_pd(mx2, mx2)));
  }
  for (; k < count; ++k) {
    if (v[k] > m) m = v[k];
  }
  return m;
}

__attribute__((target("avx2")))
double avx2_max_gather(const double* src, const int* idx, int count, double init) {
  int k = 0;
  double m = init;
  if (count >= 4) {
    __m256d acc = _mm256_set1_pd(init);
    for (; k + 4 <= count; k += 4) {
      const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
      acc = _mm256_max_pd(acc, _mm256_i32gather_pd(src, vi, 8));
    }
    const __m128d mx2 =
        _mm_max_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
    m = std::max(m, _mm_cvtsd_f64(mx2));
    m = std::max(m, _mm_cvtsd_f64(_mm_unpackhi_pd(mx2, mx2)));
  }
  for (; k < count; ++k) {
    const double x = src[idx[k]];
    if (x > m) m = x;
  }
  return m;
}

__attribute__((target("avx2")))
double avx2_min_value(const double* v, int count, double init) {
  int k = 0;
  double m = init;
  if (count >= 8) {
    __m256d acc0 = _mm256_set1_pd(init);
    __m256d acc1 = acc0;
    for (; k + 8 <= count; k += 8) {
      acc0 = _mm256_min_pd(acc0, _mm256_loadu_pd(v + k));
      acc1 = _mm256_min_pd(acc1, _mm256_loadu_pd(v + k + 4));
    }
    const __m256d acc = _mm256_min_pd(acc0, acc1);
    const __m128d mn2 =
        _mm_min_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
    m = std::min(m, _mm_cvtsd_f64(mn2));
    m = std::min(m, _mm_cvtsd_f64(_mm_unpackhi_pd(mn2, mn2)));
  }
  for (; k < count; ++k) {
    if (v[k] < m) m = v[k];
  }
  return m;
}

__attribute__((target("avx2")))
double avx2_max_value_leq(const double* v, int count, double cut, double init) {
  int k = 0;
  double m = init;
  if (count >= 4) {
    const __m256d vcut = _mm256_set1_pd(cut);
    const __m256d vinit = _mm256_set1_pd(init);
    __m256d acc = vinit;
    for (; k + 4 <= count; k += 4) {
      const __m256d x = _mm256_loadu_pd(v + k);
      const __m256d keep = _mm256_cmp_pd(x, vcut, _CMP_LE_OQ);
      acc = _mm256_max_pd(acc, _mm256_blendv_pd(vinit, x, keep));
    }
    const __m128d mx2 =
        _mm_max_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
    m = std::max(m, _mm_cvtsd_f64(mx2));
    m = std::max(m, _mm_cvtsd_f64(_mm_unpackhi_pd(mx2, mx2)));
  }
  for (; k < count; ++k) {
    const double x = v[k];
    if (x <= cut && x > m) m = x;
  }
  return m;
}

__attribute__((target("avx2")))
int avx2_argmax(const double* v, int count) {
  if (count <= 0) return -1;
  const double mx = avx2_max_value(v, count, v[0]);
  const __m256d vmx = _mm256_set1_pd(mx);
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(v + k), vmx, _CMP_EQ_OQ));
    if (mask != 0) return k + __builtin_ctz(static_cast<unsigned>(mask));
  }
  for (; k < count; ++k) {
    if (v[k] == mx) return k;
  }
  return 0;  // unreachable: mx is one of the elements
}

__attribute__((target("avx2")))
void avx2_round_up_quantum(const double* v, int count, double quantum, double* out) {
  const __m256d vq = _mm256_set1_pd(quantum);
  const __m256d veps = _mm256_set1_pd(kTimeEps);
  const __m256d ones = _mm256_set1_pd(1.0);
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d x = _mm256_loadu_pd(v + k);
    const __m256d q = _mm256_round_pd(_mm256_sub_pd(_mm256_div_pd(x, vq), veps),
                                      _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC);
    // max(1.0, q): MAXPD returns the second operand on equality — both
    // are +1.0 there, so the result matches std::max(1.0, q) bit-for-bit.
    _mm256_storeu_pd(out + k, _mm256_mul_pd(_mm256_max_pd(ones, q), vq));
  }
  for (; k < count; ++k) {
    const double q = std::ceil(v[k] / quantum - kTimeEps);
    out[k] = std::max(1.0, q) * quantum;
  }
}

__attribute__((target("avx2")))
void avx2_sub_clamp(double minuend, const double* v, int count, double* out) {
  const __m256d vm = _mm256_set1_pd(minuend);
  const __m256d eps = _mm256_set1_pd(kTimeEps);
  const __m256d sign = _mm256_set1_pd(-0.0);
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d d = _mm256_sub_pd(vm, _mm256_loadu_pd(v + k));
    const __m256d keep = _mm256_cmp_pd(_mm256_andnot_pd(sign, d), eps, _CMP_GE_OQ);
    _mm256_storeu_pd(out + k, _mm256_and_pd(keep, d));
  }
  for (; k < count; ++k) out[k] = clamp_zero(minuend - v[k]);
}

/// Left-pack permutation per 4-bit keep mask: entry [mask] lists the epi32
/// lane pairs of the kept doubles in order (garbage beyond the popcount).
alignas(32) constexpr int kCompressLut[16][8] = {
    {0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}, {2, 3, 0, 1, 4, 5, 6, 7},
    {0, 1, 2, 3, 4, 5, 6, 7}, {4, 5, 0, 1, 2, 3, 6, 7}, {0, 1, 4, 5, 2, 3, 6, 7},
    {2, 3, 4, 5, 0, 1, 6, 7}, {0, 1, 2, 3, 4, 5, 6, 7}, {6, 7, 0, 1, 2, 3, 4, 5},
    {0, 1, 6, 7, 2, 3, 4, 5}, {2, 3, 6, 7, 0, 1, 4, 5}, {0, 1, 2, 3, 6, 7, 4, 5},
    {4, 5, 6, 7, 0, 1, 2, 3}, {0, 1, 4, 5, 6, 7, 2, 3}, {2, 3, 4, 5, 6, 7, 0, 1},
    {0, 1, 2, 3, 4, 5, 6, 7},
};

__attribute__((target("avx2")))
int avx2_partition_greater(double* v, int count, double pivot) {
  const __m256d vp = _mm256_set1_pd(pivot);
  int w = 0;
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d x = _mm256_loadu_pd(v + k);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(x, vp, _CMP_GT_OQ));
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompressLut[mask]));
    // The store lands at w <= k, entirely inside the already-read prefix,
    // so in-place compaction never clobbers unread input.
    _mm256_storeu_pd(v + w, _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
                                _mm256_castpd_si256(x), perm)));
    w += __builtin_popcount(static_cast<unsigned>(mask));
  }
  for (; k < count; ++k) {
    const double x = v[k];
    if (x > pivot) v[w++] = x;
  }
  return w;
}

__attribute__((target("avx2")))
int avx2_partition_keep_below(double* v, int count, double upper, double certify,
                              std::int64_t* certified) {
  const __m256d vu = _mm256_set1_pd(upper);
  const __m256d vc = _mm256_set1_pd(certify);
  int w = 0;
  int k = 0;
  std::int64_t c = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d x = _mm256_loadu_pd(v + k);
    const int below = _mm256_movemask_pd(_mm256_cmp_pd(x, vu, _CMP_LT_OQ));
    const int low = _mm256_movemask_pd(_mm256_cmp_pd(x, vc, _CMP_LE_OQ));
    const int keep = below & low;          // v < upper && v <= certify
    c += __builtin_popcount(static_cast<unsigned>(below & ~low));  // certified drops
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompressLut[keep]));
    _mm256_storeu_pd(v + w, _mm256_castsi256_pd(_mm256_permutevar8x32_epi32(
                                _mm256_castpd_si256(x), perm)));
    w += __builtin_popcount(static_cast<unsigned>(keep));
  }
  for (; k < count; ++k) {
    const double x = v[k];
    if (x >= upper) continue;
    if (x > certify) {
      ++c;
      continue;
    }
    v[w++] = x;
  }
  *certified += c;
  return w;
}

__attribute__((target("avx2")))
void avx2_iota_interleave(const int* second, int count, int* out) {
  __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i step = _mm256_set1_epi32(8);
  int k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m256i sec = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(second + k));
    const __m256i lo = _mm256_unpacklo_epi32(idx, sec);  // i0 s0 i1 s1 | i4 s4 i5 s5
    const __m256i hi = _mm256_unpackhi_epi32(idx, sec);  // i2 s2 i3 s3 | i6 s6 i7 s7
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * k),
                        _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 2 * k + 8),
                        _mm256_permute2x128_si256(lo, hi, 0x31));
    idx = _mm256_add_epi32(idx, step);
  }
  for (; k < count; ++k) {
    out[2 * k] = k;
    out[2 * k + 1] = second[k];
  }
}

constexpr Kernels kAvx2Kernels = {
    avx2_gather,           avx2_max_value,          avx2_max_gather,
    avx2_min_value,        avx2_max_value_leq,      avx2_argmax,
    avx2_round_up_quantum, avx2_sub_clamp,          avx2_partition_greater,
    avx2_partition_keep_below, avx2_iota_interleave,
};

#endif  // RECO_SIMD_X86

Level cpu_ceiling() {
#if RECO_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  return Level::kSse2;  // SSE2 is the x86-64 baseline
#else
  return Level::kScalar;
#endif
}

Level resolve_level() {
  Level want = cpu_ceiling();
  if (const char* env = std::getenv("RECO_SIMD")) {
    std::string s(env);
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "off" || s == "scalar" || s == "0") {
      want = Level::kScalar;
    } else if (s == "sse2") {
      want = Level::kSse2;
    } else if (s == "avx2") {
      want = Level::kAvx2;
    }  // "auto", "", unknown: keep the CPUID ceiling
  }
  // Never dispatch above what the CPU reports (a forced RECO_SIMD=avx2 on
  // an SSE2-only machine degrades instead of hitting SIGILL).
  if (static_cast<int>(want) > static_cast<int>(cpu_ceiling())) want = cpu_ceiling();
  return want;
}

}  // namespace

Level active_level() {
  static const Level level = resolve_level();
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

std::vector<Level> supported_levels() {
  std::vector<Level> out{Level::kScalar};
#if RECO_SIMD_X86
  out.push_back(Level::kSse2);
  if (__builtin_cpu_supports("avx2")) out.push_back(Level::kAvx2);
#endif
  return out;
}

const Kernels& kernels_for(Level level) {
#if RECO_SIMD_X86
  if (level == Level::kAvx2) return kAvx2Kernels;
  if (level == Level::kSse2) return kSse2Kernels;
#else
  (void)level;
#endif
  return kScalarKernels;
}

const Kernels& kernels() {
  static const Kernels& k = kernels_for(active_level());
  return k;
}

}  // namespace reco::simd
