// The single-coflow CCT lower bound used throughout the evaluation:
// T_lb = rho + tau * delta (Sec. V-B, baseline 1; proof inside Theorem 2).
#pragma once

#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

/// Theoretical lower bound on the CCT of a single coflow in an all-stop OCS
/// with reconfiguration delay `delta`:
///   rho(D)   — some port must carry its whole load at unit bandwidth;
///   tau(D)*delta — some port needs tau distinct circuits, each preceded by
///                  a reconfiguration.
Time single_coflow_lower_bound(const Matrix& demand, Time delta);

}  // namespace reco
