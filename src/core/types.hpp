// Fundamental scalar types and numeric tolerances shared by every module.
#pragma once

#include <cmath>
#include <cstdint>

namespace reco {

/// Simulated wall-clock time / data volume, in seconds (bandwidth is
/// normalized to 1, so "seconds of transmission" and "data amount" are the
/// same quantity, exactly as in the paper's Sec. II-A).
using Time = double;

/// Index of an ingress or egress port of the OCS fabric.
using PortId = std::int32_t;

/// Index of a coflow within a workload.
using CoflowId = std::int32_t;

/// Absolute tolerance for comparing simulated times / demands.  The smallest
/// meaningful quantum in any experiment is the reconfiguration delay
/// (>= 1 microsecond = 1e-6 s); 1e-9 is three orders of magnitude below it
/// and far above double round-off accumulated over ~1e5 schedule steps.
inline constexpr double kTimeEps = 1e-9;

/// True iff |x| is indistinguishable from zero at simulation granularity.
inline bool approx_zero(double x) { return std::abs(x) < kTimeEps; }

/// True iff a and b are indistinguishable at simulation granularity.
inline bool approx_eq(double a, double b) { return std::abs(a - b) < kTimeEps; }

/// True iff a <= b up to simulation granularity.
inline bool approx_le(double a, double b) { return a <= b + kTimeEps; }

/// Snap tiny negative round-off results of subtraction chains to exact zero.
inline double clamp_zero(double x) { return approx_zero(x) ? 0.0 : x; }

/// Minimum residual demand worth establishing a circuit for.  Physically: a
/// few nanoseconds at 100 Gb/s is bytes of traffic — no OCS reconfigures
/// for that, and numerically it is the scale of round-off accumulated by
/// long subtraction chains (binary slicing, BvN peeling).  Executors treat
/// residuals below this as served.
inline constexpr double kMinServiceQuantum = 64 * kTimeEps;

}  // namespace reco
