#include "core/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reco {

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const int n = static_cast<int>(rows.size());
  Matrix m(n);
  int i = 0;
  for (const auto& row : rows) {
    if (static_cast<int>(row.size()) != n) {
      throw std::invalid_argument("Matrix::from_rows: ragged initializer");
    }
    int j = 0;
    for (double x : row) m.at(i, j++) = x;
    ++i;
  }
  return m;
}

int Matrix::nnz() const {
  int count = 0;
  for (double x : v_) {
    if (!approx_zero(x)) ++count;
  }
  return count;
}

double Matrix::density() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(nnz()) / (static_cast<double>(n_) * n_);
}

Time Matrix::row_sum(int i) const {
  Time s = 0.0;
  for (int j = 0; j < n_; ++j) s += at(i, j);
  return s;
}

Time Matrix::col_sum(int j) const {
  Time s = 0.0;
  for (int i = 0; i < n_; ++i) s += at(i, j);
  return s;
}

Time Matrix::total() const {
  Time s = 0.0;
  for (double x : v_) s += x;
  return s;
}

double Matrix::max_entry() const {
  double m = 0.0;
  for (double x : v_) m = std::max(m, x);
  return m;
}

double Matrix::min_nonzero() const {
  double m = 0.0;
  for (double x : v_) {
    if (!approx_zero(x) && (m == 0.0 || x < m)) m = x;
  }
  return m;
}

Time Matrix::rho() const {
  Time r = 0.0;
  for (int i = 0; i < n_; ++i) r = std::max(r, row_sum(i));
  for (int j = 0; j < n_; ++j) r = std::max(r, col_sum(j));
  return r;
}

int Matrix::tau() const {
  int t = 0;
  for (int i = 0; i < n_; ++i) {
    int row_nnz = 0;
    for (int j = 0; j < n_; ++j) {
      if (!approx_zero(at(i, j))) ++row_nnz;
    }
    t = std::max(t, row_nnz);
  }
  for (int j = 0; j < n_; ++j) {
    int col_nnz = 0;
    for (int i = 0; i < n_; ++i) {
      if (!approx_zero(at(i, j))) ++col_nnz;
    }
    t = std::max(t, col_nnz);
  }
  return t;
}

bool Matrix::is_doubly_stochastic(double eps) const {
  if (n_ == 0) return true;
  const Time target = row_sum(0);
  for (int i = 0; i < n_; ++i) {
    if (std::abs(row_sum(i) - target) > eps) return false;
  }
  for (int j = 0; j < n_; ++j) {
    if (std::abs(col_sum(j) - target) > eps) return false;
  }
  return true;
}

bool Matrix::is_granular(double quantum, double eps) const {
  if (quantum <= 0.0) return false;
  for (double x : v_) {
    if (x < -eps) return false;
    const double k = std::round(x / quantum);
    if (std::abs(x - k * quantum) > eps) return false;
  }
  return true;
}

bool Matrix::covers(const Matrix& other, double eps) const {
  if (n_ != other.n_) return false;
  for (std::size_t p = 0; p < v_.size(); ++p) {
    if (v_[p] + eps < other.v_[p]) return false;
  }
  return true;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (n_ != other.n_) throw std::invalid_argument("Matrix::+=: size mismatch");
  for (std::size_t p = 0; p < v_.size(); ++p) v_[p] += other.v_[p];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (n_ != other.n_) throw std::invalid_argument("Matrix::-=: size mismatch");
  for (std::size_t p = 0; p < v_.size(); ++p) {
    v_[p] = clamp_zero(v_[p] - other.v_[p]);
  }
  return *this;
}

std::string Matrix::to_string(int width) const {
  std::ostringstream out;
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      out.width(width);
      out << at(i, j) << (j + 1 == n_ ? "" : " ");
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace reco
