#include "core/slice.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace reco {

bool is_port_feasible(const SliceSchedule& schedule) {
  // Sweep each port's slices sorted by start; neighbours must not overlap.
  // Two passes (ingress then egress) with a shared helper.
  const auto check_axis = [&](bool ingress) {
    std::map<PortId, std::vector<const FlowSlice*>> by_port;
    for (const FlowSlice& s : schedule) {
      if (s.end < s.start - kTimeEps) return false;
      by_port[ingress ? s.src : s.dst].push_back(&s);
    }
    for (auto& [port, slices] : by_port) {
      std::sort(slices.begin(), slices.end(),
                [](const FlowSlice* a, const FlowSlice* b) { return a->start < b->start; });
      for (std::size_t k = 1; k < slices.size(); ++k) {
        if (slices[k]->start < slices[k - 1]->end - kTimeEps) return false;
      }
    }
    return true;
  };
  return check_axis(true) && check_axis(false);
}

bool satisfies_demands(const SliceSchedule& schedule, const std::vector<Coflow>& coflows) {
  std::map<std::tuple<CoflowId, PortId, PortId>, Time> served;
  for (const FlowSlice& s : schedule) {
    served[{s.coflow, s.src, s.dst}] += s.duration();
  }
  // Per-flow tolerance: a flow may be served by many slices.
  const double eps = kTimeEps * std::max<std::size_t>(1, schedule.size());
  for (const Coflow& c : coflows) {
    for (int i = 0; i < c.demand.n(); ++i) {
      for (int j = 0; j < c.demand.n(); ++j) {
        const double want = c.demand.at(i, j);
        const auto it = served.find({c.id, i, j});
        const double got = it == served.end() ? 0.0 : it->second;
        if (std::abs(got - want) > eps) return false;
      }
    }
  }
  // Also reject slices for flows with no demand.
  for (const auto& [key, got] : served) {
    const auto [k, i, j] = key;
    bool found = false;
    for (const Coflow& c : coflows) {
      if (c.id == k) {
        found = true;
        if (approx_zero(c.demand.at(i, j)) && !approx_zero(got)) return false;
      }
    }
    if (!found && !approx_zero(got)) return false;
  }
  return true;
}

std::vector<Time> completion_times(const SliceSchedule& schedule, int num_coflows) {
  std::vector<Time> cct(num_coflows, 0.0);
  for (const FlowSlice& s : schedule) {
    if (s.coflow >= 0 && s.coflow < num_coflows) {
      cct[s.coflow] = std::max(cct[s.coflow], s.end);
    }
  }
  return cct;
}

Time total_weighted_cct(const std::vector<Time>& cct, const std::vector<Coflow>& coflows) {
  Time sum = 0.0;
  for (const Coflow& c : coflows) {
    if (c.id >= 0 && c.id < static_cast<CoflowId>(cct.size())) {
      sum += c.weight * (cct[c.id] - c.arrival);
    }
  }
  return sum;
}

std::vector<Time> start_batches(const SliceSchedule& schedule) {
  std::vector<Time> batches;
  start_batches_into(schedule, batches);
  return batches;
}

void start_batches_into(const SliceSchedule& schedule, std::vector<Time>& out) {
  out.clear();
  out.reserve(schedule.size());
  for (const FlowSlice& s : schedule) out.push_back(s.start);
  std::sort(out.begin(), out.end());
  // Same chain dedup as the returning variant: compare each start against
  // the last *kept* batch time.
  std::size_t kept = 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (kept == 0 || !approx_eq(out[kept - 1], out[k])) out[kept++] = out[k];
  }
  out.resize(kept);
}

Time makespan(const SliceSchedule& schedule) {
  Time m = 0.0;
  for (const FlowSlice& s : schedule) m = std::max(m, s.end);
  return m;
}

}  // namespace reco
