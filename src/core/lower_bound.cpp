#include "core/lower_bound.hpp"

namespace reco {

Time single_coflow_lower_bound(const Matrix& demand, Time delta) {
  if (demand.nnz() == 0) return 0.0;
  return demand.rho() + static_cast<Time>(demand.tau()) * delta;
}

}  // namespace reco
