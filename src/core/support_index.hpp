// Sparse support index over a dense demand matrix.
//
// Every decomposition kernel in this repo (BvN peeling, Solstice slicing,
// stuffing, threshold matching) repeatedly asks the same questions of a
// mutating matrix: which entries of row i are nonzero?  what is nnz now?
// what are the row/column sums?  Answering them from the dense storage
// costs O(N) or O(N^2) per query, which dominates once the matrix is
// sparse — and the paper's Facebook-trace workload is overwhelmingly
// sparse (Table I: 86% of coflows in the sparse class).  SupportIndex
// keeps per-row and per-column adjacency plus incrementally maintained
// aggregates, so support queries are O(1)/O(degree) and the whole peeling
// loop becomes proportional to nnz instead of N^2.
//
// Layout (the N >= 1024 scaling work, DESIGN.md "Scaling to N >= 1024"):
// adjacency lives in *blocked SoA arenas*, not per-line std::vectors.  One
// flat column arena plus a parallel value arena hold every row's support
// as a contiguous block {offset, size, capacity}; the column side keeps a
// structure-only arena (no value mirror — no hot loop streams values in
// column order).  An O(degree) iteration therefore streams two flat
// arrays (indices and values side by side) instead of chasing a
// heap-allocated vector per line and then striding the N-wide dense row
// for each value — which is what kept the matching/peeling kernels
// memory-bound at N >= 1024.  Blocks grow by relocation to the arena tail
// (amortized O(1), compaction when garbage exceeds half the arena), so
// iteration order and results are identical to the per-vector layout.
#pragma once

#include <cstddef>
#include <vector>

#include "core/matrix.hpp"
#include "core/simd.hpp"
#include "core/types.hpp"

namespace reco {

/// Lightweight view of one line's support indices inside the arena.
/// Invalidated by any mutation of the index (set/add/assign/release), like
/// iterators into a vector — do not hold one across writes.
class SupportSpan {
 public:
  SupportSpan() = default;
  SupportSpan(const int* data, int size) : data_(data), size_(size) {}
  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int operator[](int k) const { return data_[k]; }
  int front() const { return data_[0]; }
  int back() const { return data_[size_ - 1]; }

 private:
  const int* data_ = nullptr;
  int size_ = 0;
};

/// View of the values parallel to a row's SupportSpan: element k is the
/// matrix entry at column row_support(i)[k].  Same invalidation rule.
class ValueSpan {
 public:
  ValueSpan() = default;
  ValueSpan(const double* data, int size) : data_(data), size_(size) {}
  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double operator[](int k) const { return data_[k]; }

 private:
  const double* data_ = nullptr;
  int size_ = 0;
};

/// Owns a dense Matrix and maintains, under `set`/`add` mutation:
///   * row_support(i) / col_support(j) — sorted indices of nonzero entries;
///   * row_values(i) — values parallel to row_support(i), streamed from
///     the SoA value arena (no dense-row gather);
///   * row_sum / col_sum / nnz / row_nnz / col_nnz — O(1) aggregates;
///   * rho / tau — O(N) over the cached per-line aggregates.
///
/// Invariants:
///   * an entry is in the support iff it is exactly nonzero, and every
///     stored value is either exact 0.0 or at least kTimeEps in magnitude:
///     `set` snaps sub-tolerance values to zero (the same clamp_zero
///     convention the subtraction chains already follow), so the support
///     never accumulates stale tolerance-crumbs;
///   * support blocks are kept sorted ascending, so iterating a row's
///     support visits the same nonzero entries in the same order as a
///     dense j = 0..N-1 scan — which is what makes the sparse kernels
///     bit-identical to their dense counterparts (see DESIGN.md §3);
///   * row_values(i)[k] equals at(i, row_support(i)[k]) exactly — the
///     value arena is a lazily refreshed mirror: in-place writes mark the
///     row dirty and the next row_values(i) re-gathers it from the dense
///     row, so read results are always exact;
///   * incremental row/col sums are updated by +=delta and therefore agree
///     with a from-scratch scan only up to float round-off; callers that
///     need scan-exact sums (stuffing's slack arithmetic) use
///     `row_sum_exact` / `col_sum_exact`, an ordered O(degree) re-scan
///     that matches Matrix::row_sum bit-for-bit because exact zeros
///     contribute exactly nothing to an IEEE sum.
class SupportIndex {
 public:
  SupportIndex() = default;

  /// Take ownership of `m` and build the index in one O(N^2) scan.
  /// Sub-tolerance entries of `m` are snapped to exact zero.
  explicit SupportIndex(Matrix m);

  /// Rebuild this index over a copy of `m` in place, reusing every buffer's
  /// capacity (arenas, blocks, sums, the dense storage when the dimension
  /// is unchanged).  Same snapping semantics as the ingest constructor.
  /// This is the slot-recycling entry point of the online scheduler: a
  /// daemon that re-seats thousands of coflows in the same residual slots
  /// must not re-allocate the index each time.
  void assign(const Matrix& m);

  /// Empty n x n index without the O(N^2) ingest scan — the right entry
  /// point for kernels that build a sparse result entry by entry
  /// (regularization, stuffing of an indexed input).
  static SupportIndex zeros(int n);

  int n() const { return m_.n(); }
  bool empty() const { return m_.empty(); }

  /// The underlying dense matrix (read-only; mutate via set/add).
  const Matrix& matrix() const { return m_; }

  /// Move the matrix out; the index is left empty.
  Matrix release();

  double at(int i, int j) const { return m_.at(i, j); }

  /// Write entry (i, j).  Sub-tolerance values are snapped to exact zero.
  /// O(1) when the entry stays inside the support (dense write + a dirty
  /// mark; the value mirror refreshes lazily on the next row_values read),
  /// O(degree) when it enters or leaves (sorted insert/erase in the row
  /// and column blocks).  Defined inline: this is the innermost write of
  /// every peeling round.
  void set(int i, int j, double v) {
    if (approx_zero(v)) v = 0.0;
    double& cell = m_.at(i, j);
    const double old = cell;
    if (v == old) return;
    row_sum_[i] += v - old;
    col_sum_[j] += v - old;
    cell = v;
    const bool was = old != 0.0;
    const bool now = v != 0.0;
    if (was != now) {
      update_support(i, j, now);
    } else if (now) {
      row_dirty_[i] = 1;
    }
  }

  /// set(i, j, at(i, j) + dv).
  void add(int i, int j, double dv) { set(i, j, m_.at(i, j) + dv); }

  // ---- O(1) aggregates -------------------------------------------------
  int nnz() const { return nnz_; }
  int row_nnz(int i) const { return row_blk_[i].len; }
  int col_nnz(int j) const { return col_blk_[j].len; }
  /// Incrementally maintained sums (scan-exact at build, then drifts by
  /// accumulated round-off — fine for tolerance-scale decisions).
  Time row_sum(int i) const { return row_sum_[i]; }
  Time col_sum(int j) const { return col_sum_[j]; }

  // ---- O(N) / O(nnz) aggregates ---------------------------------------
  /// max over rows and columns of the incremental sums (Theorem 2's rho).
  Time rho() const;
  /// max nonzeros in any row or column (Theorem 2's tau), from the cached
  /// per-line counts.
  int tau() const;
  /// Largest entry, by streaming the value arena (O(nnz), no dense reads).
  double max_entry() const;
  /// Sum of all entries, from the incremental row sums (O(N)).
  Time total() const;

  // ---- support structure ----------------------------------------------
  /// Columns j with m(i, j) != 0, ascending.  Exact — no stale entries.
  SupportSpan row_support(int i) const {
    const Block& b = row_blk_[i];
    return {row_cols_.data() + b.off, b.len};
  }
  /// Values parallel to row_support(i): element k is at(i, support[k]).
  ValueSpan row_values(int i) const {
    const Block& b = row_blk_[i];
    if (row_dirty_[i]) {
      // Mirror re-gather from the dense row — the hottest gather in the
      // peel loop, dispatched through the SIMD kernel layer (bit-identical
      // to the scalar loop at every tier).
      simd::kernels().gather(m_.row_data(i), row_cols_.data() + b.off, b.len,
                             row_vals_.data() + b.off);
      row_dirty_[i] = 0;
    }
    return {row_vals_.data() + b.off, b.len};
  }
  /// Rows i with m(i, j) != 0, ascending.
  SupportSpan col_support(int j) const {
    const Block& b = col_blk_[j];
    return {col_rows_.data() + b.off, b.len};
  }

  /// Ordered O(degree) re-scan of row i over its support; bit-identical to
  /// Matrix::row_sum(i) because every skipped entry is exactly 0.0.
  Time row_sum_exact(int i) const;
  Time col_sum_exact(int j) const;

  /// Total heap capacity currently held, in elements (dense storage plus
  /// the adjacency/value arenas) — sampled by the online core's
  /// alloc-event accounting to prove recycled slots stop allocating at
  /// steady state.
  std::size_t capacity_footprint() const;

  /// Reserve every adjacency block to full density (n entries), making the
  /// index's capacity independent of the shape of the matrix it currently
  /// holds.  A recycled slot whose index is dense-reserved can be re-seated
  /// with any n x n demand without allocating — without this, a long
  /// arrival stream keeps breaking per-row nnz records in recycled slots
  /// and the allocation high-water mark creeps forever.
  void reserve_dense();

 private:
  /// One line's contiguous region inside an arena.
  struct Block {
    int off = 0;  ///< first element index in the arena
    int len = 0;  ///< live elements
    int cap = 0;  ///< reserved elements (len <= cap)
  };

  /// Slow path of set(): entry (i, j) entered (`now`) or left the support.
  void update_support(int i, int j, bool now);

  /// Rebuild both arenas from the dense matrix (ingest / assign / compact).
  void build_from_matrix();

  /// Drop dead space: rewrite an arena so blocks are tightly packed in
  /// line order.  Called when relocation garbage exceeds half the arena.
  void compact_rows();
  void compact_cols();

  Matrix m_;
  // Row-side blocked SoA: columns and values in lockstep.
  std::vector<int> row_cols_;
  mutable std::vector<double> row_vals_;
  std::vector<Block> row_blk_;
  /// Per-row staleness of the value mirror.  An in-place set() only writes
  /// the dense cell and this byte; row_values() gathers the row from dense
  /// storage on its next read and clears the mark.  Writes therefore cost
  /// what they did pre-SoA, and a burst of writes (a peel's subtraction
  /// chain) pays one gather per row instead of one search per write.
  /// Structural insert/erase keep the mirror aligned, so clean rows stay
  /// clean.  mutable: refresh happens under const readers — concurrent
  /// row_values() calls on the SAME index race; every current caller
  /// reads one index from one thread (see ordering.cpp's parallel loops,
  /// which are per-coflow).
  mutable std::vector<unsigned char> row_dirty_;
  int row_garbage_ = 0;  ///< dead elements left behind by block relocation
  // Column side: structure only (no hot loop streams values by column).
  std::vector<int> col_rows_;
  std::vector<Block> col_blk_;
  int col_garbage_ = 0;
  std::vector<Time> row_sum_;
  std::vector<Time> col_sum_;
  int nnz_ = 0;
  /// Once reserve_dense() has run, every (re)layout keeps cap == n per
  /// block so the arenas never grow again (zero-alloc slot recycling).
  bool dense_reserved_ = false;
};

}  // namespace reco
