// Sparse support index over a dense demand matrix.
//
// Every decomposition kernel in this repo (BvN peeling, Solstice slicing,
// stuffing, threshold matching) repeatedly asks the same questions of a
// mutating matrix: which entries of row i are nonzero?  what is nnz now?
// what are the row/column sums?  Answering them from the dense storage
// costs O(N) or O(N^2) per query, which dominates once the matrix is
// sparse — and the paper's Facebook-trace workload is overwhelmingly
// sparse (Table I: 86% of coflows in the sparse class).  SupportIndex
// keeps per-row and per-column adjacency lists plus incrementally
// maintained aggregates, so support queries are O(1)/O(degree) and the
// whole peeling loop becomes proportional to nnz instead of N^2.
#pragma once

#include <cstddef>
#include <vector>

#include "core/matrix.hpp"
#include "core/types.hpp"

namespace reco {

/// Owns a dense Matrix and maintains, under `set`/`add` mutation:
///   * row_support(i) / col_support(j) — sorted indices of nonzero entries;
///   * row_sum / col_sum / nnz / row_nnz / col_nnz — O(1) aggregates;
///   * rho / tau — O(N) over the cached per-line aggregates.
///
/// Invariants:
///   * an entry is in the support iff it is exactly nonzero, and every
///     stored value is either exact 0.0 or at least kTimeEps in magnitude:
///     `set` snaps sub-tolerance values to zero (the same clamp_zero
///     convention the subtraction chains already follow), so the support
///     never accumulates stale tolerance-crumbs;
///   * support lists are kept sorted ascending, so iterating a row's
///     support visits the same nonzero entries in the same order as a
///     dense j = 0..N-1 scan — which is what makes the sparse kernels
///     bit-identical to their dense counterparts (see DESIGN.md §3);
///   * incremental row/col sums are updated by +=delta and therefore agree
///     with a from-scratch scan only up to float round-off; callers that
///     need scan-exact sums (stuffing's slack arithmetic) use
///     `row_sum_exact` / `col_sum_exact`, an ordered O(degree) re-scan
///     that matches Matrix::row_sum bit-for-bit because exact zeros
///     contribute exactly nothing to an IEEE sum.
class SupportIndex {
 public:
  SupportIndex() = default;

  /// Take ownership of `m` and build the index in one O(N^2) scan.
  /// Sub-tolerance entries of `m` are snapped to exact zero.
  explicit SupportIndex(Matrix m);

  /// Rebuild this index over a copy of `m` in place, reusing every buffer's
  /// capacity (adjacency lists, sums, the dense storage when the dimension
  /// is unchanged).  Same snapping semantics as the ingest constructor.
  /// This is the slot-recycling entry point of the online scheduler: a
  /// daemon that re-seats thousands of coflows in the same residual slots
  /// must not re-allocate the index each time.
  void assign(const Matrix& m);

  /// Empty n x n index without the O(N^2) ingest scan — the right entry
  /// point for kernels that build a sparse result entry by entry
  /// (regularization, stuffing of an indexed input).
  static SupportIndex zeros(int n);

  int n() const { return m_.n(); }
  bool empty() const { return m_.empty(); }

  /// The underlying dense matrix (read-only; mutate via set/add).
  const Matrix& matrix() const { return m_; }

  /// Move the matrix out; the index is left empty.
  Matrix release();

  double at(int i, int j) const { return m_.at(i, j); }

  /// Write entry (i, j).  Sub-tolerance values are snapped to exact zero.
  /// O(1) when the entry stays inside/outside the support, O(degree) when
  /// it enters or leaves (sorted insert/erase in two adjacency lists).
  /// Defined inline: this is the innermost write of every peeling round.
  void set(int i, int j, double v) {
    if (approx_zero(v)) v = 0.0;
    double& cell = m_.at(i, j);
    const double old = cell;
    if (v == old) return;
    row_sum_[i] += v - old;
    col_sum_[j] += v - old;
    cell = v;
    const bool was = old != 0.0;
    const bool now = v != 0.0;
    if (was != now) update_support(i, j, now);
  }

  /// set(i, j, at(i, j) + dv).
  void add(int i, int j, double dv) { set(i, j, m_.at(i, j) + dv); }

  // ---- O(1) aggregates -------------------------------------------------
  int nnz() const { return nnz_; }
  int row_nnz(int i) const { return static_cast<int>(row_adj_[i].size()); }
  int col_nnz(int j) const { return static_cast<int>(col_adj_[j].size()); }
  /// Incrementally maintained sums (scan-exact at build, then drifts by
  /// accumulated round-off — fine for tolerance-scale decisions).
  Time row_sum(int i) const { return row_sum_[i]; }
  Time col_sum(int j) const { return col_sum_[j]; }

  // ---- O(N) / O(nnz) aggregates ---------------------------------------
  /// max over rows and columns of the incremental sums (Theorem 2's rho).
  Time rho() const;
  /// max nonzeros in any row or column (Theorem 2's tau), from the cached
  /// per-line counts.
  int tau() const;
  /// Largest entry, by iterating the support (O(nnz)).
  double max_entry() const;
  /// Sum of all entries, from the incremental row sums (O(N)).
  Time total() const;

  // ---- support structure ----------------------------------------------
  /// Columns j with m(i, j) != 0, ascending.  Exact — no stale entries.
  const std::vector<int>& row_support(int i) const { return row_adj_[i]; }
  /// Rows i with m(i, j) != 0, ascending.
  const std::vector<int>& col_support(int j) const { return col_adj_[j]; }

  /// Ordered O(degree) re-scan of row i over its support; bit-identical to
  /// Matrix::row_sum(i) because every skipped entry is exactly 0.0.
  Time row_sum_exact(int i) const;
  Time col_sum_exact(int j) const;

  /// Total heap capacity currently held, in elements (dense storage plus
  /// every adjacency list) — sampled by the online core's alloc-event
  /// accounting to prove recycled slots stop allocating at steady state.
  std::size_t capacity_footprint() const;

  /// Reserve every adjacency list to full density (n entries), making the
  /// index's capacity independent of the shape of the matrix it currently
  /// holds.  A recycled slot whose index is dense-reserved can be re-seated
  /// with any n x n demand without allocating — without this, a long
  /// arrival stream keeps breaking per-row nnz records in recycled slots
  /// and the allocation high-water mark creeps forever.
  void reserve_dense();

 private:
  /// Slow path of set(): entry (i, j) entered (`now`) or left the support.
  void update_support(int i, int j, bool now);

  Matrix m_;
  std::vector<std::vector<int>> row_adj_;
  std::vector<std::vector<int>> col_adj_;
  std::vector<Time> row_sum_;
  std::vector<Time> col_sum_;
  int nnz_ = 0;
};

}  // namespace reco
