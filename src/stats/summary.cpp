#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reco {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * (static_cast<double>(xs.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(xs.size());
  const double inv = xs.empty() ? 0.0 : 1.0 / static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cdf.emplace_back(xs[i], static_cast<double>(i + 1) * inv);
  }
  return cdf;
}

double normalized_ratio(const std::vector<double>& numer, const std::vector<double>& denom) {
  const double d = mean(denom);
  return d > 0.0 ? mean(numer) / d : 0.0;
}

std::vector<double> elementwise_ratio(const std::vector<double>& numer,
                                      const std::vector<double>& denom) {
  std::vector<double> out;
  const std::size_t n = std::min(numer.size(), denom.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (denom[i] > 0.0) out.push_back(numer[i] / denom[i]);
  }
  return out;
}

}  // namespace reco
