// Descriptive statistics used by every experiment: means, percentiles
// (the paper reports avg and 95-percentile), CDFs, and normalized ratios.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace reco {

double mean(const std::vector<double>& xs);

/// Nearest-rank percentile, p in [0, 100].  Empty input -> 0.
double percentile(std::vector<double> xs, double p);

/// Empirical CDF points (x, F(x)), one per sample, x ascending.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> xs);

/// The paper's headline metric:  mean(numer) / mean(denom), i.e. "how many
/// times slower than the reference is this scheme, on average".  Returns 0
/// when the reference mean is 0.
double normalized_ratio(const std::vector<double>& numer, const std::vector<double>& denom);

/// Element-wise ratio numer[i] / denom[i] (skipping zero denominators).
std::vector<double> elementwise_ratio(const std::vector<double>& numer,
                                      const std::vector<double>& denom);

}  // namespace reco
