#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "stats/summary.hpp"

namespace reco {

namespace {

// Local splitmix64 stream: reco_stats must stay below reco_trace in the
// layer graph, so it cannot use trace::Rng.  Quality is ample for
// resampling indices, and the stream is fully determined by the seed.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform index in [0, n) via Lemire's multiply-shift reduction (biased
  /// by < 2^-32 for campaign-scale n — irrelevant for resampling).
  std::size_t index(std::size_t n) {
    const std::uint64_t x = next() >> 32;
    return static_cast<std::size_t>((x * static_cast<std::uint64_t>(n)) >> 32);
  }
};

/// Percentile of the resampled statistics (nearest-rank on a sorted copy).
double stat_percentile(std::vector<double>& stats, double p) {
  return percentile(stats, p);  // takes by value; copy is intentional
}

}  // namespace

DistributionSummary summarize_distribution(const std::vector<double>& xs,
                                           const BootstrapOptions& options) {
  DistributionSummary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.p50 = percentile(xs, 50.0);
  s.p99 = percentile(xs, 99.0);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  if (xs.size() == 1) {
    s.mean_lo = s.mean_hi = s.mean;
    s.p50_lo = s.p50_hi = s.p50;
    s.p99_lo = s.p99_hi = s.p99;
    return s;
  }

  const int resamples = std::max(1, options.resamples);
  const double confidence =
      std::min(0.999999, std::max(1e-6, options.confidence));
  const double lo_pct = 100.0 * (1.0 - confidence) / 2.0;
  const double hi_pct = 100.0 - lo_pct;

  SplitMix64 rng{options.seed};
  std::vector<double> resample(xs.size());
  std::vector<double> means;
  std::vector<double> p50s;
  std::vector<double> p99s;
  means.reserve(static_cast<std::size_t>(resamples));
  p50s.reserve(static_cast<std::size_t>(resamples));
  p99s.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      resample[i] = xs[rng.index(xs.size())];
    }
    means.push_back(mean(resample));
    p50s.push_back(percentile(resample, 50.0));
    p99s.push_back(percentile(resample, 99.0));
  }
  s.mean_lo = stat_percentile(means, lo_pct);
  s.mean_hi = stat_percentile(means, hi_pct);
  s.p50_lo = stat_percentile(p50s, lo_pct);
  s.p50_hi = stat_percentile(p50s, hi_pct);
  s.p99_lo = stat_percentile(p99s, lo_pct);
  s.p99_hi = stat_percentile(p99s, hi_pct);
  return s;
}

}  // namespace reco
