// Bootstrap confidence intervals for Monte-Carlo campaign aggregates.
//
// A reliability campaign runs N seeded replications per cell and reports
// distribution statistics (mean, p50, p99) per metric.  With N in the
// dozens-to-hundreds range, point estimates alone are misleading — two
// recovery policies whose mean stranded demand differs by less than the
// replication noise are indistinguishable.  The percentile bootstrap
// quantifies that noise: resample the N replications with replacement B
// times, recompute the statistic on each resample, and report the
// [alpha/2, 1-alpha/2] quantiles of the resampled statistics.
//
// Determinism: resampling uses an internal splitmix64 stream seeded by the
// caller, so a campaign report is byte-identical across runs, thread
// counts, and checkpoint/resume (reco_stats sits below reco_trace in the
// layer graph, so this deliberately does not use trace::Rng).
#pragma once

#include <cstdint>
#include <vector>

namespace reco {

/// One summarized metric distribution: point estimates plus bootstrap CIs.
struct DistributionSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double mean_lo = 0.0;  ///< bootstrap CI bounds for the mean
  double mean_hi = 0.0;
  double p50 = 0.0;
  double p50_lo = 0.0;
  double p50_hi = 0.0;
  double p99 = 0.0;
  double p99_lo = 0.0;
  double p99_hi = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct BootstrapOptions {
  int resamples = 1000;       ///< B; clamped to >= 1
  double confidence = 0.95;   ///< CI mass, in (0, 1)
  std::uint64_t seed = 0x5eed0002u;  ///< resampling stream seed
};

/// Summarize `xs` with percentile-bootstrap CIs on mean/p50/p99.  Empty
/// input returns an all-zero summary; a single sample collapses every CI
/// to the point estimate.
DistributionSummary summarize_distribution(const std::vector<double>& xs,
                                           const BootstrapOptions& options = {});

}  // namespace reco
