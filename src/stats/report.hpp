// Fixed-width console tables shared by all bench binaries, so every
// experiment's output has the same, diffable shape:
//
//   == Fig. 4(a): reconfiguration frequency ============
//   density   Reco-Sin   Solstice   ratio   paper
//   sparse        12.3       31.8   2.58x   2.58x
#pragma once

#include <string>
#include <vector>

namespace reco {

/// A simple right-aligned text table with a heading.
class ReportTable {
 public:
  explicit ReportTable(std::string title);

  /// Set the column headers (defines the column count).
  void set_header(std::vector<std::string> header);

  /// Add one row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Render with a banner, padded columns, and a trailing blank line.
  std::string to_string() const;

  /// Shorthand: render and print to stdout.
  void print() const;

  /// Export the same header + rows as CSV (title becomes a `# comment`).
  void save_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string fmt_double(double x, int precision = 2);
std::string fmt_ratio(double x, int precision = 2);  ///< "3.44x"
std::string fmt_time(double seconds);                ///< auto us/ms/s units

}  // namespace reco
