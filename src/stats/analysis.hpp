// Schedule diagnostics: where did the time go?
//
// Decomposes a circuit schedule's executed timeline into transmission /
// reconfiguration / stranded-port-idle components and renders ASCII Gantt
// charts of slice schedules — the debugging lens used while matching the
// paper's figures, kept as a public utility.
#pragma once

#include <string>
#include <vector>

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/slice.hpp"
#include "core/types.hpp"

namespace reco {

/// Executed-time breakdown of a single-coflow circuit schedule.
struct TimeBreakdown {
  Time cct = 0.0;
  Time transmission = 0.0;   ///< fabric held with at least one live circuit
  Time reconfiguration = 0.0;
  /// Sum over active ports of time the fabric was transmitting while that
  /// port's own circuit had already drained (the all-stop stranding cost
  /// that regularization is designed to shrink).
  Time stranded_port_time = 0.0;
  int establishments = 0;
};

/// Replay `schedule` against `demand` (all-stop semantics, early stop) and
/// attribute every second of fabric time.
TimeBreakdown analyze_time_breakdown(const CircuitSchedule& schedule, const Matrix& demand,
                                     Time delta);

/// ASCII Gantt chart of a slice schedule: one row per (direction, port),
/// `width` character columns across the makespan.  Busy cells show the
/// coflow id (mod 10), idle cells '.', multi-owner cells '!' (a port
/// violation).  Intended for small examples and documentation.
std::string render_gantt(const SliceSchedule& schedule, int num_ports, int width = 72);

}  // namespace reco
