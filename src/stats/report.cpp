#include "stats/report.hpp"

#include "stats/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace reco {

ReportTable::ReportTable(std::string title) : title_(std::move(title)) {}

void ReportTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void ReportTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("ReportTable::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string ReportTable::to_string() const {
  // Column widths from header + all rows.
  std::vector<std::size_t> width(header_.size(), 0);
  const auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream out;
  std::string banner = "== " + title_ + " ";
  while (banner.size() < 68) banner.push_back('=');
  out << banner << '\n';

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (c == 0) {
        // First column left-aligned (labels).
        out << row[c] << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << row[c];
      }
      out << (c + 1 == row.size() ? "" : "  ");
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  out << '\n';
  return out.str();
}

void ReportTable::print() const { std::fputs(to_string().c_str(), stdout); }

void ReportTable::save_csv(const std::string& path) const {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ReportTable::save_csv: cannot open " + path);
  out << "# " << title_ << '\n';
  write_csv(out, header_, rows_);
  if (!out) throw std::runtime_error("ReportTable::save_csv: write failed for " + path);
}

std::string fmt_double(double x, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << x;
  return out.str();
}

std::string fmt_ratio(double x, int precision) { return fmt_double(x, precision) + "x"; }

std::string fmt_time(double seconds) {
  if (seconds < 1e-3) return fmt_double(seconds * 1e6, 1) + "us";
  if (seconds < 1.0) return fmt_double(seconds * 1e3, 2) + "ms";
  return fmt_double(seconds, 3) + "s";
}

}  // namespace reco
