#include "stats/csv.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace reco {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    out << csv_escape(row[c]) << (c + 1 == row.size() ? "" : ",");
  }
  out << '\n';
}

void write_csv(std::ostream& out, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  if (!header.empty()) write_csv_row(out, header);
  for (const auto& row : rows) write_csv_row(out, row);
}

void write_slices_csv(std::ostream& out, const SliceSchedule& schedule) {
  std::ostringstream buffer;
  buffer.precision(12);
  write_csv_row(out, {"start", "end", "src", "dst", "coflow"});
  for (const FlowSlice& s : schedule) {
    buffer.str("");
    buffer << s.start;
    const std::string start = buffer.str();
    buffer.str("");
    buffer << s.end;
    write_csv_row(out, {start, buffer.str(), std::to_string(s.src), std::to_string(s.dst),
                        std::to_string(s.coflow)});
  }
}

void ensure_parent_directory(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    throw std::runtime_error("cannot create directory " + parent.string() + " for " + path +
                             ": " + ec.message());
  }
}

void save_csv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv: cannot open " + path);
  write_csv(out, header, rows);
  if (!out) throw std::runtime_error("save_csv: write failed for " + path);
}

}  // namespace reco
