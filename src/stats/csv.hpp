// CSV serialization for experiment artifacts, so bench output can feed
// straight into pandas / gnuplot without scraping the console tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/slice.hpp"
#include "stats/report.hpp"

namespace reco {

/// RFC-4180-style escaping: quote fields containing commas, quotes or
/// newlines; double embedded quotes.
std::string csv_escape(const std::string& field);

/// One row, escaped and newline-terminated.
void write_csv_row(std::ostream& out, const std::vector<std::string>& row);

/// A whole table: header (if set) then rows.
void write_csv(std::ostream& out, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// Slice schedules as start,end,src,dst,coflow rows — the Gantt raw data.
void write_slices_csv(std::ostream& out, const SliceSchedule& schedule);

/// Create `path`'s missing parent directories (no-op for bare filenames).
/// Throws std::runtime_error naming the directory on failure, so "the csv
/// silently went to the wrong cwd" and "mkdir failed" are both loud.
void ensure_parent_directory(const std::string& path);

/// File convenience wrapper; creates missing parent directories and throws
/// std::runtime_error on I/O failure.
void save_csv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

}  // namespace reco
