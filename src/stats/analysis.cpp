#include "stats/analysis.hpp"

#include <algorithm>
#include <sstream>

namespace reco {

TimeBreakdown analyze_time_breakdown(const CircuitSchedule& schedule, const Matrix& demand,
                                     Time delta) {
  TimeBreakdown b;
  Matrix residual = demand;
  for (const CircuitAssignment& a : schedule.assignments) {
    Time max_rem = 0.0;
    for (const Circuit& c : a.circuits) {
      const Time rem = residual.at(c.in, c.out);
      if (rem >= kMinServiceQuantum) max_rem = std::max(max_rem, rem);
    }
    if (max_rem == 0.0) continue;
    const Time hold = std::min(a.duration, max_rem);
    b.reconfiguration += delta;
    b.transmission += hold;
    ++b.establishments;
    for (const Circuit& c : a.circuits) {
      const Time rem = residual.at(c.in, c.out);
      const Time sent = std::min(hold, rem);
      // Each circuit ties up one ingress and one egress port for `hold`;
      // anything beyond its own service is stranded port time.
      b.stranded_port_time += 2 * (hold - sent);
      residual.at(c.in, c.out) = clamp_zero(rem - sent);
    }
  }
  b.cct = b.transmission + b.reconfiguration;
  return b;
}

std::string render_gantt(const SliceSchedule& schedule, int num_ports, int width) {
  std::ostringstream out;
  const Time horizon = makespan(schedule);
  if (horizon <= 0.0 || width <= 0) return "(empty schedule)\n";
  const Time cell = horizon / width;

  const auto render_axis = [&](bool ingress) {
    for (int p = 0; p < num_ports; ++p) {
      std::string row(width, '.');
      for (const FlowSlice& s : schedule) {
        if ((ingress ? s.src : s.dst) != p) continue;
        int first = static_cast<int>(s.start / cell);
        int last = static_cast<int>((s.end - kTimeEps) / cell);
        first = std::clamp(first, 0, width - 1);
        last = std::clamp(last, 0, width - 1);
        const char mark = static_cast<char>('0' + (s.coflow % 10));
        for (int x = first; x <= last; ++x) {
          row[x] = row[x] == '.' ? mark : '!';
        }
      }
      out << (ingress ? "in " : "out") << (p < 10 ? " " : "") << p << " |" << row << "|\n";
    }
  };
  out << "time 0 .. " << horizon << " (" << width << " cols)\n";
  render_axis(true);
  render_axis(false);
  return out.str();
}

}  // namespace reco
