#include "sim/controller.hpp"

#include <algorithm>
#include <utility>

#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "matching/hungarian.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "sched/reco_sin.hpp"

namespace reco::sim {

ReplayController::ReplayController(CircuitSchedule schedule) : schedule_(std::move(schedule)) {}

std::optional<CircuitAssignment> ReplayController::next_assignment(Time /*now*/,
                                                                   const Matrix& residual) {
  while (next_ < schedule_.assignments.size()) {
    const CircuitAssignment& a = schedule_.assignments[next_++];
    for (const Circuit& c : a.circuits) {
      if (residual.at(c.in, c.out) >= kMinServiceQuantum) return a;
    }
    // All circuits drained already: skip without reconfiguring.
  }
  return std::nullopt;
}

GreedyMaxWeightController::GreedyMaxWeightController(Time delta, double day_over_delta)
    : delta_(delta), day_over_delta_(day_over_delta) {}

std::optional<CircuitAssignment> GreedyMaxWeightController::next_assignment(
    Time /*now*/, const Matrix& residual) {
  if (residual.max_entry() < kMinServiceQuantum) return std::nullopt;
  const AssignmentResult match = max_weight_assignment(residual);
  CircuitAssignment a;
  Time largest = 0.0;
  for (int i = 0; i < residual.n(); ++i) {
    const int j = match.col_of_row[i];
    const Time rem = residual.at(i, j);
    if (rem < kMinServiceQuantum) continue;
    a.circuits.push_back({i, j});
    largest = std::max(largest, rem);
  }
  if (a.circuits.empty()) {
    // Max-weight matching avoided every live entry (possible when live
    // entries clash on ports with heavier zero-entry rows): fall back to
    // serving the single largest entry.
    int bi = 0;
    int bj = 0;
    for (int i = 0; i < residual.n(); ++i) {
      for (int j = 0; j < residual.n(); ++j) {
        if (residual.at(i, j) > residual.at(bi, bj)) {
          bi = i;
          bj = j;
        }
      }
    }
    a.circuits.push_back({bi, bj});
    largest = residual.at(bi, bj);
  }
  a.duration = day_over_delta_ > 0.0 ? std::min(largest, day_over_delta_ * delta_) : largest;
  return a;
}

AdaptiveRecoController::AdaptiveRecoController(Time delta) : delta_(delta) {}

std::optional<CircuitAssignment> AdaptiveRecoController::next_assignment(
    Time /*now*/, const Matrix& residual) {
  if (residual.max_entry() < kMinServiceQuantum) return std::nullopt;
  // Regularize + stuff the residual so a perfect matching exists, then take
  // one max-min extraction — Algorithm 1 re-planned against live state.
  const Matrix prepared = stuff_granular(regularize(residual, delta_), delta_);
  if (!bottleneck_solve(prepared, scratch_)) {
    return std::nullopt;  // tolerance-scale crumbs only
  }
  CircuitAssignment a;
  a.duration = scratch_.bottleneck;
  for (int i = 0; i < prepared.n(); ++i) {
    const int j = scratch_.final_left[i];
    if (residual.at(i, j) >= kMinServiceQuantum) a.circuits.push_back({i, j});
  }
  if (a.circuits.empty()) return std::nullopt;
  return a;
}

RecoveringController::RecoveringController(std::unique_ptr<CircuitController> inner, Time delta,
                                           BvnPolicy policy, Time replan_deadline)
    : inner_(std::move(inner)), delta_(delta), policy_(policy),
      replan_deadline_(replan_deadline) {}

RecoveringController::RecoveringController(CircuitSchedule initial, Time delta, BvnPolicy policy,
                                           Time replan_deadline)
    : RecoveringController(std::make_unique<ReplayController>(std::move(initial)), delta,
                           policy, replan_deadline) {}

void RecoveringController::mark_port(PortId port, PortSide side, bool failed) {
  const auto size = static_cast<std::size_t>(port) + 1;
  if (failed_in_.size() < size) failed_in_.resize(size, 0);
  if (failed_out_.size() < size) failed_out_.resize(size, 0);
  if (side == PortSide::kIngress || side == PortSide::kBoth) failed_in_[port] = failed;
  if (side == PortSide::kEgress || side == PortSide::kBoth) failed_out_[port] = failed;
}

bool RecoveringController::any_port_failed() const {
  for (const char f : failed_in_) {
    if (f) return true;
  }
  for (const char f : failed_out_) {
    if (f) return true;
  }
  return false;
}

void RecoveringController::on_port_failed(Time now, PortId port, PortSide side) {
  mark_port(port, side, true);
  if (!degraded_) degraded_since_ = now;
  degraded_ = true;
  replan_needed_ = true;
}

void RecoveringController::on_port_repaired(Time /*now*/, PortId port, PortSide side) {
  mark_port(port, side, false);
  if (replan_deadline_ > 0.0 && !recovery_.has_value() && !any_port_failed()) {
    // Hybrid grace window paid off: every port is back and no recovery plan
    // was ever built, so the original plan simply resumes — the fault cost
    // only the degraded interval, not a replan.
    degraded_ = false;
    replan_needed_ = false;
    degraded_since_ = -1.0;
    return;
  }
  // Capacity came back: re-plan so the repaired port rejoins service.
  replan_needed_ = true;
}

void RecoveringController::on_setup_degraded(Time /*now*/,
                                             const CircuitAssignment& /*requested*/,
                                             const std::vector<Circuit>& /*established*/) {
  // A partial or failed setup broke the current plan's service matrix:
  // whatever did not latch is still in the residual, so re-plan it.
  degraded_ = true;
  replan_needed_ = true;
}

std::optional<CircuitAssignment> RecoveringController::next_assignment(Time now,
                                                                       const Matrix& residual) {
  if (!degraded_) return inner_->next_assignment(now, residual);
  const auto down = [](const std::vector<char>& mask, int p) {
    return p < static_cast<int>(mask.size()) && mask[p];
  };
  if (replan_deadline_ > 0.0 && !recovery_.has_value() && degraded_since_ >= 0.0 &&
      now + kTimeEps < degraded_since_ + replan_deadline_) {
    // Hybrid grace window: ride the old plan's surviving circuits while the
    // repair bet is still open.  A proposal with no live useful circuit
    // means waiting can only idle the fabric, so fall through and replan
    // early instead of burning the rest of the deadline.
    auto next = inner_->next_assignment(now, residual);
    if (next.has_value()) {
      for (const Circuit& c : next->circuits) {
        if (down(failed_in_, c.in) || down(failed_out_, c.out)) continue;
        if (residual.at(c.in, c.out) >= kMinServiceQuantum) return next;
      }
    }
    // Inner exhausted or fully blocked: the recovery planner takes over now.
  }
  const auto deliverable = [&]() {
    for (int i = 0; i < residual.n(); ++i) {
      if (down(failed_in_, i)) continue;
      for (int j = 0; j < residual.n(); ++j) {
        if (down(failed_out_, j)) continue;
        if (residual.at(i, j) >= kMinServiceQuantum) return true;
      }
    }
    return false;
  };
  // At most two planning rounds per decision: one because a fault was
  // just observed, one because the previous plan ran dry mid-decision.
  for (int round = 0; round < 2; ++round) {
    if (replan_needed_ || !recovery_.has_value()) {
      if (!deliverable()) return std::nullopt;  // rest is stranded until repair
      recovery_.emplace(reco_sin_surviving(residual, failed_in_, failed_out_, delta_, policy_));
      replan_needed_ = false;
      ++replans_;
      if (obs::enabled()) {
        obs::metrics().counter("faults.replans").inc();
        // A recovery replan IS the incident the flight recorder exists
        // for: dump the lead-up (port faults, degraded setups, cuts).
        obs::flight_recorder().record("recovery_replan", now,
                                      static_cast<std::int64_t>(replans_),
                                      residual.total());
        obs::flight_recorder().trigger("recovering-controller replan");
      }
    }
    auto next = recovery_->next_assignment(now, residual);
    if (next.has_value()) return next;
    replan_needed_ = true;  // plan exhausted; residual may still hold demand
  }
  return std::nullopt;
}

}  // namespace reco::sim
