#include "sim/controller.hpp"

#include <algorithm>

#include "bvn/regularization.hpp"
#include "bvn/stuffing.hpp"
#include "matching/hungarian.hpp"

namespace reco::sim {

ReplayController::ReplayController(CircuitSchedule schedule) : schedule_(std::move(schedule)) {}

std::optional<CircuitAssignment> ReplayController::next_assignment(Time /*now*/,
                                                                   const Matrix& residual) {
  while (next_ < schedule_.assignments.size()) {
    const CircuitAssignment& a = schedule_.assignments[next_++];
    for (const Circuit& c : a.circuits) {
      if (residual.at(c.in, c.out) >= kMinServiceQuantum) return a;
    }
    // All circuits drained already: skip without reconfiguring.
  }
  return std::nullopt;
}

GreedyMaxWeightController::GreedyMaxWeightController(Time delta, double day_over_delta)
    : delta_(delta), day_over_delta_(day_over_delta) {}

std::optional<CircuitAssignment> GreedyMaxWeightController::next_assignment(
    Time /*now*/, const Matrix& residual) {
  if (residual.max_entry() < kMinServiceQuantum) return std::nullopt;
  const AssignmentResult match = max_weight_assignment(residual);
  CircuitAssignment a;
  Time largest = 0.0;
  for (int i = 0; i < residual.n(); ++i) {
    const int j = match.col_of_row[i];
    const Time rem = residual.at(i, j);
    if (rem < kMinServiceQuantum) continue;
    a.circuits.push_back({i, j});
    largest = std::max(largest, rem);
  }
  if (a.circuits.empty()) {
    // Max-weight matching avoided every live entry (possible when live
    // entries clash on ports with heavier zero-entry rows): fall back to
    // serving the single largest entry.
    int bi = 0;
    int bj = 0;
    for (int i = 0; i < residual.n(); ++i) {
      for (int j = 0; j < residual.n(); ++j) {
        if (residual.at(i, j) > residual.at(bi, bj)) {
          bi = i;
          bj = j;
        }
      }
    }
    a.circuits.push_back({bi, bj});
    largest = residual.at(bi, bj);
  }
  a.duration = day_over_delta_ > 0.0 ? std::min(largest, day_over_delta_ * delta_) : largest;
  return a;
}

AdaptiveRecoController::AdaptiveRecoController(Time delta) : delta_(delta) {}

std::optional<CircuitAssignment> AdaptiveRecoController::next_assignment(
    Time /*now*/, const Matrix& residual) {
  if (residual.max_entry() < kMinServiceQuantum) return std::nullopt;
  // Regularize + stuff the residual so a perfect matching exists, then take
  // one max-min extraction — Algorithm 1 re-planned against live state.
  const Matrix prepared = stuff_granular(regularize(residual, delta_), delta_);
  if (!bottleneck_solve(prepared, scratch_)) {
    return std::nullopt;  // tolerance-scale crumbs only
  }
  CircuitAssignment a;
  a.duration = scratch_.bottleneck;
  for (int i = 0; i < prepared.n(); ++i) {
    const int j = scratch_.final_left[i];
    if (residual.at(i, j) >= kMinServiceQuantum) a.circuits.push_back({i, j});
  }
  if (a.circuits.empty()) return std::nullopt;
  return a;
}

}  // namespace reco::sim
