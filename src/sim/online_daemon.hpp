// Event-driven online scheduler daemon: the `reco_serve` engine.
//
// Coflow arrivals and epoch completions flow through the sim EventQueue;
// every decision is delegated to the sched-layer OnlineCore, so the daemon
// produces byte-identical schedules to the batch loop driver
// (`schedule_online`) — that equivalence is pinned by tests.  What the
// daemon adds over the loop:
//
//  * a pull-based CoflowSource, so a 100k-coflow stream is generated one
//    coflow at a time instead of materializing the whole workload;
//  * non-clairvoyant control flow: the loop driver peeks at the next
//    arrival to place the cut; the daemon only learns of an arrival when
//    its event fires, and cuts the running plan *then* — same kept prefix,
//    no lookahead into the future;
//  * zero steady-state allocation: small-buffer EventFn handlers, slot
//    recycling in the core, and a bounded number of outstanding events;
//  * deterministic checkpoint/restart (docs/RELIABILITY.md): every
//    outstanding event is mirrored in a typed pending-event table, so the
//    whole daemon — core slots, clock, dispatch counter, generation tags,
//    and the event queue itself — serializes to a versioned snapshot, and
//    a run resumed from it replays byte-identically (same digest, stats,
//    makespan, event count) to the uninterrupted run.
//
// Event protocol (generation-tagged; a bumped generation orphans every
// event scheduled under the old one):
//
//   arrival(t):  ingest every source coflow with arrival <= t + eps;
//                drain-replan: cut the running plan at t, replan at
//                max(t, kept-prefix end); epoch/fifo: start work iff idle.
//   replan(t):   ingest <= t + eps (late admissions between cut and replan
//                land exactly as the loop driver admits them), then plan
//                and hold (drain) — completion scheduled at full makespan.
//   complete(t): commit the whole plan (nothing cut it), then replan if
//                anything is still live.
//   fifo_done(t): serve the next admitted coflow, if any.
//   sample(t) / checkpoint(t): telemetry snapshot / periodic checkpoint
//                write; both are write-only with respect to scheduling and
//                excluded from the reported event count.
#pragma once

#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/coflow.hpp"
#include "core/types.hpp"
#include "sched/online_core.hpp"
#include "sim/event_queue.hpp"

namespace reco::sim {

/// Pull-based arrival stream, sorted by nondecreasing arrival time.
class CoflowSource {
 public:
  virtual ~CoflowSource() = default;
  /// Next coflow, or nullptr when the stream is exhausted.  The pointee is
  /// valid until the next pop() (sources may reuse one buffer).
  virtual const Coflow* peek() = 0;
  virtual void pop() = 0;
};

/// Adapts a materialized workload (sorted or not) into a CoflowSource.
class VectorSource final : public CoflowSource {
 public:
  explicit VectorSource(const std::vector<Coflow>& coflows);
  const Coflow* peek() override;
  void pop() override;

 private:
  const std::vector<Coflow>* coflows_;
  std::vector<int> by_arrival_;
  std::size_t cursor_ = 0;
};

/// Adapts any pull-style producer with `const Coflow* peek()` / `void pop()`
/// (e.g. trace::ArrivalStream, which lives below sim in the layer graph and
/// cannot inherit from CoflowSource) into a CoflowSource.
template <typename S>
class PullSource final : public CoflowSource {
 public:
  explicit PullSource(S& stream) : stream_(&stream) {}
  const Coflow* peek() override { return stream_->peek(); }
  void pop() override { stream_->pop(); }

 private:
  S* stream_;
};

struct OnlineDaemonOptions {
  OnlineCoreOptions core;
  /// Simulated-time telemetry sampling period in seconds.  > 0 schedules a
  /// recurring EventQueue event that snapshots the metrics registry into
  /// `obs::sim_sampler()` every `sample_every` sim-seconds (only while
  /// obs::enabled(); exact simulated-time windows, unlike the wall
  /// sampler).  Sampling is write-only: schedules, digest, makespan, and
  /// the reported event count are byte-identical with it on or off.
  double sample_every = 0.0;
  /// Graceful-shutdown flag (e.g. set from a SIGINT/SIGTERM handler).  The
  /// drive loop polls it between events and stops at the next event
  /// boundary — a consistent, checkpointable state — with
  /// `report.interrupted` set.  Null: never polled.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
  /// Deterministic interruption point for tests/CI: stop after this many
  /// *scheduling* events (sampler/checkpoint ticks excluded; 0 = never).
  /// Unlike a signal, the cut lands at the same event at every thread
  /// count, which is what the kill-and-resume byte-identity tests pin.
  std::uint64_t stop_after_events = 0;
  /// Periodic checkpointing: every `checkpoint_every` sim-seconds (> 0,
  /// with a non-empty `checkpoint_path`) the daemon writes a checkpoint of
  /// itself to the path (atomically, via a .tmp sibling and rename).
  /// Checkpoint ticks ride the EventQueue but never touch scheduling
  /// state, so the run is byte-identical with them on or off.
  double checkpoint_every = 0.0;
  std::string checkpoint_path;
};

/// End-of-run summary: core stats plus the daemon-level determinism and
/// latency evidence the acceptance tests key on.
struct OnlineDaemonReport {
  OnlineCoreStats stats;
  std::uint64_t digest = 0;          ///< FNV-1a over every emitted slice
  std::uint64_t events = 0;          ///< EventQueue dispatches (excluding sampler/checkpoint ticks)
  Time makespan = 0.0;               ///< sim clock at the last scheduling event
  double decision_p50_us = 0.0;      ///< per-decision latency quantiles
  double decision_p99_us = 0.0;
  double decision_mean_us = 0.0;
  double decision_max_us = 0.0;
  std::uint64_t decisions = 0;
  bool interrupted = false;          ///< stopped early (stop flag / event quota)
  std::uint64_t checkpoints_written = 0;
};

class OnlineDaemon {
 public:
  OnlineDaemon(OnlinePolicyKind kind, const OnlineDaemonOptions& options = {});

  /// Pre-size core buffers for an expected stream length.
  void reserve(std::size_t expected_coflows);

  /// Drive the event loop until the source is exhausted and every admitted
  /// coflow has finished (or a stop condition fires — see
  /// `report.interrupted`).  One daemon runs one stream.
  OnlineDaemonReport run(CoflowSource& source);

  /// Restore a saved run and drive it to completion.  `source` must be the
  /// same stream the saved run consumed (deterministic sources replay; the
  /// daemon fast-forwards it to the saved admission cursor).  The daemon
  /// must be freshly constructed with the same policy kind and options —
  /// mismatches throw std::runtime_error, as do truncated/corrupted/
  /// version-mismatched checkpoints.
  OnlineDaemonReport resume(CoflowSource& source, std::istream& checkpoint);

  /// Serialize the complete daemon state (valid between events: after an
  /// interrupted run(), or from inside a checkpoint tick).
  void save_checkpoint(std::ostream& out) const;

  const OnlineCore& core() const { return core_; }

 private:
  enum class EventKind : std::uint8_t {
    kArrival = 0,
    kReplan = 1,
    kComplete = 2,
    kFifoDone = 3,
    kSample = 4,
    kCheckpoint = 5,
  };
  /// Serializable mirror of one outstanding EventQueue entry.  `token`
  /// reproduces insertion order among equal-time events across a restore.
  struct PendingEvent {
    EventKind kind;
    Time at;
    std::uint64_t gen;
    std::uint64_t token;
  };

  void schedule_event(EventKind kind, Time at, std::uint64_t gen);
  void dispatch(EventKind kind, std::uint64_t gen, std::uint64_t token);
  void drop_pending(std::uint64_t token);

  void on_arrival(Time now);
  void on_replan(Time now, std::uint64_t gen);
  void on_complete(Time now, std::uint64_t gen);
  void on_fifo_done(Time now, std::uint64_t gen);
  void on_sample();
  void on_checkpoint();
  void schedule_next_sample();
  void write_checkpoint_file();
  void load_checkpoint(CoflowSource& source, std::istream& in);
  OnlineDaemonReport drive();

  /// Submit every source coflow with arrival <= horizon; returns how many.
  /// Mirrors the loop driver's eps-tolerant admission boundary.
  std::size_t ingest_until(Time horizon);
  void schedule_next_arrival();
  void start_if_idle(Time now);

  OnlineCore core_;
  EventQueue queue_;
  CoflowSource* source_ = nullptr;
  /// Sim-sampler period (0 = off); ticks ride the EventQueue but never
  /// touch scheduling state, so they cannot perturb the run.
  double sample_every_ = 0.0;
  std::uint64_t sample_events_ = 0;  ///< sampler dispatches, excluded from report
  const volatile std::sig_atomic_t* stop_flag_ = nullptr;
  std::uint64_t stop_after_events_ = 0;
  double checkpoint_every_ = 0.0;
  std::string checkpoint_path_;
  std::uint64_t checkpoint_events_ = 0;  ///< checkpoint dispatches, excluded from report
  std::uint64_t checkpoint_writes_ = 0;
  bool interrupted_ = false;
  /// Typed mirror of every event currently in the queue (a handful at any
  /// moment), in insertion order — the serializable half of the EventQueue.
  std::vector<PendingEvent> pending_events_;
  std::uint64_t next_token_ = 0;
  /// Sim clock at the most recent *scheduling* event — the report makespan
  /// (queue_.now() may trail into pure sampler ticks after the last slice).
  Time last_activity_ = 0.0;
  /// Bumped whenever a cut invalidates in-flight completion/replan events.
  std::uint64_t gen_ = 0;
  Time plan_base_ = 0.0;
  bool running_ = false;          ///< a plan/epoch/serve is outstanding
  bool arrival_pending_ = false;  ///< an arrival event is in the queue
};

}  // namespace reco::sim
