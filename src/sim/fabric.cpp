#include "sim/fabric.hpp"

#include <algorithm>
#include <functional>
#include <string>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "trace/rng.hpp"

namespace reco::sim {

namespace {

/// Mean busy/cct over ports that carried any traffic.
double utilization(const std::vector<Time>& busy_in, const std::vector<Time>& busy_out,
                   Time horizon) {
  if (horizon <= 0.0) return 0.0;
  double sum = 0.0;
  int active = 0;
  for (const auto* busy : {&busy_in, &busy_out}) {
    for (Time b : *busy) {
      if (b > 0.0) {
        sum += b / horizon;
        ++active;
      }
    }
  }
  return active > 0 ? sum / active : 0.0;
}

}  // namespace

namespace {
/// Sim-pid track carrying fabric-level circuit events (coflow tracks are
/// the non-negative ids, so the fabric track sits below them).
constexpr int kFabricTrack = -1;
}  // namespace

SimulationReport simulate_single_coflow(CircuitController& controller, const Matrix& demand,
                                        Time delta, const FaultModel& faults) {
  obs::ScopedSpan span("sim.single_coflow", "sim");
  if (obs::enabled()) obs::tracer().name_sim_track(kFabricTrack, "fabric");
  SimulationReport report;
  const int n = demand.n();
  span.arg("n", n);
  Matrix residual = demand;
  std::vector<Time> busy_in(n, 0.0);
  std::vector<Time> busy_out(n, 0.0);
  EventQueue queue;
  Rng fault_rng(faults.seed);

  // Actual wall time of one reconfiguration under the fault model: each
  // attempt is jittered; failed attempts (geometric) repeat in full.
  const auto sample_setup_time = [&]() {
    Time total = 0.0;
    do {
      double slowdown = 1.0;
      if (faults.jitter_fraction > 0.0) {
        slowdown += faults.jitter_fraction * fault_rng.uniform();
      }
      total += delta * slowdown;
    } while (faults.retry_probability > 0.0 &&
             fault_rng.uniform() < faults.retry_probability);
    return total;
  };

  // The decision loop is expressed as a self-scheduling chain of events:
  // decide -> (reconfigure delta) -> circuits up -> (hold) -> drained ->
  // decide...  `decide` is a named lambda stored so events can re-enter it.
  std::function<void()> decide = [&]() {
    const auto next = controller.next_assignment(queue.now(), residual);
    if (!next.has_value()) return;  // controller done: queue drains, sim ends

    // Ignore establishments with nothing useful to send (no delta charged).
    Time max_rem = 0.0;
    for (const Circuit& c : next->circuits) {
      const Time rem = residual.at(c.in, c.out);
      if (rem >= kMinServiceQuantum) max_rem = std::max(max_rem, rem);
    }
    if (max_rem == 0.0) {
      queue.schedule(queue.now(), decide);  // ask again immediately
      return;
    }

    const CircuitAssignment assignment = *next;
    const Time hold = std::min(assignment.duration, max_rem);
    const Time setup = sample_setup_time();
    ++report.reconfigurations;
    report.reconfiguration_time += setup;

    queue.schedule(queue.now() + setup, [&, assignment, hold]() {
      const Time start = queue.now();
      report.transmission_time += hold;
      if (obs::enabled()) {
        obs::tracer().sim_instant("circuit.establish", "sim.circuit", start, kFabricTrack,
                                  {{"circuits", static_cast<double>(assignment.circuits.size())}});
        obs::tracer().sim_span("hold", "sim.circuit", start, start + hold, kFabricTrack,
                               {{"circuits", static_cast<double>(assignment.circuits.size())}});
      }
      for (const Circuit& c : assignment.circuits) {
        const Time rem = residual.at(c.in, c.out);
        const Time sent = std::min(hold, rem);
        if (approx_zero(sent)) continue;
        residual.at(c.in, c.out) = clamp_zero(rem - sent);
        busy_in[c.in] += sent;
        busy_out[c.out] += sent;
        if (residual.at(c.in, c.out) < kMinServiceQuantum) {
          report.completions.push_back({c, start + sent});
          if (obs::enabled()) {
            obs::tracer().sim_instant("flow.complete", "sim.flow", start + sent, kFabricTrack,
                                      {{"in", static_cast<double>(c.in)},
                                       {"out", static_cast<double>(c.out)}});
          }
        }
      }
      if (obs::enabled()) {
        obs::tracer().sim_instant("circuit.teardown", "sim.circuit", start + hold, kFabricTrack);
      }
      queue.schedule(start + hold, decide);
    });
  };

  queue.schedule(0.0, decide);
  queue.run_all();

  std::sort(report.completions.begin(), report.completions.end(),
            [](const FlowCompletion& a, const FlowCompletion& b) {
              return a.completed_at < b.completed_at;
            });
  report.cct = queue.now();
  report.satisfied = residual.max_entry() < kMinServiceQuantum;
  report.avg_port_utilization = utilization(busy_in, busy_out, report.cct);
  report.events = queue.events_processed();
  if (obs::enabled()) {
    obs::metrics().counter("sim.reconfigurations").inc(report.reconfigurations);
    obs::metrics().counter("sim.reconfiguration_time").inc(report.reconfiguration_time);
    obs::metrics().counter("sim.transmission_time").inc(report.transmission_time);
    obs::metrics().counter("sim.events").inc(static_cast<double>(report.events));
    span.arg("reconfigurations", report.reconfigurations);
    span.arg("events", static_cast<double>(report.events));
  }
  return report;
}

SimulationReport simulate_not_all_stop_replay(const CircuitSchedule& schedule,
                                              const Matrix& demand, Time delta) {
  obs::ScopedSpan span("sim.not_all_stop_replay", "sim");
  SimulationReport report;
  const int n = demand.n();
  Matrix residual = demand;
  std::vector<Time> busy_in(n, 0.0);
  std::vector<Time> busy_out(n, 0.0);
  std::vector<Time> free_in(n, 0.0);
  std::vector<Time> free_out(n, 0.0);
  std::vector<int> peer_of_in(n, -1);
  std::vector<int> peer_of_out(n, -1);
  EventQueue queue;
  Time cct = 0.0;

  // Per-circuit timing is decided up front (ports are independent in the
  // not-all-stop model); the event queue then realizes drains in global
  // time order so completions come out chronologically sorted by nature.
  for (const CircuitAssignment& a : schedule.assignments) {
    for (const Circuit& c : a.circuits) {
      const Time rem = residual.at(c.in, c.out);
      if (rem < kMinServiceQuantum) continue;
      Time ready = std::max(free_in[c.in], free_out[c.out]);
      const bool changed = peer_of_in[c.in] != c.out || peer_of_out[c.out] != c.in;
      if (changed) {
        ready += delta;
        ++report.reconfigurations;
        report.reconfiguration_time += delta;
      }
      const Time hold = std::min(a.duration, rem);
      const Time end = ready + hold;
      residual.at(c.in, c.out) = clamp_zero(rem - hold);
      report.transmission_time += hold;
      busy_in[c.in] += hold;
      busy_out[c.out] += hold;
      free_in[c.in] = end;
      free_out[c.out] = end;
      peer_of_in[c.in] = c.out;
      peer_of_out[c.out] = c.in;
      cct = std::max(cct, end);
      if (residual.at(c.in, c.out) < kMinServiceQuantum) {
        const Circuit circuit = c;
        queue.schedule(end, [&, circuit]() {
          report.completions.push_back({circuit, queue.now()});
        });
      } else {
        queue.schedule(end, []() {});  // drain event for the event count
      }
    }
  }
  queue.run_all();

  report.cct = cct;
  report.satisfied = residual.max_entry() < kMinServiceQuantum;
  report.avg_port_utilization = utilization(busy_in, busy_out, report.cct);
  report.events = queue.events_processed();
  if (obs::enabled()) {
    obs::metrics().counter("sim.reconfigurations").inc(report.reconfigurations);
    obs::metrics().counter("sim.reconfiguration_time").inc(report.reconfiguration_time);
    obs::metrics().counter("sim.transmission_time").inc(report.transmission_time);
    obs::metrics().counter("sim.events").inc(static_cast<double>(report.events));
    span.arg("reconfigurations", report.reconfigurations);
    span.arg("events", static_cast<double>(report.events));
  }
  return report;
}

SliceReplayReport simulate_slice_schedule(const SliceSchedule& schedule, int num_ports,
                                          int num_coflows) {
  obs::ScopedSpan span("sim.slice_replay", "sim");
  span.arg("slices", static_cast<double>(schedule.size()));
  span.arg("coflows", num_coflows);
  SliceReplayReport report;
  report.cct.assign(num_coflows, 0.0);
  std::vector<Time> busy_in(num_ports, 0.0);
  std::vector<Time> busy_out(num_ports, 0.0);
  // Runtime occupancy: which slice currently owns each port.
  std::vector<int> in_owner(num_ports, -1);
  std::vector<int> out_owner(num_ports, -1);
  EventQueue queue;

  // End events are scheduled before start events so that, at equal
  // timestamps, a port hand-off (A ends exactly when B starts) is not a
  // violation — the queue breaks time ties by insertion order.
  for (std::size_t f = 0; f < schedule.size(); ++f) {
    const FlowSlice& s = schedule[f];
    queue.schedule(s.end, [&, f]() {
      const FlowSlice& slice = schedule[f];
      if (in_owner[slice.src] == static_cast<int>(f)) in_owner[slice.src] = -1;
      if (out_owner[slice.dst] == static_cast<int>(f)) out_owner[slice.dst] = -1;
      busy_in[slice.src] += slice.duration();
      busy_out[slice.dst] += slice.duration();
      if (slice.coflow >= 0 && slice.coflow < num_coflows) {
        report.cct[slice.coflow] = std::max(report.cct[slice.coflow], queue.now());
      }
      report.makespan = std::max(report.makespan, queue.now());
    });
  }
  for (std::size_t f = 0; f < schedule.size(); ++f) {
    const FlowSlice& s = schedule[f];
    queue.schedule(s.start, [&, f]() {
      const FlowSlice& slice = schedule[f];
      // A port still owned by a slice whose end is due within tolerance of
      // "now" is a hand-off racing float round-off, not a violation.
      const auto is_conflict = [&](int owner) {
        return owner != -1 && schedule[owner].end > queue.now() + kTimeEps;
      };
      if (is_conflict(in_owner[slice.src]) || is_conflict(out_owner[slice.dst])) {
        ++report.port_violations;
      }
      in_owner[slice.src] = static_cast<int>(f);
      out_owner[slice.dst] = static_cast<int>(f);
    });
  }
  queue.run_all();

  report.avg_port_utilization = utilization(busy_in, busy_out, report.makespan);
  report.events = queue.events_processed();
  if (obs::enabled()) {
    // Per-coflow service window on the simulated-time axis: first slice
    // start -> completion, one Perfetto track per coflow.
    std::vector<Time> first_start(num_coflows, -1.0);
    for (const FlowSlice& s : schedule) {
      if (s.coflow < 0 || s.coflow >= num_coflows) continue;
      if (first_start[s.coflow] < 0.0 || s.start < first_start[s.coflow]) {
        first_start[s.coflow] = s.start;
      }
    }
    for (int k = 0; k < num_coflows; ++k) {
      if (first_start[k] < 0.0) continue;  // coflow owns no slice
      obs::tracer().name_sim_track(k, "coflow " + std::to_string(k));
      obs::tracer().sim_span("coflow " + std::to_string(k), "sim.coflow", first_start[k],
                             report.cct[k], k, {{"cct", report.cct[k]}});
      obs::tracer().sim_instant("coflow.finish", "sim.coflow", report.cct[k], k);
    }
    obs::metrics().counter("sim.events").inc(static_cast<double>(report.events));
    obs::metrics().counter("sim.port_violations").inc(static_cast<double>(report.port_violations));
    span.arg("events", static_cast<double>(report.events));
    span.arg("violations", static_cast<double>(report.port_violations));
  }
  return report;
}

}  // namespace reco::sim
