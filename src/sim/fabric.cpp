#include "sim/fabric.hpp"

#include <algorithm>
#include <functional>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "trace/rng.hpp"

namespace reco::sim {

namespace {

/// Mean busy/cct over ports that carried any traffic.
double utilization(const std::vector<Time>& busy_in, const std::vector<Time>& busy_out,
                   Time horizon) {
  if (horizon <= 0.0) return 0.0;
  double sum = 0.0;
  int active = 0;
  for (const auto* busy : {&busy_in, &busy_out}) {
    for (Time b : *busy) {
      if (b > 0.0) {
        sum += b / horizon;
        ++active;
      }
    }
  }
  return active > 0 ? sum / active : 0.0;
}

}  // namespace

namespace {
/// Sim-pid track carrying fabric-level circuit events (coflow tracks are
/// the non-negative ids, so the fabric track sits below them).
constexpr int kFabricTrack = -1;
}  // namespace

SimulationReport simulate_single_coflow(CircuitController& controller, const Matrix& demand,
                                        Time delta, const FaultModel& faults) {
  FaultInjector injector(faults);
  return simulate_single_coflow(controller, demand, delta, injector);
}

SimulationReport simulate_single_coflow(CircuitController& controller, const Matrix& demand,
                                        Time delta, FaultInjector& injector) {
  obs::ScopedSpan span("sim.single_coflow", "sim");
  if (obs::enabled()) obs::tracer().name_sim_track(kFabricTrack, "fabric");
  SimulationReport report;
  const int n = demand.n();
  span.arg("n", n);
  injector.bind_ports(n);
  Matrix residual = demand;
  std::vector<Time> busy_in(n, 0.0);
  std::vector<Time> busy_out(n, 0.0);
  EventQueue queue;

  // Port liveness mirrors of the injector's state, maintained transition
  // by transition so degraded time can be integrated interval-exactly.
  std::vector<int> in_down(n, 0);
  std::vector<int> out_down(n, 0);
  int down_ports = 0;
  Time degraded_mark = 0.0;
  bool degraded = false;         ///< a fault happened; next delivery is a recovery
  Time degraded_since = -1.0;    ///< for the recovery trace span
  const auto circuit_live = [&](const Circuit& c) {
    return in_down[c.in] == 0 && out_down[c.out] == 0;
  };

  // Pop the injector's port transitions up to `now`: integrate degraded
  // time, update the masks, and notify the controller.  Faults land at
  // decision granularity — a port failing mid-hold keeps its mirror angle
  // until the next reconfiguration (flow-level semantics).
  const auto apply_faults = [&](Time now) {
    for (const PortTransition& t : injector.advance_to(now)) {
      const Time at = std::max(t.at, 0.0);
      if (down_ports > 0 && at > degraded_mark) report.degraded_time += at - degraded_mark;
      degraded_mark = std::max(degraded_mark, at);
      const int d = t.up ? -1 : 1;
      const bool was_down = in_down[t.port] > 0 || out_down[t.port] > 0;
      if (t.side == PortSide::kIngress || t.side == PortSide::kBoth) {
        in_down[t.port] = std::max(0, in_down[t.port] + d);
      }
      if (t.side == PortSide::kEgress || t.side == PortSide::kBoth) {
        out_down[t.port] = std::max(0, out_down[t.port] + d);
      }
      const bool now_down = in_down[t.port] > 0 || out_down[t.port] > 0;
      if (!was_down && now_down) ++down_ports;
      if (was_down && !now_down) --down_ports;
      if (t.up) {
        ++report.port_repairs;
        if (obs::enabled()) {
          obs::metrics().counter("faults.port_repairs").inc();
          obs::tracer().sim_instant("port.repair", "sim.fault", at, kFabricTrack,
                                    {{"port", static_cast<double>(t.port)}});
          obs::flight_recorder().record("port_repair", at, t.port,
                                        static_cast<double>(t.side));
        }
        controller.on_port_repaired(at, t.port, t.side);
      } else {
        ++report.port_failures;
        degraded = true;
        if (degraded_since < 0.0) degraded_since = at;
        if (obs::enabled()) {
          obs::metrics().counter("faults.port_failures").inc();
          obs::tracer().sim_instant("port.fail", "sim.fault", at, kFabricTrack,
                                    {{"port", static_cast<double>(t.port)}});
          obs::flight_recorder().record("port_fail", at, t.port,
                                        static_cast<double>(t.side));
        }
        controller.on_port_failed(at, t.port, t.side);
      }
    }
    if (down_ports > 0 && now > degraded_mark) report.degraded_time += now - degraded_mark;
    degraded_mark = std::max(degraded_mark, now);
  };

  // Terminal guard: a controller that keeps proposing establishments the
  // fabric cannot use (dead ports, drained circuits) must not spin.  After
  // kUselessLimit fruitless decisions we either jump to the next fault
  // transition (a repair may unblock the controller) or, with nothing
  // pending, end the run with the residual accounted as stranded.
  constexpr int kUselessLimit = 8;
  int useless_streak = 0;

  // The decision loop is expressed as a self-scheduling chain of events:
  // decide -> (reconfigure delta) -> circuits up -> (hold) -> drained ->
  // decide...  `decide` is a named lambda stored so events can re-enter it.
  std::function<void()> decide = [&]() {
    const Time now = queue.now();
    apply_faults(now);
    const auto next = controller.next_assignment(now, residual);
    if (!next.has_value()) {
      // Controller stopped.  If deliverable-later demand remains and a
      // repair is pending, idle until the repair and ask again; otherwise
      // the queue drains and the sim ends (leftovers become stranded).
      if (residual.max_entry() >= kMinServiceQuantum) {
        if (const auto repair = injector.next_repair();
            repair.has_value() && *repair > now + kTimeEps) {
          queue.schedule(*repair, decide);
        }
      }
      return;
    }

    // Keep only circuits on live ports; ignore establishments with nothing
    // useful to send (no delta charged).
    const CircuitAssignment assignment = *next;
    std::vector<Circuit> live;
    live.reserve(assignment.circuits.size());
    Time max_rem = 0.0;
    for (const Circuit& c : assignment.circuits) {
      if (!circuit_live(c)) continue;
      live.push_back(c);
      const Time rem = residual.at(c.in, c.out);
      if (rem >= kMinServiceQuantum) max_rem = std::max(max_rem, rem);
    }
    if (max_rem == 0.0) {
      if (++useless_streak >= kUselessLimit) {
        useless_streak = 0;
        if (const auto t = injector.next_transition();
            t.has_value() && *t > now + kTimeEps) {
          queue.schedule(*t, decide);
        }
        return;  // nothing will change: terminate with stranded accounting
      }
      queue.schedule(now, decide);  // ask again immediately
      return;
    }
    useless_streak = 0;

    SetupOutcome outcome = injector.sample_setup(delta, live);
    ++report.reconfigurations;
    report.reconfiguration_time += outcome.setup_time;
    if (obs::enabled()) {
      obs::metrics().counter("faults.setup_attempts").inc(outcome.attempts);
    }
    if (!outcome.established) {
      // Attempt budget exhausted: the setup failed — account and move on
      // rather than looping (the time was still burned).
      ++report.setup_failures;
      degraded = true;
      if (degraded_since < 0.0) degraded_since = now;
      if (obs::enabled()) {
        obs::metrics().counter("faults.setup_failures").inc();
        obs::tracer().sim_instant("setup.failed", "sim.fault", now + outcome.setup_time,
                                  kFabricTrack,
                                  {{"attempts", static_cast<double>(outcome.attempts)}});
        obs::flight_recorder().record("setup_failed", now + outcome.setup_time,
                                      static_cast<std::int64_t>(live.size()),
                                      static_cast<double>(outcome.attempts));
      }
      controller.on_setup_degraded(now + outcome.setup_time, assignment, {});
      queue.schedule(now + outcome.setup_time, decide);
      return;
    }
    if (outcome.established_circuits.size() < live.size()) {
      ++report.partial_setups;
      degraded = true;
      if (degraded_since < 0.0) degraded_since = now;
      if (obs::enabled()) {
        obs::metrics().counter("faults.partial_setups").inc();
        obs::tracer().sim_instant(
            "setup.partial", "sim.fault", now + outcome.setup_time, kFabricTrack,
            {{"requested", static_cast<double>(live.size())},
             {"established", static_cast<double>(outcome.established_circuits.size())}});
        obs::flight_recorder().record(
            "setup_partial", now + outcome.setup_time,
            static_cast<std::int64_t>(outcome.established_circuits.size()),
            static_cast<double>(live.size()));
      }
      controller.on_setup_degraded(now + outcome.setup_time, assignment,
                                   outcome.established_circuits);
    }
    // Hold until the largest residual among what actually latched drains.
    Time est_rem = 0.0;
    for (const Circuit& c : outcome.established_circuits) {
      const Time rem = residual.at(c.in, c.out);
      if (rem >= kMinServiceQuantum) est_rem = std::max(est_rem, rem);
    }
    if (est_rem == 0.0) {
      // Every useful crosspoint failed to latch: time is spent, re-decide.
      queue.schedule(now + outcome.setup_time, decide);
      return;
    }
    const Time hold = std::min(assignment.duration, est_rem);
    const std::vector<Circuit> circuits = std::move(outcome.established_circuits);

    queue.schedule(now + outcome.setup_time, [&, circuits, hold]() {
      const Time start = queue.now();
      report.transmission_time += hold;
      if (obs::enabled()) {
        obs::tracer().sim_instant("circuit.establish", "sim.circuit", start, kFabricTrack,
                                  {{"circuits", static_cast<double>(circuits.size())}});
        obs::tracer().sim_span("hold", "sim.circuit", start, start + hold, kFabricTrack,
                               {{"circuits", static_cast<double>(circuits.size())}});
      }
      Time delivered_this_hold = 0.0;
      for (const Circuit& c : circuits) {
        const Time rem = residual.at(c.in, c.out);
        const Time sent = std::min(hold, rem);
        if (approx_zero(sent)) continue;
        residual.at(c.in, c.out) = clamp_zero(rem - sent);
        busy_in[c.in] += sent;
        busy_out[c.out] += sent;
        report.delivered_demand += sent;
        delivered_this_hold += sent;
        if (residual.at(c.in, c.out) < kMinServiceQuantum) {
          report.completions.push_back({c, start + sent});
          if (obs::enabled()) {
            obs::tracer().sim_instant("flow.complete", "sim.flow", start + sent, kFabricTrack,
                                      {{"in", static_cast<double>(c.in)},
                                       {"out", static_cast<double>(c.out)}});
          }
        }
      }
      if (degraded && delivered_this_hold > 0.0) {
        // Useful service resumed after a fault: one recovery.
        ++report.recoveries;
        degraded = false;
        if (obs::enabled()) {
          obs::metrics().counter("faults.recoveries").inc();
          if (degraded_since >= 0.0) {
            obs::tracer().sim_span("recovery", "sim.fault", degraded_since, start,
                                   kFabricTrack);
          }
        }
        degraded_since = -1.0;
      }
      if (obs::enabled()) {
        obs::tracer().sim_instant("circuit.teardown", "sim.circuit", start + hold, kFabricTrack);
      }
      queue.schedule(start + hold, decide);
    });
  };

  queue.schedule(0.0, decide);
  queue.run_all();

  std::sort(report.completions.begin(), report.completions.end(),
            [](const FlowCompletion& a, const FlowCompletion& b) {
              return a.completed_at < b.completed_at;
            });
  report.cct = queue.now();
  if (down_ports > 0 && report.cct > degraded_mark) {
    report.degraded_time += report.cct - degraded_mark;
  }
  report.satisfied = residual.max_entry() < kMinServiceQuantum;
  report.stranded_demand = residual.total();
  report.avg_port_utilization = utilization(busy_in, busy_out, report.cct);
  report.events = queue.events_processed();
  if (obs::enabled()) {
    obs::metrics().counter("sim.reconfigurations").inc(report.reconfigurations);
    obs::metrics().counter("sim.reconfiguration_time").inc(report.reconfiguration_time);
    obs::metrics().counter("sim.transmission_time").inc(report.transmission_time);
    obs::metrics().counter("sim.events").inc(static_cast<double>(report.events));
    obs::metrics().counter("faults.stranded_demand").inc(report.stranded_demand);
    obs::metrics().counter("faults.degraded_time").inc(report.degraded_time);
    span.arg("reconfigurations", report.reconfigurations);
    span.arg("events", static_cast<double>(report.events));
  }
  return report;
}

SimulationReport simulate_not_all_stop_replay(const CircuitSchedule& schedule,
                                              const Matrix& demand, Time delta,
                                              const FaultModel& faults) {
  obs::ScopedSpan span("sim.not_all_stop_replay", "sim");
  FaultInjector injector(faults);  // validates; default = ideal switch
  SimulationReport report;
  const int n = demand.n();
  injector.bind_ports(n);
  Matrix residual = demand;
  std::vector<Time> busy_in(n, 0.0);
  std::vector<Time> busy_out(n, 0.0);
  std::vector<Time> free_in(n, 0.0);
  std::vector<Time> free_out(n, 0.0);
  std::vector<int> peer_of_in(n, -1);
  std::vector<int> peer_of_out(n, -1);
  EventQueue queue;
  Time cct = 0.0;

  // Per-circuit timing is decided up front (ports are independent in the
  // not-all-stop model); the event queue then realizes drains in global
  // time order so completions come out chronologically sorted by nature.
  // Setup faults are sampled in this same deterministic circuit order.
  for (const CircuitAssignment& a : schedule.assignments) {
    for (const Circuit& c : a.circuits) {
      const Time rem = residual.at(c.in, c.out);
      if (rem < kMinServiceQuantum) continue;
      Time ready = std::max(free_in[c.in], free_out[c.out]);
      const bool changed = peer_of_in[c.in] != c.out || peer_of_out[c.out] != c.in;
      if (changed) {
        const SetupOutcome outcome = injector.sample_setup(delta, {});
        ++report.reconfigurations;
        report.reconfiguration_time += outcome.setup_time;
        if (!outcome.established) {
          // Setup budget exhausted: the circuit never comes up.  The ports
          // burn the attempt time and keep their previous peers.
          ++report.setup_failures;
          free_in[c.in] = std::max(free_in[c.in], ready + outcome.setup_time);
          free_out[c.out] = std::max(free_out[c.out], ready + outcome.setup_time);
          if (obs::enabled()) obs::metrics().counter("faults.setup_failures").inc();
          continue;
        }
        ready += outcome.setup_time;
      }
      const Time hold = std::min(a.duration, rem);
      const Time end = ready + hold;
      residual.at(c.in, c.out) = clamp_zero(rem - hold);
      report.transmission_time += hold;
      report.delivered_demand += hold;
      busy_in[c.in] += hold;
      busy_out[c.out] += hold;
      free_in[c.in] = end;
      free_out[c.out] = end;
      peer_of_in[c.in] = c.out;
      peer_of_out[c.out] = c.in;
      cct = std::max(cct, end);
      if (residual.at(c.in, c.out) < kMinServiceQuantum) {
        const Circuit circuit = c;
        queue.schedule(end, [&, circuit]() {
          report.completions.push_back({circuit, queue.now()});
        });
      } else {
        queue.schedule(end, []() {});  // drain event for the event count
      }
    }
  }
  queue.run_all();

  report.cct = cct;
  report.satisfied = residual.max_entry() < kMinServiceQuantum;
  report.stranded_demand = residual.total();
  report.avg_port_utilization = utilization(busy_in, busy_out, report.cct);
  report.events = queue.events_processed();
  if (obs::enabled()) {
    obs::metrics().counter("sim.reconfigurations").inc(report.reconfigurations);
    obs::metrics().counter("sim.reconfiguration_time").inc(report.reconfiguration_time);
    obs::metrics().counter("sim.transmission_time").inc(report.transmission_time);
    obs::metrics().counter("sim.events").inc(static_cast<double>(report.events));
    span.arg("reconfigurations", report.reconfigurations);
    span.arg("events", static_cast<double>(report.events));
  }
  return report;
}

SliceReplayReport simulate_slice_schedule(const SliceSchedule& schedule, int num_ports,
                                          int num_coflows) {
  obs::ScopedSpan span("sim.slice_replay", "sim");
  span.arg("slices", static_cast<double>(schedule.size()));
  span.arg("coflows", num_coflows);
  SliceReplayReport report;
  report.cct.assign(num_coflows, 0.0);
  std::vector<Time> busy_in(num_ports, 0.0);
  std::vector<Time> busy_out(num_ports, 0.0);
  // Runtime occupancy: which slice currently owns each port.
  std::vector<int> in_owner(num_ports, -1);
  std::vector<int> out_owner(num_ports, -1);
  EventQueue queue;

  // End events are scheduled before start events so that, at equal
  // timestamps, a port hand-off (A ends exactly when B starts) is not a
  // violation — the queue breaks time ties by insertion order.
  for (std::size_t f = 0; f < schedule.size(); ++f) {
    const FlowSlice& s = schedule[f];
    queue.schedule(s.end, [&, f]() {
      const FlowSlice& slice = schedule[f];
      if (in_owner[slice.src] == static_cast<int>(f)) in_owner[slice.src] = -1;
      if (out_owner[slice.dst] == static_cast<int>(f)) out_owner[slice.dst] = -1;
      busy_in[slice.src] += slice.duration();
      busy_out[slice.dst] += slice.duration();
      if (slice.coflow >= 0 && slice.coflow < num_coflows) {
        report.cct[slice.coflow] = std::max(report.cct[slice.coflow], queue.now());
      }
      report.makespan = std::max(report.makespan, queue.now());
    });
  }
  for (std::size_t f = 0; f < schedule.size(); ++f) {
    const FlowSlice& s = schedule[f];
    queue.schedule(s.start, [&, f]() {
      const FlowSlice& slice = schedule[f];
      // A port still owned by a slice whose end is due within tolerance of
      // "now" is a hand-off racing float round-off, not a violation.
      const auto is_conflict = [&](int owner) {
        return owner != -1 && schedule[owner].end > queue.now() + kTimeEps;
      };
      if (is_conflict(in_owner[slice.src]) || is_conflict(out_owner[slice.dst])) {
        ++report.port_violations;
      }
      in_owner[slice.src] = static_cast<int>(f);
      out_owner[slice.dst] = static_cast<int>(f);
    });
  }
  queue.run_all();

  report.avg_port_utilization = utilization(busy_in, busy_out, report.makespan);
  report.events = queue.events_processed();
  if (obs::enabled()) {
    // Per-coflow service window on the simulated-time axis: first slice
    // start -> completion, one Perfetto track per coflow.
    std::vector<Time> first_start(num_coflows, -1.0);
    for (const FlowSlice& s : schedule) {
      if (s.coflow < 0 || s.coflow >= num_coflows) continue;
      if (first_start[s.coflow] < 0.0 || s.start < first_start[s.coflow]) {
        first_start[s.coflow] = s.start;
      }
    }
    for (int k = 0; k < num_coflows; ++k) {
      if (first_start[k] < 0.0) continue;  // coflow owns no slice
      obs::tracer().name_sim_track(k, "coflow " + std::to_string(k));
      obs::tracer().sim_span("coflow " + std::to_string(k), "sim.coflow", first_start[k],
                             report.cct[k], k, {{"cct", report.cct[k]}});
      obs::tracer().sim_instant("coflow.finish", "sim.coflow", report.cct[k], k);
    }
    obs::metrics().counter("sim.events").inc(static_cast<double>(report.events));
    obs::metrics().counter("sim.port_violations").inc(static_cast<double>(report.port_violations));
    span.arg("events", static_cast<double>(report.events));
    span.arg("violations", static_cast<double>(report.port_violations));
  }
  return report;
}

}  // namespace reco::sim
