// Fault injection for the event-driven OCS: port failures, partial
// circuit setups, and bounded reconfiguration retries, all behind one
// deterministic seeded FaultInjector.
//
// The legacy timing-only FaultModel (jitter + geometric retry) is one
// policy among several here: a FaultConfig composes
//  * scripted *port faults* (a fault trace: port p goes down at time t,
//    optionally repaired after a delay) and random ones (per-port MTBF /
//    MTTR exponential processes),
//  * *setup faults* — individual crosspoints of a requested matching fail
//    to latch (the circuit comes up partial) and whole reconfiguration
//    attempts time out, retried under bounded exponential backoff; when
//    the attempt budget is exhausted the setup is *failed*, never looped,
//  * the legacy jitter / geometric-retry timing model, now with a hard
//    attempt cap and validated parameters.
//
// Determinism: every random stream derives from FaultConfig::seed alone
// and is consumed in simulation-event order, so a (config, workload) pair
// replays the identical fault timeline at any RECO_THREADS setting.  The
// default FaultConfig (and default FaultModel) draws nothing and
// reproduces the ideal fixed-delta switch bit for bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/circuit.hpp"
#include "core/snapshot.hpp"
#include "core/types.hpp"
#include "trace/rng.hpp"

namespace reco::sim {

/// Fault model for reconfigurations (MEMS mirrors are not metronomes):
/// every reconfiguration takes delta * (1 + U[0, jitter_fraction]), and
/// with probability retry_probability it fails and must be repeated
/// (geometrically, capped at max_attempts).  The defaults reproduce the
/// ideal fixed-delta switch.
struct FaultModel {
  double jitter_fraction = 0.0;     ///< worst-case slowdown per setup
  double retry_probability = 0.0;   ///< P(one setup attempt fails)
  std::uint64_t seed = 1;           ///< deterministic fault stream
  /// Hard cap on attempts per setup; exhausting it marks the setup failed
  /// instead of looping (the pre-cap code could spin forever at p >= 1).
  int max_attempts = 64;
};

/// Throws std::invalid_argument on out-of-range parameters: negative
/// jitter, retry_probability outside [0, 1), max_attempts < 1.
void validate_fault_model(const FaultModel& model);

/// Which side of the fabric a port fault hits.
enum class PortSide : std::uint8_t { kIngress, kEgress, kBoth };

/// One scripted port fault: at `at`, `port` (on `side`) goes dark; it is
/// repaired `repair_after` seconds later, or never if repair_after < 0.
struct PortFault {
  Time at = 0.0;
  PortId port = 0;
  PortSide side = PortSide::kBoth;
  Time repair_after = -1.0;  ///< < 0: permanent
};

/// Full fault-injection configuration.  Everything defaults to "off"; the
/// default config is the ideal switch.
struct FaultConfig {
  /// Legacy timing faults (validated on construction of the injector).
  FaultModel timing;

  /// Scripted port faults (see parse_fault_trace for the text format).
  std::vector<PortFault> port_faults;

  /// Random port failures: mean time between failures per port (seconds
  /// of simulated time; 0 disables) and mean time to repair (0 = every
  /// random failure is permanent).  Both processes are exponential.
  double port_mtbf = 0.0;
  double port_mttr = 0.0;

  /// P(one reconfiguration attempt times out entirely).  Timed-out
  /// attempts retry after an exponential backoff: attempt k waits
  /// delta * min(backoff_factor^(k-1), backoff_cap) before retrying.
  double setup_timeout_probability = 0.0;
  double backoff_factor = 2.0;
  double backoff_cap = 32.0;  ///< cap on the backoff multiple of delta

  /// P(one crosspoint of an otherwise successful setup fails to latch):
  /// the circuit comes up partial; unlatched circuits carry no traffic.
  double crosspoint_failure_probability = 0.0;

  std::uint64_t seed = 1;
};

/// Throws std::invalid_argument on out-of-range parameters (probabilities
/// outside their domain, negative times, backoff_factor < 1, ...).
void validate_fault_config(const FaultConfig& config);

/// One port state change, reported to the fabric in time order.
struct PortTransition {
  Time at = 0.0;
  PortId port = 0;
  PortSide side = PortSide::kBoth;
  bool up = false;  ///< true: repair; false: failure
};

/// Outcome of one circuit establishment under the fault model.
struct SetupOutcome {
  Time setup_time = 0.0;  ///< total wall time: attempts + backoff waits
  int attempts = 1;
  bool established = false;  ///< false: attempt budget exhausted
  std::vector<Circuit> established_circuits;  ///< latched subset
  std::vector<Circuit> failed_circuits;       ///< requested minus latched
};

/// Deterministic fault source consumed by the simulators.  One injector
/// drives one run; its streams advance with the simulation clock.
class FaultInjector {
 public:
  /// Ideal switch: no faults, no random draws.
  FaultInjector() : FaultInjector(FaultConfig{}) {}

  /// Validates `config` (throws std::invalid_argument on bad parameters).
  explicit FaultInjector(FaultConfig config);

  /// Legacy policy: the timing-only FaultModel, validated.
  explicit FaultInjector(const FaultModel& legacy);

  /// Bind the injector to an n-port fabric: materializes the random port
  /// failure streams and checks scripted faults against the port range.
  /// Called by the simulators at start; idempotent (first call wins).
  void bind_ports(int num_ports);

  /// Pop every port transition with `at <= now`, in time order, updating
  /// the up/down state.  The fabric applies these to its masks and
  /// notifies the controller.
  std::vector<PortTransition> advance_to(Time now);

  /// Earliest pending transition of any kind / of repairs only.
  std::optional<Time> next_transition() const;
  std::optional<Time> next_repair() const;

  /// Current port state (after the last advance_to).
  bool ingress_up(PortId port) const;
  bool egress_up(PortId port) const;
  bool circuit_ports_up(const Circuit& c) const {
    return ingress_up(c.in) && egress_up(c.out);
  }
  int ports_down() const { return ports_down_; }

  /// Sample one establishment of `requested` taking nominal time `delta`.
  /// Consumes: per attempt, one jitter draw (iff jitter_fraction > 0), one
  /// timeout draw (iff setup_timeout_probability > 0), one legacy retry
  /// draw (iff retry_probability > 0); on success one draw per requested
  /// circuit (iff crosspoint_failure_probability > 0) — so the default
  /// config consumes nothing and returns exactly delta.
  SetupOutcome sample_setup(Time delta, const std::vector<Circuit>& requested);

  const FaultConfig& config() const { return config_; }

  /// Serialize the mutable mid-run state: both RNG stream positions, the
  /// pending renewal-process transitions, and the port up/down counters.
  /// The FaultConfig itself is NOT serialized — load_state requires an
  /// injector constructed from the same config (the checkpoint modules
  /// store a config fingerprint alongside and verify it), after which the
  /// restored injector replays the exact fault timeline the saved one
  /// would have produced.
  void save_state(SnapshotWriter& out) const;
  void load_state(SnapshotReader& in);

 private:
  void push_fault(const PortFault& fault);
  void apply(const PortTransition& t);

  FaultConfig config_;
  Rng setup_rng_;
  Rng port_rng_;
  int num_ports_ = 0;
  bool bound_ = false;
  // Pending transitions, kept sorted by (at, seq) — fault counts are tens
  // to thousands per run, a sorted vector beats a heap's constant here.
  struct Pending {
    PortTransition t;
    std::uint64_t seq = 0;
    bool random = false;  ///< from the MTBF process (reseeds on repair)
  };
  std::vector<Pending> pending_;
  std::uint64_t next_seq_ = 0;
  // Down-counters instead of booleans: overlapping scripted faults on the
  // same port stack, and the port is up only when every fault cleared.
  std::vector<int> ingress_down_;
  std::vector<int> egress_down_;
  int ports_down_ = 0;
};

/// Parse a scripted fault trace, one fault per line:
///
///   # comment / blank lines ignored
///   <time_s> <port> <in|out|both> <repair_delay_s | never>
///
/// Throws std::runtime_error naming the offending line on malformed input
/// (bad numbers, NaN/negative times, negative ports) via the shared
/// trace/line_reader.hpp diagnostics, matching read_trace's "<who> line N:
/// <what>" shape.  `num_ports >= 0` additionally rejects ports outside the
/// fabric with a line-numbered error (instead of the generic range check
/// at bind time); < 0 leaves the range check to bind_ports.
std::vector<PortFault> parse_fault_trace(std::istream& in, int num_ports = -1);

/// File wrapper for parse_fault_trace.
std::vector<PortFault> load_fault_trace(const std::string& path, int num_ports = -1);

}  // namespace reco::sim
