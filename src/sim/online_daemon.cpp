#include "sim/online_daemon.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"

namespace reco::sim {

VectorSource::VectorSource(const std::vector<Coflow>& coflows) : coflows_(&coflows) {
  by_arrival_.resize(coflows.size());
  std::iota(by_arrival_.begin(), by_arrival_.end(), 0);
  // Same stable order as schedule_online's admission sequence.
  std::stable_sort(by_arrival_.begin(), by_arrival_.end(), [&](int a, int b) {
    return coflows[a].arrival < coflows[b].arrival;
  });
}

const Coflow* VectorSource::peek() {
  if (cursor_ >= by_arrival_.size()) return nullptr;
  return &(*coflows_)[static_cast<std::size_t>(by_arrival_[cursor_])];
}

void VectorSource::pop() { ++cursor_; }

OnlineDaemon::OnlineDaemon(OnlinePolicyKind kind, const OnlineDaemonOptions& options)
    : core_(kind, options.core), sample_every_(options.sample_every) {}

void OnlineDaemon::reserve(std::size_t expected_coflows) { core_.reserve(expected_coflows); }

OnlineDaemonReport OnlineDaemon::run(CoflowSource& source) {
  source_ = &source;
  last_activity_ = queue_.now();
  if (sample_every_ > 0.0 && obs::enabled()) {
    obs::sim_sampler().sample(queue_.now());  // delta base for the first window
    schedule_next_sample();
  }
  schedule_next_arrival();
  queue_.run_all();
  source_ = nullptr;

  OnlineDaemonReport report;
  report.stats = core_.stats();
  report.digest = core_.digest();
  report.events = queue_.events_processed() - sample_events_;
  report.makespan = last_activity_;
  const DecisionLatencyRecorder& lat = core_.latency();
  report.decisions = lat.count();
  report.decision_p50_us = lat.quantile_us(0.5);
  report.decision_p99_us = lat.quantile_us(0.99);
  report.decision_mean_us = lat.mean_us();
  report.decision_max_us = lat.max_us();
  return report;
}

std::size_t OnlineDaemon::ingest_until(Time horizon) {
  std::size_t admitted = 0;
  while (const Coflow* c = source_->peek()) {
    if (c->arrival > horizon) break;
    core_.submit(*c);
    source_->pop();
    ++admitted;
  }
  return admitted;
}

void OnlineDaemon::schedule_next_arrival() {
  if (arrival_pending_) return;
  const Coflow* c = source_->peek();
  if (c == nullptr) return;
  arrival_pending_ = true;
  queue_.schedule(std::max(c->arrival, queue_.now()), [this] { on_arrival(queue_.now()); });
}

void OnlineDaemon::on_arrival(Time now) {
  last_activity_ = now;
  arrival_pending_ = false;
  // Fresh fabric = nothing live and nothing pending: any other !running_
  // state means a replan event is already queued and will pick this up.
  const bool was_idle = core_.idle() && !running_;
  const std::size_t admitted = ingest_until(now + kTimeEps);
  schedule_next_arrival();
  // An eps-boundary coflow may have been pulled in early by a replan/epoch
  // lookahead; its arrival event then delivers nothing and must not cut.
  if (admitted == 0) return;

  if (running_ && core_.policy().preempt_on_arrival()) {
    // Drain-replan: cut the running plan *now*.  Slices already started
    // keep running (the kept prefix); everything else is cancelled and the
    // residual set — plus the newcomer(s) — is replanned once the kept
    // prefix drains, but never before this arrival instant.
    ++gen_;  // orphan the held plan's completion event
    running_ = false;
    const Time epoch_end = core_.commit(now - plan_base_);
    const Time replan_at = std::max(now, plan_base_ + epoch_end);
    if (obs::enabled()) {
      obs::flight_recorder().record("cut", now, static_cast<std::int64_t>(admitted),
                                    replan_at - now);
    }
    const std::uint64_t gen = gen_;
    queue_.schedule(replan_at, [this, gen] { on_replan(queue_.now(), gen); });
  } else if (was_idle) {
    start_if_idle(now);
  }
  // running_ under epoch/fifo: newcomers wait for the epoch/serve boundary.
}

void OnlineDaemon::on_replan(Time now, std::uint64_t gen) {
  if (gen != gen_ || running_) return;
  last_activity_ = now;
  // Late-admission boundary: coflows landing within eps of the replan
  // instant join this plan, exactly as the loop driver admits them.
  ingest_until(now + kTimeEps);
  schedule_next_arrival();
  start_if_idle(now);
}

void OnlineDaemon::on_complete(Time now, std::uint64_t gen) {
  if (gen != gen_) return;
  last_activity_ = now;
  running_ = false;
  if (core_.policy().preempt_on_arrival()) {
    // No arrival cut this plan: commit it whole.  Every batch coflow
    // drains, so the fabric goes idle until the next arrival event.
    core_.commit(std::numeric_limits<Time>::infinity());
    start_if_idle(now);  // liveness backstop; no-op when idle as expected
  } else {
    // Epoch boundary: admit eps-boundary stragglers, then roll the next
    // epoch immediately if anyone is waiting.
    ingest_until(now + kTimeEps);
    schedule_next_arrival();
    start_if_idle(now);
  }
}

void OnlineDaemon::on_fifo_done(Time now, std::uint64_t gen) {
  if (gen != gen_) return;
  last_activity_ = now;
  running_ = false;
  start_if_idle(now);
}

void OnlineDaemon::on_sample() {
  ++sample_events_;
  obs::sim_sampler().sample(queue_.now());
  // Any live run keeps >= 1 real event queued (an arrival, completion,
  // replan, or fifo_done); an empty queue here means the stream drained, so
  // this tick closed the final window and the chain ends with it.
  if (!queue_.empty()) schedule_next_sample();
}

void OnlineDaemon::schedule_next_sample() {
  queue_.schedule(queue_.now() + sample_every_, [this] { on_sample(); });
}

void OnlineDaemon::start_if_idle(Time now) {
  if (running_ || core_.idle()) return;
  running_ = true;
  const std::uint64_t gen = gen_;
  if (core_.policy().serialize_batch()) {
    const Time done = core_.step_fifo(now);
    queue_.schedule(std::max(done, now), [this, gen] { on_fifo_done(queue_.now(), gen); });
  } else if (core_.policy().preempt_on_arrival()) {
    // Plan and *hold*: commit happens either at the cut (an arrival) or at
    // the completion event if nothing interrupts.
    plan_base_ = now;
    const Time makespan = core_.plan(now);
    queue_.schedule(now + makespan, [this, gen] { on_complete(queue_.now(), gen); });
  } else {
    // Epoch batching is non-preemptive: the whole plan commits up front and
    // the fabric is busy until it drains.
    plan_base_ = now;
    core_.plan(now);
    const Time epoch_end = core_.commit(std::numeric_limits<Time>::infinity());
    queue_.schedule(now + epoch_end, [this, gen] { on_complete(queue_.now(), gen); });
  }
}

}  // namespace reco::sim
