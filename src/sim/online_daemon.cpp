#include "sim/online_daemon.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/snapshot.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"

namespace reco::sim {

namespace {
// "RDCP" little-endian: Reco Daemon CheckPoint.
constexpr std::uint32_t kDaemonMagic = 0x50434452u;
constexpr std::uint32_t kDaemonVersion = 1;
}  // namespace

VectorSource::VectorSource(const std::vector<Coflow>& coflows) : coflows_(&coflows) {
  by_arrival_.resize(coflows.size());
  std::iota(by_arrival_.begin(), by_arrival_.end(), 0);
  // Same stable order as schedule_online's admission sequence.
  std::stable_sort(by_arrival_.begin(), by_arrival_.end(), [&](int a, int b) {
    return coflows[a].arrival < coflows[b].arrival;
  });
}

const Coflow* VectorSource::peek() {
  if (cursor_ >= by_arrival_.size()) return nullptr;
  return &(*coflows_)[static_cast<std::size_t>(by_arrival_[cursor_])];
}

void VectorSource::pop() { ++cursor_; }

OnlineDaemon::OnlineDaemon(OnlinePolicyKind kind, const OnlineDaemonOptions& options)
    : core_(kind, options.core),
      sample_every_(options.sample_every),
      stop_flag_(options.stop_flag),
      stop_after_events_(options.stop_after_events),
      checkpoint_every_(options.checkpoint_every),
      checkpoint_path_(options.checkpoint_path) {}

void OnlineDaemon::reserve(std::size_t expected_coflows) { core_.reserve(expected_coflows); }

void OnlineDaemon::schedule_event(EventKind kind, Time at, std::uint64_t gen) {
  const std::uint64_t token = next_token_++;
  pending_events_.push_back({kind, at, gen, token});
  queue_.schedule(at, [this, kind, gen, token] { dispatch(kind, gen, token); });
}

void OnlineDaemon::drop_pending(std::uint64_t token) {
  for (std::size_t i = 0; i < pending_events_.size(); ++i) {
    if (pending_events_[i].token == token) {
      pending_events_.erase(pending_events_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void OnlineDaemon::dispatch(EventKind kind, std::uint64_t gen, std::uint64_t token) {
  drop_pending(token);
  switch (kind) {
    case EventKind::kArrival:
      on_arrival(queue_.now());
      break;
    case EventKind::kReplan:
      on_replan(queue_.now(), gen);
      break;
    case EventKind::kComplete:
      on_complete(queue_.now(), gen);
      break;
    case EventKind::kFifoDone:
      on_fifo_done(queue_.now(), gen);
      break;
    case EventKind::kSample:
      on_sample();
      break;
    case EventKind::kCheckpoint:
      on_checkpoint();
      break;
  }
}

OnlineDaemonReport OnlineDaemon::run(CoflowSource& source) {
  source_ = &source;
  last_activity_ = queue_.now();
  if (sample_every_ > 0.0 && obs::enabled()) {
    obs::sim_sampler().sample(queue_.now());  // delta base for the first window
    schedule_next_sample();
  }
  if (checkpoint_every_ > 0.0 && !checkpoint_path_.empty()) {
    schedule_event(EventKind::kCheckpoint, queue_.now() + checkpoint_every_, gen_);
  }
  schedule_next_arrival();
  return drive();
}

OnlineDaemonReport OnlineDaemon::resume(CoflowSource& source, std::istream& checkpoint) {
  source_ = &source;
  load_checkpoint(source, checkpoint);
  if (sample_every_ > 0.0 && obs::enabled() && !queue_.empty()) {
    // Fresh process, fresh metrics registry: re-seed the sampler's delta
    // base, mirroring run()'s pre-roll sample.
    obs::sim_sampler().sample(queue_.now());
  }
  return drive();
}

OnlineDaemonReport OnlineDaemon::drive() {
  interrupted_ = false;
  while (queue_.run_one()) {
    if (queue_.empty()) break;
    const bool stop_requested = stop_flag_ != nullptr && *stop_flag_ != 0;
    const std::uint64_t scheduling_events =
        queue_.events_processed() - sample_events_ - checkpoint_events_;
    if (stop_requested ||
        (stop_after_events_ > 0 && scheduling_events >= stop_after_events_)) {
      interrupted_ = true;
      break;
    }
  }
  source_ = nullptr;

  OnlineDaemonReport report;
  report.stats = core_.stats();
  report.digest = core_.digest();
  report.events = queue_.events_processed() - sample_events_ - checkpoint_events_;
  report.makespan = last_activity_;
  const DecisionLatencyRecorder& lat = core_.latency();
  report.decisions = lat.count();
  report.decision_p50_us = lat.quantile_us(0.5);
  report.decision_p99_us = lat.quantile_us(0.99);
  report.decision_mean_us = lat.mean_us();
  report.decision_max_us = lat.max_us();
  report.interrupted = interrupted_;
  report.checkpoints_written = checkpoint_writes_;
  return report;
}

void OnlineDaemon::save_checkpoint(std::ostream& out) const {
  SnapshotWriter w;
  core_.save(w);
  w.put_f64(queue_.now());
  w.put_u64(queue_.events_processed());
  w.put_u64(gen_);
  w.put_f64(plan_base_);
  w.put_bool(running_);
  w.put_bool(arrival_pending_);
  w.put_f64(last_activity_);
  w.put_f64(sample_every_);
  w.put_u64(sample_events_);
  w.put_u64(checkpoint_events_);
  // Sorted by (at, token): re-scheduling in this order hands out fresh
  // EventQueue sequence numbers that reproduce the saved tie-break order.
  std::vector<PendingEvent> pending = pending_events_;
  std::sort(pending.begin(), pending.end(), [](const PendingEvent& a, const PendingEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.token < b.token;
  });
  w.put_u64(pending.size());
  for (const PendingEvent& e : pending) {
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    w.put_f64(e.at);
    w.put_u64(e.gen);
  }
  w.finish(out, kDaemonMagic, kDaemonVersion);
}

void OnlineDaemon::load_checkpoint(CoflowSource& source, std::istream& in) {
  SnapshotReader r(in, kDaemonMagic, kDaemonVersion, "daemon checkpoint");
  core_.load(r);
  const Time now = r.get_f64();
  const std::uint64_t processed = r.get_u64();
  gen_ = r.get_u64();
  plan_base_ = r.get_f64();
  running_ = r.get_bool();
  arrival_pending_ = r.get_bool();
  last_activity_ = r.get_f64();
  const double saved_sample_every = r.get_f64();
  if (saved_sample_every != sample_every_) {
    throw std::runtime_error(
        "daemon checkpoint: sample_every differs from the saved run");
  }
  sample_events_ = r.get_u64();
  checkpoint_events_ = r.get_u64();
  const std::uint64_t n_pending = r.get_u64();
  queue_.restore(now, processed);
  pending_events_.clear();
  next_token_ = 0;
  const bool checkpointing = checkpoint_every_ > 0.0 && !checkpoint_path_.empty();
  bool checkpoint_chain_live = false;
  for (std::uint64_t k = 0; k < n_pending; ++k) {
    const std::uint8_t raw_kind = r.get_u8();
    if (raw_kind > static_cast<std::uint8_t>(EventKind::kCheckpoint)) {
      throw std::runtime_error("daemon checkpoint: bad pending event kind");
    }
    const auto kind = static_cast<EventKind>(raw_kind);
    const Time at = r.get_f64();
    const std::uint64_t gen = r.get_u64();
    if (kind == EventKind::kCheckpoint) {
      // The periodic chain belongs to the process, not the run: keep the
      // saved tick only if this process is configured to checkpoint too
      // (ticks are excluded from the event count, so dropping one cannot
      // perturb the schedule or the report).
      if (!checkpointing) continue;
      checkpoint_chain_live = true;
    }
    schedule_event(kind, at, gen);
  }
  r.expect_end();
  // Replay the deterministic source past the coflows the saved run already
  // admitted; the next peek() is exactly the next unseen arrival.
  for (std::uint64_t k = 0; k < core_.stats().submitted; ++k) {
    if (source.peek() == nullptr) {
      throw std::runtime_error(
          "daemon checkpoint: coflow source is shorter than the saved run");
    }
    source.pop();
  }
  // The periodic tick that wrote this checkpoint had not yet re-armed its
  // chain when save_checkpoint ran; restore the next tick at the same
  // instant the original run scheduled it.
  if (!checkpoint_chain_live && checkpoint_every_ > 0.0 && !checkpoint_path_.empty() &&
      !queue_.empty()) {
    schedule_event(EventKind::kCheckpoint, queue_.now() + checkpoint_every_, gen_);
  }
}

void OnlineDaemon::write_checkpoint_file() {
  const std::string tmp = checkpoint_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("daemon checkpoint: cannot open " + tmp);
    }
    save_checkpoint(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("daemon checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), checkpoint_path_.c_str()) != 0) {
    throw std::runtime_error("daemon checkpoint: rename failed for " + checkpoint_path_);
  }
  ++checkpoint_writes_;
  if (obs::enabled()) obs::metrics().counter("daemon.checkpoints").inc();
}

std::size_t OnlineDaemon::ingest_until(Time horizon) {
  std::size_t admitted = 0;
  while (const Coflow* c = source_->peek()) {
    if (c->arrival > horizon) break;
    core_.submit(*c);
    source_->pop();
    ++admitted;
  }
  return admitted;
}

void OnlineDaemon::schedule_next_arrival() {
  if (arrival_pending_) return;
  const Coflow* c = source_->peek();
  if (c == nullptr) return;
  arrival_pending_ = true;
  schedule_event(EventKind::kArrival, std::max(c->arrival, queue_.now()), gen_);
}

void OnlineDaemon::on_arrival(Time now) {
  last_activity_ = now;
  arrival_pending_ = false;
  // Fresh fabric = nothing live and nothing pending: any other !running_
  // state means a replan event is already queued and will pick this up.
  const bool was_idle = core_.idle() && !running_;
  const std::size_t admitted = ingest_until(now + kTimeEps);
  schedule_next_arrival();
  // An eps-boundary coflow may have been pulled in early by a replan/epoch
  // lookahead; its arrival event then delivers nothing and must not cut.
  if (admitted == 0) return;

  if (running_ && core_.policy().preempt_on_arrival()) {
    // Drain-replan: cut the running plan *now*.  Slices already started
    // keep running (the kept prefix); everything else is cancelled and the
    // residual set — plus the newcomer(s) — is replanned once the kept
    // prefix drains, but never before this arrival instant.
    ++gen_;  // orphan the held plan's completion event
    running_ = false;
    const Time epoch_end = core_.commit(now - plan_base_);
    const Time replan_at = std::max(now, plan_base_ + epoch_end);
    if (obs::enabled()) {
      obs::flight_recorder().record("cut", now, static_cast<std::int64_t>(admitted),
                                    replan_at - now);
    }
    schedule_event(EventKind::kReplan, replan_at, gen_);
  } else if (was_idle) {
    start_if_idle(now);
  }
  // running_ under epoch/fifo: newcomers wait for the epoch/serve boundary.
}

void OnlineDaemon::on_replan(Time now, std::uint64_t gen) {
  if (gen != gen_ || running_) return;
  last_activity_ = now;
  // Late-admission boundary: coflows landing within eps of the replan
  // instant join this plan, exactly as the loop driver admits them.
  ingest_until(now + kTimeEps);
  schedule_next_arrival();
  start_if_idle(now);
}

void OnlineDaemon::on_complete(Time now, std::uint64_t gen) {
  if (gen != gen_) return;
  last_activity_ = now;
  running_ = false;
  if (core_.policy().preempt_on_arrival()) {
    // No arrival cut this plan: commit it whole.  Every batch coflow
    // drains, so the fabric goes idle until the next arrival event.
    core_.commit(std::numeric_limits<Time>::infinity());
    start_if_idle(now);  // liveness backstop; no-op when idle as expected
  } else {
    // Epoch boundary: admit eps-boundary stragglers, then roll the next
    // epoch immediately if anyone is waiting.
    ingest_until(now + kTimeEps);
    schedule_next_arrival();
    start_if_idle(now);
  }
}

void OnlineDaemon::on_fifo_done(Time now, std::uint64_t gen) {
  if (gen != gen_) return;
  last_activity_ = now;
  running_ = false;
  start_if_idle(now);
}

void OnlineDaemon::on_sample() {
  ++sample_events_;
  if (obs::enabled()) obs::sim_sampler().sample(queue_.now());
  // Any live run keeps >= 1 real event queued (an arrival, completion,
  // replan, or fifo_done); an empty queue here means the stream drained, so
  // this tick closed the final window and the chain ends with it.
  if (!queue_.empty()) schedule_next_sample();
}

void OnlineDaemon::on_checkpoint() {
  ++checkpoint_events_;  // counted before the write so the snapshot includes this tick
  write_checkpoint_file();
  if (!queue_.empty()) {
    schedule_event(EventKind::kCheckpoint, queue_.now() + checkpoint_every_, gen_);
  }
}

void OnlineDaemon::schedule_next_sample() {
  schedule_event(EventKind::kSample, queue_.now() + sample_every_, gen_);
}

void OnlineDaemon::start_if_idle(Time now) {
  if (running_ || core_.idle()) return;
  running_ = true;
  if (core_.policy().serialize_batch()) {
    const Time done = core_.step_fifo(now);
    schedule_event(EventKind::kFifoDone, std::max(done, now), gen_);
  } else if (core_.policy().preempt_on_arrival()) {
    // Plan and *hold*: commit happens either at the cut (an arrival) or at
    // the completion event if nothing interrupts.
    plan_base_ = now;
    const Time makespan = core_.plan(now);
    schedule_event(EventKind::kComplete, now + makespan, gen_);
  } else {
    // Epoch batching is non-preemptive: the whole plan commits up front and
    // the fabric is busy until it drains.
    plan_base_ = now;
    core_.plan(now);
    const Time epoch_end = core_.commit(std::numeric_limits<Time>::infinity());
    schedule_event(EventKind::kComplete, now + epoch_end, gen_);
  }
}

}  // namespace reco::sim
