// Multi-coflow event-driven OCS: coflows arrive over time, the fabric is
// all-stop, and a controller is consulted at every decision instant
// (arrival while idle, or establishment drain) with the *live residual
// demands* of all arrived, unfinished coflows.
//
// This is the dynamic-scheduling counterpart of the paper's offline
// pipelines and the home of OMCO-style [34] heuristics: no precomputed
// schedule exists because future arrivals are unknown.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/circuit.hpp"
#include "core/coflow.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"
#include "sim/faults.hpp"

namespace reco::sim {

/// One establishment decision: which circuits, which coflow each circuit
/// serves, and how long to hold.
struct MultiAssignment {
  /// Parallel arrays: circuit c serves `coflow_of[c]`'s demand.
  std::vector<Circuit> circuits;
  std::vector<int> coflow_of;  ///< indices into the simulator's coflow list
  Time duration = 0.0;
};

/// Live view handed to the controller at each decision instant.
struct FabricView {
  Time now = 0.0;
  /// Residual demand per coflow (index == position in the input list);
  /// coflows that have not arrived yet are all-zero here.
  const std::vector<Matrix>* residuals = nullptr;
  /// arrived[k] && !finished[k] is the schedulable set.
  const std::vector<char>* arrived = nullptr;
  const std::vector<char>* finished = nullptr;
  /// Coflow weights (latency sensitivity), index-aligned with residuals.
  const std::vector<double>* weights = nullptr;
  /// Port liveness under fault injection (null on an ideal fabric):
  /// failed_in[p] != 0 means ingress p is dark.  Controllers should avoid
  /// dead ports; the fabric filters them regardless.
  const std::vector<char>* failed_in = nullptr;
  const std::vector<char>* failed_out = nullptr;
};

/// Online multi-coflow decision policy.
class MultiCoflowController {
 public:
  virtual ~MultiCoflowController() = default;
  /// Next establishment, or nullopt to idle until the next arrival (the
  /// simulator re-consults then).  Returning nullopt with no arrivals
  /// pending ends the simulation.
  virtual std::optional<MultiAssignment> next_assignment(const FabricView& view) = 0;
};

/// Greedy priority-filling controller (OMCO-flavoured): walk coflows in a
/// priority order (recomputed per decision from live residuals), claim
/// each coflow's heaviest serviceable flows onto free ports, and hold
/// until the *smallest* matched residual drains — no stranded port time,
/// at the cost of more establishments.  `hold_to_largest` flips that
/// trade (drain everything matched; strands ports, fewer setups).
class GreedyPriorityController final : public MultiCoflowController {
 public:
  enum class Priority {
    kSmallestResidualFirst,  ///< clairvoyant SEBF on live residuals
    kLeastServedFirst,       ///< non-clairvoyant LAS (Aalo-flavoured)
    kWeightedSmallestFirst,  ///< rho/weight: weighted-CCT-aware SEBF
  };

  GreedyPriorityController(Time delta, Priority priority, bool hold_to_largest = false);
  std::optional<MultiAssignment> next_assignment(const FabricView& view) override;

 private:
  Time delta_;
  Priority priority_;
  bool hold_to_largest_;
  std::vector<double> served_;  ///< volume served per coflow (LAS state)
};

/// Result of a multi-coflow event-driven run.
struct MultiFabricReport {
  std::vector<Time> cct;  ///< per coflow (measured from arrival)
  int reconfigurations = 0;
  Time makespan = 0.0;
  Time total_weighted_cct = 0.0;
  bool all_served = false;
  std::uint64_t events = 0;

  // Degraded-operation accounting (all zero on an ideal run); conservation:
  // delivered_demand + stranded_demand == sum of coflow demand totals.
  Time delivered_demand = 0.0;
  Time stranded_demand = 0.0;
  int setup_failures = 0;
  int partial_setups = 0;
  int port_failures = 0;
  int port_repairs = 0;
  Time degraded_time = 0.0;
};

/// Run the all-stop fabric under `controller` until all demand drains (or
/// the controller stops while work remains — reported via all_served).
/// The injector overload runs the same loop under fault injection: dead
/// ports are filtered from every establishment, setups may time out or
/// come up partial, and undeliverable demand is accounted as stranded.
MultiFabricReport simulate_multi_coflow(MultiCoflowController& controller,
                                        const std::vector<Coflow>& coflows, Time delta);
MultiFabricReport simulate_multi_coflow(MultiCoflowController& controller,
                                        const std::vector<Coflow>& coflows, Time delta,
                                        FaultInjector& injector);

}  // namespace reco::sim
