#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/line_reader.hpp"

namespace reco::sim {

namespace {

bool bad_probability(double p) { return !(p >= 0.0) || !(p <= 1.0); }

/// Exponential with mean `mean` from one uniform draw.
Time exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform());
}

PortSide parse_side(const std::string& token) {
  if (token == "in" || token == "ingress") return PortSide::kIngress;
  if (token == "out" || token == "egress") return PortSide::kEgress;
  if (token == "both") return PortSide::kBoth;
  throw std::runtime_error("unknown side '" + token + "' (expected in|out|both)");
}

}  // namespace

void validate_fault_model(const FaultModel& model) {
  if (!(model.jitter_fraction >= 0.0) || !std::isfinite(model.jitter_fraction)) {
    throw std::invalid_argument("FaultModel: jitter_fraction must be finite and >= 0, got " +
                                std::to_string(model.jitter_fraction));
  }
  if (!(model.retry_probability >= 0.0) || model.retry_probability >= 1.0) {
    throw std::invalid_argument(
        "FaultModel: retry_probability must be in [0, 1) (>= 1 retries forever), got " +
        std::to_string(model.retry_probability));
  }
  if (model.max_attempts < 1) {
    throw std::invalid_argument("FaultModel: max_attempts must be >= 1, got " +
                                std::to_string(model.max_attempts));
  }
}

void validate_fault_config(const FaultConfig& config) {
  validate_fault_model(config.timing);
  if (bad_probability(config.setup_timeout_probability)) {
    throw std::invalid_argument("FaultConfig: setup_timeout_probability must be in [0, 1]");
  }
  if (bad_probability(config.crosspoint_failure_probability)) {
    throw std::invalid_argument("FaultConfig: crosspoint_failure_probability must be in [0, 1]");
  }
  if (!(config.port_mtbf >= 0.0) || !std::isfinite(config.port_mtbf)) {
    throw std::invalid_argument("FaultConfig: port_mtbf must be finite and >= 0");
  }
  if (!(config.port_mttr >= 0.0) || !std::isfinite(config.port_mttr)) {
    throw std::invalid_argument("FaultConfig: port_mttr must be finite and >= 0");
  }
  if (!(config.backoff_factor >= 1.0) || !std::isfinite(config.backoff_factor)) {
    throw std::invalid_argument("FaultConfig: backoff_factor must be >= 1");
  }
  if (!(config.backoff_cap >= 1.0) || !std::isfinite(config.backoff_cap)) {
    throw std::invalid_argument("FaultConfig: backoff_cap must be >= 1");
  }
  for (const PortFault& f : config.port_faults) {
    if (!std::isfinite(f.at) || f.at < 0.0) {
      throw std::invalid_argument("FaultConfig: port fault time must be finite and >= 0");
    }
    if (f.port < 0) {
      throw std::invalid_argument("FaultConfig: port fault references negative port " +
                                  std::to_string(f.port));
    }
    if (f.repair_after >= 0.0 && !std::isfinite(f.repair_after)) {
      throw std::invalid_argument("FaultConfig: port fault repair delay must be finite");
    }
  }
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)),
      setup_rng_(config_.seed),
      // Independent stream for the port process so adding port faults never
      // shifts the setup timing stream (and vice versa).
      port_rng_(config_.seed ^ 0x9e3779b97f4a7c15ull) {
  validate_fault_config(config_);
}

namespace {
FaultConfig legacy_config(const FaultModel& legacy) {
  FaultConfig config;
  config.timing = legacy;
  config.seed = legacy.seed;  // the historical FaultModel seed is the stream
  return config;
}
}  // namespace

FaultInjector::FaultInjector(const FaultModel& legacy) : FaultInjector(legacy_config(legacy)) {}

void FaultInjector::push_fault(const PortFault& fault) {
  Pending down;
  down.t = {fault.at, fault.port, fault.side, /*up=*/false};
  down.seq = next_seq_++;
  pending_.push_back(down);
  if (fault.repair_after >= 0.0) {
    Pending up;
    up.t = {fault.at + fault.repair_after, fault.port, fault.side, /*up=*/true};
    up.seq = next_seq_++;
    pending_.push_back(up);
  }
}

void FaultInjector::bind_ports(int num_ports) {
  if (bound_) return;
  bound_ = true;
  num_ports_ = num_ports;
  ingress_down_.assign(num_ports, 0);
  egress_down_.assign(num_ports, 0);
  for (const PortFault& f : config_.port_faults) {
    if (f.port >= num_ports) {
      throw std::invalid_argument("fault trace references port " + std::to_string(f.port) +
                                  " of a " + std::to_string(num_ports) + "-port fabric");
    }
    push_fault(f);
  }
  if (config_.port_mtbf > 0.0) {
    for (PortId p = 0; p < num_ports; ++p) {
      Pending down;
      down.t = {exponential(port_rng_, config_.port_mtbf), p, PortSide::kBoth, /*up=*/false};
      down.seq = next_seq_++;
      down.random = true;
      pending_.push_back(down);
    }
  }
  std::sort(pending_.begin(), pending_.end(), [](const Pending& a, const Pending& b) {
    return a.t.at != b.t.at ? a.t.at < b.t.at : a.seq < b.seq;
  });
}

void FaultInjector::apply(const PortTransition& t) {
  const int d = t.up ? -1 : 1;
  const bool was_down = ingress_down_[t.port] > 0 || egress_down_[t.port] > 0;
  if (t.side == PortSide::kIngress || t.side == PortSide::kBoth) {
    ingress_down_[t.port] = std::max(0, ingress_down_[t.port] + d);
  }
  if (t.side == PortSide::kEgress || t.side == PortSide::kBoth) {
    egress_down_[t.port] = std::max(0, egress_down_[t.port] + d);
  }
  const bool now_down = ingress_down_[t.port] > 0 || egress_down_[t.port] > 0;
  if (!was_down && now_down) ++ports_down_;
  if (was_down && !now_down) --ports_down_;
}

std::vector<PortTransition> FaultInjector::advance_to(Time now) {
  std::vector<PortTransition> out;
  while (!pending_.empty() && pending_.front().t.at <= now + kTimeEps) {
    const Pending p = pending_.front();
    pending_.erase(pending_.begin());
    apply(p.t);
    out.push_back(p.t);
    if (p.random) {
      // Continue the port's renewal process: failure -> repair (if MTTR is
      // configured) -> next failure.  Streams stay in pop order, which is
      // deterministic by (time, seq).
      Pending next;
      next.seq = next_seq_++;
      next.random = true;
      if (!p.t.up && config_.port_mttr > 0.0) {
        next.t = {p.t.at + exponential(port_rng_, config_.port_mttr), p.t.port, p.t.side,
                  /*up=*/true};
      } else if (p.t.up) {
        next.t = {p.t.at + exponential(port_rng_, config_.port_mtbf), p.t.port, p.t.side,
                  /*up=*/false};
      } else {
        continue;  // permanent random failure: the process for this port ends
      }
      const auto pos = std::upper_bound(
          pending_.begin(), pending_.end(), next, [](const Pending& a, const Pending& b) {
            return a.t.at != b.t.at ? a.t.at < b.t.at : a.seq < b.seq;
          });
      pending_.insert(pos, next);
    }
  }
  return out;
}

std::optional<Time> FaultInjector::next_transition() const {
  if (pending_.empty()) return std::nullopt;
  return pending_.front().t.at;
}

std::optional<Time> FaultInjector::next_repair() const {
  for (const Pending& p : pending_) {
    if (p.t.up) return p.t.at;
  }
  return std::nullopt;
}

bool FaultInjector::ingress_up(PortId port) const {
  if (port < 0 || port >= static_cast<PortId>(ingress_down_.size())) return true;
  return ingress_down_[port] == 0;
}

bool FaultInjector::egress_up(PortId port) const {
  if (port < 0 || port >= static_cast<PortId>(egress_down_.size())) return true;
  return egress_down_[port] == 0;
}

SetupOutcome FaultInjector::sample_setup(Time delta, const std::vector<Circuit>& requested) {
  SetupOutcome out;
  const FaultModel& timing = config_.timing;
  out.attempts = 0;
  while (true) {
    ++out.attempts;
    // Draw order matches the legacy sampler exactly (jitter, then retry)
    // so timing-only configs replay the historical fault stream bit for
    // bit; the timeout draw sits between them but costs nothing when off.
    double slowdown = 1.0;
    if (timing.jitter_fraction > 0.0) {
      slowdown += timing.jitter_fraction * setup_rng_.uniform();
    }
    out.setup_time += delta * slowdown;
    bool timed_out = false;
    if (config_.setup_timeout_probability > 0.0 &&
        setup_rng_.uniform() < config_.setup_timeout_probability) {
      timed_out = true;
    }
    bool retry = false;
    if (timing.retry_probability > 0.0 && setup_rng_.uniform() < timing.retry_probability) {
      retry = true;
    }
    if (!timed_out && !retry) break;
    if (out.attempts >= timing.max_attempts) {
      out.established = false;  // budget exhausted: failed, not looping
      return out;
    }
    if (timed_out) {
      // Bounded exponential backoff before the next attempt.  Legacy
      // geometric retries repeat immediately (historical semantics).
      const double k = std::min(std::pow(config_.backoff_factor, out.attempts - 1),
                                config_.backoff_cap);
      out.setup_time += delta * k;
    }
  }
  out.established = true;
  if (config_.crosspoint_failure_probability > 0.0) {
    for (const Circuit& c : requested) {
      if (setup_rng_.uniform() < config_.crosspoint_failure_probability) {
        out.failed_circuits.push_back(c);
      } else {
        out.established_circuits.push_back(c);
      }
    }
  } else {
    out.established_circuits = requested;
  }
  return out;
}

namespace {

void save_rng(SnapshotWriter& out, const Rng& rng) {
  const RngState st = rng.state();
  for (int k = 0; k < 4; ++k) out.put_u64(st.s[k]);
  out.put_bool(st.have_spare);
  out.put_u64(st.spare_bits);
}

void load_rng(SnapshotReader& in, Rng& rng) {
  RngState st;
  for (int k = 0; k < 4; ++k) st.s[k] = in.get_u64();
  st.have_spare = in.get_bool();
  st.spare_bits = in.get_u64();
  rng.set_state(st);
}

}  // namespace

void FaultInjector::save_state(SnapshotWriter& out) const {
  save_rng(out, setup_rng_);
  save_rng(out, port_rng_);
  out.put_i32(num_ports_);
  out.put_bool(bound_);
  out.put_u64(pending_.size());
  for (const Pending& p : pending_) {
    out.put_f64(p.t.at);
    out.put_i32(p.t.port);
    out.put_u8(static_cast<std::uint8_t>(p.t.side));
    out.put_bool(p.t.up);
    out.put_u64(p.seq);
    out.put_bool(p.random);
  }
  out.put_u64(next_seq_);
  out.put_u64(ingress_down_.size());
  for (const int d : ingress_down_) out.put_i32(d);
  out.put_u64(egress_down_.size());
  for (const int d : egress_down_) out.put_i32(d);
  out.put_i32(ports_down_);
}

void FaultInjector::load_state(SnapshotReader& in) {
  load_rng(in, setup_rng_);
  load_rng(in, port_rng_);
  num_ports_ = in.get_i32();
  bound_ = in.get_bool();
  pending_.clear();
  const std::uint64_t pending = in.get_u64();
  pending_.reserve(pending);
  for (std::uint64_t k = 0; k < pending; ++k) {
    Pending p;
    p.t.at = in.get_f64();
    p.t.port = in.get_i32();
    const std::uint8_t side = in.get_u8();
    if (side > static_cast<std::uint8_t>(PortSide::kBoth)) {
      throw std::runtime_error("FaultInjector::load_state: bad port side");
    }
    p.t.side = static_cast<PortSide>(side);
    p.t.up = in.get_bool();
    p.seq = in.get_u64();
    p.random = in.get_bool();
    pending_.push_back(p);
  }
  next_seq_ = in.get_u64();
  ingress_down_.resize(in.get_u64());
  for (int& d : ingress_down_) d = in.get_i32();
  egress_down_.resize(in.get_u64());
  for (int& d : egress_down_) d = in.get_i32();
  ports_down_ = in.get_i32();
}

std::vector<PortFault> parse_fault_trace(std::istream& in, int num_ports) {
  std::vector<PortFault> faults;
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& what) {
    trace_detail::parse_error("fault trace", lineno, what);
  };
  while (trace_detail::next_line(in, line, lineno)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (line[first] == '#') continue;
    std::istringstream ls(line);
    PortFault f;
    std::string side;
    std::string repair;
    if (!(ls >> f.at >> f.port >> side >> repair)) {
      fail("expected '<time_s> <port> <in|out|both> <repair_s|never>'");
    }
    if (!std::isfinite(f.at) || f.at < 0.0) fail("fault time must be finite and >= 0");
    if (f.port < 0) fail("port must be >= 0");
    if (num_ports >= 0 && f.port >= num_ports) {
      fail("port " + std::to_string(f.port) + " out of range for a " +
           std::to_string(num_ports) + "-port fabric");
    }
    try {
      f.side = parse_side(side);
    } catch (const std::runtime_error& e) {
      fail(e.what());
    }
    if (repair == "never" || repair == "-") {
      f.repair_after = -1.0;
    } else {
      std::istringstream rs(repair);
      if (!(rs >> f.repair_after) || !(rs >> std::ws).eof() ||
          !std::isfinite(f.repair_after) || f.repair_after < 0.0) {
        fail("repair delay must be a finite non-negative number or 'never'");
      }
    }
    std::string extra;
    if (ls >> extra) fail("trailing token '" + extra + "'");
    faults.push_back(f);
  }
  return faults;
}

std::vector<PortFault> load_fault_trace(const std::string& path, int num_ports) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_fault_trace: cannot open " + path);
  return parse_fault_trace(in, num_ports);
}

}  // namespace reco::sim
