// Event-driven OCS fabric: the paper's "trace-driven flow-level simulator"
// as an explicit discrete-event machine (Sec. V-A Methodology).
//
// Where ocs/ replays schedules analytically, this module simulates the
// switch: reconfiguration and drain instants are events, controllers are
// consulted at decision points, per-flow completions and per-port busy
// time are recorded.  The analytic executors are cross-validated against
// it property-test-style (tests/sim/), and adaptive policies — which have
// no precomputed schedule to replay — run only here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/slice.hpp"
#include "core/types.hpp"
#include "sim/controller.hpp"
#include "sim/faults.hpp"

namespace reco::sim {

/// One transmitted flow's record: which circuit, and when it finished.
struct FlowCompletion {
  Circuit circuit;
  Time completed_at = 0.0;
};

struct SimulationReport {
  Time cct = 0.0;
  Time transmission_time = 0.0;      ///< fabric-level transmitting time
  Time reconfiguration_time = 0.0;
  int reconfigurations = 0;
  bool satisfied = false;
  std::vector<FlowCompletion> completions;  ///< ordered by completion time
  /// Mean over *active* ports of (port transmit-busy time / cct).
  double avg_port_utilization = 0.0;
  std::uint64_t events = 0;

  // Degraded-operation accounting (all zero on an ideal run).  The
  // conservation invariant `delivered_demand + stranded_demand ==
  // demand.total()` holds under any fault configuration.
  Time delivered_demand = 0.0;  ///< volume actually transmitted
  Time stranded_demand = 0.0;   ///< residual left at termination
  int setup_failures = 0;       ///< setups that exhausted the attempt budget
  int partial_setups = 0;       ///< setups that latched only a subset
  int recoveries = 0;           ///< degraded -> useful-service transitions
  int port_failures = 0;
  int port_repairs = 0;
  Time degraded_time = 0.0;     ///< sim time with >= 1 port down (up to cct)
};

/// Run one coflow on an all-stop OCS under `controller` until the
/// controller stops or the demand drains.  The FaultModel overload is the
/// legacy timing-only policy; the FaultInjector overload adds port
/// failures, partial setups, and bounded setup retries (see sim/faults.hpp).
SimulationReport simulate_single_coflow(CircuitController& controller, const Matrix& demand,
                                        Time delta, const FaultModel& faults = {});
SimulationReport simulate_single_coflow(CircuitController& controller, const Matrix& demand,
                                        Time delta, FaultInjector& injector);

/// Event-driven replay of a precomputed schedule on a not-all-stop OCS
/// (per-port reconfiguration; unchanged circuits keep transmitting).
/// Accepts the same timing fault model as the all-stop path so the two are
/// symmetric; the default is the ideal switch.
SimulationReport simulate_not_all_stop_replay(const CircuitSchedule& schedule,
                                              const Matrix& demand, Time delta,
                                              const FaultModel& faults = {});

/// Multi-coflow slice replay with runtime port-constraint enforcement.
struct SliceReplayReport {
  std::vector<Time> cct;       ///< per coflow id
  Time makespan = 0.0;
  int port_violations = 0;     ///< overlapping slices detected (0 = feasible)
  double avg_port_utilization = 0.0;
  std::uint64_t events = 0;
};

SliceReplayReport simulate_slice_schedule(const SliceSchedule& schedule, int num_ports,
                                          int num_coflows);

}  // namespace reco::sim
