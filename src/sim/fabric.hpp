// Event-driven OCS fabric: the paper's "trace-driven flow-level simulator"
// as an explicit discrete-event machine (Sec. V-A Methodology).
//
// Where ocs/ replays schedules analytically, this module simulates the
// switch: reconfiguration and drain instants are events, controllers are
// consulted at decision points, per-flow completions and per-port busy
// time are recorded.  The analytic executors are cross-validated against
// it property-test-style (tests/sim/), and adaptive policies — which have
// no precomputed schedule to replay — run only here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/slice.hpp"
#include "core/types.hpp"
#include "sim/controller.hpp"

namespace reco::sim {

/// One transmitted flow's record: which circuit, and when it finished.
struct FlowCompletion {
  Circuit circuit;
  Time completed_at = 0.0;
};

struct SimulationReport {
  Time cct = 0.0;
  Time transmission_time = 0.0;      ///< fabric-level transmitting time
  Time reconfiguration_time = 0.0;
  int reconfigurations = 0;
  bool satisfied = false;
  std::vector<FlowCompletion> completions;  ///< ordered by completion time
  /// Mean over *active* ports of (port transmit-busy time / cct).
  double avg_port_utilization = 0.0;
  std::uint64_t events = 0;
};

/// Fault model for reconfigurations (MEMS mirrors are not metronomes):
/// every reconfiguration takes delta * (1 + U[0, jitter_fraction]), and
/// with probability retry_probability it fails and must be repeated
/// (geometrically).  The defaults reproduce the ideal fixed-delta switch.
struct FaultModel {
  double jitter_fraction = 0.0;     ///< worst-case slowdown per setup
  double retry_probability = 0.0;   ///< P(one setup attempt fails)
  std::uint64_t seed = 1;           ///< deterministic fault stream
};

/// Run one coflow on an all-stop OCS under `controller` until the
/// controller stops or the demand drains.
SimulationReport simulate_single_coflow(CircuitController& controller, const Matrix& demand,
                                        Time delta, const FaultModel& faults = {});

/// Event-driven replay of a precomputed schedule on a not-all-stop OCS
/// (per-port reconfiguration; unchanged circuits keep transmitting).
SimulationReport simulate_not_all_stop_replay(const CircuitSchedule& schedule,
                                              const Matrix& demand, Time delta);

/// Multi-coflow slice replay with runtime port-constraint enforcement.
struct SliceReplayReport {
  std::vector<Time> cct;       ///< per coflow id
  Time makespan = 0.0;
  int port_violations = 0;     ///< overlapping slices detected (0 = feasible)
  double avg_port_utilization = 0.0;
  std::uint64_t events = 0;
};

SliceReplayReport simulate_slice_schedule(const SliceSchedule& schedule, int num_ports,
                                          int num_coflows);

}  // namespace reco::sim
