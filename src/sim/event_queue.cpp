#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace reco::sim {

void EventQueue::schedule(Time at, EventFn fn) {
  if (at < now_ - kTimeEps) {
    throw std::logic_error("EventQueue::schedule: event in the past");
  }
  heap_.push_back({at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  now_ = e.at;
  ++processed_;
  e.fn();  // may re-enter schedule(); the entry is already off the heap
  return true;
}

void EventQueue::run_all() {
  while (run_one()) {
  }
}

}  // namespace reco::sim
