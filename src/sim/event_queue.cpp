#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace reco::sim {

void EventQueue::schedule(Time at, EventFn fn) {
  if (at < now_ - kTimeEps) {
    throw std::logic_error("EventQueue::schedule: event in the past");
  }
  heap_.push({at, next_seq_++, std::move(fn)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the (small) callback instead.
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  ++processed_;
  e.fn();
  return true;
}

void EventQueue::run_all() {
  while (run_one()) {
  }
}

}  // namespace reco::sim
