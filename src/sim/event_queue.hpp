// Discrete-event core: a time-ordered queue of callbacks.
//
// Ties are broken by insertion sequence so simulations are deterministic
// regardless of heap internals — a property the cross-validation tests
// against the analytic executors rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace reco::sim {

/// Move-only type-erased callback.  Unlike `std::function`, accepts
/// callables that are themselves move-only (e.g. lambdas capturing a
/// `unique_ptr`), and dispatch *moves* entries out of the event heap
/// instead of deep-copying captured state on every event.
class EventFn {
 public:
  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn)  // NOLINT(google-explicit-constructor): callable adaptor
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {}

  EventFn(EventFn&&) noexcept = default;
  EventFn& operator=(EventFn&&) noexcept = default;
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  void operator()() { (*impl_)(); }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void operator()() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    void operator()() override { fn(); }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule(Time at, EventFn fn);

  /// Pop and run the earliest event; returns false when empty.
  bool run_one();

  /// Run until the queue drains.
  void run_all();

  bool empty() const { return heap_.empty(); }
  Time now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Hand-managed binary heap (std::push_heap / std::pop_heap) instead of
  // std::priority_queue: top() of the adaptor is const, forcing a copy of
  // the callback on every dispatch; pop_heap rotates the earliest entry to
  // the back where it can be moved out.
  std::vector<Entry> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace reco::sim
