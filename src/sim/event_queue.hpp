// Discrete-event core: a time-ordered queue of callbacks.
//
// Ties are broken by insertion sequence so simulations are deterministic
// regardless of heap internals — a property the cross-validation tests
// against the analytic executors rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.hpp"

namespace reco::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule(Time at, EventFn fn);

  /// Pop and run the earliest event; returns false when empty.
  bool run_one();

  /// Run until the queue drains.
  void run_all();

  bool empty() const { return heap_.empty(); }
  Time now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace reco::sim
