// Discrete-event core: a time-ordered queue of callbacks.
//
// Ties are broken by insertion sequence so simulations are deterministic
// regardless of heap internals — a property the cross-validation tests
// against the analytic executors rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace reco::sim {

/// Move-only type-erased callback.  Unlike `std::function`, accepts
/// callables that are themselves move-only (e.g. lambdas capturing a
/// `unique_ptr`), and dispatch *moves* entries out of the event heap
/// instead of deep-copying captured state on every event.
///
/// Small callables (up to kInlineSize bytes, nothrow-move) live inline —
/// no heap allocation per event.  The online daemon's handlers capture a
/// pointer and a generation tag, so a 100k-event arrival stream schedules
/// without a single EventFn allocation; larger captures transparently fall
/// back to the heap (`heap_allocated()` reports which path was taken).
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(InlineModel<Decayed>) <= kInlineSize &&
                  alignof(InlineModel<Decayed>) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      impl_ = new (buf_) InlineModel<Decayed>(std::forward<F>(fn));
      inline_ = true;
    } else {
      impl_ = new HeapModel<Decayed>(std::forward<F>(fn));
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(std::move(other)); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { destroy(); }

  void operator()() { (*impl_)(); }
  explicit operator bool() const { return impl_ != nullptr; }
  /// True if this callable fell back to a heap allocation (too large or
  /// potentially-throwing move) — the zero-steady-state-alloc soak asserts
  /// the daemon's handlers never do.
  bool heap_allocated() const { return impl_ != nullptr && !inline_; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void operator()() = 0;
    /// Move-construct a copy of the concrete model into `dst` (inline
    /// storage relocation); only called on inline models.
    virtual Concept* relocate_to(void* dst) noexcept = 0;
  };
  template <typename F>
  struct InlineModel final : Concept {
    explicit InlineModel(F f) noexcept : fn(std::move(f)) {}
    void operator()() override { fn(); }
    Concept* relocate_to(void* dst) noexcept override {
      return new (dst) InlineModel<F>(std::move(fn));
    }
    F fn;
  };
  template <typename F>
  struct HeapModel final : Concept {
    explicit HeapModel(F f) : fn(std::move(f)) {}
    void operator()() override { fn(); }
    Concept* relocate_to(void*) noexcept override { return nullptr; }  // never inline
    F fn;
  };

  void destroy() {
    if (impl_ == nullptr) return;
    if (inline_) {
      impl_->~Concept();
    } else {
      delete impl_;
    }
    impl_ = nullptr;
    inline_ = false;
  }

  void move_from(EventFn&& other) noexcept {
    if (other.impl_ == nullptr) {
      impl_ = nullptr;
      inline_ = false;
      return;
    }
    if (other.inline_) {
      impl_ = other.impl_->relocate_to(buf_);
      inline_ = true;
      other.impl_->~Concept();
    } else {
      impl_ = other.impl_;
      inline_ = false;
    }
    other.impl_ = nullptr;
    other.inline_ = false;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  Concept* impl_ = nullptr;
  bool inline_ = false;
};

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule(Time at, EventFn fn);

  /// Pop and run the earliest event; returns false when empty.
  bool run_one();

  /// Run until the queue drains.
  void run_all();

  bool empty() const { return heap_.empty(); }
  Time now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Checkpoint-restore hook: reset the clock and dispatch counter of an
  /// *empty* queue to a saved position.  Callers re-schedule the pending
  /// events themselves (closures are not serializable); scheduling after
  /// restore hands out fresh sequence numbers, so re-insertion order
  /// reproduces the saved tie-break order.
  void restore(Time now, std::uint64_t processed) {
    if (!heap_.empty()) {
      throw std::logic_error("EventQueue::restore: queue must be empty");
    }
    now_ = now;
    processed_ = processed;
    next_seq_ = 0;
  }
  /// Heap-vector capacity in entries — alloc accounting for long runs (the
  /// daemon keeps a bounded number of outstanding events, so this plateaus
  /// during warm-up).
  std::size_t heap_capacity() const { return heap_.capacity(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Hand-managed binary heap (std::push_heap / std::pop_heap) instead of
  // std::priority_queue: top() of the adaptor is const, forcing a copy of
  // the callback on every dispatch; pop_heap rotates the earliest entry to
  // the back where it can be moved out.
  std::vector<Entry> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace reco::sim
