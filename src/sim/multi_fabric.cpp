#include "sim/multi_fabric.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace reco::sim {

GreedyPriorityController::GreedyPriorityController(Time delta, Priority priority,
                                                   bool hold_to_largest)
    : delta_(delta), priority_(priority), hold_to_largest_(hold_to_largest) {}

std::optional<MultiAssignment> GreedyPriorityController::next_assignment(
    const FabricView& view) {
  const std::vector<Matrix>& residuals = *view.residuals;
  const int num_coflows = static_cast<int>(residuals.size());
  if (served_.size() != residuals.size()) served_.resize(residuals.size(), 0.0);
  const auto port_dead = [&](const std::vector<char>* mask, int p) {
    return mask != nullptr && p < static_cast<int>(mask->size()) && (*mask)[p];
  };

  // Schedulable coflows, by the chosen priority over *live* state.
  std::vector<int> order;
  for (int k = 0; k < num_coflows; ++k) {
    if ((*view.arrived)[k] && !(*view.finished)[k] &&
        residuals[k].max_entry() >= kMinServiceQuantum) {
      order.push_back(k);
    }
  }
  if (order.empty()) return std::nullopt;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    switch (priority_) {
      case Priority::kSmallestResidualFirst:
        return residuals[a].rho() < residuals[b].rho();
      case Priority::kWeightedSmallestFirst: {
        // Lower residual per unit of weight goes first (weighted SJF).
        const double wa = std::max(1e-12, (*view.weights)[a]);
        const double wb = std::max(1e-12, (*view.weights)[b]);
        return residuals[a].rho() / wa < residuals[b].rho() / wb;
      }
      case Priority::kLeastServedFirst: return served_[a] < served_[b];
    }
    return a < b;
  });

  const int n = residuals[order.front()].n();
  std::vector<char> in_used(n, 0);
  std::vector<char> out_used(n, 0);
  MultiAssignment a;
  Time smallest = std::numeric_limits<Time>::infinity();
  Time largest = 0.0;

  for (int k : order) {
    // Heaviest-first flows of this coflow onto still-free ports.
    struct Candidate {
      int i;
      int j;
      Time rem;
    };
    std::vector<Candidate> candidates;
    for (int i = 0; i < n; ++i) {
      if (in_used[i] || port_dead(view.failed_in, i)) continue;
      for (int j = 0; j < n; ++j) {
        if (out_used[j] || port_dead(view.failed_out, j)) continue;
        const Time rem = residuals[k].at(i, j);
        if (rem >= kMinServiceQuantum) candidates.push_back({i, j, rem});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) { return x.rem > y.rem; });
    for (const Candidate& cand : candidates) {
      if (in_used[cand.i] || out_used[cand.j]) continue;
      in_used[cand.i] = 1;
      out_used[cand.j] = 1;
      a.circuits.push_back({cand.i, cand.j});
      a.coflow_of.push_back(k);
      smallest = std::min(smallest, cand.rem);
      largest = std::max(largest, cand.rem);
    }
  }
  if (a.circuits.empty()) return std::nullopt;

  // Hold at least delta (Lemma 1's spirit: an establishment should carry
  // at least as much transmission as it costs) and at most until the
  // chosen drain point.
  const Time drain = hold_to_largest_ ? largest : smallest;
  a.duration = std::max(drain, delta_);

  // LAS accounting: charge what this establishment will actually serve.
  for (std::size_t c = 0; c < a.circuits.size(); ++c) {
    const Circuit& circuit = a.circuits[c];
    const Time rem = residuals[a.coflow_of[c]].at(circuit.in, circuit.out);
    served_[a.coflow_of[c]] += std::min(a.duration, rem);
  }
  return a;
}

MultiFabricReport simulate_multi_coflow(MultiCoflowController& controller,
                                        const std::vector<Coflow>& coflows, Time delta) {
  FaultInjector ideal;  // draws nothing: bit-identical to the pre-fault loop
  return simulate_multi_coflow(controller, coflows, delta, ideal);
}

MultiFabricReport simulate_multi_coflow(MultiCoflowController& controller,
                                        const std::vector<Coflow>& coflows, Time delta,
                                        FaultInjector& injector) {
  MultiFabricReport report;
  const int num_coflows = static_cast<int>(coflows.size());
  report.cct.assign(num_coflows, 0.0);
  if (coflows.empty()) {
    report.all_served = true;
    return report;
  }

  std::vector<Matrix> residuals;
  residuals.reserve(coflows.size());
  for (const Coflow& c : coflows) residuals.push_back(c.demand);
  std::vector<char> arrived(num_coflows, 0);
  std::vector<char> finished(num_coflows, 0);
  std::vector<double> weights(num_coflows, 1.0);
  for (int k = 0; k < num_coflows; ++k) weights[k] = coflows[k].weight;

  // Arrival instants, ascending.
  std::vector<int> by_arrival(num_coflows);
  std::iota(by_arrival.begin(), by_arrival.end(), 0);
  std::stable_sort(by_arrival.begin(), by_arrival.end(),
                   [&](int x, int y) { return coflows[x].arrival < coflows[y].arrival; });
  std::size_t next_arrival = 0;

  int n = 0;
  for (const Coflow& c : coflows) n = std::max(n, c.demand.n());
  injector.bind_ports(n);
  std::vector<char> failed_in(n, 0);
  std::vector<char> failed_out(n, 0);
  std::vector<int> in_down(n, 0);
  std::vector<int> out_down(n, 0);
  int down_marks = 0;        // set mask entries across both sides
  Time degraded_since = 0.0;

  // Pop every injector transition up to `now`, mirroring port state into
  // the masks the view exposes and integrating degraded time exactly
  // (interval by interval, not per batch).
  const auto apply_faults = [&](Time now) {
    for (const PortTransition& t : injector.advance_to(now)) {
      const Time at = std::min(std::max(t.at, Time{0.0}), now);
      const auto touch = [&](std::vector<int>& down, std::vector<char>& mask, int p) {
        if (p < 0 || p >= n) return;
        if (t.up) {
          if (down[p] > 0 && --down[p] == 0) {
            mask[p] = 0;
            --down_marks;
          }
        } else {
          if (down[p]++ == 0) {
            mask[p] = 1;
            if (down_marks++ == 0) degraded_since = at;
          }
        }
      };
      const bool was_degraded = down_marks > 0;
      if (t.side == PortSide::kIngress || t.side == PortSide::kBoth) {
        touch(in_down, failed_in, t.port);
      }
      if (t.side == PortSide::kEgress || t.side == PortSide::kBoth) {
        touch(out_down, failed_out, t.port);
      }
      if (was_degraded && down_marks == 0) {
        report.degraded_time += std::max(Time{0.0}, at - degraded_since);
      }
      if (t.up) {
        ++report.port_repairs;
      } else {
        ++report.port_failures;
      }
    }
  };
  const auto port_dead = [&](const std::vector<char>& mask, int p) {
    return p >= 0 && p < static_cast<int>(mask.size()) && mask[p];
  };

  Time clock = 0.0;
  int remaining = num_coflows;
  int useless_streak = 0;  // guard against controllers that spin
  // Coflows with no demand at all complete at arrival.
  for (int k = 0; k < num_coflows; ++k) {
    if (residuals[k].max_entry() < kMinServiceQuantum) {
      finished[k] = 1;
      --remaining;
    }
  }

  // Next instant worth waking for when the controller idles or spins:
  // the next arrival or the next injector transition, whichever is first.
  const auto next_wake = [&]() -> std::optional<Time> {
    std::optional<Time> wake;
    if (next_arrival < by_arrival.size()) wake = coflows[by_arrival[next_arrival]].arrival;
    if (const auto t = injector.next_transition();
        t.has_value() && (!wake.has_value() || *t < *wake)) {
      wake = *t;
    }
    return wake;
  };

  while (remaining > 0) {
    apply_faults(clock);
    // Admit everything that has arrived by now.
    while (next_arrival < by_arrival.size() &&
           coflows[by_arrival[next_arrival]].arrival <= clock + kTimeEps) {
      arrived[by_arrival[next_arrival]] = 1;
      ++next_arrival;
    }

    FabricView view;
    view.now = clock;
    view.residuals = &residuals;
    view.arrived = &arrived;
    view.finished = &finished;
    view.weights = &weights;
    view.failed_in = &failed_in;
    view.failed_out = &failed_out;
    const auto decision = controller.next_assignment(view);
    ++report.events;

    if (!decision.has_value()) {
      // Idle until something changes: the next arrival, or — when demand
      // is stuck behind dark ports — the next repair.  Neither pending
      // means the run is over (leftover demand is stranded).
      std::optional<Time> wake;
      if (next_arrival < by_arrival.size()) wake = coflows[by_arrival[next_arrival]].arrival;
      if (down_marks > 0) {
        if (const auto r = injector.next_repair();
            r.has_value() && (!wake.has_value() || *r < *wake)) {
          wake = *r;
        }
      }
      if (!wake.has_value()) break;  // controller done, nothing pending
      clock = std::max(clock, *wake);
      continue;
    }

    // Execute: all-stop reconfiguration, then hold with early stop at the
    // largest serviced residual.  Circuits touching dark ports are dropped
    // before the setup is paid for.
    std::vector<Circuit> requested;
    std::vector<int> requested_coflow;
    Time max_rem = 0.0;
    for (std::size_t c = 0; c < decision->circuits.size(); ++c) {
      const Circuit& circuit = decision->circuits[c];
      const int k = decision->coflow_of[c];
      if (k < 0 || k >= num_coflows || !arrived[k] || finished[k]) continue;
      if (port_dead(failed_in, circuit.in) || port_dead(failed_out, circuit.out)) continue;
      requested.push_back(circuit);
      requested_coflow.push_back(k);
      max_rem = std::max(max_rem, residuals[k].at(circuit.in, circuit.out));
    }
    if (max_rem < kMinServiceQuantum) {
      // A deterministic controller returning the same dead assignment
      // would spin forever; after a few strikes treat it as "idle".
      if (++useless_streak >= 3) {
        const auto wake = next_wake();
        if (!wake.has_value()) break;
        clock = std::max(clock, *wake);
        useless_streak = 0;
      }
      continue;
    }
    useless_streak = 0;

    const SetupOutcome setup = injector.sample_setup(delta, requested);
    clock += setup.setup_time;
    if (!setup.established) {
      ++report.setup_failures;
      continue;  // the whole attempt budget burned; residual is untouched
    }
    if (!setup.failed_circuits.empty()) ++report.partial_setups;
    ++report.reconfigurations;

    // Map the latched subset back to its coflows (sample_setup preserves
    // request order) and recompute the drain bound over what actually
    // came up.
    std::vector<std::size_t> latched;
    std::size_t e = 0;
    for (std::size_t c = 0; c < requested.size() && e < setup.established_circuits.size();
         ++c) {
      if (setup.established_circuits[e].in == requested[c].in &&
          setup.established_circuits[e].out == requested[c].out) {
        latched.push_back(c);
        ++e;
      }
    }
    max_rem = 0.0;
    for (const std::size_t c : latched) {
      max_rem = std::max(max_rem, residuals[requested_coflow[c]].at(requested[c].in,
                                                                    requested[c].out));
    }
    if (max_rem < kMinServiceQuantum) continue;  // partial setup latched nothing useful

    const Time hold = std::min(decision->duration, max_rem);
    std::vector<std::pair<int, Time>> max_sent_of;  // (coflow, latest drain this round)
    for (const std::size_t c : latched) {
      const Circuit& circuit = requested[c];
      const int k = requested_coflow[c];
      Matrix& rem = residuals[k];
      const Time sent = std::min(hold, rem.at(circuit.in, circuit.out));
      rem.at(circuit.in, circuit.out) = clamp_zero(rem.at(circuit.in, circuit.out) - sent);
      report.delivered_demand += sent;
      bool seen = false;
      for (auto& [id, t] : max_sent_of) {
        if (id == k) {
          t = std::max(t, sent);
          seen = true;
        }
      }
      if (!seen) max_sent_of.emplace_back(k, sent);
    }
    // A coflow completes when its *last* circuit of this round drains.
    for (const auto& [k, sent] : max_sent_of) {
      if (!finished[k] && residuals[k].max_entry() < kMinServiceQuantum) {
        finished[k] = 1;
        --remaining;
        report.cct[k] = clock + sent - coflows[k].arrival;
      }
    }
    clock += hold;
    report.makespan = std::max(report.makespan, clock);
  }

  if (down_marks > 0) {
    report.degraded_time += std::max(Time{0.0}, clock - degraded_since);
  }
  report.all_served = remaining == 0;
  for (int k = 0; k < num_coflows; ++k) {
    report.total_weighted_cct += coflows[k].weight * report.cct[k];
    report.stranded_demand += residuals[k].total();
  }
  return report;
}

}  // namespace reco::sim
