#include "sim/multi_fabric.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace reco::sim {

GreedyPriorityController::GreedyPriorityController(Time delta, Priority priority,
                                                   bool hold_to_largest)
    : delta_(delta), priority_(priority), hold_to_largest_(hold_to_largest) {}

std::optional<MultiAssignment> GreedyPriorityController::next_assignment(
    const FabricView& view) {
  const std::vector<Matrix>& residuals = *view.residuals;
  const int num_coflows = static_cast<int>(residuals.size());
  if (served_.size() != residuals.size()) served_.resize(residuals.size(), 0.0);

  // Schedulable coflows, by the chosen priority over *live* state.
  std::vector<int> order;
  for (int k = 0; k < num_coflows; ++k) {
    if ((*view.arrived)[k] && !(*view.finished)[k] &&
        residuals[k].max_entry() >= kMinServiceQuantum) {
      order.push_back(k);
    }
  }
  if (order.empty()) return std::nullopt;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    switch (priority_) {
      case Priority::kSmallestResidualFirst:
        return residuals[a].rho() < residuals[b].rho();
      case Priority::kWeightedSmallestFirst: {
        // Lower residual per unit of weight goes first (weighted SJF).
        const double wa = std::max(1e-12, (*view.weights)[a]);
        const double wb = std::max(1e-12, (*view.weights)[b]);
        return residuals[a].rho() / wa < residuals[b].rho() / wb;
      }
      case Priority::kLeastServedFirst: return served_[a] < served_[b];
    }
    return a < b;
  });

  const int n = residuals[order.front()].n();
  std::vector<char> in_used(n, 0);
  std::vector<char> out_used(n, 0);
  MultiAssignment a;
  Time smallest = std::numeric_limits<Time>::infinity();
  Time largest = 0.0;

  for (int k : order) {
    // Heaviest-first flows of this coflow onto still-free ports.
    struct Candidate {
      int i;
      int j;
      Time rem;
    };
    std::vector<Candidate> candidates;
    for (int i = 0; i < n; ++i) {
      if (in_used[i]) continue;
      for (int j = 0; j < n; ++j) {
        if (out_used[j]) continue;
        const Time rem = residuals[k].at(i, j);
        if (rem >= kMinServiceQuantum) candidates.push_back({i, j, rem});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) { return x.rem > y.rem; });
    for (const Candidate& cand : candidates) {
      if (in_used[cand.i] || out_used[cand.j]) continue;
      in_used[cand.i] = 1;
      out_used[cand.j] = 1;
      a.circuits.push_back({cand.i, cand.j});
      a.coflow_of.push_back(k);
      smallest = std::min(smallest, cand.rem);
      largest = std::max(largest, cand.rem);
    }
  }
  if (a.circuits.empty()) return std::nullopt;

  // Hold at least delta (Lemma 1's spirit: an establishment should carry
  // at least as much transmission as it costs) and at most until the
  // chosen drain point.
  const Time drain = hold_to_largest_ ? largest : smallest;
  a.duration = std::max(drain, delta_);

  // LAS accounting: charge what this establishment will actually serve.
  for (std::size_t c = 0; c < a.circuits.size(); ++c) {
    const Circuit& circuit = a.circuits[c];
    const Time rem = residuals[a.coflow_of[c]].at(circuit.in, circuit.out);
    served_[a.coflow_of[c]] += std::min(a.duration, rem);
  }
  return a;
}

MultiFabricReport simulate_multi_coflow(MultiCoflowController& controller,
                                        const std::vector<Coflow>& coflows, Time delta) {
  MultiFabricReport report;
  const int num_coflows = static_cast<int>(coflows.size());
  report.cct.assign(num_coflows, 0.0);
  if (coflows.empty()) {
    report.all_served = true;
    return report;
  }

  std::vector<Matrix> residuals;
  residuals.reserve(coflows.size());
  for (const Coflow& c : coflows) residuals.push_back(c.demand);
  std::vector<char> arrived(num_coflows, 0);
  std::vector<char> finished(num_coflows, 0);
  std::vector<double> weights(num_coflows, 1.0);
  for (int k = 0; k < num_coflows; ++k) weights[k] = coflows[k].weight;

  // Arrival instants, ascending.
  std::vector<int> by_arrival(num_coflows);
  std::iota(by_arrival.begin(), by_arrival.end(), 0);
  std::stable_sort(by_arrival.begin(), by_arrival.end(),
                   [&](int x, int y) { return coflows[x].arrival < coflows[y].arrival; });
  std::size_t next_arrival = 0;

  Time clock = 0.0;
  int remaining = num_coflows;
  int useless_streak = 0;  // guard against controllers that spin
  // Coflows with no demand at all complete at arrival.
  for (int k = 0; k < num_coflows; ++k) {
    if (residuals[k].max_entry() < kMinServiceQuantum) {
      finished[k] = 1;
      --remaining;
    }
  }

  while (remaining > 0) {
    // Admit everything that has arrived by now.
    while (next_arrival < by_arrival.size() &&
           coflows[by_arrival[next_arrival]].arrival <= clock + kTimeEps) {
      arrived[by_arrival[next_arrival]] = 1;
      ++next_arrival;
    }

    FabricView view;
    view.now = clock;
    view.residuals = &residuals;
    view.arrived = &arrived;
    view.finished = &finished;
    view.weights = &weights;
    const auto decision = controller.next_assignment(view);
    ++report.events;

    if (!decision.has_value()) {
      if (next_arrival >= by_arrival.size()) break;  // controller done, nothing pending
      clock = std::max(clock, coflows[by_arrival[next_arrival]].arrival);
      continue;
    }

    // Execute: all-stop reconfiguration, then hold with early stop at the
    // largest serviced residual.
    Time max_rem = 0.0;
    for (std::size_t c = 0; c < decision->circuits.size(); ++c) {
      const Circuit& circuit = decision->circuits[c];
      const int k = decision->coflow_of[c];
      if (k < 0 || k >= num_coflows || !arrived[k]) continue;
      max_rem = std::max(max_rem, residuals[k].at(circuit.in, circuit.out));
    }
    if (max_rem < kMinServiceQuantum) {
      // A deterministic controller returning the same dead assignment
      // would spin forever; after a few strikes treat it as "idle".
      if (++useless_streak >= 3) {
        if (next_arrival >= by_arrival.size()) break;
        clock = std::max(clock, coflows[by_arrival[next_arrival]].arrival);
        useless_streak = 0;
      }
      continue;
    }
    useless_streak = 0;

    clock += delta;
    ++report.reconfigurations;
    const Time hold = std::min(decision->duration, max_rem);
    std::vector<std::pair<int, Time>> max_sent_of;  // (coflow, latest drain this round)
    for (std::size_t c = 0; c < decision->circuits.size(); ++c) {
      const Circuit& circuit = decision->circuits[c];
      const int k = decision->coflow_of[c];
      if (k < 0 || k >= num_coflows || !arrived[k] || finished[k]) continue;
      Matrix& rem = residuals[k];
      const Time sent = std::min(hold, rem.at(circuit.in, circuit.out));
      rem.at(circuit.in, circuit.out) = clamp_zero(rem.at(circuit.in, circuit.out) - sent);
      bool seen = false;
      for (auto& [id, t] : max_sent_of) {
        if (id == k) {
          t = std::max(t, sent);
          seen = true;
        }
      }
      if (!seen) max_sent_of.emplace_back(k, sent);
    }
    // A coflow completes when its *last* circuit of this round drains.
    for (const auto& [k, sent] : max_sent_of) {
      if (!finished[k] && residuals[k].max_entry() < kMinServiceQuantum) {
        finished[k] = 1;
        --remaining;
        report.cct[k] = clock + sent - coflows[k].arrival;
      }
    }
    clock += hold;
    report.makespan = std::max(report.makespan, clock);
  }

  report.all_served = remaining == 0;
  for (int k = 0; k < num_coflows; ++k) {
    report.total_weighted_cct += coflows[k].weight * report.cct[k];
  }
  return report;
}

}  // namespace reco::sim
