// Circuit controllers: the decision-making half of the event-driven
// simulator.  A controller is consulted every time the fabric goes idle
// and answers with the next circuit establishment (or none).
//
// Two families:
//  * replay controllers — walk a precomputed CircuitSchedule (Reco-Sin,
//    Solstice, ...); useful to cross-validate the analytic executors;
//  * adaptive controllers — decide from the live residual matrix, which
//    only an event-driven fabric can support.  GreedyMaxWeight is the
//    Helios control loop made adaptive: re-match on every wake-up.
#pragma once

#include <memory>
#include <optional>

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"
#include "matching/matching_engine.hpp"

namespace reco::sim {

/// Strategy consulted by the fabric whenever it can reconfigure.
class CircuitController {
 public:
  virtual ~CircuitController() = default;

  /// Next establishment given the residual demand, or nullopt to stop.
  /// `now` is the simulation clock at the decision instant.
  virtual std::optional<CircuitAssignment> next_assignment(Time now,
                                                           const Matrix& residual) = 0;
};

/// Replays a precomputed schedule, skipping establishments whose circuits
/// have no residual demand left (mirrors the analytic executor).
class ReplayController final : public CircuitController {
 public:
  explicit ReplayController(CircuitSchedule schedule);
  std::optional<CircuitAssignment> next_assignment(Time now, const Matrix& residual) override;

 private:
  CircuitSchedule schedule_;
  std::size_t next_ = 0;
};

/// Adaptive Helios-style policy: max-weight matching over the residual on
/// every decision, held until the largest matched residual drains (or a
/// fixed day, whichever is shorter).
class GreedyMaxWeightController final : public CircuitController {
 public:
  /// day_over_delta <= 0 disables the day cap (hold until drained).
  GreedyMaxWeightController(Time delta, double day_over_delta = 0.0);
  std::optional<CircuitAssignment> next_assignment(Time now, const Matrix& residual) override;

 private:
  Time delta_;
  double day_over_delta_;
};

/// Adaptive regularization policy: Reco-Sin's max-min extraction applied
/// to the *residual* (re-regularized each round) instead of a precomputed
/// plan — measures what adaptivity adds on top of Algorithm 1.
class AdaptiveRecoController final : public CircuitController {
 public:
  explicit AdaptiveRecoController(Time delta);
  std::optional<CircuitAssignment> next_assignment(Time now, const Matrix& residual) override;

 private:
  Time delta_;
  // Owned matching arena: consecutive decisions re-plan against a residual
  // that moved along one matching, so the engine warm-starts from the
  // previous decision's matching and reuses every buffer (zero allocations
  // in the matching layer once the simulation reaches steady state).
  MatchingScratch scratch_;
};

}  // namespace reco::sim
