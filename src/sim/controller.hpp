// Circuit controllers: the decision-making half of the event-driven
// simulator.  A controller is consulted every time the fabric goes idle
// and answers with the next circuit establishment (or none).
//
// Two families:
//  * replay controllers — walk a precomputed CircuitSchedule (Reco-Sin,
//    Solstice, ...); useful to cross-validate the analytic executors;
//  * adaptive controllers — decide from the live residual matrix, which
//    only an event-driven fabric can support.  GreedyMaxWeight is the
//    Helios control loop made adaptive: re-match on every wake-up.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bvn/bvn.hpp"
#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/types.hpp"
#include "matching/matching_engine.hpp"
#include "sim/faults.hpp"

namespace reco::sim {

/// Strategy consulted by the fabric whenever it can reconfigure.
class CircuitController {
 public:
  virtual ~CircuitController() = default;

  /// Next establishment given the residual demand, or nullopt to stop.
  /// `now` is the simulation clock at the decision instant.
  virtual std::optional<CircuitAssignment> next_assignment(Time now,
                                                           const Matrix& residual) = 0;

  /// Fault notifications from the fabric (no-ops by default, so existing
  /// controllers are fault-oblivious and simply see their dead circuits
  /// filtered).  `on_setup_degraded` reports a setup that came up partial
  /// (`established` is the latched subset) or failed entirely (empty).
  virtual void on_port_failed(Time /*now*/, PortId /*port*/, PortSide /*side*/) {}
  virtual void on_port_repaired(Time /*now*/, PortId /*port*/, PortSide /*side*/) {}
  virtual void on_setup_degraded(Time /*now*/, const CircuitAssignment& /*requested*/,
                                 const std::vector<Circuit>& /*established*/) {}
};

/// Replays a precomputed schedule, skipping establishments whose circuits
/// have no residual demand left (mirrors the analytic executor).
class ReplayController final : public CircuitController {
 public:
  explicit ReplayController(CircuitSchedule schedule);
  std::optional<CircuitAssignment> next_assignment(Time now, const Matrix& residual) override;

 private:
  CircuitSchedule schedule_;
  std::size_t next_ = 0;
};

/// Adaptive Helios-style policy: max-weight matching over the residual on
/// every decision, held until the largest matched residual drains (or a
/// fixed day, whichever is shorter).
class GreedyMaxWeightController final : public CircuitController {
 public:
  /// day_over_delta <= 0 disables the day cap (hold until drained).
  GreedyMaxWeightController(Time delta, double day_over_delta = 0.0);
  std::optional<CircuitAssignment> next_assignment(Time now, const Matrix& residual) override;

 private:
  Time delta_;
  double day_over_delta_;
};

/// Adaptive regularization policy: Reco-Sin's max-min extraction applied
/// to the *residual* (re-regularized each round) instead of a precomputed
/// plan — measures what adaptivity adds on top of Algorithm 1.
class AdaptiveRecoController final : public CircuitController {
 public:
  explicit AdaptiveRecoController(Time delta);
  std::optional<CircuitAssignment> next_assignment(Time now, const Matrix& residual) override;

 private:
  Time delta_;
  // Owned matching arena: consecutive decisions re-plan against a residual
  // that moved along one matching, so the engine warm-starts from the
  // previous decision's matching and reuses every buffer (zero allocations
  // in the matching layer once the simulation reaches steady state).
  MatchingScratch scratch_;
};

/// Degraded-operation wrapper: delegates to an inner controller until the
/// fabric reports a fault, then re-plans the *residual* demand on the
/// surviving ports via Reco-Sin (`reco_sin_surviving`) and replays the
/// recovery plan — replanning again on every further failure, repair, or
/// degraded setup.  When every remaining flow needs a dead port it stops,
/// so a run under permanent faults terminates with the undeliverable
/// demand accounted as stranded instead of hanging.
///
/// Hybrid replan-after-deadline (`replan_deadline > 0`): on a fault, keep
/// riding the surviving circuits of the *old* plan for up to
/// `replan_deadline` seconds, betting on a quick repair.  If every port
/// comes back before the first recovery plan is built, service continues
/// on the original plan with zero replans (wait-for-repair behavior); if
/// the deadline expires — or the old plan has no surviving useful circuit
/// left, so waiting would only idle the fabric — the recovery planner
/// takes over exactly as in the immediate-replan mode.  The deadline has
/// decision granularity: expiry is observed at the next decision instant.
/// `replan_deadline == 0` (default) is the historical immediate-replan
/// behavior, bit for bit.
class RecoveringController final : public CircuitController {
 public:
  RecoveringController(std::unique_ptr<CircuitController> inner, Time delta,
                       BvnPolicy policy = BvnPolicy::kMaxMinAmortized,
                       Time replan_deadline = 0.0);
  /// Convenience: recover over a precomputed schedule (wraps a
  /// ReplayController).
  RecoveringController(CircuitSchedule initial, Time delta,
                       BvnPolicy policy = BvnPolicy::kMaxMinAmortized,
                       Time replan_deadline = 0.0);

  std::optional<CircuitAssignment> next_assignment(Time now, const Matrix& residual) override;
  void on_port_failed(Time now, PortId port, PortSide side) override;
  void on_port_repaired(Time now, PortId port, PortSide side) override;
  void on_setup_degraded(Time now, const CircuitAssignment& requested,
                         const std::vector<Circuit>& established) override;

  /// Number of recovery plans built so far.
  int replans() const { return replans_; }

 private:
  void mark_port(PortId port, PortSide side, bool failed);
  bool any_port_failed() const;

  std::unique_ptr<CircuitController> inner_;
  Time delta_;
  BvnPolicy policy_;
  Time replan_deadline_;
  std::vector<char> failed_in_;
  std::vector<char> failed_out_;
  bool degraded_ = false;       ///< once true, the recovery planner owns the run
  bool replan_needed_ = false;
  Time degraded_since_ = -1.0;  ///< hybrid grace-window anchor (< 0: unset)
  std::optional<ReplayController> recovery_;
  int replans_ = 0;
};

}  // namespace reco::sim
