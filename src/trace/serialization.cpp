#include "trace/serialization.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace reco {

void write_trace(std::ostream& out, const std::vector<Coflow>& coflows, int num_ports) {
  // Format v2 adds the arrival time (v1 readers did not need it because the
  // paper assumes pre-buffered coflows; the online extension does).
  out << "reco-trace 2 " << num_ports << ' ' << coflows.size() << '\n';
  out << std::setprecision(17);
  for (const Coflow& c : coflows) {
    std::vector<std::tuple<int, int, double>> flows;
    for (int i = 0; i < c.demand.n(); ++i) {
      for (int j = 0; j < c.demand.n(); ++j) {
        if (!approx_zero(c.demand.at(i, j))) flows.emplace_back(i, j, c.demand.at(i, j));
      }
    }
    out << c.id << ' ' << c.weight << ' ' << c.arrival << ' ' << flows.size();
    for (const auto& [i, j, d] : flows) out << ' ' << i << ' ' << j << ' ' << d;
    out << '\n';
  }
}

std::vector<Coflow> read_trace(std::istream& in, int& num_ports) {
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  if (!(in >> magic >> version >> num_ports >> count) || magic != "reco-trace" ||
      (version != 1 && version != 2)) {
    throw std::runtime_error("read_trace: bad header");
  }
  std::vector<Coflow> coflows;
  coflows.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    Coflow c;
    std::size_t num_flows = 0;
    bool header_ok = static_cast<bool>(in >> c.id >> c.weight);
    if (header_ok && version >= 2) header_ok = static_cast<bool>(in >> c.arrival);
    if (!header_ok || !(in >> num_flows)) {
      throw std::runtime_error("read_trace: truncated coflow record");
    }
    c.demand = Matrix(num_ports);
    for (std::size_t f = 0; f < num_flows; ++f) {
      int i = 0;
      int j = 0;
      double d = 0.0;
      if (!(in >> i >> j >> d) || i < 0 || i >= num_ports || j < 0 || j >= num_ports) {
        throw std::runtime_error("read_trace: bad flow record");
      }
      c.demand.at(i, j) = d;
    }
    coflows.push_back(std::move(c));
  }
  return coflows;
}

void save_trace(const std::string& path, const std::vector<Coflow>& coflows, int num_ports) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  write_trace(out, coflows, num_ports);
}

std::vector<Coflow> load_trace(const std::string& path, int& num_ports) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  return read_trace(in, num_ports);
}

}  // namespace reco
