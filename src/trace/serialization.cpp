#include "trace/serialization.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "trace/line_reader.hpp"

namespace reco {

void write_trace(std::ostream& out, const std::vector<Coflow>& coflows, int num_ports) {
  // Format v2 adds the arrival time (v1 readers did not need it because the
  // paper assumes pre-buffered coflows; the online extension does).
  out << "reco-trace 2 " << num_ports << ' ' << coflows.size() << '\n';
  out << std::setprecision(17);
  for (const Coflow& c : coflows) {
    std::vector<std::tuple<int, int, double>> flows;
    for (int i = 0; i < c.demand.n(); ++i) {
      for (int j = 0; j < c.demand.n(); ++j) {
        if (!approx_zero(c.demand.at(i, j))) flows.emplace_back(i, j, c.demand.at(i, j));
      }
    }
    out << c.id << ' ' << c.weight << ' ' << c.arrival << ' ' << flows.size();
    for (const auto& [i, j, d] : flows) out << ' ' << i << ' ' << j << ' ' << d;
    out << '\n';
  }
}

std::vector<Coflow> read_trace(std::istream& in, int& num_ports) {
  using trace_detail::next_line;
  using trace_detail::parse_error;
  constexpr const char* kWho = "read_trace";
  std::string line;
  std::size_t lineno = 0;
  if (!next_line(in, line, lineno)) throw std::runtime_error("read_trace: empty input");
  std::istringstream header(line);
  std::string magic;
  int version = 0;
  long long count = -1;
  if (!(header >> magic >> version >> num_ports >> count) || magic != "reco-trace") {
    parse_error(kWho, lineno, "bad header (want 'reco-trace <version> <ports> <coflows>')");
  }
  if (version != 1 && version != 2) {
    parse_error(kWho, lineno, "unsupported version " + std::to_string(version));
  }
  if (num_ports <= 0) parse_error(kWho, lineno, "non-positive port count");
  if (count < 0) parse_error(kWho, lineno, "negative coflow count");

  std::vector<Coflow> coflows;
  coflows.reserve(static_cast<std::size_t>(count));
  std::set<int> seen_ids;
  for (long long k = 0; k < count; ++k) {
    if (!next_line(in, line, lineno)) {
      parse_error(kWho, lineno + 1,
                  "truncated: expected " + std::to_string(count) + " coflow records, found " +
                      std::to_string(k));
    }
    std::istringstream rec(line);
    Coflow c;
    long long num_flows = -1;
    bool header_ok = static_cast<bool>(rec >> c.id >> c.weight);
    if (header_ok && version >= 2) header_ok = static_cast<bool>(rec >> c.arrival);
    if (!header_ok || !(rec >> num_flows) || num_flows < 0) {
      parse_error(kWho, lineno, "bad coflow record (want '<id> <weight> "
                                "[arrival] <num_flows> [<in> <out> <demand>]...')");
    }
    if (!std::isfinite(c.weight) || c.weight < 0.0) {
      parse_error(kWho, lineno, "NaN or negative weight");
    }
    if (!std::isfinite(c.arrival) || c.arrival < 0.0) {
      parse_error(kWho, lineno, "NaN or negative arrival");
    }
    if (!seen_ids.insert(c.id).second) {
      parse_error(kWho, lineno, "duplicate coflow id " + std::to_string(c.id));
    }
    c.demand = Matrix(num_ports);
    std::set<std::pair<int, int>> seen_flows;
    for (long long f = 0; f < num_flows; ++f) {
      int i = 0;
      int j = 0;
      double d = 0.0;
      if (!(rec >> i >> j >> d)) {
        parse_error(kWho, lineno,
                    "truncated flow list (declared " + std::to_string(num_flows) + " flows)");
      }
      const std::string flow = "(" + std::to_string(i) + ", " + std::to_string(j) + ")";
      if (i < 0 || i >= num_ports || j < 0 || j >= num_ports) {
        parse_error(kWho, lineno,
                    "flow " + flow + " out of range for a " + std::to_string(num_ports) +
                        "-port fabric");
      }
      if (!std::isfinite(d) || d < 0.0) {
        parse_error(kWho, lineno, "NaN or negative demand on flow " + flow);
      }
      if (!seen_flows.emplace(i, j).second) {
        parse_error(kWho, lineno, "duplicate flow " + flow);
      }
      c.demand.at(i, j) = d;
    }
    std::string extra;
    if (rec >> extra) parse_error(kWho, lineno, "trailing tokens after the flow list");
    coflows.push_back(std::move(c));
  }
  return coflows;
}

void save_trace(const std::string& path, const std::vector<Coflow>& coflows, int num_ports) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  write_trace(out, coflows, num_ports);
}

std::vector<Coflow> load_trace(const std::string& path, int& num_ports) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  return read_trace(in, num_ports);
}

}  // namespace reco
