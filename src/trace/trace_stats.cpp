#include "trace/trace_stats.hpp"

#include <limits>
#include <sstream>

namespace reco {

WorkloadStats compute_stats(const std::vector<Coflow>& coflows) {
  WorkloadStats s;
  s.num_coflows = static_cast<int>(coflows.size());
  if (coflows.empty()) return s;

  std::array<int, 3> density_count{};
  std::array<int, 4> mode_count{};
  std::array<double, 4> mode_bytes{};
  double total_bytes = 0.0;
  double min_nonzero = std::numeric_limits<double>::infinity();

  for (const Coflow& c : coflows) {
    density_count[static_cast<int>(c.density_class())] += 1;
    const int mode = static_cast<int>(c.mode());
    mode_count[mode] += 1;
    const double volume = c.total_volume();
    mode_bytes[mode] += volume;
    total_bytes += volume;
    const double mn = c.demand.min_nonzero();
    if (mn > 0.0 && mn < min_nonzero) min_nonzero = mn;
  }

  for (int i = 0; i < 3; ++i) {
    s.density_percent[i] = 100.0 * density_count[i] / s.num_coflows;
  }
  for (int i = 0; i < 4; ++i) {
    s.mode_count_percent[i] = 100.0 * mode_count[i] / s.num_coflows;
    s.mode_size_percent[i] = total_bytes > 0.0 ? 100.0 * mode_bytes[i] / total_bytes : 0.0;
  }
  s.min_nonzero_demand = std::isfinite(min_nonzero) ? min_nonzero : 0.0;
  return s;
}

std::string format_stats(const WorkloadStats& s) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(2);
  out << "Table I — coflow density mix (percent of coflows)\n";
  out << "  class    generated   paper\n";
  out << "  sparse   " << s.density_percent[0] << "       86.31\n";
  out << "  normal   " << s.density_percent[1] << "        5.13\n";
  out << "  dense    " << s.density_percent[2] << "        8.56\n\n";
  out << "Table II — transmission-mode mix\n";
  out << "  mode   count% (paper)    size% (paper)\n";
  const char* names[] = {"S2S", "S2M", "M2S", "M2M"};
  const char* paper_count[] = {"23.38", "9.89", "40.11", "26.62"};
  const char* paper_size[] = {"0.005", "0.024", "0.028", "99.943"};
  for (int i = 0; i < 4; ++i) {
    out << "  " << names[i] << "    " << s.mode_count_percent[i] << " (" << paper_count[i]
        << ")      " << s.mode_size_percent[i] << " (" << paper_size[i] << ")\n";
  }
  return out.str();
}

}  // namespace reco
