#include "trace/fb_format.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/line_reader.hpp"
#include "trace/rng.hpp"

namespace reco {

Time megabytes_to_seconds(double megabytes, double link_gbps) {
  if (link_gbps <= 0.0) throw std::invalid_argument("megabytes_to_seconds: bad bandwidth");
  return megabytes * 8.0 / (link_gbps * 1000.0);  // MB -> Mbit -> seconds
}

std::vector<Coflow> read_fb_trace(std::istream& in, int& num_ports,
                                  const FbTraceOptions& options) {
  using trace_detail::next_line;
  using trace_detail::parse_error;
  constexpr const char* kWho = "read_fb_trace";
  std::string line;
  std::size_t lineno = 0;
  if (!next_line(in, line, lineno)) throw std::runtime_error("read_fb_trace: empty input");
  std::istringstream header(line);
  int num_coflows = 0;
  if (!(header >> num_ports >> num_coflows) || num_ports <= 0 || num_coflows < 0) {
    parse_error(kWho, lineno, "bad header (want '<racks> <coflows>')");
  }
  Rng rng(options.perturb_seed);
  std::vector<Coflow> coflows;
  coflows.reserve(num_coflows);

  for (int k = 0; k < num_coflows; ++k) {
    if (!next_line(in, line, lineno)) {
      parse_error(kWho, lineno + 1,
                  "truncated: expected " + std::to_string(num_coflows) +
                      " coflow records, found " + std::to_string(k));
    }
    std::istringstream rec(line);
    long long raw_id = 0;
    double arrival_ms = 0.0;
    int num_mappers = 0;
    if (!(rec >> raw_id >> arrival_ms >> num_mappers) || num_mappers < 0) {
      parse_error(kWho, lineno, "bad coflow record (want '<id> <arrival_ms> "
                                "<mappers> <racks...> <reducers> <rack:mb>...')");
    }
    if (!std::isfinite(arrival_ms) || arrival_ms < 0.0) {
      parse_error(kWho, lineno, "NaN or negative arrival");
    }
    std::vector<int> mappers(num_mappers);
    for (int& m : mappers) {
      if (!(rec >> m)) parse_error(kWho, lineno, "truncated mapper list");
      if (m < 0 || m >= num_ports) {
        parse_error(kWho, lineno,
                    "mapper rack " + std::to_string(m) + " out of range for " +
                        std::to_string(num_ports) + " racks");
      }
    }
    int num_reducers = 0;
    if (!(rec >> num_reducers) || num_reducers < 0) {
      parse_error(kWho, lineno, "bad reducer count");
    }

    Coflow c;
    c.id = k;  // ids are re-normalized; the raw id is not needed downstream
    c.weight = 1.0;
    c.arrival = options.zero_arrivals ? 0.0 : arrival_ms / 1000.0;
    c.demand = Matrix(num_ports);

    for (int r = 0; r < num_reducers; ++r) {
      std::string token;
      if (!(rec >> token)) parse_error(kWho, lineno, "truncated reducer list");
      const std::size_t colon = token.find(':');
      if (colon == std::string::npos) {
        parse_error(kWho, lineno, "reducer token '" + token + "' missing ':'");
      }
      int rack = -1;
      double size_mb = -1.0;
      try {
        rack = std::stoi(token.substr(0, colon));
        size_mb = std::stod(token.substr(colon + 1));
      } catch (const std::exception&) {
        parse_error(kWho, lineno, "unparseable reducer token '" + token + "'");
      }
      if (rack < 0 || rack >= num_ports) {
        parse_error(kWho, lineno,
                    "reducer rack " + std::to_string(rack) + " out of range for " +
                        std::to_string(num_ports) + " racks");
      }
      if (!std::isfinite(size_mb) || size_mb < 0.0) {
        parse_error(kWho, lineno, "NaN or negative shuffle size in '" + token + "'");
      }
      if (mappers.empty() || size_mb == 0.0) continue;
      // The paper's preprocessing: split the reducer's shuffle volume
      // uniformly across the mappers.
      const Time per_mapper =
          megabytes_to_seconds(size_mb, options.link_gbps) / mappers.size();
      for (int m : mappers) {
        double jitter = 1.0;
        if (options.perturbation > 0.0) {
          jitter = 1.0 + options.perturbation * rng.uniform(-1.0, 1.0);
        }
        // Mapper and reducer in the same rack: intra-rack traffic never
        // crosses the fabric.
        if (m == rack) continue;
        c.demand.at(m, rack) += per_mapper * jitter;
      }
    }
    coflows.push_back(std::move(c));
  }
  return coflows;
}

std::vector<Coflow> load_fb_trace(const std::string& path, int& num_ports,
                                  const FbTraceOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_fb_trace: cannot open " + path);
  return read_fb_trace(in, num_ports, options);
}

}  // namespace reco
