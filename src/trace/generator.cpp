#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.hpp"
#include "trace/rng.hpp"

namespace reco {

namespace {

/// Heavy-tailed small width in [2, cap]: most fan-outs are narrow, a few
/// span much of the cluster (matching MapReduce reducer-count skew).
int sample_width(Rng& rng, int cap) {
  const double x = rng.pareto(2.0, 1.3);
  return std::clamp(static_cast<int>(x), 2, cap);
}

/// Pick (rows, cols) for an M2M coflow in the requested density class,
/// where density = rows*cols / n^2 (Table I's DS over the fabric).
void sample_m2m_shape(Rng& rng, int n, DensityClass cls, int& rows, int& cols) {
  const double n2 = static_cast<double>(n) * n;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    switch (cls) {
      case DensityClass::kSparse: {
        const int cap = std::max(2, static_cast<int>(std::sqrt(0.05 * n2)));
        rows = sample_width(rng, cap);
        cols = sample_width(rng, cap);
        break;
      }
      case DensityClass::kNormal: {
        const int cap = std::max(3, static_cast<int>(std::sqrt(0.5 * n2)));
        rows = rng.uniform_int(std::max(2, cap / 4), cap);
        cols = rng.uniform_int(std::max(2, cap / 4), cap);
        break;
      }
      case DensityClass::kDense: {
        const int lo = std::max(2, static_cast<int>(std::sqrt(0.5 * n2)));
        rows = rng.uniform_int(lo, n);
        cols = rng.uniform_int(lo, n);
        break;
      }
    }
    if (classify_density(static_cast<double>(rows) * cols / n2) == cls) return;
  }
  // Tiny fabrics make some classes geometrically unreachable (e.g. a
  // sparse M2M needs rows*cols <= 0.05*n^2 < 4 below ~9 ports).  Keep the
  // last sample: the workload's density mix degrades gracefully instead of
  // failing — only the 150-port calibration targets Table I exactly.
}

/// Independent per-coflow stream seed: splitmix64 output for state
/// `options.seed` advanced k+1 steps (the same generator Rng's constructor
/// uses).  Each coflow consumes its own stream, so coflow k's bits do not
/// depend on how many draws earlier coflows made — the property that lets
/// parallel synthesis be bit-identical to the sequential loop.
std::uint64_t coflow_seed(std::uint64_t seed, std::uint64_t k) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (k + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Synthesize coflow k in isolation, writing into a caller-owned buffer
/// (demand storage and the row/col index scratch are reused across calls —
/// allocation-free once warm).  `gap_out` receives the coflow's
/// exponential inter-arrival gap; arrivals are prefix-summed by the caller
/// (the only cross-coflow coupling in the generator).
void synthesize_coflow_into(const GeneratorOptions& options, int k, std::vector<int>& rows_buf,
                            std::vector<int>& cols_buf, Time& gap_out, Coflow& c) {
  Rng rng(coflow_seed(options.seed, static_cast<std::uint64_t>(k)));
  const int n = options.num_ports;
  const Time min_demand = options.c_threshold * options.delta;

  c.id = k;
  c.arrival = 0.0;
  c.weight = options.unit_weights ? 1.0 : rng.uniform();
  gap_out = 0.0;
  if (options.mean_interarrival > 0.0) {
    // Poisson process: exponential inter-arrival gaps.
    double u = rng.uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    gap_out = -options.mean_interarrival * std::log(u);
  }
  c.demand.zero(n);

  // Mode first (Table II count mix), then shape.
  const double mode_draw = rng.uniform();
  int num_rows = 1;
  int num_cols = 1;
  bool m2m = false;
  if (mode_draw < options.p_s2s) {
    // single -> single
  } else if (mode_draw < options.p_s2s + options.p_s2m) {
    num_cols = sample_width(rng, std::min(n, 30));
  } else if (mode_draw < options.p_s2s + options.p_s2m + options.p_m2s) {
    num_rows = sample_width(rng, std::min(n, 30));
  } else {
    m2m = true;
    const double density_draw = rng.uniform();
    DensityClass cls = DensityClass::kDense;
    if (density_draw < options.p_m2m_sparse) {
      cls = DensityClass::kSparse;
    } else if (density_draw < options.p_m2m_sparse + options.p_m2m_normal) {
      cls = DensityClass::kNormal;
    }
    sample_m2m_shape(rng, n, cls, num_rows, num_cols);
  }

  rows_buf.resize(n);
  cols_buf.resize(n);
  rng.sample_distinct(n, num_rows, rows_buf.data());
  rng.sample_distinct(n, num_cols, cols_buf.data());

  // Flow sizes.  M2M: per-reducer shuffle volume split uniformly across
  // mappers (the paper's preprocessing); non-M2M: mice-scale flows just
  // above the optical threshold.  Both get +-perturbation per flow.
  const double scale = options.m2m_flow_scale * min_demand;
  for (int jj = 0; jj < num_cols; ++jj) {
    Time per_mapper;
    if (m2m) {
      // Heavy-tailed per-reducer volume, expressed per mapper.
      per_mapper = scale * rng.lognormal(0.0, 1.0);
    } else {
      // Control-plane-scale transfers: genuinely tiny (media ~7% of the
      // optical threshold, i.e. tens of microseconds at 100 Gb/s).  With
      // enforce_threshold they are clipped up to c*delta — the paper's
      // "only elephants enter the OCS" regime; without it they are the
      // mice of the Sec. VI hybrid experiments.
      per_mapper = min_demand * rng.lognormal(-2.6, 1.3);
    }
    for (int ii = 0; ii < num_rows; ++ii) {
      const double jitter = 1.0 + options.perturbation * rng.uniform(-1.0, 1.0);
      // Even "mice" are at least a packet's worth of data (~1 us at line
      // rate); below that the flow is indistinguishable from round-off.
      Time d = std::max(per_mapper * jitter, 1e-6);
      if (options.enforce_threshold) d = std::max(min_demand, d);
      c.demand.at(rows_buf[ii], cols_buf[jj]) = d;
    }
  }
}

}  // namespace

std::vector<Coflow> generate_workload(const GeneratorOptions& options) {
  if (options.num_ports < 2) {
    throw std::invalid_argument("generate_workload: need at least 2 ports");
  }
  std::vector<Coflow> coflows(options.num_coflows);
  std::vector<Time> gaps(options.num_coflows, 0.0);
  runtime::parallel_for(options.num_coflows, [&](int k) {
    std::vector<int> rows_buf;
    std::vector<int> cols_buf;
    synthesize_coflow_into(options, k, rows_buf, cols_buf, gaps[k], coflows[k]);
  });

  // Arrival times are the prefix sums of the per-coflow gaps — the one
  // sequential dependency, applied after the parallel synthesis.
  Time arrival_clock = 0.0;
  for (int k = 0; k < options.num_coflows; ++k) {
    arrival_clock += gaps[k];
    coflows[k].arrival = arrival_clock;
  }
  return coflows;
}

ArrivalStream::ArrivalStream(const GeneratorOptions& options) : options_(options) {
  if (options_.num_ports < 2) {
    throw std::invalid_argument("ArrivalStream: need at least 2 ports");
  }
}

const Coflow* ArrivalStream::peek() {
  if (next_ >= options_.num_coflows) return nullptr;
  if (!ready_) {
    Time gap = 0.0;
    synthesize_coflow_into(options_, next_, rows_buf_, cols_buf_, gap, buf_);
    // Same prefix-sum accumulation order as generate_workload, so arrival
    // times match bit for bit.
    arrival_clock_ += gap;
    buf_.arrival = arrival_clock_;
    ready_ = true;
  }
  return &buf_;
}

void ArrivalStream::pop() {
  if (peek() == nullptr) return;
  ++next_;
  ready_ = false;
}

}  // namespace reco
