// Synthetic Facebook-like coflow workload (the DESIGN.md §4 substitution
// for the proprietary FB2010 Hive/MapReduce trace).
//
// Calibration targets, all from the paper's Sec. V-A:
//  * 526 coflows on a 150-port fabric;
//  * transmission-mode mix by count: S2S 23.38 %, S2M 9.89 %, M2S 40.11 %,
//    M2M 26.62 % — and M2M carrying ~99.94 % of all bytes (Table II);
//  * density mix: sparse 86.31 %, normal 5.13 %, dense 8.56 % (Table I) —
//    with all non-M2M coflows structurally sparse, the M2M population is
//    split ~48.6 / 19.3 / 32.2 % across sparse/normal/dense to hit it;
//  * reducer shuffle volume divided uniformly across mappers, then +-5 %
//    per-flow perturbation;
//  * every nonzero demand >= c * delta (mice flows go to packet switches).
#pragma once

#include <cstdint>
#include <vector>

#include "core/coflow.hpp"
#include "core/types.hpp"

namespace reco {

struct GeneratorOptions {
  int num_ports = 150;
  int num_coflows = 526;
  std::uint64_t seed = 20190707;  ///< ICDCS'19 presentation date

  Time delta = 100e-6;      ///< reconfiguration delay (default 100 us, Sec. V-C)
  double c_threshold = 4.0; ///< minimum demand = c * delta

  // Transmission-mode probabilities (Table II); M2M takes the remainder.
  double p_s2s = 0.2338;
  double p_s2m = 0.0989;
  double p_m2s = 0.4011;

  // Density split *within* M2M coflows (derived from Table I; see header).
  double p_m2m_sparse = 0.486;
  double p_m2m_normal = 0.193;

  /// +-fraction applied independently per flow (paper: 5 %).
  double perturbation = 0.05;

  /// Per-flow demand scale for M2M coflows, in units of c*delta: flows are
  /// lognormal around scale*c*delta with a heavy tail.
  double m2m_flow_scale = 4.0;

  /// true: w_k = 1 for all coflows; false: w_k ~ U[0,1] (Fig. 6 setup).
  bool unit_weights = false;

  /// true (paper default): clip every flow up to c*delta — only elephants
  /// enter the OCS.  false: keep sub-threshold mice (for the hybrid
  /// circuit/packet experiments of Sec. VI).
  bool enforce_threshold = true;

  /// Mean coflow inter-arrival time for the online extension; 0 keeps the
  /// paper's all-buffered assumption (every arrival at t = 0).
  Time mean_interarrival = 0.0;
};

/// Generate a deterministic workload; coflow ids are 0..num_coflows-1.
std::vector<Coflow> generate_workload(const GeneratorOptions& options);

/// Streaming variant of `generate_workload`: synthesizes coflows lazily,
/// one at a time, into a single reused buffer — O(1) memory in stream
/// length, and allocation-free once warm.  Produces the *same* coflow
/// sequence bit for bit (each coflow draws from its own splitmix64 stream;
/// arrivals are the same prefix-summed gaps), so a daemon fed by an
/// ArrivalStream replays identically to one fed the materialized workload.
///
/// Pull interface matches sim::CoflowSource: the pointer returned by
/// peek() is valid until the next pop().
class ArrivalStream {
 public:
  explicit ArrivalStream(const GeneratorOptions& options);

  /// Next coflow (synthesized on first call), or nullptr when the
  /// configured `num_coflows` have all been produced.
  const Coflow* peek();
  void pop();

  /// Coflows handed out so far (popped).
  int produced() const { return next_; }

 private:
  GeneratorOptions options_;
  Coflow buf_;
  std::vector<int> rows_buf_;
  std::vector<int> cols_buf_;
  Time arrival_clock_ = 0.0;
  int next_ = 0;
  bool ready_ = false;
};

}  // namespace reco
