// Shared helpers for the line-oriented trace formats (reco-trace,
// Facebook/Sincronia shuffles, fault traces): every record lives on one
// line, so parse errors can name the offending line.
#pragma once

#include <cstddef>
#include <istream>
#include <stdexcept>
#include <string>

namespace reco::trace_detail {

/// Throws std::runtime_error "<who> line <line>: <what>".
[[noreturn]] inline void parse_error(const char* who, std::size_t line,
                                     const std::string& what) {
  throw std::runtime_error(std::string(who) + " line " + std::to_string(line) + ": " + what);
}

/// Advance to the next non-blank line, keeping `lineno` 1-based and in
/// sync.  Returns false at end of input.
inline bool next_line(std::istream& in, std::string& line, std::size_t& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
  }
  return false;
}

}  // namespace reco::trace_detail
