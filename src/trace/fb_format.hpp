// Parser for the public Coflow-Benchmark trace format (the format of the
// Facebook FB2010-1Hr-150-0 file the paper evaluates on):
//
//   <num_racks> <num_coflows>
//   <id> <arrival_ms> <num_mappers> <m1> ... <mM> <num_reducers> <r1:sizeMB> ...
//
// Mapper entries are rack ids; reducer entries are "rack:shuffle_MB".
// Following the paper's preprocessing (Sec. V-A): each coflow becomes a
// rack-by-rack demand matrix, the per-reducer shuffle volume is divided
// uniformly across that coflow's mappers, and megabytes are converted to
// transmission seconds at the configured link bandwidth.
//
// The proprietary trace itself is not shipped (DESIGN.md §4 documents the
// calibrated synthetic substitute); with the real file in hand, this
// parser reproduces the paper's exact workload.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/coflow.hpp"
#include "core/types.hpp"

namespace reco {

struct FbTraceOptions {
  double link_gbps = 100.0;       ///< circuit bandwidth (paper: 100 Gb/s)
  bool zero_arrivals = true;      ///< paper: coflows are pre-buffered
  double perturbation = 0.0;      ///< optional ±fraction per flow
  std::uint64_t perturb_seed = 1; ///< only used when perturbation > 0
};

/// Parse a Coflow-Benchmark stream.  Returns coflows with ids 0..K-1 and
/// sets `num_ports` to the rack count.  Throws std::runtime_error on
/// malformed input.
std::vector<Coflow> read_fb_trace(std::istream& in, int& num_ports,
                                  const FbTraceOptions& options = {});

/// File wrapper.
std::vector<Coflow> load_fb_trace(const std::string& path, int& num_ports,
                                  const FbTraceOptions& options = {});

/// Convert megabytes to transmission seconds at `link_gbps`.
Time megabytes_to_seconds(double megabytes, double link_gbps);

}  // namespace reco
