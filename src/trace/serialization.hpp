// Plain-text trace serialization, loosely following the public
// Coflow-Benchmark format: one coflow per line,
//   <id> <weight> <num_flows> { <src> <dst> <demand_seconds> }...
// so generated workloads can be archived, diffed, and re-loaded.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/coflow.hpp"

namespace reco {

void write_trace(std::ostream& out, const std::vector<Coflow>& coflows, int num_ports);

/// Throws std::runtime_error on malformed input.
std::vector<Coflow> read_trace(std::istream& in, int& num_ports);

/// Convenience file wrappers.
void save_trace(const std::string& path, const std::vector<Coflow>& coflows, int num_ports);
std::vector<Coflow> load_trace(const std::string& path, int& num_ports);

}  // namespace reco
