// Workload summary statistics: the quantities Tables I and II report.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/coflow.hpp"

namespace reco {

struct WorkloadStats {
  int num_coflows = 0;

  /// Percentage of coflows per density class (Table I), indexed by
  /// DensityClass enumerator order: sparse, normal, dense.
  std::array<double, 3> density_percent{};

  /// Percentage of coflows per transmission mode (Table II "Numbers%"),
  /// indexed by TransmissionMode order: S2S, S2M, M2S, M2M.
  std::array<double, 4> mode_count_percent{};

  /// Percentage of total bytes per mode (Table II "Sizes%").
  std::array<double, 4> mode_size_percent{};

  /// Smallest nonzero demand across the workload (sanity: >= c * delta).
  Time min_nonzero_demand = 0.0;
};

WorkloadStats compute_stats(const std::vector<Coflow>& coflows);

/// Render Tables I and II side by side with the paper's published numbers.
std::string format_stats(const WorkloadStats& stats);

}  // namespace reco
