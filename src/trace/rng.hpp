// Deterministic random source for workload generation.
//
// Standard-library *engines* are portable but the *distributions* are not
// (libstdc++ and libc++ produce different streams), so traces generated
// from the same seed would differ across platforms.  We therefore implement
// the distributions ourselves on top of splitmix64/xoshiro256**, making a
// (seed, options) pair a complete, portable description of a workload.
#pragma once

#include <cstdint>

namespace reco {

/// Full internal state of an Rng — the checkpointable description of a
/// stream position (sim/ checkpointing serializes these so a resumed run
/// continues the exact draw sequence of the uninterrupted one).
struct RngState {
  std::uint64_t s[4] = {};
  bool have_spare = false;   ///< Box-Muller spare normal is banked
  std::uint64_t spare_bits = 0;  ///< bit pattern of the banked spare
};

/// xoshiro256** seeded via splitmix64.  Small, fast, well-studied.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  int uniform_int(int n);
  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller.
  double normal();
  /// exp(mu + sigma * N(0,1)).
  double lognormal(double mu, double sigma);
  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Fisher-Yates: k distinct values from {0, ..., n-1}, in random order.
  void sample_distinct(int n, int k, int* out);

  /// Snapshot / restore the full stream position (bit-exact).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace reco
