#include "trace/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace reco {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int n) {
  if (n <= 0) throw std::invalid_argument("Rng::uniform_int: n must be positive");
  return static_cast<int>(uniform() * n);
}

int Rng::uniform_int(int lo, int hi) { return lo + uniform_int(hi - lo + 1); }

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box-Muller; guard the log against a zero uniform draw.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_ = radius * std::sin(angle);
  have_spare_ = true;
  return radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

double Rng::pareto(double xm, double alpha) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

RngState Rng::state() const {
  RngState st;
  for (int k = 0; k < 4; ++k) st.s[k] = s_[k];
  st.have_spare = have_spare_;
  st.spare_bits = std::bit_cast<std::uint64_t>(spare_);
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int k = 0; k < 4; ++k) s_[k] = state.s[k];
  have_spare_ = state.have_spare;
  spare_ = std::bit_cast<double>(state.spare_bits);
}

void Rng::sample_distinct(int n, int k, int* out) {
  if (k > n) throw std::invalid_argument("Rng::sample_distinct: k > n");
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = i + uniform_int(n - i);
    std::swap(pool[i], pool[j]);
    out[i] = pool[i];
  }
}

}  // namespace reco
