// Parallel BvN peeling for N >= 1024 ports.
//
// Classic first-matching peeling (bvn.cpp peel()) is a strictly
// sequential chain: every round scans the full matching (O(N)) for the
// minimum entry, subtracts it along all N matched cells — each subtract a
// SupportIndex write — and repairs the matching.  Over the ~nnz rounds of
// a stuffed matrix that is O(N * rounds) index mutations on the critical
// path, which is what ROADMAP item 4 flags as the blocker above N = 512.
//
// This peel splits the chain into two phases around one observation: the
// residual value of a matched edge never needs to be materialized while
// the edge stays matched.  For an edge that joined the matching in round
// s with value v, its value after round r is v - (C_r - C_{s-1}) where
// C_r = sum of the first r coefficients.  Defining the edge's *key* as
// v + C_{s-1} (fixed at join time):
//
//   * round r's coefficient is (min over matched keys) - C_{r-1}, found
//     by one heap pop instead of an O(N) scan;
//   * the edges that hit zero in round r are exactly the keys within
//     kTimeEps of the new prefix sum C_r — popped from the same heap;
//   * an edge's true value is reconstructed (key - C) only when the edge
//     leaves the matching: zeroed edges are removed from the support, and
//     edges bumped off along a repair path get their residual written
//     back.  Everything else is never touched.
//
// Phase 1 (sequential, O(nnz log N + repair work)): run that lazy-key
// loop, recording per round only the coefficient and the matching *diff*
// (the rows whose matched column changed during zero+repair — a handful
// per round, not N).  Phase 2 (parallel): materialize the CircuitSchedule
// from the diff log.  Rounds are grouped into fixed-size chunks; a
// sequential replay drops a matching snapshot at each chunk boundary, and
// every chunk then materializes its rounds independently on the PR-1
// ThreadPool.  Chunking is by round index with a constant chunk size, so
// the emitted schedule is byte-identical at every thread count — the
// thread count only decides which worker writes which pre-determined
// chunk (the property sweep pins this across threads in {1, 2, 8}).
//
// Speculation / validate: Phase 1 *speculates* that the support always
// admits a perfect matching (true in exact arithmetic by Birkhoff
// structure).  When float drift breaks that for the last tolerance-scale
// crumbs, the repair fails, the peel flushes every lazy residual back
// into the index (validate) and falls back to cover_decompose for the
// remainder — the same escape hatch as the sequential peel, counted in
// bvn.peel.aborts.
//
// Speculative multi-round discovery (this PR): with spec_depth = k > 0,
// Phase 1 additionally pipelines round *discovery*.  At each step it pops
// the next k+1 predicted freed groups off the key heap, snapshots the
// matching state, and discovers all k+1 rounds' repairs concurrently on
// the ThreadPool against the frozen residual; rounds are then committed
// strictly in round order, each validated against what the earlier
// commits actually touched (per-row/per-column epoch stamps plus a
// min-pushed-key check).  A validated commit is provably the round a
// sequential discovery would have produced, and a conflicting speculation
// is thrown away and re-discovered sequentially — so the schedule is
// byte-identical at every thread count and every speculation depth (see
// DESIGN.md "Speculative peeling & SIMD dispatch").  Efficiency is
// visible as bvn.peel.spec_commits / bvn.peel.spec_conflicts.
#pragma once

#include "core/circuit.hpp"
#include "core/support_index.hpp"

namespace reco {

/// Chunk width of the parallel materialization phase.  Fixed (not derived
/// from the thread count) so the schedule layout is identical no matter
/// how many workers execute it.  32 rounds x N circuits per chunk is
/// ~256 KiB of output at N = 1024 — large enough to amortize dispatch,
/// small enough to load-balance hundreds of chunks.
inline constexpr int kPeelChunkRounds = 32;

/// Hard cap on the speculation depth (lookahead rounds per batch).  Deeper
/// lookahead multiplies snapshot/validation work for sharply diminishing
/// overlap, and every depth in [0, cap] must produce identical output
/// anyway — the cap only bounds scratch memory (one snapshot set per
/// in-flight speculation).
inline constexpr int kMaxSpeculationDepth = 8;

/// Lazy-key BvN peel with parallel materialization (see file comment).
/// Same contract as bvn_decompose's kFirstMatching policy: `m` must hold
/// a doubly stochastic matrix (the caller checks); the returned schedule's
/// service matrix equals `m` up to the usual tolerance-scale residue,
/// covered via the cover_decompose fallback.
///
/// The single-argument form resolves the speculation depth automatically:
/// the RECO_PEEL_SPEC environment variable if set, else 0 on a
/// single-threaded runtime or a single physical core (speculation without
/// real parallelism is pure overhead) and min(4, workers + 1) otherwise.  The explicit form clamps
/// `spec_depth` to [0, kMaxSpeculationDepth]; depth 0 is the plain
/// sequential Phase-1 chain.  Output is byte-identical across all depths
/// and thread counts.
CircuitSchedule peel_parallel(SupportIndex m);
CircuitSchedule peel_parallel(SupportIndex m, int spec_depth);

}  // namespace reco
