#include "bvn/parallel_peel.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "bvn/bvn.hpp"
#include "core/simd.hpp"
#include "core/types.hpp"
#include "matching/hopcroft_karp.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace reco {

namespace {

/// Min-heap entry: matched row `row` with key `key` (edge value at join
/// time plus the coefficient prefix at join time).  `ver` invalidates
/// stale entries lazily — the heap is never decreased in place.
struct KeyEntry {
  double key;
  int row;
  int ver;
};

struct KeyGreater {
  bool operator()(const KeyEntry& a, const KeyEntry& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.row > b.row;  // deterministic tie-break: lowest row first
  }
};

/// Peel telemetry (stable handles, gated on obs::enabled() at call sites).
struct ParallelPeelMetrics {
  obs::Counter& rounds = obs::metrics().counter("bvn.peel.parallel_rounds");
  obs::Counter& diff_edges = obs::metrics().counter("bvn.peel.diff_edges");
  obs::Counter& chunks = obs::metrics().counter("bvn.peel.chunks");
  obs::Counter& aborts = obs::metrics().counter("bvn.peel.aborts");
  obs::Counter& spec_commits = obs::metrics().counter("bvn.peel.spec_commits");
  obs::Counter& spec_conflicts = obs::metrics().counter("bvn.peel.spec_conflicts");
  obs::Histogram& batch_width =
      obs::metrics().histogram("bvn.peel.batch_width", obs::pow2_buckets(1024.0));
  obs::Histogram& freed_per_round =
      obs::metrics().histogram("bvn.peel.freed_per_round", obs::pow2_buckets(1024.0));

  static ParallelPeelMetrics& get() {
    static ParallelPeelMetrics m;
    return m;
  }
};

/// Phase-1 state: the lazy-key loop plus the diff log Phase 2 replays.
struct PeelState {
  int n = 0;
  std::vector<int> ml;        ///< current matching, row -> col
  std::vector<int> mr;        ///< current matching, col -> row
  std::vector<double> key;    ///< per matched row: value-at-join + C-at-join
  std::vector<int> ver;       ///< heap-entry version per row
  std::priority_queue<KeyEntry, std::vector<KeyEntry>, KeyGreater> heap;
  double C = 0.0;             ///< coefficient prefix sum

  // Diff log: durations[r] plus the (row, new_col) assignments that turn
  // the round-r matching into the round-(r+1) matching.
  std::vector<double> durations;
  std::vector<std::uint32_t> diff_off;  ///< per round, start into diff_row/col
  std::vector<int> diff_row;
  std::vector<int> diff_col;

  // Per-round scratch.
  std::vector<int> touched;      ///< rows whose match changed this round
  std::vector<int> touch_stamp;  ///< dedup stamp for `touched`
  std::vector<int> touched_cols; ///< cols whose mr changed this round (spec)
  int round_stamp = 0;

  // BFS-repair scratch (shortest augmenting path over the support).
  std::vector<int> visited;     ///< per-column stamp
  std::vector<int> queue;       ///< BFS ring of rows
  std::vector<int> col_parent;  ///< row that discovered each column
  int visit_stamp = 0;

  // Speculation bookkeeping: epoch stamps of the last committed round that
  // touched each row/column, checked against a speculation's read set.
  bool spec_enabled = false;
  std::vector<int> row_epoch;
  std::vector<int> col_epoch;
  int commit_epoch = 0;

  void push_key(int row, double k) {
    key[row] = k;
    heap.push({k, row, ++ver[row]});
  }

  void touch(int row) {
    if (touch_stamp[row] != round_stamp) {
      touch_stamp[row] = round_stamp;
      touched.push_back(row);
    }
  }
};

/// One predicted round: the heap entries popped for it (kept verbatim so a
/// conflict can push them back) and its freed rows, sorted ascending.
struct SpecGroup {
  double level = 0.0;       ///< predicted new coefficient prefix C_r
  int remaining_after = 0;  ///< nnz after this round's zero set
  std::vector<KeyEntry> entries;
  std::vector<int> freed;
};

/// One rewire of the repair unwind, in exact sequential order: row takes
/// `col`, leaving `prev` (-1 for the freed source row).
struct SpecOp {
  int row;
  int col;
  int prev;
};

/// Discovery output of one speculated round: the ops to replay plus the
/// exact read footprint the validation checks against committed writes.
struct SpecResult {
  bool terminal = false;       ///< round zeroes the last of the support
  bool repair_failed = false;  ///< augmenting path search failed (abort)
  std::vector<SpecOp> ops;
  std::vector<int> read_rows;
  std::vector<int> read_cols;
};

/// Per-speculation-slot scratch, persistent across batches: snapshot
/// copies of the matching state plus BFS/read-set stamp arrays.
struct SpecScratch {
  std::vector<int> ml;
  std::vector<int> mr;
  std::vector<double> key;
  std::vector<int> visited;
  std::vector<int> queue;
  std::vector<int> col_parent;
  int visit_stamp = 0;
  std::vector<int> row_seen;
  std::vector<int> col_seen;
  int seen_stamp = 0;
  std::vector<int> zero_col;    ///< zeroed column per freed row, stamped
  std::vector<int> zero_stamp;
  int zstamp = 0;
  /// Cells whose value this round's own repairs materialized: later value
  /// reads must see them instead of the frozen index (a row bumped twice
  /// in one round re-reads its own residual write).
  struct Overlay {
    int row;
    int col;
    double val;
  };
  std::vector<Overlay> overlay;

  void ensure(int n) {
    if (static_cast<int>(visited.size()) != n) {
      visited.assign(n, 0);
      queue.assign(n, 0);
      col_parent.assign(n, 0);
      row_seen.assign(n, 0);
      col_seen.assign(n, 0);
      zero_col.assign(n, 0);
      zero_stamp.assign(n, 0);
      visit_stamp = seen_stamp = zstamp = 0;
    }
  }
};

enum class RoundOutcome { kOk, kDrained, kAborted };

/// Shortest augmenting path from `row` over the *support* of `m`
/// (support-only: every nonzero is an edge, values never probed — so the
/// lazy staleness of matched-edge values is invisible here).  BFS, not
/// Kuhn DFS: every row bumped along the path pays a residual
/// materialization (an index write), a re-key (a heap push), and a diff
/// entry, so path length is the whole repair cost — DFS wanders hundreds
/// of rows deep on the tight support of a late peel, BFS rewires the 2-5
/// rows of a shortest path.  Deterministic: FIFO row order, support
/// scanned ascending, first free column discovered wins.
bool repair_row(SupportIndex& m, PeelState& st, int row) {
  const int stamp = ++st.visit_stamp;
  int qh = 0;
  int qt = 0;
  st.queue[qt++] = row;
  int found_j = -1;
  while (qh < qt && found_j == -1) {
    const int u = st.queue[qh++];
    const auto support = m.row_support(u);
    const int degree = support.size();
    for (int e = 0; e < degree; ++e) {
      const int j = support[e];
      if (st.visited[j] == stamp) continue;
      st.visited[j] = stamp;
      st.col_parent[j] = u;
      const int other = st.mr[j];
      if (other == -1) {
        found_j = j;
        break;
      }
      st.queue[qt++] = other;
    }
  }
  if (found_j == -1) return false;
  // Unwind via the parent pointers.  Every row above the source leaves
  // its matched column — materialize that edge's residual (key - C; it
  // survived the zero set, so the residual is >= kTimeEps and the entry
  // stays in the support) and re-key the row on its new column.
  int j = found_j;
  while (true) {
    const int r = st.col_parent[j];
    const int prev = st.ml[r];  // -1 iff r is the freed source row
    if (prev != -1) m.set(r, prev, st.key[r] - st.C);
    st.ml[r] = j;
    st.mr[j] = r;
    st.push_key(r, m.at(r, j) + st.C);
    st.touch(r);
    if (st.spec_enabled) st.touched_cols.push_back(j);
    if (r == row) break;
    j = prev;
  }
  return true;
}

/// Pop the next freed group off the key heap: the minimum valid key plus
/// every key within kTimeEps of it (identical pop/stale-filter order to
/// the round head of the pre-speculation loop).  False iff no valid entry
/// remains (cannot happen while the matching is perfect; callers abort).
bool pop_group(PeelState& st, SpecGroup& g) {
  g.entries.clear();
  g.freed.clear();
  KeyEntry top{};
  for (;;) {
    if (st.heap.empty()) return false;
    top = st.heap.top();
    st.heap.pop();
    if (top.ver == st.ver[top.row] && st.ml[top.row] != -1) break;
  }
  g.level = top.key;
  g.entries.push_back(top);
  g.freed.push_back(top.row);
  // Every matched key within tolerance of the new prefix hits zero this
  // round (key - new_c < kTimeEps == the clamp_zero test).
  while (!st.heap.empty()) {
    const KeyEntry next = st.heap.top();
    if (next.ver != st.ver[next.row] || st.ml[next.row] == -1) {
      st.heap.pop();
      continue;
    }
    if (next.key >= g.level + kTimeEps) break;
    st.heap.pop();
    g.entries.push_back(next);
    g.freed.push_back(next.row);
  }
  std::sort(g.freed.begin(), g.freed.end());
  return true;
}

/// Stamp this round's write footprint with a fresh commit epoch.
void stamp_epochs(PeelState& st) {
  if (!st.spec_enabled) return;
  ++st.commit_epoch;
  for (const int r : st.touched) st.row_epoch[r] = st.commit_epoch;
  for (const int j : st.touched_cols) st.col_epoch[j] = st.commit_epoch;
}

/// Zero + repair + diff-commit of one round whose freed group was already
/// popped — byte-for-byte the mutation sequence of the pre-speculation
/// loop body given the same group.
RoundOutcome run_round(SupportIndex& m, PeelState& st, const SpecGroup& g) {
  const double coefficient = g.level - st.C;
  ++st.round_stamp;
  st.touched.clear();
  st.touched_cols.clear();
  st.durations.push_back(coefficient);
  st.diff_off.push_back(static_cast<std::uint32_t>(st.diff_row.size()));
  st.C = g.level;

  // Zero the freed edges (support removal; their residual is exactly 0).
  for (const int i : g.freed) {
    const int j = st.ml[i];
    m.set(i, j, 0.0);
    st.ml[i] = -1;
    st.mr[j] = -1;
    ++st.ver[i];  // invalidate any remaining heap entries
    st.touch(i);
    if (st.spec_enabled) st.touched_cols.push_back(j);
  }
  if (obs::enabled()) {
    ParallelPeelMetrics::get().freed_per_round.observe(static_cast<double>(g.freed.size()));
  }

  // Drained: this round zeroed the last of the support; no next round
  // to repair for (its diff range stays empty — nothing replays it).
  if (m.nnz() == 0) {
    stamp_epochs(st);
    return RoundOutcome::kDrained;
  }

  // Repair: re-match every freed row (ascending — deterministic).
  for (const int i : g.freed) {
    if (!repair_row(m, st, i)) {
      stamp_epochs(st);
      return RoundOutcome::kAborted;
    }
  }

  // Commit this round's diff: final (row, col) per touched row.  The
  // range runs from the diff_off pushed at round start to the one the
  // next round pushes (or the final sentinel).
  for (const int r : st.touched) {
    st.diff_row.push_back(r);
    st.diff_col.push_back(st.ml[r]);
  }
  stamp_epochs(st);
  return RoundOutcome::kOk;
}

/// Discover one speculated round against the frozen batch-start state:
/// run the zero set and the BFS repairs on private snapshot copies of
/// ml/mr/key, never mutating the shared index, and record (a) the rewire
/// ops a commit will replay and (b) the exact rows/columns read, for the
/// validation against intervening commits.
void discover_spec(const SupportIndex& m, const PeelState& st, const SpecGroup& g,
                   SpecScratch& sc, SpecResult& out) {
  out.ops.clear();
  out.read_rows.clear();
  out.read_cols.clear();
  out.repair_failed = false;
  out.terminal = g.remaining_after == 0;

  const int n = st.n;
  sc.ensure(n);
  sc.ml = st.ml;
  sc.mr = st.mr;
  sc.key = st.key;
  sc.overlay.clear();
  ++sc.seen_stamp;
  ++sc.zstamp;

  const auto see_row = [&](int r) {
    if (sc.row_seen[r] != sc.seen_stamp) {
      sc.row_seen[r] = sc.seen_stamp;
      out.read_rows.push_back(r);
    }
  };
  const auto see_col = [&](int j) {
    if (sc.col_seen[j] != sc.seen_stamp) {
      sc.col_seen[j] = sc.seen_stamp;
      out.read_cols.push_back(j);
    }
  };
  // Frozen-index value read with the round's own residual writes overlaid
  // (a row bumped twice re-reads the residual its first bump wrote).
  const auto value_at = [&](int r, int j) -> double {
    for (auto it = sc.overlay.rbegin(); it != sc.overlay.rend(); ++it) {
      if (it->row == r && it->col == j) return it->val;
    }
    return m.at(r, j);
  };

  // Zero phase on the snapshot.  The freed rows' current matched columns
  // come from the snapshot ml, so the rows join the read set.
  for (const int i : g.freed) {
    see_row(i);
    const int j = sc.ml[i];
    sc.zero_col[i] = j;
    sc.zero_stamp[i] = sc.zstamp;
    sc.ml[i] = -1;
    sc.mr[j] = -1;
  }
  if (out.terminal) return;

  // Repairs, ascending — the BFS of repair_row on the snapshot state.
  // The frozen support still contains this round's zeroed edges, so a
  // scan of a freed row skips its own zeroed column.
  for (const int src : g.freed) {
    const int stamp = ++sc.visit_stamp;
    int qh = 0;
    int qt = 0;
    sc.queue[qt++] = src;
    int found_j = -1;
    while (qh < qt && found_j == -1) {
      const int u = sc.queue[qh++];
      see_row(u);
      const int skip = sc.zero_stamp[u] == sc.zstamp ? sc.zero_col[u] : -1;
      const auto support = m.row_support(u);
      const int degree = support.size();
      for (int e = 0; e < degree; ++e) {
        const int j = support[e];
        if (j == skip) continue;
        if (sc.visited[j] == stamp) continue;
        sc.visited[j] = stamp;
        sc.col_parent[j] = u;
        see_col(j);
        const int other = sc.mr[j];
        if (other == -1) {
          found_j = j;
          break;
        }
        sc.queue[qt++] = other;
      }
    }
    if (found_j == -1) {
      out.repair_failed = true;  // partial ops replay, then abort
      return;
    }
    int j = found_j;
    while (true) {
      const int r = sc.col_parent[j];
      const int prev = sc.ml[r];
      if (prev != -1) sc.overlay.push_back({r, prev, sc.key[r] - g.level});
      sc.ml[r] = j;
      sc.mr[j] = r;
      sc.key[r] = value_at(r, j) + g.level;
      out.ops.push_back({r, j, prev});
      if (r == src) break;
      j = prev;
    }
  }
}

/// A speculation may commit iff nothing a committed round wrote since the
/// batch snapshot intersects what the discovery read:
///  * every row/column in the read set must carry an epoch stamp no newer
///    than the batch base (supports, ml/mr/key, and frozen values of
///    untouched rows are then exactly what sequential discovery would
///    have seen);
///  * no key pushed by an intervening commit may fall below this round's
///    freed band (it would join or undercut the predicted group);
///  * the predicted "last round" flag must match the real residual nnz.
bool validate_spec(const PeelState& st, const SupportIndex& m, const SpecGroup& g,
                   const SpecResult& sp, int base_epoch, double batch_min_push) {
  if (batch_min_push < g.level + kTimeEps) return false;
  const bool terminal_now = m.nnz() - static_cast<int>(g.freed.size()) == 0;
  if (terminal_now != sp.terminal) return false;
  for (const int r : sp.read_rows) {
    if (st.row_epoch[r] > base_epoch) return false;
  }
  for (const int j : sp.read_cols) {
    if (st.col_epoch[j] > base_epoch) return false;
  }
  return true;
}

/// Replay a validated speculation on the real state.  Identical mutation
/// sequence to run_round: same zero set, and the recorded ops stand in
/// for the BFS result (residuals and keys are recomputed from the *real*
/// st.key / index values, which validation proved untouched).
RoundOutcome commit_spec(SupportIndex& m, PeelState& st, const SpecGroup& g,
                         const SpecResult& sp, double& batch_min_push) {
  const double coefficient = g.level - st.C;
  ++st.round_stamp;
  st.touched.clear();
  st.touched_cols.clear();
  st.durations.push_back(coefficient);
  st.diff_off.push_back(static_cast<std::uint32_t>(st.diff_row.size()));
  st.C = g.level;

  for (const int i : g.freed) {
    const int j = st.ml[i];
    m.set(i, j, 0.0);
    st.ml[i] = -1;
    st.mr[j] = -1;
    ++st.ver[i];
    st.touch(i);
    st.touched_cols.push_back(j);
  }
  if (obs::enabled()) {
    ParallelPeelMetrics::get().freed_per_round.observe(static_cast<double>(g.freed.size()));
  }
  if (m.nnz() == 0) {
    stamp_epochs(st);
    return RoundOutcome::kDrained;
  }

  for (const SpecOp& op : sp.ops) {
    if (op.prev != -1) m.set(op.row, op.prev, st.key[op.row] - st.C);
    st.ml[op.row] = op.col;
    st.mr[op.col] = op.row;
    const double k = m.at(op.row, op.col) + st.C;
    st.push_key(op.row, k);
    if (k < batch_min_push) batch_min_push = k;
    st.touch(op.row);
    st.touched_cols.push_back(op.col);
  }
  if (sp.repair_failed) {
    stamp_epochs(st);
    return RoundOutcome::kAborted;
  }

  for (const int r : st.touched) {
    st.diff_row.push_back(r);
    st.diff_col.push_back(st.ml[r]);
  }
  stamp_epochs(st);
  return RoundOutcome::kOk;
}

/// One speculative batch: pop up to depth+1 predicted groups, discover
/// them concurrently against the frozen state, then commit in round order
/// with validation.  The first conflict pushes the unconsumed groups back
/// and re-discovers that round sequentially — ending the batch, never the
/// peel.
RoundOutcome run_batch(SupportIndex& m, PeelState& st, int depth,
                       std::vector<SpecGroup>& groups, std::vector<SpecResult>& specs,
                       std::vector<SpecScratch>& scratch, std::uint64_t& commits,
                       std::uint64_t& conflicts) {
  const int cap = depth + 1;
  int count = 0;
  int remaining = m.nnz();
  while (count < cap && remaining > 0) {
    if (!pop_group(st, groups[count])) break;
    remaining -= static_cast<int>(groups[count].freed.size());
    groups[count].remaining_after = remaining;
    ++count;
  }
  if (count == 0) return RoundOutcome::kAborted;  // heap starved: cannot repair
  if (count == 1) return run_round(m, st, groups[0]);

  const int base_epoch = st.commit_epoch;
  runtime::parallel_for(count, [&](int gi) {
    discover_spec(m, st, groups[gi], scratch[gi], specs[gi]);
  });

  double batch_min_push = std::numeric_limits<double>::infinity();
  for (int gi = 0; gi < count; ++gi) {
    // Group 0 ran against the live state (no commits intervened) and is
    // valid by construction.
    if (gi > 0 && !validate_spec(st, m, groups[gi], specs[gi], base_epoch, batch_min_push)) {
      ++conflicts;
      for (int gj = gi; gj < count; ++gj) {
        for (const KeyEntry& e : groups[gj].entries) st.heap.push(e);
      }
      SpecGroup& redo = groups[gi];
      if (!pop_group(st, redo)) return RoundOutcome::kAborted;
      return run_round(m, st, redo);
    }
    const RoundOutcome rc = commit_spec(m, st, groups[gi], specs[gi], batch_min_push);
    if (gi > 0) ++commits;
    if (rc != RoundOutcome::kOk) return rc;
  }
  return RoundOutcome::kOk;
}

/// Write every lazily-deferred matched residual back into the index.
/// Called before falling back to cover_decompose, which reads true values.
void flush_residuals(SupportIndex& m, PeelState& st) {
  for (int i = 0; i < st.n; ++i) {
    if (st.ml[i] != -1) m.set(i, st.ml[i], st.key[i] - st.C);
  }
}

/// Phase 2: materialize the schedule from the diff log, in fixed-size
/// round chunks over the thread pool.  A sequential replay first records
/// the matching at each chunk boundary; each chunk then replays its own
/// rounds from its snapshot.  Identical output at every thread count.
void materialize_schedule(const PeelState& st, CircuitSchedule& schedule) {
  const int rounds = static_cast<int>(st.durations.size());
  if (rounds == 0) return;
  const int n = st.n;
  const int chunks = (rounds + kPeelChunkRounds - 1) / kPeelChunkRounds;

  const auto apply_diffs = [&st](int r, std::vector<int>& match) {
    const std::uint32_t lo = st.diff_off[r];
    const std::uint32_t hi = st.diff_off[r + 1];
    for (std::uint32_t d = lo; d < hi; ++d) match[st.diff_row[d]] = st.diff_col[d];
  };

  // Snapshot pass: matching state at the start of each chunk.
  std::vector<int> snapshots(static_cast<std::size_t>(chunks) * n);
  {
    std::vector<int> cur = st.ml;  // st.ml holds the ROUND-0 matching (see peel loop)
    for (int r = 0; r < rounds; ++r) {
      if (r % kPeelChunkRounds == 0) {
        std::copy(cur.begin(), cur.end(),
                  snapshots.begin() + static_cast<std::size_t>(r / kPeelChunkRounds) * n);
      }
      apply_diffs(r, cur);
    }
  }

  static_assert(sizeof(Circuit) == 2 * sizeof(PortId),
                "circuit pairs must be two contiguous ports for the interleave kernel");
  const std::size_t base = schedule.assignments.size();
  schedule.assignments.resize(base + static_cast<std::size_t>(rounds));
  runtime::parallel_for(chunks, [&](int c) {
    const simd::Kernels& kn = simd::kernels();
    std::vector<int> match(snapshots.begin() + static_cast<std::size_t>(c) * n,
                           snapshots.begin() + static_cast<std::size_t>(c + 1) * n);
    const int lo = c * kPeelChunkRounds;
    const int hi = std::min(rounds, lo + kPeelChunkRounds);
    for (int r = lo; r < hi; ++r) {
      CircuitAssignment& a = schedule.assignments[base + static_cast<std::size_t>(r)];
      a.duration = st.durations[r];
      // The matching is total (every row matched), so the circuit list is
      // the pair stream (i, match[i]) — written by the interleave kernel.
      a.circuits.resize(static_cast<std::size_t>(n));
      kn.iota_interleave(match.data(), n, reinterpret_cast<PortId*>(a.circuits.data()));
      apply_diffs(r, match);
    }
  });

  if (obs::enabled()) {
    ParallelPeelMetrics& pm = ParallelPeelMetrics::get();
    pm.chunks.inc(static_cast<double>(chunks));
    for (int c = 0; c < chunks; ++c) {
      pm.batch_width.observe(static_cast<double>(
          std::min(rounds, (c + 1) * kPeelChunkRounds) - c * kPeelChunkRounds));
    }
  }
}

/// Default speculation depth: the RECO_PEEL_SPEC override if present,
/// else 0 when there is nothing to overlap onto — a single-threaded
/// runtime, or a single physical core (oversubscribed workers only add
/// context switches to the discovery fan-out) — and min(4, workers + 1)
/// otherwise.
int resolve_spec_depth() {
  if (const char* env = std::getenv("RECO_PEEL_SPEC")) {
    return std::clamp(std::atoi(env), 0, kMaxSpeculationDepth);
  }
  const int workers = runtime::global_pool().num_workers();
  if (workers == 0 || runtime::hardware_cores() < 2) return 0;
  return std::min(4, workers + 1);
}

}  // namespace

CircuitSchedule peel_parallel(SupportIndex m) {
  return peel_parallel(std::move(m), resolve_spec_depth());
}

CircuitSchedule peel_parallel(SupportIndex m, int spec_depth) {
  CircuitSchedule schedule;
  obs::ScopedSpan span("bvn.peel_parallel", "bvn");
  const int n = m.n();
  if (n == 0 || m.nnz() == 0) return schedule;
  const int depth = std::clamp(spec_depth, 0, kMaxSpeculationDepth);

  PeelState st;
  st.n = n;
  st.spec_enabled = depth > 0;
  st.ml.assign(n, -1);
  st.mr.assign(n, -1);
  st.key.assign(n, 0.0);
  st.ver.assign(n, 0);
  st.touch_stamp.assign(n, 0);
  st.visited.assign(n, 0);
  st.queue.assign(n, 0);
  st.col_parent.assign(n, 0);
  if (st.spec_enabled) {
    st.row_epoch.assign(n, 0);
    st.col_epoch.assign(n, 0);
  }

  // Initial perfect matching on the support (canonical threshold-matching
  // path).  No perfect matching up front means no Birkhoff structure to
  // peel — cover the whole thing, exactly like the sequential peel.
  {
    const MatchingResult init = threshold_matching(m, 2 * kTimeEps);
    if (!init.is_perfect()) {
      if (obs::enabled()) {
        ParallelPeelMetrics::get().aborts.inc();
        obs::flight_recorder().record("peel_abort", 0.0, n,
                                      static_cast<double>(m.nnz()),
                                      "no initial perfect matching");
        obs::flight_recorder().trigger("bvn.peel abort: no initial perfect matching");
      }
      return cover_decompose(std::move(m));
    }
    for (int i = 0; i < n; ++i) {
      st.ml[i] = init.match_left[i];
      st.mr[init.match_left[i]] = i;
      st.push_key(i, m.at(i, st.ml[i]));  // C == 0 at join
    }
  }
  // Keep the round-0 matching for the snapshot pass: Phase 1 mutates
  // st.ml in place, so materialize from a copy taken now.
  std::vector<int> initial_match = st.ml;

  std::vector<SpecGroup> groups(static_cast<std::size_t>(depth) + 1);
  std::vector<SpecResult> specs(st.spec_enabled ? static_cast<std::size_t>(depth) + 1 : 0);
  std::vector<SpecScratch> scratch(specs.size());
  std::uint64_t spec_commits = 0;
  std::uint64_t spec_conflicts = 0;

  bool aborted = false;
  while (m.nnz() > 0) {
    RoundOutcome rc;
    if (depth == 0) {
      SpecGroup& g = groups[0];
      if (!pop_group(st, g)) {
        aborted = true;
        break;
      }
      rc = run_round(m, st, g);
    } else {
      rc = run_batch(m, st, depth, groups, specs, scratch, spec_commits, spec_conflicts);
    }
    if (rc == RoundOutcome::kDrained) break;
    if (rc == RoundOutcome::kAborted) {
      aborted = true;
      break;
    }
  }
  st.diff_off.push_back(static_cast<std::uint32_t>(st.diff_row.size()));

  const bool obs_on = obs::enabled();
  if (obs_on) {
    ParallelPeelMetrics& pm = ParallelPeelMetrics::get();
    pm.rounds.inc(static_cast<double>(st.durations.size()));
    pm.diff_edges.inc(static_cast<double>(st.diff_row.size()));
    if (spec_commits > 0) pm.spec_commits.inc(static_cast<double>(spec_commits));
    if (spec_conflicts > 0) pm.spec_conflicts.inc(static_cast<double>(spec_conflicts));
  }

  if (aborted) {
    // Speculation failed (float drift broke the Birkhoff guarantee for
    // the residue).  The aborted round itself is still sound — its
    // emitted matching was perfect at round start and its subtraction is
    // fully accounted in C — so keep it; validate by flushing every lazy
    // residual back into the index, then cover the remainder.
    if (obs_on) {
      ParallelPeelMetrics::get().aborts.inc();
      obs::flight_recorder().record("peel_abort", 0.0, n, static_cast<double>(m.nnz()),
                                    "repair failed mid-peel");
      obs::flight_recorder().trigger("bvn.peel abort: repair failed mid-peel");
    }
    flush_residuals(m, st);
  }

  // Phase 2 replays from the round-0 matching.
  st.ml = std::move(initial_match);
  materialize_schedule(st, schedule);

  if (aborted || m.nnz() > 0) {
    const CircuitSchedule tail = cover_decompose(std::move(m));
    for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
  }
  return schedule;
}

}  // namespace reco
