#include "bvn/parallel_peel.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "bvn/bvn.hpp"
#include "core/types.hpp"
#include "matching/hopcroft_karp.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"

namespace reco {

namespace {

/// Min-heap entry: matched row `row` with key `key` (edge value at join
/// time plus the coefficient prefix at join time).  `ver` invalidates
/// stale entries lazily — the heap is never decreased in place.
struct KeyEntry {
  double key;
  int row;
  int ver;
};

struct KeyGreater {
  bool operator()(const KeyEntry& a, const KeyEntry& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.row > b.row;  // deterministic tie-break: lowest row first
  }
};

/// Peel telemetry (stable handles, gated on obs::enabled() at call sites).
struct ParallelPeelMetrics {
  obs::Counter& rounds = obs::metrics().counter("bvn.peel.parallel_rounds");
  obs::Counter& diff_edges = obs::metrics().counter("bvn.peel.diff_edges");
  obs::Counter& chunks = obs::metrics().counter("bvn.peel.chunks");
  obs::Counter& aborts = obs::metrics().counter("bvn.peel.aborts");
  obs::Histogram& batch_width =
      obs::metrics().histogram("bvn.peel.batch_width", obs::pow2_buckets(1024.0));
  obs::Histogram& freed_per_round =
      obs::metrics().histogram("bvn.peel.freed_per_round", obs::pow2_buckets(1024.0));

  static ParallelPeelMetrics& get() {
    static ParallelPeelMetrics m;
    return m;
  }
};

/// Phase-1 state: the lazy-key loop plus the diff log Phase 2 replays.
struct PeelState {
  int n = 0;
  std::vector<int> ml;        ///< current matching, row -> col
  std::vector<int> mr;        ///< current matching, col -> row
  std::vector<double> key;    ///< per matched row: value-at-join + C-at-join
  std::vector<int> ver;       ///< heap-entry version per row
  std::priority_queue<KeyEntry, std::vector<KeyEntry>, KeyGreater> heap;
  double C = 0.0;             ///< coefficient prefix sum

  // Diff log: durations[r] plus the (row, new_col) assignments that turn
  // the round-r matching into the round-(r+1) matching.
  std::vector<double> durations;
  std::vector<std::uint32_t> diff_off;  ///< per round, start into diff_row/col
  std::vector<int> diff_row;
  std::vector<int> diff_col;

  // Per-round scratch.
  std::vector<int> freed;       ///< rows zeroed this round, ascending
  std::vector<int> touched;     ///< rows whose match changed this round
  std::vector<int> touch_stamp; ///< dedup stamp for `touched`
  int round_stamp = 0;

  // BFS-repair scratch (shortest augmenting path over the support).
  std::vector<int> visited;     ///< per-column stamp
  std::vector<int> queue;       ///< BFS ring of rows
  std::vector<int> col_parent;  ///< row that discovered each column
  int visit_stamp = 0;

  void push_key(int row, double k) {
    key[row] = k;
    heap.push({k, row, ++ver[row]});
  }

  void touch(int row) {
    if (touch_stamp[row] != round_stamp) {
      touch_stamp[row] = round_stamp;
      touched.push_back(row);
    }
  }
};

/// Shortest augmenting path from `row` over the *support* of `m`
/// (support-only: every nonzero is an edge, values never probed — so the
/// lazy staleness of matched-edge values is invisible here).  BFS, not
/// Kuhn DFS: every row bumped along the path pays a residual
/// materialization (an index write), a re-key (a heap push), and a diff
/// entry, so path length is the whole repair cost — DFS wanders hundreds
/// of rows deep on the tight support of a late peel, BFS rewires the 2-5
/// rows of a shortest path.  Deterministic: FIFO row order, support
/// scanned ascending, first free column discovered wins.
bool repair_row(SupportIndex& m, PeelState& st, int row) {
  const int stamp = ++st.visit_stamp;
  int qh = 0;
  int qt = 0;
  st.queue[qt++] = row;
  int found_j = -1;
  while (qh < qt && found_j == -1) {
    const int u = st.queue[qh++];
    const auto support = m.row_support(u);
    const int degree = support.size();
    for (int e = 0; e < degree; ++e) {
      const int j = support[e];
      if (st.visited[j] == stamp) continue;
      st.visited[j] = stamp;
      st.col_parent[j] = u;
      const int other = st.mr[j];
      if (other == -1) {
        found_j = j;
        break;
      }
      st.queue[qt++] = other;
    }
  }
  if (found_j == -1) return false;
  // Unwind via the parent pointers.  Every row above the source leaves
  // its matched column — materialize that edge's residual (key - C; it
  // survived the zero set, so the residual is >= kTimeEps and the entry
  // stays in the support) and re-key the row on its new column.
  int j = found_j;
  while (true) {
    const int r = st.col_parent[j];
    const int prev = st.ml[r];  // -1 iff r is the freed source row
    if (prev != -1) m.set(r, prev, st.key[r] - st.C);
    st.ml[r] = j;
    st.mr[j] = r;
    st.push_key(r, m.at(r, j) + st.C);
    st.touch(r);
    if (r == row) break;
    j = prev;
  }
  return true;
}

/// Write every lazily-deferred matched residual back into the index.
/// Called before falling back to cover_decompose, which reads true values.
void flush_residuals(SupportIndex& m, PeelState& st) {
  for (int i = 0; i < st.n; ++i) {
    if (st.ml[i] != -1) m.set(i, st.ml[i], st.key[i] - st.C);
  }
}

/// Phase 2: materialize the schedule from the diff log, in fixed-size
/// round chunks over the thread pool.  A sequential replay first records
/// the matching at each chunk boundary; each chunk then replays its own
/// rounds from its snapshot.  Identical output at every thread count.
void materialize_schedule(const PeelState& st, CircuitSchedule& schedule) {
  const int rounds = static_cast<int>(st.durations.size());
  if (rounds == 0) return;
  const int n = st.n;
  const int chunks = (rounds + kPeelChunkRounds - 1) / kPeelChunkRounds;

  const auto apply_diffs = [&st](int r, std::vector<int>& match) {
    const std::uint32_t lo = st.diff_off[r];
    const std::uint32_t hi = st.diff_off[r + 1];
    for (std::uint32_t d = lo; d < hi; ++d) match[st.diff_row[d]] = st.diff_col[d];
  };

  // Snapshot pass: matching state at the start of each chunk.
  std::vector<int> snapshots(static_cast<std::size_t>(chunks) * n);
  {
    std::vector<int> cur = st.ml;  // st.ml holds the ROUND-0 matching (see peel loop)
    for (int r = 0; r < rounds; ++r) {
      if (r % kPeelChunkRounds == 0) {
        std::copy(cur.begin(), cur.end(),
                  snapshots.begin() + static_cast<std::size_t>(r / kPeelChunkRounds) * n);
      }
      apply_diffs(r, cur);
    }
  }

  const std::size_t base = schedule.assignments.size();
  schedule.assignments.resize(base + static_cast<std::size_t>(rounds));
  runtime::parallel_for(chunks, [&](int c) {
    std::vector<int> match(snapshots.begin() + static_cast<std::size_t>(c) * n,
                           snapshots.begin() + static_cast<std::size_t>(c + 1) * n);
    const int lo = c * kPeelChunkRounds;
    const int hi = std::min(rounds, lo + kPeelChunkRounds);
    for (int r = lo; r < hi; ++r) {
      CircuitAssignment& a = schedule.assignments[base + static_cast<std::size_t>(r)];
      a.duration = st.durations[r];
      a.circuits.clear();
      a.circuits.reserve(n);
      for (int i = 0; i < n; ++i) a.circuits.push_back({i, match[i]});
      apply_diffs(r, match);
    }
  });

  if (obs::enabled()) {
    ParallelPeelMetrics& pm = ParallelPeelMetrics::get();
    pm.chunks.inc(static_cast<double>(chunks));
    for (int c = 0; c < chunks; ++c) {
      pm.batch_width.observe(static_cast<double>(
          std::min(rounds, (c + 1) * kPeelChunkRounds) - c * kPeelChunkRounds));
    }
  }
}

}  // namespace

CircuitSchedule peel_parallel(SupportIndex m) {
  CircuitSchedule schedule;
  obs::ScopedSpan span("bvn.peel_parallel", "bvn");
  const int n = m.n();
  if (n == 0 || m.nnz() == 0) return schedule;

  PeelState st;
  st.n = n;
  st.ml.assign(n, -1);
  st.mr.assign(n, -1);
  st.key.assign(n, 0.0);
  st.ver.assign(n, 0);
  st.touch_stamp.assign(n, 0);
  st.visited.assign(n, 0);
  st.queue.assign(n, 0);
  st.col_parent.assign(n, 0);

  // Initial perfect matching on the support (canonical threshold-matching
  // path).  No perfect matching up front means no Birkhoff structure to
  // peel — cover the whole thing, exactly like the sequential peel.
  {
    const MatchingResult init = threshold_matching(m, 2 * kTimeEps);
    if (!init.is_perfect()) {
      if (obs::enabled()) {
        ParallelPeelMetrics::get().aborts.inc();
        obs::flight_recorder().record("peel_abort", 0.0, n,
                                      static_cast<double>(m.nnz()),
                                      "no initial perfect matching");
        obs::flight_recorder().trigger("bvn.peel abort: no initial perfect matching");
      }
      return cover_decompose(std::move(m));
    }
    for (int i = 0; i < n; ++i) {
      st.ml[i] = init.match_left[i];
      st.mr[init.match_left[i]] = i;
      st.push_key(i, m.at(i, st.ml[i]));  // C == 0 at join
    }
  }
  // Keep the round-0 matching for the snapshot pass: Phase 1 mutates
  // st.ml in place, so materialize from a copy taken now.
  std::vector<int> initial_match = st.ml;

  bool aborted = false;
  while (m.nnz() > 0) {
    // Pop the minimum valid key: round coefficient = key_min - C.
    KeyEntry top{};
    for (;;) {
      top = st.heap.top();
      st.heap.pop();
      if (top.ver == st.ver[top.row] && st.ml[top.row] != -1) break;
    }
    const double new_c = top.key;
    const double coefficient = new_c - st.C;
    ++st.round_stamp;
    st.touched.clear();
    st.freed.clear();
    st.freed.push_back(top.row);
    // Every matched key within tolerance of the new prefix hits zero this
    // round (key - new_c < kTimeEps == the clamp_zero test).
    while (!st.heap.empty()) {
      const KeyEntry next = st.heap.top();
      if (next.ver != st.ver[next.row] || st.ml[next.row] == -1) {
        st.heap.pop();
        continue;
      }
      if (next.key >= new_c + kTimeEps) break;
      st.heap.pop();
      st.freed.push_back(next.row);
    }
    st.durations.push_back(coefficient);
    st.diff_off.push_back(static_cast<std::uint32_t>(st.diff_row.size()));
    st.C = new_c;

    // Zero the freed edges (support removal; their residual is exactly 0).
    std::sort(st.freed.begin(), st.freed.end());
    for (const int i : st.freed) {
      const int j = st.ml[i];
      m.set(i, j, 0.0);
      st.ml[i] = -1;
      st.mr[j] = -1;
      ++st.ver[i];  // invalidate any remaining heap entries
      st.touch(i);
    }
    if (obs::enabled()) {
      ParallelPeelMetrics::get().freed_per_round.observe(
          static_cast<double>(st.freed.size()));
    }

    // Drained: this round zeroed the last of the support; no next round
    // to repair for (its diff range stays empty — nothing replays it).
    if (m.nnz() == 0) break;

    // Repair: re-match every freed row (ascending — deterministic).
    for (const int i : st.freed) {
      if (!repair_row(m, st, i)) {
        aborted = true;
        break;
      }
    }
    if (aborted) break;

    // Commit this round's diff: final (row, col) per touched row.  The
    // range runs from the diff_off pushed at round start to the one the
    // next round pushes (or the final sentinel).
    for (const int r : st.touched) {
      st.diff_row.push_back(r);
      st.diff_col.push_back(st.ml[r]);
    }
  }
  st.diff_off.push_back(static_cast<std::uint32_t>(st.diff_row.size()));

  const bool obs_on = obs::enabled();
  if (obs_on) {
    ParallelPeelMetrics& pm = ParallelPeelMetrics::get();
    pm.rounds.inc(static_cast<double>(st.durations.size()));
    pm.diff_edges.inc(static_cast<double>(st.diff_row.size()));
  }

  if (aborted) {
    // Speculation failed (float drift broke the Birkhoff guarantee for
    // the residue).  The aborted round itself is still sound — its
    // emitted matching was perfect at round start and its subtraction is
    // fully accounted in C — so keep it; validate by flushing every lazy
    // residual back into the index, then cover the remainder.
    if (obs_on) {
      ParallelPeelMetrics::get().aborts.inc();
      obs::flight_recorder().record("peel_abort", 0.0, n, static_cast<double>(m.nnz()),
                                    "repair failed mid-peel");
      obs::flight_recorder().trigger("bvn.peel abort: repair failed mid-peel");
    }
    flush_residuals(m, st);
  }

  // Phase 2 replays from the round-0 matching.
  st.ml = std::move(initial_match);
  materialize_schedule(st, schedule);

  if (aborted || m.nnz() > 0) {
    const CircuitSchedule tail = cover_decompose(std::move(m));
    for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
  }
  return schedule;
}

}  // namespace reco
