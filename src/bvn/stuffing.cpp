#include "bvn/stuffing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace reco {

Matrix stuff(const Matrix& demand, Time target) {
  const int n = demand.n();
  Matrix out = demand;
  const Time goal = std::max(demand.rho(), target);
  std::vector<Time> row_slack(n);
  std::vector<Time> col_slack(n);
  for (int i = 0; i < n; ++i) row_slack[i] = clamp_zero(goal - demand.row_sum(i));
  for (int j = 0; j < n; ++j) col_slack[j] = clamp_zero(goal - demand.col_sum(j));

  // Greedy transportation fill: the bipartite slack-supply problem always
  // has a feasible integral-structure solution because sum(row_slack) ==
  // sum(col_slack) == n*goal - total(demand).
  for (int i = 0; i < n; ++i) {
    if (approx_zero(row_slack[i])) continue;
    for (int j = 0; j < n && !approx_zero(row_slack[i]); ++j) {
      const Time add = std::min(row_slack[i], col_slack[j]);
      if (approx_zero(add)) continue;
      out.at(i, j) += add;
      row_slack[i] = clamp_zero(row_slack[i] - add);
      col_slack[j] = clamp_zero(col_slack[j] - add);
    }
  }

  // Repair pass.  The approx_zero/clamp_zero skips above each drop at most
  // a tolerance-sized crumb, but n of them can stack up in one row while
  // the matching column slacks were clamped away individually — the greedy
  // loop then exits with multi-eps residual row slack and silently returns
  // a matrix that is NOT doubly stochastic at kTimeEps.  Settle the exact
  // deficits (recomputed without clamping), preferring cells that already
  // carry demand so sparsity-sensitive consumers see no new support.
  std::vector<Time> col_need(n);
  bool any_col_need = false;
  for (int j = 0; j < n; ++j) {
    col_need[j] = goal - out.col_sum(j);
    any_col_need = any_col_need || col_need[j] > 0.0;
  }
  for (int i = 0; i < n; ++i) {
    Time need = goal - out.row_sum(i);
    if (need <= 0.0) continue;
    for (int pass = 0; pass < 2 && need > 0.0 && any_col_need; ++pass) {
      for (int j = 0; j < n && need > 0.0; ++j) {
        if (pass == 0 && approx_zero(out.at(i, j))) continue;  // nonzero cells first
        const Time give = std::min(need, col_need[j]);
        if (give <= 0.0) continue;
        out.at(i, j) += give;
        col_need[j] -= give;
        need -= give;
      }
    }
    // Totals match by construction, so any remainder is pure round-off
    // (far below kTimeEps); park it on the diagonal.
    if (need > 0.0) out.at(i, i) += need;
  }
  return out;
}

Matrix stuff_granular(const Matrix& demand, Time quantum) {
  if (quantum <= 0.0) throw std::invalid_argument("stuff_granular: quantum must be positive");
  const Time rho = demand.rho();
  const Time goal = std::max(1.0, std::ceil(rho / quantum - kTimeEps)) * quantum;
  return stuff(demand, goal);
}

}  // namespace reco
