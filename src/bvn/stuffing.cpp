#include "bvn/stuffing.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/simd.hpp"
#include "obs/obs.hpp"

namespace reco {

namespace {

/// Union-find "next live column" ladder: find(j) is the smallest live
/// column >= j; kill(j) splices j out.  Amortized near-O(1) per step, and
/// iteration order stays ascending — the same column order as the dense
/// j = 0..n-1 sweep, which is what keeps the fill arithmetic identical.
class LiveColumns {
 public:
  explicit LiveColumns(int n) : next_(n + 1) {
    std::iota(next_.begin(), next_.end(), 0);
  }
  int find(int j) {
    while (next_[j] != j) {
      next_[j] = next_[next_[j]];  // path halving
      j = next_[j];
    }
    return j;
  }
  void kill(int j) { next_[j] = j + 1; }

 private:
  std::vector<int> next_;
};

}  // namespace

SupportIndex stuff(SupportIndex demand, Time target) {
  const int n = demand.n();
  obs::ScopedSpan span("bvn.stuff", "bvn");
  span.arg("n", static_cast<double>(n));
  SupportIndex out = std::move(demand);
  // Scan-exact sums (ordered support re-scan == dense scan bit-for-bit);
  // the incremental sums may carry round-off from the caller's mutations.
  std::vector<Time> row_sums(n);
  std::vector<Time> col_sums(n);
  for (int i = 0; i < n; ++i) row_sums[i] = out.row_sum_exact(i);
  for (int j = 0; j < n; ++j) col_sums[j] = out.col_sum_exact(j);
  // The sums themselves are ordered IEEE additions and stay scalar; the
  // max reduction and the slack clamp below are exact element-wise maps,
  // dispatched through the SIMD kernel layer.
  const simd::Kernels& kn = simd::kernels();
  const Time rho = kn.max_value(col_sums.data(), n, kn.max_value(row_sums.data(), n, 0.0));
  const Time goal = std::max(rho, target);
  std::vector<Time> row_slack(n);
  std::vector<Time> col_slack(n);
  kn.sub_clamp(goal, row_sums.data(), n, row_slack.data());
  kn.sub_clamp(goal, col_sums.data(), n, col_slack.data());

  // Greedy transportation fill: the bipartite slack-supply problem always
  // has a feasible integral-structure solution because sum(row_slack) ==
  // sum(col_slack) == n*goal - total(demand).  Columns whose slack hits
  // zero leave the ladder, so the sweep touches O(fill-ins) cells, not n
  // per row; columns skipped by the dense loop contribute add == 0 there,
  // so skipping them structurally changes nothing.
  // Local tallies published once at the end (no atomics in the loops).
  Time padding_added = 0.0;
  std::uint64_t fill_entries = 0;
  for (int i = 0; i < n; ++i) padding_added += row_slack[i];

  LiveColumns live(n);
  for (int j = 0; j < n; ++j) {
    if (approx_zero(col_slack[j])) live.kill(j);
  }
  for (int i = 0; i < n; ++i) {
    if (approx_zero(row_slack[i])) continue;
    for (int j = live.find(0); j < n && !approx_zero(row_slack[i]); j = live.find(j + 1)) {
      const Time add = std::min(row_slack[i], col_slack[j]);
      out.add(i, j, add);
      ++fill_entries;
      row_slack[i] = clamp_zero(row_slack[i] - add);
      col_slack[j] = clamp_zero(col_slack[j] - add);
      if (approx_zero(col_slack[j])) live.kill(j);
    }
  }

  // Repair pass.  The approx_zero/clamp_zero skips above each drop at most
  // a tolerance-sized crumb, but n of them can stack up in one row while
  // the matching column slacks were clamped away individually — the greedy
  // loop then exits with multi-eps residual row slack and silently returns
  // a matrix that is NOT doubly stochastic at kTimeEps.  Settle the exact
  // deficits (recomputed without clamping), preferring cells that already
  // carry demand so sparsity-sensitive consumers see no new support.
  std::vector<Time> col_need(n);
  bool any_col_need = false;
  Time repaired_slack = 0.0;
  for (int j = 0; j < n; ++j) {
    col_need[j] = goal - out.col_sum_exact(j);
    any_col_need = any_col_need || col_need[j] > 0.0;
  }
  for (int i = 0; i < n; ++i) {
    Time need = goal - out.row_sum_exact(i);
    if (need <= 0.0) continue;
    repaired_slack += need;
    for (int pass = 0; pass < 2 && need > 0.0 && any_col_need; ++pass) {
      if (pass == 0) {
        // Nonzero cells first: walk a snapshot of the row's support (the
        // adds below keep these cells nonzero, but snapshotting guards
        // against iterator invalidation by construction).
        const auto span = out.row_support(i);
        const std::vector<int> support(span.begin(), span.end());
        for (const int j : support) {
          if (need <= 0.0) break;
          const Time give = std::min(need, col_need[j]);
          if (give <= 0.0) continue;
          out.add(i, j, give);
          col_need[j] -= give;
          need -= give;
        }
      } else {
        for (int j = 0; j < n && need > 0.0; ++j) {
          const Time give = std::min(need, col_need[j]);
          if (give <= 0.0) continue;
          out.add(i, j, give);
          col_need[j] -= give;
          need -= give;
        }
      }
    }
    // Totals match by construction, so any remainder is pure round-off
    // (far below kTimeEps); park it on the diagonal.
    if (need > 0.0) out.add(i, i, need);
  }
  if (obs::enabled()) {
    obs::metrics().counter("stuff.calls").inc();
    obs::metrics().counter("stuff.padding_total").inc(padding_added);
    obs::metrics().counter("stuff.fill_entries").inc(static_cast<double>(fill_entries));
    obs::metrics().counter("stuff.repaired_slack").inc(repaired_slack);
    span.arg("padding", padding_added);
    span.arg("fill_entries", static_cast<double>(fill_entries));
    span.arg("repaired_slack", repaired_slack);
  }
  return out;
}

Matrix stuff(const Matrix& demand, Time target) {
  return stuff(SupportIndex(demand), target).release();
}

SupportIndex stuff_granular(SupportIndex demand, Time quantum) {
  if (quantum <= 0.0) throw std::invalid_argument("stuff_granular: quantum must be positive");
  Time rho = 0.0;
  for (int i = 0; i < demand.n(); ++i) rho = std::max(rho, demand.row_sum_exact(i));
  for (int j = 0; j < demand.n(); ++j) rho = std::max(rho, demand.col_sum_exact(j));
  const Time goal = std::max(1.0, std::ceil(rho / quantum - kTimeEps)) * quantum;
  return stuff(std::move(demand), goal);
}

Matrix stuff_granular(const Matrix& demand, Time quantum) {
  return stuff_granular(SupportIndex(demand), quantum).release();
}

}  // namespace reco
