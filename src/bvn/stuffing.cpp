#include "bvn/stuffing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace reco {

Matrix stuff(const Matrix& demand, Time target) {
  const int n = demand.n();
  Matrix out = demand;
  const Time goal = std::max(demand.rho(), target);
  std::vector<Time> row_slack(n);
  std::vector<Time> col_slack(n);
  for (int i = 0; i < n; ++i) row_slack[i] = clamp_zero(goal - demand.row_sum(i));
  for (int j = 0; j < n; ++j) col_slack[j] = clamp_zero(goal - demand.col_sum(j));

  // Greedy transportation fill: the bipartite slack-supply problem always
  // has a feasible integral-structure solution because sum(row_slack) ==
  // sum(col_slack) == n*goal - total(demand).
  for (int i = 0; i < n; ++i) {
    if (approx_zero(row_slack[i])) continue;
    for (int j = 0; j < n && !approx_zero(row_slack[i]); ++j) {
      const Time add = std::min(row_slack[i], col_slack[j]);
      if (approx_zero(add)) continue;
      out.at(i, j) += add;
      row_slack[i] = clamp_zero(row_slack[i] - add);
      col_slack[j] = clamp_zero(col_slack[j] - add);
    }
  }
  return out;
}

Matrix stuff_granular(const Matrix& demand, Time quantum) {
  if (quantum <= 0.0) throw std::invalid_argument("stuff_granular: quantum must be positive");
  const Time rho = demand.rho();
  const Time goal = std::max(1.0, std::ceil(rho / quantum - kTimeEps)) * quantum;
  return stuff(demand, goal);
}

}  // namespace reco
