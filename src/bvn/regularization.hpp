// Regularization on traffic demands (Sec. III-B): round every nonzero entry
// up to the next integer multiple of the reconfiguration delay delta.  The
// resulting matrix is delta-granular, so every BvN coefficient extracted
// from it is >= delta — the structural fact behind Lemma 1 and Theorem 2.
#pragma once

#include "core/matrix.hpp"
#include "core/support_index.hpp"
#include "core/types.hpp"

namespace reco {

/// d_ij -> ceil(d_ij / quantum) * quantum for nonzero entries; zeros stay
/// zero (regularization only inflates existing demands, footnote 5).
Matrix regularize(const Matrix& demand, Time quantum);

/// Sparse path: iterate the support directly (O(nnz) instead of O(N^2))
/// and return the result as an index, ready for stuffing/decomposition.
/// Regularization never changes the support (zeros stay zero, nonzeros
/// stay nonzero), so the output index inherits the input's structure.
SupportIndex regularize(const SupportIndex& demand, Time quantum);

/// The total inflation added by regularization (sum of the per-entry
/// round-ups); bounded by nnz(D) * quantum.
Time regularization_overhead(const Matrix& demand, Time quantum);

}  // namespace reco
