// Birkhoff-von-Neumann decomposition of a doubly stochastic matrix into
// permutation matrices with coefficients — equivalently, into a circuit
// scheduling (each permutation is a circuit establishment, its coefficient
// the planned duration).  Three extraction policies:
//
//  * kFirstMatching   — classic Birkhoff peeling: any perfect matching on
//                       the nonzero support, coefficient = its min entry.
//                       This is the Theorem-1 strawman and LP-II-GB's
//                       intra-coflow method.
//  * kMaxMinAmortized — descending power-of-two threshold with incremental
//                       matching repair; extracts matchings whose min entry
//                       is within 2x of the true bottleneck optimum at
//                       amortized near-linear cost.  This is the "max-min
//                       matching similar to [7]" of Alg. 1, and the policy
//                       Reco-Sin uses by default.
//  * kExactBottleneck — true max-min matching each round (binary search +
//                       Hopcroft-Karp); exact but a log-factor slower.
//                       Used by tests and ablations.
//  * kParallelPeel    — kFirstMatching semantics at N >= 1024 scale:
//                       lazy-key round discovery (heap-driven, O(nnz log N)
//                       instead of O(N) per round) plus thread-pool
//                       materialization of the schedule in fixed round
//                       chunks.  Deterministic at every thread count; see
//                       bvn/parallel_peel.hpp.
#pragma once

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/support_index.hpp"
#include "matching/matching_engine.hpp"

namespace reco {

enum class BvnPolicy {
  kFirstMatching,
  kMaxMinAmortized,
  kExactBottleneck,
  kParallelPeel,
};

/// Decompose `m` (must be doubly stochastic; throws otherwise) into a
/// circuit schedule whose service matrix equals `m` exactly.
/// Terminates in at most nnz(m) rounds: every extracted coefficient zeroes
/// at least one entry.
CircuitSchedule bvn_decompose(Matrix m, BvnPolicy policy);

/// Sparse-path variant for callers that already carry a SupportIndex
/// (the Reco-Sin pipeline builds one index and threads it through
/// regularize -> stuff -> decompose).  Peeling cost is proportional to the
/// support: O(nnz * sqrt(N)) for the initial matching plus O(degree) per
/// repaired edge per round, versus O(rounds * N^2) for a dense rescan.
CircuitSchedule bvn_decompose(SupportIndex m, BvnPolicy policy);

/// Caller-owned-scratch variant: kExactBottleneck threads `scratch` through
/// every peel round, so a long-lived scratch warm-starts across *calls* too
/// (the online replan core decomposes once per epoch and reuses one arena).
/// The other policies carry their own incremental matcher state and ignore
/// the scratch.
CircuitSchedule bvn_decompose(SupportIndex m, BvnPolicy policy, MatchingScratch& scratch);

/// Cover an arbitrary non-negative matrix with matchings: each round takes
/// a maximum matching on the nonzero support and holds it for the largest
/// matched entry, zeroing everything matched.  The service matrix *covers*
/// (>=) the input rather than equaling it.  Needs no Birkhoff structure;
/// used to finish the tolerance-scale residue that floating-point slicing
/// leaves behind, and usable on its own as a crude scheduler.
CircuitSchedule cover_decompose(Matrix m);
CircuitSchedule cover_decompose(SupportIndex m);

}  // namespace reco
