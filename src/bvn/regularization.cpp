#include "bvn/regularization.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/simd.hpp"
#include "obs/obs.hpp"

namespace reco {

namespace {
double round_up_to_quantum(double x, double quantum) {
  // Entries already sitting on a multiple of the quantum (up to simulation
  // tolerance) must not be bumped a full quantum higher.
  const double k = std::ceil(x / quantum - kTimeEps);
  return std::max(1.0, k) * quantum;
}
}  // namespace

Matrix regularize(const Matrix& demand, Time quantum) {
  if (quantum <= 0.0) throw std::invalid_argument("regularize: quantum must be positive");
  Matrix out(demand.n());
  for (int i = 0; i < demand.n(); ++i) {
    for (int j = 0; j < demand.n(); ++j) {
      const double d = demand.at(i, j);
      if (!approx_zero(d)) out.at(i, j) = round_up_to_quantum(d, quantum);
    }
  }
  return out;
}

SupportIndex regularize(const SupportIndex& demand, Time quantum) {
  if (quantum <= 0.0) throw std::invalid_argument("regularize: quantum must be positive");
  obs::ScopedSpan span("bvn.regularize", "bvn");
  SupportIndex out = SupportIndex::zeros(demand.n());
  Time padding = 0.0;  // published once below; Theorem 2 bounds it by delta*nnz
  std::vector<double> rounded;  // per-row scratch for the vectorized rounding map
  for (int i = 0; i < demand.n(); ++i) {
    const auto cols = demand.row_support(i);
    const auto vals = demand.row_values(i);
    rounded.resize(static_cast<std::size_t>(cols.size()));
    // Element-wise div/ceil/max/mul — vectorizable bit-identically; the
    // padding accumulation below stays an ordered scalar sum.
    simd::kernels().round_up_quantum(vals.begin(), cols.size(), quantum, rounded.data());
    for (int k = 0; k < cols.size(); ++k) {
      padding += rounded[static_cast<std::size_t>(k)] - vals[k];
      out.set(i, cols[k], rounded[static_cast<std::size_t>(k)]);
    }
  }
  if (obs::enabled()) {
    obs::metrics().counter("regularize.calls").inc();
    obs::metrics().counter("regularize.padding_total").inc(padding);
    obs::metrics().counter("regularize.entries").inc(static_cast<double>(demand.nnz()));
    // The Theorem-2 worst case: padding <= delta * nnz.  Emitting both lets
    // a metrics dump report the realized fraction of the bound per run.
    obs::metrics().counter("regularize.delta_nnz_bound").inc(quantum * demand.nnz());
    span.arg("nnz", static_cast<double>(demand.nnz()));
    span.arg("padding", padding);
    span.arg("delta_nnz_bound", quantum * demand.nnz());
  }
  return out;
}

Time regularization_overhead(const Matrix& demand, Time quantum) {
  const Matrix reg = regularize(demand, quantum);
  return reg.total() - demand.total();
}

}  // namespace reco
