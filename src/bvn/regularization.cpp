#include "bvn/regularization.hpp"

#include <cmath>
#include <stdexcept>

namespace reco {

namespace {
double round_up_to_quantum(double x, double quantum) {
  // Entries already sitting on a multiple of the quantum (up to simulation
  // tolerance) must not be bumped a full quantum higher.
  const double k = std::ceil(x / quantum - kTimeEps);
  return std::max(1.0, k) * quantum;
}
}  // namespace

Matrix regularize(const Matrix& demand, Time quantum) {
  if (quantum <= 0.0) throw std::invalid_argument("regularize: quantum must be positive");
  Matrix out(demand.n());
  for (int i = 0; i < demand.n(); ++i) {
    for (int j = 0; j < demand.n(); ++j) {
      const double d = demand.at(i, j);
      if (!approx_zero(d)) out.at(i, j) = round_up_to_quantum(d, quantum);
    }
  }
  return out;
}

SupportIndex regularize(const SupportIndex& demand, Time quantum) {
  if (quantum <= 0.0) throw std::invalid_argument("regularize: quantum must be positive");
  SupportIndex out = SupportIndex::zeros(demand.n());
  for (int i = 0; i < demand.n(); ++i) {
    for (const int j : demand.row_support(i)) {
      out.set(i, j, round_up_to_quantum(demand.at(i, j), quantum));
    }
  }
  return out;
}

Time regularization_overhead(const Matrix& demand, Time quantum) {
  const Matrix reg = regularize(demand, quantum);
  return reg.total() - demand.total();
}

}  // namespace reco
