#include "bvn/dense_reference.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

#include "matching/bottleneck.hpp"
#include "matching/hopcroft_karp.hpp"

namespace reco::dense_reference {

namespace {

constexpr double kSupportThreshold = 2 * kTimeEps;

/// The original dense incremental matcher: Kuhn augmentation probes every
/// column of a row, present edge or not.
class DenseMatcher {
 public:
  DenseMatcher(const Matrix& matrix, double threshold)
      : matrix_(&matrix),
        threshold_(threshold),
        n_(matrix.n()),
        match_left_(matrix.n(), -1),
        match_right_(matrix.n(), -1),
        visited_(matrix.n(), 0) {}

  double threshold() const { return threshold_; }

  void set_threshold(double threshold) {
    const bool raised = threshold > threshold_;
    threshold_ = threshold;
    if (!raised) return;
    for (int i = 0; i < n_; ++i) {
      const int j = match_left_[i];
      if (j != -1 && !edge_present(i, j)) {
        match_left_[i] = -1;
        match_right_[j] = -1;
        --size_;
      }
    }
  }

  void on_entry_changed(int i, int j) {
    if (match_left_[i] == j && !edge_present(i, j)) {
      match_left_[i] = -1;
      match_right_[j] = -1;
      --size_;
    }
  }

  int rematch() {
    for (int i = 0; i < n_; ++i) {
      if (match_left_[i] != -1) continue;
      ++stamp_;
      if (try_augment(i)) ++size_;
    }
    return size_;
  }

  bool is_perfect() const { return size_ == n_; }
  int matched_col(int i) const { return match_left_[i]; }

 private:
  bool edge_present(int i, int j) const {
    return matrix_->at(i, j) >= threshold_ - kTimeEps;
  }

  bool try_augment(int row) {
    for (int j = 0; j < n_; ++j) {
      if (visited_[j] == stamp_ || !edge_present(row, j)) continue;
      visited_[j] = stamp_;
      const int other = match_right_[j];
      if (other == -1 || try_augment(other)) {
        match_left_[row] = j;
        match_right_[j] = row;
        return true;
      }
    }
    return false;
  }

  const Matrix* matrix_;
  double threshold_;
  int n_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> visited_;
  int stamp_ = 0;
  int size_ = 0;
};

CircuitAssignment extract_and_subtract(Matrix& m, DenseMatcher& matcher, int& nnz_left) {
  const int n = m.n();
  double coefficient = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    coefficient = std::min(coefficient, m.at(i, matcher.matched_col(i)));
  }
  CircuitAssignment a;
  a.duration = coefficient;
  a.circuits.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int j = matcher.matched_col(i);
    a.circuits.push_back({i, j});
    const double before = m.at(i, j);
    m.at(i, j) = clamp_zero(before - coefficient);
    if (approx_zero(m.at(i, j)) && !approx_zero(before)) --nnz_left;
    matcher.on_entry_changed(i, j);
  }
  return a;
}

CircuitSchedule peel(Matrix m, double initial_threshold, bool halve_on_failure) {
  CircuitSchedule schedule;
  int nnz_left = m.nnz();
  DenseMatcher matcher(m, initial_threshold);
  while (nnz_left > 0) {
    matcher.rematch();
    if (matcher.is_perfect()) {
      schedule.assignments.push_back(extract_and_subtract(m, matcher, nnz_left));
      continue;
    }
    if (!halve_on_failure || matcher.threshold() <= kSupportThreshold) {
      const CircuitSchedule tail = dense_reference::cover_decompose(std::move(m));
      for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
      break;
    }
    const double next = matcher.threshold() / 2.0;
    matcher.set_threshold(next > kSupportThreshold ? next : kSupportThreshold);
  }
  return schedule;
}

CircuitSchedule peel_exact_bottleneck(Matrix m) {
  CircuitSchedule schedule;
  while (m.nnz() > 0) {
    // Uses the local seed oracle, not the amortized engine, so this peel
    // stays an independent reference for the engine's warm-started rounds.
    const auto match = bottleneck_perfect_matching_reference(m);
    if (!match) {
      const CircuitSchedule tail = dense_reference::cover_decompose(std::move(m));
      for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
      break;
    }
    CircuitAssignment a;
    a.duration = match->bottleneck;
    a.circuits.reserve(match->pairs.size());
    for (const auto& [i, j] : match->pairs) {
      a.circuits.push_back({i, j});
      m.at(i, j) = clamp_zero(m.at(i, j) - match->bottleneck);
    }
    schedule.assignments.push_back(std::move(a));
  }
  return schedule;
}

// --- seed Hopcroft-Karp, kept verbatim as the oracle's matcher ----------

constexpr int kHkInf = std::numeric_limits<int>::max();

bool ref_bfs_layers(const std::vector<std::vector<int>>& adj, const std::vector<int>& match_left,
                    const std::vector<int>& match_right, std::vector<int>& dist) {
  std::deque<int> q;
  for (std::size_t u = 0; u < adj.size(); ++u) {
    if (match_left[u] == -1) {
      dist[u] = 0;
      q.push_back(static_cast<int>(u));
    } else {
      dist[u] = kHkInf;
    }
  }
  bool found = false;
  while (!q.empty()) {
    const int u = q.front();
    q.pop_front();
    for (int v : adj[u]) {
      const int w = match_right[v];
      if (w == -1) {
        found = true;
      } else if (dist[w] == kHkInf) {
        dist[w] = dist[u] + 1;
        q.push_back(w);
      }
    }
  }
  return found;
}

bool ref_dfs_augment(int u, const std::vector<std::vector<int>>& adj,
                     std::vector<int>& match_left, std::vector<int>& match_right,
                     std::vector<int>& dist) {
  for (int v : adj[u]) {
    const int w = match_right[v];
    if (w == -1 ||
        (dist[w] == dist[u] + 1 && ref_dfs_augment(w, adj, match_left, match_right, dist))) {
      match_left[u] = v;
      match_right[v] = u;
      return true;
    }
  }
  dist[u] = kHkInf;  // dead end: prune for this phase
  return false;
}

MatchingResult ref_hopcroft_karp(int n, const std::vector<std::vector<int>>& adj) {
  MatchingResult r;
  r.match_left.assign(n, -1);
  r.match_right.assign(n, -1);
  std::vector<int> dist(n);
  while (ref_bfs_layers(adj, r.match_left, r.match_right, dist)) {
    for (int u = 0; u < n; ++u) {
      if (r.match_left[u] == -1) {
        if (ref_dfs_augment(u, adj, r.match_left, r.match_right, dist)) ++r.size;
      }
    }
  }
  return r;
}

/// Shared tail of the two reference overloads: `values` arrives as the
/// raw row-major nonzero list; adjacency at each probe comes from the
/// (unchanged, seed-faithful) threshold_adjacency builders.
template <class Src>
std::optional<BottleneckMatching> bottleneck_reference_impl(const Src& src,
                                                            std::vector<double> values) {
  if (values.empty()) return std::nullopt;
  std::sort(values.begin(), values.end());
  // Exactly-distinct ladder; the tolerance lives in threshold_adjacency's
  // `>= t - kTimeEps` edge test only (the epsilon-dedup fix).
  values.erase(std::unique(values.begin(), values.end()), values.end());

  const int n = src.n();
  const auto feasible = [&](double t) {
    return ref_hopcroft_karp(n, threshold_adjacency(src, t)).size == n;
  };

  // A perfect matching must exist at the smallest nonzero threshold.
  if (!feasible(values.front())) return std::nullopt;

  // Binary search for the largest threshold still admitting a perfect
  // matching.  Invariant: feasible at values[lo], infeasible at values[hi].
  std::size_t lo = 0;
  std::size_t hi = values.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (feasible(values[mid])) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  const double best = values[lo];
  const MatchingResult r = ref_hopcroft_karp(n, threshold_adjacency(src, best));
  BottleneckMatching out;
  out.bottleneck = best;
  out.pairs.reserve(n);
  for (int i = 0; i < n; ++i) out.pairs.emplace_back(i, r.match_left[i]);
  return out;
}

}  // namespace

std::optional<BottleneckMatching> bottleneck_perfect_matching_reference(const Matrix& m) {
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(m.n()) * m.n());
  for (int i = 0; i < m.n(); ++i) {
    for (int j = 0; j < m.n(); ++j) {
      const double x = m.at(i, j);
      if (!approx_zero(x)) values.push_back(x);
    }
  }
  return bottleneck_reference_impl(m, std::move(values));
}

std::optional<BottleneckMatching> bottleneck_perfect_matching_reference(const SupportIndex& idx) {
  std::vector<double> values;
  values.reserve(idx.nnz());
  for (int i = 0; i < idx.n(); ++i) {
    const auto vals = idx.row_values(i);
    values.insert(values.end(), vals.begin(), vals.end());
  }
  return bottleneck_reference_impl(idx, std::move(values));
}

CircuitSchedule cover_decompose(Matrix m) {
  CircuitSchedule schedule;
  while (m.nnz() > 0) {
    const MatchingResult match = threshold_matching(m, kSupportThreshold);
    CircuitAssignment a;
    for (int i = 0; i < m.n(); ++i) {
      const int j = match.match_left[i];
      if (j == -1) continue;
      a.duration = std::max(a.duration, m.at(i, j));
      a.circuits.push_back({i, j});
      m.at(i, j) = 0.0;
    }
    if (a.circuits.empty()) break;
    schedule.assignments.push_back(std::move(a));
  }
  return schedule;
}

CircuitSchedule bvn_decompose(Matrix m, BvnPolicy policy) {
  if (!m.is_doubly_stochastic(kTimeEps * std::max(1, m.n()))) {
    throw std::invalid_argument("dense_reference::bvn_decompose: matrix is not doubly stochastic");
  }
  if (m.n() == 0 || m.nnz() == 0) return {};
  switch (policy) {
    case BvnPolicy::kFirstMatching:
      return peel(std::move(m), kSupportThreshold, /*halve_on_failure=*/false);
    case BvnPolicy::kMaxMinAmortized: {
      const double start =
          std::max(std::exp2(std::ceil(std::log2(m.max_entry()))), kSupportThreshold);
      return peel(std::move(m), start, /*halve_on_failure=*/true);
    }
    case BvnPolicy::kExactBottleneck:
      return peel_exact_bottleneck(std::move(m));
    case BvnPolicy::kParallelPeel:
      // The dense reference has no lazy-key twin; first-matching peeling is
      // the semantic oracle for the parallel peel's reconstruction tests.
      return peel(std::move(m), kSupportThreshold, /*halve_on_failure=*/false);
  }
  throw std::logic_error("dense_reference::bvn_decompose: unknown policy");
}

Matrix stuff(const Matrix& demand, Time target) {
  const int n = demand.n();
  Matrix out = demand;
  const Time goal = std::max(demand.rho(), target);
  std::vector<Time> row_slack(n);
  std::vector<Time> col_slack(n);
  for (int i = 0; i < n; ++i) row_slack[i] = clamp_zero(goal - demand.row_sum(i));
  for (int j = 0; j < n; ++j) col_slack[j] = clamp_zero(goal - demand.col_sum(j));

  for (int i = 0; i < n; ++i) {
    if (approx_zero(row_slack[i])) continue;
    for (int j = 0; j < n && !approx_zero(row_slack[i]); ++j) {
      const Time add = std::min(row_slack[i], col_slack[j]);
      if (approx_zero(add)) continue;
      out.at(i, j) += add;
      row_slack[i] = clamp_zero(row_slack[i] - add);
      col_slack[j] = clamp_zero(col_slack[j] - add);
    }
  }

  std::vector<Time> col_need(n);
  bool any_col_need = false;
  for (int j = 0; j < n; ++j) {
    col_need[j] = goal - out.col_sum(j);
    any_col_need = any_col_need || col_need[j] > 0.0;
  }
  for (int i = 0; i < n; ++i) {
    Time need = goal - out.row_sum(i);
    if (need <= 0.0) continue;
    for (int pass = 0; pass < 2 && need > 0.0 && any_col_need; ++pass) {
      for (int j = 0; j < n && need > 0.0; ++j) {
        if (pass == 0 && approx_zero(out.at(i, j))) continue;
        const Time give = std::min(need, col_need[j]);
        if (give <= 0.0) continue;
        out.at(i, j) += give;
        col_need[j] -= give;
        need -= give;
      }
    }
    if (need > 0.0) out.at(i, i) += need;
  }
  return out;
}

Matrix stuff_granular(const Matrix& demand, Time quantum) {
  if (quantum <= 0.0) {
    throw std::invalid_argument("dense_reference::stuff_granular: quantum must be positive");
  }
  const Time rho = demand.rho();
  const Time goal = std::max(1.0, std::ceil(rho / quantum - kTimeEps)) * quantum;
  return stuff(demand, goal);
}

CircuitSchedule solstice(const Matrix& demand, Time /*delta*/) {
  constexpr double kSliceFloor = 8 * kTimeEps;
  if (demand.nnz() == 0) return {};
  Matrix m = stuff(demand);

  CircuitSchedule schedule;
  int nnz_left = m.nnz();
  double r = std::exp2(std::ceil(std::log2(m.max_entry())));
  DenseMatcher matcher(m, r);

  while (nnz_left > 0 && r >= kSliceFloor) {
    matcher.rematch();
    if (!matcher.is_perfect()) {
      r /= 2.0;
      matcher.set_threshold(r);
      continue;
    }
    CircuitAssignment a;
    a.duration = r;
    a.circuits.reserve(m.n());
    for (int i = 0; i < m.n(); ++i) {
      const int j = matcher.matched_col(i);
      a.circuits.push_back({i, j});
      const double before = m.at(i, j);
      m.at(i, j) = clamp_zero(before - r);
      if (approx_zero(m.at(i, j)) && !approx_zero(before)) --nnz_left;
      matcher.on_entry_changed(i, j);
    }
    schedule.assignments.push_back(std::move(a));
  }

  if (nnz_left > 0) {
    const CircuitSchedule tail = dense_reference::cover_decompose(std::move(m));
    for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
  }
  return schedule;
}

}  // namespace reco::dense_reference
