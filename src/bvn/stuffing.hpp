// Stuffing (Sec. III-A): pad a demand matrix with phantom demand until it
// is doubly stochastic (all row and column sums equal), the precondition of
// Birkhoff's theorem.  Solstice calls the same operation QuickStuff.
#pragma once

#include "core/matrix.hpp"
#include "core/support_index.hpp"
#include "core/types.hpp"

namespace reco {

/// Pad `demand` so every row and column sums to max(rho(demand), target).
/// Greedy slack-filling: always succeeds because total row slack equals
/// total column slack at any common target >= rho.
Matrix stuff(const Matrix& demand, Time target = 0.0);

/// Sparse path: stuff an indexed demand in place and return the index.
/// The greedy fill walks only columns with remaining slack (a union-find
/// style next-live-column ladder) and the repair pass walks only the
/// support, so the cost is O(nnz + fill-ins + N alpha(N)) instead of
/// O(N^2).  Produces the same matrix as the dense overload bit-for-bit
/// (same fill order, same arithmetic; sums taken via the index's ordered
/// exact re-scans).
SupportIndex stuff(SupportIndex demand, Time target = 0.0);

/// Stuff to the smallest multiple of `quantum` that is >= rho(demand).
/// When `demand` is already quantum-granular (post-regularization), every
/// stuffed amount — and hence every future BvN coefficient — is a multiple
/// of the quantum.  This is the Reco-Sin stuffing step (Alg. 1 Line 4).
Matrix stuff_granular(const Matrix& demand, Time quantum);
SupportIndex stuff_granular(SupportIndex demand, Time quantum);

}  // namespace reco
