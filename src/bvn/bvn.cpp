#include "bvn/bvn.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bvn/parallel_peel.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/incremental_matcher.hpp"
#include "matching/matching_engine.hpp"
#include "obs/obs.hpp"

namespace reco {

namespace {

/// Per-round peel telemetry, bound once per process (stable handles; see
/// obs/metrics.hpp).  Every record is gated on obs::enabled() at the call
/// site, so the disabled cost is one branch per peel round.
struct PeelMetrics {
  obs::Counter& rounds = obs::metrics().counter("bvn.rounds");
  obs::Counter& permutations = obs::metrics().counter("bvn.permutations");
  obs::Counter& halvings = obs::metrics().counter("bvn.threshold_halvings");
  obs::Counter& coeff_total = obs::metrics().counter("bvn.coefficient_total");
  obs::Histogram& round_nnz =
      obs::metrics().histogram("bvn.round_nnz", obs::pow2_buckets(65536.0));
  obs::Histogram& coefficient =
      obs::metrics().histogram("bvn.coefficient", obs::pow2_buckets(1024.0));
  obs::Histogram& matching_size =
      obs::metrics().histogram("bvn.matching_size", obs::pow2_buckets(1024.0));

  static PeelMetrics& get() {
    static PeelMetrics m;
    return m;
  }

  void record_round(int nnz_before, const CircuitAssignment& a,
                    obs::Tracer::Clock::time_point round_start) {
    rounds.inc();
    permutations.inc();
    coeff_total.inc(a.duration);
    round_nnz.observe(static_cast<double>(nnz_before));
    coefficient.observe(a.duration);
    matching_size.observe(static_cast<double>(a.circuits.size()));
    obs::tracer().complete("bvn.round", "bvn", round_start, obs::Tracer::Clock::now(),
                           {{"nnz", static_cast<double>(nnz_before)},
                            {"coefficient", a.duration},
                            {"matching_size", static_cast<double>(a.circuits.size())}});
  }
};

/// Support-only threshold: any positive entry counts as an edge.
constexpr double kSupportThreshold = 2 * kTimeEps;

/// Extract one assignment from the current matcher state: coefficient is
/// the minimum entry along the perfect matching; subtract it everywhere.
CircuitAssignment extract_and_subtract(SupportIndex& m, IncrementalMatcher& matcher) {
  const int n = m.n();
  double coefficient = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    coefficient = std::min(coefficient, m.at(i, matcher.matched_col(i)));
  }
  // At the support threshold an edge is present iff its entry is nonzero,
  // so only entries that hit exact zero can unmatch; skip the notification
  // for the rest (it would be a no-op probe).
  const bool support_only = matcher.threshold() <= kSupportThreshold;
  CircuitAssignment a;
  a.duration = coefficient;
  a.circuits.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int j = matcher.matched_col(i);
    a.circuits.push_back({i, j});
    const double before = m.at(i, j);
    const double after = clamp_zero(before - coefficient);
    m.set(i, j, after);
    if (!support_only || after == 0.0) matcher.on_entry_changed(i, j);
  }
  return a;
}

CircuitSchedule peel(SupportIndex m, double initial_threshold, bool halve_on_failure) {
  CircuitSchedule schedule;
  obs::ScopedSpan span("bvn.peel", "bvn");
  IncrementalMatcher matcher(m, initial_threshold);
  while (m.nnz() > 0) {
    const bool obs_on = obs::enabled();
    const int nnz_before = m.nnz();
    obs::Tracer::Clock::time_point round_start;
    if (obs_on) round_start = obs::Tracer::Clock::now();
    matcher.rematch();
    if (matcher.is_perfect()) {
      schedule.assignments.push_back(extract_and_subtract(m, matcher));
      if (obs_on) {
        PeelMetrics::get().record_round(nnz_before, schedule.assignments.back(), round_start);
      }
      continue;
    }
    if (obs_on && halve_on_failure && matcher.threshold() > kSupportThreshold) {
      PeelMetrics::get().halvings.inc();
    }
    if (!halve_on_failure || matcher.threshold() <= kSupportThreshold) {
      // Exact Birkhoff structure guarantees a perfect matching on the
      // support, but after thousands of floating-point subtractions the
      // row/column sums drift apart by round-off and the guarantee breaks
      // for the last tolerance-scale crumbs.  Cover them instead of looping.
      const CircuitSchedule tail = cover_decompose(std::move(m));
      for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
      break;
    }
    const double next = matcher.threshold() / 2.0;
    matcher.set_threshold(next > kSupportThreshold ? next : kSupportThreshold);
  }
  return schedule;
}

CircuitSchedule peel_exact_bottleneck(SupportIndex m, MatchingScratch& scratch) {
  CircuitSchedule schedule;
  obs::ScopedSpan span("bvn.peel_exact_bottleneck", "bvn");
  // One scratch for the whole peel: each round re-enters the ladder search
  // warm-seeded with the previous round's matching (only the subtracted
  // entries can fall out), and steady-state rounds allocate nothing.  A
  // caller-owned scratch extends the warm start across decompose calls.
  const int n = m.n();
  while (m.nnz() > 0) {
    const bool obs_on = obs::enabled();
    const int nnz_before = m.nnz();
    obs::Tracer::Clock::time_point round_start;
    if (obs_on) round_start = obs::Tracer::Clock::now();
    if (!bottleneck_solve(m, scratch)) {
      // Same round-off escape hatch as peel(): see the comment there.
      const CircuitSchedule tail = cover_decompose(std::move(m));
      for (const auto& a : tail.assignments) schedule.assignments.push_back(a);
      break;
    }
    CircuitAssignment a;
    a.duration = scratch.bottleneck;
    a.circuits.reserve(n);
    for (int i = 0; i < n; ++i) {
      const int j = scratch.final_left[i];
      a.circuits.push_back({i, j});
      m.set(i, j, clamp_zero(m.at(i, j) - scratch.bottleneck));
    }
    schedule.assignments.push_back(std::move(a));
    if (obs_on) {
      PeelMetrics::get().record_round(nnz_before, schedule.assignments.back(), round_start);
    }
  }
  return schedule;
}

/// Doubly-stochastic check from the index's incrementally maintained sums:
/// O(N) instead of an O(N^2) rescan.  Incremental drift is ~machine-eps
/// per mutation, orders of magnitude below the eps*N tolerance used here.
bool is_doubly_stochastic(const SupportIndex& m, double eps) {
  if (m.n() == 0) return true;
  const Time target = m.row_sum(0);
  for (int i = 0; i < m.n(); ++i) {
    if (std::abs(m.row_sum(i) - target) > eps) return false;
  }
  for (int j = 0; j < m.n(); ++j) {
    if (std::abs(m.col_sum(j) - target) > eps) return false;
  }
  return true;
}

}  // namespace

CircuitSchedule cover_decompose(SupportIndex m) {
  CircuitSchedule schedule;
  obs::ScopedSpan span("bvn.cover_decompose", "bvn");
  while (m.nnz() > 0) {
    const MatchingResult match = threshold_matching(m, kSupportThreshold);
    CircuitAssignment a;
    for (int i = 0; i < m.n(); ++i) {
      const int j = match.match_left[i];
      if (j == -1) continue;
      a.duration = std::max(a.duration, m.at(i, j));
      a.circuits.push_back({i, j});
      m.set(i, j, 0.0);
    }
    if (a.circuits.empty()) break;  // unreachable: nnz>0 implies a matchable edge
    schedule.assignments.push_back(std::move(a));
  }
  return schedule;
}

CircuitSchedule cover_decompose(Matrix m) {
  return cover_decompose(SupportIndex(std::move(m)));
}

CircuitSchedule bvn_decompose(SupportIndex m, BvnPolicy policy, MatchingScratch& scratch) {
  obs::ScopedSpan span("bvn.decompose", "bvn");
  span.arg("n", static_cast<double>(m.n()));
  span.arg("nnz", static_cast<double>(m.nnz()));
  if (!is_doubly_stochastic(m, kTimeEps * std::max(1, m.n()))) {
    throw std::invalid_argument("bvn_decompose: matrix is not doubly stochastic");
  }
  if (m.n() == 0 || m.nnz() == 0) return {};
  switch (policy) {
    case BvnPolicy::kFirstMatching:
      return peel(std::move(m), kSupportThreshold, /*halve_on_failure=*/false);
    case BvnPolicy::kMaxMinAmortized: {
      // Start at the smallest power of two >= the max entry; halve until a
      // perfect matching exists, extract, repeat.  When every surviving
      // entry sits at tolerance scale the raw exp2 start can fall below the
      // support threshold (or derive from a -inf log2 on an all-crumb
      // matrix), letting the matcher treat sub-tolerance crumbs as edges;
      // clamp so the peel never scans below what nnz() counts as support.
      const double start =
          std::max(std::exp2(std::ceil(std::log2(m.max_entry()))), kSupportThreshold);
      return peel(std::move(m), start, /*halve_on_failure=*/true);
    }
    case BvnPolicy::kExactBottleneck:
      return peel_exact_bottleneck(std::move(m), scratch);
    case BvnPolicy::kParallelPeel:
      return peel_parallel(std::move(m));
  }
  throw std::logic_error("bvn_decompose: unknown policy");
}

CircuitSchedule bvn_decompose(SupportIndex m, BvnPolicy policy) {
  MatchingScratch scratch;
  return bvn_decompose(std::move(m), policy, scratch);
}

CircuitSchedule bvn_decompose(Matrix m, BvnPolicy policy) {
  return bvn_decompose(SupportIndex(std::move(m)), policy);
}

}  // namespace reco
