// Retained dense (pre-sparse-index) implementations of the decomposition
// stack, frozen at their original O(N^2)-per-round form.
//
// Two consumers, neither on a production path:
//   * the dense-vs-sparse equivalence property test
//     (tests/property/test_sparse_equivalence.cpp) asserts that the
//     SupportIndex-based kernels produce identical CircuitSchedules to
//     these references across sizes, densities, and policies;
//   * bench_micro_kernels measures the sparse path's speedup against this
//     baseline (the acceptance bar for the sparse index work).
//
// Do not "optimize" these: their value is being a faithful copy of the
// dense algorithms the sparse kernels must reproduce bit-for-bit on the
// support (see DESIGN.md §3, "Complexity & sparsity").
#pragma once

#include <optional>

#include "core/circuit.hpp"
#include "core/matrix.hpp"
#include "core/support_index.hpp"
#include "core/types.hpp"

#include "bvn/bvn.hpp"  // BvnPolicy
#include "matching/bottleneck.hpp"

namespace reco::dense_reference {

/// Dense Birkhoff decomposition: full-matrix nnz() rescan per round, Kuhn
/// augmentation probing all N columns per row.
CircuitSchedule bvn_decompose(Matrix m, BvnPolicy policy);

/// Dense matching cover of an arbitrary non-negative matrix.
CircuitSchedule cover_decompose(Matrix m);

/// Dense greedy stuffing (O(N^2) slack sweep + repair pass).
Matrix stuff(const Matrix& demand, Time target = 0.0);
Matrix stuff_granular(const Matrix& demand, Time quantum);

/// Dense Solstice: stuffing + power-of-two slicing with the dense matcher.
CircuitSchedule solstice(const Matrix& demand, Time delta = 100e-6);

/// Seed bottleneck max-min matching, retained as the reference oracle for
/// the amortized engine (src/matching/matching_engine.*): sorted distinct
/// value ladder + binary search, one cold recursive Hopcroft-Karp per
/// probe.  The ladder uses exact dedup — the one deliberate divergence
/// from the seed, whose pairwise-approx `std::unique` collapsed transitive
/// near-equal chains (see the engine header); everything else, including
/// BFS/DFS visit order and hence the returned pairs, is the seed
/// algorithm verbatim.  The SupportIndex overload walks the support in the
/// same row-major order, so both overloads return identical results.
std::optional<BottleneckMatching> bottleneck_perfect_matching_reference(const Matrix& m);
std::optional<BottleneckMatching> bottleneck_perfect_matching_reference(const SupportIndex& idx);

}  // namespace reco::dense_reference
