// Monte-Carlo reliability campaigns: sweep {recovery policy, fault
// intensity, seed} over N seeded replications of the fault-injected OCS
// simulator and aggregate availability metrics into distributions with
// bootstrap confidence intervals (docs/RELIABILITY.md).
//
// One *replication* = one synthetic workload (trace/generator) aggregated
// into a demand matrix, planned by Reco-Sin, executed on the event-driven
// fabric under a RecoveringController and a seeded FaultInjector.  One
// *cell* = (recovery policy, MTBF/MTTR point); every cell runs the same
// `replications` paired workload seeds, so policy comparisons difference
// out workload noise.  Replications are pure functions of (config, index):
// they run in any order on the runtime thread pool and the campaign
// report — every metric, every CI bound, the aggregate digest — is
// byte-identical across thread counts, reruns, and checkpoint/resume.
//
// Checkpoint/restart: completed replications persist to a versioned
// snapshot ("RCMP"); resuming verifies a config fingerprint and continues
// exactly where the campaign stopped.  Because replications are pure, a
// resumed campaign's report is byte-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "stats/bootstrap.hpp"

namespace reco::campaign {

/// What the controller does when ports fail mid-run.
enum class RecoveryPolicy : std::uint8_t {
  kReplan = 0,         ///< immediate recovery replan on every fault/repair
  kWaitForRepair = 1,  ///< ride the old plan's surviving circuits; replan
                       ///< only when it has no useful circuit left
  kHybrid = 2,         ///< wait up to `hybrid_deadline`, then replan
};

const char* policy_name(RecoveryPolicy policy);
/// Parses "replan" / "wait" / "hybrid"; throws std::invalid_argument.
RecoveryPolicy parse_policy(const std::string& name);

/// One fault-intensity grid point: per-port exponential MTBF/MTTR seconds.
struct FaultPoint {
  double mtbf = 0.0;  ///< 0 disables random port failures
  double mttr = 0.0;  ///< 0: failures are permanent
};

struct CampaignConfig {
  // Workload shape (trace/generator): one matrix per replication.
  int ports = 24;
  int coflows = 8;
  Time delta = 100e-6;
  double c_threshold = 4.0;

  std::uint64_t seed = 1;   ///< campaign master seed
  int replications = 64;    ///< per cell (paired across cells)

  std::vector<RecoveryPolicy> policies;  ///< sweep axis 1
  std::vector<FaultPoint> grid;          ///< sweep axis 2
  Time hybrid_deadline = 0.02;           ///< kHybrid grace window (seconds)

  // Extra fault channels applied uniformly to every cell.
  double setup_timeout_probability = 0.0;
  double crosspoint_failure_probability = 0.0;

  BootstrapOptions bootstrap;  ///< CI parameters for the aggregates

  /// Non-empty: replay each anomalous replication (terminated with demand
  /// stranded) with the flight recorder armed and dump the incident ring
  /// to "<flight_prefix>rep<index>.jsonl" (bounded by max_flight_dumps).
  std::string flight_prefix;
  int max_flight_dumps = 8;
};

/// Throws std::invalid_argument on an unrunnable config (no policies, no
/// grid points, non-positive replications/ports/coflows/delta, negative
/// fault parameters).
void validate_campaign_config(const CampaignConfig& config);

/// One replication's availability metrics (a pure function of the config
/// and the replication index).
struct ReplicationResult {
  int cell = 0;  ///< policy-major: cell = policy_index * |grid| + grid_index
  int rep = 0;
  double cct = 0.0;
  double demand_total = 0.0;
  double stranded = 0.0;            ///< residual demand at termination
  double degraded_time = 0.0;       ///< sim time with >= 1 port down
  double delivered_fraction = 1.0;  ///< delivered / demand_total
  double recovery_latency = 0.0;    ///< degraded_time per recovery incident
  int replans = 0;
  int port_failures = 0;
  int port_repairs = 0;
  int recoveries = 0;
  int setup_failures = 0;
  int partial_setups = 0;
  bool satisfied = false;           ///< false = anomaly (demand stranded)
  std::uint64_t digest = 0;         ///< FNV-1a over the fields above
};

/// Per-cell aggregates over the cell's completed replications.
struct CellSummary {
  RecoveryPolicy policy = RecoveryPolicy::kReplan;
  FaultPoint fault;
  std::uint64_t completed = 0;
  std::uint64_t anomalies = 0;  ///< unsatisfied replications
  DistributionSummary stranded;
  DistributionSummary degraded_time;
  DistributionSummary recovery_latency;
  DistributionSummary delivered_fraction;
  DistributionSummary cct;
  double replans_mean = 0.0;
};

struct CampaignReport {
  std::uint64_t total = 0;      ///< cells * replications
  std::uint64_t completed = 0;
  std::uint64_t anomalies = 0;
  std::uint64_t digest = 0;     ///< FNV-1a over replication digests, index order
  std::vector<ReplicationResult> replications;  ///< index order, completed prefix
  std::vector<CellSummary> cells;
};

class CampaignRunner {
 public:
  /// Validates the config (throws std::invalid_argument).
  explicit CampaignRunner(CampaignConfig config);

  const CampaignConfig& config() const { return config_; }
  std::size_t total() const;
  std::size_t completed() const { return results_.size(); }
  bool finished() const { return completed() == total(); }

  /// Run up to `max_new` further replications (0 = all remaining) as one
  /// parallel wave over the runtime thread pool; returns completed().
  /// Replication `i` always produces the same result regardless of wave
  /// boundaries, thread count, or a checkpoint/resume in between.
  std::size_t run(std::size_t max_new = 0);

  /// One replication, by flat index in [0, total()).  Pure and const: safe
  /// to call from any thread.
  ReplicationResult run_one(std::size_t index) const;

  /// Aggregate everything completed so far into a report (cells with no
  /// completed replications yet carry all-zero summaries).
  CampaignReport report() const;

  /// Checkpoint = config fingerprint + the completed replication prefix.
  /// load_checkpoint requires a runner built from the identical config
  /// (fingerprint-verified; throws std::runtime_error on mismatch or on a
  /// corrupted/truncated/version-mismatched stream) and replaces any
  /// progress this runner had.
  void save_checkpoint(std::ostream& out) const;
  void load_checkpoint(std::istream& in);
  std::uint64_t config_fingerprint() const;

 private:
  void note_completed(const ReplicationResult& result);
  void dump_flight(const ReplicationResult& result);

  CampaignConfig config_;
  std::vector<ReplicationResult> results_;  ///< completed prefix, index order
  int flight_dumps_ = 0;
};

/// Report writers.  Doubles print with %.17g so emitted numbers round-trip
/// bit-exactly; the JSON mirrors the full report, the CSVs are one row per
/// replication / per cell.
void write_report_json(const CampaignReport& report, std::ostream& out);
void write_replications_csv(const CampaignReport& report, std::ostream& out);
void write_cells_csv(const CampaignReport& report, std::ostream& out);

}  // namespace reco::campaign
