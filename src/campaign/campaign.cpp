#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <string>

#include "core/matrix.hpp"
#include "core/snapshot.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "runtime/parallel.hpp"
#include "sched/reco_sin.hpp"
#include "sim/controller.hpp"
#include "sim/fabric.hpp"
#include "sim/faults.hpp"
#include "trace/generator.hpp"

namespace reco::campaign {

namespace {

// "RCMP" little-endian: Reco CaMPaign checkpoint.
constexpr std::uint32_t kCampaignMagic = 0x504d4352u;
constexpr std::uint32_t kCampaignVersion = 1;

// Effectively-infinite grace window for kWaitForRepair: the controller
// replans only when the old plan has no surviving useful circuit left.
constexpr Time kWaitForever = 1e30;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ splitmix64(b));
}

/// %.17g — the shortest form that round-trips an IEEE double exactly.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void json_summary(std::ostream& out, const char* name, const DistributionSummary& s,
                  bool trailing_comma) {
  out << "      \"" << name << "\": {\"count\": " << s.count << ", \"mean\": " << fmt(s.mean)
      << ", \"mean_lo\": " << fmt(s.mean_lo) << ", \"mean_hi\": " << fmt(s.mean_hi)
      << ", \"p50\": " << fmt(s.p50) << ", \"p50_lo\": " << fmt(s.p50_lo)
      << ", \"p50_hi\": " << fmt(s.p50_hi) << ", \"p99\": " << fmt(s.p99)
      << ", \"p99_lo\": " << fmt(s.p99_lo) << ", \"p99_hi\": " << fmt(s.p99_hi)
      << ", \"min\": " << fmt(s.min) << ", \"max\": " << fmt(s.max) << "}"
      << (trailing_comma ? "," : "") << "\n";
}

void csv_summary_header(std::ostream& out, const char* name) {
  out << "," << name << "_mean," << name << "_mean_lo," << name << "_mean_hi," << name
      << "_p50," << name << "_p99," << name << "_p99_lo," << name << "_p99_hi";
}

void csv_summary_row(std::ostream& out, const DistributionSummary& s) {
  out << "," << fmt(s.mean) << "," << fmt(s.mean_lo) << "," << fmt(s.mean_hi) << ","
      << fmt(s.p50) << "," << fmt(s.p99) << "," << fmt(s.p99_lo) << "," << fmt(s.p99_hi);
}

}  // namespace

const char* policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kReplan:
      return "replan";
    case RecoveryPolicy::kWaitForRepair:
      return "wait";
    case RecoveryPolicy::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

RecoveryPolicy parse_policy(const std::string& name) {
  if (name == "replan") return RecoveryPolicy::kReplan;
  if (name == "wait") return RecoveryPolicy::kWaitForRepair;
  if (name == "hybrid") return RecoveryPolicy::kHybrid;
  throw std::invalid_argument("unknown recovery policy '" + name +
                              "' (expected replan, wait, or hybrid)");
}

void validate_campaign_config(const CampaignConfig& config) {
  const auto fail = [](const std::string& what) { throw std::invalid_argument("campaign: " + what); };
  if (config.ports <= 0) fail("ports must be positive");
  if (config.coflows <= 0) fail("coflows must be positive");
  if (config.delta <= 0.0) fail("delta must be positive");
  if (config.c_threshold <= 0.0) fail("c_threshold must be positive");
  if (config.replications <= 0) fail("replications must be positive");
  if (config.policies.empty()) fail("at least one recovery policy is required");
  if (config.grid.empty()) fail("at least one MTBF/MTTR grid point is required");
  for (const FaultPoint& p : config.grid) {
    if (p.mtbf < 0.0 || p.mttr < 0.0) fail("MTBF/MTTR must be non-negative");
  }
  if (config.hybrid_deadline < 0.0) fail("hybrid_deadline must be non-negative");
  if (config.setup_timeout_probability < 0.0 || config.setup_timeout_probability >= 1.0) {
    fail("setup_timeout_probability must be in [0, 1)");
  }
  if (config.crosspoint_failure_probability < 0.0 ||
      config.crosspoint_failure_probability >= 1.0) {
    fail("crosspoint_failure_probability must be in [0, 1)");
  }
  if (config.max_flight_dumps < 0) fail("max_flight_dumps must be non-negative");
}

CampaignRunner::CampaignRunner(CampaignConfig config) : config_(std::move(config)) {
  validate_campaign_config(config_);
}

std::size_t CampaignRunner::total() const {
  return config_.policies.size() * config_.grid.size() *
         static_cast<std::size_t>(config_.replications);
}

ReplicationResult CampaignRunner::run_one(std::size_t index) const {
  const auto reps = static_cast<std::size_t>(config_.replications);
  const std::size_t cell = index / reps;
  const std::size_t rep = index % reps;
  const std::size_t grid_index = cell % config_.grid.size();
  const RecoveryPolicy policy = config_.policies[cell / config_.grid.size()];
  const FaultPoint fault = config_.grid[grid_index];

  // Paired design: the workload seed depends only on `rep`, so every cell
  // runs the identical workloads and policy/fault deltas are within-pair;
  // the fault seed is shared across *policies* (same grid point, same rep)
  // so policies face the identical fault timeline.
  GeneratorOptions gen;
  gen.num_ports = config_.ports;
  gen.num_coflows = config_.coflows;
  gen.delta = config_.delta;
  gen.c_threshold = config_.c_threshold;
  gen.seed = mix(config_.seed, rep);
  const std::vector<Coflow> workload = generate_workload(gen);
  Matrix demand(config_.ports);
  for (const Coflow& c : workload) demand += c.demand;

  sim::FaultConfig faults;
  faults.port_mtbf = fault.mtbf;
  faults.port_mttr = fault.mttr;
  faults.setup_timeout_probability = config_.setup_timeout_probability;
  faults.crosspoint_failure_probability = config_.crosspoint_failure_probability;
  faults.seed = mix(config_.seed ^ 0xfa017c0defa017ull, mix(grid_index, rep));
  sim::FaultInjector injector(faults);

  Time deadline = 0.0;
  if (policy == RecoveryPolicy::kWaitForRepair) deadline = kWaitForever;
  if (policy == RecoveryPolicy::kHybrid) deadline = config_.hybrid_deadline;
  sim::RecoveringController controller(reco_sin(demand, config_.delta),
                                       config_.delta, BvnPolicy::kMaxMinAmortized, deadline);
  const sim::SimulationReport sim =
      sim::simulate_single_coflow(controller, demand, config_.delta, injector);

  ReplicationResult r;
  r.cell = static_cast<int>(cell);
  r.rep = static_cast<int>(rep);
  r.cct = sim.cct;
  r.demand_total = demand.total();
  r.stranded = sim.stranded_demand;
  r.degraded_time = sim.degraded_time;
  r.delivered_fraction =
      r.demand_total > 0.0 ? sim.delivered_demand / r.demand_total : 1.0;
  r.recovery_latency =
      sim.recoveries > 0 ? sim.degraded_time / static_cast<double>(sim.recoveries) : 0.0;
  r.replans = controller.replans();
  r.port_failures = sim.port_failures;
  r.port_repairs = sim.port_repairs;
  r.recoveries = sim.recoveries;
  r.setup_failures = sim.setup_failures;
  r.partial_setups = sim.partial_setups;
  r.satisfied = sim.satisfied;

  SnapshotWriter w;
  w.put_i32(r.cell);
  w.put_i32(r.rep);
  w.put_f64(r.cct);
  w.put_f64(r.demand_total);
  w.put_f64(r.stranded);
  w.put_f64(r.degraded_time);
  w.put_f64(r.delivered_fraction);
  w.put_f64(r.recovery_latency);
  w.put_i32(r.replans);
  w.put_i32(r.port_failures);
  w.put_i32(r.port_repairs);
  w.put_i32(r.recoveries);
  w.put_i32(r.setup_failures);
  w.put_i32(r.partial_setups);
  w.put_bool(r.satisfied);
  r.digest = fnv1a64(w.payload().data(), w.payload().size());
  return r;
}

std::size_t CampaignRunner::run(std::size_t max_new) {
  const std::size_t first = results_.size();
  std::size_t remaining = total() - first;
  if (max_new > 0) remaining = std::min(remaining, max_new);
  if (remaining == 0) return completed();

  std::vector<ReplicationResult> wave(remaining);
  runtime::parallel_for(static_cast<int>(remaining),
                        [&](int k) { wave[static_cast<std::size_t>(k)] = run_one(first + k); });
  for (const ReplicationResult& r : wave) note_completed(r);
  return completed();
}

void CampaignRunner::note_completed(const ReplicationResult& result) {
  results_.push_back(result);
  if (obs::enabled()) {
    obs::metrics().counter("campaign.replications").inc();
    if (!result.satisfied) obs::metrics().counter("campaign.anomalies").inc();
  }
  if (!result.satisfied && !config_.flight_prefix.empty() &&
      flight_dumps_ < config_.max_flight_dumps) {
    dump_flight(result);
  }
}

void CampaignRunner::dump_flight(const ReplicationResult& result) {
  // Replications run with telemetry cold (results never depend on obs);
  // to capture the incident timeline we replay the anomalous replication
  // — it is a pure function of its index — with the flight recorder armed.
  const std::size_t index = static_cast<std::size_t>(result.cell) *
                                static_cast<std::size_t>(config_.replications) +
                            static_cast<std::size_t>(result.rep);
  const std::string path = config_.flight_prefix + "rep" + std::to_string(index) + ".jsonl";
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::flight_recorder().clear();
  obs::flight_recorder().arm(path);
  (void)run_one(index);
  obs::flight_recorder().trigger("campaign anomaly replay");
  obs::flight_recorder().arm(std::string());
  obs::flight_recorder().clear();
  obs::set_enabled(was_enabled);
  ++flight_dumps_;
  if (obs::enabled()) obs::metrics().counter("campaign.flight_dumps").inc();
}

std::uint64_t CampaignRunner::config_fingerprint() const {
  // Canonical serialization of every result-affecting field (flight-dump
  // settings deliberately excluded: they change side outputs, not results).
  SnapshotWriter w;
  w.put_i32(config_.ports);
  w.put_i32(config_.coflows);
  w.put_f64(config_.delta);
  w.put_f64(config_.c_threshold);
  w.put_u64(config_.seed);
  w.put_i32(config_.replications);
  w.put_u64(config_.policies.size());
  for (const RecoveryPolicy p : config_.policies) w.put_u8(static_cast<std::uint8_t>(p));
  w.put_u64(config_.grid.size());
  for (const FaultPoint& p : config_.grid) {
    w.put_f64(p.mtbf);
    w.put_f64(p.mttr);
  }
  w.put_f64(config_.hybrid_deadline);
  w.put_f64(config_.setup_timeout_probability);
  w.put_f64(config_.crosspoint_failure_probability);
  w.put_i32(config_.bootstrap.resamples);
  w.put_f64(config_.bootstrap.confidence);
  w.put_u64(config_.bootstrap.seed);
  return fnv1a64(w.payload().data(), w.payload().size());
}

void CampaignRunner::save_checkpoint(std::ostream& out) const {
  SnapshotWriter w;
  w.put_u64(config_fingerprint());
  w.put_u64(results_.size());
  for (const ReplicationResult& r : results_) {
    w.put_i32(r.cell);
    w.put_i32(r.rep);
    w.put_f64(r.cct);
    w.put_f64(r.demand_total);
    w.put_f64(r.stranded);
    w.put_f64(r.degraded_time);
    w.put_f64(r.delivered_fraction);
    w.put_f64(r.recovery_latency);
    w.put_i32(r.replans);
    w.put_i32(r.port_failures);
    w.put_i32(r.port_repairs);
    w.put_i32(r.recoveries);
    w.put_i32(r.setup_failures);
    w.put_i32(r.partial_setups);
    w.put_bool(r.satisfied);
    w.put_u64(r.digest);
  }
  w.finish(out, kCampaignMagic, kCampaignVersion);
}

void CampaignRunner::load_checkpoint(std::istream& in) {
  SnapshotReader r(in, kCampaignMagic, kCampaignVersion, "campaign checkpoint");
  if (r.get_u64() != config_fingerprint()) {
    throw std::runtime_error(
        "campaign checkpoint was written with a different configuration");
  }
  const std::uint64_t completed = r.get_u64();
  if (completed > total()) {
    throw std::runtime_error("campaign checkpoint: completed count exceeds the campaign size");
  }
  std::vector<ReplicationResult> loaded;
  loaded.reserve(completed);
  const auto reps = static_cast<std::size_t>(config_.replications);
  for (std::uint64_t k = 0; k < completed; ++k) {
    ReplicationResult rr;
    rr.cell = r.get_i32();
    rr.rep = r.get_i32();
    if (rr.cell != static_cast<int>(k / reps) || rr.rep != static_cast<int>(k % reps)) {
      throw std::runtime_error("campaign checkpoint: replication order is corrupted");
    }
    rr.cct = r.get_f64();
    rr.demand_total = r.get_f64();
    rr.stranded = r.get_f64();
    rr.degraded_time = r.get_f64();
    rr.delivered_fraction = r.get_f64();
    rr.recovery_latency = r.get_f64();
    rr.replans = r.get_i32();
    rr.port_failures = r.get_i32();
    rr.port_repairs = r.get_i32();
    rr.recoveries = r.get_i32();
    rr.setup_failures = r.get_i32();
    rr.partial_setups = r.get_i32();
    rr.satisfied = r.get_bool();
    rr.digest = r.get_u64();
    loaded.push_back(rr);
  }
  r.expect_end();
  results_ = std::move(loaded);
}

CampaignReport CampaignRunner::report() const {
  CampaignReport rep;
  rep.total = total();
  rep.completed = results_.size();
  rep.replications = results_;

  std::uint64_t digest = kFnvOffsetBasis;
  for (const ReplicationResult& r : results_) {
    unsigned char bytes[8];
    for (int b = 0; b < 8; ++b) {
      bytes[b] = static_cast<unsigned char>((r.digest >> (8 * b)) & 0xffu);
    }
    digest = fnv1a64(bytes, sizeof(bytes), digest);
    if (!r.satisfied) ++rep.anomalies;
  }
  rep.digest = digest;

  const auto reps = static_cast<std::size_t>(config_.replications);
  const std::size_t n_cells = config_.policies.size() * config_.grid.size();
  rep.cells.resize(n_cells);
  std::vector<double> stranded;
  std::vector<double> degraded;
  std::vector<double> latency;
  std::vector<double> delivered;
  std::vector<double> cct;
  for (std::size_t c = 0; c < n_cells; ++c) {
    CellSummary& cell = rep.cells[c];
    cell.policy = config_.policies[c / config_.grid.size()];
    cell.fault = config_.grid[c % config_.grid.size()];
    // Results are a cell-major prefix, so cell c's completed replications
    // occupy [c*reps, min(completed, (c+1)*reps)).
    const std::size_t begin = std::min(rep.completed, static_cast<std::uint64_t>(c * reps));
    const std::size_t end =
        std::min(rep.completed, static_cast<std::uint64_t>((c + 1) * reps));
    stranded.clear();
    degraded.clear();
    latency.clear();
    delivered.clear();
    cct.clear();
    double replans_sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const ReplicationResult& r = results_[i];
      stranded.push_back(r.stranded);
      degraded.push_back(r.degraded_time);
      latency.push_back(r.recovery_latency);
      delivered.push_back(r.delivered_fraction);
      cct.push_back(r.cct);
      replans_sum += r.replans;
      if (!r.satisfied) ++cell.anomalies;
    }
    cell.completed = end - begin;
    cell.replans_mean =
        cell.completed > 0 ? replans_sum / static_cast<double>(cell.completed) : 0.0;
    BootstrapOptions bo = config_.bootstrap;
    bo.seed = mix(config_.bootstrap.seed, c);
    cell.stranded = summarize_distribution(stranded, bo);
    cell.degraded_time = summarize_distribution(degraded, bo);
    cell.recovery_latency = summarize_distribution(latency, bo);
    cell.delivered_fraction = summarize_distribution(delivered, bo);
    cell.cct = summarize_distribution(cct, bo);
  }
  return rep;
}

void write_report_json(const CampaignReport& report, std::ostream& out) {
  out << "{\n";
  out << "  \"total\": " << report.total << ",\n";
  out << "  \"completed\": " << report.completed << ",\n";
  out << "  \"anomalies\": " << report.anomalies << ",\n";
  out << "  \"digest\": \"" << report.digest << "\",\n";
  out << "  \"cells\": [\n";
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const CellSummary& cell = report.cells[c];
    out << "    {\n";
    out << "      \"policy\": \"" << policy_name(cell.policy) << "\",\n";
    out << "      \"mtbf\": " << fmt(cell.fault.mtbf) << ",\n";
    out << "      \"mttr\": " << fmt(cell.fault.mttr) << ",\n";
    out << "      \"completed\": " << cell.completed << ",\n";
    out << "      \"anomalies\": " << cell.anomalies << ",\n";
    out << "      \"replans_mean\": " << fmt(cell.replans_mean) << ",\n";
    json_summary(out, "stranded", cell.stranded, true);
    json_summary(out, "degraded_time", cell.degraded_time, true);
    json_summary(out, "recovery_latency", cell.recovery_latency, true);
    json_summary(out, "delivered_fraction", cell.delivered_fraction, true);
    json_summary(out, "cct", cell.cct, false);
    out << "    }" << (c + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

void write_replications_csv(const CampaignReport& report, std::ostream& out) {
  out << "index,cell,rep,cct,demand_total,stranded,degraded_time,delivered_fraction,"
         "recovery_latency,replans,port_failures,port_repairs,recoveries,setup_failures,"
         "partial_setups,satisfied,digest\n";
  for (std::size_t i = 0; i < report.replications.size(); ++i) {
    const ReplicationResult& r = report.replications[i];
    out << i << "," << r.cell << "," << r.rep << "," << fmt(r.cct) << ","
        << fmt(r.demand_total) << "," << fmt(r.stranded) << "," << fmt(r.degraded_time) << ","
        << fmt(r.delivered_fraction) << "," << fmt(r.recovery_latency) << "," << r.replans
        << "," << r.port_failures << "," << r.port_repairs << "," << r.recoveries << ","
        << r.setup_failures << "," << r.partial_setups << "," << (r.satisfied ? 1 : 0) << ","
        << r.digest << "\n";
  }
}

void write_cells_csv(const CampaignReport& report, std::ostream& out) {
  out << "policy,mtbf,mttr,completed,anomalies,replans_mean";
  csv_summary_header(out, "stranded");
  csv_summary_header(out, "degraded_time");
  csv_summary_header(out, "recovery_latency");
  csv_summary_header(out, "delivered_fraction");
  csv_summary_header(out, "cct");
  out << "\n";
  for (const CellSummary& cell : report.cells) {
    out << policy_name(cell.policy) << "," << fmt(cell.fault.mtbf) << ","
        << fmt(cell.fault.mttr) << "," << cell.completed << "," << cell.anomalies << ","
        << fmt(cell.replans_mean);
    csv_summary_row(out, cell.stranded);
    csv_summary_row(out, cell.degraded_time);
    csv_summary_row(out, cell.recovery_latency);
    csv_summary_row(out, cell.delivered_fraction);
    csv_summary_row(out, cell.cct);
    out << "\n";
  }
}

}  // namespace reco::campaign
