#include "runtime/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/obs.hpp"

namespace reco::runtime {

namespace {

thread_local bool tls_on_worker = false;

/// Telemetry shim around a submitted job: queue wait (enqueue -> first
/// instruction), busy time, and a "pool.task" span on the worker's wall
/// track.  Only wrapped when telemetry is on at submit time, so the
/// disabled cost is the one branch in submit().
std::function<void()> wrap_job_for_telemetry(std::function<void()> job) {
  const auto enqueued = obs::Tracer::Clock::now();
  return [job = std::move(job), enqueued]() {
    const auto start = obs::Tracer::Clock::now();
    job();
    const auto end = obs::Tracer::Clock::now();
    if (!obs::enabled()) return;  // toggled off mid-flight: drop the sample
    const double wait_us = std::chrono::duration<double, std::micro>(start - enqueued).count();
    const double busy_us = std::chrono::duration<double, std::micro>(end - start).count();
    static obs::Counter& tasks = obs::metrics().counter("pool.tasks");
    static obs::Counter& busy = obs::metrics().counter("pool.busy_us");
    static obs::Histogram& wait =
        obs::metrics().histogram("pool.queue_wait_us", obs::pow2_buckets(1048576.0));
    tasks.inc();
    busy.inc(busy_us);
    wait.observe(wait_us);
    obs::tracer().complete("pool.task", "pool", start, end, {{"queue_wait_us", wait_us}});
  };
}

/// Parallelism picked from the environment: RECO_THREADS if set to a
/// positive integer, otherwise the hardware.
int env_thread_count() {
  if (const char* env = std::getenv("RECO_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return hardware_cores();
}

struct GlobalPoolState {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  int pool_threads = 0;  // thread_count() the pool was built for
  int override_threads = 0;  // 0 = no override
};

GlobalPoolState& global_state() {
  static GlobalPoolState state;
  return state;
}

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(num_workers > 0 ? num_workers : 0);
  for (int t = 0; t < num_workers; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (obs::enabled()) job = wrap_job_for_telemetry(std::move(job));
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

int hardware_cores() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int thread_count() {
  GlobalPoolState& s = global_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.override_threads >= 1 ? s.override_threads : env_thread_count();
}

void set_thread_count(int n) {
  GlobalPoolState& s = global_state();
  std::unique_ptr<ThreadPool> retired;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.override_threads = n >= 1 ? n : 0;
    // Drop the stale pool; global_pool() rebuilds at the new size.  The
    // retired pool joins its workers outside the lock.
    retired = std::move(s.pool);
    s.pool_threads = 0;
  }
}

ThreadPool& global_pool() {
  GlobalPoolState& s = global_state();
  const int want = thread_count();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.pool || s.pool_threads != want) {
    s.pool.reset();  // join old workers before spawning replacements
    s.pool = std::make_unique<ThreadPool>(want - 1);
    s.pool_threads = want;
  }
  return *s.pool;
}

}  // namespace reco::runtime
