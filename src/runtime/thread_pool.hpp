// Shared-memory parallel runtime: a fixed-size thread pool driving the
// embarrassingly parallel hot paths (per-coflow BvN decompositions, bench
// sweep points, trace synthesis).
//
// Design constraints, in priority order:
//  1. *Determinism*: parallel_for / parallel_map (parallel.hpp) hand out
//     work by index and store results by index, so outputs are identical
//     to the sequential loop regardless of thread count or completion
//     order.  RECO_THREADS=1 takes the plain sequential code path.
//  2. *No deadlocks by construction*: the submitting thread always
//     participates in draining its own batch, and a batch launched from
//     inside a pool worker runs inline — nested parallelism never waits
//     on a queue slot.
//  3. *No work stealing, no lock-free cleverness*: one mutex + condvar
//     queue.  The units of work here (a 150x150 BvN decomposition, a full
//     pipeline run per sweep point) are milliseconds to seconds; queue
//     overhead is noise.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reco::runtime {

/// Fixed-size pool of worker threads consuming a FIFO job queue.
/// Constructing with `num_workers <= 0` spawns no threads (a purely
/// sequential pool); `submit` then runs the job inline.
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for a sequential pool).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a job.  Jobs are opaque: the pool never waits on them, so a
  /// job may itself submit further jobs without risk of deadlock.
  void submit(std::function<void()> job);

  /// True iff the calling thread is one of this pool's workers.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Total parallelism the runtime will use: the `set_thread_count` override
/// if one is active, else the `RECO_THREADS` environment variable, else
/// `std::thread::hardware_concurrency()`.  Always >= 1; 1 means every
/// parallel_for / parallel_map runs the plain sequential loop.
int thread_count();

/// Physical parallelism of the machine: `hardware_concurrency()`, clamped
/// to >= 1.  Unlike thread_count() this ignores RECO_THREADS and
/// set_thread_count — it is the ground truth the benchmark baselines
/// record per entry, so a perf guard on another box can tell "this thread
/// sweep actually had cores to scale onto" from "this row was measured
/// oversubscribed on a smaller machine".
int hardware_cores();

/// Override the thread count (e.g. from a `--threads=N` flag or a test
/// comparing thread counts); `n <= 0` clears the override, reverting to
/// RECO_THREADS / hardware_concurrency.  Rebuilds the global pool, so call
/// it only between parallel regions (startup, test setup) — never while a
/// parallel_for is in flight.
void set_thread_count(int n);

/// The process-wide pool backing parallel_for / parallel_map, sized
/// `thread_count() - 1` (the caller is the remaining worker).  Created on
/// first use.
ThreadPool& global_pool();

}  // namespace reco::runtime
