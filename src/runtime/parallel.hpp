// Deterministic data-parallel loops over the global thread pool.
//
// `parallel_for(n, fn)` runs fn(0) .. fn(n-1), in parallel when the
// runtime has more than one thread, and guarantees:
//  * every index runs exactly once;
//  * the call returns only after all indices completed;
//  * the first exception thrown by any fn(i) is rethrown to the caller
//    (remaining indices still run — no cancellation, no partial batches);
//  * with thread_count() == 1 (e.g. RECO_THREADS=1) the loop is the plain
//    sequential `for`, bit-for-bit identical to the pre-parallel code.
//
// `parallel_map(items, fn)` additionally stores fn(items[i]) at out[i],
// so the result vector is in input order regardless of which thread
// finished which item first.  Callers are responsible for making fn(i)
// independent of execution order (e.g. per-index RNG seeding).
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <type_traits>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace reco::runtime {

namespace detail {

/// Shared state of one parallel_for batch: an index dispenser plus a
/// completion latch for the helper jobs submitted to the pool.
struct BatchState {
  explicit BatchState(int size) : n(size) {}

  const int n;
  std::atomic<int> next{0};
  std::mutex mu;
  std::condition_variable done;
  int outstanding_helpers = 0;
  std::exception_ptr error;

  void record_error(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::move(e);
  }
  void helper_finished() {
    std::lock_guard<std::mutex> lock(mu);
    if (--outstanding_helpers == 0) done.notify_all();
  }
  void wait_helpers() {
    std::unique_lock<std::mutex> lock(mu);
    done.wait(lock, [this] { return outstanding_helpers == 0; });
  }
};

}  // namespace detail

template <typename Fn>
void parallel_for(int n, Fn&& fn) {
  if (n <= 0) return;
  ThreadPool& pool = global_pool();
  // Sequential fast path: single-threaded runtime, trivial batch, or a
  // nested call from inside a pool worker (running inline keeps workers
  // from ever blocking on each other).
  if (pool.num_workers() == 0 || n == 1 || ThreadPool::on_worker_thread()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  detail::BatchState batch(n);
  auto drain = [&fn, &batch] {
    for (;;) {
      const int i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.n) return;
      try {
        fn(i);
      } catch (...) {
        batch.record_error(std::current_exception());
      }
    }
  };

  // The caller is one lane; at most n-1 helpers share the rest.  Helpers
  // capture stack state by reference, which stays valid because we never
  // return before wait_helpers().
  const int helpers = std::min(pool.num_workers(), n - 1);
  batch.outstanding_helpers = helpers;
  for (int h = 0; h < helpers; ++h) {
    pool.submit([&drain, &batch] {
      drain();
      batch.helper_finished();
    });
  }
  drain();
  batch.wait_helpers();
  if (batch.error) std::rethrow_exception(batch.error);
}

template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, const T&>>;
  std::vector<R> out(items.size());
  parallel_for(static_cast<int>(items.size()), [&](int i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace reco::runtime
