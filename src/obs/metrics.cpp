#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "stats/csv.hpp"

namespace reco::obs {

namespace {

/// Lock-free monotone update for min/max slots.
void atomic_min(std::atomic<double>& slot, double x) {
  double cur = slot.load(std::memory_order_relaxed);
  while (x < cur && !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& slot, double x) {
  double cur = slot.load(std::memory_order_relaxed);
  while (x > cur && !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

std::string fmt_value(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: bounds must be non-empty");
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         [](double a, double b) { return a >= b; }) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  storage_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  buckets_ = storage_.get();
  reset();
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t k = static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  buckets_[k].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  if (count() == 0) return 0.0;
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t k = 0; k <= bounds_.size(); ++k) {
    counts[k] = buckets_[k].load(std::memory_order_relaxed);
  }
  return quantile_from_buckets(bounds_, counts.data(), q, min(), max());
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t k = 0; k <= bounds_.size(); ++k) {
    buckets_[k].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::vector<double> pow2_buckets(double hi) {
  std::vector<double> bounds;
  for (double b = 1.0; b < hi; b *= 2.0) bounds.push_back(b);
  bounds.push_back(hi);
  return bounds;
}

double quantile_from_buckets(const std::vector<double>& bounds, const std::uint64_t* counts,
                             double q, double observed_min, double observed_max) {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k <= bounds.size(); ++k) total += counts[k];
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(total);
  const bool clamp = observed_min <= observed_max;
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < bounds.size(); ++k) {
    const std::uint64_t c = counts[k];
    if (static_cast<double>(cum + c) >= target && c > 0) {
      const double lo = k == 0 ? std::min(0.0, bounds[0]) : bounds[k - 1];
      const double hi = bounds[k];
      double v = lo + (hi - lo) * (target - static_cast<double>(cum)) / static_cast<double>(c);
      if (clamp) v = std::min(std::max(v, observed_min), observed_max);
      return v;
    }
    cum += c;
  }
  // Target rank lives in the overflow bucket: the observed max is the best
  // (and only bounded) estimate; fall back to the last bound without one.
  return clamp ? observed_max : bounds.back();
}

MetricsRegistry::Slot& MetricsRegistry::find_or_create(const std::string& name, Kind kind) {
  // Caller holds mu_.
  const auto it = slots_.find(name);
  if (it != slots_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("MetricsRegistry: '" + name + "' already registered as another kind");
    }
    return it->second;
  }
  Slot slot;
  slot.kind = kind;
  return slots_.emplace(name, std::move(slot)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = find_or_create(name, Kind::kCounter);
  if (!slot.counter) slot.counter = std::make_unique<Counter>();
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = find_or_create(name, Kind::kGauge);
  if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = find_or_create(name, Kind::kHistogram);
  if (!slot.histogram) slot.histogram = std::make_unique<Histogram>(bounds);
  return *slot.histogram;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, slot] : slots_) {
    if (slot.counter) slot.counter->reset();
    if (slot.gauge) slot.gauge->reset();
    if (slot.histogram) slot.histogram->reset();
  }
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  for (const auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter:
        out.push_back({name, "counter", "value", slot.counter->value()});
        break;
      case Kind::kGauge:
        out.push_back({name, "gauge", "value", slot.gauge->value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *slot.histogram;
        out.push_back({name, "histogram", "count", static_cast<double>(h.count())});
        out.push_back({name, "histogram", "sum", h.sum()});
        out.push_back({name, "histogram", "min", h.min()});
        out.push_back({name, "histogram", "max", h.max()});
        for (std::size_t k = 0; k < h.bounds().size(); ++k) {
          out.push_back({name, "histogram", "le_" + fmt_value(h.bounds()[k]),
                         static_cast<double>(h.bucket_count(k))});
        }
        out.push_back({name, "histogram", "overflow", static_cast<double>(h.overflow())});
        break;
      }
    }
  }
  return out;
}

RegistrySnapshot MetricsRegistry::structured_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot out;
  for (const auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter:
        out.counters.push_back({name, "counter", "value", slot.counter->value()});
        break;
      case Kind::kGauge:
        out.gauges.push_back({name, "gauge", "value", slot.gauge->value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *slot.histogram;
        HistogramSnapshot snap;
        snap.name = name;
        snap.bounds = h.bounds();
        snap.counts.resize(snap.bounds.size() + 1);
        for (std::size_t k = 0; k <= snap.bounds.size(); ++k) snap.counts[k] = h.bucket_count(k);
        snap.count = h.count();
        snap.sum = h.sum();
        snap.min = h.min();
        snap.max = h.max();
        out.histograms.push_back(std::move(snap));
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  write_csv_row(out, {"metric", "kind", "field", "value"});
  for (const MetricSample& s : snapshot()) {
    write_csv_row(out, {s.name, s.kind, s.field, fmt_value(s.value)});
  }
}

}  // namespace reco::obs
