#include "obs/obs.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/simd.hpp"
#include "stats/csv.hpp"

namespace reco::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
  if (on) {
    // Record the resolved SIMD dispatch tier once, so /metrics answers
    // "which kernels is this process actually running" (the core layer
    // itself cannot depend on obs — the dependency points the other way).
    static const bool recorded = [] {
      metrics()
          .counter(std::string("core.simd.dispatch.") +
                   simd::level_name(simd::active_level()))
          .inc();
      return true;
    }();
    (void)recorded;
  }
}

bool init_from_env() {
  const char* env = std::getenv("RECO_TRACE");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    set_enabled(true);
  }
  return enabled();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leak: outlives atexit flushes
  return *registry;
}

Tracer& tracer() {
  static Tracer* t = new Tracer();  // leak: outlives atexit flushes
  return *t;
}

void reset() {
  metrics().reset();
  tracer().clear();
}

void sync_trace_dropped() {
  // Monotone re-publication: inc by the delta since the last sync so the
  // counter tracks Tracer::dropped() without a settable counter type.
  // reset() zeroes the counter but not the tracer's lifetime drop count;
  // the high-water mark keeps later syncs from re-adding old drops.
  static std::atomic<std::uint64_t> synced{0};
  const std::uint64_t dropped = tracer().dropped();
  std::uint64_t seen = synced.load(std::memory_order_relaxed);
  if (dropped < seen) {  // tracer was cleared: re-base the high-water mark
    synced.store(dropped, std::memory_order_relaxed);
    return;
  }
  while (dropped > seen) {
    if (synced.compare_exchange_weak(seen, dropped, std::memory_order_relaxed)) {
      metrics().counter("obs.trace.dropped_events").inc(static_cast<double>(dropped - seen));
      break;
    }
  }
}

void save_trace_json(const std::string& path) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_json: cannot open " + path);
  tracer().write_chrome_json(out);
  if (!out) throw std::runtime_error("save_trace_json: write failed for " + path);
}

void save_metrics_csv(const std::string& path) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_metrics_csv: cannot open " + path);
  metrics().write_csv(out);
  if (!out) throw std::runtime_error("save_metrics_csv: write failed for " + path);
}

namespace {
std::string& exit_trace_path() {
  static std::string path;
  return path;
}
std::string& exit_metrics_path() {
  static std::string path;
  return path;
}
}  // namespace

void flush_at_exit(std::string trace_path, std::string metrics_path) {
  static bool registered = false;
  exit_trace_path() = std::move(trace_path);
  exit_metrics_path() = std::move(metrics_path);
  if (!registered) {
    registered = true;
    std::atexit([] {
      // Exit context: report failures, don't throw.
      try {
        if (!exit_trace_path().empty()) save_trace_json(exit_trace_path());
        if (!exit_metrics_path().empty()) save_metrics_csv(exit_metrics_path());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "obs: exit flush failed: %s\n", e.what());
      }
    });
  }
}

}  // namespace reco::obs
