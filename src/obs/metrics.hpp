// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with cheap stable handles for hot paths.
//
// Design constraints, in priority order:
//  1. *Zero schedule perturbation*: instruments only read pipeline state
//     and accumulate numbers — no metric ever feeds back into a decision.
//  2. *Hot-path cost*: a handle is a reference to an atomic slot, so an
//     instrumented site is `if (obs::enabled()) counter.inc()` — one
//     relaxed load + branch when telemetry is off.  Look names up once
//     (function-local static reference), never per event.
//  3. *Thread safety*: all mutators are lock-free atomics (the pipeline
//     fans out across the runtime ThreadPool); only registration and
//     snapshotting take the registry mutex.
//
// Handles returned by `counter()` / `gauge()` / `histogram()` are valid
// for the registry's lifetime: slots are heap-allocated once and never
// moved, and `reset()` zeroes values without invalidating references.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace reco::obs {

/// Monotonically increasing sum (doubles, so one type serves event counts
/// and accumulated quantities like padding seconds).
class Counter {
 public:
  void inc(double d = 1.0) { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-write-wins scalar, plus a monotone `set_max` for high-water marks.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket k counts observations with
/// `x <= bound[k]` (first matching bucket); anything above the last bound
/// lands in the overflow bucket.  Also tracks count / sum / min / max so a
/// snapshot carries the mean and the range without a separate gauge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t k) const {
    return buckets_[k].load(std::memory_order_relaxed);
  }
  std::uint64_t overflow() const {
    return buckets_[bounds_.size()].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  void reset();

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  // bounds_.size() buckets + 1 overflow slot at the back.
  std::unique_ptr<std::atomic<std::uint64_t>[]> storage_;
  std::atomic<std::uint64_t>* buckets_;  // alias of storage_ for readability
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Power-of-two upper bounds 1, 2, 4, ... up to and including `hi` —
/// the standard bucket layout for counts (nnz, path lengths, rounds).
std::vector<double> pow2_buckets(double hi);

/// One flattened value of a metric snapshot: histograms expand to one
/// sample per statistic (count, sum, min, max, le_<bound>..., overflow).
struct MetricSample {
  std::string name;
  std::string kind;   ///< "counter" | "gauge" | "histogram"
  std::string field;  ///< "value" for scalars; statistic name for histograms
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create; the returned reference is stable for the registry's
  /// lifetime.  A name registers as exactly one kind (first call wins;
  /// re-registering as a different kind throws std::logic_error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be non-empty and ascending; only the first registration
  /// of a name defines the buckets.
  Histogram& histogram(const std::string& name, const std::vector<double>& bounds);

  /// Zero every value.  Registrations (and outstanding handles) survive.
  void reset();

  /// All metrics, flattened, sorted by (name, field-registration order).
  std::vector<MetricSample> snapshot() const;

  /// Compact CSV dump (`metric,kind,field,value`) via the stats/csv
  /// escaping helpers.
  void write_csv(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& find_or_create(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace reco::obs
