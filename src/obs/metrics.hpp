// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with cheap stable handles for hot paths.
//
// Design constraints, in priority order:
//  1. *Zero schedule perturbation*: instruments only read pipeline state
//     and accumulate numbers — no metric ever feeds back into a decision.
//  2. *Hot-path cost*: a handle is a reference to an atomic slot, so an
//     instrumented site is `if (obs::enabled()) counter.inc()` — one
//     relaxed load + branch when telemetry is off.  Look names up once
//     (function-local static reference), never per event.
//  3. *Thread safety*: all mutators are lock-free atomics (the pipeline
//     fans out across the runtime ThreadPool); only registration and
//     snapshotting take the registry mutex.
//
// Handles returned by `counter()` / `gauge()` / `histogram()` are valid
// for the registry's lifetime: slots are heap-allocated once and never
// moved, and `reset()` zeroes values without invalidating references.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace reco::obs {

/// Monotonically increasing sum (doubles, so one type serves event counts
/// and accumulated quantities like padding seconds).
class Counter {
 public:
  void inc(double d = 1.0) { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-write-wins scalar, plus a monotone `set_max` for high-water marks.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void set_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket k counts observations with
/// `x <= bound[k]` (first matching bucket); anything above the last bound
/// lands in the overflow bucket.  Also tracks count / sum / min / max so a
/// snapshot carries the mean and the range without a separate gauge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t k) const {
    return buckets_[k].load(std::memory_order_relaxed);
  }
  std::uint64_t overflow() const {
    return buckets_[bounds_.size()].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  /// q-quantile (0 < q <= 1) by linear interpolation within the bucket
  /// containing the target rank, clamped to the observed [min, max] —
  /// the one place percentile math lives (the time-series sampler and the
  /// decision-latency recorder both delegate here).  0 when empty.
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  // bounds_.size() buckets + 1 overflow slot at the back.
  std::unique_ptr<std::atomic<std::uint64_t>[]> storage_;
  std::atomic<std::uint64_t>* buckets_;  // alias of storage_ for readability
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Power-of-two upper bounds 1, 2, 4, ... up to and including `hi` —
/// the standard bucket layout for counts (nnz, path lengths, rounds).
std::vector<double> pow2_buckets(double hi);

/// q-quantile (0 < q <= 1) of a bucketed distribution: `counts` holds one
/// slot per bound plus the overflow slot at the back (`bounds.size() + 1`
/// entries); bucket k counts observations in (bounds[k-1], bounds[k]] with
/// an implicit lower edge of 0 for bucket 0.  Linear interpolation within
/// the target bucket; a quantile landing in the overflow bucket returns
/// `observed_max`.  The result is clamped to [observed_min, observed_max]
/// when that interval is non-empty (pass +inf/-inf to skip clamping, e.g.
/// for windowed deltas where the extremes are unknown).  0 on zero counts.
double quantile_from_buckets(const std::vector<double>& bounds, const std::uint64_t* counts,
                             double q, double observed_min, double observed_max);

/// One flattened value of a metric snapshot: histograms expand to one
/// sample per statistic (count, sum, min, max, le_<bound>..., overflow).
struct MetricSample {
  std::string name;
  std::string kind;   ///< "counter" | "gauge" | "histogram"
  std::string field;  ///< "value" for scalars; statistic name for histograms
  double value = 0.0;
};

/// Structured histogram state at snapshot time: raw per-bucket counts
/// (overflow last, so `counts.size() == bounds.size() + 1`) plus the
/// scalar statistics.  Consumers that need bucket math — the Prometheus
/// exporter's cumulative buckets, the sampler's windowed deltas — use
/// this instead of re-parsing the flattened le_* fields.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Typed snapshot of the whole registry, each section sorted by name.
struct RegistrySnapshot {
  std::vector<MetricSample> counters;  ///< kind == "counter"
  std::vector<MetricSample> gauges;    ///< kind == "gauge"
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  /// Find-or-create; the returned reference is stable for the registry's
  /// lifetime.  A name registers as exactly one kind (first call wins;
  /// re-registering as a different kind throws std::logic_error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be non-empty and ascending; only the first registration
  /// of a name defines the buckets.
  Histogram& histogram(const std::string& name, const std::vector<double>& bounds);

  /// Zero every value.  Registrations (and outstanding handles) survive.
  void reset();

  /// All metrics, flattened, sorted by (name, field-registration order).
  std::vector<MetricSample> snapshot() const;

  /// Typed snapshot: scalars plus raw histogram bucket counts (see
  /// RegistrySnapshot) — the exporter/sampler entry point.
  RegistrySnapshot structured_snapshot() const;

  /// Compact CSV dump (`metric,kind,field,value`) via the stats/csv
  /// escaping helpers.
  void write_csv(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& find_or_create(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace reco::obs
