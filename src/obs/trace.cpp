#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>

#include "obs/obs.hpp"

namespace reco::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 1u << 20;  // ~1M events

thread_local int tls_wall_track = -1;

double to_us(Tracer::Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// JSON string escaping for event names / labels (control chars, quotes).
void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out << buf;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

void write_event(std::ostream& out, const TraceEvent& e) {
  out << "{\"name\":";
  write_json_string(out, e.name);
  out << ",\"cat\":";
  write_json_string(out, e.cat[0] == '\0' ? "reco" : e.cat);
  out << ",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us;
  if (e.ph == 'X') out << ",\"dur\":" << e.dur_us;
  if (e.ph == 'i') out << ",\"s\":\"t\"";  // thread-scoped instant
  out << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  if (!e.args.empty()) {
    out << ",\"args\":{";
    for (std::size_t a = 0; a < e.args.size(); ++a) {
      if (a > 0) out << ',';
      write_json_string(out, e.args[a].key);
      out << ':' << e.args[a].value;
    }
    out << '}';
  }
  out << '}';
}

void write_metadata(std::ostream& out, const char* what, int pid, int tid,
                    const std::string& label) {
  out << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"args\":{\"name\":";
  write_json_string(out, label);
  out << "}}";
}

}  // namespace

Tracer::Tracer() : epoch_(Clock::now()), capacity_(kDefaultCapacity) {}

void Tracer::record(TraceEvent e) {
  // Cheap pre-lock probe; the exact check re-runs under the lock.
  if (approx_size_.load(std::memory_order_relaxed) >= capacity()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(e));
  approx_size_.store(events_.size(), std::memory_order_relaxed);
}

int Tracer::wall_track_id() {
  if (tls_wall_track < 0) {
    std::lock_guard<std::mutex> lock(mu_);
    tls_wall_track = next_wall_track_++;
  }
  return tls_wall_track;
}

void Tracer::complete(std::string name, const char* cat, Clock::time_point start,
                      Clock::time_point end, std::initializer_list<TraceArg> args) {
  complete(std::move(name), cat, start, end, args.begin(),
           static_cast<int>(args.size()));
}

void Tracer::complete(std::string name, const char* cat, Clock::time_point start,
                      Clock::time_point end, const TraceArg* args, int num_args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = to_us(start - epoch_);
  e.dur_us = to_us(end - start);
  e.pid = kWallPid;
  e.tid = wall_track_id();
  e.args.assign(args, args + num_args);
  record(std::move(e));
}

void Tracer::instant(std::string name, const char* cat, std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = to_us(Clock::now() - epoch_);
  e.pid = kWallPid;
  e.tid = wall_track_id();
  e.args.assign(args);
  record(std::move(e));
}

void Tracer::sim_span(std::string name, const char* cat, double t0_s, double t1_s, int track,
                      std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = t0_s * 1e6;
  e.dur_us = (t1_s - t0_s) * 1e6;
  e.pid = kSimPid;
  e.tid = track;
  e.args.assign(args);
  record(std::move(e));
}

void Tracer::sim_instant(std::string name, const char* cat, double t_s, int track,
                         std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = t_s * 1e6;
  e.pid = kSimPid;
  e.tid = track;
  e.args.assign(args);
  record(std::move(e));
}

void Tracer::name_sim_track(int track, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [t, name] : sim_track_names_) {
    if (t == track) {
      name = std::move(label);
      return;
    }
  }
  sim_track_names_.emplace_back(track, std::move(label));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  sim_track_names_.clear();
  approx_size_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.precision(9);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  write_metadata(out, "process_name", kWallPid, 0, "wall clock (pipeline)");
  out << ",\n";
  write_metadata(out, "process_name", kSimPid, 0, "simulated time (fabric)");
  for (const auto& [track, label] : sim_track_names_) {
    out << ",\n";
    write_metadata(out, "thread_name", kSimPid, track, label);
  }
  for (const TraceEvent& e : events_) {
    out << ",\n";
    write_event(out, e);
  }
  out << "\n]}\n";
}

ScopedSpan::ScopedSpan(const char* name, const char* cat)
    : active_(enabled()), name_(name), cat_(cat) {
  if (active_) start_ = Tracer::Clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  tracer().complete(name_, cat_, start_, Tracer::Clock::now(), args_, num_args_);
}

}  // namespace reco::obs
