#include "obs/flight_recorder.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "stats/csv.hpp"

namespace reco::obs {

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

void write_event(std::ostream& out, const FlightEvent& e) {
  const auto flags = out.flags();
  out.precision(12);
  out << "{\"seq\": " << e.seq << ", \"t\": " << finite_or_zero(e.t) << ", \"kind\": ";
  write_json_string(out, e.kind);
  out << ", \"id\": " << e.id << ", \"value\": " << finite_or_zero(e.value);
  if (!e.note.empty()) {
    out << ", \"note\": ";
    write_json_string(out, e.note);
  }
  out << "}\n";
  out.flags(flags);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  head_ = 0;
}

void FlightRecorder::record(const char* kind, double t, std::int64_t id, double value,
                            std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  FlightEvent e;
  e.seq = total_++;
  e.t = t;
  e.kind = kind;
  e.id = id;
  e.value = value;
  e.note = std::move(note);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
  }
}

void FlightRecorder::arm(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
}

bool FlightRecorder::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !path_.empty();
}

std::string FlightRecorder::armed_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

void FlightRecorder::trigger(const char* reason) {
  std::string path;
  std::vector<FlightEvent> events;
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty()) return;
    path = path_;
    events.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      events.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    seq = total_;
  }
  // I/O outside the lock: trigger sites sit on failure paths and must not
  // stall recording threads behind a slow disk.
  try {
    ensure_parent_directory(path);
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    for (const FlightEvent& e : events) write_event(out, e);
    FlightEvent marker;
    marker.seq = seq;
    marker.t = 0.0;
    marker.kind = "trigger";
    marker.note = reason;
    write_event(out, marker);
    if (!out) throw std::runtime_error("write failed for " + path);
    dumps_.fetch_add(1, std::memory_order_relaxed);
    if (enabled()) {
      static auto& c = metrics().counter("obs.flight.dumps");
      c.inc();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: flight-recorder dump failed: %s\n", e.what());
  }
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void FlightRecorder::write_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    write_event(out, ring_[(head_ + i) % ring_.size()]);
  }
}

void FlightRecorder::save_jsonl(const std::string& path) const {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_jsonl: cannot open " + path);
  write_jsonl(out);
  if (!out) throw std::runtime_error("save_jsonl: write failed for " + path);
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
}

FlightRecorder& flight_recorder() {
  static FlightRecorder* r = new FlightRecorder();  // leak: outlives atexit flushes
  return *r;
}

}  // namespace reco::obs
