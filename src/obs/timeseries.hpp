// Time-series sampling: periodic snapshots of the metrics registry into a
// bounded ring, with per-window derived statistics — counter *rates* and
// histogram-delta *percentiles* — so a live run can answer "what is p99
// decision latency right now" instead of only at exit.
//
// One sampler instance serves one timeline:
//  * the *wall* sampler is driven by a background thread (WallSampler)
//    ticking every `period_s` of real time — the daemon/endpoint mode;
//  * the *sim* sampler is driven by a recurring EventQueue event (the
//    OnlineDaemon schedules one every `sample_every` simulated seconds),
//    so windows are exact simulated-time intervals.
//
// The PR-3 telemetry contract carries over unchanged: sampling is
// write-only (it reads the registry and derives numbers; nothing feeds
// back into a decision), every producer site stays gated on
// `obs::enabled()`, and the ring is bounded — a week-long run holds the
// last `capacity` windows, never an unbounded series.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace reco::obs {

/// One windowed statistic derived from two consecutive registry snapshots.
/// Scalars carry `value` (cumulative level) and, for counters, `rate` =
/// delta / window seconds.  Histograms carry the window's observation
/// count and rate plus interpolated percentiles over the *bucket deltas*
/// (see quantile_from_buckets) — i.e. p99 of the observations made during
/// this window, not since process start.
struct WindowStat {
  std::string name;
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  double value = 0.0;
  double rate = 0.0;
  std::uint64_t window_count = 0;  ///< histogram observations in the window
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One ring entry: the timeline instant plus every windowed statistic.
struct SamplePoint {
  double t = 0.0;       ///< seconds on the owning timeline
  double window = 0.0;  ///< seconds since the previous sample (0: first)
  std::vector<WindowStat> stats;
};

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(std::string timeline, std::size_t capacity = 512);

  const std::string& timeline() const { return timeline_; }

  /// Ring bound; resizing clears recorded samples (not the delta base).
  std::size_t capacity() const;
  void set_capacity(std::size_t capacity);

  /// Snapshot the global registry at timeline instant `t`, derive window
  /// statistics against the previous sample, and push into the ring.
  /// Non-monotone `t` (a new run on a reset clock) re-bases the window.
  /// Also folds `Tracer::dropped()` into `obs.trace.dropped_events`.
  void sample(double t);

  std::size_t size() const;
  std::uint64_t total_samples() const;

  /// Ring contents, oldest to newest (copies; the ring stays live).
  std::vector<SamplePoint> series() const;
  /// Newest sample; default-constructed (empty stats) when none yet.
  SamplePoint latest() const;

  /// Drop samples and the delta base (registrations are untouched).
  void clear();

  /// JSON dump of the whole ring:
  /// {"timeline": ..., "samples": [{"t":..., "window":..., "stats":[...]}]}
  void write_json(std::ostream& out) const;

 private:
  void push(SamplePoint point);

  mutable std::mutex mu_;
  std::string timeline_;
  std::size_t capacity_;
  std::vector<SamplePoint> ring_;  ///< circular once full
  std::size_t head_ = 0;           ///< next write position
  std::uint64_t total_ = 0;
  bool has_prev_ = false;
  double prev_t_ = 0.0;
  RegistrySnapshot prev_;
};

/// Background wall-clock driver: ticks `sampler.sample(elapsed_seconds)`
/// every `period_s` from a dedicated thread until stop() (or destruction),
/// then takes one final sample so the last window is always closed.
class WallSampler {
 public:
  WallSampler(TimeSeriesSampler& sampler, double period_s);
  ~WallSampler();

  WallSampler(const WallSampler&) = delete;
  WallSampler& operator=(const WallSampler&) = delete;

  /// Idempotent; joins the sampling thread.
  void stop();

 private:
  void loop();

  TimeSeriesSampler* sampler_;
  double period_s_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::chrono::steady_clock::time_point epoch_;
  std::thread thread_;
};

/// Process-wide samplers, one per timeline (created on first use, like
/// obs::metrics()).  The HTTP endpoint and the snapshot writer serve both.
TimeSeriesSampler& wall_sampler();
TimeSeriesSampler& sim_sampler();

}  // namespace reco::obs
