// Fault flight recorder: a bounded ring of recent structured events —
// admissions, plans, commits, cuts, recovery replans, port failures and
// repairs, peel aborts — that is dumped as JSONL when something goes
// wrong, so the postmortem sees the N events *leading up to* the anomaly
// rather than only its aftermath.
//
// Producers stay on the PR-3 telemetry contract: every record site is
// gated on `obs::enabled()` (one relaxed load + branch when off), the
// recorder is write-only with respect to scheduling decisions, and the
// ring is bounded — recording overwrites the oldest event once full.
//
// Arming: `arm(path)` names a JSONL file; `trigger(reason)` then writes
// the entire ring (newest dump wins — the file always holds the most
// recent incident, bounded by the ring capacity).  Trigger sites in the
// tree: RecoveringController on a mid-schedule replan, parallel_peel on a
// peel abort, and reco_serve on abnormal exit.  Unarmed triggers are
// counted but write nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace reco::obs {

/// One recorded event.  `kind` is a static tag ("admission", "replan",
/// "port_fail", ...); `id` and `value` are kind-specific (coflow or port
/// id; latency, size, count), -1 / 0 when unused; `note` is optional
/// free text.
struct FlightEvent {
  std::uint64_t seq = 0;  ///< global record order (survives ring wrap)
  double t = 0.0;         ///< producer-timeline seconds
  const char* kind = "";
  std::int64_t id = -1;
  double value = 0.0;
  std::string note;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024);

  /// Ring bound; resizing clears recorded events.
  std::size_t capacity() const;
  void set_capacity(std::size_t capacity);

  /// Push one event (overwrites the oldest once the ring is full).
  /// Callers gate on obs::enabled(); the recorder itself never checks.
  void record(const char* kind, double t, std::int64_t id = -1, double value = 0.0,
              std::string note = {});

  /// Name the auto-dump file.  An empty path disarms.
  void arm(std::string path);
  bool armed() const;
  std::string armed_path() const;

  /// Dump the ring (plus one trailing "trigger" event carrying `reason`)
  /// to the armed path.  Overwrites: the file holds the latest incident.
  /// No-op when unarmed; I/O failure is reported on stderr, never thrown
  /// (trigger sites are failure paths already).
  void trigger(const char* reason);

  std::size_t size() const;
  std::uint64_t total_events() const;
  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  /// Ring contents oldest-to-newest, one JSON object per line:
  /// {"seq":..,"t":..,"kind":"..","id":..,"value":..,"note":".."}
  void write_jsonl(std::ostream& out) const;
  /// write_jsonl to `path` (creates parent dirs; throws on I/O failure).
  void save_jsonl(const std::string& path) const;

  /// Drop all events (capacity and armed path are untouched).
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;  ///< circular once full
  std::size_t head_ = 0;           ///< next write position
  std::uint64_t total_ = 0;
  std::string path_;
  std::atomic<std::uint64_t> dumps_{0};
};

/// Process-wide recorder (created on first use, like obs::metrics()).
FlightRecorder& flight_recorder();

}  // namespace reco::obs
