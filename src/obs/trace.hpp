// Structured tracing: span / instant events serialized as Chrome
// trace-event JSON (the "JSON Array Format" both Perfetto and
// chrome://tracing load directly).
//
// Two timelines share one trace file, distinguished by pid:
//  * pid 1 ("wall clock") — real elapsed time of pipeline stages, one
//    track per OS thread (stuffing, regularization, BvN rounds, pool
//    tasks).  Timestamps are microseconds since tracer construction.
//  * pid 2 ("simulated time") — the event-driven simulator's clock, one
//    track per caller-chosen id (coflow, port): circuit establish /
//    teardown instants, per-coflow arrival -> finish spans.  Simulated
//    seconds map to trace microseconds, so "1 ms" in Perfetto is 1 ms of
//    simulated time.
//
// Recording is mutex-serialized (events are per-round / per-task scale,
// not per-matrix-entry) and bounded: beyond `capacity()` events the
// tracer counts drops instead of growing, so a tracing-enabled benchmark
// loop cannot exhaust memory.  All call sites must be gated on
// `obs::enabled()` — see obs/obs.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace reco::obs {

/// One numeric argument attached to an event ({"args": {key: value}}).
struct TraceArg {
  const char* key;
  double value;
};

struct TraceEvent {
  std::string name;
  const char* cat = "";
  char ph = 'X';        ///< 'X' complete, 'i' instant
  double ts_us = 0.0;   ///< microseconds on the owning pid's timeline
  double dur_us = 0.0;  ///< complete events only
  int pid = 1;
  int tid = 0;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr int kWallPid = 1;
  static constexpr int kSimPid = 2;

  Tracer();

  /// Wall-clock complete event on the calling thread's track.
  void complete(std::string name, const char* cat, Clock::time_point start,
                Clock::time_point end, std::initializer_list<TraceArg> args = {});
  void complete(std::string name, const char* cat, Clock::time_point start,
                Clock::time_point end, const TraceArg* args, int num_args);

  /// Wall-clock instant on the calling thread's track.
  void instant(std::string name, const char* cat, std::initializer_list<TraceArg> args = {});

  /// Simulated-time span [t0, t1] (seconds) on track `track` of the sim pid.
  void sim_span(std::string name, const char* cat, double t0_s, double t1_s, int track,
                std::initializer_list<TraceArg> args = {});

  /// Simulated-time instant at `t_s` (seconds) on track `track`.
  void sim_instant(std::string name, const char* cat, double t_s, int track,
                   std::initializer_list<TraceArg> args = {});

  /// Perfetto track label for a sim-pid track (emitted as thread_name
  /// metadata, e.g. "coflow 3").  Last write wins.
  void name_sim_track(int track, std::string label);

  /// Drop-at-capacity bound; `set_capacity` applies to future records.
  std::size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  void set_capacity(std::size_t cap) { capacity_.store(cap, std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  std::size_t size() const;
  void clear();

  /// Small int track id of the calling OS thread (registers on first use;
  /// 0 is the first thread to record, typically main).
  int wall_track_id();

  /// Serialize everything recorded so far as Chrome trace-event JSON:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with process/thread
  /// metadata records first.
  void write_chrome_json(std::ostream& out) const;

 private:
  void record(TraceEvent e);

  const Clock::time_point epoch_;
  std::atomic<std::size_t> capacity_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> approx_size_{0};  ///< pre-lock capacity probe
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<int, std::string>> sim_track_names_;
  int next_wall_track_ = 0;
};

/// RAII wall-clock span: times construction -> destruction and records a
/// complete event, if tracing was enabled at construction.  Numeric args
/// can be attached mid-scope with `arg()` (up to 6; extras are ignored).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(const char* key, double value) {
    if (active_ && num_args_ < kMaxArgs) args_[num_args_++] = {key, value};
  }

 private:
  static constexpr int kMaxArgs = 6;
  bool active_;
  const char* name_;
  const char* cat_;
  Tracer::Clock::time_point start_;
  TraceArg args_[kMaxArgs];
  int num_args_ = 0;
};

}  // namespace reco::obs
