#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>

#include "obs/obs.hpp"

namespace reco::obs {

namespace {

/// JSON-safe number: the exporter promises valid JSON, and min/max are
/// +/-inf on empty histograms — map anything non-finite to 0.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u0020";  // control chars never appear in metric names
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(std::string timeline, std::size_t capacity)
    : timeline_(std::move(timeline)), capacity_(std::max<std::size_t>(capacity, 1)) {}

std::size_t TimeSeriesSampler::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TimeSeriesSampler::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(capacity, 1);
  ring_.clear();
  head_ = 0;
}

void TimeSeriesSampler::sample(double t) {
  sync_trace_dropped();  // surface Tracer::dropped() before snapshotting
  const RegistrySnapshot cur = metrics().structured_snapshot();

  SamplePoint point;
  point.t = t;
  std::lock_guard<std::mutex> lock(mu_);
  const bool windowed = has_prev_ && t > prev_t_;
  const double dt = windowed ? t - prev_t_ : 0.0;
  point.window = dt;
  point.stats.reserve(cur.counters.size() + cur.gauges.size() + cur.histograms.size());

  // Sections are sorted by name (std::map iteration), so deltas against the
  // previous snapshot are a two-pointer merge; metrics registered since the
  // last sample simply have no delta base and report a zero rate.
  std::size_t p = 0;
  for (const MetricSample& c : cur.counters) {
    WindowStat w;
    w.name = c.name;
    w.kind = "counter";
    w.value = c.value;
    if (windowed) {
      while (p < prev_.counters.size() && prev_.counters[p].name < c.name) ++p;
      if (p < prev_.counters.size() && prev_.counters[p].name == c.name) {
        w.rate = std::max(0.0, c.value - prev_.counters[p].value) / dt;
      }
    }
    point.stats.push_back(std::move(w));
  }
  for (const MetricSample& g : cur.gauges) {
    WindowStat w;
    w.name = g.name;
    w.kind = "gauge";
    w.value = g.value;
    point.stats.push_back(std::move(w));
  }
  p = 0;
  std::vector<std::uint64_t> delta;
  for (const HistogramSnapshot& h : cur.histograms) {
    WindowStat w;
    w.name = h.name;
    w.kind = "histogram";
    w.value = static_cast<double>(h.count);
    const HistogramSnapshot* base = nullptr;
    if (windowed) {
      while (p < prev_.histograms.size() && prev_.histograms[p].name < h.name) ++p;
      if (p < prev_.histograms.size() && prev_.histograms[p].name == h.name) {
        base = &prev_.histograms[p];
      }
    }
    delta.assign(h.counts.size(), 0);
    std::uint64_t window_count = 0;
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      const std::uint64_t before =
          base != nullptr && k < base->counts.size() ? base->counts[k] : 0;
      delta[k] = h.counts[k] >= before ? h.counts[k] - before : 0;  // tolerate resets
      window_count += delta[k];
    }
    if (windowed && window_count > 0) {
      w.window_count = window_count;
      w.rate = static_cast<double>(window_count) / dt;
      // The window's own extremes are not tracked; the all-time [min, max]
      // is a strictly wider clamp, so interpolation stays inside it.
      w.p50 = quantile_from_buckets(h.bounds, delta.data(), 0.50, h.min, h.max);
      w.p90 = quantile_from_buckets(h.bounds, delta.data(), 0.90, h.min, h.max);
      w.p99 = quantile_from_buckets(h.bounds, delta.data(), 0.99, h.min, h.max);
    }
    point.stats.push_back(std::move(w));
  }

  prev_ = cur;
  prev_t_ = t;
  has_prev_ = true;
  push(std::move(point));
}

void TimeSeriesSampler::push(SamplePoint point) {
  // Caller holds mu_.
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(point));
  } else {
    ring_[head_] = std::move(point);
  }
  head_ = (head_ + 1) % capacity_;
  ++total_;
}

std::size_t TimeSeriesSampler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TimeSeriesSampler::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<SamplePoint> TimeSeriesSampler::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SamplePoint> out;
  out.reserve(ring_.size());
  const std::size_t start = ring_.size() < capacity_ ? 0 : head_;
  for (std::size_t k = 0; k < ring_.size(); ++k) {
    out.push_back(ring_[(start + k) % ring_.size()]);
  }
  return out;
}

SamplePoint TimeSeriesSampler::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return {};
  const std::size_t newest = (head_ + ring_.size() - 1) % ring_.size();
  return ring_[newest];
}

void TimeSeriesSampler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
  has_prev_ = false;
  prev_ = {};
}

void TimeSeriesSampler::write_json(std::ostream& out) const {
  const std::vector<SamplePoint> samples = series();
  out << "{\"timeline\": ";
  write_json_string(out, timeline_);
  out << ", \"samples\": [";
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const SamplePoint& point = samples[s];
    if (s > 0) out << ", ";
    out << "{\"t\": " << finite(point.t) << ", \"window\": " << finite(point.window)
        << ", \"stats\": [";
    for (std::size_t k = 0; k < point.stats.size(); ++k) {
      const WindowStat& w = point.stats[k];
      if (k > 0) out << ", ";
      out << "{\"name\": ";
      write_json_string(out, w.name);
      out << ", \"kind\": ";
      write_json_string(out, w.kind);
      out << ", \"value\": " << finite(w.value) << ", \"rate\": " << finite(w.rate);
      if (w.kind == "histogram") {
        out << ", \"window_count\": " << w.window_count << ", \"p50\": " << finite(w.p50)
            << ", \"p90\": " << finite(w.p90) << ", \"p99\": " << finite(w.p99);
      }
      out << '}';
    }
    out << "]}";
  }
  out << "]}";
}

WallSampler::WallSampler(TimeSeriesSampler& sampler, double period_s)
    : sampler_(&sampler),
      period_s_(std::max(period_s, 1e-3)),
      epoch_(std::chrono::steady_clock::now()),
      thread_([this] { loop(); }) {}

WallSampler::~WallSampler() { stop(); }

void WallSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void WallSampler::loop() {
  const auto elapsed_s = [this] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  };
  sampler_->sample(0.0);  // delta base, so the first tick has a window
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const auto period = std::chrono::duration<double>(period_s_);
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    sampler_->sample(elapsed_s());
    lock.lock();
  }
  lock.unlock();
  sampler_->sample(elapsed_s());  // close the final window
}

TimeSeriesSampler& wall_sampler() {
  static TimeSeriesSampler* s = new TimeSeriesSampler("wall");  // leak: outlives exit flushes
  return *s;
}

TimeSeriesSampler& sim_sampler() {
  static TimeSeriesSampler* s = new TimeSeriesSampler("sim");  // leak: outlives exit flushes
  return *s;
}

}  // namespace reco::obs
