// Metric exposition: Prometheus text format and a JSON time-series dump,
// served live by a minimal HTTP endpoint or written to files for headless
// runs.
//
//   GET /metrics   Prometheus text format 0.0.4: every registry metric
//                  (dots sanitized to underscores, `reco_` prefix;
//                  histograms as cumulative _bucket/_sum/_count) plus the
//                  latest *windowed* statistics from both samplers as
//                  reco_window_* gauges — so a scrape sees "p99 decision
//                  latency over the last window", not just lifetime
//                  cumulative buckets.
//   GET /snapshot  JSON dump of both samplers' rings (wall + sim).
//
// The endpoint is OFF by default and fully out of band: it only *reads*
// registry/sampler state (both are internally synchronized), never blocks
// a scheduling thread, and serving a request cannot perturb a schedule —
// the telemetry-determinism property test runs with the exporter live.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace reco::obs {

/// A metric name sanitized for Prometheus: characters outside
/// [a-zA-Z0-9_:] map to '_', and the result is prefixed with `reco_`.
std::string prometheus_name(const std::string& name);

/// Prometheus text-format exposition (version 0.0.4) of one registry
/// snapshot: `# TYPE` lines, counters/gauges as plain samples, histograms
/// as cumulative `_bucket{le="..."}` series ending in `le="+Inf"` plus
/// `_sum` and `_count`.
void write_prometheus_text(std::ostream& out, const MetricsRegistry& registry);

/// The latest window of `sampler` as reco_window_* gauges labelled with
/// the timeline: counter rates (`_per_s`) and histogram percentiles
/// (`_p50` / `_p90` / `_p99`) — the "right now" view.
void write_prometheus_window(std::ostream& out, const TimeSeriesSampler& sampler);

/// The full /metrics page: global registry + both global samplers.
void write_prometheus_page(std::ostream& out);

/// The /snapshot page: {"snapshots": [<wall ring>, <sim ring>]}.
void write_snapshot_json(std::ostream& out);

/// File writers for headless runs (create missing parent directories;
/// throw std::runtime_error naming the path on I/O failure).
void save_prometheus(const std::string& path);
void save_snapshot_json(const std::string& path);

/// Minimal single-connection HTTP/1.0 server on a background thread.
/// Routes: GET /metrics, GET /snapshot (404 otherwise).  Loopback only.
///
/// Hardened against misbehaving clients, since a wedged exporter would
/// outlive the run it observes: every poll/accept/recv/send retries EINTR,
/// requests are read across partial segments until the request line is
/// complete, request size is bounded (kMaxRequestBytes; over-limit clients
/// get 413), sends use MSG_NOSIGNAL (a client hanging up mid-response
/// cannot SIGPIPE the process), and each client gets an idle timeout
/// (default 2 s) on both the read and write side — a client that connects
/// and goes silent, trickles bytes forever, or stops reading the response
/// is dropped at the next timeout and the server moves on.
class MetricsHttpServer {
 public:
  /// Request-line bound: longer requests are answered 413 and dropped.
  static constexpr std::size_t kMaxRequestBytes = 8192;

  MetricsHttpServer() = default;
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// start serving.  Throws std::runtime_error on socket/bind failure.
  void start(int port);

  /// Stop accepting, close the socket, join the thread.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// Actual bound port (resolves port 0), valid after start().
  int port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Clients dropped for idle timeout / trickling / not reading.
  std::uint64_t clients_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Per-client read/write idle timeout (tests shrink it to keep the
  /// slow-client cases fast).  Applies to clients accepted afterwards.
  void set_client_timeout_ms(int ms) {
    client_timeout_ms_.store(ms, std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void serve_client(int client);

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<int> client_timeout_ms_{2000};
  std::thread thread_;
};

}  // namespace reco::obs
