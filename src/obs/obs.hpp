// Telemetry control plane: one global kill switch, one global metrics
// registry, one global tracer, and the file writers that flush them.
//
// The contract with instrumented code:
//
//   if (reco::obs::enabled()) {          // one relaxed load + branch
//     static auto& c = reco::obs::metrics().counter("bvn.rounds");
//     c.inc();
//     reco::obs::tracer().instant("round", "bvn");
//   }
//
// Telemetry is OFF by default; `init_from_env()` honours RECO_TRACE=1 and
// CLI flags (`--trace-out`, `--metrics-out`) call `set_enabled(true)`.
// Collection never feeds back into scheduling decisions, so schedules are
// byte-identical with telemetry on or off (pinned by
// tests/property/test_telemetry_determinism.cpp).
#pragma once

#include <atomic>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace reco::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// The per-site branch.  Relaxed: sites tolerate seeing a toggle late.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on);

/// Enable iff RECO_TRACE is set to anything but "0"/"" ; returns enabled().
bool init_from_env();

/// Process-wide registry / tracer (created on first use, never destroyed
/// before exit-time flushes).
MetricsRegistry& metrics();
Tracer& tracer();

/// Zero all metric values and drop all trace events (registrations and
/// outstanding handles survive).
void reset();

/// Fold the tracer's drop count into the `obs.trace.dropped_events`
/// counter (monotone: increments by the delta since the last sync).
/// Called by the time-series sampler on every tick and by the exporters,
/// so trace loss is visible wherever metrics are.
void sync_trace_dropped();

/// Flush to disk, creating missing parent directories.  Throws
/// std::runtime_error naming the path on I/O failure.
void save_trace_json(const std::string& path);
void save_metrics_csv(const std::string& path);

/// Register an exit-time flush of whichever paths are non-empty (used by
/// the bench binaries, whose main() belongs to google-benchmark).  Safe to
/// call more than once; the last paths win.
void flush_at_exit(std::string trace_path, std::string metrics_path);

}  // namespace reco::obs
