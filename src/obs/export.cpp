#include "obs/export.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "stats/csv.hpp"

namespace reco::obs {

namespace {

/// Prometheus sample values: plain floats, with the spec's spellings for
/// the non-finite cases ("+Inf"/"-Inf"/"NaN").
void write_prom_value(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "NaN";
  } else if (std::isinf(v)) {
    out << (v > 0 ? "+Inf" : "-Inf");
  } else {
    const auto flags = out.flags();
    out.precision(12);
    out << v;
    out.flags(flags);
  }
}

void write_prom_sample(std::ostream& out, const std::string& name, const char* labels,
                       double value) {
  out << name << labels << ' ';
  write_prom_value(out, value);
  out << '\n';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "reco_";
  out.reserve(name.size() + 5);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_prometheus_text(std::ostream& out, const MetricsRegistry& registry) {
  const RegistrySnapshot snap = registry.structured_snapshot();
  for (const MetricSample& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    out << "# TYPE " << name << " counter\n";
    write_prom_sample(out, name, "", c.value);
  }
  for (const MetricSample& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n";
    write_prom_sample(out, name, "", g.value);
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t k = 0; k < h.bounds.size(); ++k) {
      cum += h.counts[k];
      out << name << "_bucket{le=\"";
      write_prom_value(out, h.bounds[k]);
      out << "\"} " << cum << '\n';
    }
    cum += h.counts[h.bounds.size()];
    out << name << "_bucket{le=\"+Inf\"} " << cum << '\n';
    write_prom_sample(out, name + "_sum", "", h.sum);
    out << name << "_count " << h.count << '\n';
  }
}

void write_prometheus_window(std::ostream& out, const TimeSeriesSampler& sampler) {
  const SamplePoint latest = sampler.latest();
  if (latest.stats.empty() || latest.window <= 0.0) return;
  const std::string label = "{timeline=\"" + sampler.timeline() + "\"}";
  const auto gauge = [&](const std::string& name, double value) {
    out << "# TYPE " << name << " gauge\n";
    write_prom_sample(out, name, label.c_str(), value);
  };
  gauge("reco_window_seconds", latest.window);
  gauge("reco_window_end", latest.t);
  for (const WindowStat& w : latest.stats) {
    const std::string base = "reco_window_" + prometheus_name(w.name).substr(5);
    if (w.kind == "counter") {
      gauge(base + "_per_s", w.rate);
    } else if (w.kind == "histogram") {
      gauge(base + "_per_s", w.rate);
      if (w.window_count > 0) {
        gauge(base + "_p50", w.p50);
        gauge(base + "_p90", w.p90);
        gauge(base + "_p99", w.p99);
      }
    }
  }
}

void write_prometheus_page(std::ostream& out) {
  sync_trace_dropped();
  write_prometheus_text(out, metrics());
  write_prometheus_window(out, wall_sampler());
  write_prometheus_window(out, sim_sampler());
}

void write_snapshot_json(std::ostream& out) {
  out << "{\"snapshots\": [";
  wall_sampler().write_json(out);
  out << ", ";
  sim_sampler().write_json(out);
  out << "]}";
}

void save_prometheus(const std::string& path) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_prometheus: cannot open " + path);
  write_prometheus_page(out);
  if (!out) throw std::runtime_error("save_prometheus: write failed for " + path);
}

void save_snapshot_json(const std::string& path) {
  ensure_parent_directory(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_snapshot_json: cannot open " + path);
  write_snapshot_json(out);
  if (!out) throw std::runtime_error("save_snapshot_json: write failed for " + path);
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start(int port) {
  if (running_.load(std::memory_order_relaxed)) {
    throw std::logic_error("MetricsHttpServer: already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("MetricsHttpServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("MetricsHttpServer: cannot bind 127.0.0.1:" +
                             std::to_string(port) + " (" + std::strerror(err) + ")");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_relaxed);
}

namespace {

/// poll() retrying EINTR; returns poll's result (0 = timeout, < 0 = error).
int poll_retry(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  int r;
  do {
    r = ::poll(&pfd, 1, timeout_ms);
  } while (r < 0 && errno == EINTR);
  return r;
}

}  // namespace

void MetricsHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int ready = poll_retry(listen_fd_, POLLIN, 200);  // 200 ms stop granularity
    if (ready <= 0) continue;
    int client;
    do {
      client = ::accept(listen_fd_, nullptr, nullptr);
    } while (client < 0 && errno == EINTR);
    if (client < 0) continue;
    serve_client(client);
    ::close(client);
  }
}

void MetricsHttpServer::serve_client(int client) {
  const int timeout_ms = client_timeout_ms_.load(std::memory_order_relaxed);

  // Read until the request line is complete (a well-behaved scraper sends
  // it in one segment, but partial delivery is legal), bounding both the
  // total size and the time we are willing to wait on one client.
  std::string request;
  bool oversized = false;
  while (request.find('\n') == std::string::npos) {
    if (request.size() >= kMaxRequestBytes) {
      oversized = true;
      break;
    }
    if (poll_retry(client, POLLIN, timeout_ms) <= 0) {
      // Idle/trickling client (or poll error): drop it, never wedge.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    char buf[2048];
    ssize_t got;
    do {
      got = ::recv(client, buf, sizeof(buf), 0);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) {
      // Peer closed (or hard error) before finishing the request line.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    request.append(buf, static_cast<std::size_t>(got));
  }

  // Request line: METHOD SP target SP version.  Only GET is routed.
  std::string target;
  if (!oversized) {
    const std::size_t sp1 = request.find(' ');
    const std::size_t sp2 = sp1 != std::string::npos ? request.find(' ', sp1 + 1)
                                                     : std::string::npos;
    if (sp2 != std::string::npos && request.compare(0, 4, "GET ") == 0) {
      target = request.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }

  std::ostringstream body;
  const char* status = "200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  if (oversized) {
    status = "413 Content Too Large";
    content_type = "text/plain; charset=utf-8";
    body << "413: request exceeds " << kMaxRequestBytes << " bytes\n";
  } else if (target == "/metrics") {
    write_prometheus_page(body);
  } else if (target == "/snapshot") {
    write_snapshot_json(body);
    content_type = "application/json";
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body << "404: routes are GET /metrics and GET /snapshot\n";
  }

  const std::string payload = body.str();
  std::ostringstream head;
  head << "HTTP/1.0 " << status << "\r\nContent-Type: " << content_type
       << "\r\nContent-Length: " << payload.size() << "\r\nConnection: close\r\n\r\n";
  const std::string response = head.str() + payload;
  std::size_t sent = 0;
  while (sent < response.size()) {
    if (poll_retry(client, POLLOUT, timeout_ms) <= 0) {
      // Client stopped reading: drop the rest of the response.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ssize_t n;
    do {
      // MSG_NOSIGNAL: a client hanging up mid-response must surface as
      // EPIPE here, not SIGPIPE the whole process.
      n = ::send(client, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace reco::obs
