#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace reco::lp {

namespace {
constexpr double kEps = 1e-9;

/// Dense tableau simplex state.  Columns: structural vars, then slack /
/// surplus vars, then artificials; final column is the RHS.  Row `m` is the
/// phase-2 cost row, row `m+1` (during phase 1) the phase-1 cost row.
struct Tableau {
  int m = 0;            // constraint rows
  int cols = 0;         // total variable columns (excl. rhs)
  int rhs = 0;          // rhs column index
  std::vector<double> t;  // (m + 2) x (cols + 1), row-major
  std::vector<int> basis;  // basis[r] = column basic in row r

  double& at(int r, int c) { return t[static_cast<std::size_t>(r) * (cols + 1) + c]; }
  double at(int r, int c) const { return t[static_cast<std::size_t>(r) * (cols + 1) + c]; }

  void pivot(int pr, int pc) {
    const double p = at(pr, pc);
    const double inv = 1.0 / p;
    for (int c = 0; c <= cols; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (int r = 0; r < m + 2; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (std::abs(f) < kEps) {
        at(r, pc) = 0.0;
        continue;
      }
      for (int c = 0; c <= cols; ++c) at(r, c) -= f * at(pr, c);
      at(r, pc) = 0.0;
    }
    basis[pr] = pc;
  }
};

/// One simplex phase on cost row `cost_row`; columns in [0, usable_cols).
SolveStatus run_phase(Tableau& tb, int cost_row, int usable_cols, long& iters_left) {
  while (true) {
    if (iters_left-- <= 0) return SolveStatus::kIterLimit;
    const bool bland = iters_left < 0;  // unreachable guard; Bland below

    // Pricing: Dantzig (most negative reduced cost); Bland's rule kicks in
    // via the caller's iteration budget being generous enough that cycling
    // is broken by the eps-perturbed ratio test in practice.
    (void)bland;
    int pc = -1;
    double best = -kEps;
    for (int c = 0; c < usable_cols; ++c) {
      const double rc = tb.at(cost_row, c);
      if (rc < best) {
        best = rc;
        pc = c;
      }
    }
    if (pc == -1) return SolveStatus::kOptimal;

    // Ratio test with Bland tie-breaking on the basis column index.
    int pr = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < tb.m; ++r) {
      const double a = tb.at(r, pc);
      if (a <= kEps) continue;
      const double ratio = tb.at(r, tb.rhs) / a;
      if (ratio < best_ratio - kEps ||
          (ratio < best_ratio + kEps && (pr == -1 || tb.basis[r] < tb.basis[pr]))) {
        best_ratio = ratio;
        pr = r;
      }
    }
    if (pr == -1) return SolveStatus::kUnbounded;
    tb.pivot(pr, pc);
  }
}

}  // namespace

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterLimit: return "iteration-limit";
  }
  return "?";
}

int Model::add_var(double cost) {
  objective.push_back(cost);
  return num_vars++;
}

Solution solve(const Model& model, long max_iters) {
  const int n = model.num_vars;
  const int m = static_cast<int>(model.constraints.size());
  if (static_cast<int>(model.objective.size()) != n) {
    throw std::invalid_argument("lp::solve: objective size mismatch");
  }

  // Count auxiliary columns.  A row with negative rhs is negated first so
  // every rhs is non-negative and artificials start feasible.
  int n_slack = 0;
  int n_art = 0;
  for (const Constraint& c : model.constraints) {
    const bool flip = c.rhs < 0.0;
    Sense s = c.sense;
    if (flip && s != Sense::kEq) s = (s == Sense::kLe) ? Sense::kGe : Sense::kLe;
    if (s != Sense::kEq) ++n_slack;
    if (s != Sense::kLe) ++n_art;  // >= and == need an artificial
  }

  Tableau tb;
  tb.m = m;
  tb.cols = n + n_slack + n_art;
  tb.rhs = tb.cols;
  tb.t.assign(static_cast<std::size_t>(m + 2) * (tb.cols + 1), 0.0);
  tb.basis.assign(m, -1);

  int next_slack = n;
  int next_art = n + n_slack;
  for (int r = 0; r < m; ++r) {
    const Constraint& c = model.constraints[r];
    const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
    Sense s = c.sense;
    if (sign < 0 && s != Sense::kEq) s = (s == Sense::kLe) ? Sense::kGe : Sense::kLe;
    for (const auto& [v, coeff] : c.terms) {
      if (v < 0 || v >= n) throw std::invalid_argument("lp::solve: bad var index");
      tb.at(r, v) += sign * coeff;
    }
    tb.at(r, tb.rhs) = sign * c.rhs;
    if (s == Sense::kLe) {
      tb.at(r, next_slack) = 1.0;
      tb.basis[r] = next_slack++;
    } else if (s == Sense::kGe) {
      tb.at(r, next_slack++) = -1.0;
      tb.at(r, next_art) = 1.0;
      tb.basis[r] = next_art++;
    } else {
      tb.at(r, next_art) = 1.0;
      tb.basis[r] = next_art++;
    }
  }

  // Phase-2 cost row (row m): reduced later by basic columns.
  for (int v = 0; v < n; ++v) tb.at(m, v) = model.objective[v];
  // Phase-1 cost row (row m+1): sum of artificials.
  for (int a = n + n_slack; a < tb.cols; ++a) tb.at(m + 1, a) = 1.0;

  // Make both cost rows consistent with the initial basis.
  for (int r = 0; r < m; ++r) {
    const int b = tb.basis[r];
    for (int row : {m, m + 1}) {
      const double f = tb.at(row, b);
      if (std::abs(f) < kEps) continue;
      for (int c = 0; c <= tb.cols; ++c) tb.at(row, c) -= f * tb.at(r, c);
    }
  }

  long iters = max_iters > 0
                   ? max_iters
                   : 200L + 20L * static_cast<long>(m + tb.cols);

  Solution sol;
  if (n_art > 0) {
    const SolveStatus ph1 = run_phase(tb, m + 1, tb.cols, iters);
    if (ph1 == SolveStatus::kIterLimit) {
      sol.status = ph1;
      return sol;
    }
    if (ph1 == SolveStatus::kUnbounded || tb.at(m + 1, tb.rhs) < -1e-6) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }
    // Drive any artificial still basic (at value 0) out of the basis.
    for (int r = 0; r < m; ++r) {
      if (tb.basis[r] < n + n_slack) continue;
      int pc = -1;
      for (int c = 0; c < n + n_slack; ++c) {
        if (std::abs(tb.at(r, c)) > 1e-7) {
          pc = c;
          break;
        }
      }
      if (pc != -1) tb.pivot(r, pc);
      // else: redundant row; its artificial stays basic at zero, harmless.
    }
  }

  const SolveStatus ph2 = run_phase(tb, m, n + n_slack, iters);
  sol.status = ph2;
  if (ph2 != SolveStatus::kOptimal) return sol;

  sol.x.assign(n, 0.0);
  for (int r = 0; r < m; ++r) {
    if (tb.basis[r] < n) sol.x[tb.basis[r]] = tb.at(r, tb.rhs);
  }
  sol.objective = 0.0;
  for (int v = 0; v < n; ++v) sol.objective += model.objective[v] * sol.x[v];
  return sol;
}

}  // namespace reco::lp
