// Interval-indexed LP relaxation for multi-coflow ordering, after
// Qiu-Stein-Zhong (SPAA'15) — the core of the LP-II-GB baseline (Sec. V-B).
//
// Geometric time intervals tau_0 < tau_1 < ... < tau_T; variable x_{k,t}
// is the fraction of coflow k that completes within interval t:
//   min  sum_k w_k * sum_t tau_{t-1} x_{k,t}
//   s.t. sum_t x_{k,t} = 1                       for every coflow k
//        sum_k L_p(k) * sum_{s<=t} x_{k,s} <= tau_t   for every port p, t
//        x_{k,t} = 0 whenever tau_t < rho_k     (can't beat own bottleneck)
// The fractional completion estimate C_k = sum_t tau_t x_{k,t} induces the
// scheduling order.
#pragma once

#include <vector>

#include "core/coflow.hpp"
#include "lp/simplex.hpp"

namespace reco::lp {

struct IntervalLpOptions {
  double geometric_ratio = 2.0;  ///< tau_{t+1} / tau_t
  long max_iters = 0;            ///< 0 = size-based default
  /// Refuse to build instances beyond this many x_{k,t} variables (the
  /// dense simplex would be impractically slow); the caller is expected to
  /// fall back to a combinatorial ordering.  Returns kIterLimit status.
  int max_variables = 6000;
};

struct IntervalLpResult {
  SolveStatus status = SolveStatus::kIterLimit;
  /// Fractional completion-time estimate per coflow (same indexing as the
  /// input vector).  Only meaningful when status == kOptimal.
  std::vector<double> est_completion;
  /// Interval right endpoints tau_1..tau_T actually used.
  std::vector<double> interval_ends;
};

/// Build and solve the relaxation for the given coflows.
IntervalLpResult solve_interval_indexed_lp(const std::vector<Coflow>& coflows,
                                           const IntervalLpOptions& options = {});

}  // namespace reco::lp
