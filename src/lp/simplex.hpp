// Dense two-phase primal simplex for small/medium linear programs.
//
// The paper's evaluation embeds GUROBI to solve the interval-indexed LP of
// LP-II-GB (Qiu-Stein-Zhong).  This repo has no external solver, so we
// build one: a textbook two-phase tableau simplex with Dantzig pricing and
// a Bland's-rule fallback for anti-cycling.  Exact for the instance sizes
// the benches use (thousands of variables/constraints); see DESIGN.md for
// the scaling notes.
#pragma once

#include <string>
#include <vector>

namespace reco::lp {

enum class Sense { kLe, kGe, kEq };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

std::string to_string(SolveStatus s);

/// A sparse constraint row: sum(coeff_i * x_{var_i}) <sense> rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// minimize c.x subject to constraints, x >= 0.
struct Model {
  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars, minimized
  std::vector<Constraint> constraints;

  /// Create a variable with the given objective coefficient; returns index.
  int add_var(double cost);
  void add_constraint(Constraint c) { constraints.push_back(std::move(c)); }
};

struct Solution {
  SolveStatus status = SolveStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solve the model; `max_iters <= 0` picks a size-based default.
Solution solve(const Model& model, long max_iters = 0);

}  // namespace reco::lp
