#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace reco::lp {

namespace {
/// Per-port loads of one coflow: ingress p -> row sum, egress p -> col sum.
/// Ports are numbered 0..n-1 (ingress) and n..2n-1 (egress).
std::vector<double> port_loads(const Coflow& c) {
  const int n = c.demand.n();
  std::vector<double> load(2 * n, 0.0);
  for (int i = 0; i < n; ++i) load[i] = c.demand.row_sum(i);
  for (int j = 0; j < n; ++j) load[n + j] = c.demand.col_sum(j);
  return load;
}
}  // namespace

IntervalLpResult solve_interval_indexed_lp(const std::vector<Coflow>& coflows,
                                           const IntervalLpOptions& options) {
  IntervalLpResult out;
  const int num_coflows = static_cast<int>(coflows.size());
  if (num_coflows == 0) {
    out.status = SolveStatus::kOptimal;
    return out;
  }
  const int n = coflows.front().demand.n();
  const int num_ports = 2 * n;

  std::vector<std::vector<double>> load(num_coflows);
  std::vector<double> rho(num_coflows, 0.0);
  std::vector<double> port_total(num_ports, 0.0);
  double min_rho = std::numeric_limits<double>::infinity();
  double max_port_load = 0.0;
  for (int k = 0; k < num_coflows; ++k) {
    load[k] = port_loads(coflows[k]);
    rho[k] = coflows[k].demand.rho();
    if (rho[k] > 0.0) min_rho = std::min(min_rho, rho[k]);
    for (int p = 0; p < num_ports; ++p) port_total[p] += load[k][p];
  }
  for (double t : port_total) max_port_load = std::max(max_port_load, t);
  if (!std::isfinite(min_rho) || max_port_load <= 0.0) {
    out.status = SolveStatus::kOptimal;
    out.est_completion.assign(num_coflows, 0.0);
    return out;
  }

  // Geometric grid covering [min_rho, max_port_load].
  const double r = options.geometric_ratio;
  std::vector<double> tau;  // tau[t] = right end of interval t (0-based)
  for (double end = min_rho; ; end *= r) {
    tau.push_back(end);
    if (end >= max_port_load) break;
  }
  const int num_t = static_cast<int>(tau.size());
  out.interval_ends = tau;

  // Size guard: dense simplex scales to a few thousand variables; beyond
  // that, report failure so the caller can fall back (see lp_order).
  if (static_cast<long>(num_coflows) * num_t > options.max_variables) {
    out.status = SolveStatus::kIterLimit;
    return out;
  }

  // Variables: x[k][t] only where tau_t >= rho_k.
  Model model;
  std::vector<std::vector<int>> var(num_coflows, std::vector<int>(num_t, -1));
  for (int k = 0; k < num_coflows; ++k) {
    for (int t = 0; t < num_t; ++t) {
      if (tau[t] + 1e-12 < rho[k]) continue;
      const double left_end = t == 0 ? tau[0] / r : tau[t - 1];
      var[k][t] = model.add_var(coflows[k].weight * left_end);
    }
  }

  // Completion: each coflow finishes somewhere.
  for (int k = 0; k < num_coflows; ++k) {
    Constraint c;
    c.sense = Sense::kEq;
    c.rhs = 1.0;
    for (int t = 0; t < num_t; ++t) {
      if (var[k][t] != -1) c.terms.emplace_back(var[k][t], 1.0);
    }
    model.add_constraint(std::move(c));
  }

  // Port capacity prefixes; constraints that can never bind are dropped.
  for (int p = 0; p < num_ports; ++p) {
    if (port_total[p] <= 0.0) continue;
    for (int t = 0; t < num_t; ++t) {
      if (port_total[p] <= tau[t] + 1e-12) break;  // slack even if all done
      Constraint c;
      c.sense = Sense::kLe;
      c.rhs = tau[t];
      for (int k = 0; k < num_coflows; ++k) {
        if (load[k][p] <= 0.0) continue;
        for (int s = 0; s <= t; ++s) {
          if (var[k][s] != -1) c.terms.emplace_back(var[k][s], load[k][p]);
        }
      }
      if (!c.terms.empty()) model.add_constraint(std::move(c));
    }
  }

  const Solution sol = solve(model, options.max_iters);
  out.status = sol.status;
  if (sol.status != SolveStatus::kOptimal) return out;

  out.est_completion.assign(num_coflows, 0.0);
  for (int k = 0; k < num_coflows; ++k) {
    for (int t = 0; t < num_t; ++t) {
      if (var[k][t] != -1) out.est_completion[k] += tau[t] * sol.x[var[k][t]];
    }
  }
  return out;
}

}  // namespace reco::lp
