// reco_campaign: Monte-Carlo reliability campaigns from the command line
// (docs/RELIABILITY.md).
//
//   reco_campaign [--policies=replan,wait,hybrid] [--mtbf=LIST] [--mttr=LIST]
//                 [--reps=N] [--seed=N] [--ports=P] [--coflows=N]
//                 [--delta=SEC] [--c=C] [--hybrid-deadline=SEC]
//                 [--setup-timeout=P] [--crosspoint=P] [--threads=N]
//                 [--resamples=B] [--confidence=F]
//                 [--json=FILE] [--csv=FILE] [--cells-csv=FILE]
//                 [--checkpoint=FILE] [--checkpoint-every=REPS] [--resume]
//                 [--stop-after=REPS] [--flight-prefix=PREFIX]
//                 [--metrics-out=FILE]
//
// The campaign sweeps every listed recovery policy over the cartesian
// MTBF x MTTR grid, running --reps paired replications per cell on the
// thread pool, and prints per-cell availability aggregates (mean and
// p50/p99 with bootstrap confidence intervals).  Replications are pure
// functions of (config, index): the report — including the aggregate
// digest — is byte-identical across --threads values and checkpoint/
// resume.  --checkpoint-every=K saves the checkpoint atomically every K
// completed replications; --stop-after=K exits with status 3 once at
// least K replications have completed (the kill point for the CI
// kill-and-resume test); --resume continues a saved campaign (the config
// flags must match — the checkpoint carries a fingerprint and refuses
// foreign configs).  --flight-prefix replays each anomalous replication
// (demand stranded at termination) with the flight recorder armed and
// dumps "<prefix>rep<index>.jsonl".
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace reco;

struct Args {
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      a.options[arg.substr(2)] = "1";
    } else {
      a.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return a;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<double> split_doubles(const std::string& s) {
  std::vector<double> out;
  for (const std::string& item : split_list(s)) out.push_back(std::atof(item.c_str()));
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: reco_campaign [--policies=replan,wait,hybrid] [--mtbf=LIST] [--mttr=LIST]\n"
      "                     [--reps=N] [--seed=N] [--ports=P] [--coflows=N]\n"
      "                     [--delta=SEC] [--c=C] [--hybrid-deadline=SEC]\n"
      "                     [--setup-timeout=P] [--crosspoint=P] [--threads=N]\n"
      "                     [--resamples=B] [--confidence=F]\n"
      "                     [--json=FILE] [--csv=FILE] [--cells-csv=FILE]\n"
      "                     [--checkpoint=FILE] [--checkpoint-every=REPS] [--resume]\n"
      "                     [--stop-after=REPS] [--flight-prefix=PREFIX]\n"
      "                     [--metrics-out=FILE]\n");
  return 2;
}

void save_checkpoint_atomic(const campaign::CampaignRunner& runner, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp);
    runner.save_checkpoint(out);
    out.flush();
    if (!out) throw std::runtime_error("write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename failed for " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.has("help")) return usage();
  if (args.has("threads")) {
    runtime::set_thread_count(static_cast<int>(args.get_double("threads", 0)));
  }
  obs::init_from_env();
  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) obs::set_enabled(true);

  campaign::CampaignConfig config;
  config.ports = static_cast<int>(args.get_double("ports", 24));
  config.coflows = static_cast<int>(args.get_double("coflows", 8));
  config.delta = args.get_double("delta", 100e-6);
  config.c_threshold = args.get_double("c", 4.0);
  config.seed = static_cast<std::uint64_t>(args.get_double("seed", 1));
  config.replications = static_cast<int>(args.get_double("reps", 64));
  config.hybrid_deadline = args.get_double("hybrid-deadline", 0.02);
  config.setup_timeout_probability = args.get_double("setup-timeout", 0.0);
  config.crosspoint_failure_probability = args.get_double("crosspoint", 0.0);
  config.bootstrap.resamples = static_cast<int>(args.get_double("resamples", 1000));
  config.bootstrap.confidence = args.get_double("confidence", 0.95);
  config.flight_prefix = args.get("flight-prefix", "");

  try {
    for (const std::string& name : split_list(args.get("policies", "replan,wait,hybrid"))) {
      config.policies.push_back(campaign::parse_policy(name));
    }
    const std::vector<double> mtbf = split_doubles(args.get("mtbf", "0.05"));
    const std::vector<double> mttr = split_doubles(args.get("mttr", "0.01"));
    for (const double b : mtbf) {
      for (const double r : mttr) config.grid.push_back({b, r});
    }

    campaign::CampaignRunner runner(config);
    const std::string checkpoint_path = args.get("checkpoint", "");
    const auto checkpoint_every =
        static_cast<std::size_t>(args.get_double("checkpoint-every", 0.0));
    const auto stop_after = static_cast<std::size_t>(args.get_double("stop-after", 0.0));

    if (args.has("resume")) {
      if (checkpoint_path.empty()) {
        std::fprintf(stderr, "--resume requires --checkpoint=FILE\n");
        return usage();
      }
      std::ifstream in(checkpoint_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open checkpoint %s\n", checkpoint_path.c_str());
        return 1;
      }
      runner.load_checkpoint(in);
      std::printf("resumed campaign from %s: %zu/%zu replications done\n",
                  checkpoint_path.c_str(), runner.completed(), runner.total());
    }

    // Wave size: checkpoint cadence if set, else everything that is left.
    // --stop-after caps the target; reaching it mid-campaign exits 3.
    const std::size_t target =
        stop_after > 0 ? std::min(runner.total(), stop_after) : runner.total();
    while (runner.completed() < target) {
      std::size_t wave = target - runner.completed();
      if (checkpoint_every > 0) wave = std::min(wave, checkpoint_every);
      runner.run(wave);
      if (!checkpoint_path.empty()) save_checkpoint_atomic(runner, checkpoint_path);
    }

    const campaign::CampaignReport report = runner.report();
    std::printf("campaign: %llu/%llu replications, %llu anomalies, digest %016llx\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.total),
                static_cast<unsigned long long>(report.anomalies),
                static_cast<unsigned long long>(report.digest));
    for (const campaign::CellSummary& cell : report.cells) {
      std::printf(
          "  %-6s mtbf=%-8g mttr=%-8g n=%llu  stranded mean=%g [%g, %g]  "
          "degraded p99=%g  delivered mean=%g  replans=%g  anomalies=%llu\n",
          campaign::policy_name(cell.policy), cell.fault.mtbf, cell.fault.mttr,
          static_cast<unsigned long long>(cell.completed), cell.stranded.mean,
          cell.stranded.mean_lo, cell.stranded.mean_hi, cell.degraded_time.p99,
          cell.delivered_fraction.mean, cell.replans_mean,
          static_cast<unsigned long long>(cell.anomalies));
    }

    const std::string json_path = args.get("json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) throw std::runtime_error("cannot open " + json_path);
      campaign::write_report_json(report, out);
      std::printf("wrote report to %s\n", json_path.c_str());
    }
    const std::string csv_path = args.get("csv", "");
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) throw std::runtime_error("cannot open " + csv_path);
      campaign::write_replications_csv(report, out);
      std::printf("wrote %llu replication rows to %s\n",
                  static_cast<unsigned long long>(report.completed), csv_path.c_str());
    }
    const std::string cells_path = args.get("cells-csv", "");
    if (!cells_path.empty()) {
      std::ofstream out(cells_path);
      if (!out) throw std::runtime_error("cannot open " + cells_path);
      campaign::write_cells_csv(report, out);
      std::printf("wrote %zu cell rows to %s\n", report.cells.size(), cells_path.c_str());
    }
    if (!metrics_out.empty()) {
      obs::save_metrics_csv(metrics_out);
      std::printf("wrote metrics to %s\n", metrics_out.c_str());
    }

    if (!runner.finished()) {
      std::printf("stopped after %zu/%zu replications (checkpoint %s)\n", runner.completed(),
                  runner.total(),
                  checkpoint_path.empty() ? "not saved" : checkpoint_path.c_str());
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
