// reco_sim_cli: drive any scheduler in the library against a trace file
// from the command line — the "operator console" for the simulator.
//
//   reco_sim_cli single <trace> [--coflow=K] [--algo=reco-sin|solstice|bvn|tms|sunflow]
//                       [--delta=SEC] [--model=all-stop|not-all-stop] [--gantt]
//   reco_sim_cli multi  <trace> [--algo=reco-mul|lp-ii-gb|sebf-solstice]
//                       [--delta=SEC] [--c=C] [--csv=FILE]
//   reco_sim_cli online <trace> [--policy=epoch|replan|fifo] [--delta=SEC] [--c=C]
//
// Every mode accepts --threads=N to size the parallel scheduling runtime
// (default: RECO_THREADS env var, else all hardware threads; 1 forces the
// sequential path).  Output is bit-identical at every thread count.
//
// Traces come from `trace_tool gen` (reco-trace format) or, with --fb, any
// file in the public Coflow-Benchmark format (the paper's FB2010 trace).
//
// Fault injection (single mode): --jitter=F / --retries=P (legacy timing
// faults), --fault-trace=FILE (scripted port failures, see
// sim/faults.hpp), --port-mtbf=S / --port-mttr=S (random port failures),
// --setup-timeout=P / --setup-attempts=N (bounded reconfiguration
// retries), --crosspoint-fail=P (partial setups), --fault-seed=N.  Any of
// these runs the schedule under a RecoveringController on the
// event-driven fabric and prints the degraded-operation accounting
// (delivered / stranded demand, setup failures, recoveries).
//
// Telemetry: --trace-out=FILE writes a Chrome trace-event JSON (load in
// Perfetto / chrome://tracing) and --metrics-out=FILE a metrics CSV;
// either flag (or RECO_TRACE=1) turns collection on.  See
// docs/OBSERVABILITY.md.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/lower_bound.hpp"
#include "obs/obs.hpp"
#include "ocs/all_stop_executor.hpp"
#include "runtime/thread_pool.hpp"
#include "ocs/not_all_stop_executor.hpp"
#include "sched/bvn_baseline.hpp"
#include "sched/multi_baselines.hpp"
#include "sched/online.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "sched/sunflow.hpp"
#include "sched/tms.hpp"
#include "stats/analysis.hpp"
#include "stats/csv.hpp"
#include "stats/summary.hpp"
#include "sim/fabric.hpp"
#include "trace/fb_format.hpp"
#include "trace/serialization.hpp"

namespace {

using namespace reco;

struct Args {
  std::string command;
  std::string trace_path;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  if (argc >= 3 && argv[2][0] != '-') a.trace_path = argv[2];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      a.options[arg.substr(2)] = "1";
    } else {
      a.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return a;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  reco_sim_cli single <trace> [--coflow=K] [--algo=A] [--delta=S]\n"
               "               [--model=all-stop|not-all-stop] [--gantt]\n"
               "               [--jitter=F] [--retries=P] [--fault-trace=FILE]\n"
               "               [--port-mtbf=S] [--port-mttr=S] [--setup-timeout=P]\n"
               "               [--setup-attempts=N] [--crosspoint-fail=P] [--fault-seed=N]\n"
               "  reco_sim_cli multi  <trace> [--algo=A] [--delta=S] [--c=C] [--csv=F]\n"
               "  reco_sim_cli online <trace> [--policy=epoch|fifo] [--delta=S] [--c=C]\n"
               "  (all modes: --threads=N sizes the parallel runtime; 1 = sequential;\n"
               "   --trace-out=F writes Perfetto-loadable trace JSON, --metrics-out=F\n"
               "   a metrics CSV; either flag or RECO_TRACE=1 enables telemetry)\n");
  return 2;
}

int run_single(const Args& args, const std::vector<Coflow>& coflows) {
  const int k = static_cast<int>(args.get_double("coflow", 0));
  if (k < 0 || k >= static_cast<int>(coflows.size())) {
    std::fprintf(stderr, "coflow index %d out of range (0..%zu)\n", k, coflows.size() - 1);
    return 1;
  }
  const Matrix& d = coflows[k].demand;
  const Time delta = args.get_double("delta", 100e-6);
  const std::string algo = args.get("algo", "reco-sin");
  const std::string model = args.get("model", "all-stop");

  std::printf("coflow %d: %dx%d fabric, %d flows, rho=%g s, tau=%d, LB=%g s\n", k, d.n(), d.n(),
              d.nnz(), d.rho(), d.tau(), single_coflow_lower_bound(d, delta));

  if (algo == "sunflow") {
    const SunflowResult r = sunflow(d, delta);
    std::printf("sunflow (not-all-stop native): CCT=%g s, %d circuits\n", r.cct,
                r.reconfigurations);
    return 0;
  }

  CircuitSchedule schedule;
  if (algo == "reco-sin") {
    schedule = reco_sin(d, delta);
  } else if (algo == "solstice") {
    schedule = solstice(d);
  } else if (algo == "bvn") {
    schedule = bvn_baseline(d);
  } else if (algo == "tms") {
    schedule = tms_schedule(d, delta);
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", algo.c_str());
    return 2;
  }

  const bool timing_faults = args.has("jitter") || args.has("retries") ||
                             args.has("setup-timeout") || args.has("setup-attempts");
  const bool port_faults = args.has("fault-trace") || args.has("port-mtbf") ||
                           args.has("crosspoint-fail");
  ExecutionResult r;
  if (timing_faults || port_faults) {
    sim::FaultConfig config;
    config.timing.jitter_fraction = args.get_double("jitter", 0.0);
    config.timing.retry_probability = args.get_double("retries", 0.0);
    config.timing.max_attempts = static_cast<int>(args.get_double("setup-attempts", 64));
    if (args.has("fault-trace")) {
      config.port_faults = sim::load_fault_trace(args.get("fault-trace", ""));
    }
    config.port_mtbf = args.get_double("port-mtbf", 0.0);
    config.port_mttr = args.get_double("port-mttr", 0.0);
    config.setup_timeout_probability = args.get_double("setup-timeout", 0.0);
    config.crosspoint_failure_probability = args.get_double("crosspoint-fail", 0.0);
    config.seed = static_cast<std::uint64_t>(args.get_double("fault-seed", 1));
    sim::FaultInjector injector(config);
    std::printf("fault injection: seed %llu, jitter %.0f%%, retry %.0f%%, timeout %.0f%%, "
                "crosspoint %.0f%%, mtbf %g s, mttr %g s, %zu scripted faults "
                "(event-driven all-stop fabric; --model ignored)\n",
                static_cast<unsigned long long>(config.seed),
                100 * config.timing.jitter_fraction, 100 * config.timing.retry_probability,
                100 * config.setup_timeout_probability,
                100 * config.crosspoint_failure_probability, config.port_mtbf,
                config.port_mttr, config.port_faults.size());
    sim::RecoveringController controller(schedule, delta);
    const sim::SimulationReport rep = sim::simulate_single_coflow(controller, d, delta, injector);
    r.cct = rep.cct;
    r.transmission_time = rep.transmission_time;
    r.reconfigurations = rep.reconfigurations;
    r.satisfied = rep.satisfied;
    r.residual = Matrix(d.n());
    std::printf("faults: delivered %g s, stranded %g s, setups failed=%d partial=%d, "
                "ports failed=%d repaired=%d, recoveries=%d, replans=%d, degraded %g s\n",
                rep.delivered_demand, rep.stranded_demand, rep.setup_failures,
                rep.partial_setups, rep.port_failures, rep.port_repairs, rep.recoveries,
                controller.replans(), rep.degraded_time);
  } else {
    r = model == "not-all-stop" ? execute_not_all_stop(schedule, d, delta)
                                : execute_all_stop(schedule, d, delta);
  }
  std::printf("%s on %s OCS: CCT=%g s (transmit %g + %d reconfigs x %g)%s\n", algo.c_str(),
              model.c_str(), r.cct, r.transmission_time, r.reconfigurations, delta,
              r.satisfied ? "" : "  [DEMAND NOT SATISFIED]");

  const TimeBreakdown b = analyze_time_breakdown(schedule, d, delta);
  std::printf("stranded port time: %g port-seconds\n", b.stranded_port_time);

  if (args.has("gantt")) {
    SliceSchedule slices;
    execute_all_stop(schedule, d, delta, 0.0, k, &slices);
    std::printf("\n%s", render_gantt(slices, d.n()).c_str());
  }
  return r.satisfied ? 0 : 1;
}

int run_multi(const Args& args, const std::vector<Coflow>& coflows) {
  const Time delta = args.get_double("delta", 100e-6);
  const double c = args.get_double("c", 4.0);
  const std::string algo = args.get("algo", "reco-mul");

  MultiScheduleResult r;
  if (algo == "reco-mul") {
    r = reco_mul_pipeline(coflows, delta, c);
  } else if (algo == "lp-ii-gb") {
    r = lp_ii_gb(coflows, delta);
  } else if (algo == "sebf-solstice") {
    r = sebf_solstice(coflows, delta);
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", algo.c_str());
    return 2;
  }

  std::vector<double> cct(r.cct.begin(), r.cct.end());
  std::printf("%s: %zu coflows, sum w*CCT=%g, avg CCT=%g s, p95=%g s, %d reconfigs\n",
              algo.c_str(), coflows.size(), r.total_weighted_cct, mean(cct),
              percentile(cct, 95), r.reconfigurations);

  if (obs::enabled()) {
    // Per-coflow service window (first slice start -> completion) on the
    // simulated-time timeline, one Perfetto track per coflow.
    std::vector<Time> first_start(coflows.size(), -1.0);
    std::vector<Time> last_end(coflows.size(), 0.0);
    for (const FlowSlice& s : r.schedule) {
      if (s.coflow < 0 || s.coflow >= static_cast<int>(coflows.size())) continue;
      if (first_start[s.coflow] < 0.0 || s.start < first_start[s.coflow]) {
        first_start[s.coflow] = s.start;
      }
      last_end[s.coflow] = std::max(last_end[s.coflow], s.end);
    }
    for (std::size_t k = 0; k < coflows.size(); ++k) {
      if (first_start[k] < 0.0) continue;
      obs::tracer().name_sim_track(static_cast<int>(k), "coflow " + std::to_string(k));
      obs::tracer().sim_span("coflow " + std::to_string(k), "sim.coflow", first_start[k],
                             last_end[k], static_cast<int>(k), {{"cct", r.cct[k]}});
    }
  }

  if (args.has("csv")) {
    std::ofstream out(args.get("csv", ""));
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.get("csv", "").c_str());
      return 1;
    }
    write_slices_csv(out, r.schedule);
    std::printf("wrote %zu slices to %s\n", r.schedule.size(), args.get("csv", "").c_str());
  }
  return 0;
}

int run_online(const Args& args, const std::vector<Coflow>& coflows) {
  OnlineOptions o;
  o.delta = args.get_double("delta", 100e-6);
  o.c_threshold = args.get_double("c", 4.0);
  const std::string policy_name = args.get("policy", "epoch");
  const OnlinePolicyKind policy = policy_name == "fifo"     ? OnlinePolicyKind::kFifoRecoSin
                              : policy_name == "replan" ? OnlinePolicyKind::kDrainReplanRecoMul
                                                        : OnlinePolicyKind::kEpochRecoMul;
  const OnlineScheduleResult r = schedule_online(coflows, policy, o);
  std::vector<double> cct(r.cct.begin(), r.cct.end());
  std::printf("online/%s: sum w*CCT=%g, avg CCT=%g s, %d reconfigs, %d epochs\n",
              policy_name.c_str(), r.total_weighted_cct, mean(cct), r.reconfigurations,
              r.epochs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.command.empty() || args.trace_path.empty()) return usage();
  if (args.has("threads")) {
    reco::runtime::set_thread_count(static_cast<int>(args.get_double("threads", 0)));
  }
  reco::obs::init_from_env();
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  if (!trace_out.empty() || !metrics_out.empty()) reco::obs::set_enabled(true);
  try {
    int ports = 0;
    const std::vector<Coflow> coflows =
        args.has("fb") ? load_fb_trace(args.trace_path, ports) : load_trace(args.trace_path, ports);
    if (coflows.empty()) {
      std::fprintf(stderr, "empty trace\n");
      return 1;
    }
    int rc;
    if (args.command == "single") {
      rc = run_single(args, coflows);
    } else if (args.command == "multi") {
      rc = run_multi(args, coflows);
    } else if (args.command == "online") {
      rc = run_online(args, coflows);
    } else {
      return usage();
    }
    if (!trace_out.empty()) {
      reco::obs::save_trace_json(trace_out);
      std::printf("wrote %zu trace events to %s (%llu dropped)\n", reco::obs::tracer().size(),
                  trace_out.c_str(),
                  static_cast<unsigned long long>(reco::obs::tracer().dropped()));
    }
    if (!metrics_out.empty()) {
      reco::obs::save_metrics_csv(metrics_out);
      std::printf("wrote metrics to %s\n", metrics_out.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
