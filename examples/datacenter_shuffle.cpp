// A MapReduce shuffle scenario: many coflows compete for an OCS fabric.
// Generates a Facebook-like workload, then schedules it with Reco-Mul and
// both multi-coflow baselines, printing per-scheme weighted CCTs — the
// inter-coflow story of the paper's Sec. V-D at example scale.
//
//   $ ./datacenter_shuffle [num_coflows] [num_ports] [seed]
#include <cstdio>
#include <cstdlib>

#include "sched/multi_baselines.hpp"
#include "stats/summary.hpp"
#include "trace/generator.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace reco;

  GeneratorOptions options;
  options.num_coflows = argc > 1 ? std::atoi(argv[1]) : 60;
  options.num_ports = argc > 2 ? std::atoi(argv[2]) : 40;
  options.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  const auto coflows = generate_workload(options);
  std::printf("Generated %d coflows on a %dx%d OCS (delta = %.0f us, c = %.0f)\n\n",
              options.num_coflows, options.num_ports, options.num_ports,
              options.delta * 1e6, options.c_threshold);
  std::printf("%s\n", format_stats(compute_stats(coflows)).c_str());

  struct Row {
    const char* name;
    MultiScheduleResult result;
  };
  const Row rows[] = {
      {"Reco-Mul (BSSI order)", reco_mul_pipeline(coflows, options.delta, options.c_threshold)},
      {"LP-II-GB", lp_ii_gb(coflows, options.delta)},
      {"SEBF+Solstice", sebf_solstice(coflows, options.delta)},
  };

  const double reference = rows[0].result.total_weighted_cct;
  std::printf("%-24s %14s %14s %10s %12s\n", "scheme", "sum w*CCT", "avg CCT", "reconfigs",
              "vs Reco-Mul");
  for (const Row& row : rows) {
    std::vector<double> cct(row.result.cct.begin(), row.result.cct.end());
    std::printf("%-24s %14.4f %14.4f %10d %11.2fx\n", row.name, row.result.total_weighted_cct,
                mean(cct), row.result.reconfigurations,
                row.result.total_weighted_cct / reference);
  }
  std::printf("\nLower is better; 'vs Reco-Mul' is the paper's normalized CCT.\n");
  return 0;
}
