// Quickstart: schedule one coflow on an OCS with Reco-Sin and compare it
// against Solstice — the five-minute tour of the library.
//
//   $ ./quickstart
//
// Walks through: building a demand matrix, regularization, scheduling,
// executing on the all-stop switch model, and reading the metrics.
#include <cstdio>

#include "bvn/regularization.hpp"
#include "core/lower_bound.hpp"
#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"

int main() {
  using namespace reco;

  // The worked example from the paper's Fig. 2: a 3x3 shuffle whose entries
  // are "ragged" -- just over multiples of the reconfiguration delay.
  const Matrix demand =
      Matrix::from_rows({{104, 109, 102}, {103, 105, 107}, {108, 101, 106}});
  const Time delta = 100.0;  // reconfiguration delay, same time unit as demands

  std::printf("Demand matrix D:\n%s\n", demand.to_string().c_str());
  std::printf("rho(D) = %.0f (bottleneck port load)\n", demand.rho());
  std::printf("tau(D) = %d (circuits some port needs)\n", demand.tau());
  std::printf("lower bound = rho + tau*delta = %.0f\n\n",
              single_coflow_lower_bound(demand, delta));

  // Step 1 of Reco-Sin: regularization aligns entries to multiples of delta.
  std::printf("Regularized matrix D':\n%s\n",
              regularize(demand, delta).to_string().c_str());

  // Full Reco-Sin: regularize + stuff + max-min BvN decomposition.
  const CircuitSchedule reco = reco_sin(demand, delta);
  std::printf("Reco-Sin schedule (%d establishments):\n%s\n", reco.num_assignments(),
              reco.to_string().c_str());

  // Execute on the all-stop OCS: circuits stop as soon as their *original*
  // demand finishes, so the measured CCT beats the planned coefficients.
  const ExecutionResult reco_run = execute_all_stop(reco, demand, delta);
  std::printf("Reco-Sin:  CCT = %.0f  (transmission %.0f + %d reconfigs x %.0f)\n",
              reco_run.cct, reco_run.transmission_time, reco_run.reconfigurations, delta);

  const ExecutionResult sol_run = execute_all_stop(solstice(demand), demand, delta);
  std::printf("Solstice:  CCT = %.0f  (transmission %.0f + %d reconfigs x %.0f)\n",
              sol_run.cct, sol_run.transmission_time, sol_run.reconfigurations, delta);

  std::printf("\nReco-Sin finishes %.2fx faster here.\n", sol_run.cct / reco_run.cct);
  return 0;
}
