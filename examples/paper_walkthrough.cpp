// A guided tour of the paper's worked examples with live numbers:
//   1. Fig. 2  — regularization on demands (D_ex, delta = 100);
//   2. Fig. 3  — regularization on start times;
//   3. Theorem 1 — why plain BvN is Omega(N);
//   4. Theorem 2/3 — the bounds, certified on the spot.
//
//   $ ./paper_walkthrough
#include <cmath>
#include <cstdio>

#include "bvn/regularization.hpp"
#include "core/lower_bound.hpp"
#include "ocs/all_stop_executor.hpp"
#include "ocs/slice_executor.hpp"
#include "sched/bvn_baseline.hpp"
#include "sched/reco_mul.hpp"
#include "sched/reco_sin.hpp"
#include "stats/analysis.hpp"
#include "trace/rng.hpp"

using namespace reco;

namespace {

void fig2() {
  std::printf("== Fig. 2: regularization on traffic demands =====================\n");
  const Matrix d =
      Matrix::from_rows({{104, 109, 102}, {103, 105, 107}, {108, 101, 106}});
  const Time delta = 100.0;
  std::printf("D_ex (delta = 100):\n%s", d.to_string(6).c_str());
  std::printf("regularized -> every entry 200, so 3 establishments suffice.\n");

  const CircuitSchedule reco = reco_sin(d, delta);
  const ExecutionResult run = execute_all_stop(reco, d, delta);
  std::printf("Reco-Sin executes in %.0f (paper's regularized figure: 618; the\n"
              "permutation split differs by a few units), using %d establishments.\n",
              run.cct, run.reconfigurations);

  const ExecutionResult plain = execute_all_stop(bvn_baseline(d), d, delta);
  std::printf("Plain BvN on the same matrix: %.0f with %d establishments.\n\n", plain.cct,
              plain.reconfigurations);
}

void fig3() {
  std::printf("== Fig. 3: regularization on start times =========================\n");
  // Three conflict-free flows starting at 0.5, 0.7, 0.9; c = 4, delta = 0.5.
  const SliceSchedule packet{
      {0.5, 2.5, 0, 0, 0}, {0.7, 2.7, 1, 1, 1}, {0.9, 2.9, 2, 2, 2}};
  const RecoMulSchedule rm = reco_mul_transform(packet, 0.5, 4.0);
  std::printf("raw starts 0.5 / 0.7 / 0.9 -> %d reconfigurations\n",
              count_reconfigurations(packet));
  std::printf("after stretch x1.5 and snap to the sqrt(c)*delta = 1 grid: starts");
  for (const FlowSlice& s : rm.pseudo) std::printf(" %.1f", s.start);
  std::printf(" -> %d reconfigurations\n\n", count_reconfigurations(rm.pseudo));
}

void theorem1() {
  std::printf("== Theorem 1: the Omega(N) family =================================\n");
  Rng rng(42);
  std::printf("%4s %14s %14s %10s\n", "N", "BvN reconfigs", "Reco reconfigs", "ratio");
  for (const int n : {4, 8, 16}) {
    Matrix d(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) d.at(i, j) = rng.uniform(0.01, 0.1);
    }
    const ExecutionResult plain = execute_all_stop(bvn_baseline(d), d, 1.0);
    const ExecutionResult reco = execute_all_stop(reco_sin(d, 1.0), d, 1.0);
    std::printf("%4d %14d %14d %9.1fx\n", n, plain.reconfigurations, reco.reconfigurations,
                plain.cct / reco.cct);
  }
  std::printf("\n");
}

void theorems23() {
  std::printf("== Theorems 2 & 3: live certificates ==============================\n");
  Rng rng(7);
  double worst2 = 0.0;
  for (int t = 0; t < 50; ++t) {
    Matrix d(6);
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        if (rng.uniform() < 0.6) d.at(i, j) = rng.uniform(0.1, 4.0);
      }
    }
    if (d.nnz() == 0) continue;
    const Time delta = 0.2;
    const ExecutionResult r = execute_all_stop(reco_sin(d, delta), d, delta);
    worst2 = std::max(worst2, r.cct / single_coflow_lower_bound(d, delta));
  }
  std::printf("Theorem 2: worst CCT / (rho + tau*delta) over 50 random coflows = %.3f"
              "  (bound: 2)\n", worst2);

  const double c = 4.0;
  const double factor = (1 + 1 / std::sqrt(c)) * ((std::floor(std::sqrt(c)) + 1) /
                                                  std::floor(std::sqrt(c)));
  std::printf("Theorem 3: transform factor at c = 4 is (1+1/2)*(3/2) = %.2f — see\n"
              "bench_table3_ratios for the measured per-coflow worst case (~1.55).\n",
              factor);
}

}  // namespace

int main() {
  fig2();
  fig3();
  theorem1();
  theorems23();
  return 0;
}
