// reco_serve: the online scheduler daemon from the command line.
//
// Synthesizes a Poisson coflow arrival stream (or replays a trace file)
// and pushes it through the event-driven OnlineDaemon: arrivals and epoch
// completions flow through the sim EventQueue, a pluggable OnlinePolicy
// decides admit/re-order on the residual set, and every replan reuses the
// warm-started matching and Reco-Mul scratch — zero steady-state
// allocation once warm.
//
//   reco_serve [--coflows=N] [--ports=P] [--gap=SEC] [--seed=N]
//              [--policy=epoch|replan|fifo] [--ordering=bssi|sebf|lp]
//              [--delta=SEC] [--c=C] [--threads=N]
//              [--trace=FILE] [--fb] [--no-schedule] [--csv=FILE]
//              [--trace-out=FILE] [--metrics-out=FILE]
//              [--sample-every=SEC] [--metrics-port=N] [--hold=SEC]
//              [--prom-out=FILE] [--snapshot-out=FILE] [--flight-out=FILE]
//              [--checkpoint-out=FILE] [--checkpoint-every=SEC]
//              [--resume=FILE] [--stop-after=EVENTS]
//
// With --trace the arrival stream is the trace file's coflows (their
// arrival fields are honoured); otherwise the generator streams coflows
// one at a time — a 100k-coflow run never materializes the workload.
// --no-schedule drops the emitted slice list (the digest still witnesses
// every slice), which keeps memory flat for soak runs; --csv implies
// keeping it.  Output is bit-identical at every --threads value.
//
// Live telemetry (all off by default; any flag enables obs): --sample-every
// snapshots the registry on both timelines (a simulated-time sampler rides
// the daemon's event queue; a wall-clock thread ticks alongside),
// --metrics-port serves GET /metrics (Prometheus text) and GET /snapshot
// (JSON rings) on 127.0.0.1 (0 = ephemeral, port is printed), --hold keeps
// the process alive that many seconds after the run so scrapers can land,
// --prom-out / --snapshot-out write the same pages to files, and
// --flight-out arms the fault flight recorder, whose ring of recent events
// is dumped as JSONL on recovery replans, peel aborts, or abnormal exit.
// Telemetry is write-only: schedules and digests are byte-identical with
// every flag on or off.
//
// Checkpoint/restart (docs/RELIABILITY.md): SIGINT/SIGTERM request a
// graceful shutdown — the daemon stops at the next event boundary, writes
// a final checkpoint to --checkpoint-out (if set), dumps the armed flight
// recorder, and exits 3.  --checkpoint-every=SEC additionally saves the
// checkpoint periodically (atomic tmp+rename) during the run;
// --resume=FILE restores a saved run (identical workload flags required)
// and drives it to completion — the finished report and digest are
// byte-identical to an uninterrupted run.  --stop-after=N stops
// deterministically after N scheduling events (the testable stand-in for
// a signal).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/online_daemon.hpp"
#include "stats/csv.hpp"
#include "trace/fb_format.hpp"
#include "trace/generator.hpp"
#include "trace/serialization.hpp"

namespace {

using namespace reco;

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int /*sig*/) { g_stop = 1; }

struct Args {
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      a.options[arg.substr(2)] = "1";
    } else {
      a.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return a;
}

int usage() {
  std::fprintf(stderr,
               "usage: reco_serve [--coflows=N] [--ports=P] [--gap=SEC] [--seed=N]\n"
               "                  [--policy=epoch|replan|fifo] [--ordering=bssi|sebf|lp]\n"
               "                  [--delta=SEC] [--c=C] [--threads=N]\n"
               "                  [--trace=FILE] [--fb] [--no-schedule] [--csv=FILE]\n"
               "                  [--trace-out=FILE] [--metrics-out=FILE]\n"
               "                  [--sample-every=SEC] [--metrics-port=N] [--hold=SEC]\n"
               "                  [--prom-out=FILE] [--snapshot-out=FILE] [--flight-out=FILE]\n"
               "                  [--checkpoint-out=FILE] [--checkpoint-every=SEC]\n"
               "                  [--resume=FILE] [--stop-after=EVENTS]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.has("help")) return usage();
  if (args.has("threads")) {
    runtime::set_thread_count(static_cast<int>(args.get_double("threads", 0)));
  }
  obs::init_from_env();
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string prom_out = args.get("prom-out", "");
  const std::string snapshot_out = args.get("snapshot-out", "");
  const std::string flight_out = args.get("flight-out", "");
  const double sample_every = args.get_double("sample-every", 0.0);
  const bool serve_metrics = args.has("metrics-port");
  const double hold_s = args.get_double("hold", 0.0);
  if (!trace_out.empty() || !metrics_out.empty() || !prom_out.empty() ||
      !snapshot_out.empty() || !flight_out.empty() || sample_every > 0.0 || serve_metrics) {
    obs::set_enabled(true);
  }
  if (!flight_out.empty()) obs::flight_recorder().arm(flight_out);

  const std::string policy_name = args.get("policy", "replan");
  OnlinePolicyKind policy = OnlinePolicyKind::kDrainReplanRecoMul;
  if (policy_name == "epoch") {
    policy = OnlinePolicyKind::kEpochRecoMul;
  } else if (policy_name == "fifo") {
    policy = OnlinePolicyKind::kFifoRecoSin;
  } else if (policy_name != "replan") {
    std::fprintf(stderr, "unknown --policy=%s\n", policy_name.c_str());
    return usage();
  }

  const std::string ordering_name = args.get("ordering", "bssi");
  OrderingPolicy ordering = OrderingPolicy::kBssi;
  if (ordering_name == "sebf") {
    ordering = OrderingPolicy::kSebf;
  } else if (ordering_name == "lp") {
    ordering = OrderingPolicy::kLp;
  } else if (ordering_name != "bssi") {
    std::fprintf(stderr, "unknown --ordering=%s\n", ordering_name.c_str());
    return usage();
  }

  const std::string csv_path = args.get("csv", "");
  sim::OnlineDaemonOptions options;
  options.core.delta = args.get_double("delta", 100e-6);
  options.core.c_threshold = args.get_double("c", 4.0);
  options.core.ordering = ordering;
  options.core.record_schedule = !args.has("no-schedule") || !csv_path.empty();
  options.core.record_cct = true;
  options.sample_every = sample_every;

  const std::string checkpoint_out = args.get("checkpoint-out", "");
  const std::string resume_path = args.get("resume", "");
  options.stop_flag = &g_stop;
  options.stop_after_events = static_cast<std::uint64_t>(args.get_double("stop-after", 0.0));
  options.checkpoint_every = args.get_double("checkpoint-every", 0.0);
  options.checkpoint_path = checkpoint_out;
  // Graceful shutdown: the daemon drains to the next event boundary, the
  // exit path below writes the final checkpoint and flight dump.
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  try {
    // Live telemetry rigging, before any scheduling: the wall sampler
    // thread ticks the wall-timeline ring, the HTTP endpoint serves both
    // rings plus the registry.  Neither touches scheduling state.
    std::optional<obs::WallSampler> wall;
    if (sample_every > 0.0) wall.emplace(obs::wall_sampler(), sample_every);
    obs::MetricsHttpServer server;
    if (serve_metrics) {
      server.start(static_cast<int>(args.get_double("metrics-port", 0)));
      std::printf("serving /metrics and /snapshot on http://127.0.0.1:%d\n", server.port());
      std::fflush(stdout);
    }
    GeneratorOptions gen;
    gen.num_ports = static_cast<int>(args.get_double("ports", 32));
    gen.num_coflows = static_cast<int>(args.get_double("coflows", 1000));
    gen.seed = static_cast<std::uint64_t>(args.get_double("seed", 20190707));
    gen.mean_interarrival = args.get_double("gap", 0.01);
    gen.delta = options.core.delta;
    gen.c_threshold = options.core.c_threshold;

    sim::OnlineDaemonReport report;
    sim::OnlineDaemon daemon(policy, options);
    const auto drive = [&](sim::CoflowSource& source) {
      if (resume_path.empty()) return daemon.run(source);
      std::ifstream in(resume_path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open checkpoint " + resume_path);
      return daemon.resume(source, in);
    };
    std::size_t arrivals = 0;
    if (args.has("trace")) {
      int ports = 0;
      const std::vector<Coflow> coflows =
          args.has("fb") ? load_fb_trace(args.get("trace", ""), ports)
                         : load_trace(args.get("trace", ""), ports);
      arrivals = coflows.size();
      daemon.reserve(arrivals);
      sim::VectorSource source(coflows);
      report = drive(source);
    } else {
      arrivals = static_cast<std::size_t>(gen.num_coflows);
      daemon.reserve(arrivals);
      ArrivalStream stream(gen);
      sim::PullSource<ArrivalStream> source(stream);
      report = drive(source);
    }

    std::printf("reco_serve/%s (%s ordering): %zu arrivals, %llu finished, makespan %g s\n",
                policy_name.c_str(), ordering_name.c_str(), arrivals,
                static_cast<unsigned long long>(report.stats.finished), report.makespan);
    std::printf("  sum w*CCT=%g, %d reconfigs, %d epochs, %llu slices, %llu events\n",
                report.stats.total_weighted_cct, report.stats.reconfigurations,
                report.stats.epochs,
                static_cast<unsigned long long>(report.stats.emitted_slices),
                static_cast<unsigned long long>(report.events));
    std::printf("  decision latency: p50=%g us, p99=%g us, mean=%g us, max=%g us (%llu decisions)\n",
                report.decision_p50_us, report.decision_p99_us, report.decision_mean_us,
                report.decision_max_us, static_cast<unsigned long long>(report.decisions));
    std::printf("  memory: peak live=%llu, slot reuses=%llu, alloc events=%llu\n",
                static_cast<unsigned long long>(report.stats.peak_live),
                static_cast<unsigned long long>(report.stats.slot_reuses),
                static_cast<unsigned long long>(report.stats.alloc_events));
    std::printf("  replay digest: %016llx\n", static_cast<unsigned long long>(report.digest));
    if (obs::enabled()) {
      obs::sync_trace_dropped();
      std::printf("  trace events dropped: %llu\n",
                  static_cast<unsigned long long>(obs::tracer().dropped()));
    }

    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
        return 1;
      }
      write_slices_csv(out, daemon.core().schedule());
      std::printf("wrote %zu slices to %s\n", daemon.core().schedule().size(), csv_path.c_str());
    }
    if (!trace_out.empty()) {
      obs::save_trace_json(trace_out);
      std::printf("wrote %zu trace events to %s\n", obs::tracer().size(), trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      obs::save_metrics_csv(metrics_out);
      std::printf("wrote metrics to %s\n", metrics_out.c_str());
    }
    if (hold_s > 0.0) {
      std::printf("holding %g s for scrapers\n", hold_s);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(hold_s));
    }
    wall.reset();  // join the wall thread and close its final window
    if (!prom_out.empty()) {
      obs::save_prometheus(prom_out);
      std::printf("wrote Prometheus exposition to %s\n", prom_out.c_str());
    }
    if (!snapshot_out.empty()) {
      obs::save_snapshot_json(snapshot_out);
      std::printf("wrote time-series snapshot to %s\n", snapshot_out.c_str());
    }
    if (report.checkpoints_written > 0) {
      std::printf("  wrote %llu periodic checkpoints to %s\n",
                  static_cast<unsigned long long>(report.checkpoints_written),
                  checkpoint_out.c_str());
    }
    if (report.interrupted) {
      if (!checkpoint_out.empty()) {
        std::ofstream out(checkpoint_out, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot open checkpoint " + checkpoint_out);
        daemon.save_checkpoint(out);
        out.flush();
        if (!out) throw std::runtime_error("checkpoint write failed for " + checkpoint_out);
        std::printf("interrupted at %llu events: checkpoint written to %s\n",
                    static_cast<unsigned long long>(report.events), checkpoint_out.c_str());
      } else {
        std::printf("interrupted at %llu events (no --checkpoint-out; progress discarded)\n",
                    static_cast<unsigned long long>(report.events));
      }
      if (obs::enabled()) {
        obs::flight_recorder().record("graceful_shutdown", report.makespan,
                                      static_cast<std::int64_t>(report.events));
        obs::flight_recorder().trigger("reco_serve graceful shutdown");
      }
      return 3;
    }
    const bool complete = report.stats.finished == report.stats.submitted;
    return complete ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    if (obs::enabled()) {
      obs::flight_recorder().record("abnormal_exit", 0.0, -1, 0.0, e.what());
      obs::flight_recorder().trigger("reco_serve abnormal exit");
    }
    return 1;
  }
}
