// Workload utility: generate a Facebook-like trace, print its Table I/II
// statistics, and archive it to / restore it from disk.
//
//   $ ./trace_tool gen  out.trace [coflows] [ports] [seed]
//   $ ./trace_tool show in.trace
//   $ ./trace_tool stats [coflows] [ports] [seed]      (no file I/O)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/generator.hpp"
#include "trace/serialization.hpp"
#include "trace/trace_stats.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool gen   <file> [coflows] [ports] [seed]\n"
               "  trace_tool show  <file>\n"
               "  trace_tool stats [coflows] [ports] [seed]\n");
}

reco::GeneratorOptions parse_options(int argc, char** argv, int first) {
  reco::GeneratorOptions o;
  if (argc > first + 0) o.num_coflows = std::atoi(argv[first + 0]);
  if (argc > first + 1) o.num_ports = std::atoi(argv[first + 1]);
  if (argc > first + 2) o.seed = std::strtoull(argv[first + 2], nullptr, 10);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reco;
  if (argc < 2) {
    usage();
    return 2;
  }

  try {
    if (std::strcmp(argv[1], "gen") == 0 && argc >= 3) {
      const GeneratorOptions o = parse_options(argc, argv, 3);
      const auto coflows = generate_workload(o);
      save_trace(argv[2], coflows, o.num_ports);
      std::printf("wrote %zu coflows (%d ports, seed %llu) to %s\n", coflows.size(),
                  o.num_ports, static_cast<unsigned long long>(o.seed), argv[2]);
      std::printf("%s", format_stats(compute_stats(coflows)).c_str());
      return 0;
    }
    if (std::strcmp(argv[1], "show") == 0 && argc >= 3) {
      int ports = 0;
      const auto coflows = load_trace(argv[2], ports);
      std::printf("%s: %zu coflows on %d ports\n", argv[2], coflows.size(), ports);
      std::printf("%s", format_stats(compute_stats(coflows)).c_str());
      return 0;
    }
    if (std::strcmp(argv[1], "stats") == 0) {
      const GeneratorOptions o = parse_options(argc, argv, 2);
      std::printf("%s", format_stats(compute_stats(generate_workload(o))).c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
