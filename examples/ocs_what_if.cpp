// What-if explorer for OCS hardware parameters: how does the
// reconfiguration delay change scheduling behaviour for one coflow?
// Sweeps delta over four decades and prints, per scheduler, the planned
// establishments, executed CCT, and distance from the lower bound — plus
// an all-stop vs not-all-stop switch-model comparison.
//
//   $ ./ocs_what_if [ports] [density] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/lower_bound.hpp"
#include "ocs/all_stop_executor.hpp"
#include "ocs/not_all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "trace/rng.hpp"

int main(int argc, char** argv) {
  using namespace reco;

  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const double density = argc > 2 ? std::atof(argv[2]) : 0.6;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // One synthetic coflow with demands in the hundreds of milliseconds.
  Rng rng(seed);
  Matrix demand(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < density) demand.at(i, j) = rng.uniform(0.01, 0.4);
    }
  }
  std::printf("Coflow: %dx%d, %d flows, rho = %.3fs\n\n", n, n, demand.nnz(), demand.rho());

  std::printf("%10s %22s %22s %12s\n", "", "Reco-Sin", "Solstice", "");
  std::printf("%10s %10s %11s %10s %11s %12s\n", "delta", "reconfigs", "CCT/LB", "reconfigs",
              "CCT/LB", "not-all-stop");
  for (const Time delta : {100e-6, 1e-3, 10e-3, 100e-3}) {
    const Time lb = single_coflow_lower_bound(demand, delta);
    const CircuitSchedule reco = reco_sin(demand, delta);
    const CircuitSchedule sol = solstice(demand);
    const ExecutionResult reco_run = execute_all_stop(reco, demand, delta);
    const ExecutionResult sol_run = execute_all_stop(sol, demand, delta);
    const ExecutionResult nas_run = execute_not_all_stop(reco, demand, delta);
    std::printf("%8.0fus %10d %10.2fx %10d %10.2fx %10.2fx\n", delta * 1e6,
                reco_run.reconfigurations, reco_run.cct / lb, sol_run.reconfigurations,
                sol_run.cct / lb, nas_run.cct / lb);
  }
  std::printf(
      "\nReading: as delta grows, regularization aligns more demand, so\n"
      "Reco-Sin's establishment count falls while Solstice's stays put —\n"
      "exactly the paper's Fig. 5 effect.  The last column executes the\n"
      "Reco-Sin schedule under the not-all-stop model (Sec. VI).\n");
  return 0;
}
