#include "sched/reco_mul.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ocs/slice_executor.hpp"
#include "sched/ordering.hpp"
#include "sched/packet_scheduler.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(RecoMul, RejectsBadParameters) {
  EXPECT_THROW(reco_mul_transform({}, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(reco_mul_transform({}, 0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(reco_mul_transform({}, -1.0, 4.0), std::invalid_argument);
}

TEST(RecoMul, EmptyScheduleStaysEmpty) {
  const RecoMulSchedule r = reco_mul_transform({}, 1.0, 4.0);
  EXPECT_TRUE(r.pseudo.empty());
  EXPECT_TRUE(r.real.empty());
}

TEST(RecoMul, PaperFig3AlignmentExample) {
  // Fig. 3's setup: three conflict-free flows starting at t = 0.5, 0.7, 0.9
  // with sqrt(c)*delta = 1 (c = 4, delta = 0.5).  Unregularized they need
  // three reconfigurations; Algorithm 2's literal formulas (stretch by 1.5,
  // snap down to the grid) merge the last two starts: 0.75, 1.05, 1.35 ->
  // batches 0, 1, 1.  (The figure narrates all three landing on one batch;
  // the formulas as printed give two — still a strict reduction.)
  const SliceSchedule packet{
      {0.5, 2.5, 0, 0, 0}, {0.7, 2.7, 1, 1, 1}, {0.9, 2.9, 2, 2, 2}};
  const RecoMulSchedule r = reco_mul_transform(packet, 0.5, 4.0);
  EXPECT_EQ(count_reconfigurations(packet), 3);
  EXPECT_EQ(count_reconfigurations(r.pseudo), 2);
  EXPECT_TRUE(is_port_feasible(r.real));
}

TEST(RecoMul, StartTimesSnapToQuantumGrid) {
  Rng rng(151);
  const Time delta = 0.01;
  const double c = 9.0;  // quantum = 0.03
  const auto coflows = testing::random_workload(rng, 6, 4, delta, c);
  const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
  const RecoMulSchedule r = reco_mul_transform(packet, delta, c);
  const Time quantum = std::sqrt(c) * delta;
  for (const FlowSlice& s : r.pseudo) {
    const double k = std::round(s.start / quantum);
    EXPECT_NEAR(s.start, k * quantum, 1e-7);
  }
}

TEST(RecoMul, DurationsPreservedOnPseudoAxis) {
  Rng rng(152);
  const auto coflows = testing::random_workload(rng, 5, 4, 0.01, 4.0);
  const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
  const RecoMulSchedule r = reco_mul_transform(packet, 0.01, 4.0);
  ASSERT_EQ(r.pseudo.size(), packet.size());
  for (std::size_t f = 0; f < packet.size(); ++f) {
    EXPECT_NEAR(r.pseudo[f].duration(), packet[f].duration(), 1e-9);
  }
  EXPECT_TRUE(satisfies_demands(r.pseudo, coflows));
}

class RecoMulLemma2 : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(CSweep, RecoMulLemma2, ::testing::Values(1.0, 2.0, 4.0, 6.25, 9.0, 16.0));

TEST_P(RecoMulLemma2, FeasibilityUnderThresholdAssumption) {
  // Lemma 2: with every demand >= c * delta, the regularized schedule (and
  // its real-time inflation) respects the port constraint.
  const double c = GetParam();
  Rng rng(153 + static_cast<std::uint64_t>(c * 10));
  const Time delta = 0.02;
  for (int trial = 0; trial < 10; ++trial) {
    const auto coflows = testing::random_workload(rng, 8, 5, delta, c);
    const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
    ASSERT_TRUE(is_port_feasible(packet));
    const RecoMulSchedule r = reco_mul_transform(packet, delta, c);
    EXPECT_TRUE(is_port_feasible(r.pseudo)) << "c=" << c << " trial " << trial;
    EXPECT_TRUE(is_port_feasible(r.real)) << "c=" << c << " trial " << trial;
  }
}

TEST_P(RecoMulLemma2, Theorem3PerCoflowBound) {
  // Eqn. (3): T_k^o <= (1 + 1/sqrt(c)) * ((floor(sqrt c)+1)/floor(sqrt c)) * T_k^p.
  const double c = GetParam();
  Rng rng(157 + static_cast<std::uint64_t>(c * 10));
  const Time delta = 0.02;
  const double root_floor = std::floor(std::sqrt(c));
  const double bound = (1.0 + 1.0 / std::sqrt(c)) * ((root_floor + 1.0) / root_floor);
  for (int trial = 0; trial < 10; ++trial) {
    const auto coflows = testing::random_workload(rng, 8, 5, delta, c);
    const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
    const RecoMulSchedule r = reco_mul_transform(packet, delta, c);
    const auto cct_packet = completion_times(packet, static_cast<int>(coflows.size()));
    const auto cct_ocs = completion_times(r.real, static_cast<int>(coflows.size()));
    for (std::size_t k = 0; k < coflows.size(); ++k) {
      // "+ delta": the paper's accounting charges reconfigurations against
      // elapsed pseudo-time and so misses the very first batch at t-hat = 0;
      // physically that batch still costs one delta.
      EXPECT_LE(cct_ocs[k], bound * cct_packet[k] + delta + 1e-7)
          << "c=" << c << " trial " << trial << " coflow " << k;
    }
  }
}

TEST(RecoMul, FewerBatchesThanUnregularized) {
  // The headline effect: aligning start times shares reconfigurations.
  Rng rng(161);
  const Time delta = 0.02;
  const double c = 9.0;
  int reduced = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto coflows = testing::random_workload(rng, 10, 5, delta, c);
    const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
    const RecoMulSchedule r = reco_mul_transform(packet, delta, c);
    // The snap map t -> floor(1.5t/q)q is monotone, so distinct starts can
    // only merge — never split.
    EXPECT_LE(count_reconfigurations(r.pseudo), count_reconfigurations(packet))
        << "trial " << trial;
    if (count_reconfigurations(r.pseudo) < count_reconfigurations(packet)) ++reduced;
  }
  EXPECT_GE(reduced, 5);
}

}  // namespace
}  // namespace reco
