#include "sched/online.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/slice.hpp"
#include "ocs/slice_executor.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/multi_baselines.hpp"
#include "trace/generator.hpp"

namespace reco {
namespace {

std::vector<Coflow> arriving_workload(std::uint64_t seed, int k = 20, int n = 16,
                                      Time mean_gap = 0.01) {
  GeneratorOptions o;
  o.num_ports = n;
  o.num_coflows = k;
  o.seed = seed;
  o.mean_interarrival = mean_gap;
  return generate_workload(o);
}

class OnlinePolicyTest : public ::testing::TestWithParam<OnlinePolicyKind> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, OnlinePolicyTest,
                         ::testing::Values(OnlinePolicyKind::kEpochRecoMul,
                                           OnlinePolicyKind::kFifoRecoSin,
                                           OnlinePolicyKind::kDrainReplanRecoMul),
                         [](const auto& info) {
                           switch (info.param) {
                             case OnlinePolicyKind::kEpochRecoMul: return "EpochRecoMul";
                             case OnlinePolicyKind::kFifoRecoSin: return "FifoRecoSin";
                             case OnlinePolicyKind::kDrainReplanRecoMul: return "DrainReplan";
                           }
                           return "Unknown";
                         });

TEST_P(OnlinePolicyTest, EmptyWorkload) {
  const OnlineScheduleResult r = schedule_online({}, GetParam());
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_DOUBLE_EQ(r.total_weighted_cct, 0.0);
}

TEST_P(OnlinePolicyTest, ScheduleIsPortFeasible) {
  const auto coflows = arriving_workload(231);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  EXPECT_TRUE(is_port_feasible(r.schedule));
}

TEST_P(OnlinePolicyTest, NoFlowStartsBeforeItsCoflowArrives) {
  const auto coflows = arriving_workload(232);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  for (const FlowSlice& s : r.schedule) {
    EXPECT_GE(s.start, coflows[s.coflow].arrival - 1e-9);
  }
}

TEST_P(OnlinePolicyTest, CctAtLeastOwnBottleneck) {
  const auto coflows = arriving_workload(233);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  for (const Coflow& c : coflows) {
    EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-9) << "coflow " << c.id;
  }
}

TEST_P(OnlinePolicyTest, EveryCoflowFullyServed) {
  const auto coflows = arriving_workload(234, 10, 10);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  Matrix served(10);
  std::vector<Matrix> per_coflow(coflows.size(), Matrix(10));
  for (const FlowSlice& s : r.schedule) per_coflow[s.coflow].at(s.src, s.dst) += s.duration();
  for (const Coflow& c : coflows) {
    for (int i = 0; i < 10; ++i) {
      for (int j = 0; j < 10; ++j) {
        // Real-time slices include all-stop stretching for the epoch
        // policy, so served time can exceed the demand, never undershoot.
        EXPECT_GE(per_coflow[c.id].at(i, j), c.demand.at(i, j) - 1e-6)
            << "coflow " << c.id << " flow " << i << "->" << j;
      }
    }
  }
}

TEST(Online, AllArriveAtZeroIsOneEpoch) {
  GeneratorOptions o;
  o.num_ports = 12;
  o.num_coflows = 8;
  o.seed = 235;
  const auto coflows = generate_workload(o);  // mean_interarrival = 0
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul);
  EXPECT_EQ(r.epochs, 1);
}

TEST(Online, SpreadArrivalsUseMultipleEpochs) {
  const auto coflows = arriving_workload(236, 20, 16, 0.05);
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul);
  EXPECT_GT(r.epochs, 1);
}

TEST(Online, EpochBeatsFifoOnBurstyArrivals) {
  // Bursty arrivals: many coflows land together, so batching them through
  // Reco-Mul exploits concurrency while FIFO serializes.
  int wins = 0;
  for (int t = 0; t < 3; ++t) {
    const auto coflows = arriving_workload(240 + t, 24, 24, 0.001);
    const double epoch =
        schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul).total_weighted_cct;
    const double fifo =
        schedule_online(coflows, OnlinePolicyKind::kFifoRecoSin).total_weighted_cct;
    if (epoch < fifo) ++wins;
  }
  EXPECT_GE(wins, 2);
}

TEST(Online, DrainReplanServesEveryCoflowAcrossCuts) {
  // Arrivals spread out enough that epochs get cut mid-flight.
  const auto coflows = arriving_workload(238, 16, 12, 0.02);
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicyKind::kDrainReplanRecoMul);
  for (const Coflow& c : coflows) {
    EXPECT_GT(r.cct[c.id], 0.0) << "coflow " << c.id;
    EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-9);
  }
  EXPECT_GE(r.epochs, 2);
}

TEST(Online, DrainReplanRespondsFasterThanEpochOnLateArrival) {
  // One huge coflow at t=0, one mouse arriving mid-epoch: epoch batching
  // makes the mouse wait for the elephant; drain-replan cuts in earlier
  // (or at worst ties).
  GeneratorOptions g;
  g.num_ports = 10;
  g.num_coflows = 12;
  g.seed = 239;
  g.mean_interarrival = 0.03;
  const auto coflows = generate_workload(g);
  const OnlineScheduleResult epoch = schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul);
  const OnlineScheduleResult reactive =
      schedule_online(coflows, OnlinePolicyKind::kDrainReplanRecoMul);
  // Not universally ordered, but both must be feasible and complete; the
  // reactive policy must never sit on arrivals for a whole epoch's worth
  // of extra makespan.
  EXPECT_TRUE(is_port_feasible(reactive.schedule));
  EXPECT_LE(reactive.total_weighted_cct, 3.0 * epoch.total_weighted_cct);
}

// S3 lock-in: the reported reconfiguration count must describe the emitted
// real-time schedule, not the internal pseudo schedule it was derived from.
TEST_P(OnlinePolicyTest, ReportedReconfigurationsMatchEmittedSchedule) {
  for (const Time gap : {0.0, 0.005, 0.02}) {
    const auto coflows = arriving_workload(251, 18, 12, gap);
    const OnlineScheduleResult r = schedule_online(coflows, GetParam());
    EXPECT_EQ(r.reconfigurations, count_reconfigurations(r.schedule)) << "gap " << gap;
  }
}

// S1 regression: a coflow whose arrival lands exactly on (or within eps of)
// an epoch boundary must be admitted cleanly and never yield a negative
// CCT.  Crafted so coflow B arrives at the precise end of A's solo epoch.
TEST_P(OnlinePolicyTest, BoundaryArrivalAdmittedWithNonNegativeCct) {
  Coflow a;
  a.id = 0;
  a.demand = Matrix(2);
  a.demand.at(0, 1) = 0.01;
  const OnlineScheduleResult solo = schedule_online({a}, GetParam());
  const Time epoch_end = makespan(solo.schedule);
  ASSERT_GT(epoch_end, 0.0);

  for (const double nudge : {-0.5 * kTimeEps, 0.0, 0.5 * kTimeEps}) {
    Coflow b;
    b.id = 1;
    b.demand = Matrix(2);
    b.demand.at(1, 0) = 0.01;
    b.arrival = epoch_end + nudge;
    const OnlineScheduleResult r = schedule_online({a, b}, GetParam());
    EXPECT_GE(r.cct[0], 0.0) << "nudge " << nudge;
    EXPECT_GE(r.cct[1], 0.0) << "nudge " << nudge;
    EXPECT_GE(r.cct[1], b.demand.rho() - 1e-9) << "nudge " << nudge;
    EXPECT_TRUE(is_port_feasible(r.schedule)) << "nudge " << nudge;
    // No slice of B may start before it arrived.
    for (const FlowSlice& s : r.schedule) {
      if (s.coflow == 1) EXPECT_GE(s.start, b.arrival - 1e-9) << "nudge " << nudge;
    }
  }
}

// S1 regression: arrivals spaced within eps of each other land in one batch
// without any of them picking up a negative CCT from the eps-tolerant
// admission boundary.
TEST(Online, EpsSpacedArrivalsBatchTogetherWithNonNegativeCct) {
  auto coflows = arriving_workload(252, 6, 8, 0.0);
  for (std::size_t k = 0; k < coflows.size(); ++k) {
    // All six land inside the [clock, clock + eps] admission window of the
    // very first batch (last offset 0.75*eps).
    coflows[k].arrival = static_cast<Time>(k) * 0.15 * kTimeEps;
  }
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicyKind::kEpochRecoMul);
  EXPECT_EQ(r.epochs, 1);  // all admitted inside the eps window
  for (const Coflow& c : coflows) EXPECT_GE(r.cct[c.id], 0.0);
}

// S4: with every arrival at t = 0 the online problem *is* the offline one,
// and each policy must degenerate to its offline counterpart exactly.
TEST(Online, EpochAtTimeZeroDegeneratesToOfflineRecoMul) {
  GeneratorOptions o;
  o.num_ports = 12;
  o.num_coflows = 10;
  o.seed = 253;
  const auto coflows = generate_workload(o);
  for (const OnlinePolicyKind kind :
       {OnlinePolicyKind::kEpochRecoMul, OnlinePolicyKind::kDrainReplanRecoMul}) {
    const OnlineScheduleResult online = schedule_online(coflows, kind);
    const MultiScheduleResult offline = reco_mul_pipeline(coflows, 100e-6, 4.0);
    ASSERT_EQ(online.cct.size(), offline.cct.size());
    for (std::size_t k = 0; k < coflows.size(); ++k) {
      EXPECT_DOUBLE_EQ(online.cct[k], offline.cct[k]) << to_string(kind) << " coflow " << k;
    }
    EXPECT_NEAR(online.total_weighted_cct, offline.total_weighted_cct, 1e-9) << to_string(kind);
    EXPECT_EQ(online.reconfigurations, offline.reconfigurations) << to_string(kind);
    EXPECT_EQ(online.epochs, 1) << to_string(kind);
  }
}

TEST(Online, FifoAtTimeZeroDegeneratesToSequentialRecoSin) {
  GeneratorOptions o;
  o.num_ports = 10;
  o.num_coflows = 8;
  o.seed = 254;
  const auto coflows = generate_workload(o);
  const OnlineScheduleResult online = schedule_online(coflows, OnlinePolicyKind::kFifoRecoSin);
  std::vector<int> order(coflows.size());
  std::iota(order.begin(), order.end(), 0);  // FIFO = arrival (= id) order
  const MultiScheduleResult offline =
      sequential_multi_schedule(coflows, order, 100e-6, SingleCoflowAlgo::kRecoSin);
  for (std::size_t k = 0; k < coflows.size(); ++k) {
    EXPECT_DOUBLE_EQ(online.cct[k], offline.cct[k]) << "coflow " << k;
  }
  EXPECT_NEAR(online.total_weighted_cct, offline.total_weighted_cct, 1e-9);
}

// S4: the loop driver replays byte-identically across thread counts (the
// daemon variant lives in sim/test_online_daemon.cpp).
TEST_P(OnlinePolicyTest, DigestIdenticalAcrossThreadCounts) {
  const auto coflows = arriving_workload(255, 24, 12, 0.01);
  runtime::set_thread_count(1);
  const OnlineScheduleResult serial = schedule_online(coflows, GetParam());
  runtime::set_thread_count(4);
  const OnlineScheduleResult parallel = schedule_online(coflows, GetParam());
  runtime::set_thread_count(0);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_NE(serial.digest, 0u);
  ASSERT_EQ(serial.cct.size(), parallel.cct.size());
  for (std::size_t k = 0; k < serial.cct.size(); ++k) {
    EXPECT_DOUBLE_EQ(serial.cct[k], parallel.cct[k]);
  }
}

TEST(Online, WeightedCctConsistentWithPerCoflow) {
  const auto coflows = arriving_workload(237, 12, 12);
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicyKind::kFifoRecoSin);
  double expected = 0.0;
  for (const Coflow& c : coflows) expected += c.weight * r.cct[c.id];
  EXPECT_NEAR(r.total_weighted_cct, expected, 1e-9);
}

}  // namespace
}  // namespace reco
