#include "sched/online.hpp"

#include <gtest/gtest.h>

#include "core/slice.hpp"
#include "trace/generator.hpp"

namespace reco {
namespace {

std::vector<Coflow> arriving_workload(std::uint64_t seed, int k = 20, int n = 16,
                                      Time mean_gap = 0.01) {
  GeneratorOptions o;
  o.num_ports = n;
  o.num_coflows = k;
  o.seed = seed;
  o.mean_interarrival = mean_gap;
  return generate_workload(o);
}

class OnlinePolicyTest : public ::testing::TestWithParam<OnlinePolicy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, OnlinePolicyTest,
                         ::testing::Values(OnlinePolicy::kEpochRecoMul,
                                           OnlinePolicy::kFifoRecoSin,
                                           OnlinePolicy::kDrainReplanRecoMul),
                         [](const auto& info) {
                           switch (info.param) {
                             case OnlinePolicy::kEpochRecoMul: return "EpochRecoMul";
                             case OnlinePolicy::kFifoRecoSin: return "FifoRecoSin";
                             case OnlinePolicy::kDrainReplanRecoMul: return "DrainReplan";
                           }
                           return "Unknown";
                         });

TEST_P(OnlinePolicyTest, EmptyWorkload) {
  const OnlineScheduleResult r = schedule_online({}, GetParam());
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_DOUBLE_EQ(r.total_weighted_cct, 0.0);
}

TEST_P(OnlinePolicyTest, ScheduleIsPortFeasible) {
  const auto coflows = arriving_workload(231);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  EXPECT_TRUE(is_port_feasible(r.schedule));
}

TEST_P(OnlinePolicyTest, NoFlowStartsBeforeItsCoflowArrives) {
  const auto coflows = arriving_workload(232);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  for (const FlowSlice& s : r.schedule) {
    EXPECT_GE(s.start, coflows[s.coflow].arrival - 1e-9);
  }
}

TEST_P(OnlinePolicyTest, CctAtLeastOwnBottleneck) {
  const auto coflows = arriving_workload(233);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  for (const Coflow& c : coflows) {
    EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-9) << "coflow " << c.id;
  }
}

TEST_P(OnlinePolicyTest, EveryCoflowFullyServed) {
  const auto coflows = arriving_workload(234, 10, 10);
  const OnlineScheduleResult r = schedule_online(coflows, GetParam());
  Matrix served(10);
  std::vector<Matrix> per_coflow(coflows.size(), Matrix(10));
  for (const FlowSlice& s : r.schedule) per_coflow[s.coflow].at(s.src, s.dst) += s.duration();
  for (const Coflow& c : coflows) {
    for (int i = 0; i < 10; ++i) {
      for (int j = 0; j < 10; ++j) {
        // Real-time slices include all-stop stretching for the epoch
        // policy, so served time can exceed the demand, never undershoot.
        EXPECT_GE(per_coflow[c.id].at(i, j), c.demand.at(i, j) - 1e-6)
            << "coflow " << c.id << " flow " << i << "->" << j;
      }
    }
  }
}

TEST(Online, AllArriveAtZeroIsOneEpoch) {
  GeneratorOptions o;
  o.num_ports = 12;
  o.num_coflows = 8;
  o.seed = 235;
  const auto coflows = generate_workload(o);  // mean_interarrival = 0
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicy::kEpochRecoMul);
  EXPECT_EQ(r.epochs, 1);
}

TEST(Online, SpreadArrivalsUseMultipleEpochs) {
  const auto coflows = arriving_workload(236, 20, 16, 0.05);
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicy::kEpochRecoMul);
  EXPECT_GT(r.epochs, 1);
}

TEST(Online, EpochBeatsFifoOnBurstyArrivals) {
  // Bursty arrivals: many coflows land together, so batching them through
  // Reco-Mul exploits concurrency while FIFO serializes.
  int wins = 0;
  for (int t = 0; t < 3; ++t) {
    const auto coflows = arriving_workload(240 + t, 24, 24, 0.001);
    const double epoch =
        schedule_online(coflows, OnlinePolicy::kEpochRecoMul).total_weighted_cct;
    const double fifo =
        schedule_online(coflows, OnlinePolicy::kFifoRecoSin).total_weighted_cct;
    if (epoch < fifo) ++wins;
  }
  EXPECT_GE(wins, 2);
}

TEST(Online, DrainReplanServesEveryCoflowAcrossCuts) {
  // Arrivals spread out enough that epochs get cut mid-flight.
  const auto coflows = arriving_workload(238, 16, 12, 0.02);
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicy::kDrainReplanRecoMul);
  for (const Coflow& c : coflows) {
    EXPECT_GT(r.cct[c.id], 0.0) << "coflow " << c.id;
    EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-9);
  }
  EXPECT_GE(r.epochs, 2);
}

TEST(Online, DrainReplanRespondsFasterThanEpochOnLateArrival) {
  // One huge coflow at t=0, one mouse arriving mid-epoch: epoch batching
  // makes the mouse wait for the elephant; drain-replan cuts in earlier
  // (or at worst ties).
  GeneratorOptions g;
  g.num_ports = 10;
  g.num_coflows = 12;
  g.seed = 239;
  g.mean_interarrival = 0.03;
  const auto coflows = generate_workload(g);
  const OnlineScheduleResult epoch = schedule_online(coflows, OnlinePolicy::kEpochRecoMul);
  const OnlineScheduleResult reactive =
      schedule_online(coflows, OnlinePolicy::kDrainReplanRecoMul);
  // Not universally ordered, but both must be feasible and complete; the
  // reactive policy must never sit on arrivals for a whole epoch's worth
  // of extra makespan.
  EXPECT_TRUE(is_port_feasible(reactive.schedule));
  EXPECT_LE(reactive.total_weighted_cct, 3.0 * epoch.total_weighted_cct);
}

TEST(Online, WeightedCctConsistentWithPerCoflow) {
  const auto coflows = arriving_workload(237, 12, 12);
  const OnlineScheduleResult r = schedule_online(coflows, OnlinePolicy::kFifoRecoSin);
  double expected = 0.0;
  for (const Coflow& c : coflows) expected += c.weight * r.cct[c.id];
  EXPECT_NEAR(r.total_weighted_cct, expected, 1e-9);
}

}  // namespace
}  // namespace reco
