// Cross-representation consistency: the same schedule measured through
// different lenses (slice schedule, per-coflow CCTs, reconfiguration
// counters, DES replay) must tell one story.
#include <gtest/gtest.h>

#include "core/slice.hpp"
#include "ocs/slice_executor.hpp"
#include "sched/multi_baselines.hpp"
#include "sim/fabric.hpp"
#include "trace/generator.hpp"

namespace reco {
namespace {

std::vector<Coflow> workload(std::uint64_t seed) {
  GeneratorOptions g;
  g.num_ports = 16;
  g.num_coflows = 20;
  g.seed = seed;
  return generate_workload(g);
}

TEST(Consistency, PipelineCctMatchesScheduleCompletionTimes) {
  const auto coflows = workload(811);
  for (const MultiScheduleResult& r :
       {reco_mul_pipeline(coflows, 100e-6, 4.0), sebf_solstice(coflows, 100e-6)}) {
    const auto recomputed = completion_times(r.schedule, static_cast<int>(coflows.size()));
    ASSERT_EQ(recomputed.size(), r.cct.size());
    for (std::size_t k = 0; k < r.cct.size(); ++k) {
      EXPECT_NEAR(r.cct[k], recomputed[k], 1e-9) << "coflow " << k;
    }
  }
}

TEST(Consistency, SequentialReconfigsMatchSliceBatches) {
  // One establishment per start batch: the counter kept by the sequential
  // pipeline must equal the batch count recomputed from its slices.
  const auto coflows = workload(812);
  const MultiScheduleResult r = sebf_solstice(coflows, 100e-6);
  EXPECT_EQ(r.reconfigurations, count_reconfigurations(r.schedule));
}

TEST(Consistency, TotalWeightedCctMatchesManualSum) {
  const auto coflows = workload(813);
  const MultiScheduleResult r = reco_mul_pipeline(coflows, 100e-6, 4.0);
  double manual = 0.0;
  for (const Coflow& c : coflows) manual += c.weight * r.cct[c.id];
  EXPECT_NEAR(r.total_weighted_cct, manual, 1e-9);
}

TEST(Consistency, DesSliceReplayAgreesWithAnalyticAnalysis) {
  const auto coflows = workload(814);
  const MultiScheduleResult r = reco_mul_pipeline(coflows, 100e-6, 4.0);
  const sim::SliceReplayReport des =
      sim::simulate_slice_schedule(r.schedule, 16, static_cast<int>(coflows.size()));
  EXPECT_EQ(des.port_violations, 0);
  const MultiExecutionStats analytic =
      analyze_schedule(r.schedule, static_cast<int>(coflows.size()));
  EXPECT_NEAR(des.makespan, analytic.makespan, 1e-9);
  for (std::size_t k = 0; k < coflows.size(); ++k) {
    EXPECT_NEAR(des.cct[k], analytic.cct[k], 1e-9) << "coflow " << k;
  }
}

}  // namespace
}  // namespace reco
