#include "sched/hybrid.hpp"

#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "sched/multi_baselines.hpp"
#include "trace/generator.hpp"
#include "sched/reco_sin.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Hybrid, SplitSeparatesAtThreshold) {
  const Matrix d = Matrix::from_rows({{5.0, 0.1}, {0.0, 2.0}});
  Matrix elephants;
  Matrix mice;
  split_at_threshold(d, 1.0, elephants, mice);
  EXPECT_DOUBLE_EQ(elephants.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(elephants.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(elephants.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(mice.at(0, 1), 0.1);
  EXPECT_EQ(mice.nnz(), 1);
}

TEST(Hybrid, SplitPreservesVolume) {
  Rng rng(251);
  const Matrix d = testing::random_demand(rng, 6, 0.6, 0.01, 2.0);
  Matrix elephants;
  Matrix mice;
  split_at_threshold(d, 0.5, elephants, mice);
  EXPECT_NEAR(elephants.total() + mice.total(), d.total(), 1e-9);
}

TEST(Hybrid, RejectsBadBandwidth) {
  HybridOptions o;
  o.packet_bandwidth_fraction = 0.0;
  EXPECT_THROW(hybrid_single_coflow(Matrix(2), o), std::invalid_argument);
}

TEST(Hybrid, PureElephantsMatchRecoSin) {
  Rng rng(252);
  HybridOptions o;
  const double min_d = o.c_threshold * o.delta;
  const Matrix d = testing::random_demand(rng, 5, 0.7, min_d, min_d * 20);
  const HybridResult r = hybrid_single_coflow(d, o);
  EXPECT_DOUBLE_EQ(r.mice_volume, 0.0);
  EXPECT_DOUBLE_EQ(r.packet_cct, 0.0);
  const ExecutionResult reference = execute_all_stop(reco_sin(d, o.delta), d, o.delta);
  EXPECT_NEAR(r.cct, reference.cct, 1e-9);
}

TEST(Hybrid, PureMiceSkipTheOcs) {
  HybridOptions o;
  Matrix d(3);
  d.at(0, 1) = o.c_threshold * o.delta / 10.0;  // below threshold
  const HybridResult r = hybrid_single_coflow(d, o);
  EXPECT_EQ(r.reconfigurations, 0);
  EXPECT_DOUBLE_EQ(r.ocs_cct, 0.0);
  EXPECT_NEAR(r.packet_cct, d.at(0, 1) / o.packet_bandwidth_fraction, 1e-12);
}

TEST(Hybrid, MixedCoflowRunsBothFabrics) {
  HybridOptions o;
  const double threshold = o.c_threshold * o.delta;
  Matrix d(4);
  d.at(0, 0) = threshold * 50;  // elephant
  d.at(1, 2) = threshold / 5;   // mouse
  const HybridResult r = hybrid_single_coflow(d, o);
  EXPECT_GT(r.ocs_cct, 0.0);
  EXPECT_GT(r.packet_cct, 0.0);
  EXPECT_DOUBLE_EQ(r.cct, std::max(r.ocs_cct, r.packet_cct));
  EXPECT_NEAR(r.elephant_volume, threshold * 50, 1e-12);
  EXPECT_NEAR(r.mice_volume, threshold / 5, 1e-12);
}

TEST(Hybrid, OffloadingMiceBeatsForcingThemThroughOcs) {
  // The Sec. VI argument: a matrix with many tiny flows plus one elephant
  // per port is cheap on a hybrid fabric but reconfiguration-bound on a
  // pure OCS.
  Rng rng(253);
  HybridOptions o;
  const double threshold = o.c_threshold * o.delta;
  Matrix d(10);
  for (int i = 0; i < 10; ++i) {
    d.at(i, i) = threshold * 100;  // elephants on the diagonal
    for (int j = 0; j < 10; ++j) {
      if (j != i) d.at(i, j) = threshold / 20.0;  // mice everywhere else
    }
  }
  const HybridResult hybrid = hybrid_single_coflow(d, o);
  const ExecutionResult pure = execute_all_stop(reco_sin(d, o.delta), d, o.delta);
  EXPECT_LT(hybrid.cct, pure.cct);
  EXPECT_LT(hybrid.reconfigurations, pure.reconfigurations);
}

TEST(HybridMulti, EmptyWorkload) {
  const HybridMultiResult r = hybrid_multi_coflow({});
  EXPECT_TRUE(r.cct.empty());
  EXPECT_EQ(r.reconfigurations, 0);
}

TEST(HybridMulti, RejectsBadBandwidth) {
  HybridOptions o;
  o.packet_bandwidth_fraction = -1.0;
  EXPECT_THROW(hybrid_multi_coflow({}, o), std::invalid_argument);
}

TEST(HybridMulti, PureElephantWorkloadMatchesRecoMul) {
  GeneratorOptions g;
  g.num_ports = 16;
  g.num_coflows = 12;
  g.seed = 981;  // enforce_threshold default: everything is an elephant
  const auto coflows = generate_workload(g);
  HybridOptions o;
  o.delta = g.delta;
  o.c_threshold = g.c_threshold;
  const HybridMultiResult hybrid = hybrid_multi_coflow(coflows, o);
  const MultiScheduleResult reco = reco_mul_pipeline(coflows, g.delta, g.c_threshold);
  EXPECT_DOUBLE_EQ(hybrid.mice_volume, 0.0);
  for (const Coflow& c : coflows) {
    EXPECT_NEAR(hybrid.cct[c.id], reco.cct[c.id], 1e-9) << "coflow " << c.id;
  }
}

TEST(HybridMulti, MiceOnlyCoflowsSkipTheOcs) {
  HybridOptions o;
  const double threshold = o.c_threshold * o.delta;
  Matrix mouse(4);
  mouse.at(0, 1) = threshold / 10;
  Coflow c;
  c.id = 0;
  c.weight = 1.0;
  c.demand = mouse;
  const HybridMultiResult r = hybrid_multi_coflow({c}, o);
  EXPECT_EQ(r.reconfigurations, 0);
  EXPECT_NEAR(r.cct[0], (threshold / 10) / o.packet_bandwidth_fraction, 1e-12);
}

TEST(HybridMulti, MixedWorkloadServesBothSides) {
  GeneratorOptions g;
  g.num_ports = 20;
  g.num_coflows = 25;
  g.seed = 982;
  g.enforce_threshold = false;  // keep mice
  const auto coflows = generate_workload(g);
  HybridOptions o;
  o.delta = g.delta;
  o.c_threshold = g.c_threshold;
  const HybridMultiResult r = hybrid_multi_coflow(coflows, o);
  EXPECT_GT(r.mice_volume, 0.0);
  EXPECT_GT(r.elephant_volume, 0.0);
  EXPECT_GT(r.reconfigurations, 0);
  for (const Coflow& c : coflows) {
    EXPECT_GT(r.cct[c.id], 0.0) << "coflow " << c.id;
  }
  double manual = 0.0;
  for (const Coflow& c : coflows) manual += c.weight * r.cct[c.id];
  EXPECT_NEAR(r.total_weighted_cct, manual, 1e-9);
}

}  // namespace
}  // namespace reco
