#include "sched/rotornet.hpp"

#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Rotornet, EmptyDemand) {
  EXPECT_EQ(rotornet_schedule(Matrix(4), 0.1).num_assignments(), 0);
}

TEST(Rotornet, RejectsBadSlot) {
  RotorOptions o;
  o.slot_over_delta = 0.0;
  EXPECT_THROW(rotornet_schedule(Matrix(2), 0.1, o), std::invalid_argument);
}

TEST(Rotornet, CoversUniformDemandInOneCycle) {
  Matrix d(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) d.at(i, j) = 0.5;
  }
  RotorOptions o;
  o.slot_over_delta = 10.0;  // slot = 1.0 >= every entry
  const CircuitSchedule s = rotornet_schedule(d, 0.1, o);
  EXPECT_EQ(s.num_assignments(), 3);  // one rotation per offset
  EXPECT_TRUE(s.satisfies(d));
}

TEST(Rotornet, MultipleCyclesForLargeEntries) {
  Matrix d(2);
  d.at(0, 1) = 2.5;
  RotorOptions o;
  o.slot_over_delta = 10.0;  // slot = 1.0
  const CircuitSchedule s = rotornet_schedule(d, 0.1, o);
  EXPECT_EQ(s.num_assignments(), 3);  // 1 + 1 + 0.5, only offset r=1 kept
  EXPECT_TRUE(s.satisfies(d));
}

TEST(Rotornet, SatisfiesRandomDemands) {
  Rng rng(611);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix d = testing::random_demand(rng, 6, 0.5, 0.2, 4.0);
    const CircuitSchedule s = rotornet_schedule(d, 0.1);
    EXPECT_TRUE(s.is_valid(6)) << "trial " << trial;
    EXPECT_TRUE(execute_all_stop(s, d, 0.1).satisfied) << "trial " << trial;
  }
}

TEST(Rotornet, ObliviousnessCostsWhenDemandSpansAllRotations) {
  // Entries engineered so every rotor offset carries exactly one small
  // flow: the rotor pays a reconfiguration per offset (8 of them) while
  // Reco-Sin covers the same demand with tau = 2 matchings.
  const int n = 8;
  Matrix d(n);
  for (int i = 0; i < n; ++i) d.at(i, (2 * i) % n) = 0.2;
  const Time delta = 0.1;
  const ExecutionResult rotor = execute_all_stop(rotornet_schedule(d, delta), d, delta);
  const ExecutionResult reco = execute_all_stop(reco_sin(d, delta), d, delta);
  ASSERT_TRUE(rotor.satisfied && reco.satisfied);
  EXPECT_EQ(rotor.reconfigurations, n);
  // Reco-Sin needs at most rho'/delta = 4 establishments here, usually tau = 2.
  EXPECT_LE(reco.reconfigurations, 4);
  EXPECT_GT(rotor.cct, 1.5 * reco.cct);
}

TEST(Rotornet, NearRecoSinOnUniformDemand) {
  // Dense uniform demand is the rotor's best case.
  Matrix d(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) d.at(i, j) = 1.0;
  }
  const Time delta = 0.1;
  RotorOptions o;
  o.slot_over_delta = 10.0;
  const ExecutionResult rotor = execute_all_stop(rotornet_schedule(d, delta, o), d, delta);
  const ExecutionResult reco = execute_all_stop(reco_sin(d, delta), d, delta);
  ASSERT_TRUE(rotor.satisfied && reco.satisfied);
  EXPECT_LE(rotor.cct, 1.2 * reco.cct);
}

}  // namespace
}  // namespace reco
