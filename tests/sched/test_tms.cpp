#include "sched/tms.hpp"

#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Tms, EmptyDemand) {
  EXPECT_EQ(tms_schedule(Matrix(4), 0.1).num_assignments(), 0);
}

TEST(Tms, RejectsNonPositiveDay) {
  TmsOptions o;
  o.day_over_delta = 0.0;
  EXPECT_THROW(tms_schedule(Matrix(2), 0.1, o), std::invalid_argument);
}

TEST(Tms, SingleEntrySingleAssignmentWhenDayCovers) {
  Matrix d(2);
  d.at(0, 1) = 0.5;
  TmsOptions o;
  o.day_over_delta = 10.0;  // day = 1.0 >= 0.5
  const CircuitSchedule s = tms_schedule(d, 0.1, o);
  ASSERT_EQ(s.num_assignments(), 1);
  EXPECT_DOUBLE_EQ(s.assignments[0].duration, 0.5);
}

TEST(Tms, LongDemandNeedsMultipleDays) {
  Matrix d(2);
  d.at(0, 1) = 2.5;
  TmsOptions o;
  o.day_over_delta = 10.0;  // day = 1.0
  const CircuitSchedule s = tms_schedule(d, 0.1, o);
  EXPECT_EQ(s.num_assignments(), 3);  // 1.0 + 1.0 + 0.5
  EXPECT_TRUE(s.satisfies(d));
}

TEST(Tms, SatisfiesRandomDemands) {
  Rng rng(221);
  for (int trial = 0; trial < 15; ++trial) {
    const Matrix d = testing::random_demand(rng, 7, 0.5, 0.2, 5.0);
    const CircuitSchedule s = tms_schedule(d, 0.05);
    EXPECT_TRUE(s.is_valid(7)) << "trial " << trial;
    EXPECT_TRUE(execute_all_stop(s, d, 0.05).satisfied) << "trial " << trial;
  }
}

TEST(Tms, LongerDaysMeanFewerAssignments) {
  Rng rng(222);
  const Matrix d = testing::random_demand(rng, 8, 0.7, 0.5, 8.0);
  TmsOptions short_day;
  short_day.day_over_delta = 2.0;
  TmsOptions long_day;
  long_day.day_over_delta = 50.0;
  EXPECT_GT(tms_schedule(d, 0.1, short_day).num_assignments(),
            tms_schedule(d, 0.1, long_day).num_assignments());
}

TEST(Tms, MatchingsGrabHeavyEntriesFirst) {
  Matrix d(2);
  d.at(0, 0) = 10.0;
  d.at(1, 1) = 10.0;
  d.at(0, 1) = 1.0;
  TmsOptions o;
  o.day_over_delta = 1000.0;  // one day covers everything
  const CircuitSchedule s = tms_schedule(d, 0.1, o);
  ASSERT_GE(s.num_assignments(), 1);
  // First establishment is the max-weight matching: the heavy diagonal.
  EXPECT_EQ(s.assignments[0].circuits.size(), 2u);
  EXPECT_DOUBLE_EQ(s.assignments[0].duration, 10.0);
}

}  // namespace
}  // namespace reco
