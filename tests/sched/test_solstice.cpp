#include "sched/solstice.hpp"

#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Solstice, EmptyDemand) {
  EXPECT_EQ(solstice(Matrix(3)).num_assignments(), 0);
}

TEST(Solstice, PowerOfTwoEntriesSliceExactly) {
  Matrix d(2);
  d.at(0, 0) = 4.0;
  d.at(0, 1) = 4.0;
  d.at(1, 0) = 4.0;
  d.at(1, 1) = 4.0;
  const CircuitSchedule s = solstice(d);
  EXPECT_TRUE(s.satisfies(d));
  // Stuffing is a no-op (already doubly stochastic at 8); two slices of 4.
  EXPECT_EQ(s.num_assignments(), 2);
  for (const auto& a : s.assignments) EXPECT_DOUBLE_EQ(a.duration, 4.0);
}

TEST(Solstice, SlicesAreHalvingThresholds) {
  Rng rng(111);
  const Matrix d = testing::random_demand(rng, 6, 0.6, 0.5, 9.0);
  const CircuitSchedule s = solstice(d);
  EXPECT_TRUE(s.satisfies(d));
  // Durations never increase along the schedule (threshold only halves),
  // except possibly in the exact-cleanup tail of tolerance-scale slices.
  double prev = std::numeric_limits<double>::infinity();
  for (const auto& a : s.assignments) {
    if (a.duration < 1e-6) break;  // cleanup tail
    EXPECT_LE(a.duration, prev + 1e-9);
    prev = a.duration;
  }
}

TEST(Solstice, SatisfiesRandomDemands) {
  Rng rng(112);
  for (int trial = 0; trial < 15; ++trial) {
    const Matrix d = testing::random_demand(rng, 8, 0.4, 0.3, 12.0);
    const CircuitSchedule s = solstice(d);
    EXPECT_TRUE(s.is_valid(8)) << "trial " << trial;
    EXPECT_TRUE(execute_all_stop(s, d, 0.01).satisfied) << "trial " << trial;
  }
}

TEST(Solstice, NeedsMoreReconfigurationsThanRecoSinOnRaggedDemands) {
  // The paper's Fig. 4(a) effect: ragged (non-aligned) entries force
  // Solstice into many binary slices while Reco-Sin aligns them to delta.
  Rng rng(113);
  const Time delta = 1.0;
  int solstice_wins = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix d = testing::random_demand(rng, 8, 0.8, 2.0, 40.0);
    const ExecutionResult rs = execute_all_stop(reco_sin(d, delta), d, delta);
    const ExecutionResult so = execute_all_stop(solstice(d), d, delta);
    ASSERT_TRUE(rs.satisfied && so.satisfied);
    if (so.reconfigurations > rs.reconfigurations) ++solstice_wins;
  }
  EXPECT_GE(solstice_wins, 8);  // overwhelmingly more reconfigs for Solstice
}

TEST(Solstice, DeltaParameterIsIgnored) {
  Rng rng(114);
  const Matrix d = testing::random_demand(rng, 5, 0.5, 1.0, 7.0);
  const CircuitSchedule a = solstice(d, 0.0);
  const CircuitSchedule b = solstice(d, 123.0);
  ASSERT_EQ(a.num_assignments(), b.num_assignments());
  for (int u = 0; u < a.num_assignments(); ++u) {
    EXPECT_DOUBLE_EQ(a.assignments[u].duration, b.assignments[u].duration);
  }
}

}  // namespace
}  // namespace reco
