#include "sched/packet_scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sched/ordering.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

Coflow make_coflow(int id, const Matrix& demand) {
  Coflow c;
  c.id = id;
  c.demand = demand;
  return c;
}

TEST(PacketScheduler, EmptyWorkload) {
  EXPECT_TRUE(packet_schedule({}, {}).empty());
}

TEST(PacketScheduler, SingleFlowStartsAtZero) {
  Matrix d(2);
  d.at(0, 1) = 3.0;
  const SliceSchedule s = packet_schedule({make_coflow(0, d)}, {0});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s[0].end, 3.0);
}

TEST(PacketScheduler, FlowsOnSamePortSerialize) {
  Matrix d(2);
  d.at(0, 0) = 2.0;
  d.at(0, 1) = 3.0;  // same ingress port 0
  const SliceSchedule s = packet_schedule({make_coflow(0, d)}, {0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_TRUE(is_port_feasible(s));
  // LPT: the 3-unit flow first, then the 2-unit.
  EXPECT_DOUBLE_EQ(s[0].duration(), 3.0);
  EXPECT_DOUBLE_EQ(s[1].start, 3.0);
}

TEST(PacketScheduler, DisjointFlowsRunInParallel) {
  Matrix d(2);
  d.at(0, 0) = 2.0;
  d.at(1, 1) = 2.0;
  const SliceSchedule s = packet_schedule({make_coflow(0, d)}, {0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s[1].start, 0.0);
}

TEST(PacketScheduler, OrderDeterminesPriority) {
  Matrix a(2);
  a.at(0, 0) = 5.0;
  Matrix b(2);
  b.at(0, 0) = 1.0;
  const std::vector<Coflow> coflows{make_coflow(0, a), make_coflow(1, b)};
  const auto cct01 = completion_times(packet_schedule(coflows, {0, 1}), 2);
  EXPECT_DOUBLE_EQ(cct01[0], 5.0);
  EXPECT_DOUBLE_EQ(cct01[1], 6.0);
  const auto cct10 = completion_times(packet_schedule(coflows, {1, 0}), 2);
  EXPECT_DOUBLE_EQ(cct10[1], 1.0);
  EXPECT_DOUBLE_EQ(cct10[0], 6.0);
}

TEST(PacketScheduler, NonPreemptiveOneSlicePerFlow) {
  Rng rng(141);
  const auto coflows = testing::random_workload(rng, 6, 4, 0.01, 3.0);
  const SliceSchedule s = packet_schedule(coflows, sebf_order(coflows));
  std::map<std::tuple<int, int, int>, int> slices_per_flow;
  for (const FlowSlice& f : s) slices_per_flow[{f.coflow, f.src, f.dst}] += 1;
  for (const auto& [key, count] : slices_per_flow) EXPECT_EQ(count, 1);
}

TEST(PacketSchedulerProperty, FeasibleAndExact) {
  Rng rng(142);
  for (int trial = 0; trial < 15; ++trial) {
    const auto coflows = testing::random_workload(rng, 8, 5, 0.01, 3.0);
    const SliceSchedule s = packet_schedule(coflows, bssi_order(coflows));
    EXPECT_TRUE(is_port_feasible(s)) << "trial " << trial;
    EXPECT_TRUE(satisfies_demands(s, coflows)) << "trial " << trial;
  }
}

TEST(PacketSchedulerProperty, MakespanAtLeastMaxBottleneck) {
  Rng rng(143);
  const auto coflows = testing::random_workload(rng, 6, 4, 0.01, 3.0);
  const SliceSchedule s = packet_schedule(coflows, sebf_order(coflows));
  double max_rho = 0.0;
  const int n = coflows.front().demand.n();
  for (int p = 0; p < n; ++p) {
    double in_load = 0.0;
    for (const Coflow& c : coflows) in_load += c.demand.row_sum(p);
    max_rho = std::max(max_rho, in_load);
  }
  EXPECT_GE(makespan(s) + 1e-9, max_rho);
}

}  // namespace
}  // namespace reco
