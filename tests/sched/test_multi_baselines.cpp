#include "sched/multi_baselines.hpp"

#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include "core/slice.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

constexpr Time kDelta = 0.02;
constexpr double kC = 4.0;

std::vector<Coflow> small_workload(std::uint64_t seed, int k = 8, int n = 5) {
  Rng rng(seed);
  return testing::random_workload(rng, k, n, kDelta, kC);
}

TEST(MultiBaselines, SequentialScheduleIsFeasibleAndComplete) {
  const auto coflows = small_workload(171);
  for (SingleCoflowAlgo algo :
       {SingleCoflowAlgo::kRecoSin, SingleCoflowAlgo::kSolstice, SingleCoflowAlgo::kBvn}) {
    const MultiScheduleResult r =
        sequential_multi_schedule(coflows, sebf_order(coflows), kDelta, algo);
    EXPECT_TRUE(is_port_feasible(r.schedule));
    EXPECT_GT(r.reconfigurations, 0);
    for (const Coflow& c : coflows) EXPECT_GT(r.cct[c.id], 0.0);
  }
}

TEST(MultiBaselines, SequentialCctIsMonotoneInOrder) {
  // With strictly sequential execution, a coflow's CCT equals the cumulative
  // CCT of everything before it: order positions imply monotone CCTs.
  const auto coflows = small_workload(172);
  const std::vector<int> order = sebf_order(coflows);
  const MultiScheduleResult r =
      sequential_multi_schedule(coflows, order, kDelta, SingleCoflowAlgo::kRecoSin);
  Time prev = 0.0;
  for (int idx : order) {
    EXPECT_GE(r.cct[coflows[idx].id], prev - 1e-9);
    prev = r.cct[coflows[idx].id];
  }
}

TEST(MultiBaselines, SebfSolsticeRuns) {
  const auto coflows = small_workload(173);
  const MultiScheduleResult r = sebf_solstice(coflows, kDelta);
  EXPECT_TRUE(is_port_feasible(r.schedule));
  EXPECT_GT(r.total_weighted_cct, 0.0);
}

TEST(MultiBaselines, LpIiGbRuns) {
  const auto coflows = small_workload(174, 6, 4);
  const MultiScheduleResult r = lp_ii_gb(coflows, kDelta);
  EXPECT_TRUE(is_port_feasible(r.schedule));
  EXPECT_GT(r.total_weighted_cct, 0.0);
}

TEST(MultiBaselines, RecoMulPipelineFeasibleAndServesDemands) {
  const auto coflows = small_workload(175);
  const MultiScheduleResult r = reco_mul_pipeline(coflows, kDelta, kC);
  EXPECT_TRUE(is_port_feasible(r.schedule));
  EXPECT_GT(r.reconfigurations, 0);
  // Total transmitted time must equal total demand (the real-time schedule
  // stretches wall time but transmitted volume per flow is checked on the
  // pseudo axis, so here we check volume conservation via slice count > 0
  // and per-coflow completion beyond its bottleneck).
  for (const Coflow& c : coflows) {
    EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-9);
  }
}

TEST(MultiBaselines, RecoMulBeatsSequentialBaselinesOnAverage) {
  // The paper's Sec. V-D headline, in miniature: Reco-Mul's aligned,
  // parallel schedule beats one-coflow-at-a-time baselines.  Needs a fabric
  // wide enough for cross-coflow concurrency to exist (on a handful of
  // ports every coflow conflicts with every other and sequential execution
  // is already near-optimal), so this uses the trace generator's mix.
  int wins_vs_lp = 0;
  int wins_vs_sebf = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    GeneratorOptions g;
    g.num_ports = 24;
    g.num_coflows = 30;
    g.seed = 176 + t;
    g.delta = kDelta;
    g.c_threshold = kC;
    const auto coflows = generate_workload(g);
    const double reco = reco_mul_pipeline(coflows, kDelta, kC).total_weighted_cct;
    if (lp_ii_gb(coflows, kDelta).total_weighted_cct > reco) ++wins_vs_lp;
    if (sebf_solstice(coflows, kDelta).total_weighted_cct > reco) ++wins_vs_sebf;
  }
  EXPECT_GE(wins_vs_lp, 4);
  EXPECT_GE(wins_vs_sebf, 4);
}

TEST(MultiBaselines, UnregularizedPipelineNeedsMoreReconfigurations) {
  const auto coflows = small_workload(181, 10, 6);
  const MultiScheduleResult reg = reco_mul_pipeline(coflows, kDelta, kC);
  const MultiScheduleResult raw = unregularized_pipeline(coflows, kDelta);
  EXPECT_TRUE(is_port_feasible(raw.schedule));
  EXPECT_LE(reg.reconfigurations, raw.reconfigurations);
}

TEST(MultiBaselines, WeightsAffectTotalWeightedCct) {
  auto coflows = small_workload(182, 6, 4);
  const double base = reco_mul_pipeline(coflows, kDelta, kC).total_weighted_cct;
  for (Coflow& c : coflows) c.weight *= 2.0;
  const double doubled = reco_mul_pipeline(coflows, kDelta, kC).total_weighted_cct;
  EXPECT_NEAR(doubled, 2.0 * base, 1e-6 * base);
}

}  // namespace
}  // namespace reco
