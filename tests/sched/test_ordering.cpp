#include "sched/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/slice.hpp"
#include "sched/packet_scheduler.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

Coflow make_coflow(int id, double weight, const Matrix& demand) {
  Coflow c;
  c.id = id;
  c.weight = weight;
  c.demand = demand;
  return c;
}

bool is_permutation_of_indices(const std::vector<int>& order, std::size_t n) {
  if (order.size() != n) return false;
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i) {
    if (sorted[i] != static_cast<int>(i)) return false;
  }
  return true;
}

TEST(Ordering, SebfSortsByBottleneck) {
  Matrix big(2);
  big.at(0, 0) = 9.0;
  Matrix small(2);
  small.at(0, 0) = 1.0;
  const std::vector<Coflow> coflows{make_coflow(0, 1.0, big), make_coflow(1, 1.0, small)};
  EXPECT_EQ(sebf_order(coflows), (std::vector<int>{1, 0}));
}

TEST(Ordering, SebfStableOnTies) {
  Matrix d(2);
  d.at(0, 0) = 3.0;
  const std::vector<Coflow> coflows{make_coflow(0, 1.0, d), make_coflow(1, 1.0, d)};
  EXPECT_EQ(sebf_order(coflows), (std::vector<int>{0, 1}));
}

TEST(Ordering, BssiPrefersShortOnSharedPort) {
  // Equal weights, shared bottleneck: the long coflow should go last.
  Matrix big(2);
  big.at(0, 0) = 9.0;
  Matrix small(2);
  small.at(0, 0) = 1.0;
  const std::vector<Coflow> coflows{make_coflow(0, 1.0, big), make_coflow(1, 1.0, small)};
  EXPECT_EQ(bssi_order(coflows), (std::vector<int>{1, 0}));
}

TEST(Ordering, BssiRespectsWeights) {
  // Same demands; the high-weight coflow should come first.
  Matrix d(2);
  d.at(0, 0) = 4.0;
  const std::vector<Coflow> coflows{make_coflow(0, 0.01, d), make_coflow(1, 100.0, d)};
  EXPECT_EQ(bssi_order(coflows).front(), 1);
}

TEST(Ordering, BssiHandlesEmptyAndZeroCoflows) {
  EXPECT_TRUE(bssi_order({}).empty());
  const std::vector<Coflow> coflows{make_coflow(0, 1.0, Matrix(2)),
                                    make_coflow(1, 1.0, Matrix(2))};
  EXPECT_TRUE(is_permutation_of_indices(bssi_order(coflows), 2));
}

TEST(Ordering, AllPoliciesReturnPermutations) {
  Rng rng(131);
  const auto coflows = testing::random_workload(rng, 10, 5, 0.01, 4.0);
  for (OrderingPolicy p : {OrderingPolicy::kSebf, OrderingPolicy::kBssi, OrderingPolicy::kLp}) {
    EXPECT_TRUE(is_permutation_of_indices(order_coflows(coflows, p), coflows.size()));
  }
}

TEST(Ordering, BssiBeatsReverseBssiOnWeightedCct) {
  // Sanity for the primal-dual: its order should not be worse than its own
  // reversal for total weighted CCT under the packet scheduler.
  Rng rng(132);
  int wins = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const auto coflows = testing::random_workload(rng, 8, 4, 0.01, 4.0);
    std::vector<int> order = bssi_order(coflows);
    std::vector<int> reversed(order.rbegin(), order.rend());
    const auto cct_fwd =
        completion_times(packet_schedule(coflows, order), static_cast<int>(coflows.size()));
    const auto cct_rev =
        completion_times(packet_schedule(coflows, reversed), static_cast<int>(coflows.size()));
    if (total_weighted_cct(cct_fwd, coflows) <= total_weighted_cct(cct_rev, coflows) + 1e-9) {
      ++wins;
    }
  }
  EXPECT_GE(wins, 8) << "BSSI lost to its own reversal too often";
}

TEST(Ordering, LpOrderPrefersSmallJobs) {
  Matrix big(2);
  big.at(0, 0) = 8.0;
  Matrix small(2);
  small.at(0, 0) = 1.0;
  const std::vector<Coflow> coflows{make_coflow(0, 1.0, big), make_coflow(1, 1.0, small)};
  EXPECT_EQ(lp_order(coflows), (std::vector<int>{1, 0}));
}

}  // namespace
}  // namespace reco
