#include "sched/sunflow.hpp"

#include <gtest/gtest.h>

#include "core/lower_bound.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(Sunflow, EmptyDemand) {
  const SunflowResult r = sunflow(Matrix(3), 0.1);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_DOUBLE_EQ(r.cct, 0.0);
  EXPECT_EQ(r.reconfigurations, 0);
}

TEST(Sunflow, SingleFlowPaysOneSetup) {
  Matrix d(2);
  d.at(0, 1) = 5.0;
  const SunflowResult r = sunflow(d, 1.0);
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(r.schedule[0].start, 1.0);  // after its own setup
  EXPECT_DOUBLE_EQ(r.cct, 6.0);
  EXPECT_EQ(r.reconfigurations, 1);
}

TEST(Sunflow, DisjointFlowsOverlap) {
  // Not-all-stop: circuits on disjoint ports set up and run concurrently.
  Matrix d(2);
  d.at(0, 0) = 4.0;
  d.at(1, 1) = 4.0;
  const SunflowResult r = sunflow(d, 1.0);
  EXPECT_DOUBLE_EQ(r.cct, 5.0);
}

TEST(Sunflow, SamePortFlowsSerializeWithSetups) {
  Matrix d(2);
  d.at(0, 0) = 3.0;
  d.at(0, 1) = 2.0;  // same ingress
  const SunflowResult r = sunflow(d, 1.0);
  // LPT: 3 first ([1,4) after setup), then 2 ([5,7)).
  EXPECT_DOUBLE_EQ(r.cct, 7.0);
  EXPECT_EQ(r.reconfigurations, 2);
}

TEST(Sunflow, OneSlicePerFlowAndExactVolumes) {
  Rng rng(211);
  const Matrix d = testing::random_demand(rng, 6, 0.5, 0.5, 5.0);
  const SunflowResult r = sunflow(d, 0.1);
  EXPECT_EQ(static_cast<int>(r.schedule.size()), d.nnz());
  Matrix served(6);
  for (const FlowSlice& s : r.schedule) served.at(s.src, s.dst) += s.duration();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) EXPECT_NEAR(served.at(i, j), d.at(i, j), 1e-9);
  }
}

TEST(Sunflow, ScheduleIsPortFeasible) {
  Rng rng(212);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix d = testing::random_demand(rng, 8, 0.6, 0.2, 4.0);
    const SunflowResult r = sunflow(d, 0.05);
    EXPECT_TRUE(is_port_feasible(r.schedule)) << "trial " << trial;
  }
}

TEST(Sunflow, WithinTwiceLowerBoundPlusOneCircuit) {
  // Huang et al. prove 2-approximation against the not-all-stop optimum;
  // with backfilling list scheduling the certifiable surrogate is
  // 2 * (rho + tau*delta) plus one circuit occupancy of fragmentation.
  Rng rng(213);
  const Time delta = 0.1;
  for (int trial = 0; trial < 15; ++trial) {
    const Matrix d = testing::random_demand(rng, 7, 0.7, 0.3, 6.0);
    if (d.nnz() == 0) continue;
    const SunflowResult r = sunflow(d, delta);
    const Time slack = delta + d.max_entry();
    EXPECT_LE(r.cct, 2.0 * single_coflow_lower_bound(d, delta) + slack + 1e-9)
        << "trial " << trial;
  }
}

TEST(Sunflow, OrderAblationBothFeasible) {
  Rng rng(214);
  const Matrix d = testing::random_demand(rng, 6, 0.6, 0.5, 5.0);
  const SunflowResult lpt = sunflow(d, 0.1, SunflowOrder::kLongestFirst);
  const SunflowResult spt = sunflow(d, 0.1, SunflowOrder::kShortestFirst);
  EXPECT_TRUE(is_port_feasible(lpt.schedule));
  EXPECT_TRUE(is_port_feasible(spt.schedule));
  EXPECT_EQ(lpt.reconfigurations, spt.reconfigurations);
}

}  // namespace
}  // namespace reco
