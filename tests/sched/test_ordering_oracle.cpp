// Oracle tests: on tiny instances, enumerate every coflow permutation and
// compare the library's orderings against the true optimum of the
// non-preemptive packet schedule — the empirical teeth behind BSSI's
// 4-approximation claim.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/slice.hpp"
#include "sched/ordering.hpp"
#include "sched/packet_scheduler.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

double weighted_cct_of_order(const std::vector<Coflow>& coflows, const std::vector<int>& order) {
  const auto cct = completion_times(packet_schedule(coflows, order),
                                    static_cast<int>(coflows.size()));
  return total_weighted_cct(cct, coflows);
}

double brute_force_best_order(const std::vector<Coflow>& coflows) {
  std::vector<int> perm(coflows.size());
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, weighted_cct_of_order(coflows, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class OrderingOracle : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingOracle, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(OrderingOracle, BssiWithinFourOfOptimalPermutation) {
  Rng rng(700 + GetParam());
  const auto coflows = testing::random_workload(rng, 6, 4, 0.01, 4.0);
  const double opt = brute_force_best_order(coflows);
  const double bssi = weighted_cct_of_order(coflows, bssi_order(coflows));
  ASSERT_GT(opt, 0.0);
  // BSSI's guarantee is against the true scheduling optimum, which is <=
  // the best permutation's list schedule; 4x of the permutation optimum is
  // therefore implied (and in practice it sits within ~1.3x).
  EXPECT_LE(bssi, 4.0 * opt + 1e-9);
}

TEST_P(OrderingOracle, LpOrderAlsoWithinFourOfOptimal) {
  Rng rng(800 + GetParam());
  const auto coflows = testing::random_workload(rng, 5, 4, 0.01, 4.0);
  const double opt = brute_force_best_order(coflows);
  const double lp = weighted_cct_of_order(coflows, lp_order(coflows));
  EXPECT_LE(lp, 4.0 * opt + 1e-9);
}

TEST(OrderingOracle, BssiNearOptimalOnAverage) {
  // Aggregate tightness: mean BSSI/OPT over many tiny instances stays far
  // below the worst-case 4.
  Rng rng(901);
  double ratio_sum = 0.0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const auto coflows = testing::random_workload(rng, 6, 4, 0.01, 4.0);
    const double opt = brute_force_best_order(coflows);
    ratio_sum += weighted_cct_of_order(coflows, bssi_order(coflows)) / opt;
  }
  EXPECT_LT(ratio_sum / trials, 1.5);
}

}  // namespace
}  // namespace reco
