// Unit tests for the incremental replan engine (OnlineCore), the policy
// factory, and the decision-latency sketch — including the drain-replan
// demand-conservation property: at every commit boundary, delivered volume
// plus outstanding residual equals total submitted demand.
#include "sched/online_core.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/coflow.hpp"
#include "trace/generator.hpp"

namespace reco {
namespace {

constexpr Time kInf = std::numeric_limits<Time>::infinity();

std::vector<Coflow> small_workload(std::uint64_t seed, int k = 6, int n = 8) {
  GeneratorOptions o;
  o.num_ports = n;
  o.num_coflows = k;
  o.seed = seed;
  return generate_workload(o);
}

TEST(OnlinePolicyFactory, NamesAndFlags) {
  const auto epoch = make_online_policy(OnlinePolicyKind::kEpochRecoMul);
  EXPECT_STREQ(epoch->name(), "epoch-reco-mul");
  EXPECT_FALSE(epoch->preempt_on_arrival());
  EXPECT_FALSE(epoch->serialize_batch());

  const auto fifo = make_online_policy(OnlinePolicyKind::kFifoRecoSin);
  EXPECT_STREQ(fifo->name(), "fifo-reco-sin");
  EXPECT_FALSE(fifo->preempt_on_arrival());
  EXPECT_TRUE(fifo->serialize_batch());

  const auto drain = make_online_policy(OnlinePolicyKind::kDrainReplanRecoMul);
  EXPECT_STREQ(drain->name(), "drain-replan-reco-mul");
  EXPECT_TRUE(drain->preempt_on_arrival());
  EXPECT_FALSE(drain->serialize_batch());
}

TEST(OnlinePolicyFactory, ToStringCoversEveryKind) {
  EXPECT_STREQ(to_string(OnlinePolicyKind::kEpochRecoMul), "epoch-reco-mul");
  EXPECT_STREQ(to_string(OnlinePolicyKind::kFifoRecoSin), "fifo-reco-sin");
  EXPECT_STREQ(to_string(OnlinePolicyKind::kDrainReplanRecoMul), "drain-replan-reco-mul");
}

TEST(DecisionLatencyRecorder, CountsMeanAndMax) {
  DecisionLatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.mean_us(), 0.0);
  r.record_us(3.0);
  r.record_us(5.0);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_DOUBLE_EQ(r.mean_us(), 4.0);
  EXPECT_DOUBLE_EQ(r.max_us(), 5.0);
}

TEST(DecisionLatencyRecorder, QuantilesInterpolateAndClampToObservedRange) {
  DecisionLatencyRecorder r;
  // 3us lands in the (2, 4] bucket; 100us in (64, 128].  Quantiles are
  // linearly interpolated within the hit bucket (shared
  // obs::quantile_from_buckets math) and clamped to [min, max] observed.
  for (int i = 0; i < 99; ++i) r.record_us(3.0);
  r.record_us(100.0);
  EXPECT_NEAR(r.quantile_us(0.5), 2.0 + 2.0 * 50.0 / 99.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.quantile_us(0.99), 4.0);
  EXPECT_DOUBLE_EQ(r.quantile_us(1.0), 100.0);  // clamped to the observed max
  EXPECT_DOUBLE_EQ(r.min_us(), 3.0);
  EXPECT_LE(r.quantile_us(0.5), r.quantile_us(0.9));
  EXPECT_LE(r.quantile_us(0.9), r.quantile_us(1.0));
  // Every quantile stays within what was actually recorded.
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_GE(r.quantile_us(q), r.min_us());
    EXPECT_LE(r.quantile_us(q), r.max_us());
  }
}

// S2 regression: mid-flight epoch cuts must account served volume exactly
// once.  For every cut position, delivered + outstanding == submitted.
TEST(OnlineCore, DemandConservationAcrossMidFlightCuts) {
  const auto coflows = small_workload(311);
  const Time delta = 100e-6;
  for (const Time cut : {0.0, delta, 3 * delta, 20 * delta, kInf}) {
    OnlineCore core(OnlinePolicyKind::kDrainReplanRecoMul);
    for (const Coflow& c : coflows) core.submit(c);
    core.plan(0.0);
    Time now = core.commit(cut);
    EXPECT_NEAR(core.stats().delivered_total + core.outstanding(), core.stats().demand_total,
                1e-6)
        << "cut=" << cut;
    // Drain the residual set to completion: conservation must hold at
    // every subsequent commit boundary too.
    int rounds = 0;
    while (!core.idle() && rounds < 100) {
      core.plan(now);
      now += core.commit(kInf);
      EXPECT_NEAR(core.stats().delivered_total + core.outstanding(), core.stats().demand_total,
                  1e-6);
      ++rounds;
    }
    EXPECT_TRUE(core.idle()) << "cut=" << cut;
    EXPECT_EQ(core.stats().finished, coflows.size());
    EXPECT_NEAR(core.stats().delivered_total, core.stats().demand_total, 1e-6);
    EXPECT_DOUBLE_EQ(core.outstanding(), 0.0);
    for (Time cct : core.cct_by_seq()) EXPECT_GE(cct, 0.0);
  }
}

// A cancelled-but-started slice is exactly the kept prefix: committing the
// same plan twice (cut, then the rest) must not double-count any volume.
TEST(OnlineCore, CutThenResumeNeverDoubleCounts) {
  const auto coflows = small_workload(312, 4, 6);
  OnlineCore core(OnlinePolicyKind::kDrainReplanRecoMul);
  for (const Coflow& c : coflows) core.submit(c);
  const Time makespan = core.plan(0.0);
  const Time cut = makespan / 2;
  Time now = core.commit(cut);
  const Time delivered_at_cut = core.stats().delivered_total;
  EXPECT_GT(delivered_at_cut, 0.0);
  EXPECT_LT(delivered_at_cut, core.stats().demand_total + 1e-9);
  int rounds = 0;
  while (!core.idle() && rounds < 100) {
    core.plan(now);
    now += core.commit(kInf);
    ++rounds;
  }
  // Total delivered equals total demand — served-once accounting held
  // across the cut/resume boundary.
  EXPECT_NEAR(core.stats().delivered_total, core.stats().demand_total, 1e-6);
}

TEST(OnlineCore, SlotRecyclingKeepsAllocationsFlat) {
  const auto coflows = small_workload(313, 2, 6);
  OnlineCoreOptions options;
  // Soak configuration: the unbounded result buffers are the only state
  // allowed to grow with stream length, so turn them off to expose the
  // engine's own footprint.
  options.record_schedule = false;
  options.record_cct = false;
  OnlineCore core(OnlinePolicyKind::kFifoRecoSin, options);
  core.reserve(64);
  std::uint64_t allocs_after_warmup = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (const Coflow& c : coflows) core.submit(c);
    while (!core.idle()) core.step_fifo(0.0);
    if (cycle == 9) allocs_after_warmup = core.stats().alloc_events;
  }
  EXPECT_GT(core.stats().slot_reuses, 0u);
  // After warm-up every cycle reuses recycled slots and pre-grown scratch:
  // the capacity high-water mark must not move again.
  EXPECT_EQ(core.stats().alloc_events, allocs_after_warmup);
}

TEST(OnlineCore, DigestIsDeterministic) {
  const auto coflows = small_workload(314);
  auto run = [&] {
    OnlineCore core(OnlinePolicyKind::kEpochRecoMul);
    for (const Coflow& c : coflows) core.submit(c);
    core.plan(0.0);
    core.commit(kInf);
    return core.digest();
  };
  const std::uint64_t first = run();
  EXPECT_NE(first, 14695981039346656037ULL);  // something was emitted
  EXPECT_EQ(run(), first);
}

TEST(OnlineCore, PlanRejectsProtocolViolations) {
  OnlineCore fifo(OnlinePolicyKind::kFifoRecoSin);
  EXPECT_THROW(fifo.plan(0.0), std::logic_error);  // serialized policy

  OnlineCore batch(OnlinePolicyKind::kEpochRecoMul);
  EXPECT_THROW(batch.plan(0.0), std::logic_error);  // empty live set

  const auto coflows = small_workload(315, 2, 6);
  for (const Coflow& c : coflows) batch.submit(c);
  batch.plan(0.0);
  EXPECT_THROW(batch.plan(0.0), std::logic_error);  // plan outstanding
  batch.commit(kInf);
}

}  // namespace
}  // namespace reco
