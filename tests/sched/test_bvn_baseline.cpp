#include "sched/bvn_baseline.hpp"

#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "sched/reco_sin.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(BvnBaseline, EmptyDemand) {
  EXPECT_EQ(bvn_baseline(Matrix(3)).num_assignments(), 0);
}

TEST(BvnBaseline, SatisfiesDemand) {
  Rng rng(121);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix d = testing::random_demand(rng, 7, 0.5, 0.2, 5.0);
    const CircuitSchedule s = bvn_baseline(d);
    EXPECT_TRUE(s.is_valid(7)) << "trial " << trial;
    EXPECT_TRUE(execute_all_stop(s, d, 0.05).satisfied) << "trial " << trial;
  }
}

TEST(BvnBaseline, ZeroDeltaTransmissionIsOptimal) {
  // With delta = 0 plain BvN is optimal (Qiu-Stein-Zhong): executed CCT
  // equals rho exactly.
  Rng rng(122);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix d = testing::random_demand(rng, 6, 0.6, 0.4, 6.0);
    if (d.nnz() == 0) continue;
    const ExecutionResult r = execute_all_stop(bvn_baseline(d), d, 0.0);
    ASSERT_TRUE(r.satisfied);
    EXPECT_NEAR(r.cct, d.rho(), 1e-6) << "trial " << trial;
  }
}

TEST(BvnBaseline, TheoremOneBlowupOnAdversarialMatrix) {
  // Theorem 1's construction in spirit: tiny ragged demands make plain BvN
  // pay a reconfiguration per permutation while Reco-Sin collapses them.
  Rng rng(123);
  const Time delta = 10.0;  // huge reconfiguration cost vs. tiny demands
  Matrix d(8);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) d.at(i, j) = rng.uniform(0.1, 1.0);
  }
  const ExecutionResult plain = execute_all_stop(bvn_baseline(d), d, delta);
  const ExecutionResult reco = execute_all_stop(reco_sin(d, delta), d, delta);
  ASSERT_TRUE(plain.satisfied && reco.satisfied);
  // Reco-Sin needs exactly N establishments here; plain BvN needs ~N^2.
  EXPECT_EQ(reco.reconfigurations, 8);
  EXPECT_GT(plain.reconfigurations, 3 * reco.reconfigurations);
  EXPECT_GT(plain.cct, 2.0 * reco.cct);
}

}  // namespace
}  // namespace reco
