#include "sched/reco_sin.hpp"

#include <gtest/gtest.h>

#include "core/lower_bound.hpp"
#include "ocs/all_stop_executor.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(RecoSin, EmptyDemand) {
  EXPECT_EQ(reco_sin(Matrix(4), 1.0).num_assignments(), 0);
}

TEST(RecoSin, SingleFlow) {
  Matrix d(3);
  d.at(0, 2) = 5.0;
  const CircuitSchedule s = reco_sin(d, 1.0);
  const ExecutionResult r = execute_all_stop(s, d, 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 1);
  EXPECT_DOUBLE_EQ(r.cct, 6.0);  // delta + the flow itself (early stop at 5)
}

TEST(RecoSin, ScheduleSatisfiesDemand) {
  Rng rng(101);
  for (int trial = 0; trial < 15; ++trial) {
    const Matrix d = testing::random_demand(rng, 8, 0.5, 0.4, 10.0);
    const CircuitSchedule s = reco_sin(d, 0.1);
    EXPECT_TRUE(s.is_valid(8)) << "trial " << trial;
    EXPECT_TRUE(s.satisfies(d)) << "trial " << trial;
    EXPECT_TRUE(execute_all_stop(s, d, 0.1).satisfied) << "trial " << trial;
  }
}

TEST(RecoSin, Lemma1ReconfigurationAtMostTransmission) {
  // t'_conf <= t'_trans on the *planned* schedule: every coefficient is a
  // multiple of delta, so each assignment pays for its own reconfiguration.
  Rng rng(102);
  const Time delta = 0.05;
  for (int trial = 0; trial < 15; ++trial) {
    const Matrix d = testing::random_demand(rng, 7, 0.6, 0.2, 5.0);
    const CircuitSchedule s = reco_sin(d, delta);
    const Time planned_conf = static_cast<Time>(s.num_assignments()) * delta;
    EXPECT_LE(planned_conf, s.planned_transmission_time() + 1e-9) << "trial " << trial;
    for (const auto& a : s.assignments) EXPECT_GE(a.duration, delta - 1e-9);
  }
}

class RecoSinTheorem2 : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(DeltaSweep, RecoSinTheorem2,
                         ::testing::Values(0.01, 0.05, 0.25, 1.0, 5.0));

TEST_P(RecoSinTheorem2, ExecutedCctWithinTwiceLowerBound) {
  // Theorem 2 (T' <= 2 T*) via the certifiable surrogate T* >= rho + tau*delta:
  // executed CCT must be <= 2 * (rho + tau*delta).
  const Time delta = GetParam();
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix d = testing::random_demand(rng, 6, 0.7, 0.3, 8.0);
    if (d.nnz() == 0) continue;
    const CircuitSchedule s = reco_sin(d, delta);
    const ExecutionResult r = execute_all_stop(s, d, delta);
    ASSERT_TRUE(r.satisfied);
    const Time lb = single_coflow_lower_bound(d, delta);
    EXPECT_LE(r.cct, 2.0 * lb + 1e-7) << "trial " << trial << " delta " << delta;
  }
}

TEST(RecoSin, ExactBottleneckPolicyAlsoWithinBound) {
  Rng rng(104);
  const Time delta = 0.2;
  const Matrix d = testing::random_demand(rng, 5, 0.8, 0.5, 6.0);
  const CircuitSchedule s = reco_sin(d, delta, BvnPolicy::kExactBottleneck);
  const ExecutionResult r = execute_all_stop(s, d, delta);
  EXPECT_TRUE(r.satisfied);
  EXPECT_LE(r.cct, 2.0 * single_coflow_lower_bound(d, delta) + 1e-7);
}

TEST(RecoSin, FewAssignmentsOnNearUniformMatrix) {
  // A dense matrix whose entries all regularize to the same value needs
  // exactly N establishments — the best case regularization creates.
  Rng rng(105);
  Matrix d(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) d.at(i, j) = rng.uniform(1.01, 1.99);
  }
  const CircuitSchedule s = reco_sin(d, 2.0);  // everything regularizes to 2
  EXPECT_EQ(s.num_assignments(), 6);
}

TEST(RecoSin, MicrosecondScaleWorks) {
  Rng rng(106);
  const Time delta = 100e-6;
  const Matrix d = testing::random_demand(rng, 6, 0.5, 4 * delta, 100 * delta);
  const CircuitSchedule s = reco_sin(d, delta);
  const ExecutionResult r = execute_all_stop(s, d, delta);
  EXPECT_TRUE(r.satisfied);
  EXPECT_LE(r.cct, 2.0 * single_coflow_lower_bound(d, delta) + 1e-9);
}

}  // namespace
}  // namespace reco
