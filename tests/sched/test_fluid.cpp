#include "sched/fluid.hpp"

#include <gtest/gtest.h>

#include "core/slice.hpp"
#include "sched/ordering.hpp"
#include "sched/packet_scheduler.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

Coflow make_coflow(int id, const Matrix& d, double w = 1.0) {
  Coflow c;
  c.id = id;
  c.weight = w;
  c.demand = d;
  return c;
}

TEST(Fluid, EmptyWorkload) {
  const FluidScheduleResult r = fluid_packet_schedule({}, {});
  EXPECT_TRUE(r.cct.empty());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST(Fluid, SingleCoflowFinishesAtItsBottleneck) {
  // MADD: the coflow completes exactly at rho.
  const Matrix d = Matrix::from_rows({{3, 1}, {0, 2}});
  const auto r = fluid_packet_schedule({make_coflow(0, d)}, {0});
  EXPECT_NEAR(r.cct[0], d.rho(), 1e-9);
}

TEST(Fluid, DisjointCoflowsRunConcurrently) {
  Matrix a(3);
  a.at(0, 0) = 4.0;
  Matrix b(3);
  b.at(1, 1) = 4.0;
  const auto r = fluid_packet_schedule({make_coflow(0, a), make_coflow(1, b)}, {0, 1});
  EXPECT_NEAR(r.cct[0], 4.0, 1e-9);
  EXPECT_NEAR(r.cct[1], 4.0, 1e-9);
  EXPECT_NEAR(r.makespan, 4.0, 1e-9);
}

TEST(Fluid, PrioritySharingOnSharedPort) {
  // Both coflows need port (0, in).  High priority runs at full rate and
  // finishes at 2; the other then finishes at 2 + 4 = 6.
  Matrix a(2);
  a.at(0, 0) = 2.0;
  Matrix b(2);
  b.at(0, 1) = 4.0;
  const auto r = fluid_packet_schedule({make_coflow(0, a), make_coflow(1, b)}, {0, 1});
  EXPECT_NEAR(r.cct[0], 2.0, 1e-9);
  EXPECT_NEAR(r.cct[1], 6.0, 1e-9);
}

TEST(Fluid, PartialCapacitySharing) {
  // Coflow 0 uses half of port 0's ingress capacity (its own bottleneck is
  // elsewhere); coflow 1 can use the other half concurrently.
  Matrix a(2);
  a.at(0, 0) = 1.0;
  a.at(1, 0) = 1.0;  // egress port 0 is coflow 0's bottleneck: 2 units
  Matrix b(2);
  b.at(0, 1) = 2.0;  // shares ingress 0 with coflow 0
  const auto r = fluid_packet_schedule({make_coflow(0, a), make_coflow(1, b)}, {0, 1});
  EXPECT_NEAR(r.cct[0], 2.0, 1e-9);
  // Coflow 1 gets 1 - 1/2 = 1/2 rate until t=2 (sends 1), then full rate.
  EXPECT_NEAR(r.cct[1], 3.0, 1e-9);
}

TEST(Fluid, TopPriorityCoflowFinishesAtItsBottleneck) {
  // The head of the priority order always holds full capacity: MADD
  // completes it in exactly rho — the one guarantee strict-priority fluid
  // sharing provides unconditionally.
  Rng rng(411);
  for (int trial = 0; trial < 10; ++trial) {
    const auto coflows = testing::random_workload(rng, 8, 5, 0.01, 4.0);
    const auto order = bssi_order(coflows);
    const auto fluid = fluid_packet_schedule(coflows, order);
    const Coflow& top = coflows[order.front()];
    EXPECT_NEAR(fluid.cct[top.id], top.demand.rho(), 1e-6) << "trial " << trial;
    for (const Coflow& c : coflows) {
      EXPECT_GE(fluid.cct[c.id], c.demand.rho() - 1e-6) << "trial " << trial;
    }
  }
}

TEST(Fluid, EveryCoflowEventuallyCompletes) {
  Rng rng(413);
  const auto coflows = testing::random_workload(rng, 10, 6, 0.01, 4.0);
  const auto r = fluid_packet_schedule(coflows, sebf_order(coflows));
  for (const Coflow& c : coflows) {
    EXPECT_GT(r.cct[c.id], 0.0);
    EXPECT_LE(r.cct[c.id], r.makespan + 1e-9);
  }
}

TEST(Fluid, WeightedTotalConsistent) {
  Rng rng(412);
  const auto coflows = testing::random_workload(rng, 5, 4, 0.01, 4.0);
  const auto r = fluid_packet_schedule(coflows, sebf_order(coflows));
  double expected = 0.0;
  for (const Coflow& c : coflows) expected += c.weight * r.cct[c.id];
  EXPECT_NEAR(r.total_weighted_cct, expected, 1e-9);
}

}  // namespace
}  // namespace reco
