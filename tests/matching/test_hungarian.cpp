#include "matching/hungarian.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

double brute_force_min_cost(const Matrix& cost) {
  const int n = cost.n();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cost.at(i, perm[i]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, TrivialDiagonal) {
  const Matrix cost = Matrix::from_rows({{1, 9}, {9, 1}});
  const AssignmentResult r = min_cost_assignment(cost);
  EXPECT_DOUBLE_EQ(r.total, 2.0);
  EXPECT_EQ(r.col_of_row[0], 0);
  EXPECT_EQ(r.col_of_row[1], 1);
}

TEST(Hungarian, AntiDiagonalForced) {
  const Matrix cost = Matrix::from_rows({{9, 1}, {1, 9}});
  EXPECT_DOUBLE_EQ(min_cost_assignment(cost).total, 2.0);
}

TEST(Hungarian, AssignmentIsPermutation) {
  Rng rng(5);
  const Matrix cost = testing::random_demand(rng, 7, 1.0, 0.0, 10.0);
  const AssignmentResult r = min_cost_assignment(cost);
  std::vector<char> used(7, 0);
  for (int j : r.col_of_row) {
    ASSERT_GE(j, 0);
    ASSERT_LT(j, 7);
    EXPECT_FALSE(used[j]);
    used[j] = 1;
  }
}

TEST(Hungarian, MaxWeightNegatesCorrectly) {
  const Matrix w = Matrix::from_rows({{1, 9}, {9, 1}});
  const AssignmentResult r = max_weight_assignment(w);
  EXPECT_DOUBLE_EQ(r.total, 18.0);
  EXPECT_EQ(r.col_of_row[0], 1);
}

TEST(HungarianProperty, MatchesBruteForce) {
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = rng.uniform_int(2, 6);
    const Matrix cost = testing::random_demand(rng, n, 1.0, -5.0, 15.0);
    EXPECT_NEAR(min_cost_assignment(cost).total, brute_force_min_cost(cost), 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace reco
