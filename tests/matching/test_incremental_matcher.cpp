#include "matching/incremental_matcher.hpp"

#include <gtest/gtest.h>

#include "core/support_index.hpp"
#include "matching/hopcroft_karp.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(IncrementalMatcher, InitialRematchFindsMaximum) {
  const SupportIndex m(Matrix::from_rows({{5, 1}, {2, 8}}));
  IncrementalMatcher matcher(m, 0.5);
  EXPECT_EQ(matcher.rematch(), 2);
  EXPECT_TRUE(matcher.is_perfect());
}

TEST(IncrementalMatcher, ThresholdExcludesSmallEntries) {
  const SupportIndex m(Matrix::from_rows({{5, 1}, {2, 8}}));
  IncrementalMatcher matcher(m, 6.0);
  EXPECT_EQ(matcher.rematch(), 1);  // only the 8 qualifies
  EXPECT_FALSE(matcher.is_perfect());
}

TEST(IncrementalMatcher, LoweringThresholdGrowsMatching) {
  const SupportIndex m(Matrix::from_rows({{5, 1}, {2, 8}}));
  IncrementalMatcher matcher(m, 6.0);
  matcher.rematch();
  matcher.set_threshold(2.0);
  EXPECT_EQ(matcher.rematch(), 2);
}

TEST(IncrementalMatcher, RaisingThresholdDropsInvalidEdges) {
  const SupportIndex m(Matrix::from_rows({{5, 1}, {2, 8}}));
  IncrementalMatcher matcher(m, 0.5);
  matcher.rematch();
  matcher.set_threshold(6.0);
  // Whatever perfect matching was found, at most the (1,1)=8 edge survives.
  EXPECT_LE(matcher.size(), 1);
  EXPECT_EQ(matcher.rematch(), 1);
  EXPECT_EQ(matcher.matched_col(1), 1);
}

TEST(IncrementalMatcher, EntryChangeUnmatchesZeroedEdge) {
  SupportIndex m(Matrix::from_rows({{5, 0}, {0, 8}}));
  IncrementalMatcher matcher(m, 0.5);
  matcher.rematch();
  ASSERT_TRUE(matcher.is_perfect());
  m.set(0, 0, 0.0);
  matcher.on_entry_changed(0, 0);
  EXPECT_EQ(matcher.size(), 1);
  // No alternative for row 0 now.
  EXPECT_EQ(matcher.rematch(), 1);
}

TEST(IncrementalMatcher, RepairViaAugmentingPath) {
  SupportIndex m(Matrix::from_rows({{5, 3}, {4, 0}}));
  IncrementalMatcher matcher(m, 0.5);
  ASSERT_EQ(matcher.rematch(), 2);  // must be (0,1),(1,0)
  // Kill (1,0): row 1 has no other edge -> matching drops to 1 permanently.
  m.set(1, 0, 0.0);
  matcher.on_entry_changed(1, 0);
  EXPECT_EQ(matcher.rematch(), 1);
  // Row 0 should still be matched to something present.
  EXPECT_NE(matcher.matched_col(0), -1);
}

TEST(IncrementalMatcher, PairsSnapshot) {
  const SupportIndex m(Matrix::from_rows({{1, 0}, {0, 1}}));
  IncrementalMatcher matcher(m, 0.5);
  matcher.rematch();
  const auto pairs = matcher.pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(pairs[1], (std::pair<int, int>{1, 1}));
}

TEST(IncrementalMatcherProperty, AgreesWithHopcroftKarpUnderRandomDeletions) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    SupportIndex m(testing::random_demand(rng, 8, 0.6, 1.0, 10.0));
    IncrementalMatcher matcher(m, 0.5);
    matcher.rematch();
    for (int step = 0; step < 12; ++step) {
      // Delete a random entry (nonzero or not).
      const int i = rng.uniform_int(8);
      const int j = rng.uniform_int(8);
      m.set(i, j, 0.0);
      matcher.on_entry_changed(i, j);
      matcher.rematch();
      EXPECT_EQ(matcher.size(), threshold_matching(m, 0.5).size)
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(IncrementalMatcherProperty, SupportIterationMatchesDenseMatching) {
  // The sparse matcher probes only support neighbours; it must still find
  // a maximum matching of the same size the dense adjacency build does.
  Rng rng(97);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix dense = testing::random_demand(rng, 10, 0.3, 1.0, 10.0);
    const SupportIndex idx(dense);
    IncrementalMatcher sparse(idx, 0.5);
    sparse.rematch();
    EXPECT_EQ(sparse.size(), threshold_matching(dense, 0.5).size) << "trial " << trial;
  }
}

}  // namespace
}  // namespace reco
