#include "matching/bottleneck.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

/// Oracle: max over all permutations of (min entry along the permutation,
/// permutations through a zero entry excluded).
double brute_force_bottleneck(const Matrix& m) {
  const int n = m.n();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 0.0;
  do {
    double mn = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) mn = std::min(mn, m.at(i, perm[i]));
    if (!approx_zero(mn)) best = std::max(best, mn);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Bottleneck, SimpleDiagonalWins) {
  const Matrix m = Matrix::from_rows({{5, 1}, {1, 5}});
  const auto r = bottleneck_perfect_matching(m);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->bottleneck, 5.0);
  EXPECT_EQ(r->pairs[0].second, 0);
  EXPECT_EQ(r->pairs[1].second, 1);
}

TEST(Bottleneck, ForcedThroughSmallEntry) {
  // Any perfect matching must use an entry of value 1.
  const Matrix m = Matrix::from_rows({{1, 9}, {0, 1}});
  const auto r = bottleneck_perfect_matching(m);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->bottleneck, 1.0);
}

TEST(Bottleneck, NoPerfectMatchingReturnsNullopt) {
  Matrix m(2);
  m.at(0, 0) = 1.0;
  m.at(1, 0) = 1.0;  // both rows need column 0
  EXPECT_FALSE(bottleneck_perfect_matching(m).has_value());
}

TEST(Bottleneck, AllZeroMatrixReturnsNullopt) {
  EXPECT_FALSE(bottleneck_perfect_matching(Matrix(3)).has_value());
}

TEST(Bottleneck, MatchingIsPerfectAndOnSupport) {
  Rng rng(3);
  const Matrix m = testing::random_doubly_stochastic(rng, 6, 4, 1.0, 5.0);
  const auto r = bottleneck_perfect_matching(m);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->pairs.size(), 6u);
  std::vector<char> col_used(6, 0);
  for (const auto& [i, j] : r->pairs) {
    EXPECT_GE(m.at(i, j), r->bottleneck - kTimeEps);
    EXPECT_FALSE(col_used[j]);
    col_used[j] = 1;
  }
}

TEST(BottleneckProperty, MatchesBruteForce) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = rng.uniform_int(2, 5);
    Matrix m = testing::random_demand(rng, n, 0.8, 1.0, 20.0);
    const double oracle = brute_force_bottleneck(m);
    const auto r = bottleneck_perfect_matching(m);
    if (oracle == 0.0) {
      EXPECT_FALSE(r.has_value()) << "trial " << trial;
    } else {
      ASSERT_TRUE(r.has_value()) << "trial " << trial;
      EXPECT_NEAR(r->bottleneck, oracle, 1e-9) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace reco
