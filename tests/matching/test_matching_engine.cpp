// Unit tests for the amortized matching engine: the epsilon-dedup chain
// regression, the deep path-shaped stress the old recursive DFS could not
// guarantee, and the zero-allocation steady state of warm peel loops.
#include "matching/matching_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "bvn/dense_reference.hpp"
#include "core/matrix.hpp"
#include "core/support_index.hpp"
#include "matching/bottleneck.hpp"
#include "obs/obs.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(MatchingEngine, EpsilonDedupChainRegression) {
  // Values 1.0, 1.0 + 0.8e-9, 1.0 + 1.6e-9 form a transitive near-equal
  // chain: consecutive gaps are below kTimeEps (1e-9) but the endpoints
  // differ by more.  The seed's pairwise-approx std::unique collapsed the
  // middle value into 1.0, leaving the ladder {1.0, 1.0 + 1.6e-9}; the
  // top is infeasible (row 0 maxes out at 1.0 < t - eps), so the seed
  // reported bottleneck 1.0.  With exact dedup the ladder keeps
  // 1.0 + 0.8e-9, which IS feasible: every entry is >= t - eps.
  const double mid = 1.0 + 0.8e-9;
  const double top = 1.0 + 1.6e-9;
  Matrix m(3);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = mid;
  m.at(2, 2) = top;

  const auto engine = bottleneck_perfect_matching(m);
  ASSERT_TRUE(engine.has_value());
  EXPECT_DOUBLE_EQ(engine->bottleneck, mid);

  // The retained reference oracle carries the same fix.
  const auto ref = dense_reference::bottleneck_perfect_matching_reference(m);
  ASSERT_TRUE(ref.has_value());
  EXPECT_DOUBLE_EQ(ref->bottleneck, mid);
  EXPECT_EQ(engine->pairs, ref->pairs);

  // Sparse overloads agree.
  const SupportIndex idx(m);
  const auto sparse = bottleneck_perfect_matching(idx);
  ASSERT_TRUE(sparse.has_value());
  EXPECT_DOUBLE_EQ(sparse->bottleneck, mid);
  EXPECT_EQ(sparse->pairs, engine->pairs);
}

TEST(MatchingEngine, PathShapedStressN512DeepAugmentingPath) {
  // Path-shaped instance whose final augmentation is one alternating path
  // through all 512 rows: rows 0..n-2 carry edges (i, i) = 1 and
  // (i, i+1) = 2; row n-1 carries only (n-1, 0) = 1.  Phase one matches
  // every row i to column i, then row n-1 forces the full-length flip —
  // the DFS the seed ran as 512 nested recursive calls now runs on the
  // scratch's explicit frame stack.
  const int n = 512;
  Matrix m(n);
  for (int i = 0; i < n - 1; ++i) {
    m.at(i, i) = 1.0;
    m.at(i, i + 1) = 2.0;
  }
  m.at(n - 1, 0) = 1.0;

  MatchingScratch s;
  ASSERT_TRUE(bottleneck_solve(m, s));
  // The unique perfect matching at the bottleneck: row n-1 must take
  // column 0, cascading every other row onto its (i, i+1) edge — but the
  // bottleneck is capped by row n-1's only value.
  EXPECT_DOUBLE_EQ(s.bottleneck, 1.0);
  EXPECT_EQ(s.matching_size, n);
  EXPECT_EQ(s.final_left[n - 1], 0);
  for (int i = 0; i < n - 1; ++i) EXPECT_EQ(s.final_left[i], i + 1);

  // Sparse overload walks the same deep path.
  MatchingScratch s2;
  ASSERT_TRUE(bottleneck_solve(SupportIndex(m), s2));
  EXPECT_DOUBLE_EQ(s2.bottleneck, 1.0);
  EXPECT_EQ(s2.final_left, s.final_left);
}

TEST(MatchingEngine, HallPruneSkipsProvablyInfeasibleLadderValues) {
  // Row n-1's single small edge is a Hall certificate: any threshold
  // above it is infeasible, so one failed probe should prune the entire
  // upper ladder instead of bisecting through it.
  const int n = 64;
  Matrix m(n);
  for (int i = 0; i < n - 1; ++i) {
    m.at(i, i) = 1.0;
    for (int j = 0; j < n; ++j) {
      if (j != i) m.at(i, j) = 2.0 + static_cast<double>(i * n + j) * 1e-3;
    }
  }
  m.at(n - 1, 0) = 1.0;
  MatchingScratch s;
  ASSERT_TRUE(bottleneck_solve(m, s));
  EXPECT_DOUBLE_EQ(s.bottleneck, 1.0);
  EXPECT_GE(s.stats.hall_prunes, 1u);
  EXPECT_GE(s.stats.probes_pruned, 1u);
  // The ladder has ~n^2 distinct values; without the prune the binary
  // search alone would need 1 + ceil(log2(n^2)) = 13 probes.
  EXPECT_LE(s.stats.probes, 8u);
}

TEST(MatchingEngine, SteadyStatePeelRoundsAllocateNothing) {
  // Drive a warm peel loop by hand: after the first rounds establish the
  // buffer high-water marks, every further solve must reuse the scratch
  // without touching the heap, and the obs counters must say so.
  obs::reset();
  obs::set_enabled(true);

  Rng rng(91);
  SupportIndex m(testing::random_doubly_stochastic(rng, 48, 14, 0.5, 4.0));
  MatchingScratch s;
  std::uint64_t allocs_after_warmup = 0;
  int rounds = 0;
  while (m.nnz() > 0 && bottleneck_solve(m, s)) {
    for (int i = 0; i < m.n(); ++i) {
      const int j = s.final_left[i];
      m.set(i, j, clamp_zero(m.at(i, j) - s.bottleneck));
    }
    ++rounds;
    if (rounds == 2) allocs_after_warmup = s.stats.alloc_events;
  }
  obs::set_enabled(false);

  ASSERT_GE(rounds, 5);
  // Zero per-call heap allocations once warm: the alloc count frozen
  // after round two never moves again.
  EXPECT_EQ(s.stats.alloc_events, allocs_after_warmup);
  EXPECT_GE(s.stats.scratch_reuses, s.stats.solves - allocs_after_warmup);
  EXPECT_EQ(s.stats.scratch_reuses + s.stats.alloc_events, s.stats.solves);
  // Rounds after the first re-enter the ladder with the previous round's
  // matching.  Matched entries that hit exact zero drop out — on
  // permutation-sum inputs an occasional round loses its whole matching
  // at once — but most rounds must warm-start.
  EXPECT_GE(s.stats.warm_start_hits, static_cast<std::uint64_t>(rounds / 2));
  EXPECT_GT(s.stats.warm_edges_kept, 0u);

  // The same accounting is visible through the obs metric catalogue.
  EXPECT_DOUBLE_EQ(obs::metrics().counter("matching.engine.scratch_reuses").value(),
                   static_cast<double>(s.stats.scratch_reuses));
  EXPECT_DOUBLE_EQ(obs::metrics().counter("matching.engine.scratch_allocs").value(),
                   static_cast<double>(s.stats.alloc_events));
  EXPECT_DOUBLE_EQ(obs::metrics().counter("matching.engine.solves").value(),
                   static_cast<double>(s.stats.solves));
  EXPECT_DOUBLE_EQ(obs::metrics().counter("matching.engine.warm_start_hits").value(),
                   static_cast<double>(s.stats.warm_start_hits));
}

TEST(MatchingEngine, ScratchSurvivesDimensionChanges) {
  // A warm seed from a different-sized matrix must be discarded, not
  // resized: stale match_right entries would point at truncated rows.
  Rng rng(17);
  MatchingScratch s;
  for (const int n : {16, 4, 32, 8}) {
    const Matrix m = testing::random_doubly_stochastic(rng, n, 6, 0.5, 2.0);
    ASSERT_TRUE(bottleneck_solve(m, s)) << "n=" << n;
    const auto ref = dense_reference::bottleneck_perfect_matching_reference(m);
    ASSERT_TRUE(ref.has_value()) << "n=" << n;
    EXPECT_EQ(s.bottleneck, ref->bottleneck) << "n=" << n;
    for (int i = 0; i < n; ++i) EXPECT_EQ(s.final_left[i], ref->pairs[i].second) << "n=" << n;
  }
}

}  // namespace
}  // namespace reco
