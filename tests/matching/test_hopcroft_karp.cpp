#include "matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

/// Brute-force maximum matching size by trying all column permutations
/// (only for tiny n) -- the oracle for property tests.
int brute_force_max_matching(int n, const std::vector<std::vector<int>>& adj) {
  std::vector<std::vector<char>> edge(n, std::vector<char>(n, 0));
  for (int i = 0; i < n; ++i) {
    for (int j : adj[i]) edge[i][j] = 1;
  }
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  int best = 0;
  do {
    int size = 0;
    for (int i = 0; i < n; ++i) size += edge[i][perm[i]];
    best = std::max(best, size);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HopcroftKarp, EmptyGraph) {
  const MatchingResult r = hopcroft_karp(3, 3, {{}, {}, {}});
  EXPECT_EQ(r.size, 0);
  EXPECT_FALSE(r.is_perfect());
}

TEST(HopcroftKarp, PerfectOnIdentity) {
  const MatchingResult r = hopcroft_karp(3, 3, {{0}, {1}, {2}});
  EXPECT_EQ(r.size, 3);
  EXPECT_TRUE(r.is_perfect());
  EXPECT_EQ(r.match_left[1], 1);
  EXPECT_EQ(r.match_right[2], 2);
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // Greedy 0->0 would block 1; HK must find the augmenting path.
  const MatchingResult r = hopcroft_karp(2, 2, {{0, 1}, {0}});
  EXPECT_EQ(r.size, 2);
}

TEST(HopcroftKarp, MatchingIsConsistent) {
  const MatchingResult r = hopcroft_karp(4, 4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(r.size, 4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(r.match_left[i], -1);
    EXPECT_EQ(r.match_right[r.match_left[i]], i);
  }
}

TEST(HopcroftKarp, RectangularGraph) {
  const MatchingResult r = hopcroft_karp(2, 3, {{0, 1, 2}, {2}});
  EXPECT_EQ(r.size, 2);
}

TEST(HopcroftKarpProperty, MatchesBruteForceOnRandomGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = rng.uniform_int(1, 6);
    std::vector<std::vector<int>> adj(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.4) adj[i].push_back(j);
      }
    }
    EXPECT_EQ(hopcroft_karp(n, n, adj).size, brute_force_max_matching(n, adj))
        << "trial " << trial;
  }
}

TEST(ThresholdHelpers, AdjacencyRespectsThreshold) {
  const Matrix m = Matrix::from_rows({{5, 1}, {2, 8}});
  const auto adj = threshold_adjacency(m, 2.0);
  EXPECT_EQ(adj[0], (std::vector<int>{0}));
  EXPECT_EQ(adj[1], (std::vector<int>{0, 1}));
}

TEST(ThresholdHelpers, PerfectMatchingAtThreshold) {
  const Matrix m = Matrix::from_rows({{5, 1}, {2, 8}});
  EXPECT_TRUE(has_perfect_matching_at(m, 2.0));   // (0,0) and (1,1)
  EXPECT_TRUE(has_perfect_matching_at(m, 5.0));   // (0,0) and (1,1)
  EXPECT_FALSE(has_perfect_matching_at(m, 6.0));  // only (1,1) survives
}

TEST(ThresholdHelpers, ZeroEntriesNeverEdges) {
  Matrix m(2);
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  EXPECT_TRUE(has_perfect_matching_at(m, 0.5));
  EXPECT_FALSE(has_perfect_matching_at(m, 1.5));
}

TEST(ThresholdHelpersProperty, PerfectMatchingExistsOnDoublyStochasticSupport) {
  // Birkhoff: every doubly stochastic matrix has a perfect matching on its
  // nonzero support.
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix m = testing::random_doubly_stochastic(rng, 8, 5, 0.5, 2.0);
    EXPECT_TRUE(has_perfect_matching_at(m, m.min_nonzero()));
  }
}

}  // namespace
}  // namespace reco
