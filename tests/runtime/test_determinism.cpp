// The determinism contract of the parallel runtime: for a fixed seed,
// every schedule, workload, and exported CSV byte is identical at
// RECO_THREADS = 1, 2, and 8.  This is what lets EXPERIMENTS.md quote one
// set of numbers regardless of the machine running the benches.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "sched/multi_baselines.hpp"
#include "stats/csv.hpp"
#include "trace/generator.hpp"

namespace reco {
namespace {

struct Snapshot {
  std::vector<Coflow> workload;
  std::string reco_mul_csv;
  std::string sebf_csv;
};

Snapshot run_at(int threads) {
  runtime::set_thread_count(threads);
  // The synthetic fb-trace workload at a fixed seed, through both
  // parallelized pipelines (per-coflow planning fan-out + parallel trace
  // synthesis).
  GeneratorOptions g;
  g.num_ports = 24;
  g.num_coflows = 40;
  g.seed = 20190707;
  Snapshot s;
  s.workload = generate_workload(g);
  const MultiScheduleResult mul = reco_mul_pipeline(s.workload, g.delta, g.c_threshold);
  const MultiScheduleResult sebf = sebf_solstice(s.workload, g.delta);
  std::ostringstream mul_csv, sebf_csv;
  write_slices_csv(mul_csv, mul.schedule);
  write_slices_csv(sebf_csv, sebf.schedule);
  s.reco_mul_csv = mul_csv.str();
  s.sebf_csv = sebf_csv.str();
  return s;
}

TEST(ParallelDeterminism, ThreadCountNeverChangesSchedulesOrCsv) {
  const Snapshot base = run_at(1);
  for (const int threads : {2, 8}) {
    const Snapshot other = run_at(threads);
    ASSERT_EQ(base.workload.size(), other.workload.size()) << threads << " threads";
    for (std::size_t k = 0; k < base.workload.size(); ++k) {
      EXPECT_EQ(base.workload[k].demand, other.workload[k].demand)
          << "coflow " << k << " at " << threads << " threads";
      EXPECT_DOUBLE_EQ(base.workload[k].weight, other.workload[k].weight);
      EXPECT_DOUBLE_EQ(base.workload[k].arrival, other.workload[k].arrival);
    }
    EXPECT_EQ(base.reco_mul_csv, other.reco_mul_csv) << threads << " threads";
    EXPECT_EQ(base.sebf_csv, other.sebf_csv) << threads << " threads";
  }
  runtime::set_thread_count(0);  // restore the env/hardware default
  EXPECT_FALSE(base.reco_mul_csv.empty());
  EXPECT_FALSE(base.sebf_csv.empty());
}

TEST(ParallelDeterminism, ArrivalProcessSurvivesParallelSynthesis) {
  // Poisson arrivals are prefix sums of per-coflow gaps; parallel synthesis
  // must reproduce the sequential clock exactly.
  GeneratorOptions g;
  g.num_ports = 16;
  g.num_coflows = 64;
  g.seed = 99;
  g.mean_interarrival = 0.5;
  runtime::set_thread_count(1);
  const auto seq = generate_workload(g);
  runtime::set_thread_count(8);
  const auto par = generate_workload(g);
  runtime::set_thread_count(0);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t k = 1; k < seq.size(); ++k) {
    EXPECT_GE(seq[k].arrival, seq[k - 1].arrival);  // monotone clock
  }
  for (std::size_t k = 0; k < seq.size(); ++k) {
    EXPECT_DOUBLE_EQ(seq[k].arrival, par[k].arrival) << "coflow " << k;
  }
}

}  // namespace
}  // namespace reco
