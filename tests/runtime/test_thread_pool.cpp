#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/parallel.hpp"

namespace reco::runtime {
namespace {

/// RAII: force a thread count for one test, restore the default after.
struct ScopedThreads {
  explicit ScopedThreads(int n) { set_thread_count(n); }
  ~ScopedThreads() { set_thread_count(0); }
};

TEST(ThreadPool, SubmittedJobsRun) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] {
      if (ran.fetch_add(1) + 1 == 20) {
        std::lock_guard<std::mutex> lock(mu);  // pair with the wait to avoid lost wakeups
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ran.load() == 20; });
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, SequentialPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  bool ran = false;
  pool.submit([&] { ran = true; });  // runs on the calling thread
  EXPECT_TRUE(ran);
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce) {
  ScopedThreads threads(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SingleThreadRunsOnCallerThread) {
  ScopedThreads threads(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  parallel_for(64, [&](int i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, PropagatesExceptions) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      parallel_for(100,
                   [&](int i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  ScopedThreads threads(4);
  std::atomic<int> total{0};
  parallel_for(8, [&](int) { parallel_for(8, [&](int) { total.fetch_add(1); }); });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelMap, PreservesInputOrder) {
  ScopedThreads threads(8);
  std::vector<int> items(500);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> out = parallel_map(items, [](const int& x) { return x * x; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], items[i] * items[i]);
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput) {
  const std::vector<int> none;
  EXPECT_TRUE(parallel_map(none, [](const int& x) { return x; }).empty());
}

TEST(Runtime, ThreadCountOverrideAndRestore) {
  set_thread_count(7);
  EXPECT_EQ(thread_count(), 7);
  EXPECT_EQ(global_pool().num_workers(), 6);  // caller is the 7th lane
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1);
}

}  // namespace
}  // namespace reco::runtime
