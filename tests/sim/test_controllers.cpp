// Controller-specific behaviours not covered by the fabric suites.
#include <gtest/gtest.h>

#include "sched/reco_sin.hpp"
#include "sim/fabric.hpp"
#include "sim/faults.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco::sim {
namespace {

TEST(Controllers, GreedyMaxWeightDayCapLimitsHolds) {
  Matrix d(2);
  d.at(0, 0) = 5.0;
  const Time delta = 0.1;
  // Uncapped: one establishment drains the flow.
  GreedyMaxWeightController uncapped(delta);
  const SimulationReport a = simulate_single_coflow(uncapped, d, delta);
  EXPECT_EQ(a.reconfigurations, 1);
  // Day = 10*delta = 1.0: five establishments of 1.0 each.
  GreedyMaxWeightController capped(delta, /*day_over_delta=*/10.0);
  const SimulationReport b = simulate_single_coflow(capped, d, delta);
  EXPECT_TRUE(b.satisfied);
  EXPECT_EQ(b.reconfigurations, 5);
  EXPECT_GT(b.cct, a.cct);  // extra setups cost time
}

TEST(Controllers, ReplayControllerSkipsDrainedEstablishments) {
  Matrix d(2);
  d.at(0, 0) = 1.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 1.0});
  s.assignments.push_back({{{0, 0}}, 1.0});  // drained by the time it's offered
  ReplayController controller(s);
  const SimulationReport r = simulate_single_coflow(controller, d, 0.1);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 1);
}

TEST(Controllers, AdaptiveRecoEmitsDeltaGranularHolds) {
  Rng rng(971);
  const Time delta = 0.05;
  const Matrix d = testing::random_demand(rng, 5, 0.6, 4 * delta, 40 * delta);
  AdaptiveRecoController controller(delta);
  const SimulationReport r = simulate_single_coflow(controller, d, delta);
  EXPECT_TRUE(r.satisfied);
  // Lemma-1 style: adaptive Reco re-regularizes each round, so the total
  // reconfiguration time never exceeds the transmission time.
  EXPECT_LE(r.reconfiguration_time, r.transmission_time + 1e-9);
}

// ---------------------------------------------------------------------------
// Hybrid replan-after-deadline (the campaign's third recovery policy).

Matrix hybrid_demand() {
  Matrix d(4);
  d.at(0, 1) = 2.0;
  d.at(0, 3) = 1.0;
  d.at(1, 2) = 3.0;
  d.at(2, 3) = 1.5;
  d.at(3, 0) = 2.5;
  d.at(2, 0) = 0.75;
  return d;
}

SimulationReport run_with_deadline(const Matrix& d, const FaultConfig& faults, Time deadline,
                                   int* replans_out = nullptr) {
  const Time delta = 0.05;
  FaultInjector injector(faults);
  RecoveringController controller(reco_sin(d, delta), delta, BvnPolicy::kMaxMinAmortized,
                                  deadline);
  const SimulationReport r = simulate_single_coflow(controller, d, delta, injector);
  if (replans_out != nullptr) *replans_out = controller.replans();
  return r;
}

TEST(Controllers, HybridDeadlineZeroIsImmediateReplanBitForBit) {
  // replan_deadline == 0 must be the historical immediate-replan path
  // exactly — the campaign's kReplan cell is defined by this equivalence.
  const Matrix d = hybrid_demand();
  FaultConfig faults;
  faults.port_faults.push_back({0.5, 1, PortSide::kBoth, 0.4});
  const Time delta = 0.05;
  FaultInjector ia(faults);
  RecoveringController historical(reco_sin(d, delta), delta);
  const SimulationReport a = simulate_single_coflow(historical, d, delta, ia);
  int replans = 0;
  const SimulationReport b = run_with_deadline(d, faults, 0.0, &replans);
  EXPECT_DOUBLE_EQ(a.cct, b.cct);
  EXPECT_DOUBLE_EQ(a.delivered_demand, b.delivered_demand);
  EXPECT_DOUBLE_EQ(a.degraded_time, b.degraded_time);
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_EQ(historical.replans(), replans);
  EXPECT_GE(replans, 1);
}

TEST(Controllers, HybridRepairInsideGraceWindowAvoidsReplanning) {
  // The repair bet pays off: the port comes back 0.2 s into a 1.0 s grace
  // window, so the original plan resumes with zero recovery replans — and
  // the run is identical to pure wait-for-repair.
  const Matrix d = hybrid_demand();
  FaultConfig faults;
  faults.port_faults.push_back({0.5, 1, PortSide::kBoth, 0.2});
  int hybrid_replans = -1;
  const SimulationReport hybrid = run_with_deadline(d, faults, 1.0, &hybrid_replans);
  EXPECT_EQ(hybrid_replans, 0);
  EXPECT_TRUE(hybrid.satisfied);
  EXPECT_EQ(hybrid.port_failures, 1);
  EXPECT_EQ(hybrid.port_repairs, 1);
  EXPECT_GT(hybrid.degraded_time, 0.0);

  int wait_replans = -1;
  const SimulationReport wait = run_with_deadline(d, faults, 1e30, &wait_replans);
  EXPECT_EQ(wait_replans, 0);
  EXPECT_DOUBLE_EQ(hybrid.cct, wait.cct);
  EXPECT_EQ(hybrid.reconfigurations, wait.reconfigurations);
  EXPECT_DOUBLE_EQ(hybrid.delivered_demand, wait.delivered_demand);

  // The immediate-replan policy pays for a recovery plan on the same run.
  int immediate_replans = -1;
  (void)run_with_deadline(d, faults, 0.0, &immediate_replans);
  EXPECT_GE(immediate_replans, 1);
}

TEST(Controllers, HybridDeadlineExpiryHandsOverToTheRecoveryPlanner) {
  // Permanent ingress-0 failure at t=0: the grace window expires with the
  // port still dark, the recovery planner takes over, everything not
  // rooted at the dead port is delivered, and row 0 is stranded.
  const Matrix d = hybrid_demand();
  double row0 = 0.0;
  for (int j = 0; j < d.n(); ++j) row0 += d.at(0, j);
  FaultConfig faults;
  faults.port_faults.push_back({0.0, 0, PortSide::kIngress, -1.0});
  int replans = -1;
  const SimulationReport r = run_with_deadline(d, faults, 0.1, &replans);
  EXPECT_GE(replans, 1);
  EXPECT_FALSE(r.satisfied);
  EXPECT_NEAR(r.stranded_demand, row0, 1e-6);
  EXPECT_NEAR(r.delivered_demand, d.total() - row0, 1e-6);
  EXPECT_GE(r.recoveries, 1);
}

TEST(Controllers, HybridReplansEarlyWhenTheOldPlanIsFullyBlocked) {
  // The old plan's only pending circuit dies with the port; waiting out
  // the (long) deadline would just idle the fabric, so the controller
  // must fall through to the recovery planner immediately and serve the
  // deliverable half, well before the 10 s grace window expires.
  Matrix d(2);
  d.at(0, 0) = 1.0;
  d.at(1, 1) = 1.0;
  CircuitSchedule plan;
  plan.assignments.push_back({{{0, 0}}, 1.0});
  plan.assignments.push_back({{{1, 1}}, 1.0});
  FaultConfig faults;
  faults.port_faults.push_back({0.0, 0, PortSide::kIngress, -1.0});
  const Time delta = 0.05;
  FaultInjector injector(faults);
  RecoveringController controller(plan, delta, BvnPolicy::kMaxMinAmortized,
                                  /*replan_deadline=*/10.0);
  const SimulationReport r = simulate_single_coflow(controller, d, delta, injector);
  EXPECT_GE(controller.replans(), 1);
  EXPECT_FALSE(r.satisfied);
  EXPECT_NEAR(r.delivered_demand, 1.0, 1e-6);  // d(1,1) via the recovery plan
  EXPECT_NEAR(r.stranded_demand, 1.0, 1e-6);   // d(0,0) rooted at the dead port
  EXPECT_LT(r.cct, 5.0);  // nowhere near the deadline: the wait was skipped
}

TEST(Controllers, CompletionTimelineIsSorted) {
  Rng rng(972);
  const Matrix d = testing::random_demand(rng, 6, 0.7, 0.5, 5.0);
  ReplayController controller(reco_sin(d, 0.1));
  const SimulationReport r = simulate_single_coflow(controller, d, 0.1);
  ASSERT_EQ(static_cast<int>(r.completions.size()), d.nnz());
  for (std::size_t f = 1; f < r.completions.size(); ++f) {
    EXPECT_GE(r.completions[f].completed_at, r.completions[f - 1].completed_at - 1e-12);
  }
}

}  // namespace
}  // namespace reco::sim
