// Controller-specific behaviours not covered by the fabric suites.
#include <gtest/gtest.h>

#include "sched/reco_sin.hpp"
#include "sim/fabric.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco::sim {
namespace {

TEST(Controllers, GreedyMaxWeightDayCapLimitsHolds) {
  Matrix d(2);
  d.at(0, 0) = 5.0;
  const Time delta = 0.1;
  // Uncapped: one establishment drains the flow.
  GreedyMaxWeightController uncapped(delta);
  const SimulationReport a = simulate_single_coflow(uncapped, d, delta);
  EXPECT_EQ(a.reconfigurations, 1);
  // Day = 10*delta = 1.0: five establishments of 1.0 each.
  GreedyMaxWeightController capped(delta, /*day_over_delta=*/10.0);
  const SimulationReport b = simulate_single_coflow(capped, d, delta);
  EXPECT_TRUE(b.satisfied);
  EXPECT_EQ(b.reconfigurations, 5);
  EXPECT_GT(b.cct, a.cct);  // extra setups cost time
}

TEST(Controllers, ReplayControllerSkipsDrainedEstablishments) {
  Matrix d(2);
  d.at(0, 0) = 1.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 1.0});
  s.assignments.push_back({{{0, 0}}, 1.0});  // drained by the time it's offered
  ReplayController controller(s);
  const SimulationReport r = simulate_single_coflow(controller, d, 0.1);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 1);
}

TEST(Controllers, AdaptiveRecoEmitsDeltaGranularHolds) {
  Rng rng(971);
  const Time delta = 0.05;
  const Matrix d = testing::random_demand(rng, 5, 0.6, 4 * delta, 40 * delta);
  AdaptiveRecoController controller(delta);
  const SimulationReport r = simulate_single_coflow(controller, d, delta);
  EXPECT_TRUE(r.satisfied);
  // Lemma-1 style: adaptive Reco re-regularizes each round, so the total
  // reconfiguration time never exceeds the transmission time.
  EXPECT_LE(r.reconfiguration_time, r.transmission_time + 1e-9);
}

TEST(Controllers, CompletionTimelineIsSorted) {
  Rng rng(972);
  const Matrix d = testing::random_demand(rng, 6, 0.7, 0.5, 5.0);
  ReplayController controller(reco_sin(d, 0.1));
  const SimulationReport r = simulate_single_coflow(controller, d, 0.1);
  ASSERT_EQ(static_cast<int>(r.completions.size()), d.nnz());
  for (std::size_t f = 1; f < r.completions.size(); ++f) {
    EXPECT_GE(r.completions[f].completed_at, r.completions[f - 1].completed_at - 1e-12);
  }
}

}  // namespace
}  // namespace reco::sim
