#include "sim/fabric.hpp"

#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "ocs/not_all_stop_executor.hpp"
#include "sched/ordering.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_sin.hpp"
#include "sched/solstice.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco::sim {
namespace {

TEST(Fabric, ReplayMatchesHandSchedule) {
  const Matrix demand = Matrix::from_rows({{0, 5}, {3, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 0}}, 5.0});
  ReplayController controller(s);
  const SimulationReport r = simulate_single_coflow(controller, demand, 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.cct, 6.0);
  EXPECT_EQ(r.reconfigurations, 1);
  ASSERT_EQ(r.completions.size(), 2u);
  // The 3-unit flow drains first.
  EXPECT_DOUBLE_EQ(r.completions[0].completed_at, 4.0);
  EXPECT_DOUBLE_EQ(r.completions[1].completed_at, 6.0);
  EXPECT_GT(r.events, 0u);
}

TEST(Fabric, UtilizationOnPerfectlyPackedSchedule) {
  Matrix demand(2);
  demand.at(0, 0) = 4.0;
  demand.at(1, 1) = 4.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}, {1, 1}}, 4.0});
  ReplayController controller(s);
  const SimulationReport r = simulate_single_coflow(controller, demand, 1.0);
  // Each active port transmits 4 of the 5-unit horizon.
  EXPECT_NEAR(r.avg_port_utilization, 4.0 / 5.0, 1e-9);
}

// The keystone property: the event-driven fabric and the analytic all-stop
// executor are independent implementations of the same semantics and must
// agree exactly on replayed schedules.
class CrossValidation : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(CrossValidation, AllStopAgreesWithAnalyticExecutor) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Matrix d = testing::random_demand(rng, 8, rng.uniform(0.2, 0.9), 0.2, 6.0);
  const Time delta = rng.uniform(0.01, 0.5);
  for (const CircuitSchedule& s : {reco_sin(d, delta), solstice(d)}) {
    ReplayController controller(s);
    const SimulationReport des = simulate_single_coflow(controller, d, delta);
    const ExecutionResult analytic = execute_all_stop(s, d, delta);
    EXPECT_EQ(des.satisfied, analytic.satisfied);
    EXPECT_EQ(des.reconfigurations, analytic.reconfigurations);
    EXPECT_NEAR(des.cct, analytic.cct, 1e-7);
    EXPECT_NEAR(des.transmission_time, analytic.transmission_time, 1e-7);
  }
}

TEST_P(CrossValidation, NotAllStopAgreesWithAnalyticExecutor) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const Matrix d = testing::random_demand(rng, 7, rng.uniform(0.3, 0.8), 0.3, 5.0);
  const Time delta = rng.uniform(0.01, 0.3);
  const CircuitSchedule s = reco_sin(d, delta);
  const SimulationReport des = simulate_not_all_stop_replay(s, d, delta);
  const ExecutionResult analytic = execute_not_all_stop(s, d, delta);
  EXPECT_EQ(des.satisfied, analytic.satisfied);
  EXPECT_EQ(des.reconfigurations, analytic.reconfigurations);
  EXPECT_NEAR(des.cct, analytic.cct, 1e-7);
}

TEST(Fabric, GreedyControllerDrainsDemand) {
  Rng rng(301);
  const Matrix d = testing::random_demand(rng, 6, 0.6, 0.5, 4.0);
  GreedyMaxWeightController controller(0.1);
  const SimulationReport r = simulate_single_coflow(controller, d, 0.1);
  EXPECT_TRUE(r.satisfied);
  EXPECT_GT(r.reconfigurations, 0);
}

TEST(Fabric, AdaptiveRecoControllerDrainsDemand) {
  Rng rng(302);
  const Matrix d = testing::random_demand(rng, 6, 0.6, 0.5, 4.0);
  AdaptiveRecoController controller(0.1);
  const SimulationReport r = simulate_single_coflow(controller, d, 0.1);
  EXPECT_TRUE(r.satisfied);
}

TEST(Fabric, AdaptiveControllersRespectLemmaOneSpirit) {
  // Both adaptive policies hold each establishment for >= its planned
  // service, so reconfiguration time stays below transmission time for
  // demand-dominated inputs.
  Rng rng(303);
  const Time delta = 0.05;
  const Matrix d = testing::random_demand(rng, 6, 0.7, 10 * delta, 100 * delta);
  AdaptiveRecoController controller(delta);
  const SimulationReport r = simulate_single_coflow(controller, d, delta);
  EXPECT_LE(r.reconfiguration_time, r.transmission_time + 1e-9);
}

TEST(Fabric, SliceReplayDetectsViolations) {
  // Two overlapping slices on the same ingress port.
  const SliceSchedule bad{{0, 2, 0, 0, 0}, {1, 3, 0, 1, 1}};
  const SliceReplayReport r = simulate_slice_schedule(bad, 2, 2);
  EXPECT_EQ(r.port_violations, 1);
}

TEST(Fabric, SliceReplayAcceptsHandoffs) {
  const SliceSchedule ok{{0, 2, 0, 0, 0}, {2, 3, 0, 1, 1}};
  const SliceReplayReport r = simulate_slice_schedule(ok, 2, 2);
  EXPECT_EQ(r.port_violations, 0);
  EXPECT_DOUBLE_EQ(r.cct[0], 2.0);
  EXPECT_DOUBLE_EQ(r.cct[1], 3.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(Fabric, SliceReplayMatchesAnalyticCompletionTimes) {
  Rng rng(304);
  const auto coflows = testing::random_workload(rng, 8, 5, 0.02, 4.0);
  const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
  const SliceReplayReport r = simulate_slice_schedule(packet, 5, 8);
  EXPECT_EQ(r.port_violations, 0);
  const std::vector<Time> analytic = completion_times(packet, 8);
  for (int k = 0; k < 8; ++k) EXPECT_NEAR(r.cct[k], analytic[k], 1e-9);
}

}  // namespace
}  // namespace reco::sim
