#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

namespace reco::sim {
namespace {

TEST(EventFn, SmallCallablesStayInline) {
  int hits = 0;
  EventFn small([&hits] { ++hits; });  // one pointer capture: fits the SBO
  EXPECT_FALSE(small.heap_allocated());
  small();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, LargeCapturesFallBackToHeap) {
  std::array<char, 128> big{};
  big[0] = 7;
  int sum = 0;
  EventFn fn([big, &sum] { sum += big[0]; });
  EXPECT_TRUE(fn.heap_allocated());
  fn();
  EXPECT_EQ(sum, 7);
}

TEST(EventFn, MovePreservesInlineStorageAndBehaviour) {
  int hits = 0;
  EventFn a([&hits] { ++hits; });
  EventFn b(std::move(a));
  EXPECT_FALSE(b.heap_allocated());
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): moved-from is empty
  b();
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveOnlyCallablesWork) {
  auto owned = std::make_unique<int>(41);
  int got = 0;
  EventFn fn([p = std::move(owned), &got] { got = *p + 1; });
  fn();
  EXPECT_EQ(got, 42);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.events_processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 4) q.schedule(q.now() + 1.0, hop);
  };
  q.schedule(0.0, hop);
  q.run_all();
  EXPECT_EQ(hops, 4);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_one();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::logic_error);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_one());
}

TEST(EventQueue, MoveOnlyCallbackCanBeScheduled) {
  // Regression: dispatch used to copy the std::function out of
  // priority_queue::top(), which both deep-copied captured state per event
  // and made move-only captures (unique_ptr and friends) unrepresentable.
  EventQueue q;
  auto payload = std::make_unique<int>(42);
  int observed = 0;
  q.schedule(1.0, [p = std::move(payload), &observed] { observed = *p; });
  q.run_all();
  EXPECT_EQ(observed, 42);
}

TEST(EventQueue, DispatchMovesInsteadOfCopies) {
  // A callback whose capture counts its own copies: dispatch must not add
  // any beyond what scheduling itself needed.
  struct CopyCounter {
    int* copies;
    explicit CopyCounter(int* c) : copies(c) {}
    CopyCounter(const CopyCounter& other) : copies(other.copies) { ++*copies; }
    CopyCounter(CopyCounter&& other) noexcept : copies(other.copies) {}
  };
  EventQueue q;
  int copies = 0;
  int fired = 0;
  q.schedule(1.0, [counter = CopyCounter(&copies), &fired] {
    (void)counter;
    ++fired;
  });
  const int copies_after_schedule = copies;
  q.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(copies, copies_after_schedule);  // zero copies during dispatch
}

TEST(EventQueue, SameTimeAsNowIsAllowed) {
  EventQueue q;
  int fired = 0;
  q.schedule(2.0, [&] {
    q.schedule(q.now(), [&] { ++fired; });
  });
  q.run_all();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace reco::sim
