#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace reco::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.events_processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 4) q.schedule(q.now() + 1.0, hop);
  };
  q.schedule(0.0, hop);
  q.run_all();
  EXPECT_EQ(hops, 4);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_one();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::logic_error);
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_one());
}

TEST(EventQueue, SameTimeAsNowIsAllowed) {
  EventQueue q;
  int fired = 0;
  q.schedule(2.0, [&] {
    q.schedule(q.now(), [&] { ++fired; });
  });
  q.run_all();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace reco::sim
