#include <gtest/gtest.h>

#include "runtime/thread_pool.hpp"
#include "sched/reco_sin.hpp"
#include "sim/fabric.hpp"
#include "sim/multi_fabric.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco::sim {
namespace {

Matrix demand_under_test(std::uint64_t seed) {
  Rng rng(seed);
  return testing::random_demand(rng, 6, 0.6, 0.5, 4.0);
}

TEST(Faults, DefaultModelMatchesIdealSwitch) {
  const Matrix d = demand_under_test(501);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  ReplayController a(s);
  ReplayController b(s);
  const SimulationReport ideal = simulate_single_coflow(a, d, delta);
  const SimulationReport with_model = simulate_single_coflow(b, d, delta, FaultModel{});
  EXPECT_DOUBLE_EQ(ideal.cct, with_model.cct);
  EXPECT_EQ(ideal.reconfigurations, with_model.reconfigurations);
}

TEST(Faults, JitterOnlySlowsDown) {
  const Matrix d = demand_under_test(502);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  ReplayController a(s);
  const SimulationReport ideal = simulate_single_coflow(a, d, delta);
  FaultModel faults;
  faults.jitter_fraction = 0.5;
  ReplayController b(s);
  const SimulationReport jittered = simulate_single_coflow(b, d, delta, faults);
  EXPECT_TRUE(jittered.satisfied);
  EXPECT_GE(jittered.cct, ideal.cct - 1e-9);
  // Worst case: every setup 1.5x slower.
  EXPECT_LE(jittered.reconfiguration_time,
            1.5 * delta * jittered.reconfigurations + 1e-9);
  EXPECT_GE(jittered.reconfiguration_time, delta * jittered.reconfigurations - 1e-9);
}

TEST(Faults, RetriesInflateReconfigurationTime) {
  const Matrix d = demand_under_test(503);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  FaultModel faults;
  faults.retry_probability = 0.4;
  ReplayController a(s);
  const SimulationReport faulty = simulate_single_coflow(a, d, delta, faults);
  EXPECT_TRUE(faulty.satisfied);
  // Expected attempts per setup = 1/(1-p) ~ 1.67: with 40% retries some
  // setup almost surely repeated.
  EXPECT_GT(faulty.reconfiguration_time, delta * faulty.reconfigurations + 1e-12);
}

TEST(Faults, DeterministicPerSeed) {
  const Matrix d = demand_under_test(504);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  FaultModel faults;
  faults.jitter_fraction = 0.3;
  faults.retry_probability = 0.2;
  ReplayController a(s);
  ReplayController b(s);
  const SimulationReport r1 = simulate_single_coflow(a, d, delta, faults);
  const SimulationReport r2 = simulate_single_coflow(b, d, delta, faults);
  EXPECT_DOUBLE_EQ(r1.cct, r2.cct);
  faults.seed = 99;
  ReplayController c(s);
  const SimulationReport r3 = simulate_single_coflow(c, d, delta, faults);
  EXPECT_NE(r1.cct, r3.cct);  // different fault stream, different timeline
}

TEST(Faults, DemandStillFullyServedUnderHeavyFaults) {
  const Matrix d = demand_under_test(505);
  const Time delta = 0.05;
  FaultModel faults;
  faults.jitter_fraction = 1.0;
  faults.retry_probability = 0.5;
  ReplayController a(reco_sin(d, delta));
  const SimulationReport r = simulate_single_coflow(a, d, delta, faults);
  EXPECT_TRUE(r.satisfied);  // faults cost time, never correctness
}

TEST(Faults, LegacyModelValidatedAtSimulationEntry) {
  // Regression: retry_probability >= 1 used to spin the retry loop forever
  // and negative jitter was silently accepted; both now throw up front.
  const Matrix d = demand_under_test(506);
  FaultModel forever;
  forever.retry_probability = 1.0;
  ReplayController a(reco_sin(d, 0.1));
  EXPECT_THROW(simulate_single_coflow(a, d, 0.1, forever), std::invalid_argument);
  FaultModel negative;
  negative.jitter_fraction = -0.5;
  ReplayController b(reco_sin(d, 0.1));
  EXPECT_THROW(simulate_single_coflow(b, d, 0.1, negative), std::invalid_argument);
}

TEST(Faults, ExhaustedAttemptBudgetTerminatesWithAccounting) {
  // A near-certain retry probability under a tiny attempt budget: setups
  // fail instead of looping, the run ends, and every unit of demand is
  // either delivered or reported stranded.
  const Matrix d = demand_under_test(507);
  const Time delta = 0.05;
  FaultModel faults;
  faults.retry_probability = 0.99;
  faults.max_attempts = 2;
  ReplayController a(reco_sin(d, delta));
  const SimulationReport r = simulate_single_coflow(a, d, delta, faults);
  EXPECT_GT(r.setup_failures, 0);
  EXPECT_NEAR(r.delivered_demand + r.stranded_demand, d.total(), 1e-5);
  EXPECT_EQ(r.satisfied, r.stranded_demand < kMinServiceQuantum);
}

TEST(Faults, IdealInjectorMatchesLegacyIdealRun) {
  const Matrix d = demand_under_test(508);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  ReplayController a(s);
  ReplayController b(s);
  const SimulationReport legacy = simulate_single_coflow(a, d, delta);
  FaultInjector injector;
  const SimulationReport injected = simulate_single_coflow(b, d, delta, injector);
  EXPECT_DOUBLE_EQ(legacy.cct, injected.cct);
  EXPECT_EQ(legacy.reconfigurations, injected.reconfigurations);
  EXPECT_DOUBLE_EQ(injected.stranded_demand, 0.0);
  EXPECT_NEAR(injected.delivered_demand, d.total(), 1e-6);
  EXPECT_EQ(injected.port_failures, 0);
  EXPECT_DOUBLE_EQ(injected.degraded_time, 0.0);
}

Matrix recovery_demand() {
  Matrix d(4);
  d.at(0, 1) = 2.0;   // dies with ingress 0
  d.at(0, 3) = 1.0;   // dies with ingress 0
  d.at(1, 2) = 3.0;
  d.at(2, 3) = 1.5;
  d.at(3, 0) = 2.5;
  d.at(2, 0) = 0.75;
  return d;
}

TEST(Faults, RecoveringControllerDeliversAllDeliverableDemand) {
  // Tentpole acceptance: permanent ingress-0 failure at t=0.  Everything
  // not rooted at the dead port is delivered via replanning on the
  // surviving ports; the rest is stranded and the run terminates.
  const Matrix d = recovery_demand();
  const Time delta = 0.05;
  FaultConfig config;
  config.port_faults.push_back({0.0, 0, PortSide::kIngress, -1.0});
  FaultInjector injector(config);
  RecoveringController controller(reco_sin(d, delta), delta);
  const SimulationReport r = simulate_single_coflow(controller, d, delta, injector);
  EXPECT_FALSE(r.satisfied);
  EXPECT_EQ(r.port_failures, 1);
  EXPECT_EQ(r.port_repairs, 0);
  EXPECT_NEAR(r.stranded_demand, 3.0, 1e-6);  // exactly row 0's demand
  EXPECT_NEAR(r.delivered_demand, d.total() - 3.0, 1e-6);
  EXPECT_GE(controller.replans(), 1);
  EXPECT_GE(r.recoveries, 1);  // useful service resumed after the failure
  EXPECT_GT(r.degraded_time, 0.0);
}

TEST(Faults, TransientPortFailureFullyRecovers) {
  const Matrix d = recovery_demand();
  const Time delta = 0.05;
  FaultConfig config;
  config.port_faults.push_back({0.5, 1, PortSide::kBoth, 0.4});
  FaultInjector injector(config);
  RecoveringController controller(reco_sin(d, delta), delta);
  const SimulationReport r = simulate_single_coflow(controller, d, delta, injector);
  EXPECT_TRUE(r.satisfied);  // the port came back: nothing is stranded
  EXPECT_EQ(r.port_failures, 1);
  EXPECT_EQ(r.port_repairs, 1);
  EXPECT_NEAR(r.delivered_demand, d.total(), 1e-5);
  EXPECT_LT(r.stranded_demand, 1e-6);
  EXPECT_GT(r.degraded_time, 0.0);
  EXPECT_LE(r.degraded_time, r.cct + 1e-9);
}

TEST(Faults, ConservationHoldsUnderFaultSoup) {
  // Property: delivered + stranded == total demand under any mix of port
  // failures, timeouts, partial setups, and legacy timing faults — and the
  // run always terminates.
  const Time delta = 0.05;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const Matrix d = demand_under_test(600 + seed);
    FaultConfig config;
    config.timing.jitter_fraction = 0.3;
    config.timing.retry_probability = 0.2;
    config.timing.max_attempts = 8;
    config.port_mtbf = 2.0;
    config.port_mttr = 0.5;
    config.setup_timeout_probability = 0.2;
    config.crosspoint_failure_probability = 0.1;
    config.seed = seed;
    FaultInjector injector(config);
    RecoveringController controller(reco_sin(d, delta), delta);
    const SimulationReport r = simulate_single_coflow(controller, d, delta, injector);
    EXPECT_NEAR(r.delivered_demand + r.stranded_demand, d.total(), 1e-5)
        << "seed " << seed;
    EXPECT_EQ(r.satisfied, r.stranded_demand < kMinServiceQuantum) << "seed " << seed;
  }
}

TEST(Faults, FaultStreamIdenticalAcrossThreadCounts) {
  // The fault streams are consumed in simulation-event order only, so the
  // degraded timeline is bit-identical at any RECO_THREADS setting.
  const Matrix d = demand_under_test(509);
  const Time delta = 0.05;
  FaultConfig config;
  config.timing.jitter_fraction = 0.25;
  config.port_mtbf = 1.5;
  config.port_mttr = 0.3;
  config.setup_timeout_probability = 0.15;
  config.crosspoint_failure_probability = 0.1;
  config.seed = 77;
  SimulationReport reports[2];
  const int thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    runtime::set_thread_count(thread_counts[i]);
    FaultInjector injector(config);
    RecoveringController controller(reco_sin(d, delta), delta);
    reports[i] = simulate_single_coflow(controller, d, delta, injector);
  }
  runtime::set_thread_count(0);  // restore the env/hardware default
  EXPECT_DOUBLE_EQ(reports[0].cct, reports[1].cct);
  EXPECT_DOUBLE_EQ(reports[0].delivered_demand, reports[1].delivered_demand);
  EXPECT_DOUBLE_EQ(reports[0].stranded_demand, reports[1].stranded_demand);
  EXPECT_DOUBLE_EQ(reports[0].degraded_time, reports[1].degraded_time);
  EXPECT_EQ(reports[0].port_failures, reports[1].port_failures);
  EXPECT_EQ(reports[0].setup_failures, reports[1].setup_failures);
  EXPECT_EQ(reports[0].partial_setups, reports[1].partial_setups);
  EXPECT_EQ(reports[0].reconfigurations, reports[1].reconfigurations);
}

TEST(Faults, NotAllStopReplayAcceptsFaultModel) {
  const Matrix d = demand_under_test(510);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  const SimulationReport ideal = simulate_not_all_stop_replay(s, d, delta);
  const SimulationReport with_default = simulate_not_all_stop_replay(s, d, delta, FaultModel{});
  EXPECT_DOUBLE_EQ(ideal.cct, with_default.cct);
  EXPECT_EQ(ideal.reconfigurations, with_default.reconfigurations);

  FaultModel jitter;
  jitter.jitter_fraction = 0.5;
  const SimulationReport slowed = simulate_not_all_stop_replay(s, d, delta, jitter);
  EXPECT_TRUE(slowed.satisfied);
  EXPECT_GE(slowed.cct, ideal.cct - 1e-9);

  FaultModel flaky;
  flaky.retry_probability = 0.9;
  flaky.max_attempts = 2;
  const SimulationReport degraded = simulate_not_all_stop_replay(s, d, delta, flaky);
  EXPECT_NEAR(degraded.delivered_demand + degraded.stranded_demand, d.total(), 1e-5);

  FaultModel invalid;
  invalid.retry_probability = 1.0;
  EXPECT_THROW(simulate_not_all_stop_replay(s, d, delta, invalid), std::invalid_argument);
}

std::vector<Coflow> multi_workload() {
  std::vector<Coflow> coflows(2);
  coflows[0].id = 0;
  coflows[0].demand = recovery_demand();
  coflows[1].id = 1;
  coflows[1].arrival = 0.2;
  coflows[1].demand = Matrix(4);
  coflows[1].demand.at(1, 3) = 1.0;
  coflows[1].demand.at(3, 2) = 2.0;
  return coflows;
}

TEST(Faults, MultiCoflowIdealInjectorMatchesLegacyRun) {
  const auto coflows = multi_workload();
  const Time delta = 0.05;
  GreedyPriorityController a(delta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  GreedyPriorityController b(delta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport legacy = simulate_multi_coflow(a, coflows, delta);
  FaultInjector injector;
  const MultiFabricReport injected = simulate_multi_coflow(b, coflows, delta, injector);
  ASSERT_EQ(legacy.cct.size(), injected.cct.size());
  for (std::size_t k = 0; k < legacy.cct.size(); ++k) {
    EXPECT_DOUBLE_EQ(legacy.cct[k], injected.cct[k]) << "coflow " << k;
  }
  EXPECT_EQ(legacy.reconfigurations, injected.reconfigurations);
  EXPECT_DOUBLE_EQ(legacy.makespan, injected.makespan);
  EXPECT_TRUE(injected.all_served);
  EXPECT_DOUBLE_EQ(injected.stranded_demand, 0.0);
}

TEST(Faults, MultiCoflowPermanentFailureStrandsOnlyDeadDemand) {
  const auto coflows = multi_workload();
  const Time delta = 0.05;
  Time total = 0.0;
  for (const Coflow& c : coflows) total += c.demand.total();
  FaultConfig config;
  config.port_faults.push_back({0.0, 0, PortSide::kIngress, -1.0});
  FaultInjector injector(config);
  GreedyPriorityController controller(
      delta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport r = simulate_multi_coflow(controller, coflows, delta, injector);
  EXPECT_FALSE(r.all_served);
  EXPECT_EQ(r.port_failures, 1);
  EXPECT_NEAR(r.stranded_demand, 3.0, 1e-6);  // coflow 0's ingress-0 rows
  EXPECT_NEAR(r.delivered_demand, total - 3.0, 1e-6);
  EXPECT_GT(r.degraded_time, 0.0);
}

TEST(Faults, MultiCoflowTransientFailureServesEverything) {
  const auto coflows = multi_workload();
  const Time delta = 0.05;
  Time total = 0.0;
  for (const Coflow& c : coflows) total += c.demand.total();
  FaultConfig config;
  config.port_faults.push_back({0.3, 2, PortSide::kBoth, 0.5});
  FaultInjector injector(config);
  GreedyPriorityController controller(
      delta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport r = simulate_multi_coflow(controller, coflows, delta, injector);
  EXPECT_TRUE(r.all_served);
  EXPECT_EQ(r.port_failures, 1);
  EXPECT_EQ(r.port_repairs, 1);
  EXPECT_NEAR(r.delivered_demand, total, 1e-5);
  EXPECT_LT(r.stranded_demand, 1e-6);
}

}  // namespace
}  // namespace reco::sim
