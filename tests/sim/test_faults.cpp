#include <gtest/gtest.h>

#include "sched/reco_sin.hpp"
#include "sim/fabric.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco::sim {
namespace {

Matrix demand_under_test(std::uint64_t seed) {
  Rng rng(seed);
  return testing::random_demand(rng, 6, 0.6, 0.5, 4.0);
}

TEST(Faults, DefaultModelMatchesIdealSwitch) {
  const Matrix d = demand_under_test(501);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  ReplayController a(s);
  ReplayController b(s);
  const SimulationReport ideal = simulate_single_coflow(a, d, delta);
  const SimulationReport with_model = simulate_single_coflow(b, d, delta, FaultModel{});
  EXPECT_DOUBLE_EQ(ideal.cct, with_model.cct);
  EXPECT_EQ(ideal.reconfigurations, with_model.reconfigurations);
}

TEST(Faults, JitterOnlySlowsDown) {
  const Matrix d = demand_under_test(502);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  ReplayController a(s);
  const SimulationReport ideal = simulate_single_coflow(a, d, delta);
  FaultModel faults;
  faults.jitter_fraction = 0.5;
  ReplayController b(s);
  const SimulationReport jittered = simulate_single_coflow(b, d, delta, faults);
  EXPECT_TRUE(jittered.satisfied);
  EXPECT_GE(jittered.cct, ideal.cct - 1e-9);
  // Worst case: every setup 1.5x slower.
  EXPECT_LE(jittered.reconfiguration_time,
            1.5 * delta * jittered.reconfigurations + 1e-9);
  EXPECT_GE(jittered.reconfiguration_time, delta * jittered.reconfigurations - 1e-9);
}

TEST(Faults, RetriesInflateReconfigurationTime) {
  const Matrix d = demand_under_test(503);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  FaultModel faults;
  faults.retry_probability = 0.4;
  ReplayController a(s);
  const SimulationReport faulty = simulate_single_coflow(a, d, delta, faults);
  EXPECT_TRUE(faulty.satisfied);
  // Expected attempts per setup = 1/(1-p) ~ 1.67: with 40% retries some
  // setup almost surely repeated.
  EXPECT_GT(faulty.reconfiguration_time, delta * faulty.reconfigurations + 1e-12);
}

TEST(Faults, DeterministicPerSeed) {
  const Matrix d = demand_under_test(504);
  const Time delta = 0.1;
  const CircuitSchedule s = reco_sin(d, delta);
  FaultModel faults;
  faults.jitter_fraction = 0.3;
  faults.retry_probability = 0.2;
  ReplayController a(s);
  ReplayController b(s);
  const SimulationReport r1 = simulate_single_coflow(a, d, delta, faults);
  const SimulationReport r2 = simulate_single_coflow(b, d, delta, faults);
  EXPECT_DOUBLE_EQ(r1.cct, r2.cct);
  faults.seed = 99;
  ReplayController c(s);
  const SimulationReport r3 = simulate_single_coflow(c, d, delta, faults);
  EXPECT_NE(r1.cct, r3.cct);  // different fault stream, different timeline
}

TEST(Faults, DemandStillFullyServedUnderHeavyFaults) {
  const Matrix d = demand_under_test(505);
  const Time delta = 0.05;
  FaultModel faults;
  faults.jitter_fraction = 1.0;
  faults.retry_probability = 0.5;
  ReplayController a(reco_sin(d, delta));
  const SimulationReport r = simulate_single_coflow(a, d, delta, faults);
  EXPECT_TRUE(r.satisfied);  // faults cost time, never correctness
}

}  // namespace
}  // namespace reco::sim
