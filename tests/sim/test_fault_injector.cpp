#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace reco::sim {
namespace {

TEST(FaultValidation, RejectsRetryProbabilityOfOne) {
  // retry_probability >= 1 made the pre-cap retry loop spin forever; it is
  // now rejected outright.
  FaultModel m;
  m.retry_probability = 1.0;
  EXPECT_THROW(validate_fault_model(m), std::invalid_argument);
  m.retry_probability = 1.5;
  EXPECT_THROW(validate_fault_model(m), std::invalid_argument);
  m.retry_probability = 0.999;
  EXPECT_NO_THROW(validate_fault_model(m));
}

TEST(FaultValidation, RejectsNegativeOrNonFiniteJitter) {
  FaultModel m;
  m.jitter_fraction = -0.1;
  EXPECT_THROW(validate_fault_model(m), std::invalid_argument);
  m.jitter_fraction = std::nan("");
  EXPECT_THROW(validate_fault_model(m), std::invalid_argument);
}

TEST(FaultValidation, RejectsNonPositiveAttemptBudget) {
  FaultModel m;
  m.max_attempts = 0;
  EXPECT_THROW(validate_fault_model(m), std::invalid_argument);
}

TEST(FaultValidation, RejectsBadConfig) {
  {
    FaultConfig c;
    c.setup_timeout_probability = 1.5;
    EXPECT_THROW(validate_fault_config(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.crosspoint_failure_probability = -0.25;
    EXPECT_THROW(validate_fault_config(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.port_mtbf = -1.0;
    EXPECT_THROW(validate_fault_config(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.backoff_factor = 0.5;
    EXPECT_THROW(validate_fault_config(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.port_faults.push_back({-1.0, 0, PortSide::kBoth, -1.0});
    EXPECT_THROW(validate_fault_config(c), std::invalid_argument);
  }
  // The injector constructor validates too.
  FaultModel bad;
  bad.retry_probability = 2.0;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

TEST(FaultInjector, DefaultConfigIsIdeal) {
  FaultInjector injector;
  injector.bind_ports(8);
  EXPECT_TRUE(injector.advance_to(1e9).empty());
  EXPECT_FALSE(injector.next_transition().has_value());
  for (int attempt = 0; attempt < 4; ++attempt) {
    const SetupOutcome o = injector.sample_setup(0.01, {{0, 1}, {2, 3}});
    EXPECT_DOUBLE_EQ(o.setup_time, 0.01);  // exactly delta: no draws at all
    EXPECT_EQ(o.attempts, 1);
    EXPECT_TRUE(o.established);
    ASSERT_EQ(o.established_circuits.size(), 2u);
    EXPECT_TRUE(o.failed_circuits.empty());
  }
}

TEST(FaultInjector, ScriptedFaultAndRepairTransitionsInOrder) {
  FaultConfig config;
  config.port_faults.push_back({2.0, 1, PortSide::kIngress, 3.0});  // repaired at 5.0
  config.port_faults.push_back({1.0, 2, PortSide::kBoth, -1.0});    // permanent
  FaultInjector injector(config);
  injector.bind_ports(4);

  EXPECT_TRUE(injector.advance_to(0.5).empty());
  ASSERT_TRUE(injector.next_transition().has_value());
  EXPECT_NEAR(*injector.next_transition(), 1.0, 1e-12);

  const auto first = injector.advance_to(2.5);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_NEAR(first[0].at, 1.0, 1e-12);
  EXPECT_EQ(first[0].port, 2);
  EXPECT_FALSE(first[0].up);
  EXPECT_NEAR(first[1].at, 2.0, 1e-12);
  EXPECT_EQ(first[1].port, 1);
  EXPECT_FALSE(injector.ingress_up(1));
  EXPECT_TRUE(injector.egress_up(1));  // ingress-side fault only
  EXPECT_FALSE(injector.ingress_up(2));
  EXPECT_FALSE(injector.egress_up(2));
  EXPECT_FALSE(injector.circuit_ports_up({1, 3}));
  EXPECT_TRUE(injector.circuit_ports_up({3, 1}));

  ASSERT_TRUE(injector.next_repair().has_value());
  EXPECT_NEAR(*injector.next_repair(), 5.0, 1e-12);
  const auto second = injector.advance_to(10.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].up);
  EXPECT_TRUE(injector.ingress_up(1));
  EXPECT_FALSE(injector.next_repair().has_value());  // port 2 is permanent
  EXPECT_EQ(injector.ports_down(), 1);
}

TEST(FaultInjector, BindRejectsOutOfRangeScriptedPort) {
  FaultConfig config;
  config.port_faults.push_back({1.0, 9, PortSide::kBoth, -1.0});
  FaultInjector injector(config);
  EXPECT_THROW(injector.bind_ports(4), std::invalid_argument);
}

TEST(FaultInjector, AttemptBudgetExhaustionFailsTheSetup) {
  FaultConfig config;
  config.setup_timeout_probability = 0.999999;  // essentially every attempt
  config.timing.max_attempts = 3;
  FaultInjector injector(config);
  injector.bind_ports(4);
  const SetupOutcome o = injector.sample_setup(0.01, {{0, 1}});
  EXPECT_FALSE(o.established);
  EXPECT_EQ(o.attempts, 3);
  // Paid for every attempt plus bounded backoff between them.
  EXPECT_GE(o.setup_time, 3 * 0.01 - 1e-12);
  const double worst_backoff = 0.01 * (1.0 + 2.0);  // 2^0, 2^1 under factor 2
  EXPECT_LE(o.setup_time, 3 * 0.01 + worst_backoff + 1e-12);
}

TEST(FaultInjector, BackoffIsCapped) {
  FaultConfig config;
  config.setup_timeout_probability = 0.999999;
  config.timing.max_attempts = 40;
  config.backoff_factor = 4.0;
  config.backoff_cap = 8.0;
  FaultInjector injector(config);
  injector.bind_ports(2);
  const SetupOutcome o = injector.sample_setup(0.01, {{0, 1}});
  EXPECT_FALSE(o.established);
  EXPECT_EQ(o.attempts, 40);
  // 40 attempts + 39 backoffs each capped at 8 * delta.
  EXPECT_LE(o.setup_time, 0.01 * (40 + 39 * 8.0) + 1e-9);
}

TEST(FaultInjector, CrosspointFailuresYieldPartialSetups) {
  FaultConfig config;
  config.crosspoint_failure_probability = 0.5;
  config.seed = 7;
  FaultInjector injector(config);
  injector.bind_ports(8);
  int latched = 0;
  int dropped = 0;
  for (int round = 0; round < 64; ++round) {
    const SetupOutcome o = injector.sample_setup(0.01, {{0, 1}, {2, 3}, {4, 5}});
    EXPECT_TRUE(o.established);
    EXPECT_EQ(o.established_circuits.size() + o.failed_circuits.size(), 3u);
    latched += static_cast<int>(o.established_circuits.size());
    dropped += static_cast<int>(o.failed_circuits.size());
  }
  EXPECT_GT(latched, 0);
  EXPECT_GT(dropped, 0);  // at p = 0.5 over 192 draws both sides occur
}

TEST(FaultInjector, RandomPortFailuresAreSeedDeterministic) {
  FaultConfig config;
  config.port_mtbf = 5.0;
  config.port_mttr = 1.0;
  config.seed = 42;
  FaultInjector a(config);
  FaultInjector b(config);
  a.bind_ports(6);
  b.bind_ports(6);
  const auto ta = a.advance_to(100.0);
  const auto tb = b.advance_to(100.0);
  ASSERT_FALSE(ta.empty());
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].port, tb[i].port);
    EXPECT_EQ(ta[i].up, tb[i].up);
  }
  // A different seed produces a different timeline.
  config.seed = 43;
  FaultInjector c(config);
  c.bind_ports(6);
  const auto tc = c.advance_to(100.0);
  bool differs = tc.size() != ta.size();
  for (std::size_t i = 0; !differs && i < ta.size(); ++i) {
    differs = ta[i].at != tc[i].at || ta[i].port != tc[i].port;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultTrace, ParsesCommentsSidesAndRepairs) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "0.5 3 in 2.0\n"
      "1.25 0 both never\n"
      "2 4 out 0.125\n");
  const auto faults = parse_fault_trace(in);
  ASSERT_EQ(faults.size(), 3u);
  EXPECT_DOUBLE_EQ(faults[0].at, 0.5);
  EXPECT_EQ(faults[0].port, 3);
  EXPECT_EQ(faults[0].side, PortSide::kIngress);
  EXPECT_DOUBLE_EQ(faults[0].repair_after, 2.0);
  EXPECT_EQ(faults[1].side, PortSide::kBoth);
  EXPECT_LT(faults[1].repair_after, 0.0);  // never
  EXPECT_EQ(faults[2].side, PortSide::kEgress);
}

TEST(FaultTrace, MalformedLinesNameTheLineNumber) {
  const auto error_of = [](const char* text) -> std::string {
    std::istringstream in(text);
    try {
      parse_fault_trace(in);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return {};
  };
  EXPECT_NE(error_of("0.5 1 in 1.0\nnonsense\n").find("line 2"), std::string::npos);
  EXPECT_NE(error_of("-1 0 both never\n").find("line 1"), std::string::npos);     // negative time
  EXPECT_NE(error_of("1 -2 both never\n").find("line 1"), std::string::npos);    // negative port
  EXPECT_NE(error_of("1 0 sideways never\n").find("line 1"), std::string::npos); // bad side
  EXPECT_NE(error_of("nan 0 both never\n").find("line 1"), std::string::npos);   // NaN time
  EXPECT_THROW(load_fault_trace("/nonexistent/fault/trace"), std::runtime_error);
}

TEST(FaultTrace, NonFiniteTimesAndDelaysAreLineNumbered) {
  const auto error_of = [](const char* text) -> std::string {
    std::istringstream in(text);
    try {
      parse_fault_trace(in);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return {};
  };
  // "inf" is rejected either at extraction or by the finite check — both
  // paths must name the offending line.
  const std::string inf_time = error_of("0.5 1 in 1.0\ninf 0 both never\n");
  EXPECT_NE(inf_time.find("fault trace line 2"), std::string::npos);
  const std::string nan_delay = error_of("1 0 both nan\n");
  EXPECT_NE(nan_delay.find("line 1"), std::string::npos);
  EXPECT_NE(nan_delay.find("repair delay"), std::string::npos);
  const std::string trailing = error_of("1 0 both never extra\n");
  EXPECT_NE(trailing.find("line 1"), std::string::npos);
  EXPECT_NE(trailing.find("extra"), std::string::npos);
}

TEST(FaultTrace, PortRangeIsCheckedAtParseTimeWhenKnown) {
  // With the fabric size supplied, an out-of-range port is a *parse* error
  // naming the line — not a generic range failure later at bind time.
  const auto parse_with = [](const char* text, int num_ports) {
    std::istringstream in(text);
    return parse_fault_trace(in, num_ports);
  };
  const auto faults = parse_with("0.5 7 in 1.0\n", 8);  // port 7 of 8: fine
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].port, 7);

  std::string what;
  try {
    parse_with("0.5 3 in 1.0\n1.0 8 out never\n", 8);
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("line 2"), std::string::npos);
  EXPECT_NE(what.find("out of range"), std::string::npos);
  EXPECT_NE(what.find("8"), std::string::npos);

  // Without the fabric size the check is deferred to bind_ports, which
  // still rejects the trace — just without line provenance.
  const auto deferred = parse_with("0.5 8 out never\n", -1);
  ASSERT_EQ(deferred.size(), 1u);
  FaultConfig config;
  config.port_faults = deferred;
  FaultInjector injector(config);
  EXPECT_THROW(injector.bind_ports(8), std::invalid_argument);
}

}  // namespace
}  // namespace reco::sim
