#include "sim/multi_fabric.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"
#include "trace/generator.hpp"
#include "trace/rng.hpp"

namespace reco::sim {
namespace {

constexpr Time kDelta = 0.02;

Coflow make_coflow(int id, const Matrix& d, Time arrival = 0.0, double w = 1.0) {
  Coflow c;
  c.id = id;
  c.weight = w;
  c.arrival = arrival;
  c.demand = d;
  return c;
}

TEST(MultiFabric, EmptyWorkload) {
  GreedyPriorityController ctrl(kDelta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport r = simulate_multi_coflow(ctrl, {}, kDelta);
  EXPECT_TRUE(r.all_served);
  EXPECT_EQ(r.reconfigurations, 0);
}

TEST(MultiFabric, SingleFlowCoflow) {
  Matrix d(2);
  d.at(0, 1) = 0.5;
  GreedyPriorityController ctrl(kDelta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport r = simulate_multi_coflow(ctrl, {make_coflow(0, d)}, kDelta);
  EXPECT_TRUE(r.all_served);
  EXPECT_NEAR(r.cct[0], kDelta + 0.5, 1e-9);
  EXPECT_EQ(r.reconfigurations, 1);
}

TEST(MultiFabric, DisjointCoflowsShareOneEstablishment) {
  Matrix a(2);
  a.at(0, 0) = 0.4;
  Matrix b(2);
  b.at(1, 1) = 0.4;
  GreedyPriorityController ctrl(kDelta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport r =
      simulate_multi_coflow(ctrl, {make_coflow(0, a), make_coflow(1, b)}, kDelta);
  EXPECT_TRUE(r.all_served);
  // Both flows fit one matching: a single reconfiguration serves both.
  EXPECT_EQ(r.reconfigurations, 1);
  EXPECT_NEAR(r.cct[0], kDelta + 0.4, 1e-9);
  EXPECT_NEAR(r.cct[1], kDelta + 0.4, 1e-9);
}

TEST(MultiFabric, SmallestResidualFirstOrdersCompletions) {
  Matrix small(2);
  small.at(0, 0) = 0.2;
  Matrix big(2);
  big.at(0, 0) = 2.0;  // same port: must serialize
  GreedyPriorityController ctrl(kDelta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport r =
      simulate_multi_coflow(ctrl, {make_coflow(0, big), make_coflow(1, small)}, kDelta);
  EXPECT_TRUE(r.all_served);
  EXPECT_LT(r.cct[1], r.cct[0]);  // SEBF-like: small jumps ahead
}

TEST(MultiFabric, ArrivalsAreHonoured) {
  Matrix d(2);
  d.at(0, 1) = 0.3;
  GreedyPriorityController ctrl(kDelta, GreedyPriorityController::Priority::kSmallestResidualFirst);
  const MultiFabricReport r =
      simulate_multi_coflow(ctrl, {make_coflow(0, d, /*arrival=*/1.0)}, kDelta);
  EXPECT_TRUE(r.all_served);
  // CCT measured from arrival: idle wait before t=1 is not charged.
  EXPECT_NEAR(r.cct[0], kDelta + 0.3, 1e-9);
  EXPECT_GE(r.makespan, 1.0 + kDelta + 0.3 - 1e-9);
}

TEST(MultiFabric, ServesGeneratedWorkloadCompletely) {
  GeneratorOptions g;
  g.num_ports = 12;
  g.num_coflows = 15;
  g.seed = 601;
  g.mean_interarrival = 0.01;
  const auto coflows = generate_workload(g);
  for (auto priority : {GreedyPriorityController::Priority::kSmallestResidualFirst,
                        GreedyPriorityController::Priority::kLeastServedFirst}) {
    GreedyPriorityController ctrl(g.delta, priority);
    const MultiFabricReport r = simulate_multi_coflow(ctrl, coflows, g.delta);
    EXPECT_TRUE(r.all_served);
    for (const Coflow& c : coflows) {
      EXPECT_GE(r.cct[c.id], c.demand.rho() - 1e-9) << "coflow " << c.id;
    }
  }
}

TEST(MultiFabric, HoldToLargestNeedsFewerEstablishments) {
  GeneratorOptions g;
  g.num_ports = 10;
  g.num_coflows = 10;
  g.seed = 602;
  const auto coflows = generate_workload(g);
  GreedyPriorityController tight(g.delta,
                                 GreedyPriorityController::Priority::kSmallestResidualFirst,
                                 /*hold_to_largest=*/false);
  GreedyPriorityController wide(g.delta,
                                GreedyPriorityController::Priority::kSmallestResidualFirst,
                                /*hold_to_largest=*/true);
  const MultiFabricReport a = simulate_multi_coflow(tight, coflows, g.delta);
  const MultiFabricReport b = simulate_multi_coflow(wide, coflows, g.delta);
  EXPECT_TRUE(a.all_served);
  EXPECT_TRUE(b.all_served);
  EXPECT_LE(b.reconfigurations, a.reconfigurations);
}

TEST(MultiFabric, WeightedPriorityPrefersHeavyCoflows) {
  // Same demands, wildly different weights sharing one port: the heavy
  // coflow should complete first under the weighted priority.
  Matrix d(2);
  d.at(0, 0) = 1.0;
  GreedyPriorityController ctrl(kDelta,
                                GreedyPriorityController::Priority::kWeightedSmallestFirst);
  const MultiFabricReport r = simulate_multi_coflow(
      ctrl, {make_coflow(0, d, 0.0, /*w=*/0.01), make_coflow(1, d, 0.0, /*w=*/10.0)}, kDelta);
  EXPECT_TRUE(r.all_served);
  EXPECT_LT(r.cct[1], r.cct[0]);
}

TEST(MultiFabric, WeightedPriorityServesGeneratedWorkload) {
  GeneratorOptions g;
  g.num_ports = 10;
  g.num_coflows = 12;
  g.seed = 603;
  const auto coflows = generate_workload(g);
  GreedyPriorityController ctrl(g.delta,
                                GreedyPriorityController::Priority::kWeightedSmallestFirst);
  const MultiFabricReport r = simulate_multi_coflow(ctrl, coflows, g.delta);
  EXPECT_TRUE(r.all_served);
}

TEST(MultiFabric, StoppingControllerReportsUnserved) {
  class StopImmediately final : public MultiCoflowController {
   public:
    std::optional<MultiAssignment> next_assignment(const FabricView&) override {
      return std::nullopt;
    }
  };
  Matrix d(2);
  d.at(0, 0) = 1.0;
  StopImmediately ctrl;
  const MultiFabricReport r = simulate_multi_coflow(ctrl, {make_coflow(0, d)}, kDelta);
  EXPECT_FALSE(r.all_served);
}

TEST(MultiFabric, SpinningControllerIsCutOff) {
  // Returns a dead assignment forever: the guard must terminate the run.
  class Spinner final : public MultiCoflowController {
   public:
    std::optional<MultiAssignment> next_assignment(const FabricView&) override {
      MultiAssignment a;
      a.circuits.push_back({0, 0});
      a.coflow_of.push_back(0);
      a.duration = 1.0;
      return a;
    }
  };
  Matrix d(2);
  d.at(1, 1) = 1.0;  // the spinner never serves this entry
  Spinner ctrl;
  const MultiFabricReport r = simulate_multi_coflow(ctrl, {make_coflow(0, d)}, kDelta);
  EXPECT_FALSE(r.all_served);
}

}  // namespace
}  // namespace reco::sim
