// Event-driven daemon equivalence and steady-state behaviour.
//
// The load-bearing property: OnlineDaemon drives the same OnlineCore as
// the batch loop driver `schedule_online`, through arrival/completion
// events instead of a clairvoyant loop — and the emitted schedules are
// byte-identical (FNV digest over every slice), across policies, seeds,
// and thread counts.
#include "sim/online_daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "sched/online.hpp"
#include "trace/generator.hpp"

namespace reco::sim {
namespace {

GeneratorOptions stream_options(std::uint64_t seed, int coflows = 30, int ports = 12,
                                Time gap = 0.01) {
  GeneratorOptions o;
  o.num_ports = ports;
  o.num_coflows = coflows;
  o.seed = seed;
  o.mean_interarrival = gap;
  return o;
}

OnlineDaemonReport run_daemon(const std::vector<Coflow>& coflows, OnlinePolicyKind kind) {
  VectorSource source(coflows);
  OnlineDaemon daemon(kind);
  daemon.reserve(coflows.size());
  return daemon.run(source);
}

class DaemonPolicyTest : public ::testing::TestWithParam<OnlinePolicyKind> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, DaemonPolicyTest,
                         ::testing::Values(OnlinePolicyKind::kEpochRecoMul,
                                           OnlinePolicyKind::kFifoRecoSin,
                                           OnlinePolicyKind::kDrainReplanRecoMul),
                         [](const auto& info) {
                           switch (info.param) {
                             case OnlinePolicyKind::kEpochRecoMul: return "EpochRecoMul";
                             case OnlinePolicyKind::kFifoRecoSin: return "FifoRecoSin";
                             case OnlinePolicyKind::kDrainReplanRecoMul: return "DrainReplan";
                           }
                           return "Unknown";
                         });

TEST_P(DaemonPolicyTest, MatchesLoopDriverByteForByte) {
  for (const std::uint64_t seed : {411u, 412u, 413u}) {
    const auto coflows = generate_workload(stream_options(seed));
    const OnlineScheduleResult loop = schedule_online(coflows, GetParam());
    const OnlineDaemonReport daemon = run_daemon(coflows, GetParam());
    EXPECT_EQ(daemon.digest, loop.digest) << "seed " << seed;
    EXPECT_EQ(daemon.stats.reconfigurations, loop.reconfigurations) << "seed " << seed;
    EXPECT_EQ(daemon.stats.epochs, loop.epochs) << "seed " << seed;
    EXPECT_NEAR(daemon.stats.total_weighted_cct, loop.total_weighted_cct, 1e-9)
        << "seed " << seed;
    EXPECT_EQ(daemon.stats.finished, coflows.size()) << "seed " << seed;
  }
}

TEST_P(DaemonPolicyTest, EmptySourceIsANoOp) {
  const std::vector<Coflow> none;
  const OnlineDaemonReport r = run_daemon(none, GetParam());
  EXPECT_EQ(r.stats.submitted, 0u);
  EXPECT_EQ(r.events, 0u);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST_P(DaemonPolicyTest, AllArrivalsAtZeroStillDrain) {
  GeneratorOptions o = stream_options(414, 10, 10, 0.0);  // every arrival at t=0
  const auto coflows = generate_workload(o);
  const OnlineDaemonReport r = run_daemon(coflows, GetParam());
  EXPECT_EQ(r.stats.finished, coflows.size());
  EXPECT_EQ(r.digest, schedule_online(coflows, GetParam()).digest);
}

// S4: every decision is a pure function of the submitted coflows, so the
// daemon replays byte-identically regardless of the runtime's thread count.
TEST_P(DaemonPolicyTest, ByteIdenticalAcrossThreadCounts) {
  const auto coflows = generate_workload(stream_options(415));
  runtime::set_thread_count(1);
  const OnlineDaemonReport serial = run_daemon(coflows, GetParam());
  runtime::set_thread_count(4);
  const OnlineDaemonReport parallel = run_daemon(coflows, GetParam());
  runtime::set_thread_count(0);  // restore default
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.stats.reconfigurations, parallel.stats.reconfigurations);
  EXPECT_DOUBLE_EQ(serial.stats.total_weighted_cct, parallel.stats.total_weighted_cct);
}

TEST(OnlineDaemon, ArrivalStreamFeedsIdenticallyToMaterializedWorkload) {
  const GeneratorOptions o = stream_options(416, 40, 10, 0.02);
  const auto coflows = generate_workload(o);
  const OnlineDaemonReport from_vector =
      run_daemon(coflows, OnlinePolicyKind::kDrainReplanRecoMul);

  ArrivalStream stream(o);
  PullSource<ArrivalStream> source(stream);
  OnlineDaemon daemon(OnlinePolicyKind::kDrainReplanRecoMul);
  daemon.reserve(o.num_coflows);
  const OnlineDaemonReport from_stream = daemon.run(source);

  EXPECT_EQ(from_stream.digest, from_vector.digest);
  EXPECT_EQ(from_stream.stats.finished, from_vector.stats.finished);
  EXPECT_EQ(stream.produced(), o.num_coflows);
}

// The tentpole's steady-state claim: once warm, a stationary arrival load
// causes zero further allocation events.  Tile the same coflow block with a
// drain gap between repetitions: every block after the first re-seats
// recycled slots and reuses pre-grown scratch, so the capacity high-water
// mark set during warm-up must never move again.  (A raw Poisson stream is
// not stationary enough for an exact-zero assertion — its concurrency and
// shape maxima keep setting records at a slowly decaying rate.)
TEST(OnlineDaemon, ZeroSteadyStateAllocationAfterWarmup) {
  const auto block = generate_workload(stream_options(417, 25, 10, 0.05));
  Time block_span = 0.0;
  for (const Coflow& c : block) block_span = std::max(block_span, c.arrival);
  const Time period = block_span + 30.0;  // idle drain between blocks

  auto tiled = [&](int blocks) {
    std::vector<Coflow> coflows;
    coflows.reserve(block.size() * static_cast<std::size_t>(blocks));
    for (int t = 0; t < blocks; ++t) {
      for (const Coflow& c : block) {
        Coflow shifted = c;
        shifted.arrival = c.arrival + t * period;
        shifted.id = c.id + t * 1000;
        coflows.push_back(shifted);
      }
    }
    return coflows;
  };

  for (const OnlinePolicyKind kind :
       {OnlinePolicyKind::kEpochRecoMul, OnlinePolicyKind::kFifoRecoSin,
        OnlinePolicyKind::kDrainReplanRecoMul}) {
    OnlineDaemonOptions opt;
    // Soak configuration: the unbounded result buffers are the only state
    // allowed to grow with stream length, so turn them off to expose the
    // engine's own footprint.
    opt.core.record_schedule = false;
    opt.core.record_cct = false;
    auto allocs = [&](int blocks) {
      const auto coflows = tiled(blocks);
      VectorSource source(coflows);
      OnlineDaemon daemon(kind, opt);
      return daemon.run(source).stats.alloc_events;
    };
    const std::uint64_t warm = allocs(4);
    EXPECT_GT(warm, 0u) << to_string(kind);
    EXPECT_EQ(allocs(8), warm) << to_string(kind);
  }
}

}  // namespace
}  // namespace reco::sim
