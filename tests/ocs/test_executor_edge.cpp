// Edge semantics of the analytic executors: the service-quantum floor,
// slice emission, and not-all-stop peer tracking.
#include <gtest/gtest.h>

#include "ocs/all_stop_executor.hpp"
#include "ocs/not_all_stop_executor.hpp"

namespace reco {
namespace {

TEST(ExecutorEdge, SubQuantumResidualNeverPaysReconfiguration) {
  Matrix d(2);
  d.at(0, 0) = kMinServiceQuantum / 2;  // round-off-scale "demand"
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 1.0});
  const ExecutionResult r = execute_all_stop(s, d, 0.5);
  EXPECT_EQ(r.reconfigurations, 0);
  EXPECT_DOUBLE_EQ(r.cct, 0.0);
  EXPECT_TRUE(r.satisfied);  // below the quantum counts as served
}

TEST(ExecutorEdge, MixedQuantumAssignmentServesOnlyRealDemand) {
  Matrix d(2);
  d.at(0, 0) = kMinServiceQuantum / 2;
  d.at(1, 1) = 2.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}, {1, 1}}, 2.0});
  SliceSchedule slices;
  const ExecutionResult r = execute_all_stop(s, d, 0.5, 0.0, 0, &slices);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 1);
  // The crumb is not worth a slice.
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].src, 1);
}

TEST(ExecutorEdge, SlicesComeOutInAssignmentOrder) {
  Matrix d(2);
  d.at(0, 1) = 1.0;
  d.at(1, 0) = 1.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}}, 1.0});
  s.assignments.push_back({{{1, 0}}, 1.0});
  SliceSchedule slices;
  execute_all_stop(s, d, 0.25, 0.0, 3, &slices);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_LT(slices[0].start, slices[1].start);
  EXPECT_EQ(slices[0].coflow, 3);
}

TEST(ExecutorEdge, NotAllStopPeerTrackingAcrossAssignments) {
  // (0,0) held in assignments 1 and 3 with (0,1) in between: the return to
  // (0,0) must pay a fresh setup because port 0 was re-wired.
  Matrix d(2);
  d.at(0, 0) = 2.0;
  d.at(0, 1) = 1.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 1.0});
  s.assignments.push_back({{{0, 1}}, 1.0});
  s.assignments.push_back({{{0, 0}}, 1.0});
  const ExecutionResult r = execute_not_all_stop(s, d, 0.5);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 3);  // every hop re-wires ingress port 0
  EXPECT_DOUBLE_EQ(r.cct, 3 * 0.5 + 3.0);
}

TEST(ExecutorEdge, ResidualMatrixReflectsPartialService) {
  Matrix d(2);
  d.at(0, 0) = 5.0;
  d.at(1, 1) = 5.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 2.0});
  const ExecutionResult r = execute_all_stop(s, d, 0.1);
  EXPECT_FALSE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.residual.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(r.residual.at(1, 1), 5.0);
}

TEST(ExecutorEdge, ZeroDeltaIsLegal) {
  Matrix d(1);
  d.at(0, 0) = 1.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 1.0});
  const ExecutionResult r = execute_all_stop(s, d, 0.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.cct, 1.0);
  EXPECT_EQ(r.reconfigurations, 1);  // counted, but free
}

}  // namespace
}  // namespace reco
