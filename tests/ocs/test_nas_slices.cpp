#include <gtest/gtest.h>

#include "ocs/slice_executor.hpp"
#include "sched/ordering.hpp"
#include "sched/packet_scheduler.hpp"
#include "sched/reco_mul.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(NasSlices, SingleFlowPaysOneDelta) {
  const SliceSchedule pseudo{{0, 5, 0, 1, 0}};
  const SliceSchedule real = realize_not_all_stop(pseudo, 1.0);
  ASSERT_EQ(real.size(), 1u);
  EXPECT_DOUBLE_EQ(real[0].start, 1.0);
  EXPECT_DOUBLE_EQ(real[0].end, 6.0);
}

TEST(NasSlices, DisjointFlowsDoNotDelayEachOther) {
  // Unlike all-stop inflation, batches on other ports cost nothing here.
  const SliceSchedule pseudo{{0, 2, 0, 0, 0}, {1, 3, 1, 1, 1}};
  const SliceSchedule real = realize_not_all_stop(pseudo, 0.5);
  EXPECT_DOUBLE_EQ(real[0].start, 0.5);
  EXPECT_DOUBLE_EQ(real[0].end, 2.5);
  EXPECT_DOUBLE_EQ(real[1].start, 1.5);
  EXPECT_DOUBLE_EQ(real[1].end, 3.5);
}

TEST(NasSlices, SamePortFlowsSerializeWithSetups) {
  const SliceSchedule pseudo{{0, 2, 0, 0, 0}, {2, 3, 0, 1, 1}};
  const SliceSchedule real = realize_not_all_stop(pseudo, 1.0);
  // First: [1,3).  Second: max(2, 3) + 1 = 4 -> [4,5).
  EXPECT_DOUBLE_EQ(real[1].start, 4.0);
  EXPECT_TRUE(is_port_feasible(real));
}

TEST(NasSlices, PreservesDurations) {
  Rng rng(421);
  const auto coflows = testing::random_workload(rng, 6, 4, 0.02, 4.0);
  const SliceSchedule pseudo = packet_schedule(coflows, bssi_order(coflows));
  const SliceSchedule real = realize_not_all_stop(pseudo, 0.02);
  ASSERT_EQ(real.size(), pseudo.size());
  for (std::size_t f = 0; f < pseudo.size(); ++f) {
    EXPECT_NEAR(real[f].duration(), pseudo[f].duration(), 1e-9);
  }
}

TEST(NasSlices, AlwaysPortFeasibleEvenOnInfeasiblePseudoInput) {
  // The realization re-serializes per port, so even a deliberately
  // overlapping pseudo schedule comes out feasible.
  const SliceSchedule overlapping{{0, 2, 0, 0, 0}, {1, 3, 0, 1, 1}};
  EXPECT_FALSE(is_port_feasible(overlapping));
  EXPECT_TRUE(is_port_feasible(realize_not_all_stop(overlapping, 0.1)));
}

TEST(NasSlices, NeverSlowerThanAllStopInflationOnRecoMul) {
  // Sec. VI: a feasible all-stop schedule is feasible not-all-stop, and the
  // per-port model can only help (no global halts).
  Rng rng(422);
  const Time delta = 0.02;
  const double c = 4.0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto coflows = testing::random_workload(rng, 8, 6, delta, c);
    const SliceSchedule packet = packet_schedule(coflows, bssi_order(coflows));
    const RecoMulSchedule rm = reco_mul_transform(packet, delta, c);
    const SliceSchedule nas = realize_not_all_stop(rm.pseudo, delta);
    const auto all_stop_cct = completion_times(rm.real, static_cast<int>(coflows.size()));
    const auto nas_cct = completion_times(nas, static_cast<int>(coflows.size()));
    double all_stop_sum = 0.0;
    double nas_sum = 0.0;
    for (std::size_t k = 0; k < coflows.size(); ++k) {
      all_stop_sum += all_stop_cct[k];
      nas_sum += nas_cct[k];
    }
    EXPECT_LE(nas_sum, all_stop_sum + 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace reco
