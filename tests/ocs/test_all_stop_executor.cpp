#include "ocs/all_stop_executor.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

TEST(AllStopExecutor, SingleAssignmentExactDemand) {
  const Matrix demand = Matrix::from_rows({{0, 5}, {3, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 0}}, 5.0});
  const ExecutionResult r = execute_all_stop(s, demand, 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 1);
  EXPECT_DOUBLE_EQ(r.transmission_time, 5.0);
  EXPECT_DOUBLE_EQ(r.reconfiguration_time, 1.0);
  EXPECT_DOUBLE_EQ(r.cct, 6.0);
}

TEST(AllStopExecutor, EarlyStopWhenResidualFinishes) {
  // Planned duration 10 but the largest residual is 4: hold only 4.
  const Matrix demand = Matrix::from_rows({{0, 4}, {2, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 0}}, 10.0});
  const ExecutionResult r = execute_all_stop(s, demand, 0.5);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.transmission_time, 4.0);
  EXPECT_DOUBLE_EQ(r.cct, 4.5);
}

TEST(AllStopExecutor, SkipsUselessAssignments) {
  const Matrix demand = Matrix::from_rows({{0, 2}, {0, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}}, 2.0});
  s.assignments.push_back({{{0, 1}}, 2.0});  // nothing left: must not reconfigure
  s.assignments.push_back({{{1, 0}}, 2.0});  // no demand at all on (1,0)
  const ExecutionResult r = execute_all_stop(s, demand, 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 1);
  EXPECT_DOUBLE_EQ(r.cct, 3.0);
}

TEST(AllStopExecutor, PartialServiceLeavesResidual) {
  const Matrix demand = Matrix::from_rows({{0, 5}, {0, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}}, 2.0});
  const ExecutionResult r = execute_all_stop(s, demand, 1.0);
  EXPECT_FALSE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.residual.at(0, 1), 3.0);
}

TEST(AllStopExecutor, CircuitStopsWhenItsOwnDemandDone) {
  // Circuit (0,1) has 1 unit, (1,0) has 5: the establishment is held 5 but
  // (0,1) only transmits 1.
  const Matrix demand = Matrix::from_rows({{0, 1}, {5, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 0}}, 5.0});
  SliceSchedule slices;
  const ExecutionResult r = execute_all_stop(s, demand, 1.0, 0.0, 7, &slices);
  EXPECT_TRUE(r.satisfied);
  ASSERT_EQ(slices.size(), 2u);
  // Both slices start right after the reconfiguration.
  EXPECT_DOUBLE_EQ(slices[0].start, 1.0);
  EXPECT_DOUBLE_EQ(slices[0].end, 2.0);   // the 1-unit flow
  EXPECT_DOUBLE_EQ(slices[1].end, 6.0);   // the 5-unit flow
  EXPECT_EQ(slices[0].coflow, 7);
}

TEST(AllStopExecutor, StartClockOffsetsSlices) {
  const Matrix demand = Matrix::from_rows({{2}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 2.0});
  SliceSchedule slices;
  const ExecutionResult r = execute_all_stop(s, demand, 1.0, 10.0, 0, &slices);
  EXPECT_DOUBLE_EQ(r.cct, 3.0);  // cct is relative to the coflow's start
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_DOUBLE_EQ(slices[0].start, 11.0);
  EXPECT_DOUBLE_EQ(slices[0].end, 13.0);
}

TEST(AllStopExecutor, EmptyScheduleEmptyDemand) {
  const ExecutionResult r = execute_all_stop(CircuitSchedule{}, Matrix(3), 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.cct, 0.0);
  EXPECT_EQ(r.reconfigurations, 0);
}

TEST(AllStopExecutor, MultipleAssignmentsAccumulate) {
  const Matrix demand = Matrix::from_rows({{0, 3}, {4, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}}, 3.0});
  s.assignments.push_back({{{1, 0}}, 4.0});
  const ExecutionResult r = execute_all_stop(s, demand, 0.25);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 2);
  EXPECT_DOUBLE_EQ(r.cct, 3.0 + 4.0 + 2 * 0.25);
}

}  // namespace
}  // namespace reco
