#include "ocs/slice_executor.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(SliceExecutor, CountReconfigurationsIsBatchCount) {
  const SliceSchedule s{{0, 1, 0, 0, 0}, {0, 2, 1, 1, 1}, {5, 6, 0, 0, 0}};
  EXPECT_EQ(count_reconfigurations(s), 2);  // batches at t=0 and t=5
  EXPECT_EQ(count_reconfigurations({}), 0);
}

TEST(SliceExecutor, InflateSingleBatch) {
  // One batch at t=0: every flow waits one delta, nothing halts mid-flight.
  const SliceSchedule pseudo{{0, 2, 0, 0, 0}, {0, 3, 1, 1, 1}};
  const SliceSchedule real = inflate_pseudo_time(pseudo, 0.5);
  ASSERT_EQ(real.size(), 2u);
  EXPECT_DOUBLE_EQ(real[0].start, 0.5);
  EXPECT_DOUBLE_EQ(real[0].end, 2.5);
  EXPECT_DOUBLE_EQ(real[1].start, 0.5);
  EXPECT_DOUBLE_EQ(real[1].end, 3.5);
}

TEST(SliceExecutor, MidFlightBatchHaltsFlow) {
  // Flow A spans the batch at t=1 (flow B's start): A is halted once.
  const SliceSchedule pseudo{{0, 3, 0, 0, 0}, {1, 2, 1, 1, 1}};
  const SliceSchedule real = inflate_pseudo_time(pseudo, 0.5);
  // A: starts after its own batch (0.5), ends at 3 + 2*0.5 (own + mid-flight).
  EXPECT_DOUBLE_EQ(real[0].start, 0.5);
  EXPECT_DOUBLE_EQ(real[0].end, 4.0);
  // B: waits for both batches.
  EXPECT_DOUBLE_EQ(real[1].start, 2.0);
  EXPECT_DOUBLE_EQ(real[1].end, 3.0);
}

TEST(SliceExecutor, SequentialFlowsStaySequential) {
  const SliceSchedule pseudo{{0, 2, 0, 0, 0}, {2, 4, 0, 0, 1}};
  const SliceSchedule real = inflate_pseudo_time(pseudo, 1.0);
  EXPECT_TRUE(is_port_feasible(real));
  // Second flow waits for both reconfigurations.
  EXPECT_DOUBLE_EQ(real[1].start, 4.0);
  EXPECT_GE(real[1].start, real[0].end);
}

TEST(SliceExecutor, InflationPreservesFeasibilityRandomly) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    // Build a random feasible pseudo schedule by sequential stacking per port.
    const int n = 4;
    std::vector<Time> free_in(n, 0.0);
    std::vector<Time> free_out(n, 0.0);
    SliceSchedule pseudo;
    for (int f = 0; f < 20; ++f) {
      const int i = rng.uniform_int(n);
      const int j = rng.uniform_int(n);
      const Time start = std::max(free_in[i], free_out[j]) + rng.uniform(0.0, 0.5);
      const Time dur = rng.uniform(0.1, 2.0);
      pseudo.push_back({start, start + dur, i, j, f % 3});
      free_in[i] = start + dur;
      free_out[j] = start + dur;
    }
    ASSERT_TRUE(is_port_feasible(pseudo)) << "trial " << trial;
    const SliceSchedule real = inflate_pseudo_time(pseudo, 0.05);
    EXPECT_TRUE(is_port_feasible(real)) << "trial " << trial;
  }
}

TEST(SliceExecutor, InflationStretchesDurationByMidFlightBatchesOnly) {
  const SliceSchedule pseudo{{0, 10, 0, 0, 0}, {2, 3, 1, 1, 1}, {5, 6, 2, 2, 2}};
  const SliceSchedule real = inflate_pseudo_time(pseudo, 1.0);
  // Flow 0 has batches at 2 and 5 mid-flight: duration 10 -> 12.
  EXPECT_DOUBLE_EQ(real[0].duration(), 12.0);
  // Flow 1 and 2 have no mid-flight batches.
  EXPECT_DOUBLE_EQ(real[1].duration(), 1.0);
  EXPECT_DOUBLE_EQ(real[2].duration(), 1.0);
}

TEST(SliceExecutor, AnalyzeScheduleAggregates) {
  const SliceSchedule s{{0, 2, 0, 0, 0}, {0, 5, 1, 1, 1}, {6, 7, 0, 0, 1}};
  const MultiExecutionStats stats = analyze_schedule(s, 2);
  EXPECT_DOUBLE_EQ(stats.cct[0], 2.0);
  EXPECT_DOUBLE_EQ(stats.cct[1], 7.0);
  EXPECT_EQ(stats.reconfigurations, 2);
  EXPECT_DOUBLE_EQ(stats.makespan, 7.0);
}

}  // namespace
}  // namespace reco
