#include "ocs/not_all_stop_executor.hpp"

#include <gtest/gtest.h>

#include "bvn/stuffing.hpp"
#include "bvn/bvn.hpp"
#include "ocs/all_stop_executor.hpp"
#include "testing_util.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

TEST(NotAllStopExecutor, SingleAssignmentMatchesAllStop) {
  const Matrix demand = Matrix::from_rows({{0, 5}, {3, 0}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 1}, {1, 0}}, 5.0});
  const ExecutionResult r = execute_not_all_stop(s, demand, 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.cct, 6.0);  // one delta + the longer circuit
}

TEST(NotAllStopExecutor, UnchangedCircuitPaysNoDelta) {
  // Same circuit in two consecutive assignments: second establishment free.
  const Matrix demand = Matrix::from_rows({{4}});
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}}, 2.0});
  s.assignments.push_back({{{0, 0}}, 2.0});
  const ExecutionResult r = execute_not_all_stop(s, demand, 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.reconfigurations, 1);
  EXPECT_DOUBLE_EQ(r.cct, 1.0 + 4.0);
}

TEST(NotAllStopExecutor, DisjointCircuitsReconfigureIndependently) {
  // (0,0) runs long; (1,1) then (1,0)... port 1 reconfigures while port 0
  // keeps transmitting -- the not-all-stop advantage.
  Matrix demand(2);
  demand.at(0, 0) = 10.0;
  demand.at(1, 1) = 2.0;
  CircuitSchedule s;
  s.assignments.push_back({{{0, 0}, {1, 1}}, 10.0});
  const ExecutionResult r = execute_not_all_stop(s, demand, 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.cct, 11.0);
}

TEST(NotAllStopExecutor, NeverSlowerThanAllStopOnSameSchedule) {
  Rng rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    const Matrix demand = testing::random_demand(rng, 6, 0.5, 0.5, 4.0);
    const CircuitSchedule s = bvn_decompose(stuff(demand), BvnPolicy::kFirstMatching);
    const ExecutionResult all_stop = execute_all_stop(s, demand, 0.1);
    const ExecutionResult not_all_stop = execute_not_all_stop(s, demand, 0.1);
    EXPECT_TRUE(not_all_stop.satisfied) << "trial " << trial;
    EXPECT_LE(not_all_stop.cct, all_stop.cct + 1e-9) << "trial " << trial;
  }
}

TEST(NotAllStopExecutor, EmptySchedule) {
  const ExecutionResult r = execute_not_all_stop(CircuitSchedule{}, Matrix(2), 1.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.cct, 0.0);
}

}  // namespace
}  // namespace reco
