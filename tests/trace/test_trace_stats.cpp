#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

namespace reco {
namespace {

Coflow make_coflow(int id, const Matrix& demand) {
  Coflow c;
  c.id = id;
  c.demand = demand;
  return c;
}

TEST(TraceStats, EmptyWorkload) {
  const WorkloadStats s = compute_stats({});
  EXPECT_EQ(s.num_coflows, 0);
  EXPECT_DOUBLE_EQ(s.density_percent[0], 0.0);
}

TEST(TraceStats, CountsAndPercentages) {
  // One sparse S2S, one dense M2M.
  Matrix s2s(10);
  s2s.at(0, 0) = 2.0;
  Matrix m2m(2);
  m2m.at(0, 0) = m2m.at(0, 1) = m2m.at(1, 0) = 6.0;  // DS = 0.75
  const std::vector<Coflow> coflows{make_coflow(0, s2s), make_coflow(1, m2m)};
  const WorkloadStats st = compute_stats(coflows);
  EXPECT_EQ(st.num_coflows, 2);
  EXPECT_DOUBLE_EQ(st.density_percent[0], 50.0);  // sparse
  EXPECT_DOUBLE_EQ(st.density_percent[2], 50.0);  // dense
  EXPECT_DOUBLE_EQ(st.mode_count_percent[0], 50.0);  // S2S
  EXPECT_DOUBLE_EQ(st.mode_count_percent[3], 50.0);  // M2M
  // Bytes: 2 vs 18.
  EXPECT_DOUBLE_EQ(st.mode_size_percent[0], 10.0);
  EXPECT_DOUBLE_EQ(st.mode_size_percent[3], 90.0);
  EXPECT_DOUBLE_EQ(st.min_nonzero_demand, 2.0);
}

TEST(TraceStats, FormatMentionsPaperNumbers) {
  const WorkloadStats st = compute_stats({make_coflow(0, Matrix::from_rows({{1.0}}))});
  const std::string text = format_stats(st);
  EXPECT_NE(text.find("86.31"), std::string::npos);
  EXPECT_NE(text.find("99.943"), std::string::npos);
  EXPECT_NE(text.find("Table I"), std::string::npos);
  EXPECT_NE(text.find("Table II"), std::string::npos);
}

}  // namespace
}  // namespace reco
