// Arrival-process behaviour of the workload generator (the online
// extension's input model).
#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace reco {
namespace {

GeneratorOptions base() {
  GeneratorOptions o;
  o.num_ports = 20;
  o.num_coflows = 200;
  o.seed = 71;
  return o;
}

TEST(Arrivals, AllZeroByDefault) {
  for (const Coflow& c : generate_workload(base())) EXPECT_DOUBLE_EQ(c.arrival, 0.0);
}

TEST(Arrivals, MonotoneNonDecreasingByCoflowId) {
  GeneratorOptions o = base();
  o.mean_interarrival = 0.01;
  const auto coflows = generate_workload(o);
  for (std::size_t k = 1; k < coflows.size(); ++k) {
    EXPECT_GE(coflows[k].arrival, coflows[k - 1].arrival);
  }
  EXPECT_GT(coflows.back().arrival, 0.0);
}

TEST(Arrivals, MeanGapRoughlyAsConfigured) {
  GeneratorOptions o = base();
  o.num_coflows = 2000;
  o.mean_interarrival = 0.01;
  const auto coflows = generate_workload(o);
  const double mean_gap = coflows.back().arrival / (coflows.size() - 1);
  EXPECT_NEAR(mean_gap, 0.01, 0.002);  // exponential gaps, 2000 samples
}

TEST(ArrivalStream, BitIdenticalToMaterializedWorkload) {
  GeneratorOptions o = base();
  o.num_coflows = 60;
  o.mean_interarrival = 0.01;
  const auto coflows = generate_workload(o);
  ArrivalStream stream(o);
  for (const Coflow& expected : coflows) {
    const Coflow* got = stream.peek();
    ASSERT_NE(got, nullptr) << "stream ended early at coflow " << expected.id;
    EXPECT_EQ(got->id, expected.id);
    EXPECT_DOUBLE_EQ(got->arrival, expected.arrival);
    EXPECT_DOUBLE_EQ(got->weight, expected.weight);
    EXPECT_EQ(got->demand, expected.demand);
    stream.pop();
  }
  EXPECT_EQ(stream.peek(), nullptr);
  EXPECT_EQ(stream.produced(), o.num_coflows);
}

TEST(ArrivalStream, PeekIsIdempotentAndPopPastEndIsSafe) {
  GeneratorOptions o = base();
  o.num_coflows = 2;
  ArrivalStream stream(o);
  const Coflow* first = stream.peek();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(stream.peek(), first);  // same buffer, no re-synthesis
  stream.pop();
  stream.pop();
  EXPECT_EQ(stream.peek(), nullptr);
  stream.pop();  // harmless
  EXPECT_EQ(stream.produced(), 2);
}

TEST(Arrivals, ArrivalsDoNotPerturbDemands) {
  // Adding an arrival process must not change the demand stream (it draws
  // from the same RNG, so this guards the draw ordering).
  GeneratorOptions o = base();
  o.num_coflows = 30;
  const auto without = generate_workload(o);
  o.mean_interarrival = 0.05;
  const auto with = generate_workload(o);
  ASSERT_EQ(without.size(), with.size());
  // Demands will differ (extra RNG draws interleave) — but the structural
  // mix must stay calibrated.  Check mode counts stay identical-ish.
  int m2m_without = 0;
  int m2m_with = 0;
  for (std::size_t k = 0; k < without.size(); ++k) {
    m2m_without += without[k].mode() == TransmissionMode::kM2M;
    m2m_with += with[k].mode() == TransmissionMode::kM2M;
  }
  EXPECT_NEAR(m2m_without, m2m_with, 10);
}

}  // namespace
}  // namespace reco
