#include "trace/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace reco {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(12);
  for (int i = 0; i < 500; ++i) EXPECT_GT(rng.lognormal(0.0, 2.0), 0.0);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, SampleDistinctIsDistinctAndInRange) {
  Rng rng(14);
  std::vector<int> out(10);
  rng.sample_distinct(20, 10, out.data());
  std::set<int> seen(out.begin(), out.end());
  EXPECT_EQ(seen.size(), 10u);
  for (int v : out) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
  EXPECT_THROW(rng.sample_distinct(3, 5, out.data()), std::invalid_argument);
}

TEST(Rng, SampleDistinctFullPermutation) {
  Rng rng(15);
  std::vector<int> out(6);
  rng.sample_distinct(6, 6, out.data());
  std::set<int> seen(out.begin(), out.end());
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace reco
