#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"

namespace reco {
namespace {

GeneratorOptions small_options() {
  GeneratorOptions o;
  o.num_ports = 40;
  o.num_coflows = 120;
  o.seed = 5;
  return o;
}

TEST(Generator, ProducesRequestedCount) {
  const auto coflows = generate_workload(small_options());
  EXPECT_EQ(coflows.size(), 120u);
  for (std::size_t k = 0; k < coflows.size(); ++k) {
    EXPECT_EQ(coflows[k].id, static_cast<int>(k));
    EXPECT_EQ(coflows[k].demand.n(), 40);
    EXPECT_GT(coflows[k].demand.nnz(), 0);
  }
}

TEST(Generator, DeterministicForSameSeed) {
  const auto a = generate_workload(small_options());
  const auto b = generate_workload(small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].demand, b[k].demand);
    EXPECT_DOUBLE_EQ(a[k].weight, b[k].weight);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorOptions o = small_options();
  const auto a = generate_workload(o);
  o.seed = 6;
  const auto b = generate_workload(o);
  int identical = 0;
  for (std::size_t k = 0; k < a.size(); ++k) identical += a[k].demand == b[k].demand;
  EXPECT_LT(identical, 5);
}

TEST(Generator, RespectsOpticalThreshold) {
  const GeneratorOptions o = small_options();
  const auto coflows = generate_workload(o);
  const double min_demand = o.c_threshold * o.delta;
  for (const Coflow& c : coflows) {
    const double mn = c.demand.min_nonzero();
    EXPECT_GE(mn, min_demand - 1e-12);
  }
}

TEST(Generator, WeightsInUnitIntervalByDefault) {
  const auto coflows = generate_workload(small_options());
  for (const Coflow& c : coflows) {
    EXPECT_GE(c.weight, 0.0);
    EXPECT_LT(c.weight, 1.0);
  }
}

TEST(Generator, UnitWeightsFlag) {
  GeneratorOptions o = small_options();
  o.unit_weights = true;
  for (const Coflow& c : generate_workload(o)) EXPECT_DOUBLE_EQ(c.weight, 1.0);
}

TEST(Generator, ModeMixApproximatesTableII) {
  GeneratorOptions o;
  o.num_ports = 150;
  o.num_coflows = 2000;  // large sample to stabilize proportions
  o.seed = 99;
  const WorkloadStats s = compute_stats(generate_workload(o));
  EXPECT_NEAR(s.mode_count_percent[0], 23.38, 4.0);  // S2S
  EXPECT_NEAR(s.mode_count_percent[1], 9.89, 3.0);   // S2M
  EXPECT_NEAR(s.mode_count_percent[2], 40.11, 4.0);  // M2S
  EXPECT_NEAR(s.mode_count_percent[3], 26.62, 4.0);  // M2M
  // M2M dominates bytes.
  EXPECT_GT(s.mode_size_percent[3], 95.0);
}

TEST(Generator, DensityMixApproximatesTableI) {
  GeneratorOptions o;
  o.num_ports = 150;
  o.num_coflows = 2000;
  o.seed = 77;
  const WorkloadStats s = compute_stats(generate_workload(o));
  EXPECT_NEAR(s.density_percent[0], 86.31, 5.0);  // sparse
  EXPECT_NEAR(s.density_percent[1], 5.13, 4.0);   // normal
  EXPECT_NEAR(s.density_percent[2], 8.56, 4.0);   // dense
}

TEST(Generator, RejectsTinyFabric) {
  GeneratorOptions o;
  o.num_ports = 1;
  EXPECT_THROW(generate_workload(o), std::invalid_argument);
}

TEST(Generator, DefaultMatchesPaperScale) {
  const GeneratorOptions o;
  EXPECT_EQ(o.num_ports, 150);
  EXPECT_EQ(o.num_coflows, 526);
  EXPECT_DOUBLE_EQ(o.delta, 100e-6);
}

}  // namespace
}  // namespace reco
