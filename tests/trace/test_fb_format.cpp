#include "trace/fb_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace reco {
namespace {

// Two coflows on a 4-rack cluster: a 2x2 shuffle and a single flow.
constexpr const char* kSample =
    "4 2\n"
    "1 0 2 0 1 2 2:100 3:50\n"
    "7 2500 1 3 1 0:10\n";

TEST(FbFormat, ParsesHeaderAndCounts) {
  std::istringstream in(kSample);
  int ports = 0;
  const auto coflows = read_fb_trace(in, ports);
  EXPECT_EQ(ports, 4);
  ASSERT_EQ(coflows.size(), 2u);
  EXPECT_EQ(coflows[0].id, 0);
  EXPECT_EQ(coflows[1].id, 1);
}

TEST(FbFormat, SplitsReducerVolumeAcrossMappers) {
  std::istringstream in(kSample);
  int ports = 0;
  const auto coflows = read_fb_trace(in, ports);
  const Matrix& d = coflows[0].demand;
  // Reducer rack 2 gets 100 MB from mappers {0, 1}: 50 MB per mapper.
  const Time expect_half = megabytes_to_seconds(50.0, 100.0);
  EXPECT_NEAR(d.at(0, 2), expect_half, 1e-12);
  EXPECT_NEAR(d.at(1, 2), expect_half, 1e-12);
  // Reducer rack 3 gets 50 MB: 25 MB per mapper.
  EXPECT_NEAR(d.at(0, 3), megabytes_to_seconds(25.0, 100.0), 1e-12);
  EXPECT_EQ(coflows[0].mode(), TransmissionMode::kM2M);
}

TEST(FbFormat, MegabyteConversionAt100Gbps) {
  // 100 MB at 100 Gb/s = 800 Mbit / 100000 Mbit/s = 8 ms.
  EXPECT_NEAR(megabytes_to_seconds(100.0, 100.0), 8e-3, 1e-12);
  EXPECT_THROW(megabytes_to_seconds(1.0, 0.0), std::invalid_argument);
}

TEST(FbFormat, ArrivalsZeroedByDefaultKeptOnRequest) {
  {
    std::istringstream in(kSample);
    int ports = 0;
    const auto coflows = read_fb_trace(in, ports);
    EXPECT_DOUBLE_EQ(coflows[1].arrival, 0.0);
  }
  {
    std::istringstream in(kSample);
    int ports = 0;
    FbTraceOptions o;
    o.zero_arrivals = false;
    const auto coflows = read_fb_trace(in, ports, o);
    EXPECT_DOUBLE_EQ(coflows[1].arrival, 2.5);  // 2500 ms
  }
}

TEST(FbFormat, IntraRackTrafficDropped) {
  // Mapper and reducer in the same rack: no fabric demand.
  std::istringstream in("2 1\n1 0 1 1 1 1:40\n");
  int ports = 0;
  const auto coflows = read_fb_trace(in, ports);
  EXPECT_EQ(coflows[0].demand.nnz(), 0);
}

TEST(FbFormat, PerturbationStaysWithinBounds) {
  FbTraceOptions o;
  o.perturbation = 0.05;
  std::istringstream in(kSample);
  int ports = 0;
  const auto coflows = read_fb_trace(in, ports, o);
  const Time base = megabytes_to_seconds(50.0, 100.0);
  const double got = coflows[0].demand.at(0, 2);
  EXPECT_GE(got, base * 0.95 - 1e-12);
  EXPECT_LE(got, base * 1.05 + 1e-12);
}

TEST(FbFormat, RejectsMalformedInput) {
  int ports = 0;
  {
    std::istringstream in("not-a-number\n");
    EXPECT_THROW(read_fb_trace(in, ports), std::runtime_error);
  }
  {
    std::istringstream in("4 1\n1 0 1 9 1 2:10\n");  // mapper rack 9 out of range
    EXPECT_THROW(read_fb_trace(in, ports), std::runtime_error);
  }
  {
    std::istringstream in("4 1\n1 0 1 0 1 2-10\n");  // missing colon
    EXPECT_THROW(read_fb_trace(in, ports), std::runtime_error);
  }
  {
    std::istringstream in("4 1\n1 0 1 0 2 2:10\n");  // truncated reducer list
    EXPECT_THROW(read_fb_trace(in, ports), std::runtime_error);
  }
  EXPECT_THROW(load_fb_trace("/nonexistent/file", ports), std::runtime_error);
}

TEST(FbFormat, MalformedInputNamesTheLine) {
  const auto error_of = [](const char* text) -> std::string {
    std::istringstream in(text);
    int ports = 0;
    try {
      read_fb_trace(in, ports);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return {};
  };
  // Out-of-range reducer rack, NaN shuffle size, negative size, negative
  // arrival: each error names the offending (1-based) line.
  EXPECT_NE(error_of("4 1\n1 0 1 0 1 9:10\n").find("line 2"), std::string::npos);
  EXPECT_NE(error_of("4 1\n1 0 1 0 1 2:nan\n").find("line 2"), std::string::npos);
  EXPECT_NE(error_of("4 1\n1 0 1 0 1 2:-10\n").find("line 2"), std::string::npos);
  EXPECT_NE(error_of("4 2\n1 0 1 0 1 2:10\n5 -3 1 0 1 2:10\n").find("line 3"),
            std::string::npos);
  EXPECT_NE(error_of("4 2\n1 0 1 0 1 2:10\n").find("expected 2"), std::string::npos);
}

}  // namespace
}  // namespace reco
