#include "trace/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace reco {
namespace {

TEST(Serialization, RoundTripPreservesEverything) {
  GeneratorOptions o;
  o.num_ports = 20;
  o.num_coflows = 30;
  o.seed = 3;
  o.mean_interarrival = 0.01;  // arrivals must survive the round trip (v2)
  const auto original = generate_workload(o);

  std::stringstream buffer;
  write_trace(buffer, original, o.num_ports);
  int ports = 0;
  const auto loaded = read_trace(buffer, ports);

  EXPECT_EQ(ports, 20);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t k = 0; k < original.size(); ++k) {
    EXPECT_EQ(loaded[k].id, original[k].id);
    EXPECT_DOUBLE_EQ(loaded[k].weight, original[k].weight);
    EXPECT_DOUBLE_EQ(loaded[k].arrival, original[k].arrival);
    EXPECT_EQ(loaded[k].demand, original[k].demand);
  }
}

TEST(Serialization, ReadsLegacyVersionOneWithZeroArrivals) {
  std::stringstream buffer("reco-trace 1 4 1\n0 0.5 1 0 1 5.0\n");
  int ports = 0;
  const auto coflows = read_trace(buffer, ports);
  ASSERT_EQ(coflows.size(), 1u);
  EXPECT_DOUBLE_EQ(coflows[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(coflows[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(coflows[0].demand.at(0, 1), 5.0);
}

TEST(Serialization, EmptyWorkloadRoundTrips) {
  std::stringstream buffer;
  write_trace(buffer, {}, 8);
  int ports = 0;
  EXPECT_TRUE(read_trace(buffer, ports).empty());
  EXPECT_EQ(ports, 8);
}

TEST(Serialization, RejectsBadHeader) {
  std::stringstream buffer("not-a-trace 1 4 0\n");
  int ports = 0;
  EXPECT_THROW(read_trace(buffer, ports), std::runtime_error);
}

TEST(Serialization, RejectsBadVersion) {
  std::stringstream buffer("reco-trace 99 4 0\n");
  int ports = 0;
  EXPECT_THROW(read_trace(buffer, ports), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedRecord) {
  std::stringstream buffer("reco-trace 2 4 1\n0 1.0 0.0 2 0 0 5.0\n");  // second flow missing
  int ports = 0;
  EXPECT_THROW(read_trace(buffer, ports), std::runtime_error);
}

TEST(Serialization, RejectsOutOfRangePort) {
  std::stringstream buffer("reco-trace 2 4 1\n0 1.0 0.0 1 0 9 5.0\n");
  int ports = 0;
  EXPECT_THROW(read_trace(buffer, ports), std::runtime_error);
}

// Every malformed input is rejected with a message naming the 1-based line.
std::string read_error(const std::string& text) {
  std::stringstream buffer(text);
  int ports = 0;
  try {
    read_trace(buffer, ports);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(Serialization, RejectsNaNDemandWithLineNumber) {
  // "nan" either fails numeric extraction (truncated list) or parses as a
  // NaN demand; both are rejected naming line 2.
  const std::string err = read_error("reco-trace 2 4 1\n0 1.0 0.0 1 0 1 nan\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Serialization, RejectsNegativeDemandWithLineNumber) {
  const std::string err = read_error("reco-trace 2 4 1\n0 1.0 0.0 1 0 1 -5.0\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Serialization, RejectsDuplicateFlow) {
  const std::string err = read_error("reco-trace 2 4 1\n0 1.0 0.0 2 0 1 5.0 0 1 2.0\n");
  EXPECT_NE(err.find("duplicate flow"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Serialization, RejectsDuplicateCoflowId) {
  const std::string err = read_error(
      "reco-trace 2 4 2\n7 1.0 0.0 1 0 1 5.0\n7 1.0 0.0 1 1 2 3.0\n");
  EXPECT_NE(err.find("duplicate coflow id"), std::string::npos) << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(Serialization, RejectsNegativeWeightAndArrival) {
  EXPECT_NE(read_error("reco-trace 2 4 1\n0 -1.0 0.0 1 0 1 5.0\n").find("weight"),
            std::string::npos);
  EXPECT_NE(read_error("reco-trace 2 4 1\n0 1.0 -2.5 1 0 1 5.0\n").find("arrival"),
            std::string::npos);
}

TEST(Serialization, RejectsTrailingTokens) {
  const std::string err = read_error("reco-trace 2 4 1\n0 1.0 0.0 1 0 1 5.0 junk\n");
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(Serialization, TruncatedFileNamesExpectedCount) {
  const std::string err = read_error("reco-trace 2 4 3\n0 1.0 0.0 1 0 1 5.0\n");
  EXPECT_NE(err.find("expected 3"), std::string::npos) << err;
}

TEST(Serialization, FileRoundTrip) {
  GeneratorOptions o;
  o.num_ports = 10;
  o.num_coflows = 5;
  const auto original = generate_workload(o);
  const std::string path = ::testing::TempDir() + "/reco_trace_test.txt";
  save_trace(path, original, o.num_ports);
  int ports = 0;
  const auto loaded = load_trace(path, ports);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(ports, 10);
  EXPECT_THROW(load_trace("/nonexistent/path/xyz", ports), std::runtime_error);
}

}  // namespace
}  // namespace reco
