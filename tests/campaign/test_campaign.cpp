// Monte-Carlo reliability campaigns: config validation, replication
// purity, aggregate structure, and the acceptance property — a campaign
// killed mid-run and resumed from its checkpoint reports byte-identically
// to an uninterrupted one, at every thread count.
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "runtime/thread_pool.hpp"

namespace reco::campaign {
namespace {

/// Small but non-trivial campaign: 3 policies x 2 fault points x 6 reps.
CampaignConfig small_config() {
  CampaignConfig c;
  c.ports = 8;
  c.coflows = 3;
  c.seed = 7;
  c.replications = 6;
  c.policies = {RecoveryPolicy::kReplan, RecoveryPolicy::kWaitForRepair,
                RecoveryPolicy::kHybrid};
  c.grid = {{0.05, 0.01}, {0.02, 0.005}};
  c.bootstrap.resamples = 100;  // keep the aggregate stage fast
  return c;
}

std::string report_json(const CampaignRunner& runner) {
  std::ostringstream out;
  write_report_json(runner.report(), out);
  return out.str();
}

TEST(CampaignConfig, PolicyNamesRoundTrip) {
  EXPECT_EQ(parse_policy("replan"), RecoveryPolicy::kReplan);
  EXPECT_EQ(parse_policy("wait"), RecoveryPolicy::kWaitForRepair);
  EXPECT_EQ(parse_policy("hybrid"), RecoveryPolicy::kHybrid);
  for (const RecoveryPolicy p : {RecoveryPolicy::kReplan, RecoveryPolicy::kWaitForRepair,
                                 RecoveryPolicy::kHybrid}) {
    EXPECT_EQ(parse_policy(policy_name(p)), p);
  }
  EXPECT_THROW(parse_policy("yolo"), std::invalid_argument);
  EXPECT_THROW(parse_policy(""), std::invalid_argument);
}

TEST(CampaignConfig, ValidationRejectsUnrunnableConfigs) {
  EXPECT_NO_THROW(validate_campaign_config(small_config()));
  {
    CampaignConfig c = small_config();
    c.policies.clear();
    EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  }
  {
    CampaignConfig c = small_config();
    c.grid.clear();
    EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  }
  {
    CampaignConfig c = small_config();
    c.replications = 0;
    EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  }
  {
    CampaignConfig c = small_config();
    c.grid[0].mtbf = -1.0;
    EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  }
  {
    CampaignConfig c = small_config();
    c.setup_timeout_probability = 1.5;
    EXPECT_THROW(validate_campaign_config(c), std::invalid_argument);
  }
}

TEST(Campaign, ReplicationsArePureFunctionsOfTheIndex) {
  const CampaignRunner runner(small_config());
  for (const std::size_t index : {0u, 5u, 17u, 35u}) {
    const ReplicationResult a = runner.run_one(index);
    const ReplicationResult b = runner.run_one(index);
    EXPECT_EQ(a.digest, b.digest) << "index " << index;
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_EQ(a.rep, b.rep);
    EXPECT_EQ(a.cct, b.cct);
    EXPECT_EQ(a.stranded, b.stranded);
  }
}

TEST(Campaign, ReportStructureAndInvariants) {
  CampaignRunner runner(small_config());
  EXPECT_EQ(runner.total(), 36u);
  EXPECT_EQ(runner.run(), 36u);
  EXPECT_TRUE(runner.finished());
  const CampaignReport report = runner.report();
  EXPECT_EQ(report.total, 36u);
  EXPECT_EQ(report.completed, 36u);
  ASSERT_EQ(report.replications.size(), 36u);
  ASSERT_EQ(report.cells.size(), 6u);

  std::uint64_t anomalies = 0;
  for (std::size_t i = 0; i < report.replications.size(); ++i) {
    const ReplicationResult& r = report.replications[i];
    EXPECT_EQ(static_cast<std::size_t>(r.cell) * 6u + static_cast<std::size_t>(r.rep), i)
        << "index order broken at " << i;
    EXPECT_GT(r.demand_total, 0.0);
    EXPECT_GE(r.delivered_fraction, 0.0);
    EXPECT_LE(r.delivered_fraction, 1.0 + 1e-12);
    EXPECT_GE(r.stranded, 0.0);
    EXPECT_GE(r.degraded_time, 0.0);
    // Conservation: delivered + stranded spans the demand.
    EXPECT_NEAR(r.delivered_fraction + r.stranded / r.demand_total, 1.0, 1e-6);
    if (!r.satisfied) ++anomalies;
  }
  EXPECT_EQ(report.anomalies, anomalies);

  std::uint64_t cell_completed = 0;
  std::uint64_t cell_anomalies = 0;
  for (const CellSummary& cell : report.cells) {
    cell_completed += cell.completed;
    cell_anomalies += cell.anomalies;
    EXPECT_EQ(cell.completed, 6u);
    for (const DistributionSummary* s :
         {&cell.stranded, &cell.degraded_time, &cell.recovery_latency,
          &cell.delivered_fraction, &cell.cct}) {
      EXPECT_EQ(s->count, 6u);
      EXPECT_LE(s->mean_lo, s->mean);
      EXPECT_LE(s->mean, s->mean_hi);
      EXPECT_LE(s->p50_lo, s->p50);
      EXPECT_LE(s->p50, s->p50_hi);
      EXPECT_LE(s->min, s->max);
    }
    EXPECT_GT(cell.cct.mean, 0.0);
  }
  EXPECT_EQ(cell_completed, report.completed);
  EXPECT_EQ(cell_anomalies, report.anomalies);
}

TEST(Campaign, PairedSeedsShareWorkloadsAcrossCells) {
  // Cell pairing: replication r of every cell runs the same workload seed,
  // so demand_total depends only on r — the whole point of paired
  // comparisons across policies and fault intensities.
  CampaignRunner runner(small_config());
  runner.run();
  const CampaignReport report = runner.report();
  for (int rep = 0; rep < 6; ++rep) {
    const double expected = report.replications[static_cast<std::size_t>(rep)].demand_total;
    for (int cell = 1; cell < 6; ++cell) {
      EXPECT_EQ(report.replications[static_cast<std::size_t>(cell * 6 + rep)].demand_total,
                expected)
          << "cell " << cell << " rep " << rep;
    }
  }
}

TEST(Campaign, ByteIdenticalAcrossThreadCounts) {
  runtime::set_thread_count(1);
  CampaignRunner serial(small_config());
  serial.run();
  const std::string serial_json = report_json(serial);
  runtime::set_thread_count(4);
  CampaignRunner parallel(small_config());
  parallel.run();
  const std::string parallel_json = report_json(parallel);
  runtime::set_thread_count(0);  // restore default
  EXPECT_EQ(serial.report().digest, parallel.report().digest);
  EXPECT_EQ(serial_json, parallel_json);
}

TEST(Campaign, CheckpointResumeMatchesUninterruptedRun) {
  CampaignRunner uninterrupted(small_config());
  uninterrupted.run();
  const std::string expected_json = report_json(uninterrupted);

  // Kill after 13 of 36 replications, checkpoint, resume in a fresh runner
  // at a different thread count, finish, and compare byte for byte.
  runtime::set_thread_count(2);
  CampaignRunner first(small_config());
  EXPECT_EQ(first.run(13), 13u);
  EXPECT_FALSE(first.finished());
  std::ostringstream checkpoint;
  first.save_checkpoint(checkpoint);

  runtime::set_thread_count(3);
  CampaignRunner resumed(small_config());
  std::istringstream in(checkpoint.str());
  resumed.load_checkpoint(in);
  EXPECT_EQ(resumed.completed(), 13u);
  resumed.run();
  runtime::set_thread_count(0);
  EXPECT_TRUE(resumed.finished());
  EXPECT_EQ(resumed.report().digest, uninterrupted.report().digest);
  EXPECT_EQ(report_json(resumed), expected_json);

  // CSV writers see the same replication set.
  std::ostringstream csv_a;
  std::ostringstream csv_b;
  write_replications_csv(uninterrupted.report(), csv_a);
  write_replications_csv(resumed.report(), csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
}

TEST(Campaign, CheckpointRejectsWrongConfigAndDamage) {
  CampaignRunner runner(small_config());
  runner.run(5);
  std::ostringstream checkpoint;
  runner.save_checkpoint(checkpoint);
  const std::string blob = checkpoint.str();

  const auto load_into = [](const CampaignConfig& config, const std::string& bytes) {
    CampaignRunner fresh(config);
    std::istringstream in(bytes);
    fresh.load_checkpoint(in);
  };

  // Any result-affecting config drift must be rejected...
  {
    CampaignConfig other = small_config();
    other.seed = 8;
    EXPECT_THROW(load_into(other, blob), std::runtime_error);
  }
  {
    CampaignConfig other = small_config();
    other.grid[1].mttr = 0.006;
    EXPECT_THROW(load_into(other, blob), std::runtime_error);
  }
  {
    CampaignConfig other = small_config();
    other.policies = {RecoveryPolicy::kReplan, RecoveryPolicy::kHybrid,
                      RecoveryPolicy::kWaitForRepair};
    EXPECT_THROW(load_into(other, blob), std::runtime_error);
  }
  // ...but cosmetic settings (flight dump destination) are not part of the
  // fingerprint: a resumed campaign may redirect its incident dumps.
  {
    CampaignConfig other = small_config();
    other.flight_prefix = "/tmp/elsewhere-";
    EXPECT_NO_THROW(load_into(other, blob));
  }
  // Damaged streams fail loudly.
  std::string corrupted = blob;
  corrupted[corrupted.size() - 3] ^= 0x10;
  EXPECT_THROW(load_into(small_config(), corrupted), std::runtime_error);
  EXPECT_THROW(load_into(small_config(), blob.substr(0, 30)), std::runtime_error);
  EXPECT_THROW(load_into(small_config(), "not a campaign checkpoint"), std::runtime_error);
}

TEST(Campaign, PoliciesActuallyDiffer) {
  // Sanity that the sweep sweeps: under repairable faults the immediate-
  // replan policy replans more often than wait-for-repair over the same
  // paired workloads (if these coincided, the policy axis would be dead).
  CampaignConfig config = small_config();
  config.replications = 8;
  CampaignRunner runner(config);
  runner.run();
  const CampaignReport report = runner.report();
  double replan_rate = 0.0;
  double wait_rate = 0.0;
  for (const CellSummary& cell : report.cells) {
    if (cell.policy == RecoveryPolicy::kReplan) replan_rate += cell.replans_mean;
    if (cell.policy == RecoveryPolicy::kWaitForRepair) wait_rate += cell.replans_mean;
  }
  EXPECT_GT(replan_rate, wait_rate);
}

}  // namespace
}  // namespace reco::campaign
