// Deterministic checkpoint/restart (docs/RELIABILITY.md): the snapshot
// substrate, per-component round-trips (Rng, SupportIndex, FaultInjector),
// and the tentpole property — a daemon run killed at an arbitrary event
// and resumed from its checkpoint is byte-identical (schedule digest,
// stats, makespan, event count) to the uninterrupted run, across seeds,
// policies, interruption points, and thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "core/support_index.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/faults.hpp"
#include "sim/online_daemon.hpp"
#include "trace/generator.hpp"
#include "trace/rng.hpp"

namespace reco {
namespace {

constexpr std::uint32_t kTestMagic = 0x54534554u;  // "TEST"

std::uint64_t bits_of(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::string error_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(Snapshot, RoundTripsEveryFieldType) {
  SnapshotWriter w;
  w.put_u8(7);
  w.put_bool(true);
  w.put_u32(0xdeadbeefu);
  w.put_u64(0x0123456789abcdefull);
  w.put_i32(-42);
  w.put_i64(-1234567890123ll);
  w.put_f64(3.141592653589793);
  w.put_f64(-0.0);       // sign bit survives
  w.put_f64(5e-324);     // smallest denormal survives
  w.put_string(std::string("a\0b", 3));  // embedded NUL survives
  std::ostringstream out;
  w.finish(out, kTestMagic, 3);

  std::istringstream in(out.str());
  SnapshotReader r(in, kTestMagic, 3, "test snapshot");
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -1234567890123ll);
  EXPECT_EQ(bits_of(r.get_f64()), bits_of(3.141592653589793));
  EXPECT_EQ(bits_of(r.get_f64()), bits_of(-0.0));
  EXPECT_EQ(bits_of(r.get_f64()), bits_of(5e-324));
  EXPECT_EQ(r.get_string(), std::string("a\0b", 3));
  EXPECT_EQ(r.remaining(), 0u);
  r.expect_end();
}

TEST(Snapshot, RejectsDamagedFilesWithClearErrors) {
  SnapshotWriter w;
  w.put_u64(0x1122334455667788ull);
  w.put_f64(2.5);
  std::ostringstream out;
  w.finish(out, kTestMagic, 1);
  const std::string blob = out.str();

  const auto read_as = [](const std::string& bytes, std::uint32_t magic,
                          std::uint32_t version) {
    std::istringstream in(bytes);
    SnapshotReader r(in, magic, version, "test snapshot");
  };
  EXPECT_NE(error_of([&] { read_as(blob, kTestMagic + 1, 1); }).find("bad magic"),
            std::string::npos);
  EXPECT_NE(error_of([&] { read_as(blob, kTestMagic, 2); }).find("unsupported format version"),
            std::string::npos);
  EXPECT_NE(error_of([&] { read_as("XY", kTestMagic, 1); }).find("truncated header"),
            std::string::npos);
  EXPECT_NE(
      error_of([&] { read_as(blob.substr(0, blob.size() - 1), kTestMagic, 1); })
          .find("truncated payload"),
      std::string::npos);
  std::string corrupted = blob;
  corrupted[24] ^= 0x01;  // first payload byte
  EXPECT_NE(error_of([&] { read_as(corrupted, kTestMagic, 1); }).find("digest mismatch"),
            std::string::npos);
  // Unread payload bytes are format drift, not success.
  std::istringstream in(blob);
  SnapshotReader r(in, kTestMagic, 1, "test snapshot");
  (void)r.get_u64();
  EXPECT_THROW(r.expect_end(), std::runtime_error);
}

TEST(Snapshot, RngStateRoundTripReplaysTheStream) {
  Rng original(987654321u);
  // Warm the stream, including the Box-Muller spare path.
  for (int i = 0; i < 23; ++i) (void)original.uniform();
  (void)original.normal();

  SnapshotWriter w;
  const RngState state = original.state();
  w.put_u64(state.s[0]);
  w.put_u64(state.s[1]);
  w.put_u64(state.s[2]);
  w.put_u64(state.s[3]);
  w.put_bool(state.have_spare);
  w.put_u64(state.spare_bits);
  std::ostringstream out;
  w.finish(out, kTestMagic, 1);

  std::istringstream in(out.str());
  SnapshotReader r(in, kTestMagic, 1, "test snapshot");
  RngState restored_state;
  restored_state.s[0] = r.get_u64();
  restored_state.s[1] = r.get_u64();
  restored_state.s[2] = r.get_u64();
  restored_state.s[3] = r.get_u64();
  restored_state.have_spare = r.get_bool();
  restored_state.spare_bits = r.get_u64();
  Rng restored(1);  // seed is irrelevant once state is set
  restored.set_state(restored_state);

  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(bits_of(restored.uniform()), bits_of(original.uniform())) << "draw " << i;
  }
  EXPECT_EQ(bits_of(restored.normal()), bits_of(original.normal()));
}

TEST(Snapshot, SupportIndexRoundTripIsBitExact) {
  Rng rng(5150);
  Matrix m(9);
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 9; ++j) {
      if (rng.uniform() < 0.4) m.at(i, j) = rng.uniform(0.01, 3.0);
    }
  }
  const SupportIndex index(std::move(m));

  SnapshotWriter w;
  save_support_index(w, index);
  std::ostringstream out;
  w.finish(out, kTestMagic, 1);
  std::istringstream in(out.str());
  SnapshotReader r(in, kTestMagic, 1, "test snapshot");
  const SupportIndex restored = load_support_index(r);
  r.expect_end();

  ASSERT_EQ(restored.n(), index.n());
  for (int i = 0; i < index.n(); ++i) {
    for (int j = 0; j < index.n(); ++j) {
      EXPECT_EQ(bits_of(restored.at(i, j)), bits_of(index.at(i, j)))
          << "(" << i << ", " << j << ")";
    }
  }
}

TEST(Snapshot, FaultInjectorMidRunSaveLoadReplaysTheTimeline) {
  sim::FaultConfig config;
  config.port_mtbf = 0.4;
  config.port_mttr = 0.15;
  config.setup_timeout_probability = 0.2;
  config.crosspoint_failure_probability = 0.1;
  config.seed = 4242;
  sim::FaultInjector original(config);
  original.bind_ports(10);
  (void)original.advance_to(1.0);  // consume part of the renewal process

  SnapshotWriter w;
  original.save_state(w);
  std::ostringstream out;
  w.finish(out, kTestMagic, 1);

  sim::FaultInjector restored(config);
  restored.bind_ports(10);
  std::istringstream in(out.str());
  SnapshotReader r(in, kTestMagic, 1, "test snapshot");
  restored.load_state(r);
  r.expect_end();

  // Both injectors now replay the identical future: transitions and setup
  // outcomes must match draw for draw.
  const std::vector<Circuit> requested = {{0, 1}, {2, 3}, {4, 5}};
  for (int step = 1; step <= 8; ++step) {
    const Time t = 1.0 + 0.5 * step;
    const auto ta = original.advance_to(t);
    const auto tb = restored.advance_to(t);
    ASSERT_EQ(ta.size(), tb.size()) << "step " << step;
    for (std::size_t k = 0; k < ta.size(); ++k) {
      EXPECT_EQ(bits_of(ta[k].at), bits_of(tb[k].at));
      EXPECT_EQ(ta[k].port, tb[k].port);
      EXPECT_EQ(ta[k].up, tb[k].up);
    }
    const sim::SetupOutcome sa = original.sample_setup(0.01, requested);
    const sim::SetupOutcome sb = restored.sample_setup(0.01, requested);
    EXPECT_EQ(bits_of(sa.setup_time), bits_of(sb.setup_time));
    EXPECT_EQ(sa.attempts, sb.attempts);
    EXPECT_EQ(sa.established, sb.established);
    EXPECT_EQ(sa.established_circuits.size(), sb.established_circuits.size());
  }
  EXPECT_EQ(original.ports_down(), restored.ports_down());
}

// ---------------------------------------------------------------------------
// Daemon kill-and-resume byte-identity (the tentpole acceptance property).

GeneratorOptions stream_options(std::uint64_t seed) {
  GeneratorOptions o;
  o.num_ports = 10;
  o.num_coflows = 24;
  o.seed = seed;
  o.mean_interarrival = 0.01;
  return o;
}

sim::OnlineDaemonReport run_full(const std::vector<Coflow>& coflows, OnlinePolicyKind kind) {
  sim::VectorSource source(coflows);
  sim::OnlineDaemon daemon(kind);
  return daemon.run(source);
}

/// Interrupt after `stop_after` scheduling events, checkpoint, resume in a
/// fresh daemon, and return the resumed run's final report (or the partial
/// report if the stream finished before the quota — caller skips those).
struct ResumedRun {
  bool interrupted = false;
  sim::OnlineDaemonReport report;
};

ResumedRun interrupt_and_resume(const std::vector<Coflow>& coflows, OnlinePolicyKind kind,
                                std::uint64_t stop_after) {
  sim::VectorSource first(coflows);
  sim::OnlineDaemonOptions opt;
  opt.stop_after_events = stop_after;
  sim::OnlineDaemon daemon(kind, opt);
  const sim::OnlineDaemonReport partial = daemon.run(first);
  ResumedRun out;
  out.interrupted = partial.interrupted;
  if (!partial.interrupted) return out;

  std::ostringstream checkpoint;
  daemon.save_checkpoint(checkpoint);

  sim::VectorSource second(coflows);
  sim::OnlineDaemon resumed(kind);
  std::istringstream in(checkpoint.str());
  out.report = resumed.resume(second, in);
  return out;
}

/// Byte-identity between a resumed and an uninterrupted run.  Everything
/// except alloc_events (a process-local capacity-growth counter: the
/// resuming process re-grows its arenas, so its high-water accounting may
/// differ by design) and wall-clock decision latency.
void expect_identical(const sim::OnlineDaemonReport& resumed,
                      const sim::OnlineDaemonReport& full, const std::string& tag) {
  EXPECT_EQ(resumed.digest, full.digest) << tag;
  EXPECT_EQ(resumed.events, full.events) << tag;
  EXPECT_EQ(bits_of(resumed.makespan), bits_of(full.makespan)) << tag;
  EXPECT_EQ(resumed.stats.submitted, full.stats.submitted) << tag;
  EXPECT_EQ(resumed.stats.finished, full.stats.finished) << tag;
  EXPECT_EQ(resumed.stats.reconfigurations, full.stats.reconfigurations) << tag;
  EXPECT_EQ(resumed.stats.epochs, full.stats.epochs) << tag;
  EXPECT_EQ(bits_of(resumed.stats.total_weighted_cct), bits_of(full.stats.total_weighted_cct))
      << tag;
  EXPECT_FALSE(resumed.interrupted) << tag;
}

TEST(DaemonCheckpoint, ResumeIsByteIdenticalAcrossSeedsPoliciesAndCutPoints) {
  for (const OnlinePolicyKind kind :
       {OnlinePolicyKind::kEpochRecoMul, OnlinePolicyKind::kFifoRecoSin,
        OnlinePolicyKind::kDrainReplanRecoMul}) {
    for (const std::uint64_t seed : {921u, 922u}) {
      const auto coflows = generate_workload(stream_options(seed));
      const sim::OnlineDaemonReport full = run_full(coflows, kind);
      int exercised = 0;
      for (const std::uint64_t stop : {3u, 11u, 29u}) {
        const ResumedRun r = interrupt_and_resume(coflows, kind, stop);
        if (!r.interrupted) continue;  // stream drained before the quota
        ++exercised;
        expect_identical(r.report, full,
                         "seed " + std::to_string(seed) + " stop " + std::to_string(stop));
      }
      EXPECT_GT(exercised, 0) << "seed " << seed;
    }
  }
}

TEST(DaemonCheckpoint, ResumeIsByteIdenticalAcrossThreadCounts) {
  const auto coflows = generate_workload(stream_options(931));
  const OnlinePolicyKind kind = OnlinePolicyKind::kDrainReplanRecoMul;
  runtime::set_thread_count(1);
  const sim::OnlineDaemonReport full = run_full(coflows, kind);
  for (const int threads : {1, 4}) {
    runtime::set_thread_count(threads);
    const ResumedRun r = interrupt_and_resume(coflows, kind, 9);
    ASSERT_TRUE(r.interrupted) << threads << " threads";
    expect_identical(r.report, full, std::to_string(threads) + " threads");
  }
  runtime::set_thread_count(0);  // restore default
}

TEST(DaemonCheckpoint, RejectsMismatchedPolicyOptionsAndDamage) {
  const auto coflows = generate_workload(stream_options(941));
  sim::VectorSource first(coflows);
  sim::OnlineDaemonOptions opt;
  opt.stop_after_events = 7;
  sim::OnlineDaemon daemon(OnlinePolicyKind::kEpochRecoMul, opt);
  const sim::OnlineDaemonReport partial = daemon.run(first);
  ASSERT_TRUE(partial.interrupted);
  std::ostringstream checkpoint;
  daemon.save_checkpoint(checkpoint);
  const std::string blob = checkpoint.str();

  const auto resume_with = [&](OnlinePolicyKind kind, const sim::OnlineDaemonOptions& options,
                               const std::string& bytes, const std::vector<Coflow>& stream) {
    sim::VectorSource source(stream);
    sim::OnlineDaemon fresh(kind, options);
    std::istringstream in(bytes);
    (void)fresh.resume(source, in);
  };

  // Wrong policy kind.
  EXPECT_NE(error_of([&] {
              resume_with(OnlinePolicyKind::kFifoRecoSin, {}, blob, coflows);
            }).find("different policy"),
            std::string::npos);
  // Wrong sampler period: a resumed run must replay the saved cadence.
  sim::OnlineDaemonOptions sampled;
  sampled.sample_every = 0.25;
  EXPECT_NE(error_of([&] {
              resume_with(OnlinePolicyKind::kEpochRecoMul, sampled, blob, coflows);
            }).find("sample_every"),
            std::string::npos);
  // Source shorter than the saved run's admission cursor.
  EXPECT_NE(error_of([&] {
              resume_with(OnlinePolicyKind::kEpochRecoMul, {}, blob, {});
            }).find("shorter than the saved run"),
            std::string::npos);
  // Corrupted payload byte.
  std::string corrupted = blob;
  corrupted[corrupted.size() / 2] ^= 0x40;
  EXPECT_NE(error_of([&] {
              resume_with(OnlinePolicyKind::kEpochRecoMul, {}, corrupted, coflows);
            }).find("corrupted"),
            std::string::npos);
  // Truncated file.
  EXPECT_NE(error_of([&] {
              resume_with(OnlinePolicyKind::kEpochRecoMul, {}, blob.substr(0, 40), coflows);
            }).find("truncated"),
            std::string::npos);
  // Not a daemon checkpoint at all.
  EXPECT_NE(error_of([&] {
              resume_with(OnlinePolicyKind::kEpochRecoMul, {}, "definitely not a checkpoint",
                          coflows);
            }).find("daemon checkpoint"),
            std::string::npos);

  // The checkpoint itself is intact: the happy path still resumes.
  sim::VectorSource source(coflows);
  sim::OnlineDaemon fresh(OnlinePolicyKind::kEpochRecoMul);
  std::istringstream in(blob);
  const sim::OnlineDaemonReport resumed = fresh.resume(source, in);
  expect_identical(resumed, run_full(coflows, OnlinePolicyKind::kEpochRecoMul), "happy path");
}

}  // namespace
}  // namespace reco
